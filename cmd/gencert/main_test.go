package main

import (
	"bytes"
	"crypto/tls"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGencertWritesLoadablePair: the generated files load as a TLS key pair
// and the key file is private (0600).
func TestGencertWritesLoadablePair(t *testing.T) {
	dir := t.TempDir()
	cert := filepath.Join(dir, "c.pem")
	key := filepath.Join(dir, "k.pem")
	var out bytes.Buffer
	err := run([]string{"-hosts", "127.0.0.1,localhost", "-cert", cert, "-key", key, "-days", "7"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote") {
		t.Fatalf("output %q", out.String())
	}
	certPEM, err := os.ReadFile(cert)
	if err != nil {
		t.Fatal(err)
	}
	keyPEM, err := os.ReadFile(key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tls.X509KeyPair(certPEM, keyPEM); err != nil {
		t.Fatalf("generated pair does not load: %v", err)
	}
	info, err := os.Stat(key)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Fatalf("key file mode %v, want 0600", info.Mode().Perm())
	}
}

// TestGencertValidation: empty host list and non-positive validity fail.
func TestGencertValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-hosts", " , "}, &out); err == nil {
		t.Fatal("empty host list accepted")
	}
	if err := run([]string{"-days", "0"}, &out); err == nil {
		t.Fatal("zero validity accepted")
	}
}
