// Command gencert mints a self-signed TLS certificate for the engine's
// socket paths — the quick way to run `sweep`/`engineworker`/`allocd` with
// encrypted transport on a lab cluster without standing up a CA. The
// certificate is its own root: pass the SAME cert file as -tls-cert on the
// listener and -tls-ca on every dialer.
//
//	gencert -hosts 127.0.0.1,worker1.lab -cert cert.pem -key key.pem
//	engineworker -listen :9000 -tls-cert cert.pem -tls-key key.pem
//	sweep -backend socket -addrs worker1.lab:9000 -tls-ca cert.pem ...
//
// Production clusters should bring certificates from a real CA instead;
// gencert exists for tests, CI smokes and closed lab networks.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/multiradio/chanalloc"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "gencert:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gencert", flag.ContinueOnError)
	hosts := fs.String("hosts", "127.0.0.1,localhost",
		"comma-separated DNS names and IP literals the certificate is valid for")
	certOut := fs.String("cert", "cert.pem", "output path for the PEM certificate")
	keyOut := fs.String("key", "key.pem", "output path for the PEM private key")
	days := fs.Int("days", 365, "validity window in days from now")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var list []string
	for _, h := range strings.Split(*hosts, ",") {
		if h = strings.TrimSpace(h); h != "" {
			list = append(list, h)
		}
	}
	if *days < 1 {
		return fmt.Errorf("-days must be >= 1 (got %d)", *days)
	}
	now := time.Now()
	certPEM, keyPEM, err := chanalloc.GenerateSelfSignedCert(list, now.Add(-time.Hour), now.AddDate(0, 0, *days))
	if err != nil {
		return err
	}
	if err := os.WriteFile(*certOut, certPEM, 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(*keyOut, keyPEM, 0o600); err != nil {
		return err
	}
	fmt.Fprintf(out, "gencert: wrote %s and %s for %s (%d days)\n",
		*certOut, *keyOut, strings.Join(list, ","), *days)
	return nil
}
