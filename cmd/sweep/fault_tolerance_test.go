package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/multiradio/chanalloc"
)

// TestClusterBackendFailsLoudlyWithNoWorkers: a cluster sweep whose join-wait
// expires with zero workers fails with an error that says so, instead of
// hanging or silently returning empty output.
func TestClusterBackendFailsLoudlyWithNoWorkers(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-exp", "theorem1", "-seed", "7", "-out", t.TempDir(),
		"-backend", "cluster",
		"-listen-workers", "unix:" + t.TempDir() + "/coord.sock",
		"-join-wait", "200ms",
	}, &b)
	if err == nil {
		t.Fatal("workerless cluster sweep returned nil, want a loud failure")
	}
	if !strings.Contains(err.Error(), "no worker ever joined") {
		t.Fatalf("err = %v, want the no-worker-ever-joined diagnosis", err)
	}
}

// TestJournalFlagValidation: the journal flags reject incoherent
// combinations before any backend is built.
func TestJournalFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"journal without cluster",
			[]string{"-journal", "j.ndjson"},
			"-journal only applies to -backend cluster"},
		{"resume without journal",
			[]string{"-backend", "cluster", "-listen-workers", "127.0.0.1:0", "-resume"},
			"-resume needs -journal"},
		{"fsync below one",
			[]string{"-backend", "cluster", "-listen-workers", "127.0.0.1:0",
				"-journal", "j.ndjson", "-journal-fsync", "0"},
			"-journal-fsync must be >= 1"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var b strings.Builder
			err := run(append([]string{"-exp", "theorem1", "-out", t.TempDir()}, tc.args...), &b)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

// startSweepWorker runs one in-process engine worker joining coord; close
// the returned stop channel and receive on done to tear it down. The
// worker's join loop retries until the coordinator exists, so it can start
// before the sweep does.
func startSweepWorker(t *testing.T, coord string, stop chan struct{}) chan struct{} {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := chanalloc.EngineJoinAndServe(coord, chanalloc.JoinStop(stop)); err != nil {
			t.Errorf("worker join: %v", err)
		}
	}()
	return done
}

// journalSweep runs one journal-enabled cluster sweep into a fixed output
// dir (the journal's batch identity covers the params, and the params
// include -out, so resumed runs must reuse the same dir).
func journalSweep(t *testing.T, dir, coord, journal string, seed uint64, resume bool) (string, error) {
	t.Helper()
	args := []string{
		"-exp", "theorem1",
		"-seed", fmt.Sprint(seed),
		"-workers", "2",
		"-out", dir,
		"-backend", "cluster",
		"-listen-workers", coord,
		"-journal", journal,
	}
	if resume {
		args = append(args, "-resume")
	}
	var b strings.Builder
	err := run(args, &b)
	return b.String(), err
}

// TestClusterSweepJournalResume is the CLI surface of the resume contract:
// a journaled cluster sweep leaves a checkpoint file, and a -resume rerun
// recovers every completed job — here all of them, so it finishes without
// any worker joined at all — and prints byte-identical output.
func TestClusterSweepJournalResume(t *testing.T) {
	const seed = 7
	baseOut, baseCSVs := sweepRun(t, "theorem1", seed, 2)

	dir := t.TempDir()
	journal := filepath.Join(t.TempDir(), "sweep.journal")
	coord := "unix:" + t.TempDir() + "/coord.sock"

	stop := make(chan struct{})
	done := startSweepWorker(t, coord, stop)
	firstOut, err := journalSweep(t, dir, coord, journal, seed, false)
	close(stop)
	<-done
	if err != nil {
		t.Fatalf("journaled sweep: %v", err)
	}
	if firstOut != baseOut {
		t.Fatalf("journaled cluster sweep changed stdout:\n--- inprocess\n%s\n--- cluster\n%s",
			baseOut, firstOut)
	}
	if data, err := os.ReadFile(journal); err != nil || len(data) == 0 {
		t.Fatalf("journal not written: %v (%d bytes)", err, len(data))
	}

	// The resume: every job is already journaled, so the rerun completes
	// from the checkpoint alone — no worker is started on purpose.
	resumedOut, err := journalSweep(t, dir, "unix:"+t.TempDir()+"/coord2.sock", journal, seed, true)
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
	if resumedOut != baseOut {
		t.Fatalf("resumed sweep changed stdout:\n--- baseline\n%s\n--- resumed\n%s",
			baseOut, resumedOut)
	}
	for name, want := range baseCSVs {
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("CSV %s missing after resume: %v", name, err)
		}
		if string(got) != want {
			t.Fatalf("CSV %s diverged after resume", name)
		}
	}
}

// TestClusterSweepResumeRefusesForeignJournal: resuming with a different
// -seed is a different batch; the sweep refuses the journal instead of
// silently mixing results.
func TestClusterSweepResumeRefusesForeignJournal(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(t.TempDir(), "sweep.journal")
	coord := "unix:" + t.TempDir() + "/coord.sock"

	stop := make(chan struct{})
	done := startSweepWorker(t, coord, stop)
	_, err := journalSweep(t, dir, coord, journal, 7, false)
	close(stop)
	<-done
	if err != nil {
		t.Fatalf("journaled sweep: %v", err)
	}

	stop2 := make(chan struct{})
	done2 := startSweepWorker(t, coord+"2", stop2)
	defer func() { close(stop2); <-done2 }()
	_, err = journalSweep(t, dir, coord+"2", journal, 8, true)
	if err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("err = %v, want the batch-identity mismatch refusal", err)
	}
}
