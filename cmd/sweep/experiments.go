package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/multiradio/chanalloc"
	"github.com/multiradio/chanalloc/internal/stats"
	"github.com/multiradio/chanalloc/internal/textplot"
)

// expEnv carries the run-wide knobs into one experiment: where CSVs go,
// the experiment's private root seed (derived from the -seed flag and the
// experiment's fixed index, so it does not depend on which subset runs) and
// the worker-pool size for the experiment's internal batch paths. All
// randomness must flow from seed via per-job engine streams — that is what
// makes `sweep -seed S` emit byte-identical tables and CSVs for every
// -workers value.
type expEnv struct {
	csvDir  string
	seed    uint64
	workers int
}

// expLemmas (E1) reruns the paper's §3 walkthrough of Figure 1: every
// violated rule plus the realised gain of the constructive deviation.
func expLemmas(out io.Writer, env expEnv) error {
	fmt.Fprintln(out, "== E1: Figure 1 lemma walkthrough ==")
	s, err := chanalloc.ScenarioFigure1(chanalloc.TDMA(1))
	if err != nil {
		return err
	}
	rows := [][]string{}
	for _, v := range chanalloc.CheckAllLemmas(s.Game, s.Alloc) {
		gain := "-"
		if v.User >= 0 && v.ChannelB >= 0 && v.ChannelC >= 0 {
			delta, err := s.Game.BenefitOfMove(s.Alloc, v.User, v.ChannelB, v.ChannelC)
			if err == nil {
				gain = fmt.Sprintf("%+.4f", delta)
			}
		}
		rows = append(rows, []string{v.Rule, v.String(), gain})
	}
	table, err := textplot.Table([]string{"rule", "witness", "move gain"}, rows)
	if err != nil {
		return err
	}
	fmt.Fprint(out, table)
	fmt.Fprintln(out)
	return writeCSV(env.csvDir, "e1_lemmas.csv", []string{"rule", "witness", "gain"}, rows)
}

// expTheorem1 (E2) compares the Theorem 1 checker against the exact
// best-response oracle on every allocation of a family of tiny games under
// constant R. Agreement must be total. The exhaustive enumeration runs
// sharded over the engine's worker pool.
func expTheorem1(out io.Writer, env expEnv) error {
	fmt.Fprintln(out, "== E2: Theorem 1 characterisation vs exact oracle (constant R) ==")
	configs := []struct{ n, c, k int }{
		{2, 2, 2}, {2, 3, 2}, {2, 3, 3}, {3, 2, 2}, {3, 3, 2}, {4, 2, 2}, {2, 4, 2},
	}
	rows := [][]string{}
	for _, cfg := range configs {
		g, err := chanalloc.NewGame(cfg.n, cfg.c, cfg.k, chanalloc.TDMA(1))
		if err != nil {
			return err
		}
		nes, err := chanalloc.EnumerateNEParallel(g, 10_000_000, env.workers)
		if err != nil {
			return err
		}
		mismatches := 0
		// Cross-check the theorem checker on every NE (the exhaustive test
		// suite covers all profiles; here we keep the runtime sweep-friendly
		// by auditing NE only).
		for _, ne := range nes {
			if ok, _ := chanalloc.TheoremNE(g, ne); !ok {
				mismatches++
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%dx%dx%d", cfg.n, cfg.c, cfg.k),
			fmt.Sprintf("%d", len(nes)),
			fmt.Sprintf("%d", mismatches),
		})
	}
	table, err := textplot.Table([]string{"game (NxCxk)", "oracle NE count", "theorem mismatches"}, rows)
	if err != nil {
		return err
	}
	fmt.Fprint(out, table)
	fmt.Fprintln(out)
	return writeCSV(env.csvDir, "e2_theorem1.csv", []string{"game", "ne_count", "mismatches"}, rows)
}

// expPareto (E3) verifies Theorem 2 on tiny games: every enumerated NE is
// Pareto-optimal under constant R. The per-NE domination searches fan out
// over the engine.
func expPareto(out io.Writer, env expEnv) error {
	fmt.Fprintln(out, "== E3: Theorem 2 — NE Pareto-optimality (constant R) ==")
	configs := []struct{ n, c, k int }{
		{2, 2, 1}, {2, 2, 2}, {2, 3, 2}, {3, 2, 2},
	}
	rows := [][]string{}
	for _, cfg := range configs {
		g, err := chanalloc.NewGame(cfg.n, cfg.c, cfg.k, chanalloc.TDMA(1))
		if err != nil {
			return err
		}
		nes, err := chanalloc.EnumerateNEParallel(g, 10_000_000, env.workers)
		if err != nil {
			return err
		}
		domFlags, _, err := chanalloc.ParallelMap(len(nes), func(i int, _ *chanalloc.RNG) (bool, error) {
			imp, err := chanalloc.FindParetoImprovement(g, nes[i], 1e-9, 10_000_000)
			return imp != nil, err
		}, chanalloc.EngineWorkers(env.workers))
		if err != nil {
			return err
		}
		dominated := 0
		for _, d := range domFlags {
			if d {
				dominated++
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%dx%dx%d", cfg.n, cfg.c, cfg.k),
			fmt.Sprintf("%d", len(nes)),
			fmt.Sprintf("%d", dominated),
		})
	}
	table, err := textplot.Table([]string{"game (NxCxk)", "NE count", "Pareto-dominated NE"}, rows)
	if err != nil {
		return err
	}
	fmt.Fprint(out, table)
	fmt.Fprintln(out)
	return writeCSV(env.csvDir, "e3_pareto.csv", []string{"game", "ne_count", "dominated"}, rows)
}

// expAlg1 (E4) sweeps Algorithm 1 across sizes and tie-breaks, verifying
// the NE property and recording the welfare ratio against the all-placed
// optimum (1.0 under constant R whenever |N|k > |C|). The tie-break seeds
// run as engine jobs.
func expAlg1(out io.Writer, env expEnv) error {
	fmt.Fprintln(out, "== E4: Algorithm 1 NE property and welfare ratio ==")
	rows := [][]string{}
	for _, cfg := range []struct{ n, c, k int }{
		{7, 6, 4}, {16, 12, 8}, {64, 32, 16}, {10, 11, 3}, {25, 13, 5},
	} {
		for _, rate := range []chanalloc.RateFunc{
			chanalloc.TDMA(1),
			chanalloc.HarmonicRate(1, 0.3),
		} {
			g, err := chanalloc.NewGame(cfg.n, cfg.c, cfg.k, rate)
			if err != nil {
				return err
			}
			const seeds = 20
			neFlags, _, err := chanalloc.ParallelMap(seeds, func(j int, rng *chanalloc.RNG) (bool, error) {
				a, err := chanalloc.Algorithm1(g,
					chanalloc.WithTieBreak(chanalloc.TieRandom), chanalloc.WithSeed(rng.Uint64()))
				if err != nil {
					return false, err
				}
				return g.IsNashEquilibrium(a)
			}, chanalloc.EngineWorkers(env.workers), chanalloc.EngineSeed(env.seed))
			if err != nil {
				return err
			}
			neOK := 0
			for _, ne := range neFlags {
				if ne {
					neOK++
				}
			}
			a, err := chanalloc.Algorithm1(g)
			if err != nil {
				return err
			}
			ratio, err := chanalloc.PriceOfAnarchy(g, a)
			if err != nil {
				return err
			}
			rows = append(rows, []string{
				fmt.Sprintf("%dx%dx%d", cfg.n, cfg.c, cfg.k),
				rate.Name(),
				fmt.Sprintf("%d/%d", neOK, seeds),
				fmt.Sprintf("%.4f", ratio),
			})
		}
	}
	table, err := textplot.Table([]string{"game (NxCxk)", "rate", "NE runs", "welfare ratio"}, rows)
	if err != nil {
		return err
	}
	fmt.Fprint(out, table)
	fmt.Fprintln(out)
	return writeCSV(env.csvDir, "e4_alg1.csv", []string{"game", "rate", "ne_runs", "welfare_ratio"}, rows)
}

// expFairShare (E5) validates the paper's equal-share assumption: the
// slot-level CSMA/CA simulator yields Jain index ≈ 1 across stations and
// total throughput within a few percent of Bianchi's model. One engine job
// per population size; the simulation seeds stay pinned to the published
// table.
func expFairShare(out io.Writer, env expEnv) error {
	fmt.Fprintln(out, "== E5: CSMA/CA fair share and model agreement ==")
	p := chanalloc.Bianchi1Mbps()
	populations := []int{1, 2, 4, 8, 16}
	rows, _, err := chanalloc.ParallelMap(len(populations), func(i int, _ *chanalloc.RNG) ([]string, error) {
		n := populations[i]
		sim, err := chanalloc.SimulateCSMA(p, n, 150_000, uint64(100+n))
		if err != nil {
			return nil, err
		}
		model, err := chanalloc.SolveDCF(p, n)
		if err != nil {
			return nil, err
		}
		jain, err := stats.JainIndex(sim.PerStation)
		if err != nil {
			return nil, err
		}
		relErr := (sim.Throughput - model.Throughput) / model.Throughput
		return []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.4f", sim.Throughput),
			fmt.Sprintf("%.4f", model.Throughput),
			fmt.Sprintf("%+.2f%%", 100*relErr),
			fmt.Sprintf("%.5f", jain),
		}, nil
	}, chanalloc.EngineWorkers(env.workers))
	if err != nil {
		return err
	}
	table, err := textplot.Table(
		[]string{"stations", "sim Mbit/s", "Bianchi Mbit/s", "rel err", "Jain index"}, rows)
	if err != nil {
		return err
	}
	fmt.Fprint(out, table)
	fmt.Fprintln(out)
	return writeCSV(env.csvDir, "e5_fairshare.csv",
		[]string{"n", "sim", "model", "rel_err", "jain"}, rows)
}

// expDynamics (E6) measures convergence of three decentralised processes
// from random starts: sequential best response, radio-greedy moves, and
// simultaneous best response with inertia 0.5 (full inertia oscillates).
// Each (game, process) cell is a RunBatch over the engine.
func expDynamics(out io.Writer, env expEnv) error {
	fmt.Fprintln(out, "== E6: dynamics convergence (sequential BR / radio-greedy / simultaneous p=0.5) ==")
	processes := []struct {
		name string
		proc chanalloc.DynamicsProcess
	}{
		{"seq-br", chanalloc.BestResponseProcess},
		{"radio-greedy", chanalloc.RadioGreedyProcess},
		{"simul-0.5", chanalloc.SimultaneousProcess},
	}
	rows := [][]string{}
	cell := 0
	for _, cfg := range []struct{ n, c, k int }{
		{4, 4, 2}, {8, 6, 3}, {16, 8, 4}, {32, 12, 6},
	} {
		g, err := chanalloc.NewGame(cfg.n, cfg.c, cfg.k, chanalloc.TDMA(1))
		if err != nil {
			return err
		}
		for _, p := range processes {
			const replicates = 25
			res, err := chanalloc.RunBatch(g, chanalloc.BatchSpec{
				Process:    p.proc,
				Inertia:    0.5,
				Replicates: replicates,
				Seed:       chanalloc.EngineJobSeed(env.seed, cell),
				Workers:    env.workers,
			})
			if err != nil {
				return err
			}
			cell++
			rows = append(rows, []string{
				fmt.Sprintf("%dx%dx%d", cfg.n, cfg.c, cfg.k),
				p.name,
				fmt.Sprintf("%d/%d", res.Converged, replicates),
				fmt.Sprintf("%.2f", res.MeanRounds),
				fmt.Sprintf("%.2f", res.MeanMoves),
			})
		}
	}
	table, err := textplot.Table(
		[]string{"game (NxCxk)", "process", "converged", "mean rounds", "mean moves"}, rows)
	if err != nil {
		return err
	}
	fmt.Fprint(out, table)
	fmt.Fprintln(out)
	return writeCSV(env.csvDir, "e6_dynamics.csv", []string{"game", "process", "converged", "rounds", "moves"}, rows)
}

// expDist (E7) checks the distributed token ring: greedy devices reproduce
// the centralised Algorithm 1 exactly; best-response devices converge to a
// NE.
func expDist(out io.Writer, env expEnv) error {
	fmt.Fprintln(out, "== E7: distributed protocol vs centralised Algorithm 1 ==")
	rows := [][]string{}
	for _, cfg := range []struct{ n, c, k int }{
		{4, 4, 2}, {7, 6, 4}, {12, 8, 5},
	} {
		r := chanalloc.TDMA(1)
		g, err := chanalloc.NewGame(cfg.n, cfg.c, cfg.k, r)
		if err != nil {
			return err
		}
		greedy, err := chanalloc.RunDistributed(g, chanalloc.UniformPolicies(g.Users(),
			func(int) chanalloc.Policy { return &chanalloc.GreedyPolicy{} }))
		if err != nil {
			return err
		}
		central, err := chanalloc.Algorithm1(g)
		if err != nil {
			return err
		}
		br, err := chanalloc.RunDistributed(g, chanalloc.UniformPolicies(g.Users(),
			func(int) chanalloc.Policy { return &chanalloc.BestResponsePolicy{Rate: r} }))
		if err != nil {
			return err
		}
		brNE, err := g.IsNashEquilibrium(br.Alloc)
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%dx%dx%d", cfg.n, cfg.c, cfg.k),
			fmt.Sprintf("%v", greedy.Alloc.Equal(central)),
			fmt.Sprintf("%d", greedy.Stats.Messages),
			fmt.Sprintf("%v", brNE),
			fmt.Sprintf("%d", br.Stats.Rounds),
		})
	}
	table, err := textplot.Table(
		[]string{"game (NxCxk)", "greedy == Algorithm 1", "messages", "BR ring NE", "BR rounds"}, rows)
	if err != nil {
		return err
	}
	fmt.Fprint(out, table)
	fmt.Fprintln(out)
	return writeCSV(env.csvDir, "e7_dist.csv",
		[]string{"game", "greedy_matches", "messages", "br_ne", "br_rounds"}, rows)
}

// expBoundary (E8) sweeps the decay rate alpha of R(k) = 1/(1+alpha(k-1))
// and reports whether the Figure 4 exception NE survives the exact oracle.
// Theorem 1's conditions are rate-independent, so any "no" row is a
// sufficiency gap for that decay rate.
func expBoundary(out io.Writer, env expEnv) error {
	fmt.Fprintln(out, "== E8: decay boundary of Theorem 1 sufficiency (Figure 4 exception NE) ==")
	rows := [][]string{}
	for _, alpha := range []float64{0, 1e-4, 1e-3, 0.01, 0.05, 0.1, 0.2, 0.5, 1.0} {
		s, err := chanalloc.ScenarioFigure4(chanalloc.HarmonicRate(1, alpha))
		if err != nil {
			return err
		}
		thm, _ := chanalloc.TheoremNE(s.Game, s.Alloc)
		dev, err := s.Game.FindDeviation(s.Alloc, chanalloc.DefaultEps)
		if err != nil {
			return err
		}
		deviation, gain := "-", "-"
		if dev != nil {
			deviation = fmt.Sprintf("u%d: %v -> %v", dev.User+1, dev.Current, dev.Better)
			gain = fmt.Sprintf("%+.2e", dev.Gain)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%g", alpha),
			fmt.Sprintf("%v", thm),
			fmt.Sprintf("%v", dev == nil),
			fmt.Sprintf("%v", thm != (dev == nil)),
			deviation,
			gain,
		})
	}
	table, err := textplot.Table(
		[]string{"alpha", "Theorem 1", "exact oracle", "gap", "best deviation", "gain"}, rows)
	if err != nil {
		return err
	}
	fmt.Fprint(out, table)
	fmt.Fprintln(out)
	return writeCSV(env.csvDir, "e8_boundary.csv",
		[]string{"alpha", "theorem", "oracle", "gap", "deviation", "gain"}, rows)
}

// expPoA (E9) measures the welfare ratio of the load-balanced NE against
// the all-placed and idle-allowed optima as the rate function decays.
func expPoA(out io.Writer, env expEnv) error {
	fmt.Fprintln(out, "== E9: price of anarchy of the balanced NE across rate decay ==")
	rows := [][]string{}
	g0 := struct{ n, c, k int }{7, 6, 4}
	for _, alpha := range []float64{0, 0.1, 0.25, 0.5, 1.0, 2.0} {
		r := chanalloc.HarmonicRate(1, alpha)
		g, err := chanalloc.NewGame(g0.n, g0.c, g0.k, r)
		if err != nil {
			return err
		}
		ne, err := chanalloc.Algorithm1(g)
		if err != nil {
			return err
		}
		welfare := g.Welfare(ne)
		allOpt, _ := chanalloc.OptimalWelfareAllPlaced(g)
		idleOpt, _ := chanalloc.OptimalWelfareIdleAllowed(g)
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", alpha),
			fmt.Sprintf("%.4f", welfare),
			fmt.Sprintf("%.4f", allOpt),
			fmt.Sprintf("%.4f", welfare/allOpt),
			fmt.Sprintf("%.4f", idleOpt),
			fmt.Sprintf("%.4f", welfare/idleOpt),
		})
	}
	table, err := textplot.Table(
		[]string{"alpha", "NE welfare", "all-placed opt", "ratio", "idle-allowed opt", "ratio"}, rows)
	if err != nil {
		return err
	}
	fmt.Fprint(out, table)
	fmt.Fprintln(out)
	return writeCSV(env.csvDir, "e9_poa.csv",
		[]string{"alpha", "welfare", "all_opt", "all_ratio", "idle_opt", "idle_ratio"}, rows)
}

// expLiteral (E10) quantifies the paper-literal Algorithm 1 rule: across
// random tie-break seeds, how often does the literal candidate set land off
// equilibrium, versus the corrected rule. The seed batch fans out over the
// engine.
func expLiteral(out io.Writer, env expEnv) error {
	fmt.Fprintln(out, "== E10: paper-literal vs corrected Algorithm 1 placement rule ==")
	rows := [][]string{}
	const seeds = 200
	for _, cfg := range []struct{ n, c, k int }{
		{2, 5, 4}, {3, 5, 4}, {5, 7, 5}, {7, 6, 4},
	} {
		g, err := chanalloc.NewGame(cfg.n, cfg.c, cfg.k, chanalloc.TDMA(1))
		if err != nil {
			return err
		}
		type verdict struct{ literalFail, correctedFail bool }
		verdicts, _, err := chanalloc.ParallelMap(seeds, func(j int, rng *chanalloc.RNG) (verdict, error) {
			var v verdict
			seed := rng.Uint64()
			lit, err := chanalloc.Algorithm1(g,
				chanalloc.WithTieBreak(chanalloc.TieRandom),
				chanalloc.WithSeed(seed),
				chanalloc.WithLiteralRule())
			if err != nil {
				return v, err
			}
			ne, err := g.IsNashEquilibrium(lit)
			if err != nil {
				return v, err
			}
			v.literalFail = !ne
			cor, err := chanalloc.Algorithm1(g,
				chanalloc.WithTieBreak(chanalloc.TieRandom),
				chanalloc.WithSeed(seed))
			if err != nil {
				return v, err
			}
			ne, err = g.IsNashEquilibrium(cor)
			if err != nil {
				return v, err
			}
			v.correctedFail = !ne
			return v, nil
		}, chanalloc.EngineWorkers(env.workers), chanalloc.EngineSeed(env.seed))
		if err != nil {
			return err
		}
		literalFail, correctedFail := 0, 0
		for _, v := range verdicts {
			if v.literalFail {
				literalFail++
			}
			if v.correctedFail {
				correctedFail++
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%dx%dx%d", cfg.n, cfg.c, cfg.k),
			fmt.Sprintf("%.1f%%", 100*float64(literalFail)/seeds),
			fmt.Sprintf("%.1f%%", 100*float64(correctedFail)/seeds),
		})
	}
	table, err := textplot.Table(
		[]string{"game (NxCxk)", "literal rule non-NE", "corrected rule non-NE"}, rows)
	if err != nil {
		return err
	}
	fmt.Fprint(out, table)
	fmt.Fprintln(out)
	return writeCSV(env.csvDir, "e10_literal.csv", []string{"game", "literal_fail", "corrected_fail"}, rows)
}

// expDistBatch (E12) is experiment E7 at scale: a full (game × policy-mix)
// grid of token-ring runs batched over the engine via dist.RunBatch instead
// of one RunLocal at a time. Greedy rings must still reproduce centralised
// Algorithm 1, best-response rings must still land on NE — now verified
// across the whole grid in one engine pass, with randomised-tie-break
// policies seeded from each run's private stream.
func expDistBatch(out io.Writer, env expEnv) error {
	fmt.Fprintln(out, "== E12: batched distributed protocol (game × policy-mix grid) ==")
	r := chanalloc.TDMA(1)
	games := []struct{ n, c, k int }{
		{4, 4, 2}, {5, 4, 3}, {7, 6, 4}, {10, 8, 4}, {12, 8, 5},
	}
	mixes := []struct {
		name    string
		factory func(g *chanalloc.Game) func(rng *chanalloc.RNG) ([]chanalloc.Policy, error)
	}{
		{"greedy", func(g *chanalloc.Game) func(rng *chanalloc.RNG) ([]chanalloc.Policy, error) {
			return func(rng *chanalloc.RNG) ([]chanalloc.Policy, error) {
				return chanalloc.UniformPolicies(g.Users(), func(int) chanalloc.Policy {
					return &chanalloc.GreedyPolicy{}
				}), nil
			}
		}},
		{"best-response", func(g *chanalloc.Game) func(rng *chanalloc.RNG) ([]chanalloc.Policy, error) {
			return func(rng *chanalloc.RNG) ([]chanalloc.Policy, error) {
				return chanalloc.UniformPolicies(g.Users(), func(int) chanalloc.Policy {
					return &chanalloc.BestResponsePolicy{Rate: r}
				}), nil
			}
		}},
		{"mixed", func(g *chanalloc.Game) func(rng *chanalloc.RNG) ([]chanalloc.Policy, error) {
			return func(rng *chanalloc.RNG) ([]chanalloc.Policy, error) {
				return chanalloc.UniformPolicies(g.Users(), func(user int) chanalloc.Policy {
					if user%2 == 0 {
						return &chanalloc.GreedyPolicy{Tie: chanalloc.TieRandom, Seed: rng.Uint64()}
					}
					return &chanalloc.BestResponsePolicy{Rate: r}
				}), nil
			}
		}},
	}
	var specs []chanalloc.DistRunSpec
	gameObjs := make([]*chanalloc.Game, len(games))
	for gi, cfg := range games {
		g, err := chanalloc.NewGame(cfg.n, cfg.c, cfg.k, r)
		if err != nil {
			return err
		}
		gameObjs[gi] = g
		for _, mix := range mixes {
			specs = append(specs, chanalloc.DistRunSpec{Game: g, Policies: mix.factory(g)})
		}
	}
	res, err := chanalloc.RunDistributedBatch(specs,
		chanalloc.EngineSeed(env.seed), chanalloc.EngineWorkers(env.workers))
	if err != nil {
		return err
	}
	rows := [][]string{}
	for i, runRes := range res.Runs {
		gi, mi := i/len(mixes), i%len(mixes)
		g := gameObjs[gi]
		ne, err := g.IsNashEquilibrium(runRes.Alloc)
		if err != nil {
			return err
		}
		matches := "-"
		if mixes[mi].name == "greedy" {
			central, err := chanalloc.Algorithm1(g)
			if err != nil {
				return err
			}
			matches = fmt.Sprintf("%v", runRes.Alloc.Equal(central))
		}
		rows = append(rows, []string{
			fmt.Sprintf("%dx%dx%d", games[gi].n, games[gi].c, games[gi].k),
			mixes[mi].name,
			fmt.Sprintf("%v", runRes.Stats.Converged),
			fmt.Sprintf("%v", ne),
			matches,
			fmt.Sprintf("%d", runRes.Stats.Rounds),
			fmt.Sprintf("%d", runRes.Stats.Messages),
		})
	}
	table, err := textplot.Table(
		[]string{"game (NxCxk)", "policy mix", "converged", "NE", "greedy == Alg 1", "rounds", "messages"}, rows)
	if err != nil {
		return err
	}
	fmt.Fprint(out, table)
	fmt.Fprintf(out, "batch: %d runs, %d protocol messages\n\n", len(res.Runs), res.Messages)
	return writeCSV(env.csvDir, "e12_distbatch.csv",
		[]string{"game", "mix", "converged", "ne", "greedy_matches", "rounds", "messages"}, rows)
}

// expHetero (E11) extends the model to heterogeneous radio budgets and
// checks which of the paper's structural results survive: full deployment,
// load balancing (δ <= 1), the NE property of sequential greedy
// allocation — and how the NE welfare compares to the heterogeneous
// all-placed optimum (price of anarchy). The seed batch fans out over the
// engine.
func expHetero(out io.Writer, env expEnv) error {
	fmt.Fprintln(out, "== E11: heterogeneous radio budgets (beyond the paper's uniform k) ==")
	rows := [][]string{}
	cases := []struct {
		channels int
		budgets  []int
	}{
		{4, []int{4, 2, 1}},
		{6, []int{4, 4, 2, 2, 1}},
		{8, []int{8, 1, 1, 1}},
		{5, []int{3, 3, 3, 2, 2, 1}},
	}
	for _, cfg := range cases {
		for _, rate := range []chanalloc.RateFunc{
			chanalloc.TDMA(1),
			chanalloc.HarmonicRate(1, 0.5),
		} {
			g, err := chanalloc.NewHeteroGame(cfg.channels, cfg.budgets, rate)
			if err != nil {
				return err
			}
			const seeds = 20
			type verdict struct{ ne, balanced bool }
			verdicts, _, err := chanalloc.ParallelMap(seeds, func(j int, rng *chanalloc.RNG) (verdict, error) {
				var v verdict
				a, err := chanalloc.HeteroAlgorithm1(g, chanalloc.TieRandom, rng.Uint64())
				if err != nil {
					return v, err
				}
				v.ne, err = g.IsNashEquilibrium(a)
				if err != nil {
					return v, err
				}
				v.balanced = chanalloc.LoadBalanced(a)
				return v, nil
			}, chanalloc.EngineWorkers(env.workers), chanalloc.EngineSeed(env.seed))
			if err != nil {
				return err
			}
			neOK, balanced := 0, true
			for _, v := range verdicts {
				if v.ne {
					neOK++
				}
				if !v.balanced {
					balanced = false
				}
			}
			// Welfare of the deterministic greedy NE against the
			// heterogeneous all-placed optimum: the price of anarchy beyond
			// uniform k.
			a, err := chanalloc.HeteroAlgorithm1(g, chanalloc.TieFirst, 0)
			if err != nil {
				return err
			}
			opt, _ := chanalloc.HeteroOptimalWelfareAllPlaced(g)
			welfare := g.Welfare(a)
			// Exhaustive Pareto-optimality of the greedy NE, where the
			// strategy space is small enough: the orbit-aware search under a
			// tight cap on the unreduced profile count. Deployments over the
			// cap report "-" rather than paying an exponential walk.
			paretoOpt := "-"
			w, perr := chanalloc.HeteroFindParetoImprovement(g, a, 1e-9, 200_000)
			switch {
			case perr == nil:
				paretoOpt = fmt.Sprintf("%v", w == nil)
			case !strings.Contains(perr.Error(), "profiles"):
				return perr
			}
			rows = append(rows, []string{
				fmt.Sprintf("C=%d k=%v", cfg.channels, cfg.budgets),
				rate.Name(),
				fmt.Sprintf("%d/%d", neOK, seeds),
				fmt.Sprintf("%v", balanced),
				fmt.Sprintf("%.4f", welfare),
				fmt.Sprintf("%.4f", opt),
				fmt.Sprintf("%.4f", welfare/opt),
				paretoOpt,
			})
		}
	}
	table, err := textplot.Table(
		[]string{"deployment", "rate", "NE runs", "δ<=1 always", "NE welfare", "all-placed opt", "PoA", "Pareto-opt"}, rows)
	if err != nil {
		return err
	}
	fmt.Fprint(out, table)
	fmt.Fprintln(out)
	return writeCSV(env.csvDir, "e11_hetero.csv",
		[]string{"deployment", "rate", "ne_runs", "balanced", "welfare", "all_opt", "poa", "pareto_opt"}, rows)
}

// writeCSV writes rows to csvDir/name when csvDir is set.
func writeCSV(csvDir, name string, headers []string, rows [][]string) error {
	if csvDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(csvDir, name))
	if err != nil {
		return fmt.Errorf("creating %s: %w", name, err)
	}
	defer f.Close()
	return textplot.WriteCSV(f, headers, rows)
}
