// Command sweep runs the repository's experiment suite (EXPERIMENTS.md)
// and prints the tables recorded there. Each experiment has an id matching
// the EXPERIMENTS.md index:
//
//	E1  lemmas    — Figure 1 walkthrough: lemma violations + profitable moves
//	E2  theorem1  — Theorem 1 checker vs exact oracle, exhaustive tiny games
//	E3  pareto    — Theorem 2: NE Pareto-optimality on tiny games
//	E4  alg1      — Algorithm 1 always lands on a NE; welfare ratio
//	E5  fairshare — CSMA/CA simulator: equal shares + model agreement
//	E6  dynamics  — convergence speed of best-response dynamics
//	E7  dist      — distributed protocol equals centralised Algorithm 1
//	E8  boundary  — rate-decay boundary of Theorem 1 sufficiency
//	E9  poa       — price of anarchy of NE across rate decay
//	E10 literal   — the paper-literal Algorithm 1 rule failure rate
//	E11 hetero    — heterogeneous radio budgets: NE properties beyond
//	                the paper's uniform-k assumption
//
// The suite executes on the parallel experiment engine: experiments run as
// jobs over a -workers-sized pool, and their internal batch paths (seed
// sweeps, NE enumeration, dynamics replicates) each fan out over their own
// pool of the same size — nested fan-out, so peak concurrency can exceed
// -workers. All randomness derives from -seed through per-job PRNG
// streams, so output — stdout and CSVs — is byte-identical for any
// -workers value.
//
//	sweep -exp all                    # run everything (few minutes)
//	sweep -exp boundary               # one experiment
//	sweep -exp all -out data/         # also write CSVs
//	sweep -exp all -seed 7 -workers 4 # reproducible, 4 workers
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/multiradio/chanalloc"
)

// experiment names in execution (and output) order.
var experimentOrder = []string{
	"lemmas", "theorem1", "pareto", "alg1", "fairshare",
	"dynamics", "dist", "boundary", "poa", "literal", "hetero",
}

var experiments = map[string]func(io.Writer, expEnv) error{
	"lemmas":    expLemmas,
	"theorem1":  expTheorem1,
	"pareto":    expPareto,
	"alg1":      expAlg1,
	"fairshare": expFairShare,
	"dynamics":  expDynamics,
	"dist":      expDist,
	"boundary":  expBoundary,
	"poa":       expPoA,
	"literal":   expLiteral,
	"hetero":    expHetero,
}

// experimentIndex returns an experiment's fixed position in
// experimentOrder. Per-experiment seeds derive from this index, so the
// stream an experiment sees does not depend on which subset runs.
func experimentIndex(name string) int {
	for i, n := range experimentOrder {
		if n == name {
			return i
		}
	}
	return -1
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment to run (see package doc) or all")
	csvDir := fs.String("out", "", "directory for CSV output (omit to skip)")
	seed := fs.Uint64("seed", 0, "root seed for every randomised experiment")
	workers := fs.Int("workers", 0, "worker-pool size (<= 0 means NumCPU)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fmt.Errorf("creating output dir: %w", err)
		}
	}
	names := experimentOrder
	if *exp != "all" {
		if _, ok := experiments[*exp]; !ok {
			return fmt.Errorf("unknown experiment %q", *exp)
		}
		names = []string{*exp}
	}

	// Experiments are themselves engine jobs: each writes into its own
	// buffer, the buffers print in suite order. A failing experiment does
	// not discard the others' completed output — everything before it in
	// the suite still prints, then its error surfaces with the name
	// attached.
	type expResult struct {
		buf bytes.Buffer
		err error
	}
	results, _, err := chanalloc.ParallelMap(len(names), func(i int, _ *chanalloc.RNG) (*expResult, error) {
		name := names[i]
		env := expEnv{
			csvDir:  *csvDir,
			seed:    chanalloc.EngineJobSeed(*seed, experimentIndex(name)),
			workers: *workers,
		}
		var res expResult
		if err := experiments[name](&res.buf, env); err != nil {
			res.err = fmt.Errorf("experiment %s: %w", name, err)
		}
		return &res, nil
	}, chanalloc.EngineWorkers(*workers))
	if err != nil {
		return err
	}
	for _, res := range results {
		if res.err != nil {
			return res.err
		}
		if _, err := io.Copy(out, &res.buf); err != nil {
			return err
		}
	}
	return nil
}
