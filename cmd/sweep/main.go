// Command sweep runs the repository's experiment suite (EXPERIMENTS.md)
// and prints the tables recorded there. Each experiment has an id matching
// the EXPERIMENTS.md index:
//
//	E1  lemmas    — Figure 1 walkthrough: lemma violations + profitable moves
//	E2  theorem1  — Theorem 1 checker vs exact oracle, exhaustive tiny games
//	E3  pareto    — Theorem 2: NE Pareto-optimality on tiny games
//	E4  alg1      — Algorithm 1 always lands on a NE; welfare ratio
//	E5  fairshare — CSMA/CA simulator: equal shares + model agreement
//	E6  dynamics  — convergence speed of best-response dynamics
//	E7  dist      — distributed protocol equals centralised Algorithm 1
//	E8  boundary  — rate-decay boundary of Theorem 1 sufficiency
//	E9  poa       — price of anarchy of NE across rate decay
//	E10 literal   — the paper-literal Algorithm 1 rule failure rate
//	E11 hetero    — heterogeneous radio budgets: NE properties, welfare
//	                optimum and price of anarchy beyond uniform k
//	E12 distbatch — E7 at scale: a (game × policy-mix) grid of token rings
//	                batched over the engine (dist.RunBatch)
//
// The suite executes on the parallel experiment engine through a pluggable
// backend: experiments run as jobs of a registered engine task, fanned out
// over the in-process pool (default), over worker subprocesses (-backend
// process -shards N; each shard is this binary re-exec'd in engine-worker
// mode, speaking newline-delimited JSON over stdio), over socket workers
// on other machines (-backend socket -addrs host:port,... — same wire
// protocol, plus a version handshake per connection; see EXPERIMENTS.md
// for the frame grammar), or over a worker cluster (-backend cluster
// -listen-workers :9100 — the connection direction reverses: workers dial
// in with `engineworker -join` or `sweep -join` and register, may join or
// leave mid-batch, heartbeat for liveness, and receive a pipelined -window
// of jobs each). Socket workers are sweep binaries started with -listen,
// so the experiment task is registered on both ends; note that experiments
// write CSVs on the machine that runs them, so -out expects a shared
// filesystem when peers are remote. -auth-token arms a shared-secret check
// in every handshake; -tls-cert/-tls-key (listening paths) and -tls-ca
// (dialing paths) run the same wire protocol over TLS with frame bytes
// unchanged. A cluster sweep can checkpoint progress with -journal path
// and, after a coordinator crash, rerun with -resume to skip completed
// jobs — the resumed output is byte-identical to an uninterrupted run (see
// EXPERIMENTS.md, "Fault tolerance"). The experiments' internal batch
// paths (seed sweeps,
// NE enumeration, dynamics replicates, batched protocol rings) each fan
// out over their own -workers-sized in-process pool — nested fan-out, so
// peak concurrency can exceed -workers. All randomness derives from -seed
// through per-job PRNG streams, so output — stdout and CSVs — is
// byte-identical for any -workers value AND any backend/shard/peer/window
// combination.
//
//	sweep -exp all                        # run everything (few minutes)
//	sweep -exp boundary                   # one experiment
//	sweep -exp all -out data/             # also write CSVs
//	sweep -exp all -seed 7 -workers 4     # reproducible, 4 workers
//	sweep -exp all -backend process -shards 4  # shard over 4 subprocesses
//	sweep -listen :9000                   # serve as a socket worker, then:
//	sweep -exp all -backend socket -addrs host1:9000,host2:9000
//	sweep -join host:9100                 # serve as a cluster worker, and:
//	sweep -exp all -backend cluster -listen-workers :9100 -window 8
package main

import (
	"bytes"
	"crypto/tls"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/multiradio/chanalloc"
)

// experiment names in execution (and output) order.
var experimentOrder = []string{
	"lemmas", "theorem1", "pareto", "alg1", "fairshare",
	"dynamics", "dist", "boundary", "poa", "literal", "hetero",
	"distbatch",
}

var experiments = map[string]func(io.Writer, expEnv) error{
	"lemmas":    expLemmas,
	"theorem1":  expTheorem1,
	"pareto":    expPareto,
	"alg1":      expAlg1,
	"fairshare": expFairShare,
	"dynamics":  expDynamics,
	"dist":      expDist,
	"boundary":  expBoundary,
	"poa":       expPoA,
	"literal":   expLiteral,
	"hetero":    expHetero,
	"distbatch": expDistBatch,
}

// experimentIndex returns an experiment's fixed position in
// experimentOrder. Per-experiment seeds derive from this index, so the
// stream an experiment sees does not depend on which subset runs — or on
// which backend shard runs it.
func experimentIndex(name string) int {
	for i, n := range experimentOrder {
		if n == name {
			return i
		}
	}
	return -1
}

// expTask is the engine task name the suite runs under; registering the
// experiments as a task is what lets the process backend ship them to
// worker subprocesses.
const expTask = "sweep/experiment"

// expParams is the batch-wide parameter blob of the experiment task.
type expParams struct {
	// Exps lists the experiments of the batch; job i runs Exps[i].
	Exps []string `json:"exps"`
	// CSVDir is where experiments write CSVs ("" skips them). Worker
	// subprocesses share the coordinator's filesystem, so CSVs land in the
	// same place on every backend.
	CSVDir string `json:"csv_dir,omitempty"`
	// Seed is the root -seed flag; each experiment derives its private
	// root from it and its fixed index.
	Seed uint64 `json:"seed"`
	// Workers sizes the experiments' internal in-process pools.
	Workers int `json:"workers"`
}

// expOutput is one experiment's result. A failing experiment reports its
// error here rather than as a job error so the batch still completes and
// the suite can print everything that preceded the failure, exactly like
// the historical in-process path.
type expOutput struct {
	Output string `json:"output"`
	Err    string `json:"err,omitempty"`
}

func init() {
	if err := chanalloc.RegisterEngineTask(expTask,
		func(raw json.RawMessage, job int, _ *chanalloc.RNG) (any, error) {
			var p expParams
			if err := json.Unmarshal(raw, &p); err != nil {
				return nil, fmt.Errorf("decoding params: %w", err)
			}
			if job < 0 || job >= len(p.Exps) {
				return nil, fmt.Errorf("job %d outside %d experiments", job, len(p.Exps))
			}
			name := p.Exps[job]
			fn, ok := experiments[name]
			if !ok {
				return nil, fmt.Errorf("unknown experiment %q", name)
			}
			env := expEnv{
				csvDir:  p.CSVDir,
				seed:    chanalloc.EngineJobSeed(p.Seed, experimentIndex(name)),
				workers: p.Workers,
			}
			var out expOutput
			var buf bytes.Buffer
			if err := fn(&buf, env); err != nil {
				out.Err = fmt.Sprintf("experiment %s: %v", name, err)
			}
			out.Output = buf.String()
			return out, nil
		}); err != nil {
		panic(err)
	}
}

func main() {
	// In engine-worker mode (spawned by -backend process) this serves task
	// jobs over stdio and exits; in a normal run it is a no-op.
	chanalloc.RunEngineWorkerIfRequested()
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// writeTraceFile dumps the global trace ring as NDJSON to path.
func writeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := chanalloc.WriteObsTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// splitAddrs parses a comma-separated -addrs list: entries are trimmed of
// surrounding whitespace, and an empty entry — a doubled, leading or
// trailing comma — is a loud configuration error instead of a silently
// skipped (or worse, dialed) "" address.
func splitAddrs(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	list := make([]string, 0, len(parts))
	for i, addr := range parts {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			return nil, fmt.Errorf("-addrs entry %d of %d is empty (stray comma in %q?)",
				i+1, len(parts), s)
		}
		list = append(list, addr)
	}
	return list, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment to run (see package doc) or all")
	csvDir := fs.String("out", "", "directory for CSV output (omit to skip)")
	seed := fs.Uint64("seed", 0, "root seed for every randomised experiment")
	workers := fs.Int("workers", 0, "worker-pool size (<= 0 means NumCPU)")
	backendName := fs.String("backend", "inprocess", "engine backend: inprocess, process, socket or cluster")
	shards := fs.Int("shards", 0, "worker subprocesses for -backend process (<= 0 means NumCPU)")
	addrs := fs.String("addrs", "", "comma-separated worker addresses for -backend socket (host:port or unix:/path)")
	listen := fs.String("listen", "", "serve as a socket worker on this address instead of running experiments")
	join := fs.String("join", "", "serve as a cluster worker joined to this coordinator address instead of running experiments")
	listenWorkers := fs.String("listen-workers", "", "accept cluster-worker joins on this address (-backend cluster)")
	window := fs.Int("window", 8, "outstanding jobs per cluster worker (-backend cluster; 1 = lock-step)")
	joinWait := fs.Duration("join-wait", 30*time.Second, "how long a cluster batch waits while no worker is joined")
	authToken := fs.String("auth-token", "", "shared secret checked in every worker handshake")
	metricsAddr := fs.String("metrics", "", "serve /metrics, /metrics.json, /trace and /debug/pprof on this address (empty disables)")
	traceOut := fs.String("trace-out", "", "write the structured trace ring as NDJSON to this file when the run ends")
	tlsCert := fs.String("tls-cert", "", "serve TLS on listening paths (-listen, -listen-workers) with this PEM certificate (requires -tls-key)")
	tlsKey := fs.String("tls-key", "", "PEM private key for -tls-cert")
	tlsCA := fs.String("tls-ca", "", "dial TLS on outgoing paths (-backend socket, -join) verifying against this PEM CA bundle")
	tlsSkipVerify := fs.Bool("tls-skip-verify", false, "dial TLS without verifying the peer certificate (tests only)")
	journalPath := fs.String("journal", "", "checkpoint cluster-batch progress to this NDJSON file (-backend cluster)")
	resume := fs.Bool("resume", false, "recover completed jobs from -journal before dispatching (skipped jobs are never re-run)")
	journalFsync := fs.Int("journal-fsync", 1, "fsync the journal every N completed jobs")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// TLS configs are built eagerly so a bad flag combination or unreadable
	// file fails before any listener binds or worker dials.
	var serverTLS, clientTLS *tls.Config
	if *tlsCert != "" || *tlsKey != "" {
		cfg, err := chanalloc.EngineServerTLSConfig(*tlsCert, *tlsKey)
		if err != nil {
			return err
		}
		serverTLS = cfg
	}
	if *tlsCA != "" || *tlsSkipVerify {
		cfg, err := chanalloc.EngineClientTLSConfig(*tlsCA, *tlsSkipVerify)
		if err != nil {
			return err
		}
		clientTLS = cfg
	}
	if *journalPath != "" && *backendName != "cluster" {
		return fmt.Errorf("-journal only applies to -backend cluster (got -backend %s)", *backendName)
	}
	if *resume && *journalPath == "" {
		return fmt.Errorf("-resume needs -journal path (there is nothing to resume from)")
	}
	if *journalFsync < 1 {
		return fmt.Errorf("-journal-fsync must be >= 1, got %d", *journalFsync)
	}
	if *metricsAddr != "" {
		ms, err := chanalloc.ServeObs(*metricsAddr)
		if err != nil {
			return err
		}
		defer ms.Close()
		fmt.Fprintln(os.Stderr, "sweep: metrics on", ms.Addr)
	}
	if *traceOut != "" {
		// Deferred so a failing suite still dumps its trace — the failure
		// is exactly when the dispatch/requeue/eviction record matters.
		defer func() {
			if err := writeTraceFile(*traceOut); err != nil {
				fmt.Fprintln(os.Stderr, "sweep: writing trace:", err)
			}
		}()
	}
	if *listen != "" {
		fmt.Fprintf(out, "sweep: protocol v%d, serving %v on %s\n",
			chanalloc.EngineProtocolVersion, chanalloc.EngineTaskNames(), *listen)
		serveOpts := []chanalloc.ServeOption{chanalloc.ServeAuthToken(*authToken)}
		if serverTLS != nil {
			serveOpts = append(serveOpts, chanalloc.ServeTLS(serverTLS))
		}
		return chanalloc.EngineListenAndServe(*listen, serveOpts...)
	}
	if *join != "" {
		fmt.Fprintf(out, "sweep: protocol v%d, serving %v, joining %s\n",
			chanalloc.EngineProtocolVersion, chanalloc.EngineTaskNames(), *join)
		joinOpts := []chanalloc.JoinOption{chanalloc.JoinAuthToken(*authToken)}
		if clientTLS != nil {
			joinOpts = append(joinOpts, chanalloc.JoinTLS(clientTLS))
		}
		return chanalloc.EngineJoinAndServe(*join, joinOpts...)
	}
	var backend chanalloc.EngineBackend
	switch *backendName {
	case "inprocess":
		backend = chanalloc.NewInProcessBackend()
	case "process":
		backend = chanalloc.NewProcessBackend(*shards)
	case "socket":
		list, err := splitAddrs(*addrs)
		if err != nil {
			return err
		}
		if len(list) == 0 {
			return fmt.Errorf("-backend socket needs -addrs host:port[,host:port...]")
		}
		sockOpts := []chanalloc.SocketOption{chanalloc.SocketAuthToken(*authToken)}
		if clientTLS != nil {
			sockOpts = append(sockOpts, chanalloc.SocketTLS(clientTLS))
		}
		backend = chanalloc.NewSocketBackendWith(list, sockOpts...)
	case "cluster":
		if *listenWorkers == "" {
			return fmt.Errorf("-backend cluster needs -listen-workers addr (workers join it with `engineworker -join addr`)")
		}
		// Loud validation: the option constructors ignore out-of-range
		// values, which would silently run the defaults instead.
		if *window < 1 {
			return fmt.Errorf("-window must be >= 1 (1 means lock-step dispatch), got %d", *window)
		}
		if *joinWait <= 0 {
			return fmt.Errorf("-join-wait must be positive, got %v", *joinWait)
		}
		clusterOpts := []chanalloc.ClusterOption{
			chanalloc.ClusterWindow(*window),
			chanalloc.ClusterJoinWait(*joinWait),
			chanalloc.ClusterAuthToken(*authToken),
		}
		if serverTLS != nil {
			clusterOpts = append(clusterOpts, chanalloc.ClusterTLS(serverTLS))
		}
		if *journalPath != "" {
			clusterOpts = append(clusterOpts,
				chanalloc.ClusterJournal(*journalPath),
				chanalloc.ClusterResume(*resume),
				chanalloc.ClusterJournalFsync(*journalFsync))
		}
		c, err := chanalloc.NewClusterBackend(*listenWorkers, clusterOpts...)
		if err != nil {
			return err
		}
		defer c.Close()
		backend = c
	default:
		return fmt.Errorf("unknown backend %q (want inprocess, process, socket or cluster)", *backendName)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fmt.Errorf("creating output dir: %w", err)
		}
	}
	names := experimentOrder
	if *exp != "all" {
		if _, ok := experiments[*exp]; !ok {
			return fmt.Errorf("unknown experiment %q", *exp)
		}
		names = []string{*exp}
	}

	// Experiments are jobs of one engine-task batch over the selected
	// backend: each writes into its own buffer, the buffers print in suite
	// order. A failing experiment does not discard the others' completed
	// output — everything before it in the suite still prints, then its
	// error surfaces with the name attached.
	results, _, err := chanalloc.RunEngineTask[expOutput](backend, expTask, expParams{
		Exps:    names,
		CSVDir:  *csvDir,
		Seed:    *seed,
		Workers: *workers,
	}, len(names), chanalloc.EngineWorkers(*workers))
	if err != nil {
		return err
	}
	for _, res := range results {
		if res.Err != "" {
			return errors.New(res.Err)
		}
		if _, err := io.WriteString(out, res.Output); err != nil {
			return err
		}
	}
	return nil
}
