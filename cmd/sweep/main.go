// Command sweep runs the repository's experiment suite (EXPERIMENTS.md)
// and prints the tables recorded there. Each experiment has an id matching
// the DESIGN.md index:
//
//	E1  lemmas    — Figure 1 walkthrough: lemma violations + profitable moves
//	E2  theorem1  — Theorem 1 checker vs exact oracle, exhaustive tiny games
//	E3  pareto    — Theorem 2: NE Pareto-optimality on tiny games
//	E4  alg1      — Algorithm 1 always lands on a NE; welfare ratio
//	E5  fairshare — CSMA/CA simulator: equal shares + model agreement
//	E6  dynamics  — convergence speed of best-response dynamics
//	E7  dist      — distributed protocol equals centralised Algorithm 1
//	E8  boundary  — rate-decay boundary of Theorem 1 sufficiency
//	E9  poa       — price of anarchy of NE across rate decay
//	E10 literal   — the paper-literal Algorithm 1 rule failure rate
//	E11 hetero    — heterogeneous radio budgets: NE properties beyond
//	                the paper's uniform-k assumption
//
//	sweep -exp all            # run everything (few minutes)
//	sweep -exp boundary       # one experiment
//	sweep -exp all -out data/ # also write CSVs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// experiment names in execution order.
var experimentOrder = []string{
	"lemmas", "theorem1", "pareto", "alg1", "fairshare",
	"dynamics", "dist", "boundary", "poa", "literal", "hetero",
}

var experiments = map[string]func(io.Writer, string) error{
	"lemmas":    expLemmas,
	"theorem1":  expTheorem1,
	"pareto":    expPareto,
	"alg1":      expAlg1,
	"fairshare": expFairShare,
	"dynamics":  expDynamics,
	"dist":      expDist,
	"boundary":  expBoundary,
	"poa":       expPoA,
	"literal":   expLiteral,
	"hetero":    expHetero,
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment to run (see package doc) or all")
	csvDir := fs.String("out", "", "directory for CSV output (omit to skip)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fmt.Errorf("creating output dir: %w", err)
		}
	}
	if *exp == "all" {
		for _, name := range experimentOrder {
			if err := experiments[name](out, *csvDir); err != nil {
				return fmt.Errorf("experiment %s: %w", name, err)
			}
		}
		return nil
	}
	fn, ok := experiments[*exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return fn(out, *csvDir)
}
