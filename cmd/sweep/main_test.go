package main

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"github.com/multiradio/chanalloc"
)

// TestMain lets the test binary double as the engine-worker binary: when
// the process backend re-execs it, it serves sweep-experiment jobs instead
// of running tests (the task registration lives in main.go's init, shared
// by both roles).
func TestMain(m *testing.M) {
	chanalloc.RunEngineWorkerIfRequested()
	os.Exit(m.Run())
}

// fastExperiments are the ones cheap enough to run in unit tests; the heavy
// ones (literal, fairshare) get dedicated smoke tests below.
var fastExperiments = []string{"lemmas", "theorem1", "pareto", "dynamics", "dist", "boundary", "poa", "distbatch"}

func TestFastExperiments(t *testing.T) {
	for _, exp := range fastExperiments {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			var b strings.Builder
			if err := run([]string{"-exp", exp}, &b); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(b.String(), "==") {
				t.Fatalf("no table emitted:\n%s", b.String())
			}
		})
	}
}

func TestExperimentCSVOutput(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-exp", "boundary", "-out", dir}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "e8_boundary.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "alpha,") {
		t.Fatalf("unexpected CSV header: %q", string(data[:20]))
	}
}

func TestBoundaryFindsGap(t *testing.T) {
	// The E8 headline: a sufficiency gap exists for every alpha > 0 on the
	// Figure 4 exception NE.
	var b strings.Builder
	if err := run([]string{"-exp", "boundary"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "true") {
		t.Fatal("boundary experiment found no gap at all")
	}
	lines := strings.Split(out, "\n")
	// The alpha=0 row must have no gap.
	for _, line := range lines {
		if strings.HasPrefix(line, "0 ") && strings.Contains(line, "true   ") {
			if !strings.Contains(line, "false") {
				t.Fatalf("alpha=0 row should show no gap: %q", line)
			}
		}
	}
}

func TestTheorem1NoMismatches(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-exp", "theorem1"}, &b); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.Contains(line, "x") && strings.HasSuffix(strings.TrimSpace(line), "1") &&
			!strings.Contains(line, "0") {
			t.Fatalf("possible mismatch row: %q", line)
		}
	}
}

func TestHeavyExperiments(t *testing.T) {
	// alg1, fairshare and hetero take seconds each; keep them out of -short.
	if testing.Short() {
		t.Skip("heavy experiment smoke tests")
	}
	for _, exp := range []string{"alg1", "fairshare", "hetero"} {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			var b strings.Builder
			if err := run([]string{"-exp", exp}, &b); err != nil {
				t.Fatal(err)
			}
			out := b.String()
			if !strings.Contains(out, "==") {
				t.Fatalf("no table emitted:\n%s", out)
			}
			// Every NE-run column must be full: the paper's algorithm (and
			// its hetero generalisation) never misses.
			if strings.Contains(out, "NE runs") && strings.Contains(out, "19/20") {
				t.Fatalf("an allocation run missed NE:\n%s", out)
			}
		})
	}
}

func TestFairShareAgreesWithModel(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	var b strings.Builder
	if err := run([]string{"-exp", "fairshare"}, &b); err != nil {
		t.Fatal(err)
	}
	// All Jain index cells start with 0.99 or 1.0.
	for _, line := range strings.Split(b.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 5 && fields[0] != "stations" && !strings.HasPrefix(fields[0], "-") {
			jain := fields[4]
			if !strings.HasPrefix(jain, "0.99") && !strings.HasPrefix(jain, "1.0") {
				t.Fatalf("fair share violated: %q", line)
			}
		}
	}
}

// sweepRun executes one sweep invocation and returns its stdout plus the
// byte content of every CSV it wrote. extraArgs append to the flag list
// (backend selection and the like).
func sweepRun(t *testing.T, exp string, seed uint64, workers int, extraArgs ...string) (string, map[string]string) {
	t.Helper()
	dir := t.TempDir()
	var b strings.Builder
	err := run(append([]string{
		"-exp", exp,
		"-seed", fmt.Sprint(seed),
		"-workers", fmt.Sprint(workers),
		"-out", dir,
	}, extraArgs...), &b)
	if err != nil {
		t.Fatal(err)
	}
	csvs := map[string]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		csvs[e.Name()] = string(data)
	}
	return b.String(), csvs
}

// TestWorkersDoNotChangeOutput is the engine determinism contract at the
// CLI surface: same -seed, any -workers => byte-identical stdout and CSVs.
// It covers every randomised, engine-sharded experiment (the deterministic
// ones trivially satisfy it).
func TestWorkersDoNotChangeOutput(t *testing.T) {
	for _, exp := range []string{"theorem1", "alg1", "dynamics", "literal", "hetero"} {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			const seed = 7
			baseOut, baseCSVs := sweepRun(t, exp, seed, 1)
			for _, workers := range []int{4, runtime.NumCPU()} {
				gotOut, gotCSVs := sweepRun(t, exp, seed, workers)
				if gotOut != baseOut {
					t.Fatalf("workers=%d changed stdout:\n--- workers=1\n%s\n--- workers=%d\n%s",
						workers, baseOut, workers, gotOut)
				}
				if len(gotCSVs) != len(baseCSVs) || len(baseCSVs) == 0 {
					t.Fatalf("workers=%d wrote %d CSVs, want %d", workers, len(gotCSVs), len(baseCSVs))
				}
				for name, want := range baseCSVs {
					if gotCSVs[name] != want {
						t.Fatalf("workers=%d changed %s", workers, name)
					}
				}
			}
		})
	}
}

// TestProcessBackendDoesNotChangeOutput is the backend-conformance contract
// at the CLI surface: same -seed, -backend process with any -shards =>
// stdout and CSVs byte-identical to the in-process run. Covered experiments
// span the randomised engine-sharded paths (theorem1, dynamics) and the
// batched protocol grid (distbatch).
func TestProcessBackendDoesNotChangeOutput(t *testing.T) {
	for _, exp := range []string{"theorem1", "dynamics", "distbatch"} {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			const seed = 7
			baseOut, baseCSVs := sweepRun(t, exp, seed, 2)
			for _, shards := range []int{1, 2} {
				gotOut, gotCSVs := sweepRun(t, exp, seed, 2,
					"-backend", "process", "-shards", fmt.Sprint(shards))
				if gotOut != baseOut {
					t.Fatalf("process backend (shards=%d) changed stdout:\n--- inprocess\n%s\n--- process\n%s",
						shards, baseOut, gotOut)
				}
				if len(gotCSVs) != len(baseCSVs) || len(baseCSVs) == 0 {
					t.Fatalf("process backend wrote %d CSVs, want %d", len(gotCSVs), len(baseCSVs))
				}
				for name, want := range baseCSVs {
					if gotCSVs[name] != want {
						t.Fatalf("process backend (shards=%d) changed %s", shards, name)
					}
				}
			}
		})
	}
}

// TestSocketBackendDoesNotChangeOutput extends the backend-conformance
// contract across the wire: the suite dispatched to socket workers over
// loopback — this test process serving its own registered experiment task —
// produces stdout and CSVs byte-identical to the in-process run.
func TestSocketBackendDoesNotChangeOutput(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); chanalloc.EngineServe(lis) }()
	defer func() { lis.Close(); <-done }()

	for _, exp := range []string{"theorem1", "distbatch"} {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			const seed = 7
			baseOut, baseCSVs := sweepRun(t, exp, seed, 2)
			// Two connections to the same loopback worker: peer scheduling
			// must not show in the output.
			gotOut, gotCSVs := sweepRun(t, exp, seed, 2,
				"-backend", "socket", "-addrs",
				lis.Addr().String()+","+lis.Addr().String())
			if gotOut != baseOut {
				t.Fatalf("socket backend changed stdout:\n--- inprocess\n%s\n--- socket\n%s",
					baseOut, gotOut)
			}
			if len(gotCSVs) != len(baseCSVs) || len(baseCSVs) == 0 {
				t.Fatalf("socket backend wrote %d CSVs, want %d", len(gotCSVs), len(baseCSVs))
			}
			for name, want := range baseCSVs {
				if gotCSVs[name] != want {
					t.Fatalf("socket backend changed %s", name)
				}
			}
		})
	}
}

// TestClusterBackendDoesNotChangeOutput extends the backend-conformance
// contract to the membership backend: the suite dispatched over a cluster
// coordinator — with this test process joined as a worker via the real
// register/heartbeat/pipelined path — produces stdout and CSVs
// byte-identical to the in-process run, at more than one window size.
func TestClusterBackendDoesNotChangeOutput(t *testing.T) {
	coord := "unix:" + t.TempDir() + "/coord.sock"
	// The worker's join loop retries until the coordinator (created inside
	// run() once the sweep starts) is listening, so starting it first is
	// safe — join order is free under the membership model.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := chanalloc.EngineJoinAndServe(coord, chanalloc.JoinStop(stop)); err != nil {
			t.Errorf("worker join: %v", err)
		}
	}()
	defer func() { close(stop); <-done }()

	for _, tc := range []struct {
		exp    string
		window string
	}{
		{"theorem1", "1"},
		{"distbatch", "8"},
	} {
		tc := tc
		t.Run(tc.exp+"/window="+tc.window, func(t *testing.T) {
			const seed = 7
			baseOut, baseCSVs := sweepRun(t, tc.exp, seed, 2)
			gotOut, gotCSVs := sweepRun(t, tc.exp, seed, 2,
				"-backend", "cluster", "-listen-workers", coord, "-window", tc.window)
			if gotOut != baseOut {
				t.Fatalf("cluster backend changed stdout:\n--- inprocess\n%s\n--- cluster\n%s",
					baseOut, gotOut)
			}
			if len(gotCSVs) != len(baseCSVs) || len(baseCSVs) == 0 {
				t.Fatalf("cluster backend wrote %d CSVs, want %d", len(gotCSVs), len(baseCSVs))
			}
			for name, want := range baseCSVs {
				if gotCSVs[name] != want {
					t.Fatalf("cluster backend changed %s", name)
				}
			}
		})
	}
}

// TestClusterBackendNeedsListenWorkers rejects -backend cluster without a
// worker-join address.
func TestClusterBackendNeedsListenWorkers(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-exp", "lemmas", "-backend", "cluster"}, &b)
	if err == nil || !strings.Contains(err.Error(), "-listen-workers") {
		t.Fatalf("err = %v, want the missing -listen-workers error", err)
	}
}

// TestClusterBackendRejectsBadWindow: out-of-range -window / -join-wait
// values are loud configuration errors, not silently-applied defaults.
func TestClusterBackendRejectsBadWindow(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-exp", "lemmas", "-backend", "cluster",
		"-listen-workers", "127.0.0.1:0", "-window", "0"}, &b)
	if err == nil || !strings.Contains(err.Error(), "-window") {
		t.Fatalf("err = %v, want the -window rejection", err)
	}
	err = run([]string{"-exp", "lemmas", "-backend", "cluster",
		"-listen-workers", "127.0.0.1:0", "-join-wait", "0s"}, &b)
	if err == nil || !strings.Contains(err.Error(), "-join-wait") {
		t.Fatalf("err = %v, want the -join-wait rejection", err)
	}
}

// TestSplitAddrs pins the -addrs parsing contract: whitespace around
// entries is trimmed, and empty entries (stray commas) are loud errors
// instead of silently dropped or dialed-as-"" addresses.
func TestSplitAddrs(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    []string
		wantErr bool
	}{
		{"", nil, false},
		{"   ", nil, false},
		{"host:1", []string{"host:1"}, false},
		{" host:1 , host:2 ", []string{"host:1", "host:2"}, false},
		{"unix:/tmp/w.sock,host:2", []string{"unix:/tmp/w.sock", "host:2"}, false},
		{"host:1,,host:2", nil, true},
		{"host:1,", nil, true},
		{",host:1", nil, true},
		{" , ", nil, true},
	} {
		got, err := splitAddrs(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%q: want an empty-entry error, got %v", tc.in, got)
			} else if !strings.Contains(err.Error(), "empty") {
				t.Errorf("%q: error %v does not name the empty entry", tc.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: unexpected error %v", tc.in, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("%q: got %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%q: got %v, want %v", tc.in, got, tc.want)
				break
			}
		}
	}
}

// TestSocketBackendRejectsStrayCommaAddrs is the CLI surface of the
// -addrs bugfix: a stray comma is a configuration error, not a silently
// shortened peer list.
func TestSocketBackendRejectsStrayCommaAddrs(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-exp", "lemmas", "-backend", "socket", "-addrs", "host:1,,host:2"}, &b)
	if err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("err = %v, want the empty-entry rejection", err)
	}
}

// TestUnknownBackend rejects a bad -backend value before any work runs.
func TestUnknownBackend(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-exp", "lemmas", "-backend", "quantum"}, &b); err == nil {
		t.Fatal("unknown backend should error")
	}
}

// TestSocketBackendNeedsAddrs rejects -backend socket without -addrs.
func TestSocketBackendNeedsAddrs(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-exp", "lemmas", "-backend", "socket"}, &b)
	if err == nil || !strings.Contains(err.Error(), "-addrs") {
		t.Fatalf("err = %v, want the missing -addrs error", err)
	}
}

// TestSeedChangesRandomisedOutput guards against the seed being ignored:
// different roots must shuffle the randomised experiments' streams.
func TestSeedChangesRandomisedOutput(t *testing.T) {
	a, _ := sweepRun(t, "dynamics", 1, 1)
	b, _ := sweepRun(t, "dynamics", 2, 1)
	if a == b {
		t.Fatal("dynamics output identical across different -seed values")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-exp", "nope"}, &b); err == nil {
		t.Fatal("unknown experiment should error")
	}
	if err := run([]string{"-badflag"}, &b); err == nil {
		t.Fatal("bad flag should error")
	}
}

func TestAllExperimentNamesRegistered(t *testing.T) {
	for _, name := range experimentOrder {
		if _, ok := experiments[name]; !ok {
			t.Errorf("experiment %q in order list but not registered", name)
		}
	}
	if len(experimentOrder) != len(experiments) {
		t.Errorf("order lists %d experiments, map has %d", len(experimentOrder), len(experiments))
	}
}
