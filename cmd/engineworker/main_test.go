package main

import (
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/multiradio/chanalloc"
)

func TestTasksFlagListsRegistry(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-tasks"}, &b, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), chanalloc.DistRingTask) {
		t.Fatalf("task listing %q misses %q", b.String(), chanalloc.DistRingTask)
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}, &strings.Builder{}, nil); err == nil {
		t.Fatal("bad flag should error")
	}
}

// TestServesRingBatch drives the full worker binary path end to end: run()
// listening on a unix socket, a socket-backend coordinator dispatching a
// distributed-protocol grid to it, results byte-identical to in-process.
func TestServesRingBatch(t *testing.T) {
	addr := "unix:" + t.TempDir() + "/worker.sock"
	var b strings.Builder
	go run([]string{"-listen", addr}, &b, nil) // serves until the test binary exits
	waitForListener(t, addr)

	specs := []chanalloc.DistRingSpec{
		{Users: 3, Channels: 3, Radios: 2, Rate: chanalloc.DistRateSpec{Kind: "tdma", R0: 1},
			Policies: []string{"greedy"}},
		{Users: 4, Channels: 2, Radios: 2, Rate: chanalloc.DistRateSpec{Kind: "harmonic", R0: 1, Param: 1},
			Policies: []string{"greedy-random"}},
	}
	want, _, err := chanalloc.RunDistributedRingBatch(chanalloc.NewInProcessBackend(), specs,
		chanalloc.EngineSeed(5), chanalloc.EngineWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := chanalloc.RunDistributedRingBatch(chanalloc.NewSocketBackend(addr), specs,
		chanalloc.EngineSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("worker-served batch differs:\n%+v\nvs\n%+v", got, want)
	}
}

// TestJoinsCluster drives the worker binary's join mode end to end: a
// cluster coordinator accepting joins, run() dialing in and registering,
// and a distributed-protocol grid dispatched through the membership —
// byte-identical to in-process.
func TestJoinsCluster(t *testing.T) {
	coord, err := chanalloc.NewClusterBackend("unix:"+t.TempDir()+"/coord.sock",
		chanalloc.ClusterWindow(4))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	workerErr := make(chan error, 1)
	go func() { workerErr <- run([]string{"-join", coord.Addr()}, &b, nil) }()
	t.Cleanup(func() {
		coord.Close()
		// The worker's join loop must end with the coordinator gone for
		// good — and a permanent rejection would surface here as a failure
		// instead of a hang at the batch's join-wait.
		select {
		case err := <-workerErr:
			if err != nil {
				t.Errorf("worker run: %v", err)
			}
		case <-time.After(100 * time.Millisecond):
			// Still redialing the closed coordinator; that's the documented
			// outlive-the-coordinator behaviour, not a leak worth failing on
			// in a test binary about to exit.
		}
	})

	specs := []chanalloc.DistRingSpec{
		{Users: 3, Channels: 3, Radios: 2, Rate: chanalloc.DistRateSpec{Kind: "tdma", R0: 1},
			Policies: []string{"greedy"}},
		{Users: 4, Channels: 2, Radios: 2, Rate: chanalloc.DistRateSpec{Kind: "harmonic", R0: 1, Param: 1},
			Policies: []string{"greedy-random"}},
	}
	want, _, err := chanalloc.RunDistributedRingBatch(chanalloc.NewInProcessBackend(), specs,
		chanalloc.EngineSeed(5), chanalloc.EngineWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := chanalloc.RunDistributedRingBatch(coord, specs, chanalloc.EngineSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("cluster-served batch differs:\n%+v\nvs\n%+v", got, want)
	}
}

// waitForListener polls until the worker's socket accepts connections.
func waitForListener(t *testing.T, addr string) {
	t.Helper()
	path := strings.TrimPrefix(addr, "unix:")
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if conn, err := net.Dial("unix", path); err == nil {
			conn.Close()
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("worker never listened on %s", addr)
}
