package main

import (
	"strings"
	"testing"
	"time"

	"github.com/multiradio/chanalloc"
)

// TestListenModeStopsGracefully: closing the stop channel makes a listening
// worker stop accepting and run() return nil — exit 0, the SIGINT/SIGTERM
// contract.
func TestListenModeStopsGracefully(t *testing.T) {
	addr := "unix:" + t.TempDir() + "/w.sock"
	stop := make(chan struct{})
	done := make(chan error, 1)
	var b strings.Builder
	go func() { done <- run([]string{"-listen", addr, "-drain-timeout", "2s"}, &b, stop) }()
	waitForListener(t, addr)
	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("stopped worker: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("listen-mode worker did not stop")
	}
}

// TestJoinModeStopsGracefully: a registered join worker leaves its session
// and returns nil when stopped.
func TestJoinModeStopsGracefully(t *testing.T) {
	coord, err := chanalloc.NewClusterBackend("unix:" + t.TempDir() + "/coord.sock")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	stop := make(chan struct{})
	done := make(chan error, 1)
	var b strings.Builder
	go func() { done <- run([]string{"-join", coord.Addr()}, &b, stop) }()
	deadline := time.Now().Add(5 * time.Second)
	for len(coord.Members()) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(coord.Members()) == 0 {
		t.Fatal("worker never registered")
	}
	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("stopped join worker: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("join-mode worker did not stop")
	}
}
