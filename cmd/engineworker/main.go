// Command engineworker is a long-lived socket worker for the engine's
// cross-machine backend: it listens on a TCP or unix-socket address,
// answers the wire protocol's version handshake on every connection, and
// serves jobs of the library's registered engine tasks (EXPERIMENTS.md
// documents the protocol). Launch one per host, then point a coordinator
// at them:
//
//	engineworker -listen :9000                 # on each worker host
//	sweep -backend socket -addrs host1:9000,host2:9000
//
// The worker serves the tasks registered in its binary (engineworker
// carries the library's registry — `engineworker -tasks` lists it, with
// dist/ring serving distributed-protocol grids). Coordinators announce
// their task in the handshake, so a worker missing it — or built at a
// different protocol version — rejects the connection loudly instead of
// misinterpreting frames. Task-registering programs can also be their own
// workers: `sweep -listen :9000` serves the experiment suite's task the
// same way.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/multiradio/chanalloc"
)

func main() {
	// Stdio worker mode (spawned by a -backend process coordinator) still
	// works for this binary; in a normal run it is a no-op.
	chanalloc.RunEngineWorkerIfRequested()
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "engineworker:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("engineworker", flag.ContinueOnError)
	listen := fs.String("listen", ":9000",
		`address to serve on: "host:port", ":port", "unix:/path" or a bare socket path`)
	tasks := fs.Bool("tasks", false, "list the tasks this worker can serve, then exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tasks {
		for _, name := range chanalloc.EngineTaskNames() {
			fmt.Fprintln(out, name)
		}
		return nil
	}
	fmt.Fprintf(out, "engineworker: protocol v%d, serving %v on %s\n",
		chanalloc.EngineProtocolVersion, chanalloc.EngineTaskNames(), *listen)
	return chanalloc.EngineListenAndServe(*listen)
}
