// Command engineworker is a long-lived worker for the engine's
// cross-machine backends: it serves jobs of the library's registered engine
// tasks (EXPERIMENTS.md documents the protocol) in either connection
// direction:
//
//   - listen mode (socket backend): the worker listens, coordinators dial
//     it and the connection opens with the wire protocol's version
//     handshake.
//
//     engineworker -listen :9000                 # on each worker host
//     sweep -backend socket -addrs host1:9000,host2:9000
//
//   - join mode (cluster backend): the worker dials IN to a coordinator
//     and registers — so it can live behind NAT, start before the
//     coordinator exists, or join a sweep already mid-batch — then serves
//     a pipelined window of jobs with heartbeats, rejoining whenever the
//     coordinator goes away.
//
//     sweep -backend cluster -listen-workers :9100   # the coordinator
//     engineworker -join coordinator-host:9100       # on each worker host
//
// The worker serves the tasks registered in its binary (engineworker
// carries the library's registry — `engineworker -tasks` lists it, with
// dist/ring serving distributed-protocol grids). Handshakes check protocol
// version, task registry and the optional -auth-token shared secret, so a
// mismatched worker rejects loudly instead of misinterpreting frames.
// Task-registering programs can also be their own workers: `sweep -listen
// :9000` serves the experiment suite's task the same way.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"github.com/multiradio/chanalloc"
)

func main() {
	// Stdio worker mode (spawned by a -backend process coordinator) still
	// works for this binary; in a normal run it is a no-op.
	chanalloc.RunEngineWorkerIfRequested()
	if err := run(os.Args[1:], os.Stdout, stopOnSignals()); err != nil {
		fmt.Fprintln(os.Stderr, "engineworker:", err)
		os.Exit(1)
	}
}

// stopOnSignals returns a channel that closes on SIGINT/SIGTERM — the
// graceful-shutdown trigger. A second signal while draining restores the
// default disposition, so an impatient operator's repeat ^C still kills.
func stopOnSignals() <-chan struct{} {
	stop := make(chan struct{})
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ch
		fmt.Fprintln(os.Stderr, "engineworker: shutdown signal — draining (repeat to kill)")
		signal.Stop(ch)
		close(stop)
	}()
	return stop
}

// run is the testable entry: stop (may be nil) triggers graceful shutdown.
func run(args []string, out io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("engineworker", flag.ContinueOnError)
	listen := fs.String("listen", ":9000",
		`address to serve on: "host:port", ":port", "unix:/path" or a bare socket path`)
	join := fs.String("join", "",
		"dial in and register with a cluster coordinator at this address instead of listening")
	authToken := fs.String("auth-token", "",
		"shared secret checked during the handshake; must match the coordinator's -auth-token")
	tasks := fs.Bool("tasks", false, "list the tasks this worker can serve, then exit")
	metrics := fs.String("metrics", "",
		"serve /metrics, /metrics.json, /trace and /debug/pprof on this address (empty disables)")
	tlsCert := fs.String("tls-cert", "", "serve TLS in listen mode with this PEM certificate (requires -tls-key)")
	tlsKey := fs.String("tls-key", "", "PEM private key for -tls-cert")
	tlsCA := fs.String("tls-ca", "", "dial TLS in join mode, verifying the coordinator against this PEM CA bundle")
	tlsSkipVerify := fs.Bool("tls-skip-verify", false, "dial TLS without verifying the coordinator certificate (tests only)")
	drainTimeout := fs.Duration("drain-timeout", 0,
		"bound the graceful drain after SIGINT/SIGTERM; in-flight connections past it are force-closed (0 waits)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *metrics != "" {
		ms, err := chanalloc.ServeObs(*metrics)
		if err != nil {
			return err
		}
		defer ms.Close()
		fmt.Fprintln(os.Stderr, "engineworker: metrics on", ms.Addr)
	}
	if *tasks {
		for _, name := range chanalloc.EngineTaskNames() {
			fmt.Fprintln(out, name)
		}
		return nil
	}
	if *join != "" {
		joinOpts := []chanalloc.JoinOption{chanalloc.JoinAuthToken(*authToken)}
		if *tlsCA != "" || *tlsSkipVerify {
			cfg, err := chanalloc.EngineClientTLSConfig(*tlsCA, *tlsSkipVerify)
			if err != nil {
				return err
			}
			joinOpts = append(joinOpts, chanalloc.JoinTLS(cfg))
		}
		if stop != nil {
			// A signalled join worker leaves its session (the coordinator
			// requeues whatever it held) and returns nil: exit 0.
			joinOpts = append(joinOpts, chanalloc.JoinStop(stop))
		}
		fmt.Fprintf(out, "engineworker: protocol v%d, serving %v, joining %s\n",
			chanalloc.EngineProtocolVersion, chanalloc.EngineTaskNames(), *join)
		return chanalloc.EngineJoinAndServe(*join, joinOpts...)
	}
	serveOpts := []chanalloc.ServeOption{chanalloc.ServeAuthToken(*authToken)}
	if *tlsCert != "" || *tlsKey != "" {
		cfg, err := chanalloc.EngineServerTLSConfig(*tlsCert, *tlsKey)
		if err != nil {
			return err
		}
		serveOpts = append(serveOpts, chanalloc.ServeTLS(cfg))
	}
	if stop != nil {
		serveOpts = append(serveOpts,
			chanalloc.ServeStop(stop),
			chanalloc.ServeDrainTimeout(*drainTimeout))
	}
	fmt.Fprintf(out, "engineworker: protocol v%d, serving %v on %s\n",
		chanalloc.EngineProtocolVersion, chanalloc.EngineTaskNames(), *listen)
	return chanalloc.EngineListenAndServe(*listen, serveOpts...)
}
