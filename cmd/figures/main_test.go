package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunAllFigures(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "all", "-maxk", "6"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
		"lemma1", "lemma2", "lemma3",
		"reservation TDMA", "optimal CSMA/CA", "practical CSMA/CA",
		"Theorem 1 verdict: NE=true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSingleFigure(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "2"}, &b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "Figure 3") {
		t.Error("-fig 2 printed other figures")
	}
	if !strings.Contains(b.String(), "load") {
		t.Error("figure 2 missing load row")
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-fig", "all", "-maxk", "5", "-out", dir}, &b); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"figure1.csv", "figure3.csv", "figure4.csv", "figure5.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

func TestRunFigure3PHYVariants(t *testing.T) {
	for _, phy := range []string{"bianchi", "80211b"} {
		var b strings.Builder
		if err := run([]string{"-fig", "3", "-maxk", "4", "-phy", phy}, &b); err != nil {
			t.Fatalf("%s: %v", phy, err)
		}
		if !strings.Contains(b.String(), phy) {
			t.Errorf("%s output does not name the PHY", phy)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "9"}, &b); err == nil {
		t.Error("unknown figure should error")
	}
	if err := run([]string{"-fig", "3", "-maxk", "1"}, &b); err == nil {
		t.Error("maxk=1 should error")
	}
	if err := run([]string{"-fig", "3", "-phy", "nope"}, &b); err == nil {
		t.Error("unknown phy should error")
	}
	if err := run([]string{"-badflag"}, &b); err == nil {
		t.Error("bad flag should error")
	}
}
