// Command figures regenerates every figure of the reproduced paper
// (Félegyházi et al., ICDCS 2006) as ASCII output and, optionally, CSV
// files.
//
//	figures -fig all            # print figures 1-5 to stdout
//	figures -fig 3 -maxk 30     # just the rate curves, wider sweep
//	figures -fig 3 -sim         # overlay the slot-level simulator estimate
//	figures -fig all -out data/ # also write CSV series per figure
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"github.com/multiradio/chanalloc"
	"github.com/multiradio/chanalloc/internal/textplot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: 1, 2, 3, 4, 5 or all")
	maxK := fs.Int("maxk", 20, "largest k for the Figure 3 rate curves")
	sim := fs.Bool("sim", false, "overlay slot-level simulation estimates on Figure 3")
	phy := fs.String("phy", "bianchi", "PHY for Figure 3: bianchi (1 Mbit/s, decreasing from k=1) or 80211b (11 Mbit/s long preamble; raw curve rises at small k and the monotone envelope flattens it)")
	csvDir := fs.String("out", "", "directory for CSV output (omit to skip)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fmt.Errorf("creating output dir: %w", err)
		}
	}

	figs := []string{"1", "2", "3", "4", "5"}
	if *fig != "all" {
		figs = []string{*fig}
	}
	for _, f := range figs {
		switch f {
		case "1":
			if err := figure1(out, *csvDir); err != nil {
				return err
			}
		case "2":
			if err := figure2(out); err != nil {
				return err
			}
		case "3":
			if err := figure3(out, *csvDir, *maxK, *sim, *phy); err != nil {
				return err
			}
		case "4", "5":
			if err := figureNE(out, *csvDir, f); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown figure %q (want 1-5 or all)", f)
		}
	}
	return nil
}

// figure1 reproduces Figure 1: the worked example allocation, drawn as
// channel occupancy, plus the paper's §3 walkthrough of which lemmas it
// violates.
func figure1(out io.Writer, csvDir string) error {
	s, err := chanalloc.ScenarioFigure1(chanalloc.TDMA(1))
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "=== Figure 1: example channel allocation (|N|=4, k=4, |C|=5) ===")
	fmt.Fprint(out, chanalloc.OccupancyDiagram(s.Alloc))
	fmt.Fprintln(out, "\nPaper walkthrough (§3) — why this is not a NE:")
	for _, v := range chanalloc.CheckAllLemmas(s.Game, s.Alloc) {
		fmt.Fprintf(out, "  violated: %s\n", v)
	}
	fmt.Fprintln(out)
	if csvDir == "" {
		return nil
	}
	return writeMatrixCSV(filepath.Join(csvDir, "figure1.csv"), s.Alloc.Matrix())
}

// figure2 reproduces Figure 2: the strategy matrix of Figure 1.
func figure2(out io.Writer) error {
	s, err := chanalloc.ScenarioFigure1(chanalloc.TDMA(1))
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "=== Figure 2: strategy matrix of the Figure 1 example ===")
	fmt.Fprintln(out, s.Alloc.String())
	fmt.Fprintln(out)
	return nil
}

// figure3 reproduces Figure 3: total rate R(k_c) versus the number of
// radios k_c for reservation TDMA, optimal CSMA/CA and practical CSMA/CA.
// The default PHY is Bianchi's 1 Mbit/s parameter set, whose practical
// curve decreases from k=1 exactly as the paper sketches; the 11 Mbit/s
// 802.11b PHY pays its long preamble at 1 Mbit/s, which makes the raw curve
// *rise* until k≈3 — a real-world nuance EXPERIMENTS.md discusses.
func figure3(out io.Writer, csvDir string, maxK int, withSim bool, phy string) error {
	if maxK < 2 {
		return fmt.Errorf("figure 3 needs -maxk >= 2, got %d", maxK)
	}
	var p chanalloc.DCFParams
	switch phy {
	case "bianchi":
		p = chanalloc.Bianchi1Mbps()
	case "80211b":
		p = chanalloc.Default80211b()
	default:
		return fmt.Errorf("unknown -phy %q (want bianchi or 80211b)", phy)
	}
	tdma := chanalloc.TDMA(p.DataRate)
	opt, err := chanalloc.OptimalCSMA(p)
	if err != nil {
		return err
	}
	prac, err := chanalloc.PracticalCSMA(p)
	if err != nil {
		return err
	}

	xs := make([]float64, maxK)
	series := []textplot.Series{
		{Name: "reservation TDMA"},
		{Name: "optimal CSMA/CA"},
		{Name: "practical CSMA/CA"},
	}
	for k := 1; k <= maxK; k++ {
		xs[k-1] = float64(k)
	}
	for i, r := range []chanalloc.RateFunc{tdma, opt, prac} {
		series[i].X = xs
		ys := make([]float64, maxK)
		for k := 1; k <= maxK; k++ {
			ys[k-1] = r.Rate(k)
		}
		series[i].Y = ys
	}
	if withSim {
		emp, err := chanalloc.EmpiricalCSMARate(p, maxK, 150_000, 1)
		if err != nil {
			return err
		}
		ys := make([]float64, maxK)
		for k := 1; k <= maxK; k++ {
			ys[k-1] = emp.Rate(k)
		}
		series = append(series, textplot.Series{Name: "practical CSMA/CA (simulated)", X: xs, Y: ys})
	}

	fmt.Fprintf(out, "=== Figure 3: total available rate R(k_c) by MAC protocol (%s PHY, Mbit/s) ===\n", phy)
	chart, err := textplot.LineChart("", series, 64, 16)
	if err != nil {
		return err
	}
	fmt.Fprint(out, chart)

	headers := []string{"k"}
	for _, s := range series {
		headers = append(headers, s.Name)
	}
	rows := make([][]string, maxK)
	for k := 1; k <= maxK; k++ {
		row := []string{strconv.Itoa(k)}
		for _, s := range series {
			row = append(row, fmt.Sprintf("%.4f", s.Y[k-1]))
		}
		rows[k-1] = row
	}
	table, err := textplot.Table(headers, rows)
	if err != nil {
		return err
	}
	fmt.Fprintln(out)
	fmt.Fprint(out, table)
	fmt.Fprintln(out)

	if csvDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(csvDir, "figure3.csv"))
	if err != nil {
		return fmt.Errorf("creating figure3.csv: %w", err)
	}
	defer f.Close()
	return textplot.SeriesCSV(f, series)
}

// figureNE reproduces Figure 4 or 5: a NE allocation, its occupancy
// diagram, per-user utilities and both NE verdicts.
func figureNE(out io.Writer, csvDir, which string) error {
	var (
		s   *chanalloc.Scenario
		err error
	)
	if which == "4" {
		s, err = chanalloc.ScenarioFigure4(chanalloc.TDMA(1))
	} else {
		s, err = chanalloc.ScenarioFigure5(chanalloc.TDMA(1))
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "=== Figure %s: %s ===\n", which, s.Description)
	fmt.Fprint(out, chanalloc.OccupancyDiagram(s.Alloc))
	fmt.Fprintln(out)
	fmt.Fprintln(out, s.Alloc.String())

	thm, v := chanalloc.TheoremNE(s.Game, s.Alloc)
	oracle, err := s.Game.IsNashEquilibrium(s.Alloc)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nTheorem 1 verdict: NE=%v", thm)
	if v != nil {
		fmt.Fprintf(out, " (%s)", v)
	}
	fmt.Fprintf(out, "\nBest-response oracle: NE=%v\n", oracle)
	fmt.Fprintln(out, "Per-user utilities (R = 1):")
	for i, u := range s.Game.Utilities(s.Alloc) {
		fmt.Fprintf(out, "  u%d: %.4f\n", i+1, u)
	}
	fmt.Fprintln(out)
	if csvDir == "" {
		return nil
	}
	return writeMatrixCSV(filepath.Join(csvDir, "figure"+which+".csv"), s.Alloc.Matrix())
}

func writeMatrixCSV(path string, matrix [][]int) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating %s: %w", path, err)
	}
	defer f.Close()
	headers := []string{"user"}
	for c := range matrix[0] {
		headers = append(headers, fmt.Sprintf("c%d", c+1))
	}
	rows := make([][]string, len(matrix))
	for i, r := range matrix {
		row := []string{fmt.Sprintf("u%d", i+1)}
		for _, v := range r {
			row = append(row, strconv.Itoa(v))
		}
		rows[i] = row
	}
	return textplot.WriteCSV(f, headers, rows)
}
