// Command benchdiff compares two BENCH_<date>.json reports (the artifacts
// cmd/benchjson writes in CI) and flags ns/op and allocs/op regressions,
// closing the benchmark-trajectory loop: every CI run diffs its numbers
// against the previous run's artifact and annotates regressions without
// blocking the build.
//
//	benchdiff old.json new.json                 # human-readable table
//	benchdiff -threshold 0.1 old.json new.json  # flag >10% slowdowns
//	benchdiff -annotate old.json new.json       # ::warning:: lines for CI
//	benchdiff -fail old.json new.json           # exit 1 when flagged
//	benchdiff -history dev/bench new.json       # diff vs committed history
//
// Benchmarks are matched by (name, procs). In two-file mode, entries
// present on only one side are reported as added/removed, never flagged —
// a renamed benchmark is not a regression. With -history the removal case
// IS flagged: a benchmark present in the latest committed artifact but
// absent from the new report is marked MISSING and counted as a
// regression, because a benchmark silently vanishing from the stream is
// how a perf gate goes blind. Allocation counts are compared when both sides
// carry them (b.ReportAllocs() / -benchmem runs): a >threshold increase —
// or any allocations appearing where the old run measured zero — is
// flagged like an ns/op regression, so an allocation-free kernel stays
// allocation-free. Exit status is 0 unless -fail is given and at least one
// regression exceeds the threshold.
//
// With -history DIR the single positional argument is the new report and
// the baseline is the committed trajectory: every BENCH_*.json under DIR,
// in filename (= date) order. The new run is diffed against the latest
// artifact exactly as in two-file mode, and additionally against each
// benchmark's best-ever ns/op and its rolling median over the last
// -window artifacts. A run more than threshold above best-ever or the
// median is flagged DRIFT>BEST / DRIFT>MEDIAN even when the step from the
// previous artifact is small — the failure mode of a previous-run-only
// diff, where a sequence of +5% PRs never trips a +20% gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Entry and Report mirror cmd/benchjson's JSON document (kept in sync by
// the shared format test fixtures; only the fields benchdiff reads).
type Entry struct {
	Name    string  `json:"name"`
	Procs   int     `json:"procs"`
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is nil for entries recorded without memory reporting;
	// older reports carried the figure only in the metrics map, which is
	// read as a fallback.
	AllocsPerOp *float64           `json:"allocs_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics"`
}

// allocs returns the entry's allocs/op and whether it was recorded,
// preferring the first-class field over the legacy metrics map.
func (e Entry) allocs() (float64, bool) {
	if e.AllocsPerOp != nil {
		return *e.AllocsPerOp, true
	}
	v, ok := e.Metrics["allocs/op"]
	return v, ok
}

// Report is the decoded BENCH_<date>.json document.
type Report struct {
	Date    string  `json:"date"`
	Entries []Entry `json:"entries"`
}

func main() {
	regressions, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if regressions > 0 && failFlagged {
		os.Exit(1)
	}
}

// failFlagged records the -fail flag for main; run itself stays exit-free
// for tests.
var failFlagged bool

// key identifies a benchmark across reports.
type key struct {
	name  string
	procs int
}

// histStat summarises one benchmark's committed trajectory: the best-ever
// ns/op across all artifacts and the median over the most recent window.
type histStat struct {
	best   float64
	median float64
	runs   int
}

func run(args []string, out io.Writer) (regressions int, err error) {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 0.20, "flag ns/op increases above this fraction (0.20 = +20%)")
	annotate := fs.Bool("annotate", false, "emit GitHub ::warning:: annotations for regressions")
	fail := fs.Bool("fail", false, "exit 1 when any regression exceeds the threshold")
	historyDir := fs.String("history", "", "directory of committed BENCH_*.json artifacts; compare the single NEW report against the latest, best-ever and rolling-median of that history")
	window := fs.Int("window", 8, "rolling-median window: number of most recent history artifacts (with -history)")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	failFlagged = *fail

	var oldRep, newRep Report
	var oldLabel string
	hist := map[key]histStat{}
	if *historyDir != "" {
		if fs.NArg() != 1 {
			return 0, fmt.Errorf("want exactly one report with -history: benchdiff -history dir new.json")
		}
		reports, paths, err := readHistory(*historyDir)
		if err != nil {
			return 0, err
		}
		newRep, err = readReport(fs.Arg(0))
		if err != nil {
			return 0, err
		}
		oldRep = reports[len(reports)-1]
		oldLabel = labelOr(oldRep.Date, paths[len(paths)-1])
		hist = historyStats(reports, *window)
		fmt.Fprintf(out, "history: %d artifact(s) under %s, rolling-median window %d\n",
			len(reports), *historyDir, *window)
	} else {
		if fs.NArg() != 2 {
			return 0, fmt.Errorf("want exactly two reports: benchdiff old.json new.json")
		}
		oldRep, err = readReport(fs.Arg(0))
		if err != nil {
			return 0, err
		}
		newRep, err = readReport(fs.Arg(1))
		if err != nil {
			return 0, err
		}
		oldLabel = labelOr(oldRep.Date, fs.Arg(0))
	}

	oldBy := map[key]Entry{}
	for _, e := range oldRep.Entries {
		oldBy[key{e.Name, e.Procs}] = e
	}
	newBy := map[key]Entry{}
	for _, e := range newRep.Entries {
		newBy[key{e.Name, e.Procs}] = e
	}
	keys := make([]key, 0, len(oldBy)+len(newBy))
	for k := range oldBy {
		keys = append(keys, k)
	}
	for k := range newBy {
		if _, dup := oldBy[k]; !dup {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].procs < keys[j].procs
	})

	fmt.Fprintf(out, "benchdiff %s -> %s (threshold %+.0f%%)\n",
		oldLabel, labelOr(newRep.Date, fs.Arg(fs.NArg()-1)), *threshold*100)
	for _, k := range keys {
		oldE, inOld := oldBy[k]
		newE, inNew := newBy[k]
		name := fmt.Sprintf("%s-%d", k.name, k.procs)
		histNote := ""
		if h, ok := hist[k]; ok && inNew {
			histNote = fmt.Sprintf("  best %.0f  median %.0f", h.best, h.median)
			if h.best > 0 && newE.NsPerOp/h.best-1 > *threshold {
				histNote += "  DRIFT>BEST"
				regressions++
				if *annotate {
					fmt.Fprintf(out, "::warning title=bench drift::%s ns/op %.0f is %+.1f%% above best-ever %.0f\n",
						name, newE.NsPerOp, (newE.NsPerOp/h.best-1)*100, h.best)
				}
			}
			if h.median > 0 && newE.NsPerOp/h.median-1 > *threshold {
				histNote += "  DRIFT>MEDIAN"
				regressions++
				if *annotate {
					fmt.Fprintf(out, "::warning title=bench drift::%s ns/op %.0f is %+.1f%% above rolling median %.0f\n",
						name, newE.NsPerOp, (newE.NsPerOp/h.median-1)*100, h.median)
				}
			}
		}
		switch {
		case !inOld:
			fmt.Fprintf(out, "  %-60s %14s %12.0f ns/op  (added)%s\n", name, "", newE.NsPerOp, histNote)
		case !inNew:
			// In two-file mode a one-sided entry is a rename, not a
			// regression. Against committed history the judgement flips: a
			// benchmark in the latest artifact that the new run no longer
			// reports has silently dropped out of the trajectory — exactly
			// the failure a drift gate cannot see — so flag it.
			if *historyDir != "" {
				fmt.Fprintf(out, "  %-60s %12.0f ns/op %12s  MISSING\n", name, oldE.NsPerOp, "")
				regressions++
				if *annotate {
					fmt.Fprintf(out, "::warning title=bench missing::%s present in %s but absent from the new report\n",
						name, oldLabel)
				}
				continue
			}
			fmt.Fprintf(out, "  %-60s %12.0f ns/op %12s  (removed)\n", name, oldE.NsPerOp, "")
		case oldE.NsPerOp <= 0:
			fmt.Fprintf(out, "  %-60s %12.0f -> %9.0f ns/op  (old is zero; skipped)\n", name, oldE.NsPerOp, newE.NsPerOp)
		default:
			delta := newE.NsPerOp/oldE.NsPerOp - 1
			flag := ""
			if delta > *threshold {
				flag = "  REGRESSION"
				regressions++
				if *annotate {
					fmt.Fprintf(out, "::warning title=bench regression::%s ns/op %+.1f%% (%.0f -> %.0f)\n",
						name, delta*100, oldE.NsPerOp, newE.NsPerOp)
				}
			}
			allocNote := ""
			if oldA, okOld := oldE.allocs(); okOld {
				if newA, okNew := newE.allocs(); okNew {
					worse := (oldA == 0 && newA > 0) ||
						(oldA > 0 && newA/oldA-1 > *threshold)
					allocNote = fmt.Sprintf("  allocs %.0f -> %.0f", oldA, newA)
					if worse {
						allocNote += "  ALLOC-REGRESSION"
						regressions++
						if *annotate {
							fmt.Fprintf(out, "::warning title=alloc regression::%s allocs/op %.0f -> %.0f\n",
								name, oldA, newA)
						}
					}
				}
			}
			fmt.Fprintf(out, "  %-60s %12.0f -> %9.0f ns/op  %+7.1f%%%s%s%s\n",
				name, oldE.NsPerOp, newE.NsPerOp, delta*100, flag, allocNote, histNote)
		}
	}
	fmt.Fprintf(out, "%d benchmark(s) compared, %d regression(s) above %+.0f%%\n",
		len(keys), regressions, *threshold*100)
	return regressions, nil
}

// readHistory loads every BENCH_*.json under dir in filename order.
// Artifact names embed ISO dates, so lexicographic order is chronological.
func readHistory(dir string) ([]Report, []string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, nil, fmt.Errorf("globbing history: %w", err)
	}
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("no BENCH_*.json artifacts under %s", dir)
	}
	sort.Strings(paths)
	reports := make([]Report, 0, len(paths))
	for _, p := range paths {
		r, err := readReport(p)
		if err != nil {
			return nil, nil, err
		}
		reports = append(reports, r)
	}
	return reports, paths, nil
}

// historyStats folds the trajectory into per-benchmark best-ever and
// rolling-median figures. Zero/negative ns/op entries are dropped (a
// malformed artifact must not become an unbeatable best), and the median
// covers only the artifacts that actually carry the benchmark, so a
// benchmark added mid-history is judged against its own runs.
func historyStats(reports []Report, window int) map[key]histStat {
	series := map[key][]float64{}
	for _, r := range reports {
		for _, e := range r.Entries {
			if e.NsPerOp <= 0 {
				continue
			}
			k := key{e.Name, e.Procs}
			series[k] = append(series[k], e.NsPerOp)
		}
	}
	out := make(map[key]histStat, len(series))
	for k, vs := range series {
		best := vs[0]
		for _, v := range vs {
			if v < best {
				best = v
			}
		}
		recent := vs
		if window > 0 && len(recent) > window {
			recent = recent[len(recent)-window:]
		}
		out[k] = histStat{best: best, median: median(recent), runs: len(vs)}
	}
	return out
}

// median returns the middle value of vs (mean of the two middles when even).
func median(vs []float64) float64 {
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// readReport loads one BENCH_<date>.json document.
func readReport(path string) (Report, error) {
	var r Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, fmt.Errorf("reading report: %w", err)
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("decoding %s: %w", path, err)
	}
	return r, nil
}

// labelOr prefers the report's date stamp over its filename.
func labelOr(date, path string) string {
	if date != "" {
		return date
	}
	return path
}
