// Command benchdiff compares two BENCH_<date>.json reports (the artifacts
// cmd/benchjson writes in CI) and flags ns/op and allocs/op regressions,
// closing the benchmark-trajectory loop: every CI run diffs its numbers
// against the previous run's artifact and annotates regressions without
// blocking the build.
//
//	benchdiff old.json new.json                 # human-readable table
//	benchdiff -threshold 0.1 old.json new.json  # flag >10% slowdowns
//	benchdiff -annotate old.json new.json       # ::warning:: lines for CI
//	benchdiff -fail old.json new.json           # exit 1 when flagged
//
// Benchmarks are matched by (name, procs). Entries present on only one
// side are reported as added/removed, never flagged — a renamed benchmark
// is not a regression. Allocation counts are compared when both sides
// carry them (b.ReportAllocs() / -benchmem runs): a >threshold increase —
// or any allocations appearing where the old run measured zero — is
// flagged like an ns/op regression, so an allocation-free kernel stays
// allocation-free. Exit status is 0 unless -fail is given and at least one
// regression exceeds the threshold.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// Entry and Report mirror cmd/benchjson's JSON document (kept in sync by
// the shared format test fixtures; only the fields benchdiff reads).
type Entry struct {
	Name    string  `json:"name"`
	Procs   int     `json:"procs"`
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is nil for entries recorded without memory reporting;
	// older reports carried the figure only in the metrics map, which is
	// read as a fallback.
	AllocsPerOp *float64           `json:"allocs_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics"`
}

// allocs returns the entry's allocs/op and whether it was recorded,
// preferring the first-class field over the legacy metrics map.
func (e Entry) allocs() (float64, bool) {
	if e.AllocsPerOp != nil {
		return *e.AllocsPerOp, true
	}
	v, ok := e.Metrics["allocs/op"]
	return v, ok
}

// Report is the decoded BENCH_<date>.json document.
type Report struct {
	Date    string  `json:"date"`
	Entries []Entry `json:"entries"`
}

func main() {
	regressions, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if regressions > 0 && failFlagged {
		os.Exit(1)
	}
}

// failFlagged records the -fail flag for main; run itself stays exit-free
// for tests.
var failFlagged bool

// key identifies a benchmark across reports.
type key struct {
	name  string
	procs int
}

func run(args []string, out io.Writer) (regressions int, err error) {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 0.20, "flag ns/op increases above this fraction (0.20 = +20%)")
	annotate := fs.Bool("annotate", false, "emit GitHub ::warning:: annotations for regressions")
	fail := fs.Bool("fail", false, "exit 1 when any regression exceeds the threshold")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	failFlagged = *fail
	if fs.NArg() != 2 {
		return 0, fmt.Errorf("want exactly two reports: benchdiff old.json new.json")
	}
	oldRep, err := readReport(fs.Arg(0))
	if err != nil {
		return 0, err
	}
	newRep, err := readReport(fs.Arg(1))
	if err != nil {
		return 0, err
	}

	oldBy := map[key]Entry{}
	for _, e := range oldRep.Entries {
		oldBy[key{e.Name, e.Procs}] = e
	}
	newBy := map[key]Entry{}
	for _, e := range newRep.Entries {
		newBy[key{e.Name, e.Procs}] = e
	}
	keys := make([]key, 0, len(oldBy)+len(newBy))
	for k := range oldBy {
		keys = append(keys, k)
	}
	for k := range newBy {
		if _, dup := oldBy[k]; !dup {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].procs < keys[j].procs
	})

	fmt.Fprintf(out, "benchdiff %s -> %s (threshold %+.0f%%)\n",
		labelOr(oldRep.Date, fs.Arg(0)), labelOr(newRep.Date, fs.Arg(1)), *threshold*100)
	for _, k := range keys {
		oldE, inOld := oldBy[k]
		newE, inNew := newBy[k]
		name := fmt.Sprintf("%s-%d", k.name, k.procs)
		switch {
		case !inOld:
			fmt.Fprintf(out, "  %-60s %14s %12.0f ns/op  (added)\n", name, "", newE.NsPerOp)
		case !inNew:
			fmt.Fprintf(out, "  %-60s %12.0f ns/op %12s  (removed)\n", name, oldE.NsPerOp, "")
		case oldE.NsPerOp <= 0:
			fmt.Fprintf(out, "  %-60s %12.0f -> %9.0f ns/op  (old is zero; skipped)\n", name, oldE.NsPerOp, newE.NsPerOp)
		default:
			delta := newE.NsPerOp/oldE.NsPerOp - 1
			flag := ""
			if delta > *threshold {
				flag = "  REGRESSION"
				regressions++
				if *annotate {
					fmt.Fprintf(out, "::warning title=bench regression::%s ns/op %+.1f%% (%.0f -> %.0f)\n",
						name, delta*100, oldE.NsPerOp, newE.NsPerOp)
				}
			}
			allocNote := ""
			if oldA, okOld := oldE.allocs(); okOld {
				if newA, okNew := newE.allocs(); okNew {
					worse := (oldA == 0 && newA > 0) ||
						(oldA > 0 && newA/oldA-1 > *threshold)
					allocNote = fmt.Sprintf("  allocs %.0f -> %.0f", oldA, newA)
					if worse {
						allocNote += "  ALLOC-REGRESSION"
						regressions++
						if *annotate {
							fmt.Fprintf(out, "::warning title=alloc regression::%s allocs/op %.0f -> %.0f\n",
								name, oldA, newA)
						}
					}
				}
			}
			fmt.Fprintf(out, "  %-60s %12.0f -> %9.0f ns/op  %+7.1f%%%s%s\n",
				name, oldE.NsPerOp, newE.NsPerOp, delta*100, flag, allocNote)
		}
	}
	fmt.Fprintf(out, "%d benchmark(s) compared, %d regression(s) above %+.0f%%\n",
		len(keys), regressions, *threshold*100)
	return regressions, nil
}

// readReport loads one BENCH_<date>.json document.
func readReport(path string) (Report, error) {
	var r Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, fmt.Errorf("reading report: %w", err)
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("decoding %s: %w", path, err)
	}
	return r, nil
}

// labelOr prefers the report's date stamp over its filename.
func labelOr(date, path string) string {
	if date != "" {
		return date
	}
	return path
}
