package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeReport drops a minimal BENCH json fixture and returns its path.
func writeReport(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldReport = `{
  "date": "2026-07-27",
  "entries": [
    {"name": "EnumerateNEParallel/workers1", "procs": 16, "ns_per_op": 1000},
    {"name": "Dist/n-2", "procs": 1, "ns_per_op": 500},
    {"name": "Removed", "procs": 16, "ns_per_op": 50}
  ]
}`

const newReport = `{
  "date": "2026-07-28",
  "entries": [
    {"name": "EnumerateNEParallel/workers1", "procs": 16, "ns_per_op": 1300},
    {"name": "Dist/n-2", "procs": 1, "ns_per_op": 590},
    {"name": "Added", "procs": 16, "ns_per_op": 70}
  ]
}`

func TestRunFlagsRegressions(t *testing.T) {
	oldPath := writeReport(t, "old.json", oldReport)
	newPath := writeReport(t, "new.json", newReport)
	var b strings.Builder
	regressions, err := run([]string{oldPath, newPath}, &b)
	if err != nil {
		t.Fatal(err)
	}
	got := b.String()
	// +30% ns/op crosses the default 20% threshold; +18% does not.
	if regressions != 1 {
		t.Fatalf("%d regressions, want 1:\n%s", regressions, got)
	}
	if !strings.Contains(got, "REGRESSION") || !strings.Contains(got, "+30.0%") {
		t.Fatalf("regression not reported:\n%s", got)
	}
	if strings.Contains(got, "Dist/n-2-1  REGRESSION") {
		t.Fatalf("+18%% wrongly flagged:\n%s", got)
	}
	if !strings.Contains(got, "(added)") || !strings.Contains(got, "(removed)") {
		t.Fatalf("added/removed entries not reported:\n%s", got)
	}
	if !strings.Contains(got, "2026-07-27 -> 2026-07-28") {
		t.Fatalf("date labels missing:\n%s", got)
	}
}

func TestRunThresholdFlag(t *testing.T) {
	oldPath := writeReport(t, "old.json", oldReport)
	newPath := writeReport(t, "new.json", newReport)
	var b strings.Builder
	// At 10%, both slowdowns (+30%, +18%) are regressions.
	regressions, err := run([]string{"-threshold", "0.10", oldPath, newPath}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 2 {
		t.Fatalf("%d regressions at 10%%, want 2:\n%s", regressions, b.String())
	}
}

func TestRunAnnotate(t *testing.T) {
	oldPath := writeReport(t, "old.json", oldReport)
	newPath := writeReport(t, "new.json", newReport)
	var b strings.Builder
	if _, err := run([]string{"-annotate", oldPath, newPath}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "::warning title=bench regression::EnumerateNEParallel/workers1-16") {
		t.Fatalf("missing GitHub annotation:\n%s", b.String())
	}
}

func TestRunErrors(t *testing.T) {
	okPath := writeReport(t, "ok.json", oldReport)
	badPath := writeReport(t, "bad.json", "{not json")
	var b strings.Builder
	if _, err := run([]string{okPath}, &b); err == nil {
		t.Fatal("one argument should error")
	}
	if _, err := run([]string{okPath, badPath}, &b); err == nil {
		t.Fatal("malformed report should error")
	}
	if _, err := run([]string{okPath, filepath.Join(t.TempDir(), "missing.json")}, &b); err == nil {
		t.Fatal("missing report should error")
	}
	if _, err := run([]string{"-nope", okPath, okPath}, &b); err == nil {
		t.Fatal("bad flag should error")
	}
}

const oldAllocReport = `{
  "date": "2026-07-27",
  "entries": [
    {"name": "BestResponseDP/C6_k4", "procs": 16, "ns_per_op": 300, "allocs_per_op": 0, "bytes_per_op": 0},
    {"name": "Dynamics", "procs": 16, "ns_per_op": 1000, "metrics": {"allocs/op": 10, "B/op": 512}},
    {"name": "NoMem", "procs": 16, "ns_per_op": 100}
  ]
}`

const newAllocReport = `{
  "date": "2026-07-28",
  "entries": [
    {"name": "BestResponseDP/C6_k4", "procs": 16, "ns_per_op": 305, "allocs_per_op": 3, "bytes_per_op": 96},
    {"name": "Dynamics", "procs": 16, "ns_per_op": 1010, "allocs_per_op": 11, "bytes_per_op": 512},
    {"name": "NoMem", "procs": 16, "ns_per_op": 101}
  ]
}`

// TestRunFlagsAllocRegressions: losing a 0 allocs/op steady state is always
// flagged; a within-threshold increase is reported but not flagged; legacy
// reports carrying allocs only in the metrics map still participate.
func TestRunFlagsAllocRegressions(t *testing.T) {
	oldPath := writeReport(t, "old.json", oldAllocReport)
	newPath := writeReport(t, "new.json", newAllocReport)
	var b strings.Builder
	regressions, err := run([]string{"-annotate", oldPath, newPath}, &b)
	if err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if regressions != 1 {
		t.Fatalf("%d regressions, want 1 (0 -> 3 allocs):\n%s", regressions, got)
	}
	if !strings.Contains(got, "ALLOC-REGRESSION") {
		t.Fatalf("alloc regression not flagged:\n%s", got)
	}
	if !strings.Contains(got, "::warning title=alloc regression::BestResponseDP/C6_k4-16 allocs/op 0 -> 3") {
		t.Fatalf("alloc annotation missing:\n%s", got)
	}
	// 10 -> 11 allocs is +10%, inside the default 20% threshold: reported,
	// not flagged.
	if !strings.Contains(got, "allocs 10 -> 11") || strings.Contains(got, "allocs 10 -> 11  ALLOC-REGRESSION") {
		t.Fatalf("legacy-metrics alloc comparison wrong:\n%s", got)
	}
	// Entries without memory data on either side must not invent one.
	if strings.Contains(got, "NoMem-16  allocs") {
		t.Fatalf("alloc note fabricated for NoMem:\n%s", got)
	}
}

// TestRunAllocThreshold: alloc increases obey the same -threshold flag.
func TestRunAllocThreshold(t *testing.T) {
	oldPath := writeReport(t, "old.json", oldAllocReport)
	newPath := writeReport(t, "new.json", newAllocReport)
	var b strings.Builder
	// At 5%, 10 -> 11 allocs (+10%) is also a regression.
	regressions, err := run([]string{"-threshold", "0.05", oldPath, newPath}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 2 {
		t.Fatalf("%d regressions at 5%%, want 2:\n%s", regressions, b.String())
	}
}
