package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeReport drops a minimal BENCH json fixture and returns its path.
func writeReport(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldReport = `{
  "date": "2026-07-27",
  "entries": [
    {"name": "EnumerateNEParallel/workers1", "procs": 16, "ns_per_op": 1000},
    {"name": "Dist/n-2", "procs": 1, "ns_per_op": 500},
    {"name": "Removed", "procs": 16, "ns_per_op": 50}
  ]
}`

const newReport = `{
  "date": "2026-07-28",
  "entries": [
    {"name": "EnumerateNEParallel/workers1", "procs": 16, "ns_per_op": 1300},
    {"name": "Dist/n-2", "procs": 1, "ns_per_op": 590},
    {"name": "Added", "procs": 16, "ns_per_op": 70}
  ]
}`

func TestRunFlagsRegressions(t *testing.T) {
	oldPath := writeReport(t, "old.json", oldReport)
	newPath := writeReport(t, "new.json", newReport)
	var b strings.Builder
	regressions, err := run([]string{oldPath, newPath}, &b)
	if err != nil {
		t.Fatal(err)
	}
	got := b.String()
	// +30% ns/op crosses the default 20% threshold; +18% does not.
	if regressions != 1 {
		t.Fatalf("%d regressions, want 1:\n%s", regressions, got)
	}
	if !strings.Contains(got, "REGRESSION") || !strings.Contains(got, "+30.0%") {
		t.Fatalf("regression not reported:\n%s", got)
	}
	if strings.Contains(got, "Dist/n-2-1  REGRESSION") {
		t.Fatalf("+18%% wrongly flagged:\n%s", got)
	}
	if !strings.Contains(got, "(added)") || !strings.Contains(got, "(removed)") {
		t.Fatalf("added/removed entries not reported:\n%s", got)
	}
	if !strings.Contains(got, "2026-07-27 -> 2026-07-28") {
		t.Fatalf("date labels missing:\n%s", got)
	}
}

func TestRunThresholdFlag(t *testing.T) {
	oldPath := writeReport(t, "old.json", oldReport)
	newPath := writeReport(t, "new.json", newReport)
	var b strings.Builder
	// At 10%, both slowdowns (+30%, +18%) are regressions.
	regressions, err := run([]string{"-threshold", "0.10", oldPath, newPath}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 2 {
		t.Fatalf("%d regressions at 10%%, want 2:\n%s", regressions, b.String())
	}
}

func TestRunAnnotate(t *testing.T) {
	oldPath := writeReport(t, "old.json", oldReport)
	newPath := writeReport(t, "new.json", newReport)
	var b strings.Builder
	if _, err := run([]string{"-annotate", oldPath, newPath}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "::warning title=bench regression::EnumerateNEParallel/workers1-16") {
		t.Fatalf("missing GitHub annotation:\n%s", b.String())
	}
}

func TestRunErrors(t *testing.T) {
	okPath := writeReport(t, "ok.json", oldReport)
	badPath := writeReport(t, "bad.json", "{not json")
	var b strings.Builder
	if _, err := run([]string{okPath}, &b); err == nil {
		t.Fatal("one argument should error")
	}
	if _, err := run([]string{okPath, badPath}, &b); err == nil {
		t.Fatal("malformed report should error")
	}
	if _, err := run([]string{okPath, filepath.Join(t.TempDir(), "missing.json")}, &b); err == nil {
		t.Fatal("missing report should error")
	}
	if _, err := run([]string{"-nope", okPath, okPath}, &b); err == nil {
		t.Fatal("bad flag should error")
	}
}

// writeHistory drops several artifacts into one directory (the committed
// dev/bench layout) and returns the directory.
func writeHistory(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// Three-artifact trajectory. Drifter creeps up in small steps (none alone
// crossing 20%) but ends 25% above its best; Steady holds flat; Windowed
// had one slow outlier early, so its full-history median differs from a
// short rolling window.
func historyFixture(t *testing.T) string {
	t.Helper()
	return writeHistory(t, map[string]string{
		"BENCH_2026-08-01.json": `{"date":"2026-08-01","entries":[
			{"name":"Drifter","procs":16,"ns_per_op":1000},
			{"name":"Steady","procs":16,"ns_per_op":1000},
			{"name":"Windowed","procs":16,"ns_per_op":2000}]}`,
		"BENCH_2026-08-02.json": `{"date":"2026-08-02","entries":[
			{"name":"Drifter","procs":16,"ns_per_op":1100},
			{"name":"Steady","procs":16,"ns_per_op":1000},
			{"name":"Windowed","procs":16,"ns_per_op":900}]}`,
		"BENCH_2026-08-03.json": `{"date":"2026-08-03","entries":[
			{"name":"Drifter","procs":16,"ns_per_op":1150},
			{"name":"Steady","procs":16,"ns_per_op":1000},
			{"name":"Windowed","procs":16,"ns_per_op":1000}]}`,
	})
}

const historyNewReport = `{"date":"2026-08-08","entries":[
	{"name":"Drifter","procs":16,"ns_per_op":1250},
	{"name":"Steady","procs":16,"ns_per_op":1010},
	{"name":"Windowed","procs":16,"ns_per_op":1200}]}`

// TestRunHistoryMode: a creeping slowdown invisible to the previous-run
// diff (+8.7% step) is still flagged against best-ever (+25%), while a
// flat benchmark stays clean.
func TestRunHistoryMode(t *testing.T) {
	dir := historyFixture(t)
	newPath := writeReport(t, "new.json", historyNewReport)
	var b strings.Builder
	regressions, err := run([]string{"-history", dir, newPath}, &b)
	if err != nil {
		t.Fatal(err)
	}
	got := b.String()
	// Drifter: +25% over best-ever. Windowed: +33% over best-ever 900.
	// Neither exceeds +20% over the previous artifact or the full median.
	if regressions != 2 {
		t.Fatalf("%d regressions, want 2 (both DRIFT>BEST):\n%s", regressions, got)
	}
	if !strings.Contains(got, "history: 3 artifact(s)") {
		t.Fatalf("history header missing:\n%s", got)
	}
	if strings.Count(got, "DRIFT>BEST") != 2 || strings.Contains(got, "DRIFT>MEDIAN") {
		t.Fatalf("drift flags wrong:\n%s", got)
	}
	if strings.Contains(got, "  REGRESSION") {
		t.Fatalf("previous-run regression wrongly flagged:\n%s", got)
	}
	// Baseline for the step diff is the latest artifact.
	if !strings.Contains(got, "2026-08-03 -> 2026-08-08") {
		t.Fatalf("latest-artifact baseline missing:\n%s", got)
	}
	if !strings.Contains(got, "best 1000  median 1100") {
		t.Fatalf("best/median columns missing for Drifter:\n%s", got)
	}
}

// TestRunHistoryWindow: shrinking the rolling window drops Windowed's old
// 2000 ns/op outlier, pulling the median down to 950 so the new 1200 run
// also drifts past the median.
func TestRunHistoryWindow(t *testing.T) {
	dir := historyFixture(t)
	newPath := writeReport(t, "new.json", historyNewReport)
	var b strings.Builder
	regressions, err := run([]string{"-history", dir, "-window", "2", newPath}, &b)
	if err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if regressions != 3 {
		t.Fatalf("%d regressions with window 2, want 3:\n%s", regressions, got)
	}
	if !strings.Contains(got, "DRIFT>MEDIAN") {
		t.Fatalf("windowed median drift not flagged:\n%s", got)
	}
}

// TestRunHistoryAnnotate: drift flags emit CI warnings like step
// regressions do.
func TestRunHistoryAnnotate(t *testing.T) {
	dir := historyFixture(t)
	newPath := writeReport(t, "new.json", historyNewReport)
	var b strings.Builder
	if _, err := run([]string{"-annotate", "-history", dir, newPath}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "::warning title=bench drift::Drifter-16") {
		t.Fatalf("missing drift annotation:\n%s", b.String())
	}
}

// TestRunHistoryMissing: a benchmark carried by the latest committed
// artifact but absent from the new report is flagged MISSING in history
// mode (and annotated), unlike two-file mode where removal is neutral.
func TestRunHistoryMissing(t *testing.T) {
	dir := historyFixture(t)
	// Windowed has vanished from the new run.
	newPath := writeReport(t, "new.json", `{"date":"2026-08-08","entries":[
		{"name":"Drifter","procs":16,"ns_per_op":1250},
		{"name":"Steady","procs":16,"ns_per_op":1010}]}`)
	var b strings.Builder
	regressions, err := run([]string{"-annotate", "-history", dir, newPath}, &b)
	if err != nil {
		t.Fatal(err)
	}
	got := b.String()
	// Drifter still drifts past best-ever; Windowed's disappearance adds one.
	if regressions != 2 {
		t.Fatalf("%d regressions, want 2 (drift + missing):\n%s", regressions, got)
	}
	if !strings.Contains(got, "MISSING") {
		t.Fatalf("missing benchmark not flagged:\n%s", got)
	}
	if !strings.Contains(got, "::warning title=bench missing::Windowed-16") {
		t.Fatalf("missing-benchmark annotation absent:\n%s", got)
	}
	if strings.Contains(got, "(removed)") {
		t.Fatalf("history mode should flag, not neutrally report, removals:\n%s", got)
	}
}

func TestRunHistoryErrors(t *testing.T) {
	dir := historyFixture(t)
	newPath := writeReport(t, "new.json", historyNewReport)
	var b strings.Builder
	if _, err := run([]string{"-history", dir, newPath, newPath}, &b); err == nil {
		t.Fatal("two reports with -history should error")
	}
	if _, err := run([]string{"-history", t.TempDir(), newPath}, &b); err == nil {
		t.Fatal("empty history directory should error")
	}
}

const oldAllocReport = `{
  "date": "2026-07-27",
  "entries": [
    {"name": "BestResponseDP/C6_k4", "procs": 16, "ns_per_op": 300, "allocs_per_op": 0, "bytes_per_op": 0},
    {"name": "Dynamics", "procs": 16, "ns_per_op": 1000, "metrics": {"allocs/op": 10, "B/op": 512}},
    {"name": "NoMem", "procs": 16, "ns_per_op": 100}
  ]
}`

const newAllocReport = `{
  "date": "2026-07-28",
  "entries": [
    {"name": "BestResponseDP/C6_k4", "procs": 16, "ns_per_op": 305, "allocs_per_op": 3, "bytes_per_op": 96},
    {"name": "Dynamics", "procs": 16, "ns_per_op": 1010, "allocs_per_op": 11, "bytes_per_op": 512},
    {"name": "NoMem", "procs": 16, "ns_per_op": 101}
  ]
}`

// TestRunFlagsAllocRegressions: losing a 0 allocs/op steady state is always
// flagged; a within-threshold increase is reported but not flagged; legacy
// reports carrying allocs only in the metrics map still participate.
func TestRunFlagsAllocRegressions(t *testing.T) {
	oldPath := writeReport(t, "old.json", oldAllocReport)
	newPath := writeReport(t, "new.json", newAllocReport)
	var b strings.Builder
	regressions, err := run([]string{"-annotate", oldPath, newPath}, &b)
	if err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if regressions != 1 {
		t.Fatalf("%d regressions, want 1 (0 -> 3 allocs):\n%s", regressions, got)
	}
	if !strings.Contains(got, "ALLOC-REGRESSION") {
		t.Fatalf("alloc regression not flagged:\n%s", got)
	}
	if !strings.Contains(got, "::warning title=alloc regression::BestResponseDP/C6_k4-16 allocs/op 0 -> 3") {
		t.Fatalf("alloc annotation missing:\n%s", got)
	}
	// 10 -> 11 allocs is +10%, inside the default 20% threshold: reported,
	// not flagged.
	if !strings.Contains(got, "allocs 10 -> 11") || strings.Contains(got, "allocs 10 -> 11  ALLOC-REGRESSION") {
		t.Fatalf("legacy-metrics alloc comparison wrong:\n%s", got)
	}
	// Entries without memory data on either side must not invent one.
	if strings.Contains(got, "NoMem-16  allocs") {
		t.Fatalf("alloc note fabricated for NoMem:\n%s", got)
	}
}

// TestRunAllocThreshold: alloc increases obey the same -threshold flag.
func TestRunAllocThreshold(t *testing.T) {
	oldPath := writeReport(t, "old.json", oldAllocReport)
	newPath := writeReport(t, "new.json", newAllocReport)
	var b strings.Builder
	// At 5%, 10 -> 11 allocs (+10%) is also a regression.
	regressions, err := run([]string{"-threshold", "0.05", oldPath, newPath}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 2 {
		t.Fatalf("%d regressions at 5%%, want 2:\n%s", regressions, b.String())
	}
}
