package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeReport drops a minimal BENCH json fixture and returns its path.
func writeReport(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldReport = `{
  "date": "2026-07-27",
  "entries": [
    {"name": "EnumerateNEParallel/workers1", "procs": 16, "ns_per_op": 1000},
    {"name": "Dist/n-2", "procs": 1, "ns_per_op": 500},
    {"name": "Removed", "procs": 16, "ns_per_op": 50}
  ]
}`

const newReport = `{
  "date": "2026-07-28",
  "entries": [
    {"name": "EnumerateNEParallel/workers1", "procs": 16, "ns_per_op": 1300},
    {"name": "Dist/n-2", "procs": 1, "ns_per_op": 590},
    {"name": "Added", "procs": 16, "ns_per_op": 70}
  ]
}`

func TestRunFlagsRegressions(t *testing.T) {
	oldPath := writeReport(t, "old.json", oldReport)
	newPath := writeReport(t, "new.json", newReport)
	var b strings.Builder
	regressions, err := run([]string{oldPath, newPath}, &b)
	if err != nil {
		t.Fatal(err)
	}
	got := b.String()
	// +30% ns/op crosses the default 20% threshold; +18% does not.
	if regressions != 1 {
		t.Fatalf("%d regressions, want 1:\n%s", regressions, got)
	}
	if !strings.Contains(got, "REGRESSION") || !strings.Contains(got, "+30.0%") {
		t.Fatalf("regression not reported:\n%s", got)
	}
	if strings.Contains(got, "Dist/n-2-1  REGRESSION") {
		t.Fatalf("+18%% wrongly flagged:\n%s", got)
	}
	if !strings.Contains(got, "(added)") || !strings.Contains(got, "(removed)") {
		t.Fatalf("added/removed entries not reported:\n%s", got)
	}
	if !strings.Contains(got, "2026-07-27 -> 2026-07-28") {
		t.Fatalf("date labels missing:\n%s", got)
	}
}

func TestRunThresholdFlag(t *testing.T) {
	oldPath := writeReport(t, "old.json", oldReport)
	newPath := writeReport(t, "new.json", newReport)
	var b strings.Builder
	// At 10%, both slowdowns (+30%, +18%) are regressions.
	regressions, err := run([]string{"-threshold", "0.10", oldPath, newPath}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 2 {
		t.Fatalf("%d regressions at 10%%, want 2:\n%s", regressions, b.String())
	}
}

func TestRunAnnotate(t *testing.T) {
	oldPath := writeReport(t, "old.json", oldReport)
	newPath := writeReport(t, "new.json", newReport)
	var b strings.Builder
	if _, err := run([]string{"-annotate", oldPath, newPath}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "::warning title=bench regression::EnumerateNEParallel/workers1-16") {
		t.Fatalf("missing GitHub annotation:\n%s", b.String())
	}
}

func TestRunErrors(t *testing.T) {
	okPath := writeReport(t, "ok.json", oldReport)
	badPath := writeReport(t, "bad.json", "{not json")
	var b strings.Builder
	if _, err := run([]string{okPath}, &b); err == nil {
		t.Fatal("one argument should error")
	}
	if _, err := run([]string{okPath, badPath}, &b); err == nil {
		t.Fatal("malformed report should error")
	}
	if _, err := run([]string{okPath, filepath.Join(t.TempDir(), "missing.json")}, &b); err == nil {
		t.Fatal("missing report should error")
	}
	if _, err := run([]string{"-nope", okPath, okPath}, &b); err == nil {
		t.Fatal("bad flag should error")
	}
}
