package main

import (
	"bufio"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/multiradio/chanalloc"
	"github.com/multiradio/chanalloc/internal/live"
)

// TestServeListenerGracefulStop: closing the stop channel mid-conversation
// makes the daemon send the in-flight connection a bye frame, stop
// accepting, and return nil — the SIGINT/SIGTERM drain path minus the
// signal.
func TestServeListenerGracefulStop(t *testing.T) {
	rate, err := chanalloc.ParseRate("tdma:54")
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stop := make(chan struct{})
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- serveListener(ln, live.Config{
			Channels: 4,
			Rate:     rate,
			RateName: "tdma:54",
			Workers:  2,
			Verify:   true,
		}, stop, 2*time.Second)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	readFrame := func() string {
		t.Helper()
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if !sc.Scan() {
			t.Fatalf("connection ended early: %v", sc.Err())
		}
		return sc.Text()
	}
	if f := readFrame(); !strings.Contains(f, `"type":"hello"`) {
		t.Fatalf("first frame %q, want hello", f)
	}
	if _, err := conn.Write([]byte(`{"op":"join","budget":2}` + "\n")); err != nil {
		t.Fatal(err)
	}
	if f := readFrame(); !strings.Contains(f, `"type":"update"`) {
		t.Fatalf("join answered with %q, want update", f)
	}

	close(stop)
	// The drain: the live conversation's next frame is the daemon's bye.
	var resp live.Response
	if err := json.Unmarshal([]byte(readFrame()), &resp); err != nil || resp.Type != "bye" {
		t.Fatalf("post-stop frame: %v (err=%v), want bye", resp, err)
	}
	conn.Close() // the client hangs up; Serve returns and the daemon exits
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serveListener: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveListener did not return after stop + client hangup")
	}
	// No new connections after stop.
	if c, err := net.DialTimeout("tcp", ln.Addr().String(), 200*time.Millisecond); err == nil {
		c.Close()
		t.Fatal("listener still accepting after stop")
	}
}

// TestServeListenerStopWhileIdle: stop with no connection in flight returns
// promptly.
func TestServeListenerStopWhileIdle(t *testing.T) {
	rate, err := chanalloc.ParseRate("tdma:54")
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stop := make(chan struct{})
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- serveListener(ln, live.Config{
			Channels: 4, Rate: rate, RateName: "tdma:54", Workers: 1,
		}, stop, time.Second)
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serveListener: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("idle serveListener did not stop")
	}
}

// TestServeListenerForceCloseAfterDrain: a client that ignores the bye frame
// is force-closed once the drain grace expires, and the daemon still exits 0.
func TestServeListenerForceCloseAfterDrain(t *testing.T) {
	rate, err := chanalloc.ParseRate("tdma:54")
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stop := make(chan struct{})
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- serveListener(ln, live.Config{
			Channels: 4, Rate: rate, RateName: "tdma:54", Workers: 1,
		}, stop, 50*time.Millisecond)
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if !sc.Scan() || !strings.Contains(sc.Text(), "hello") {
		t.Fatalf("no hello: %v", sc.Err())
	}
	close(stop)
	// The client never hangs up; the 50ms drain grace expires and the
	// daemon force-closes the connection.
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serveListener: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never force-closed the lingering connection")
	}
}
