package main

import (
	"bufio"
	"crypto/tls"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/multiradio/chanalloc"
	"github.com/multiradio/chanalloc/internal/live"
)

// TestServeListenerTLS: the live protocol over a TLS listener is the same
// frames, encrypted — a client trusting the self-signed cert reads the
// hello and converses normally.
func TestServeListenerTLS(t *testing.T) {
	dir := t.TempDir()
	certPEM, keyPEM, err := chanalloc.GenerateSelfSignedCert(
		[]string{"127.0.0.1"}, time.Now().Add(-time.Hour), time.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	certFile := filepath.Join(dir, "cert.pem")
	keyFile := filepath.Join(dir, "key.pem")
	if err := os.WriteFile(certFile, certPEM, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(keyFile, keyPEM, 0o600); err != nil {
		t.Fatal(err)
	}
	srvCfg, err := chanalloc.EngineServerTLSConfig(certFile, keyFile)
	if err != nil {
		t.Fatal(err)
	}
	cliCfg, err := chanalloc.EngineClientTLSConfig(certFile, false)
	if err != nil {
		t.Fatal(err)
	}

	rate, err := chanalloc.ParseRate("tdma:54")
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := tls.NewListener(tcp, srvCfg)
	defer ln.Close()
	stop := make(chan struct{})
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- serveListener(ln, live.Config{
			Channels: 4, Rate: rate, RateName: "tdma:54", Workers: 1,
		}, stop, time.Second)
	}()

	conn, err := tls.Dial("tcp", tcp.Addr().String(), cliCfg)
	if err != nil {
		t.Fatalf("TLS dial: %v", err)
	}
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if !sc.Scan() || !strings.Contains(sc.Text(), `"type":"hello"`) {
		t.Fatalf("no hello over TLS: %q (%v)", sc.Text(), sc.Err())
	}
	if _, err := conn.Write([]byte(`{"op":"join","budget":2}` + "\n")); err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() || !strings.Contains(sc.Text(), `"type":"update"`) {
		t.Fatalf("join over TLS answered %q, want update", sc.Text())
	}

	// A plain-TCP client against the TLS listener gets no live frame.
	plain, err := net.Dial("tcp", tcp.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	plain.SetReadDeadline(time.Now().Add(2 * time.Second))
	psc := bufio.NewScanner(plain)
	if psc.Scan() && strings.Contains(psc.Text(), `"type":"hello"`) {
		t.Fatal("plain dialer read a cleartext hello from the TLS listener")
	}
	plain.Close()

	close(stop)
	conn.Close()
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serveListener: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("TLS serveListener did not stop")
	}
}

// TestTLSFlagValidation: the flag pairing and mode constraints fail fast.
func TestTLSFlagValidation(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-tls-cert", "c.pem"}, &b, nil); err == nil ||
		!strings.Contains(err.Error(), "go together") {
		t.Fatalf("lone -tls-cert: %v", err)
	}
	if err := run([]string{"-tls-cert", "c.pem", "-tls-key", "k.pem", "-mode", "trace"}, &b, nil); err == nil ||
		!strings.Contains(err.Error(), "-mode serve") {
		t.Fatalf("TLS without a socket: %v", err)
	}
}
