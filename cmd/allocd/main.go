// Command allocd is the live channel-allocation service: a long-lived
// process that maintains a mutable allocation game (users join, leave and
// renegotiate radio budgets) and answers every churn event with a
// warm-started re-equilibration — the new allocation plus convergence
// statistics — over newline-delimited JSON.
//
// Modes:
//
//	-mode serve   speak the protocol on stdin/stdout, or accept TCP
//	              connections when -listen is set (each connection gets
//	              its own fresh game)
//	-mode churn   generate the -churn trace and serve it in-process,
//	              writing the transcript to stdout: the byte-identical
//	              offline form of serving the same trace over a socket
//	-mode trace   print the generated -churn trace itself (client replay
//	              input) to stdout
//
// The churn spec is "channels,initial,events[,seed]" (see
// live.ParseChurnSpec); in churn and trace modes it also fixes the channel
// count. Rate functions use the same grammar as cmd/chanalloc
// (chanalloc.ParseRate). Output bytes never depend on -workers: the
// worker pool only parallelises Nash-equilibrium verification, an
// AND-reduce over per-user verdicts.
package main

import (
	"bytes"
	"crypto/tls"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"github.com/multiradio/chanalloc"
	"github.com/multiradio/chanalloc/internal/live"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, stopOnSignals()); err != nil {
		fmt.Fprintln(os.Stderr, "allocd:", err)
		os.Exit(1)
	}
}

// stopOnSignals returns a channel that closes on SIGINT/SIGTERM — the
// graceful-shutdown trigger. A second signal while draining restores the
// default disposition, so an impatient operator's repeat ^C still kills.
func stopOnSignals() <-chan struct{} {
	stop := make(chan struct{})
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ch
		fmt.Fprintln(os.Stderr, "allocd: shutdown signal — draining (repeat to kill)")
		signal.Stop(ch)
		close(stop)
	}()
	return stop
}

// run is the testable entry: stop (may be nil) triggers graceful shutdown.
func run(args []string, stdout io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("allocd", flag.ContinueOnError)
	var (
		mode      = fs.String("mode", "serve", "serve | churn | trace")
		channels  = fs.Int("channels", 4, "channel count (serve mode; churn spec overrides)")
		rateSpec  = fs.String("rate", "tdma:54", "rate function (chanalloc grammar)")
		workers   = fs.Int("workers", 0, "verification workers; <1 means NumCPU")
		eps       = fs.Float64("eps", 0, "dynamics tolerance; 0 keeps the default")
		maxRounds = fs.Int("max-rounds", 0, "round cap; 0 keeps the default")
		verify    = fs.Bool("verify", true, "re-prove every settled allocation with the exact NE oracle")
		listen    = fs.String("listen", "", "TCP listen address (serve mode); empty means stdin/stdout")
		churnSpec = fs.String("churn", "4,6,200,1", "churn spec channels,initial,events[,seed] (churn/trace modes)")
		metrics   = fs.String("metrics", "", "serve /metrics, /metrics.json, /trace and /debug/pprof on this address (empty disables)")
		obsStats  = fs.Bool("obs-stats", false, "embed a metrics snapshot in every stats frame (off keeps transcripts byte-pinned)")
		drain     = fs.Duration("drain-timeout", 5*time.Second,
			"after SIGINT/SIGTERM: stop accepting, send the in-flight connection a bye frame, and force-close it past this grace (<= 0 waits)")
		tlsCert = fs.String("tls-cert", "", "serve -listen over TLS with this PEM certificate (requires -tls-key)")
		tlsKey  = fs.String("tls-key", "", "PEM private key for -tls-cert")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*tlsCert == "") != (*tlsKey == "") {
		return errors.New("-tls-cert and -tls-key go together")
	}
	if *tlsCert != "" && (*mode != "serve" || *listen == "") {
		return errors.New("-tls-cert needs -mode serve with -listen (stdio has no socket to wrap)")
	}
	if *metrics != "" {
		ms, err := chanalloc.ServeObs(*metrics)
		if err != nil {
			return err
		}
		defer ms.Close()
		fmt.Fprintln(os.Stderr, "allocd: metrics on", ms.Addr)
	}
	rate, err := chanalloc.ParseRate(*rateSpec)
	if err != nil {
		return err
	}
	cfg := live.Config{
		Channels:  *channels,
		Rate:      rate,
		RateName:  *rateSpec,
		Workers:   *workers,
		Verify:    *verify,
		Eps:       *eps,
		MaxRounds: *maxRounds,
		EmitObs:   *obsStats,
	}

	switch *mode {
	case "serve":
		if *listen == "" {
			srv, err := live.NewServer(cfg)
			if err != nil {
				return err
			}
			if stop != nil {
				// Stdio mode: the bye frame is the drain; closing stdin
				// unblocks the scanner so Serve returns nil (exit 0).
				go func() {
					<-stop
					srv.Interrupt()
					os.Stdin.Close()
				}()
			}
			return srv.Serve(os.Stdin, stdout)
		}
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		if *tlsCert != "" {
			tlsCfg, err := chanalloc.EngineServerTLSConfig(*tlsCert, *tlsKey)
			if err != nil {
				return err
			}
			ln = tls.NewListener(ln, tlsCfg)
		}
		defer ln.Close()
		fmt.Fprintln(os.Stderr, "allocd: listening on", ln.Addr())
		return serveListener(ln, cfg, stop, *drain)
	case "churn":
		spec, err := live.ParseChurnSpec(*churnSpec)
		if err != nil {
			return err
		}
		cfg.Channels = spec.Channels
		out, err := serveTrace(cfg, spec)
		if err != nil {
			return err
		}
		_, err = stdout.Write(out)
		return err
	case "trace":
		spec, err := live.ParseChurnSpec(*churnSpec)
		if err != nil {
			return err
		}
		trace, err := live.GenerateTrace(spec)
		if err != nil {
			return err
		}
		out, err := encodeTrace(trace)
		if err != nil {
			return err
		}
		_, err = stdout.Write(out)
		return err
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

// serveListener accepts connections until the listener closes; every
// connection converses with its own fresh game, but session statistics
// aggregate across connections — the "stats" op reports service-lifetime
// totals, not just the dialing connection's. Connections are served
// sequentially — the service is a deterministic reference implementation,
// not a connection-scale daemon.
//
// When stop closes, the listener shuts down gracefully: no new
// connections, the in-flight conversation gets a bye frame
// (live.Server.Interrupt) and the drain grace to wind down, then its
// connection is force-closed — the reap escalation idiom — and
// serveListener returns nil.
func serveListener(ln net.Listener, cfg live.Config, stop <-chan struct{}, drain time.Duration) error {
	cfg.Totals = &live.Totals{}
	var mu sync.Mutex
	var curSrv *live.Server
	var curConn net.Conn
	var curDone chan struct{}
	stopping := make(chan struct{})
	if stop != nil {
		go func() {
			<-stop
			close(stopping)
			ln.Close()
			mu.Lock()
			srv, conn, done := curSrv, curConn, curDone
			mu.Unlock()
			if srv == nil {
				return
			}
			srv.Interrupt() // bye frame; Serve writes nothing more
			if drain > 0 {
				select {
				case <-done:
					return
				case <-time.After(drain):
				}
			}
			conn.Close() // unblocks Serve's reader; it returns nil
		}()
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-stopping:
				return nil
			default:
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		srv, err := live.NewServer(cfg)
		if err != nil {
			conn.Close()
			return err
		}
		done := make(chan struct{})
		mu.Lock()
		curSrv, curConn, curDone = srv, conn, done
		mu.Unlock()
		if err := srv.Serve(conn, conn); err != nil {
			fmt.Fprintln(os.Stderr, "allocd: connection:", err)
		}
		close(done)
		mu.Lock()
		curSrv, curConn, curDone = nil, nil, nil
		mu.Unlock()
		conn.Close()
		select {
		case <-stopping:
			return nil
		default:
		}
	}
}

// serveTrace runs a generated trace through an in-process server and
// returns the transcript — the same bytes a remote client would read.
func serveTrace(cfg live.Config, spec live.ChurnSpec) ([]byte, error) {
	trace, err := live.GenerateTrace(spec)
	if err != nil {
		return nil, err
	}
	in, err := encodeTrace(append(trace, live.Request{Op: "stats"}, live.Request{Op: "bye"}))
	if err != nil {
		return nil, err
	}
	srv, err := live.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	var out bytes.Buffer
	if err := srv.Serve(bytes.NewReader(in), &out); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// encodeTrace renders requests as NDJSON client input.
func encodeTrace(trace []live.Request) ([]byte, error) {
	var buf bytes.Buffer
	for _, req := range trace {
		b, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}
