package main

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/multiradio/chanalloc"
	"github.com/multiradio/chanalloc/internal/live"
)

const goldenSpec = "4,6,200,7"

func goldenBytes(t *testing.T) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", "churn_4c_200ev_seed7.golden"))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestChurnModeMatchesGolden replays the committed 200-event seeded trace
// in-process and pins the full transcript byte-for-byte, at several worker
// counts. A diff here is a protocol or determinism regression.
func TestChurnModeMatchesGolden(t *testing.T) {
	want := goldenBytes(t)
	for _, workers := range []int{1, 4} {
		var out bytes.Buffer
		err := run([]string{
			"-mode", "churn", "-churn", goldenSpec, "-rate", "tdma:54",
			"-workers", map[int]string{1: "1", 4: "4"}[workers],
		}, &out, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(out.Bytes(), want) {
			t.Fatalf("workers=%d: transcript diverged from golden (%d vs %d bytes)",
				workers, out.Len(), len(want))
		}
	}
}

// TestLoopbackServe is the end-to-end smoke test: a real TCP loopback
// conversation streaming the seeded trace must produce the same bytes as
// the in-process churn mode — the transport is invisible.
func TestLoopbackServe(t *testing.T) {
	spec, err := live.ParseChurnSpec(goldenSpec)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := live.GenerateTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	in, err := encodeTrace(append(trace, live.Request{Op: "stats"}, live.Request{Op: "bye"}))
	if err != nil {
		t.Fatal(err)
	}

	rate, err := chanalloc.ParseRate("tdma:54")
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- serveListener(ln, live.Config{
			Channels: spec.Channels,
			Rate:     rate,
			RateName: "tdma:54",
			Workers:  2,
			Verify:   true,
		}, nil, 0)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	writeErr := make(chan error, 1)
	go func() {
		_, err := conn.Write(in)
		writeErr <- err
	}()

	var transcript bytes.Buffer
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		transcript.Write(sc.Bytes())
		transcript.WriteByte('\n')
		if bytes.Equal(sc.Bytes(), []byte(`{"type":"bye"}`)) {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if err := <-writeErr; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(transcript.Bytes(), goldenBytes(t)) {
		t.Fatalf("loopback transcript diverged from golden (%d vs %d bytes)",
			transcript.Len(), len(goldenBytes(t)))
	}
	// The accept loop only returns on listener close.
	ln.Close()
	<-serveErr
}

// TestMetricsScrapeDuringGoldenReplay is the determinism acceptance test
// for the observability layer: with the metrics endpoint up and a client
// hammering /metrics, /metrics.json and /trace THROUGHOUT the golden churn
// replay, the transcript must still match the pinned bytes — metrics are a
// side channel, never an input.
func TestMetricsScrapeDuringGoldenReplay(t *testing.T) {
	srv, err := chanalloc.ServeObs("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr.String()

	scrape := func(path string) []byte {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: reading body: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return body
	}

	done := make(chan struct{})
	scraping := make(chan struct{})
	go func() {
		defer close(scraping)
		for {
			select {
			case <-done:
				return
			default:
				scrape("/metrics")
				scrape("/metrics.json")
				scrape("/trace")
				time.Sleep(time.Millisecond)
			}
		}
	}()

	var out bytes.Buffer
	err = run([]string{"-mode", "churn", "-churn", goldenSpec, "-rate", "tdma:54"}, &out, nil)
	close(done)
	<-scraping
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), goldenBytes(t)) {
		t.Fatalf("transcript diverged from golden under metrics scraping (%d vs %d bytes)",
			out.Len(), len(goldenBytes(t)))
	}

	// After the replay the exposition must show the churn it observed.
	body := scrape("/metrics")
	for _, want := range []string{"live_events_total", "dynamics_requilibrates_total", "kernel_dp_calls_total"} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics missing %s after churn replay", want)
		}
	}
	if trace := scrape("/trace"); !bytes.Contains(trace, []byte(`"kind":"churn"`)) {
		t.Errorf("/trace has no churn events after replay: %q", trace[:min(len(trace), 200)])
	}
}

// TestTraceMode pins that trace mode emits the replay input churn mode
// consumes: exactly the spec's events, deterministically.
func TestTraceMode(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-mode", "trace", "-churn", goldenSpec}, &a, nil); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-mode", "trace", "-churn", goldenSpec}, &b, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("trace mode is not deterministic")
	}
	if lines := bytes.Count(a.Bytes(), []byte("\n")); lines != 200 {
		t.Fatalf("trace has %d lines, want 200", lines)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-mode", "warp"}, &out, nil); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := run([]string{"-rate", "quantum:1"}, &out, nil); err == nil {
		t.Fatal("unknown rate accepted")
	}
	if err := run([]string{"-mode", "churn", "-churn", "bogus"}, &out, nil); err == nil {
		t.Fatal("bad churn spec accepted")
	}
}
