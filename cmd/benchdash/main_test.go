package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeArtifacts seeds a history dir with three artifacts: DPKernel
// improves then regresses, Steady is flat, LateComer appears mid-history
// (its statistics must cover only its own runs, as in benchdiff).
func writeArtifacts(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"BENCH_2026-01-01.json": `{"date":"2026-01-01","entries":[
			{"name":"DPKernel","procs":1,"ns_per_op":1000,"allocs_per_op":4},
			{"name":"Steady","procs":1,"ns_per_op":50,"allocs_per_op":0}]}`,
		"BENCH_2026-01-02.json": `{"date":"2026-01-02","entries":[
			{"name":"DPKernel","procs":1,"ns_per_op":800,"allocs_per_op":4},
			{"name":"Steady","procs":1,"ns_per_op":50,"allocs_per_op":0},
			{"name":"LateComer","procs":1,"ns_per_op":300}]}`,
		"BENCH_2026-01-03.json": `{"date":"2026-01-03","entries":[
			{"name":"DPKernel","procs":1,"ns_per_op":1200,"allocs_per_op":5},
			{"name":"Steady","procs":1,"ns_per_op":50,"allocs_per_op":0},
			{"name":"LateComer","procs":1,"ns_per_op":310}]}`,
	}
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestBuildSeriesMirrorsBenchdiff(t *testing.T) {
	reports, labels, err := readHistory(writeArtifacts(t))
	if err != nil {
		t.Fatal(err)
	}
	all := buildSeries(reports, labels, 8)
	byName := map[string]series{}
	for _, s := range all {
		byName[s.key.name] = s
	}
	dp := byName["DPKernel"]
	if dp.best != 800 {
		t.Errorf("DPKernel best = %v, want 800", dp.best)
	}
	if dp.median != 1000 {
		t.Errorf("DPKernel median = %v, want 1000 (median of 1000,800,1200)", dp.median)
	}
	lc := byName["LateComer"]
	if len(lc.points) != 2 {
		t.Fatalf("LateComer has %d points, want 2 (only the artifacts that carry it)", len(lc.points))
	}
	if lc.median != 305 {
		t.Errorf("LateComer median = %v, want 305", lc.median)
	}
	if lc.points[0].allocs != -1 {
		t.Errorf("LateComer without allocs data must record -1, got %v", lc.points[0].allocs)
	}
	// A window of 2 must drop DPKernel's first run from the median.
	all2 := buildSeries(reports, labels, 2)
	for _, s := range all2 {
		if s.key.name == "DPKernel" && s.median != 1000 {
			t.Errorf("DPKernel window-2 median = %v, want 1000 (median of 800,1200)", s.median)
		}
	}
}

func TestRunWritesDeterministicDashboard(t *testing.T) {
	dir := writeArtifacts(t)
	render := func() string {
		var out bytes.Buffer
		if err := run([]string{"-dir", dir, "-out", "-"}, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	page := render()
	for _, want := range []string{
		"<!DOCTYPE html>", "DPKernel", "Steady", "LateComer",
		"best-ever", "rolling median", "2026-01-01", "2026-01-03",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	if page != render() {
		t.Error("dashboard bytes differ across identical runs")
	}
	// File mode writes the same bytes.
	outPath := filepath.Join(t.TempDir(), "index.html")
	if err := run([]string{"-dir", dir, "-out", outPath}, io.Discard); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != page {
		t.Error("file output differs from stdout output")
	}
}

func TestRunRejectsEmptyHistory(t *testing.T) {
	if err := run([]string{"-dir", t.TempDir(), "-out", "-"}, io.Discard); err == nil {
		t.Fatal("empty history accepted")
	}
	if err := run([]string{"-dir", "nope", "-window", "0", "-out", "-"}, io.Discard); err == nil {
		t.Fatal("window 0 accepted")
	}
}
