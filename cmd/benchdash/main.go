// Command benchdash renders the committed benchmark trajectory — the
// BENCH_<date>.json artifacts under dev/bench/ — as one self-contained
// static HTML dashboard: per-benchmark ns/op sparklines with the best-ever
// line and the rolling-median band, plus allocs/op trends, so a perf
// regression (or win) is visible as a picture instead of a diff hunt.
//
//	benchdash -dir dev/bench -out dev/bench/index.html
//	benchdash -dir dev/bench -out -          # write the HTML to stdout
//
// The statistics mirror cmd/benchdiff -history exactly: artifacts are read
// in filename order (names embed ISO dates, so lexicographic order is
// chronological), zero/negative ns/op entries are dropped, best-ever is
// the minimum across all artifacts, and the rolling median covers the last
// -window artifacts that actually carry the benchmark. The page embeds no
// scripts and fetches nothing — it renders anywhere, including file://
// checkouts and artifact viewers — and its bytes are a pure function of
// the artifact set, so regenerating it without new benchmarks is a no-op
// in the diff.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Entry is one benchmark's record in a BENCH_<date>.json artifact (the
// schema cmd/benchjson writes and cmd/benchdiff reads).
type Entry struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp *float64           `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics"`
}

// allocs returns the entry's allocs/op and whether it was recorded,
// preferring the first-class field over the legacy metrics map.
func (e Entry) allocs() (float64, bool) {
	if e.AllocsPerOp != nil {
		return *e.AllocsPerOp, true
	}
	v, ok := e.Metrics["allocs/op"]
	return v, ok
}

// Report is one decoded artifact.
type Report struct {
	Date    string  `json:"date"`
	Entries []Entry `json:"entries"`
}

// key identifies a benchmark across artifacts.
type key struct {
	name  string
	procs int
}

// point is one artifact's measurement of one benchmark.
type point struct {
	label  string // artifact date (filename stem as fallback)
	ns     float64
	allocs float64 // -1 when the artifact did not record allocs
}

// series is one benchmark's trajectory with the benchdiff-equivalent
// statistics attached.
type series struct {
	key    key
	points []point
	best   float64   // minimum ns/op across all points
	median float64   // median ns/op over the last `window` points
	roll   []float64 // rolling median at each point (trailing window)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdash:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdash", flag.ContinueOnError)
	dir := fs.String("dir", "dev/bench", "directory of committed BENCH_*.json artifacts")
	out := fs.String("out", "dev/bench/index.html", `output HTML path ("-" writes to stdout)`)
	window := fs.Int("window", 8, "rolling-median window (matches benchdiff -history)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *window < 1 {
		return fmt.Errorf("-window must be >= 1, got %d", *window)
	}
	reports, labels, err := readHistory(*dir)
	if err != nil {
		return err
	}
	page := render(buildSeries(reports, labels, *window), labels, *window)
	if *out == "-" {
		_, err := io.WriteString(stdout, page)
		return err
	}
	return os.WriteFile(*out, []byte(page), 0o644)
}

// readHistory loads every BENCH_*.json under dir in filename order
// (lexicographic = chronological) and derives each artifact's label.
func readHistory(dir string) ([]Report, []string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, nil, fmt.Errorf("globbing history: %w", err)
	}
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("no BENCH_*.json artifacts under %s", dir)
	}
	sort.Strings(paths)
	reports := make([]Report, 0, len(paths))
	labels := make([]string, 0, len(paths))
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			return nil, nil, err
		}
		var r Report
		if err := json.Unmarshal(b, &r); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", p, err)
		}
		reports = append(reports, r)
		// The filename stem disambiguates same-day artifacts
		// (BENCH_2026-08-08b.json) where the embedded date cannot.
		labels = append(labels, strings.TrimSuffix(strings.TrimPrefix(filepath.Base(p), "BENCH_"), ".json"))
	}
	return reports, labels, nil
}

// buildSeries folds the artifact sequence into per-benchmark trajectories
// with benchdiff's statistics: dropped non-positive ns/op, best-ever over
// all runs, medians over the points that actually carry the benchmark.
func buildSeries(reports []Report, labels []string, window int) []series {
	byKey := map[key]*series{}
	for i, r := range reports {
		for _, e := range r.Entries {
			if e.NsPerOp <= 0 {
				continue
			}
			k := key{e.Name, e.Procs}
			s := byKey[k]
			if s == nil {
				s = &series{key: k}
				byKey[k] = s
			}
			p := point{label: labels[i], ns: e.NsPerOp, allocs: -1}
			if a, ok := e.allocs(); ok {
				p.allocs = a
			}
			s.points = append(s.points, p)
		}
	}
	out := make([]series, 0, len(byKey))
	for _, s := range byKey {
		ns := make([]float64, len(s.points))
		for i, p := range s.points {
			ns[i] = p.ns
		}
		s.best = ns[0]
		for _, v := range ns {
			if v < s.best {
				s.best = v
			}
		}
		s.roll = make([]float64, len(ns))
		for i := range ns {
			lo := i + 1 - window
			if lo < 0 {
				lo = 0
			}
			s.roll[i] = median(ns[lo : i+1])
		}
		s.median = s.roll[len(s.roll)-1]
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].key.name != out[j].key.name {
			return out[i].key.name < out[j].key.name
		}
		return out[i].key.procs < out[j].key.procs
	})
	return out
}

// median returns the middle value of vs (mean of the two middles when
// even) — the same definition benchdiff applies.
func median(vs []float64) float64 {
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// fmtNs renders a ns/op figure with a unit a human scans fast.
func fmtNs(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fs", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fµs", v/1e3)
	default:
		return fmt.Sprintf("%.0fns", v)
	}
}

// fmtAllocs renders allocs/op, "—" when never recorded.
func fmtAllocs(v float64) string {
	if v < 0 {
		return "—"
	}
	return fmt.Sprintf("%.0f", v)
}
