package main

import (
	"fmt"
	"html"
	"strings"
)

// Chart geometry: every sparkline shares one frame so the page scans as a
// grid of comparable pictures.
const (
	chartW  = 640.0
	chartH  = 96.0
	padX    = 6.0
	padY    = 8.0
	allocsW = 180.0
)

// driftThreshold mirrors benchdiff's default -threshold: a latest run more
// than this fraction above the rolling median is flagged as drift.
const driftThreshold = 0.20

// render builds the whole dashboard page. Output bytes are a pure function
// of the series — no timestamps, no environment — so regeneration without
// new artifacts leaves the committed file untouched.
func render(all []series, labels []string, window int) string {
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>chanalloc benchmark trajectory</title>
<style>
  body { font: 14px/1.45 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; padding: 0 1rem; color: #1a1a2e; }
  h1 { font-size: 1.4rem; } h1, h2 { font-weight: 600; }
  .meta { color: #667; margin-bottom: 1.5rem; }
  table { border-collapse: collapse; width: 100%; margin-bottom: 2rem; }
  th, td { text-align: right; padding: .25rem .6rem; border-bottom: 1px solid #e3e3ee; white-space: nowrap; }
  th:first-child, td:first-child { text-align: left; }
  th { color: #556; font-weight: 600; }
  td a { color: inherit; text-decoration: none; }
  .best { color: #117733; font-weight: 600; }
  .drift { color: #cc3311; font-weight: 600; }
  .card { margin-bottom: 1.6rem; }
  .card h2 { font-size: 1rem; margin: 0 0 .2rem 0; }
  .card .stats { color: #667; font-size: .85rem; margin-bottom: .3rem; }
  svg { background: #fafaff; border: 1px solid #e3e3ee; border-radius: 4px; }
  .charts { display: flex; gap: .8rem; align-items: flex-start; flex-wrap: wrap; }
  .axis { color: #99a; font-size: .75rem; }
</style>
</head>
<body>
`)
	fmt.Fprintf(&b, "<h1>chanalloc benchmark trajectory</h1>\n")
	fmt.Fprintf(&b, `<p class="meta">%d benchmark(s) over %d committed artifact(s) (%s … %s) — best-ever and rolling-median(window %d) mirror <code>benchdiff -history</code>. Blue: ns/op. Orange dashes: rolling median. Green line: best-ever. Gray (right panel): allocs/op.</p>`,
		len(all), len(labels), html.EscapeString(labels[0]), html.EscapeString(labels[len(labels)-1]), window)
	b.WriteString("\n")

	renderSummary(&b, all)
	for _, s := range all {
		renderCard(&b, s)
	}
	b.WriteString("</body>\n</html>\n")
	return b.String()
}

// anchor is the benchmark's stable fragment id.
func anchor(k key) string {
	if k.procs > 1 {
		return fmt.Sprintf("%s-%d", k.name, k.procs)
	}
	return k.name
}

// displayName shows the procs suffix only when it disambiguates.
func displayName(k key) string {
	if k.procs > 1 {
		return fmt.Sprintf("%s (procs=%d)", k.name, k.procs)
	}
	return k.name
}

// renderSummary writes the at-a-glance table: latest vs best vs median,
// with benchdiff's drift rule applied as colour.
func renderSummary(b *strings.Builder, all []series) {
	b.WriteString("<table>\n<tr><th>benchmark</th><th>runs</th><th>latest ns/op</th><th>best</th><th>median</th><th>Δ vs median</th><th>allocs/op</th></tr>\n")
	for _, s := range all {
		last := s.points[len(s.points)-1]
		delta := 0.0
		if s.median > 0 {
			delta = last.ns/s.median - 1
		}
		cls := ""
		switch {
		case delta > driftThreshold:
			cls = ` class="drift"`
		case last.ns <= s.best:
			cls = ` class="best"`
		}
		fmt.Fprintf(b, `<tr><td><a href="#%s">%s</a></td><td>%d</td><td%s>%s</td><td>%s</td><td>%s</td><td%s>%+.1f%%</td><td>%s</td></tr>`,
			html.EscapeString(anchor(s.key)), html.EscapeString(displayName(s.key)),
			len(s.points), cls, fmtNs(last.ns), fmtNs(s.best), fmtNs(s.median),
			cls, delta*100, fmtAllocs(last.allocs))
		b.WriteString("\n")
	}
	b.WriteString("</table>\n")
}

// renderCard writes one benchmark's sparkline pair (ns/op + allocs/op).
func renderCard(b *strings.Builder, s series) {
	last := s.points[len(s.points)-1]
	fmt.Fprintf(b, `<div class="card" id="%s">`+"\n", html.EscapeString(anchor(s.key)))
	fmt.Fprintf(b, "<h2>%s</h2>\n", html.EscapeString(displayName(s.key)))
	fmt.Fprintf(b, `<div class="stats">latest %s · best %s · median %s · %d run(s)</div>`+"\n",
		fmtNs(last.ns), fmtNs(s.best), fmtNs(s.median), len(s.points))
	b.WriteString(`<div class="charts">` + "\n")
	renderNsChart(b, s)
	renderAllocsChart(b, s)
	b.WriteString("</div>\n</div>\n")
}

// yScale maps a value into chart coordinates for the [lo, hi] range.
func yScale(v, lo, hi float64) float64 {
	if hi <= lo {
		return chartH / 2
	}
	return padY + (chartH-2*padY)*(hi-v)/(hi-lo)
}

// xAt spreads n points across the chart width.
func xAt(i, n int, width float64) float64 {
	if n <= 1 {
		return width / 2
	}
	return padX + (width-2*padX)*float64(i)/float64(n-1)
}

// polyline renders a point list as an SVG polyline attribute value.
func polyline(xs, ys []float64) string {
	parts := make([]string, len(xs))
	for i := range xs {
		parts[i] = fmt.Sprintf("%.1f,%.1f", xs[i], ys[i])
	}
	return strings.Join(parts, " ")
}

// renderNsChart draws the ns/op trajectory with the rolling-median dashes
// and the best-ever line, every sample carrying a hover tooltip.
func renderNsChart(b *strings.Builder, s series) {
	lo, hi := s.best, s.points[0].ns
	for i, p := range s.points {
		if p.ns > hi {
			hi = p.ns
		}
		if r := s.roll[i]; r > hi {
			hi = r
		}
	}
	// Breathing room so flat series do not sit on the frame.
	span := hi - lo
	if span == 0 {
		span = hi * 0.1
		if span == 0 {
			span = 1
		}
	}
	lo -= span * 0.08
	hi += span * 0.08

	n := len(s.points)
	xs := make([]float64, n)
	ys := make([]float64, n)
	rys := make([]float64, n)
	for i, p := range s.points {
		xs[i] = xAt(i, n, chartW)
		ys[i] = yScale(p.ns, lo, hi)
		rys[i] = yScale(s.roll[i], lo, hi)
	}
	fmt.Fprintf(b, `<svg width="%.0f" height="%.0f" role="img" aria-label="%s ns/op trend">`+"\n",
		chartW, chartH, html.EscapeString(displayName(s.key)))
	bestY := yScale(s.best, lo, hi)
	fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#117733" stroke-width="1"><title>best-ever %s</title></line>`+"\n",
		padX, bestY, chartW-padX, bestY, fmtNs(s.best))
	fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="#ee7733" stroke-width="1.2" stroke-dasharray="4 3"><title>rolling median</title></polyline>`+"\n",
		polyline(xs, rys))
	fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="#3366cc" stroke-width="1.6"/>`+"\n", polyline(xs, ys))
	for i, p := range s.points {
		fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="#3366cc"><title>%s: %s</title></circle>`+"\n",
			xs[i], ys[i], html.EscapeString(p.label), fmtNs(p.ns))
	}
	b.WriteString("</svg>\n")
}

// renderAllocsChart draws the allocs/op companion panel; absent samples
// (artifacts without -benchmem data) break the line rather than faking a
// zero.
func renderAllocsChart(b *strings.Builder, s series) {
	lo, hi := 0.0, 1.0
	any := false
	for _, p := range s.points {
		if p.allocs < 0 {
			continue
		}
		if !any || p.allocs > hi {
			hi = p.allocs
		}
		any = true
	}
	fmt.Fprintf(b, `<svg width="%.0f" height="%.0f" role="img" aria-label="%s allocs/op trend">`+"\n",
		allocsW, chartH, html.EscapeString(displayName(s.key)))
	if !any {
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" class="axis" text-anchor="middle" fill="#99a">no allocs data</text>`+"\n",
			allocsW/2, chartH/2)
		b.WriteString("</svg>\n")
		return
	}
	hi *= 1.1
	if hi == 0 {
		hi = 1
	}
	n := len(s.points)
	var run []string
	flush := func() {
		if len(run) > 1 {
			fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="#778" stroke-width="1.4"/>`+"\n",
				strings.Join(run, " "))
		}
		run = nil
	}
	for i, p := range s.points {
		if p.allocs < 0 {
			flush()
			continue
		}
		x, y := xAt(i, n, allocsW), yScale(p.allocs, lo, hi)
		run = append(run, fmt.Sprintf("%.1f,%.1f", x, y))
		fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="2" fill="#778"><title>%s: %s allocs/op</title></circle>`+"\n",
			x, y, html.EscapeString(p.label), fmtAllocs(p.allocs))
	}
	flush()
	b.WriteString("</svg>\n")
}
