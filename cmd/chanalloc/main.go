// Command chanalloc is the command-line interface to the multi-radio
// channel allocation library.
//
// Modes:
//
//	chanalloc -mode allocate -users 7 -channels 6 -radios 4 -rate tdma:54
//	    Run the paper's Algorithm 1 and report the equilibrium.
//
//	chanalloc -mode verify -users 4 -channels 5 -radios 4 -in matrix.txt
//	    Audit an explicit strategy matrix against Lemmas 1-4, Theorem 1
//	    and the exact best-response oracle. The matrix file holds one row
//	    of whitespace-separated radio counts per user ('#' comments
//	    allowed); use '-' to read stdin.
//
//	chanalloc -mode dynamics -users 8 -channels 6 -radios 3 -process br
//	    Start from a random allocation and run best-response ("br") or
//	    radio-greedy ("greedy") dynamics to convergence.
//
//	chanalloc -mode distributed -users 6 -channels 5 -radios 3 -policy br
//	    Run the distributed token-ring protocol in-process and verify the
//	    resulting equilibrium.
//
//	chanalloc -mode scenario -scenario fig4
//	chanalloc -mode scenario -scenario random:8,6,3 -rate harmonic:1:0.5
//	chanalloc -mode scenario -scenario list
//	    Load a workload from the scenario registry and audit it (pinned
//	    allocations are audited as-is; generated scenarios run the greedy
//	    allocation first). "-scenario list" prints every registered family
//	    with its usage grammar and description — the listing comes from
//	    the registry itself, so it stays current as families are added.
//	    The registry is open: library users can add families with
//	    chanalloc.RegisterScenario and resolve them here by name.
//
// Rate functions (-rate): tdma:R0 | harmonic:R0:alpha | geometric:R0:beta |
// csma-practical | csma-optimal (802.11b parameters) |
// csma-practical:1mbps | csma-optimal:1mbps (Bianchi's 1 Mbit/s set).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/multiradio/chanalloc"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "chanalloc:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	if cfg.mode == "scenario" {
		return scenarioMode(out, cfg)
	}
	// The game bounds every channel load by |N|·k, so expensive rates (the
	// memoised CSMA fixed points) are frozen into a lock-free table before
	// the hot paths: identical values, no per-call locking. Huge dimensions
	// skip the freeze — eagerly sampling millions of rate values would cost
	// more than it saves (NewGame's own view applies the same cap).
	if maxK := cfg.users * cfg.radios; maxK <= 1<<21 {
		if frozen, err := chanalloc.FreezeRate(cfg.rate, maxK); err == nil {
			cfg.rate = frozen
		}
	}
	g, err := chanalloc.NewGame(cfg.users, cfg.channels, cfg.radios, cfg.rate)
	if err != nil {
		return err
	}
	switch cfg.mode {
	case "allocate":
		return allocate(out, g, cfg)
	case "verify":
		return verify(out, g, cfg)
	case "dynamics":
		return dynamicsMode(out, g, cfg)
	case "distributed":
		return distributed(out, g, cfg)
	default:
		return fmt.Errorf("unknown mode %q (want allocate, verify, dynamics, distributed or scenario)", cfg.mode)
	}
}

// scenarioMode resolves a workload from the scenario registry and audits
// it: pinned allocations as-is, generated scenarios after a greedy
// allocation run.
func scenarioMode(out io.Writer, cfg *config) error {
	if cfg.scenario == "list" {
		fmt.Fprintln(out, "Registered scenario families:")
		for _, f := range chanalloc.ScenarioFamilies() {
			fmt.Fprintf(out, "  %-34s %s\n", f.Usage, f.Description)
		}
		return nil
	}
	if cfg.scenario == "" {
		return fmt.Errorf("-mode scenario needs -scenario <name> (or '-scenario list'); registered: %s",
			strings.Join(familyUsages(), ", "))
	}
	s, err := chanalloc.ScenarioByName(cfg.scenario, cfg.rate)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Scenario %s: %s\n", s.Name, s.Description)

	if s.Hetero != nil {
		a := s.Alloc
		if a == nil {
			if a, err = chanalloc.HeteroAlgorithm1(s.Hetero, cfg.tie, cfg.seed); err != nil {
				return err
			}
		}
		fmt.Fprintln(out, "\nAllocation:")
		fmt.Fprint(out, chanalloc.OccupancyDiagram(a))
		fmt.Fprintln(out)
		ne, err := s.Hetero.IsNashEquilibrium(a)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nBest-response oracle: NE=%v\n", ne)
		fmt.Fprintf(out, "Load-balanced (δ<=1): %v\n", chanalloc.LoadBalanced(a))
		fmt.Fprintln(out, "Per-user utilities:")
		for i, u := range s.Hetero.Utilities(a) {
			fmt.Fprintf(out, "  u%d (k=%d): %.4f\n", i+1, s.Hetero.Budget(i), u)
		}
		fmt.Fprintf(out, "Welfare: %.4f\n", s.Hetero.Welfare(a))
		return nil
	}

	a := s.Alloc
	if a == nil {
		opts := []chanalloc.Algorithm1Option{
			chanalloc.WithTieBreak(cfg.tie), chanalloc.WithSeed(cfg.seed),
		}
		if a, err = chanalloc.Algorithm1(s.Game, opts...); err != nil {
			return err
		}
	}
	return report(out, s.Game, a)
}

func allocate(out io.Writer, g *chanalloc.Game, cfg *config) error {
	opts := []chanalloc.Algorithm1Option{
		chanalloc.WithTieBreak(cfg.tie),
		chanalloc.WithSeed(cfg.seed),
	}
	if cfg.literal {
		opts = append(opts, chanalloc.WithLiteralRule())
	}
	a, err := chanalloc.Algorithm1(g, opts...)
	if err != nil {
		return err
	}
	return report(out, g, a)
}

func verify(out io.Writer, g *chanalloc.Game, cfg *config) error {
	matrix, err := readMatrix(cfg.in)
	if err != nil {
		return err
	}
	a, err := chanalloc.AllocFromMatrix(matrix)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "Lemma audit:")
	violations := chanalloc.CheckAllLemmas(g, a)
	if len(violations) == 0 {
		fmt.Fprintln(out, "  no lemma violations")
	}
	for _, v := range violations {
		fmt.Fprintf(out, "  violated: %s\n", v)
	}
	return report(out, g, a)
}

func dynamicsMode(out io.Writer, g *chanalloc.Game, cfg *config) error {
	start := chanalloc.RandomAlloc(g, cfg.seed)
	fmt.Fprintln(out, "Random start:")
	fmt.Fprintln(out, start.String())

	var (
		res chanalloc.DynamicsResult
		err error
	)
	opts := []chanalloc.DynamicsOption{chanalloc.WithDynamicsSeed(cfg.seed)}
	switch cfg.process {
	case "br":
		res, err = chanalloc.RunBestResponse(g, start, opts...)
	case "greedy":
		res, err = chanalloc.RunRadioGreedy(g, start, opts...)
	default:
		return fmt.Errorf("unknown process %q (want br or greedy)", cfg.process)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nConverged: %v in %d rounds, %d moves\n", res.Converged, res.Rounds, res.Moves)
	fmt.Fprintf(out, "Potential: %.6f -> %.6f\n",
		res.PotentialTrace[0], res.PotentialTrace[len(res.PotentialTrace)-1])
	return report(out, g, res.Final)
}

func distributed(out io.Writer, g *chanalloc.Game, cfg *config) error {
	policies := chanalloc.UniformPolicies(g.Users(), func(int) chanalloc.Policy {
		if cfg.policy == "greedy" {
			return &chanalloc.GreedyPolicy{Tie: cfg.tie, Seed: cfg.seed}
		}
		return &chanalloc.BestResponsePolicy{Rate: g.Rate()}
	})
	res, err := chanalloc.RunDistributed(g, policies)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Protocol: converged=%v rounds=%d moves=%d messages=%d\n",
		res.Stats.Converged, res.Stats.Rounds, res.Stats.Moves, res.Stats.Messages)
	return report(out, g, res.Alloc)
}

// report prints the standard allocation summary: diagram, matrix,
// utilities, NE verdicts and welfare.
func report(out io.Writer, g *chanalloc.Game, a *chanalloc.Alloc) error {
	fmt.Fprintln(out, "\nAllocation:")
	fmt.Fprint(out, chanalloc.OccupancyDiagram(a))
	fmt.Fprintln(out)
	fmt.Fprintln(out, a.String())

	thm, v := chanalloc.TheoremNE(g, a)
	fmt.Fprintf(out, "\nTheorem 1 verdict: NE=%v", thm)
	if v != nil {
		fmt.Fprintf(out, " (%s)", v)
	}
	fmt.Fprintln(out)
	oracle, err := g.IsNashEquilibrium(a)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Best-response oracle: NE=%v\n", oracle)

	fmt.Fprintln(out, "Per-user utilities:")
	for i, u := range g.Utilities(a) {
		fmt.Fprintf(out, "  u%d: %.4f\n", i+1, u)
	}
	welfare := g.Welfare(a)
	opt, _ := chanalloc.OptimalWelfareAllPlaced(g)
	fmt.Fprintf(out, "Welfare: %.4f (all-placed optimum %.4f", welfare, opt)
	if opt > 0 {
		fmt.Fprintf(out, ", ratio %.4f", welfare/opt)
	}
	fmt.Fprintln(out, ")")
	return nil
}

type config struct {
	mode                    string
	users, channels, radios int
	rate                    chanalloc.RateFunc
	tie                     chanalloc.TieBreak
	seed                    uint64
	literal                 bool
	in                      string
	process                 string
	policy                  string
	scenario                string
}

func parseFlags(args []string) (*config, error) {
	fs := flag.NewFlagSet("chanalloc", flag.ContinueOnError)
	mode := fs.String("mode", "allocate", "allocate | verify | dynamics | distributed | scenario")
	users := fs.Int("users", 7, "number of users |N|")
	channels := fs.Int("channels", 6, "number of channels |C|")
	radios := fs.Int("radios", 4, "radios per user k (k <= |C|)")
	rateSpec := fs.String("rate", "tdma:1", "rate function specification")
	tieSpec := fs.String("tie", "first", "Algorithm 1 tie-breaking: first | random | last")
	seed := fs.Uint64("seed", 0, "RNG seed for random tie-breaking / starts")
	literal := fs.Bool("literal", false, "use the paper-literal placement rule (see EXPERIMENTS.md E10)")
	in := fs.String("in", "-", "matrix input for -mode verify ('-' = stdin)")
	process := fs.String("process", "br", "dynamics process: br | greedy")
	policy := fs.String("policy", "br", "distributed device policy: br | greedy")
	scenario := fs.String("scenario", "",
		"scenario for -mode scenario: "+strings.Join(familyUsages(), " | ")+
			", or 'list' to print every family with its description")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	rate, err := ParseRate(*rateSpec)
	if err != nil {
		return nil, err
	}
	tie, err := parseTie(*tieSpec)
	if err != nil {
		return nil, err
	}
	return &config{
		mode:     *mode,
		users:    *users,
		channels: *channels,
		radios:   *radios,
		rate:     rate,
		tie:      tie,
		seed:     *seed,
		literal:  *literal,
		in:       *in,
		process:  *process,
		policy:   *policy,
		scenario: *scenario,
	}, nil
}

func parseTie(s string) (chanalloc.TieBreak, error) {
	switch s {
	case "first":
		return chanalloc.TieFirst, nil
	case "random":
		return chanalloc.TieRandom, nil
	case "last":
		return chanalloc.TieLast, nil
	default:
		return 0, fmt.Errorf("unknown tie break %q (want first, random or last)", s)
	}
}

// familyUsages lists every registered scenario family's usage grammar —
// each entry is a resolvable -scenario value (with parameters filled in).
func familyUsages() []string {
	fams := chanalloc.ScenarioFamilies()
	out := make([]string, len(fams))
	for i, f := range fams {
		out[i] = f.Usage
	}
	return out
}

// ParseRate parses a rate-function specification; see the package comment
// for the grammar. The implementation lives in the chanalloc facade so
// every tool (chanalloc, allocd) accepts the same specs.
func ParseRate(spec string) (chanalloc.RateFunc, error) {
	return chanalloc.ParseRate(spec)
}

// readMatrix parses a whitespace-separated integer grid; '-' means stdin.
func readMatrix(path string) ([][]int, error) {
	var r io.Reader
	if path == "-" || path == "" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("opening matrix: %w", err)
		}
		defer f.Close()
		r = f
	}
	var matrix [][]int
	scanner := bufio.NewScanner(r)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		row := make([]int, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("matrix value %q: %w", f, err)
			}
			row = append(row, v)
		}
		matrix = append(matrix, row)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("reading matrix: %w", err)
	}
	if len(matrix) == 0 {
		return nil, fmt.Errorf("empty matrix input")
	}
	return matrix, nil
}
