package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/multiradio/chanalloc"
)

func TestRunAllocate(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-mode", "allocate", "-users", "7", "-channels", "6", "-radios", "4"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Theorem 1 verdict: NE=true",
		"Best-response oracle: NE=true",
		"ratio 1.0000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAllocateLiteral(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-mode", "allocate", "-literal", "-tie", "random", "-seed", "3",
		"-users", "2", "-channels", "5", "-radios", "4"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	// Output should render regardless of whether the literal run is a NE.
	if !strings.Contains(b.String(), "Best-response oracle") {
		t.Error("missing oracle verdict")
	}
}

func TestRunVerifyFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "matrix.txt")
	matrix := "# figure 1 example\n1 1 1 1 0\n1 0 1 0 1\n1 2 0 1 0\n1 0 0 1 0\n"
	if err := os.WriteFile(path, []byte(matrix), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	err := run([]string{"-mode", "verify", "-users", "4", "-channels", "5", "-radios", "4",
		"-in", path}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"lemma1", "lemma2", "lemma3", "NE=false"} {
		if !strings.Contains(out, want) {
			t.Errorf("verify output missing %q", want)
		}
	}
}

func TestRunDynamics(t *testing.T) {
	for _, process := range []string{"br", "greedy"} {
		var b strings.Builder
		err := run([]string{"-mode", "dynamics", "-process", process,
			"-users", "5", "-channels", "4", "-radios", "3", "-seed", "7"}, &b)
		if err != nil {
			t.Fatalf("%s: %v", process, err)
		}
		if !strings.Contains(b.String(), "Converged: true") {
			t.Errorf("%s did not converge:\n%s", process, b.String())
		}
	}
}

func TestRunDistributed(t *testing.T) {
	for _, policy := range []string{"br", "greedy"} {
		var b strings.Builder
		err := run([]string{"-mode", "distributed", "-policy", policy,
			"-users", "4", "-channels", "4", "-radios", "2"}, &b)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if !strings.Contains(b.String(), "converged=true") {
			t.Errorf("%s ring did not converge:\n%s", policy, b.String())
		}
	}
}

func TestRunScenario(t *testing.T) {
	// Pinned paper scenario: audited as-is (fig1 is deliberately not a NE).
	var b strings.Builder
	if err := run([]string{"-mode", "scenario", "-scenario", "fig1"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "NE=false") {
		t.Errorf("fig1 audit should report non-NE:\n%s", b.String())
	}

	// Generated scenario: the greedy allocation runs first.
	b.Reset()
	if err := run([]string{"-mode", "scenario", "-scenario", "cognitive:4,6,2"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Best-response oracle: NE=true") {
		t.Errorf("cognitive allocation should be a NE:\n%s", b.String())
	}

	// Heterogeneous-budget scenario.
	b.Reset()
	if err := run([]string{"-mode", "scenario", "-scenario", "hetero:5,3,2,1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Load-balanced") || !strings.Contains(out, "u1 (k=3)") {
		t.Errorf("hetero audit incomplete:\n%s", out)
	}

	// The registry-driven listing names every family with usage text.
	b.Reset()
	if err := run([]string{"-mode", "scenario", "-scenario", "list"}, &b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig4", "random:N,C,k[,seed]", "hetero:C,k1,k2,...", "mesh", "cognitive"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("scenario listing missing %q:\n%s", want, b.String())
		}
	}

	// Errors: missing and unknown scenario names.
	if err := run([]string{"-mode", "scenario"}, &b); err == nil {
		t.Error("missing -scenario should error")
	}
	if err := run([]string{"-mode", "scenario", "-scenario", "nope"}, &b); err == nil {
		t.Error("unknown scenario should error")
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-mode", "nope"}, &b); err == nil {
		t.Error("unknown mode should error")
	}
	if err := run([]string{"-rate", "nope:1"}, &b); err == nil {
		t.Error("unknown rate should error")
	}
	if err := run([]string{"-tie", "nope"}, &b); err == nil {
		t.Error("unknown tie should error")
	}
	if err := run([]string{"-users", "0"}, &b); err == nil {
		t.Error("invalid game should error")
	}
	if err := run([]string{"-mode", "dynamics", "-process", "nope"}, &b); err == nil {
		t.Error("unknown process should error")
	}
}

func TestParseRate(t *testing.T) {
	good := map[string]string{
		"tdma:5":             "tdma(5)",
		"harmonic:2:0.5":     "harmonic(2,α=0.5)",
		"geometric:2:0.9":    "geometric(2,β=0.9)",
		"csma-practical":     "monotone(csma-practical)",
		"csma-optimal":       "monotone(csma-optimal)",
		"csma-optimal:1mbps": "monotone(csma-optimal)",
	}
	for spec, wantName := range good {
		r, err := ParseRate(spec)
		if err != nil {
			t.Errorf("%s: %v", spec, err)
			continue
		}
		if r.Name() != wantName {
			t.Errorf("%s: name %q, want %q", spec, r.Name(), wantName)
		}
		if err := chanalloc.ValidateRate(r, 16); err != nil {
			t.Errorf("%s violates contract: %v", spec, err)
		}
	}
	bad := []string{
		"", "tdma", "tdma:x", "tdma:-1", "harmonic:1", "harmonic:1:-1",
		"geometric:1:0", "geometric:1:2", "csma-practical:foo",
		"csma-practical:1mbps:extra", "wat:1",
	}
	for _, spec := range bad {
		if _, err := ParseRate(spec); err == nil {
			t.Errorf("%q should not parse", spec)
		}
	}
}

func TestReadMatrixErrors(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(empty, []byte("# only comments\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readMatrix(empty); err == nil {
		t.Error("empty matrix should error")
	}
	badValues := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(badValues, []byte("1 x 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readMatrix(badValues); err == nil {
		t.Error("non-integer values should error")
	}
	if _, err := readMatrix(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file should error")
	}
}
