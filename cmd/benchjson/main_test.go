package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// sample mimics a real `go test -bench` stream: headers, sub-benchmarks
// with GOMAXPROCS suffixes, memory metrics, and trailers.
const sample = `goos: linux
goarch: amd64
pkg: github.com/multiradio/chanalloc
cpu: Example CPU @ 2.00GHz
BenchmarkFigure1LemmaAudit-16         	  361010	      3246 ns/op
BenchmarkEnumerateNEParallel/workers1-16  	      18	  63850033 ns/op	 1024 B/op	      12 allocs/op
BenchmarkEnumerateNEParallel/workers16-16 	     100	  10485934 ns/op
BenchmarkNoSuffix 	 5	 200 ns/op
PASS
ok  	github.com/multiradio/chanalloc	12.279s
--- FAIL: TestSomething
FAIL
`

func TestRunParsesBenchStream(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-date", "2026-07-28"}, strings.NewReader(sample), &b); err != nil {
		t.Fatal(err)
	}
	var report Report
	if err := json.Unmarshal([]byte(b.String()), &report); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, b.String())
	}
	if report.Date != "2026-07-28" {
		t.Fatalf("date %q, want 2026-07-28", report.Date)
	}
	if report.GoOS == "" || report.GoArch == "" {
		t.Fatal("platform fields missing")
	}
	if len(report.Entries) != 4 {
		t.Fatalf("%d entries, want 4: %+v", len(report.Entries), report.Entries)
	}
	first := report.Entries[0]
	if first.Name != "Figure1LemmaAudit" || first.Procs != 16 ||
		first.Iters != 361010 || first.NsPerOp != 3246 {
		t.Fatalf("first entry wrong: %+v", first)
	}
	workers1 := report.Entries[1]
	if workers1.Name != "EnumerateNEParallel/workers1" || workers1.Procs != 16 {
		t.Fatalf("sub-benchmark name/procs wrong: %+v", workers1)
	}
	if workers1.Metrics["B/op"] != 1024 || workers1.Metrics["allocs/op"] != 12 {
		t.Fatalf("memory metrics wrong: %+v", workers1.Metrics)
	}
	if report.Entries[2].Name != "EnumerateNEParallel/workers16" {
		t.Fatalf("third entry wrong: %+v", report.Entries[2])
	}
	noSuffix := report.Entries[3]
	if noSuffix.Name != "NoSuffix" || noSuffix.Procs != 1 || noSuffix.NsPerOp != 200 {
		t.Fatalf("suffix-less entry wrong: %+v", noSuffix)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"",
		"goos: linux",
		"PASS",
		"ok  	github.com/multiradio/chanalloc	12.279s",
		"--- FAIL: TestSomething",
		"BenchmarkBroken-8 notanint 123 ns/op",
		"BenchmarkNoUnit-8 	 5",
		"BenchmarkNoNs-8 	 5	 12 B/op", // pairs but no ns/op
		"BenchmarkOdd-8 	 5	 12",       // value without unit
	} {
		if entry, ok := parseLine(line); ok {
			t.Errorf("%q parsed as %+v, want rejection", line, entry)
		}
	}
}

func TestRunEmptyInputStillValidJSON(t *testing.T) {
	var b strings.Builder
	if err := run(nil, strings.NewReader(""), &b); err != nil {
		t.Fatal(err)
	}
	var report Report
	if err := json.Unmarshal([]byte(b.String()), &report); err != nil {
		t.Fatal(err)
	}
	if report.Entries == nil || len(report.Entries) != 0 {
		t.Fatalf("want empty (non-null) entries, got %+v", report.Entries)
	}
	if report.Date != "" {
		t.Fatalf("unexpected date %q", report.Date)
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Fatal("bad flag should error")
	}
}
