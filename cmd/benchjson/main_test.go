package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// sample mimics a real `go test -bench` stream at GOMAXPROCS=16: headers,
// sub-benchmarks, memory metrics, trailers — and, crucially, every
// benchmark line carrying the -16 suffix, including a subtest whose own
// name ends in digits.
const sample = `goos: linux
goarch: amd64
pkg: github.com/multiradio/chanalloc
cpu: Example CPU @ 2.00GHz
BenchmarkFigure1LemmaAudit-16         	  361010	      3246 ns/op
BenchmarkEnumerateNEParallel/workers1-16  	      18	  63850033 ns/op	 1024 B/op	      12 allocs/op
BenchmarkEnumerateNEParallel/workers16-16 	     100	  10485934 ns/op
BenchmarkDist/n-2-16 	 5	 200 ns/op
PASS
ok  	github.com/multiradio/chanalloc	12.279s
--- FAIL: TestSomething
FAIL
`

func TestRunParsesBenchStream(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-date", "2026-07-28"}, strings.NewReader(sample), &b); err != nil {
		t.Fatal(err)
	}
	var report Report
	if err := json.Unmarshal([]byte(b.String()), &report); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, b.String())
	}
	if report.Date != "2026-07-28" {
		t.Fatalf("date %q, want 2026-07-28", report.Date)
	}
	if report.GoOS == "" || report.GoArch == "" {
		t.Fatal("platform fields missing")
	}
	if len(report.Entries) != 4 {
		t.Fatalf("%d entries, want 4: %+v", len(report.Entries), report.Entries)
	}
	first := report.Entries[0]
	if first.Name != "Figure1LemmaAudit" || first.Procs != 16 ||
		first.Iters != 361010 || first.NsPerOp != 3246 {
		t.Fatalf("first entry wrong: %+v", first)
	}
	workers1 := report.Entries[1]
	if workers1.Name != "EnumerateNEParallel/workers1" || workers1.Procs != 16 {
		t.Fatalf("sub-benchmark name/procs wrong: %+v", workers1)
	}
	if workers1.Metrics["B/op"] != 1024 || workers1.Metrics["allocs/op"] != 12 {
		t.Fatalf("memory metrics wrong: %+v", workers1.Metrics)
	}
	if workers1.BytesPerOp == nil || *workers1.BytesPerOp != 1024 ||
		workers1.AllocsPerOp == nil || *workers1.AllocsPerOp != 12 {
		t.Fatalf("promoted memory fields wrong: %+v", workers1)
	}
	// Entries without memory reporting must omit the pointers — a recorded
	// zero means "measured 0 allocs/op", not "absent".
	if first.BytesPerOp != nil || first.AllocsPerOp != nil {
		t.Fatalf("memory fields fabricated for %+v", first)
	}
	if report.Entries[2].Name != "EnumerateNEParallel/workers16" {
		t.Fatalf("third entry wrong: %+v", report.Entries[2])
	}
	// The GOMAXPROCS marker is stripped even when the subtest's own name
	// ends in digits: only the final -16 goes, Dist/n-2 stays.
	digits := report.Entries[3]
	if digits.Name != "Dist/n-2" || digits.Procs != 16 || digits.NsPerOp != 200 {
		t.Fatalf("digit-suffixed subtest wrong: %+v", digits)
	}
}

// sampleNoProcs is the same suite at GOMAXPROCS=1: no line carries a
// marker, so a subtest name ending in -<digits> must survive intact — the
// regression the per-line parser used to misparse into name "Dist/n" with
// procs 2.
const sampleNoProcs = `goos: linux
goarch: amd64
BenchmarkFigure1LemmaAudit 	  361010	      3246 ns/op
BenchmarkDist/n-2 	 5	 200 ns/op
PASS
`

func TestRunKeepsDigitNamesWithoutProcsSuffix(t *testing.T) {
	var b strings.Builder
	if err := run(nil, strings.NewReader(sampleNoProcs), &b); err != nil {
		t.Fatal(err)
	}
	var report Report
	if err := json.Unmarshal([]byte(b.String()), &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Entries) != 2 {
		t.Fatalf("%d entries, want 2: %+v", len(report.Entries), report.Entries)
	}
	if e := report.Entries[0]; e.Name != "Figure1LemmaAudit" || e.Procs != 1 {
		t.Fatalf("plain entry wrong: %+v", e)
	}
	if e := report.Entries[1]; e.Name != "Dist/n-2" || e.Procs != 1 || e.NsPerOp != 200 {
		t.Fatalf("digit-suffixed name must survive a GOMAXPROCS=1 run: %+v", e)
	}
}

func TestResolveProcsSuffixes(t *testing.T) {
	for _, tc := range []struct {
		desc      string
		names     []string
		wantNames []string
		wantProcs []int
	}{
		{
			"all suffixed: strip",
			[]string{"A-8", "B/sub-8", "Dist/n-2-8"},
			[]string{"A", "B/sub", "Dist/n-2"},
			[]int{8, 8, 8},
		},
		{
			"one unsuffixed line without a twin: keep everything",
			[]string{"A-8", "B"},
			[]string{"A-8", "B"},
			[]int{1, 1},
		},
		{
			"cpu-list runs strip per line",
			[]string{"A-2", "A-4"},
			[]string{"A", "A"},
			[]int{2, 4},
		},
		{
			"-cpu 1,4: the bare twin proves A-4's suffix is a marker",
			[]string{"A", "A-4", "Dist/n-2"},
			[]string{"A", "A", "Dist/n-2"},
			[]int{1, 4, 1},
		},
		{
			"empty stream",
			nil, nil, nil,
		},
	} {
		entries := make([]Entry, len(tc.names))
		for i, n := range tc.names {
			entries[i] = Entry{Name: n, Procs: 1}
		}
		resolveProcsSuffixes(entries, 0)
		for i := range entries {
			if entries[i].Name != tc.wantNames[i] || entries[i].Procs != tc.wantProcs[i] {
				t.Errorf("%s: entry %d = %+v, want name %q procs %d",
					tc.desc, i, entries[i], tc.wantNames[i], tc.wantProcs[i])
			}
		}
	}
}

// TestProcsHintResolvesAmbiguousStream covers the shape the inference
// cannot decide: a GOMAXPROCS=1 stream where every surviving name ends in
// digits (e.g. a -bench filter keeping only Dist/n-2 and Dist/n-4). The
// -procs hint disambiguates in both directions.
func TestProcsHintResolvesAmbiguousStream(t *testing.T) {
	ambiguous := "BenchmarkDist/n-2 \t 5\t 200 ns/op\nBenchmarkDist/n-4 \t 5\t 300 ns/op\n"
	parse := func(args ...string) []Entry {
		t.Helper()
		var b strings.Builder
		if err := run(args, strings.NewReader(ambiguous), &b); err != nil {
			t.Fatal(err)
		}
		var report Report
		if err := json.Unmarshal([]byte(b.String()), &report); err != nil {
			t.Fatal(err)
		}
		return report.Entries
	}
	// -procs 1: a suffix-less run, names are literal.
	for i, e := range parse("-procs", "1") {
		if want := []string{"Dist/n-2", "Dist/n-4"}[i]; e.Name != want || e.Procs != 1 {
			t.Fatalf("-procs 1 entry %d = %+v, want %q procs 1", i, e, want)
		}
	}
	// -procs 4: only the -4 suffix is a marker.
	got := parse("-procs", "4")
	if got[0].Name != "Dist/n-2" || got[0].Procs != 1 ||
		got[1].Name != "Dist/n" || got[1].Procs != 4 {
		t.Fatalf("-procs 4 entries = %+v", got)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"",
		"goos: linux",
		"PASS",
		"ok  	github.com/multiradio/chanalloc	12.279s",
		"--- FAIL: TestSomething",
		"BenchmarkBroken-8 notanint 123 ns/op",
		"BenchmarkNoUnit-8 	 5",
		"BenchmarkNoNs-8 	 5	 12 B/op", // pairs but no ns/op
		"BenchmarkOdd-8 	 5	 12",       // value without unit
	} {
		if entry, ok := parseLine(line); ok {
			t.Errorf("%q parsed as %+v, want rejection", line, entry)
		}
	}
}

func TestRunEmptyInputStillValidJSON(t *testing.T) {
	var b strings.Builder
	if err := run(nil, strings.NewReader(""), &b); err != nil {
		t.Fatal(err)
	}
	var report Report
	if err := json.Unmarshal([]byte(b.String()), &report); err != nil {
		t.Fatal(err)
	}
	if report.Entries == nil || len(report.Entries) != 0 {
		t.Fatalf("want empty (non-null) entries, got %+v", report.Entries)
	}
	if report.Date != "" {
		t.Fatalf("unexpected date %q", report.Date)
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Fatal("bad flag should error")
	}
}

func TestParseLineRecordsZeroAllocs(t *testing.T) {
	entry, ok := parseLine("BenchmarkBestResponseDP/C6_k4-16 	 7836070	 304.6 ns/op	       0 B/op	       0 allocs/op")
	if !ok {
		t.Fatal("line should parse")
	}
	if entry.AllocsPerOp == nil || *entry.AllocsPerOp != 0 {
		t.Fatalf("zero allocs/op must be recorded explicitly: %+v", entry)
	}
	if entry.BytesPerOp == nil || *entry.BytesPerOp != 0 {
		t.Fatalf("zero B/op must be recorded explicitly: %+v", entry)
	}
}
