// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report, so the benchmark trajectory can be tracked
// PR-over-PR as a build artifact (the CI workflow writes BENCH_<date>.json
// on every run):
//
//	go test -run xxx -bench=. -benchtime=1x ./... | benchjson -date 2026-07-28 > BENCH_2026-07-28.json
//
// Each benchmark line
//
//	BenchmarkEnumerateNEParallel/workers8-16  	  42	  123456 ns/op	  9 B/op	 1 allocs/op
//
// becomes one entry carrying the op name ("EnumerateNEParallel/workers8"),
// the GOMAXPROCS/worker suffix (16), the iteration count, ns/op, and any
// further unit pairs (B/op, allocs/op, ...) as a metrics map. Non-benchmark
// lines (headers, PASS/ok trailers, failures) are ignored, so the raw
// `go test` stream pipes straight in.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Entry is one parsed benchmark result.
type Entry struct {
	// Name is the benchmark name without the "Benchmark" prefix and
	// without the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the -P suffix: the GOMAXPROCS (worker parallelism) the
	// benchmark ran with. 1 when the run carries no suffixes (GOMAXPROCS=1
	// runs suffix no line, so a name's own trailing digits are kept — see
	// resolveProcsSuffixes).
	Procs int `json:"procs"`
	// Iters is the measured iteration count.
	Iters int64 `json:"iters"`
	// NsPerOp is the headline ns/op figure.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are the -benchmem / b.ReportAllocs()
	// figures, promoted to first-class fields so cmd/benchdiff can track
	// allocation regressions alongside ns/op. Pointers distinguish a
	// measured zero (the allocation-free kernel's steady state) from a run
	// without memory reporting.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds every further "value unit" pair (MB/s, custom units),
	// plus B/op and allocs/op for backward compatibility with consumers of
	// the original schema.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full JSON document.
type Report struct {
	// Date stamps the run (the -date flag; CI passes the build date).
	Date string `json:"date,omitempty"`
	// GoOS/GoArch record the platform the numbers belong to.
	GoOS   string `json:"goos"`
	GoArch string `json:"goarch"`
	// Entries lists the parsed benchmarks in input order.
	Entries []Entry `json:"entries"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	date := fs.String("date", "", "date stamp for the report (e.g. 2026-07-28)")
	procs := fs.Int("procs", 0,
		"GOMAXPROCS the benchmarks ran with: strip exactly -<procs> name suffixes (1 strips none; 0 infers from the stream)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	report := Report{Date: *date, GoOS: runtime.GOOS, GoArch: runtime.GOARCH, Entries: []Entry{}}
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for scanner.Scan() {
		if entry, ok := parseLine(scanner.Text()); ok {
			report.Entries = append(report.Entries, entry)
		}
	}
	if err := scanner.Err(); err != nil {
		return fmt.Errorf("reading benchmark output: %w", err)
	}
	resolveProcsSuffixes(report.Entries, *procs)
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(&report)
}

// parseLine parses one `go test -bench` result line; ok is false for
// anything that is not a benchmark result (headers, trailers, noise).
func parseLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	// Minimum shape: name, iters, value, "ns/op".
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	entry := Entry{Name: strings.TrimPrefix(fields[0], "Benchmark"), Procs: 1}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	entry.Iters = iters
	// The rest is "value unit" pairs; ns/op is required, the others land
	// in Metrics.
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		value, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			entry.NsPerOp = value
			sawNs = true
			continue
		case "B/op":
			v := value
			entry.BytesPerOp = &v
		case "allocs/op":
			v := value
			entry.AllocsPerOp = &v
		}
		if entry.Metrics == nil {
			entry.Metrics = map[string]float64{}
		}
		entry.Metrics[fields[i+1]] = value
	}
	if !sawNs {
		return Entry{}, false
	}
	return entry, true
}

// procsSuffix splits a trailing "-<digits>" GOMAXPROCS marker off the last
// path segment of a benchmark name.
func procsSuffix(name string) (base string, procs int, ok bool) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || strings.Contains(name[i:], "/") {
		return name, 0, false
	}
	procs, err := strconv.Atoi(name[i+1:])
	if err != nil || procs <= 0 {
		return name, 0, false
	}
	return name[:i], procs, true
}

// resolveProcsSuffixes decides, for the whole stream at once, whether
// trailing "-<digits>" on benchmark names are GOMAXPROCS markers to strip.
// `go test` appends the marker to every benchmark when GOMAXPROCS > 1 (or a
// -cpu list entry > 1) and to none when GOMAXPROCS is 1 — so a subtest name
// that legitimately ends in digits (BenchmarkDist/n-2 under GOMAXPROCS=1)
// only looks like a marker line by line, never stream-wide. The rules:
//
//   - every entry suffixed (GOMAXPROCS > 1, or -cpu without 1): strip each
//     entry's own suffix;
//   - mixed stream (-cpu list containing 1): strip a suffix only when its
//     base name also appears unsuffixed in the stream — the cpu=1 twin that
//     proves the trailing digits are a marker, not part of the name;
//   - no suffixes at all: nothing to do.
//
// One shape stays genuinely ambiguous: a GOMAXPROCS=1 stream in which every
// surviving name happens to end in digits (a -bench filter can produce one)
// is byte-indistinguishable from a -cpu run of the base names. The
// knownProcs hint (the -procs flag) resolves it: > 1 strips exactly
// -<knownProcs> suffixes, 1 declares a suffix-less run and strips nothing.
func resolveProcsSuffixes(entries []Entry, knownProcs int) {
	if knownProcs == 1 {
		return // GOMAXPROCS=1 runs carry no markers; every name is literal
	}
	if knownProcs > 1 {
		for i := range entries {
			if base, procs, ok := procsSuffix(entries[i].Name); ok && procs == knownProcs {
				entries[i].Name, entries[i].Procs = base, procs
			}
		}
		return
	}
	allSuffixed := true
	bare := map[string]bool{}
	for i := range entries {
		if _, _, ok := procsSuffix(entries[i].Name); !ok {
			allSuffixed = false
			bare[entries[i].Name] = true
		}
	}
	for i := range entries {
		base, procs, ok := procsSuffix(entries[i].Name)
		if ok && (allSuffixed || bare[base]) {
			entries[i].Name, entries[i].Procs = base, procs
		}
	}
}
