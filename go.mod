module github.com/multiradio/chanalloc

go 1.24
