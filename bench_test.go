// Benchmarks regenerating every figure of the reproduced paper plus the
// core operations behind them. Run:
//
//	go test -bench=. -benchmem
//
// Figure mapping (see the "Figure mapping" section of EXPERIMENTS.md):
//
//	BenchmarkFigure1* — Figures 1-2: the worked example and its lemma audit
//	BenchmarkFigure3* — Figure 3: R(k_c) curves for TDMA / optimal / practical CSMA-CA
//	BenchmarkFigure4* — Figure 4: NE with exception user, Theorem 1 + oracle
//	BenchmarkFigure5* — Figure 5: NE without exception user
//
// The remaining benchmarks cover Algorithm 1, the best-response DP, the
// exact-arithmetic oracle, convergence dynamics, the distributed protocol
// and the MAC simulators — the machinery every experiment is built from.
// The Benchmark*Parallel* pairs compare the engine-sharded batch paths
// (EXPERIMENTS.md "Benchmarks") at workers=1 vs workers=NumCPU.
package chanalloc_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"runtime"
	"testing"

	"github.com/multiradio/chanalloc"
)

func benchGame(b *testing.B, users, channels, radios int, r chanalloc.RateFunc) *chanalloc.Game {
	b.Helper()
	g, err := chanalloc.NewGame(users, channels, radios, r)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkFigure1LemmaAudit regenerates the paper's Figure 1/2 walkthrough:
// build the example allocation and produce one witness per violated rule.
func BenchmarkFigure1LemmaAudit(b *testing.B) {
	b.ReportAllocs()
	s, err := chanalloc.ScenarioFigure1(chanalloc.TDMA(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vs := chanalloc.CheckAllLemmas(s.Game, s.Alloc); len(vs) == 0 {
			b.Fatal("figure 1 must violate lemmas")
		}
	}
}

// BenchmarkFigure1Render regenerates the Figure 2 strategy-matrix rendering.
func BenchmarkFigure1Render(b *testing.B) {
	b.ReportAllocs()
	s, err := chanalloc.ScenarioFigure1(chanalloc.TDMA(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Alloc.String() == "" {
			b.Fatal("empty rendering")
		}
	}
}

// BenchmarkFigure3Curves regenerates Figure 3: all three R(k_c) curves for
// k = 1..30 (TDMA constant, optimal CSMA/CA, practical CSMA/CA).
func BenchmarkFigure3Curves(b *testing.B) {
	b.ReportAllocs()
	p := chanalloc.Default80211b()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tdma := chanalloc.TDMA(p.DataRate)
		opt, err := chanalloc.OptimalCSMA(p)
		if err != nil {
			b.Fatal(err)
		}
		prac, err := chanalloc.PracticalCSMA(p)
		if err != nil {
			b.Fatal(err)
		}
		for k := 1; k <= 30; k++ {
			if tdma.Rate(k) < prac.Rate(k) {
				b.Fatal("practical CSMA above TDMA")
			}
			_ = opt.Rate(k)
		}
	}
}

// BenchmarkFigure4Verify regenerates Figure 4's claim: the exception-user
// allocation passes both the Theorem 1 checker and the exact oracle.
func BenchmarkFigure4Verify(b *testing.B) {
	b.ReportAllocs()
	s, err := chanalloc.ScenarioFigure4(chanalloc.TDMA(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := chanalloc.TheoremNE(s.Game, s.Alloc); !ok {
			b.Fatal("figure 4 should satisfy Theorem 1")
		}
		ne, err := s.Game.IsNashEquilibrium(s.Alloc)
		if err != nil || !ne {
			b.Fatalf("figure 4 oracle: ne=%v err=%v", ne, err)
		}
	}
}

// BenchmarkFigure5Verify regenerates Figure 5's claim (NE, no exception).
func BenchmarkFigure5Verify(b *testing.B) {
	b.ReportAllocs()
	s, err := chanalloc.ScenarioFigure5(chanalloc.TDMA(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := chanalloc.TheoremNE(s.Game, s.Alloc); !ok {
			b.Fatal("figure 5 should satisfy Theorem 1")
		}
		ne, err := s.Game.IsNashEquilibrium(s.Alloc)
		if err != nil || !ne {
			b.Fatalf("figure 5 oracle: ne=%v err=%v", ne, err)
		}
	}
}

// BenchmarkAlgorithm1 measures the centralised allocation across sizes
// (experiment E4's engine).
func BenchmarkAlgorithm1(b *testing.B) {
	b.ReportAllocs()
	sizes := []struct{ n, c, k int }{
		{7, 6, 4},
		{16, 12, 8},
		{64, 32, 16},
		{256, 64, 32},
	}
	for _, sz := range sizes {
		b.Run(fmt.Sprintf("N%d_C%d_k%d", sz.n, sz.c, sz.k), func(b *testing.B) {
			b.ReportAllocs()
			g := benchGame(b, sz.n, sz.c, sz.k, chanalloc.TDMA(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := chanalloc.Algorithm1(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBestResponseDP measures the exact best-response dynamic program
// in its steady-state form: one reused workspace, zero allocations per
// operation (the acceptance bar for the allocation-free kernel).
func BenchmarkBestResponseDP(b *testing.B) {
	b.ReportAllocs()
	sizes := []struct{ c, k int }{
		{6, 4},
		{16, 8},
		{64, 16},
	}
	for _, sz := range sizes {
		b.Run(fmt.Sprintf("C%d_k%d", sz.c, sz.k), func(b *testing.B) {
			b.ReportAllocs()
			ext := make([]int, sz.c)
			for c := range ext {
				ext[c] = (c*7)%5 + 1
			}
			r := chanalloc.TDMA(1)
			ws := chanalloc.NewWorkspace()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := chanalloc.BestResponseToLoadsInto(ws, r, ext, sz.k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBestResponseDPOneShot is the allocating convenience form, kept
// so the benchdiff trajectory shows the one-shot vs workspace gap.
func BenchmarkBestResponseDPOneShot(b *testing.B) {
	b.ReportAllocs()
	ext := make([]int, 16)
	for c := range ext {
		ext[c] = (c*7)%5 + 1
	}
	r := chanalloc.TDMA(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := chanalloc.BestResponseToLoads(r, ext, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTheoremNE measures the closed-form NE checker on a large NE.
func BenchmarkTheoremNE(b *testing.B) {
	b.ReportAllocs()
	g := benchGame(b, 64, 32, 16, chanalloc.TDMA(1))
	ne, err := chanalloc.Algorithm1(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, v := chanalloc.TheoremNE(g, ne); !ok {
			b.Fatalf("not NE: %v", v)
		}
	}
}

// BenchmarkExactOracle measures the full best-response NE oracle in its
// steady-state form (screen-then-prove over a reused workspace); the input
// is an equilibrium, so every run pays the worst case: a full screen plus
// the per-user DP proof.
func BenchmarkExactOracle(b *testing.B) {
	b.ReportAllocs()
	g := benchGame(b, 16, 12, 8, chanalloc.TDMA(1))
	ne, err := chanalloc.Algorithm1(g)
	if err != nil {
		b.Fatal(err)
	}
	ws := chanalloc.NewWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := g.IsNashEquilibriumWith(ws, ne)
		if err != nil || !ok {
			b.Fatalf("oracle: %v %v", ok, err)
		}
	}
}

// BenchmarkBianchiSolve measures the DCF fixed-point solver (Figure 3's
// inner loop).
func BenchmarkBianchiSolve(b *testing.B) {
	b.ReportAllocs()
	p := chanalloc.Default80211b()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chanalloc.SolveDCF(p, 1+(i%32)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCSMASimulator measures the slot-level MAC simulator (experiment
// E5's engine), in slots per second.
func BenchmarkCSMASimulator(b *testing.B) {
	b.ReportAllocs()
	p := chanalloc.Default80211b()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chanalloc.SimulateCSMA(p, 8, 10000, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBestResponseDynamics measures convergence from a random start
// (experiment E6's engine).
func BenchmarkBestResponseDynamics(b *testing.B) {
	b.ReportAllocs()
	g := benchGame(b, 16, 12, 6, chanalloc.TDMA(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := chanalloc.RandomAlloc(g, uint64(i))
		res, err := chanalloc.RunBestResponse(g, start)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatal("did not converge")
		}
	}
}

// BenchmarkDistributedProtocol measures a full token-ring run over
// in-process pipes (experiment E7's engine).
func BenchmarkDistributedProtocol(b *testing.B) {
	b.ReportAllocs()
	r := chanalloc.TDMA(1)
	g := benchGame(b, 8, 6, 3, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		policies := chanalloc.UniformPolicies(g.Users(), func(int) chanalloc.Policy {
			return &chanalloc.BestResponsePolicy{Rate: r}
		})
		res, err := chanalloc.RunDistributed(g, policies)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Stats.Converged {
			b.Fatal("did not converge")
		}
	}
}

// BenchmarkWelfareOptimum measures the all-placed welfare DP (experiment
// E9's engine).
func BenchmarkWelfareOptimum(b *testing.B) {
	b.ReportAllocs()
	g := benchGame(b, 16, 12, 8, chanalloc.HarmonicRate(1, 0.5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if opt, _ := chanalloc.OptimalWelfareAllPlaced(g); opt <= 0 {
			b.Fatal("degenerate optimum")
		}
	}
}

// BenchmarkHeteroAlgorithm1 measures the heterogeneous-budget allocation
// (experiment E11's engine).
func BenchmarkHeteroAlgorithm1(b *testing.B) {
	b.ReportAllocs()
	budgets := make([]int, 64)
	for i := range budgets {
		budgets[i] = 1 + i%16
	}
	g, err := chanalloc.NewHeteroGame(32, budgets, chanalloc.TDMA(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chanalloc.HeteroAlgorithm1(g, chanalloc.TieFirst, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBianchiRTSCTS measures the RTS/CTS fixed point used by the
// Figure 3 extension series.
func BenchmarkBianchiRTSCTS(b *testing.B) {
	b.ReportAllocs()
	p := chanalloc.Bianchi1Mbps().WithRTSCTS()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chanalloc.SolveDCF(p, 1+(i%32)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimultaneousDynamics measures simultaneous best response with
// inertia 0.5 (E6's slowest process).
func BenchmarkSimultaneousDynamics(b *testing.B) {
	b.ReportAllocs()
	g := benchGame(b, 8, 6, 3, chanalloc.TDMA(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := chanalloc.RandomAlloc(g, uint64(i))
		if _, err := chanalloc.RunSimultaneous(g, start, 0.5, chanalloc.WithDynamicsSeed(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnumerateNEParallel measures the exhaustive NE enumeration
// sharded over the engine, at one worker (the serial baseline cost plus
// pool overhead) and at NumCPU workers.
func BenchmarkEnumerateNEParallel(b *testing.B) {
	b.ReportAllocs()
	g := benchGame(b, 4, 4, 2, chanalloc.TDMA(1))
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				nes, err := chanalloc.EnumerateNEParallel(g, 10_000_000, workers)
				if err != nil {
					b.Fatal(err)
				}
				if len(nes) == 0 {
					b.Fatal("no NE found")
				}
			}
		})
	}
}

// BenchmarkEnumerateNESerial is the unsharded baseline for
// BenchmarkEnumerateNEParallel.
func BenchmarkEnumerateNESerial(b *testing.B) {
	b.ReportAllocs()
	g := benchGame(b, 4, 4, 2, chanalloc.TDMA(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nes, err := chanalloc.EnumerateNE(g, 10_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if len(nes) == 0 {
			b.Fatal("no NE found")
		}
	}
}

// BenchmarkDynamicsBatchParallel measures a 32-replicate best-response
// batch (experiment E6's engine path) at one worker vs NumCPU workers.
func BenchmarkDynamicsBatchParallel(b *testing.B) {
	b.ReportAllocs()
	g := benchGame(b, 16, 12, 6, chanalloc.TDMA(1))
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := chanalloc.RunBatch(g, chanalloc.BatchSpec{
					Process:    chanalloc.BestResponseProcess,
					Replicates: 32,
					Seed:       9,
					Workers:    workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Converged != 32 {
					b.Fatalf("converged %d/32", res.Converged)
				}
			}
		})
	}
}

// BenchmarkPotential measures the congestion-potential evaluation used to
// trace dynamics.
func BenchmarkPotential(b *testing.B) {
	b.ReportAllocs()
	g := benchGame(b, 64, 32, 16, chanalloc.TDMA(1))
	ne, err := chanalloc.Algorithm1(g)
	if err != nil {
		b.Fatal(err)
	}
	r := g.Rate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if chanalloc.Potential(r, ne) <= 0 {
			b.Fatal("degenerate potential")
		}
	}
}

// benchDispatchTask is a minimal engine task for the dispatch benchmarks:
// near-zero work per job, so the measured time is almost pure wire latency
// — exactly where lock-step and pipelined dispatch differ.
const benchDispatchTask = "bench/echo"

func init() {
	if err := chanalloc.RegisterEngineTask(benchDispatchTask,
		func(params json.RawMessage, job int, rng *chanalloc.RNG) (any, error) {
			return job, nil
		}); err != nil {
		panic(err)
	}
}

// benchDispatchBatch runs one small-job batch over the backend and fails
// the benchmark on any error.
func benchDispatchBatch(b *testing.B, backend chanalloc.EngineBackend, jobs int) {
	b.Helper()
	got, _, err := backend.RunTask(benchDispatchTask, json.RawMessage(`{}`), jobs,
		chanalloc.EngineSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	if len(got) != jobs {
		b.Fatalf("got %d results, want %d", len(got), jobs)
	}
}

// BenchmarkDispatch compares the remote backends' dispatch disciplines on a
// 64-small-job batch over loopback TCP, one worker each: the socket
// backend's lock-step send/receive pays one round-trip per job, the
// cluster backend's pipelined dispatch pays roughly one per window
// (EXPERIMENTS.md "Work-queue and window semantics"). cmd/benchjson and
// cmd/benchdiff track these ops PR-over-PR like every other benchmark.
func BenchmarkDispatch(b *testing.B) {
	b.ReportAllocs()
	const jobs = 64
	b.Run("lockstep", func(b *testing.B) {
		b.ReportAllocs()
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		done := make(chan struct{})
		go func() { defer close(done); chanalloc.EngineServe(lis) }()
		defer func() { lis.Close(); <-done }()
		backend := chanalloc.NewSocketBackend(lis.Addr().String())
		benchDispatchBatch(b, backend, jobs) // warm up the connection path
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchDispatchBatch(b, backend, jobs)
		}
	})
	for _, window := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("pipelined/window%d", window), func(b *testing.B) {
			b.ReportAllocs()
			backend, err := chanalloc.NewClusterBackend("127.0.0.1:0",
				chanalloc.ClusterWindow(window))
			if err != nil {
				b.Fatal(err)
			}
			defer backend.Close()
			stop := make(chan struct{})
			joined := make(chan struct{})
			go func() {
				defer close(joined)
				chanalloc.EngineJoinAndServe(backend.Addr(), chanalloc.JoinStop(stop))
			}()
			defer func() { close(stop); <-joined }()
			benchDispatchBatch(b, backend, jobs) // absorbs the join wait
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchDispatchBatch(b, backend, jobs)
			}
		})
	}
}

// BenchmarkEnumerateNESymmetry measures the canonical-orbit enumeration on
// the all-equal-k game of BenchmarkEnumerateNESerial, WITHOUT the orbit
// expansion back to the unreduced output — the raw cost of the
// symmetry-reduced walk (C(R+N-1, N) canonical profiles instead of R^N).
// The gap to BenchmarkEnumerateNESerial is the expansion adapter's cost.
func BenchmarkEnumerateNESymmetry(b *testing.B) {
	b.ReportAllocs()
	g := benchGame(b, 4, 4, 2, chanalloc.TDMA(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reps, err := chanalloc.EnumerateNECanonical(g, 10_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if len(reps) == 0 {
			b.Fatal("no NE found")
		}
	}
}

// BenchmarkScreenIncremental measures symmetry-reduced enumeration on a
// mixed-budget heterogeneous game (budgets 1,2,2,3 over 4 channels): three
// exchangeability classes, so the orbit reduction is weak and the runtime
// is dominated by the per-profile screen — the lever here is the
// incremental screen cache (per-user verdicts invalidated only via the
// walk's dirty-channel stamps) rather than orbit collapsing.
func BenchmarkScreenIncremental(b *testing.B) {
	b.ReportAllocs()
	g, err := chanalloc.NewHeteroGame(4, []int{1, 2, 2, 3}, chanalloc.TDMA(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reps, err := chanalloc.HeteroEnumerateNECanonical(g, 10_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if len(reps) == 0 {
			b.Fatal("no NE found")
		}
	}
}

// BenchmarkParetoImprovement measures the exhaustive Pareto-optimality
// scan on the 4×4×2 reference game from an Algorithm 1 equilibrium — a
// Pareto-optimal input, so every variant pays the worst case: the complete
// walk of its search space with no early exit. "orbit" is the
// symmetry-reduced search (one matching test per canonical representative,
// ~13× fewer profiles than the 50625-profile grid), "unreduced" the direct
// grid baseline it is differential-tested against, and "parallel" the
// sharded orbit walk at NumCPU workers.
func BenchmarkParetoImprovement(b *testing.B) {
	b.ReportAllocs()
	g := benchGame(b, 4, 4, 2, chanalloc.TDMA(1))
	ne, err := chanalloc.Algorithm1(g)
	if err != nil {
		b.Fatal(err)
	}
	const cap = 10_000_000
	b.Run("orbit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w, err := chanalloc.FindParetoImprovement(g, ne, chanalloc.DefaultEps, cap)
			if err != nil {
				b.Fatal(err)
			}
			if w != nil {
				b.Fatal("Algorithm 1's NE must be Pareto-optimal")
			}
		}
	})
	b.Run("unreduced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w, err := chanalloc.FindParetoImprovementUnreduced(g, ne, chanalloc.DefaultEps, cap)
			if err != nil {
				b.Fatal(err)
			}
			if w != nil {
				b.Fatal("Algorithm 1's NE must be Pareto-optimal")
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w, err := chanalloc.FindParetoImprovementParallel(g, ne, chanalloc.DefaultEps, cap, runtime.NumCPU())
			if err != nil {
				b.Fatal(err)
			}
			if w != nil {
				b.Fatal("Algorithm 1's NE must be Pareto-optimal")
			}
		}
	})
}

// BenchmarkWelfareDP measures the welfare dynamic program's two steady
// states: "into" is the slab DP in a reused workspace (the acceptance bar
// is 0 allocs/op), "memoised" the per-game cache serving repeated
// PriceOfAnarchy calls, and "oneshot" the allocating form kept as the
// trajectory baseline.
func BenchmarkWelfareDP(b *testing.B) {
	b.ReportAllocs()
	r := chanalloc.HarmonicRate(1, 0.5)
	b.Run("into", func(b *testing.B) {
		b.ReportAllocs()
		ws := chanalloc.NewWorkspace()
		chanalloc.OptimalLoadWelfareInto(ws, r, 16, 128) // size the slabs
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if opt, _ := chanalloc.OptimalLoadWelfareInto(ws, r, 16, 128); opt <= 0 {
				b.Fatal("degenerate optimum")
			}
		}
	})
	b.Run("oneshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if opt, _ := chanalloc.OptimalLoadWelfare(r, 16, 128); opt <= 0 {
				b.Fatal("degenerate optimum")
			}
		}
	})
	b.Run("memoised", func(b *testing.B) {
		b.ReportAllocs()
		g := benchGame(b, 16, 12, 8, r)
		ne, err := chanalloc.Algorithm1(g)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if poa, err := chanalloc.PriceOfAnarchy(g, ne); err != nil || poa <= 0 {
				b.Fatalf("poa %v err %v", poa, err)
			}
		}
	})
}

// BenchmarkDistPolicy measures one best-response Propose against announced
// loads — the device-side hot path of the distributed protocol. The
// steady-state (no-move) reply must stay allocation-free now that the
// policy owns a reusable DP workspace.
func BenchmarkDistPolicy(b *testing.B) {
	b.ReportAllocs()
	r := chanalloc.TDMA(1)
	policy := &chanalloc.BestResponsePolicy{Rate: r}
	ext := []int{5, 4, 6, 3, 5, 4, 6, 5}
	// A row that is already a best response to ext, so Propose takes the
	// no-move path every iteration.
	current, _, err := chanalloc.BestResponseToLoads(r, ext, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, err := policy.Propose(ext, current, 3)
		if err != nil {
			b.Fatal(err)
		}
		if len(row) != len(ext) {
			b.Fatal("bad row")
		}
	}
}

// BenchmarkRequilibrate replays a seeded 200-event churn trace through the
// live game, re-equilibrating after every event. The warm variant carries
// quiet verdicts across events (the allocd service path); the cold variant
// voids them before each run, measuring the same trajectory with a full
// sweep. Both end at bit-identical allocations — the committed metric is
// the best-response DP invocations per churn event.
func BenchmarkRequilibrate(b *testing.B) {
	spec := chanalloc.DefaultChurnSpec(4, 6, 200, 7)
	trace, err := chanalloc.GenerateChurnTrace(spec)
	if err != nil {
		b.Fatal(err)
	}
	rate := chanalloc.TDMA(54)
	replay := func(b *testing.B, warm bool) {
		b.Helper()
		b.ReportAllocs()
		var dpCalls, skipped float64
		for i := 0; i < b.N; i++ {
			lg, err := chanalloc.NewLiveGame(spec.Channels, rate)
			if err != nil {
				b.Fatal(err)
			}
			ws := chanalloc.BorrowWorkspace()
			for _, req := range trace {
				switch req.Op {
				case "join":
					_, err = lg.Join(req.Budget)
				case "leave":
					err = lg.Leave(chanalloc.UserID(req.ID))
				case "budget":
					err = lg.SetBudget(chanalloc.UserID(req.ID), req.Budget)
				}
				if err != nil {
					b.Fatal(err)
				}
				if !warm {
					lg.MarkEquilibrated(false)
				}
				res, err := chanalloc.Requilibrate(lg, chanalloc.WithDynamicsWorkspace(ws))
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged {
					b.Fatal("did not converge")
				}
				dpCalls += float64(res.DPCalls)
				skipped += float64(res.WarmSkipped)
			}
			chanalloc.ReturnWorkspace(ws)
		}
		events := float64(b.N * len(trace))
		b.ReportMetric(dpCalls/events, "dp/event")
		b.ReportMetric(skipped/events, "skip/event")
	}
	b.Run("warm", func(b *testing.B) { replay(b, true) })
	b.Run("cold", func(b *testing.B) { replay(b, false) })
}

// BenchmarkLiveServerChurn measures the full allocd service path — frame
// decode, mutation, warm re-equilibration, verification, frame encode —
// per churn event over an in-memory transport.
func BenchmarkLiveServerChurn(b *testing.B) {
	spec := chanalloc.DefaultChurnSpec(4, 6, 100, 7)
	trace, err := chanalloc.GenerateChurnTrace(spec)
	if err != nil {
		b.Fatal(err)
	}
	var in bytes.Buffer
	enc := json.NewEncoder(&in)
	for _, req := range trace {
		if err := enc.Encode(req); err != nil {
			b.Fatal(err)
		}
	}
	rate := chanalloc.TDMA(54)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv, err := chanalloc.NewLiveServer(chanalloc.LiveConfig{
			Channels: spec.Channels, Rate: rate, RateName: "tdma:54",
			Workers: 1, Verify: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		var out bytes.Buffer
		if err := chanalloc.ServeLive(srv, bytes.NewReader(in.Bytes()), &out); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(trace)), "ns/event")
}

// BenchmarkPooledWorkspaceBestResponse measures the shared-pool borrow /
// DP / return cycle the engine shards and the live server run in steady
// state; the zero-allocation property is pinned by a test
// (TestWorkspacePoolSteadyStateAllocs), this benchmark reports it.
func BenchmarkPooledWorkspaceBestResponse(b *testing.B) {
	g := benchGame(b, 16, 12, 6, chanalloc.TDMA(1))
	a := chanalloc.RandomAlloc(g, 1)
	// Warm the pool to the game's dimensions.
	ws := chanalloc.BorrowWorkspace()
	if _, _, err := g.BestResponseInto(ws, a, 0); err != nil {
		b.Fatal(err)
	}
	chanalloc.ReturnWorkspace(ws)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws := chanalloc.BorrowWorkspace()
		if _, _, err := g.BestResponseInto(ws, a, i%g.Users()); err != nil {
			b.Fatal(err)
		}
		chanalloc.ReturnWorkspace(ws)
	}
}

// BenchmarkObsOverhead pins the instrumentation fast path every kernel and
// engine counter rides on: a counter add, a gauge set and a histogram
// observe together must stay allocation-free (0 allocs/op) and in the
// low-nanosecond range, or hot-path metrics would tax the DP benchmarks
// they exist to explain.
func BenchmarkObsOverhead(b *testing.B) {
	c := chanalloc.NewObsCounter("bench_obs_overhead_total")
	g := chanalloc.NewObsGauge("bench_obs_overhead_gauge")
	h := chanalloc.NewObsHistogram("bench_obs_overhead_depth", []int64{1, 8, 64, 512})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(int64(i))
		h.Observe(int64(i & 1023))
	}
}
