// Package chanalloc is a Go implementation of the multi-radio channel
// allocation game of Félegyházi, Čagalj and Hubaux, "Multi-radio channel
// allocation in competitive wireless networks" (ICDCS 2006), together with
// the substrates the paper builds on: rate functions for reservation TDMA
// and CSMA/CA (Bianchi's DCF model), slot-level MAC simulators, equilibrium
// analysis, convergence dynamics and a distributed allocation protocol.
//
// # Model
//
// |N| selfish users each own a device with k ≤ |C| radios and distribute
// them over |C| orthogonal channels. The total rate R(k_c) of a channel is
// non-increasing in the number of radios k_c sharing it and is split evenly
// among them, so user i earns U_i = Σ_c k_{i,c}/k_c · R(k_c).
//
// # Quick start
//
//	g, err := chanalloc.NewGame(7, 6, 4, chanalloc.TDMA(54))
//	if err != nil { ... }
//	ne, err := chanalloc.Algorithm1(g)       // Pareto-optimal Nash equilibrium
//	ok, _ := chanalloc.TheoremNE(g, ne)      // paper's Theorem 1 checker
//	stable, _ := g.IsNashEquilibrium(ne)     // exact best-response oracle
//
// # Scenario registry
//
// Workloads resolve by name through an open registry: the paper's worked
// examples ("fig1", "fig4", "fig5"), parametric families
// ("random:N,C,k[,seed]", "hetero:C,k1,k2,..."), and deployment-flavoured
// workloads ("mesh", "cognitive"). ScenarioByName resolves any of them;
// RegisterScenario plugs in new families:
//
//	s, err := chanalloc.ScenarioByName("random:8,6,3", chanalloc.TDMA(54))
//
// # Parallel experiment engine
//
// Batch paths run on a deterministic worker pool (ParallelMap,
// EnumerateNEParallel, RunBatch): jobs fan out over runtime.NumCPU()
// workers, every job draws randomness from a PRNG stream derived from the
// root seed and the job index alone, and results fan in ordered by job —
// so batch output is byte-identical for every worker count. cmd/sweep runs
// its whole experiment suite (EXPERIMENTS.md) on this engine via -seed and
// -workers.
//
// The package is a facade: implementation lives in internal packages (core,
// ratefn, bianchi, macsim, des, engine, workload, dynamics, dist, ...),
// each documented and tested on its own.
package chanalloc

import (
	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

// Core game types, re-exported.
type (
	// Game fixes |N|, |C|, k and the rate function.
	Game = core.Game
	// Alloc is a strategy matrix with cached channel loads.
	Alloc = core.Alloc
	// Violation is a witness that an allocation breaks one of the paper's
	// NE conditions.
	Violation = core.Violation
	// Deviation is a profitable unilateral strategy change found by the
	// best-response oracle.
	Deviation = core.Deviation
	// TieBreak selects among equally attractive channels in Algorithm 1.
	TieBreak = core.TieBreak
	// RateFunc is the channel rate function R(k_c).
	RateFunc = ratefn.Func
	// Workspace holds the reusable scratch of the best-response DP; hold
	// one per goroutine and pass it to the *Into/*With entry points
	// (Game.BestResponseInto, Game.IsNashEquilibriumWith, ...) for
	// zero-allocation steady state.
	Workspace = core.Workspace
	// RateView is a game's precomputed, lock-free rate table (R over the
	// bounded load domain plus the best-response share plane); see
	// Game.View.
	RateView = core.RateView
)

// Tie-break policies for Algorithm 1.
const (
	TieFirst  = core.TieFirst
	TieRandom = core.TieRandom
	TieLast   = core.TieLast
)

// DefaultEps is the tolerance of the floating-point NE oracle.
const DefaultEps = core.DefaultEps

// NewGame validates and constructs a game with |N| = users, |C| = channels
// and k = radios per user (k ≤ |C|).
func NewGame(users, channels, radios int, rate RateFunc) (*Game, error) {
	return core.NewGame(users, channels, radios, rate)
}

// NewAlloc returns an all-zero allocation.
func NewAlloc(users, channels int) (*Alloc, error) {
	return core.NewAlloc(users, channels)
}

// AllocFromMatrix builds an allocation from an explicit strategy matrix
// (rows = users, columns = channels).
func AllocFromMatrix(matrix [][]int) (*Alloc, error) {
	return core.AllocFromMatrix(matrix)
}

// Algorithm1 runs the paper's centralised sequential allocation; the result
// is always a Pareto-optimal Nash equilibrium. See WithTieBreak, WithSeed,
// WithOrder and WithLiteralRule for options.
func Algorithm1(g *Game, opts ...Algorithm1Option) (*Alloc, error) {
	return core.Algorithm1(g, opts...)
}

// Algorithm1Option configures Algorithm1.
type Algorithm1Option = core.Algorithm1Option

// WithTieBreak selects Algorithm 1's tie-breaking policy.
func WithTieBreak(t TieBreak) Algorithm1Option { return core.WithTieBreak(t) }

// WithSeed fixes the RNG seed used by TieRandom.
func WithSeed(seed uint64) Algorithm1Option { return core.WithSeed(seed) }

// WithOrder sets the order in which users allocate.
func WithOrder(order []int) Algorithm1Option { return core.WithOrder(order) }

// WithLiteralRule reproduces the paper-literal placement rule, which can
// stack radios under unlucky tie-breaking and then is not an equilibrium;
// see the EXPERIMENTS.md entry for E10.
func WithLiteralRule() Algorithm1Option { return core.WithLiteralRule() }

// TheoremNE applies the paper's Theorem 1 (and Fact 1 in the no-conflict
// regime) to decide NE membership, returning a witness when it fails.
func TheoremNE(g *Game, a *Alloc) (bool, *Violation) {
	return core.TheoremNE(g, a)
}

// CheckAllLemmas evaluates Lemmas 1-4 and Proposition 1, returning one
// witness per violated rule.
func CheckAllLemmas(g *Game, a *Alloc) []*Violation {
	return core.CheckAllLemmas(g, a)
}

// BestResponseToLoads computes the optimal placement of up to k radios
// against fixed external channel loads.
func BestResponseToLoads(rate RateFunc, ext []int, k int) ([]int, float64, error) {
	return core.BestResponseToLoads(rate, ext, k)
}

// NewWorkspace returns an empty best-response workspace; its buffers are
// sized on first use and reused across calls.
func NewWorkspace() *Workspace { return core.NewWorkspace() }

// BestResponseToLoadsInto is the allocation-free form of
// BestResponseToLoads: the DP runs inside ws and the returned row aliases
// it (copy to retain). Reuse one workspace across many load vectors.
func BestResponseToLoadsInto(ws *Workspace, rate RateFunc, ext []int, k int) ([]int, float64, error) {
	return core.BestResponseToLoadsInto(ws, rate, ext, k)
}

// OptimalWelfareAllPlaced computes the maximum total rate over allocations
// that deploy every radio, with one optimising load vector. The welfare DP
// runs once per game and is memoised; repeated calls are a memo read.
func OptimalWelfareAllPlaced(g *Game) (float64, []int) {
	return core.OptimalWelfareAllPlaced(g)
}

// OptimalLoadWelfare maximises Σ_{c : l_c > 0} R(l_c) over load vectors on
// C channels placing exactly total radios — the welfare DP shared by the
// uniform and heterogeneous benchmarks, exposed for callers that only know
// aggregate loads. One-shot form of OptimalLoadWelfareInto.
func OptimalLoadWelfare(rate RateFunc, C, total int) (float64, []int) {
	return core.OptimalLoadWelfare(rate, C, total)
}

// OptimalLoadWelfareInto is the welfare DP in the caller's workspace: zero
// steady-state allocations, returned loads aliasing ws (copy to retain).
func OptimalLoadWelfareInto(ws *Workspace, rate RateFunc, C, total int) (float64, []int) {
	return core.OptimalLoadWelfareInto(ws, rate, C, total)
}

// OptimalWelfareIdleAllowed computes the maximum total rate when radios may
// idle.
func OptimalWelfareIdleAllowed(g *Game) (float64, []int) {
	return core.OptimalWelfareIdleAllowed(g)
}

// PriceOfAnarchy returns welfare(a) divided by the all-placed optimum.
func PriceOfAnarchy(g *Game, a *Alloc) (float64, error) {
	return core.PriceOfAnarchy(g, a)
}

// FindParetoImprovement searches for an allocation Pareto-dominating a,
// returning nil when a is Pareto-optimal over the full strategy space.
// Exponential; intended for small instances (maxProfiles caps the search
// by the FULL unreduced profile count). The walk is symmetry-reduced over
// exchangeable users: each orbit of permuted-row profiles is decided by a
// single per-class utility matching test, so an improvement is found iff
// the unreduced scan finds one — see FindParetoImprovementUnreduced for
// the direct grid walk kept as the differential baseline.
func FindParetoImprovement(g *Game, a *Alloc, eps float64, maxProfiles int64) (*Alloc, error) {
	return core.FindParetoImprovement(g, a, eps, maxProfiles)
}

// FindParetoImprovementUnreduced is the direct (unreduced) grid Pareto
// search — the baseline the orbit-aware FindParetoImprovement is
// differential-tested and benchmarked against.
func FindParetoImprovementUnreduced(g *Game, a *Alloc, eps float64, maxProfiles int64) (*Alloc, error) {
	return core.FindParetoImprovementUnreduced(g, a, eps, maxProfiles)
}

// FindParetoImprovementParallel is FindParetoImprovement sharded over the
// deterministic worker pool by pinned leading canonical digits (like
// EnumerateNEParallel): byte-identical results at any worker count.
// workers < 1 means runtime.NumCPU().
func FindParetoImprovementParallel(g *Game, a *Alloc, eps float64, maxProfiles int64, workers int) (*Alloc, error) {
	return core.FindParetoImprovementParallel(g, a, eps, maxProfiles, workers)
}

// EnumerateNE collects every Nash equilibrium of a tiny game by exhaustive
// search (capped by maxProfiles). The search is symmetry-reduced over
// exchangeable (equal-budget) users and the full set reconstructed by
// orbit expansion; results and order match the unreduced enumeration.
func EnumerateNE(g *Game, maxProfiles int64) ([]*Alloc, error) {
	return core.EnumerateNE(g, maxProfiles)
}

// CanonicalNE is one equilibrium orbit of the symmetry-reduced
// enumeration: a canonical representative (row indices non-decreasing
// within each class of exchangeable users) plus the orbit size — the
// number of distinct equilibria obtained by permuting rows among
// exchangeable users.
type CanonicalNE = core.CanonicalNE

// EnumerateNECanonical enumerates Nash equilibria over canonical orbit
// representatives only — one allocation per equilibrium orbit with its
// multiplicity, instead of every permuted copy. Use ExpandNEOrbits to
// reconstruct the full EnumerateNE output.
func EnumerateNECanonical(g *Game, maxProfiles int64) ([]CanonicalNE, error) {
	return core.EnumerateNECanonical(g, maxProfiles)
}

// ExpandNEOrbits reconstructs the unreduced EnumerateNE output (every
// orbit member, enumeration order) from canonical representatives.
func ExpandNEOrbits(g *Game, reps []CanonicalNE) ([]*Alloc, error) {
	return core.ExpandNEOrbits(g, reps)
}

// OccupancyDiagram renders an allocation in the style of the paper's
// Figure 1: one column per channel, user labels stacked per radio.
func OccupancyDiagram(a *Alloc) string { return core.OccupancyDiagram(a) }
