//go:build race

package core

// raceEnabled reports whether the race detector instruments this build.
// Allocation-count pins skip under race: instrumentation defeats
// sync.Pool caching and charges bookkeeping allocations to the caller.
const raceEnabled = true
