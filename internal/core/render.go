package core

import (
	"fmt"
	"strings"
)

// OccupancyDiagram renders the allocation in the style of the paper's
// Figure 1: one column per channel, user labels stacked by radio. A user
// with multiple radios on a channel appears once per radio.
func OccupancyDiagram(a *Alloc) string {
	maxLoad, _ := a.MaxLoad()
	if maxLoad == 0 {
		return "(empty allocation)\n"
	}
	// columns[c] lists the user label of each radio on channel c,
	// bottom-up, grouped by user for readability.
	columns := make([][]string, a.Channels())
	width := 4
	for c := 0; c < a.Channels(); c++ {
		for i := 0; i < a.Users(); i++ {
			for r := 0; r < a.Radios(i, c); r++ {
				label := fmt.Sprintf("u%d", i+1)
				if len(label) > width {
					width = len(label)
				}
				columns[c] = append(columns[c], label)
			}
		}
	}

	var b strings.Builder
	for level := maxLoad; level >= 1; level-- {
		fmt.Fprintf(&b, "%3d |", level)
		for c := 0; c < a.Channels(); c++ {
			cell := "."
			if len(columns[c]) >= level {
				cell = columns[c][level-1]
			}
			fmt.Fprintf(&b, " %-*s", width, cell)
		}
		b.WriteByte('\n')
	}
	b.WriteString("    +")
	for c := 0; c < a.Channels(); c++ {
		b.WriteString(strings.Repeat("-", width+1))
	}
	b.WriteByte('\n')
	b.WriteString("     ")
	for c := 0; c < a.Channels(); c++ {
		fmt.Fprintf(&b, " %-*s", width, fmt.Sprintf("c%d", c+1))
	}
	b.WriteByte('\n')
	return b.String()
}
