package core

import (
	"testing"

	"github.com/multiradio/chanalloc/internal/des"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

func TestPlacerWaterFills(t *testing.T) {
	p := Placer{}
	row, err := p.Place([]int{3, 1, 1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Water-filling: radios land on c2 (1->2), c3 (1->2), then c4 (2->3)?
	// After two placements loads are (3,2,2,2); min = 2; prefer unused -> c4.
	want := []int{0, 1, 1, 1}
	for c := range want {
		if row[c] != want[c] {
			t.Fatalf("row = %v, want %v", row, want)
		}
	}
}

func TestPlacerPrefersUnusedOnFlat(t *testing.T) {
	p := Placer{}
	row, err := p.Place([]int{2, 2, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Flat background: both radios go to distinct channels.
	want := []int{1, 1, 0}
	for c := range want {
		if row[c] != want[c] {
			t.Fatalf("row = %v, want %v", row, want)
		}
	}
}

func TestPlacerTieLast(t *testing.T) {
	p := Placer{Tie: TieLast}
	row, err := p.Place([]int{0, 0, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 1}
	for c := range want {
		if row[c] != want[c] {
			t.Fatalf("row = %v, want %v", row, want)
		}
	}
}

func TestPlacerZeroRadios(t *testing.T) {
	p := Placer{}
	row, err := p.Place([]int{1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != 0 || row[1] != 0 {
		t.Fatalf("row = %v, want zeros", row)
	}
}

func TestPlacerDoesNotMutateInput(t *testing.T) {
	loads := []int{1, 0}
	if _, err := (Placer{}).Place(loads, 1); err != nil {
		t.Fatal(err)
	}
	if loads[0] != 1 || loads[1] != 0 {
		t.Fatalf("input mutated: %v", loads)
	}
}

func TestPlacerErrors(t *testing.T) {
	p := Placer{}
	if _, err := p.Place(nil, 1); err == nil {
		t.Error("no channels should error")
	}
	if _, err := p.Place([]int{0, 0}, 3); err == nil {
		t.Error("k > channels should error")
	}
	if _, err := p.Place([]int{0}, -1); err == nil {
		t.Error("negative k should error")
	}
	if _, err := (Placer{Tie: TieRandom}).Place([]int{0, 0}, 1); err == nil {
		t.Error("TieRandom without RNG should error")
	}
	if _, err := (Placer{Tie: TieBreak(77)}).Place([]int{0, 0}, 1); err == nil {
		t.Error("unknown tie should error")
	}
}

func TestPlacerLiteralCanStack(t *testing.T) {
	// Background (0,1,1), k=2: the first radio fills c1, making the loads
	// flat at 1. The literal rule then happily returns to c1 (it is in the
	// min set), stacking two radios; the corrected rule prefers an unused
	// minimum channel and spreads.
	literal, err := (Placer{Literal: true}).Place([]int{0, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if literal[0] != 2 {
		t.Fatalf("literal row = %v, want [2 0 0]", literal)
	}
	corrected, err := (Placer{}).Place([]int{0, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 1, 0}
	for c := range want {
		if corrected[c] != want[c] {
			t.Fatalf("corrected row = %v, want %v", corrected, want)
		}
	}
}

func TestPlacerStacksOnlyWhenUnavoidable(t *testing.T) {
	// When the unique minimum is a channel the row already uses and every
	// other channel is far heavier, even the corrected rule stacks — the
	// min-load rule is myopic by design (it mirrors the paper's algorithm,
	// not a best response). Both rules agree here.
	for _, p := range []Placer{{}, {Literal: true}} {
		row, err := p.Place([]int{0, 5, 5}, 2)
		if err != nil {
			t.Fatal(err)
		}
		if row[0] != 2 {
			t.Fatalf("row = %v, want [2 0 0] (literal=%v)", row, p.Literal)
		}
	}
}

func TestPlacerRandomUsesRNG(t *testing.T) {
	rng := des.NewRNG(3)
	p := Placer{Tie: TieRandom, RNG: rng}
	seen := make(map[int]bool)
	for trial := 0; trial < 64; trial++ {
		row, err := p.Place([]int{0, 0, 0, 0}, 1)
		if err != nil {
			t.Fatal(err)
		}
		for c, v := range row {
			if v == 1 {
				seen[c] = true
			}
		}
	}
	if len(seen) < 3 {
		t.Fatalf("random tie-breaking only ever picked %v", seen)
	}
}

func TestBestResponseToLoadsMatchesGameBestResponse(t *testing.T) {
	g, a := figure1Game(t)
	for i := 0; i < g.Users(); i++ {
		ext := make([]int, g.Channels())
		for c := range ext {
			ext[c] = a.Load(c) - a.Radios(i, c)
		}
		row1, u1, err := g.BestResponse(a, i)
		if err != nil {
			t.Fatal(err)
		}
		row2, u2, err := BestResponseToLoads(g.Rate(), ext, g.Radios())
		if err != nil {
			t.Fatal(err)
		}
		if u1 != u2 {
			t.Fatalf("u%d: %v != %v", i+1, u1, u2)
		}
		for c := range row1 {
			if row1[c] != row2[c] {
				t.Fatalf("u%d rows differ: %v vs %v", i+1, row1, row2)
			}
		}
	}
}

func TestBestResponseToLoadsErrors(t *testing.T) {
	r := ratefn.NewTDMA(1)
	if _, _, err := BestResponseToLoads(nil, []int{0}, 1); err == nil {
		t.Error("nil rate should error")
	}
	if _, _, err := BestResponseToLoads(r, nil, 1); err == nil {
		t.Error("no channels should error")
	}
	if _, _, err := BestResponseToLoads(r, []int{0}, -1); err == nil {
		t.Error("negative k should error")
	}
	if _, _, err := BestResponseToLoads(r, []int{-1}, 1); err == nil {
		t.Error("negative load should error")
	}
}
