package core

import (
	"testing"

	"github.com/multiradio/chanalloc/internal/combin"
)

// testRowTables materialises per-budget strategy-row tables over channels,
// shared between equal budgets (the OrbitEnumerator contract).
func testRowTables(t *testing.T, channels int, budgets []int) func(u int) [][]int {
	t.Helper()
	byBudget := map[int][][]int{}
	for _, k := range budgets {
		if byBudget[k] != nil {
			continue
		}
		var rows [][]int
		for total := 0; total <= k; total++ {
			err := combin.Compositions(total, channels, func(row []int) bool {
				rows = append(rows, append([]int(nil), row...))
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		byBudget[k] = rows
	}
	return func(u int) [][]int { return byBudget[budgets[u]] }
}

// TestOrbitSizesSumToFullProfileCount walks the canonical space of small
// uniform and mixed-budget games (N <= 4, C <= 3) and checks the partition
// property: every visited vector is canonical, the walk is strictly
// lexicographic, the visit count matches CanonicalCount, and orbit sizes
// sum to the full unreduced profile count Π_u |rows_u| — i.e. the orbits
// tile the whole grid with no overlap and no gap.
func TestOrbitSizesSumToFullProfileCount(t *testing.T) {
	cases := []struct {
		channels int
		budgets  []int
	}{
		{2, []int{1, 1}},
		{3, []int{1, 1, 1}},
		{3, []int{2, 2, 1}},
		{2, []int{1, 2, 1}}, // class {0, 2} is non-contiguous
		{3, []int{1, 2, 3}}, // all classes singletons: no reduction
		{3, []int{2, 1, 2, 1}},
		{3, []int{2, 2, 2, 2}},
	}
	for _, tc := range cases {
		rowsFor := testRowTables(t, tc.channels, tc.budgets)
		users := len(tc.budgets)
		pred := orbitPred(tc.budgets)
		classes := orbitClasses(pred)
		sizes := make([]int, users)
		full := int64(1)
		for u := range sizes {
			sizes[u] = len(rowsFor(u))
			full *= int64(sizes[u])
		}
		a, err := NewAlloc(users, tc.channels)
		if err != nil {
			t.Fatal(err)
		}
		idx := make([]int, users)
		prev := make([]int, 0, users)
		var visited, orbitSum int64
		err = orbitWalk(a, idx, 0, sizes, pred,
			func(u, ri int) []int { return rowsFor(u)[ri] }, "test", nil, nil,
			func() bool {
				for u, ri := range idx {
					if p := pred[u]; p >= 0 && idx[p] > ri {
						t.Fatalf("budgets %v: non-canonical vector %v at step %d", tc.budgets, idx, visited)
					}
				}
				if len(prev) > 0 {
					less := false
					for u := range idx {
						if prev[u] != idx[u] {
							less = prev[u] < idx[u]
							break
						}
					}
					if !less {
						t.Fatalf("budgets %v: walk not strictly lexicographic: %v then %v", tc.budgets, prev, idx)
					}
				}
				prev = append(prev[:0], idx...)
				visited++
				orbit, err := orbitSizeOf(idx, classes)
				if err != nil {
					t.Fatal(err)
				}
				orbitSum += orbit
				return true
			})
		if err != nil {
			t.Fatal(err)
		}
		oe := &OrbitEnumerator{Channels: tc.channels, Budgets: tc.budgets, RowsFor: rowsFor, ErrPrefix: "test"}
		want, err := oe.CanonicalCount()
		if err != nil {
			t.Fatal(err)
		}
		if visited != want {
			t.Errorf("budgets %v: walk visited %d canonical profiles, CanonicalCount says %d", tc.budgets, visited, want)
		}
		if orbitSum != full {
			t.Errorf("budgets %v: orbit sizes sum to %d, full grid has %d profiles", tc.budgets, orbitSum, full)
		}
	}
}

// TestCanonicalNEMatchesUnreduced cross-checks the reduced enumeration
// against the pre-refactor reference across every rate family (including
// Table and MonotoneEnvelope): the expanded canonical output must equal
// the unreduced enumeration allocation for allocation, in order, and the
// orbit sizes must sum to the unreduced equilibrium count.
func TestCanonicalNEMatchesUnreduced(t *testing.T) {
	dims := []struct{ users, channels, radios int }{
		{3, 3, 2},
		{4, 3, 1},
		{4, 2, 2},
		{2, 3, 3},
	}
	for _, rate := range differentialRates(t) {
		for _, d := range dims {
			g, err := NewGame(d.users, d.channels, d.radios, rate)
			if err != nil {
				t.Fatal(err)
			}
			want := referenceEnumerateNE(t, g, 2_000_000)
			reps, err := EnumerateNECanonical(g, 2_000_000)
			if err != nil {
				t.Fatal(err)
			}
			var orbitSum int64
			for _, rep := range reps {
				orbitSum += rep.Orbit
			}
			if orbitSum != int64(len(want)) {
				t.Fatalf("%s %dx%dx%d: orbit sizes sum to %d, unreduced enumeration has %d equilibria",
					rate.Name(), d.users, d.channels, d.radios, orbitSum, len(want))
			}
			got, err := ExpandNEOrbits(g, reps)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s %dx%dx%d: expanded %d equilibria, reference found %d",
					rate.Name(), d.users, d.channels, d.radios, len(got), len(want))
			}
			for j := range got {
				if !got[j].Equal(want[j]) {
					t.Fatalf("%s %dx%dx%d: equilibrium %d differs from reference order\ngot:\n%v\nwant:\n%v",
						rate.Name(), d.users, d.channels, d.radios, j, got[j], want[j])
				}
			}
		}
	}
}

// TestIncrementalScreenMatchesScreenedNE drives ScreenedNEIncremental
// through a canonical walk and re-checks every profile with the plain
// (stateless) oracle on the same allocation: verdicts must agree exactly,
// in both directions, at every step — the cache may only change cost.
func TestIncrementalScreenMatchesScreenedNE(t *testing.T) {
	budgets := []int{1, 2, 2, 3}
	const channels = 3
	for _, rate := range differentialRates(t) {
		total := 0
		maxB := 0
		for _, k := range budgets {
			total += k
			if k > maxB {
				maxB = k
			}
		}
		view := NewRateView(rate, total, maxB)
		rowsFor := testRowTables(t, channels, budgets)
		users := len(budgets)
		pred := orbitPred(budgets)
		sizes := make([]int, users)
		for u := range sizes {
			sizes[u] = len(rowsFor(u))
		}
		a, err := NewAlloc(users, channels)
		if err != nil {
			t.Fatal(err)
		}
		idx := make([]int, users)
		ws := NewWorkspace()
		ws.ResetScreenCache(users, channels)
		plain := NewWorkspace()
		err = orbitWalk(a, idx, 0, sizes, pred,
			func(u, ri int) []int { return rowsFor(u)[ri] }, "test",
			ws.ScreenStep,
			func(u, oldRi, newRi int) {
				ws.MarkRowChanged(u)
				newRow := rowsFor(u)[newRi]
				if oldRi < 0 {
					for c, v := range newRow {
						if v != 0 {
							ws.MarkLoadChanged(c)
						}
					}
					return
				}
				oldRow := rowsFor(u)[oldRi]
				for c, v := range newRow {
					if v != oldRow[c] {
						ws.MarkLoadChanged(c)
					}
				}
			},
			func() bool {
				got := view.ScreenedNEIncremental(ws, a, 0, budgets, DefaultEps)
				want := view.ScreenedNE(plain, a, 0, budgets, DefaultEps)
				if got != want {
					t.Fatalf("%s: incremental oracle says %v, stateless says %v at %v", rate.Name(), got, want, idx)
				}
				return true
			})
		if err != nil {
			t.Fatal(err)
		}
	}
}
