package core

import (
	"fmt"

	"github.com/multiradio/chanalloc/internal/combin"
	"github.com/multiradio/chanalloc/internal/des"
	"github.com/multiradio/chanalloc/internal/engine"
)

// EnumerateNEParallel is EnumerateNE sharded over the engine's worker
// pool: the profile space is partitioned by the first user's strategy row
// (the outermost odometer digit of the serial enumeration), each shard is
// searched independently, and the shard results are concatenated in row
// order — so the output is identical, equilibrium for equilibrium, to the
// serial EnumerateNE regardless of worker count. workers < 1 means
// runtime.NumCPU().
func EnumerateNEParallel(g *Game, maxProfiles int64, workers int) ([]*Alloc, error) {
	rows, err := strategyRows(g)
	if err != nil {
		return nil, err
	}
	if err := checkProfileCap(g.Users(), int64(len(rows)), maxProfiles); err != nil {
		return nil, err
	}

	shards, _, err := engine.Map(len(rows), func(job int, _ *des.RNG) ([]*Alloc, error) {
		a := g.NewEmptyAlloc()
		if err := a.SetRow(0, rows[job]); err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", job, err)
		}
		// One profile when the game has a single user; otherwise the full
		// product over users 1..N-1 with user 0 pinned to this shard's row.
		rest := make([]int, g.Users()-1)
		for i := range rest {
			rest[i] = len(rows)
		}
		var out []*Alloc
		var innerErr error
		err := forEachRest(a, rows, rest, func(b *Alloc) bool {
			ok, err := g.IsNashEquilibrium(b)
			if err != nil {
				innerErr = err
				return false
			}
			if ok {
				out = append(out, b.Clone())
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		if innerErr != nil {
			return nil, innerErr
		}
		return out, nil
	}, engine.Workers(workers))
	if err != nil {
		return nil, err
	}

	var all []*Alloc
	for _, shard := range shards {
		all = append(all, shard...)
	}
	return all, nil
}

// forEachRest walks the cartesian product of strategy rows for users
// 1..N-1 on top of a (user 0's row already set), calling fn with the
// reused allocation. Matches the serial ForEachAlloc iteration order for a
// fixed outermost digit.
func forEachRest(a *Alloc, rows [][]int, sizes []int, fn func(*Alloc) bool) error {
	return combin.Product(sizes, func(idx []int) bool {
		for u, ri := range idx {
			if err := a.SetRow(u+1, rows[ri]); err != nil {
				// rows are pre-validated; this cannot fail.
				return false
			}
		}
		return fn(a)
	})
}
