package core

import (
	"fmt"
	"runtime"

	"github.com/multiradio/chanalloc/internal/des"
	"github.com/multiradio/chanalloc/internal/engine"
)

// EnumerateNEParallel is EnumerateNE sharded over the engine's worker
// pool. The CANONICAL orbit space is partitioned by the first user's
// pinned strategy row (the outermost digit of the serial canonical walk)
// — or, when the game has fewer rows than twice the pool (few strategies
// per user, the many-user regime), by the first two users' rows, which
// squares the shard count and keeps every worker busy. Sharding the
// canonical space rather than the raw row grid preserves the symmetry
// reduction under parallelism: a pinned prefix that is not canonical
// (second digit below the first within a class) is an empty shard and
// returns immediately instead of re-walking orbits another shard owns.
// Shard results are concatenated in digit order and expanded to the
// unreduced output once at the end — so the output is identical,
// equilibrium for equilibrium, to the serial EnumerateNE regardless of
// worker count or sharding depth. workers < 1 means runtime.NumCPU().
func EnumerateNEParallel(g *Game, maxProfiles int64, workers int) ([]*Alloc, error) {
	rows, err := strategyRows(g)
	if err != nil {
		return nil, err
	}
	if err := checkProfileCap(g.Users(), int64(len(rows)), maxProfiles); err != nil {
		return nil, err
	}
	pool := workers
	if pool < 1 {
		pool = runtime.NumCPU()
	}
	// Shard on users 0 and 1 when single-row shards cannot fill the pool
	// twice over (the "2×workers" rule keeps per-shard work comfortably
	// above pool overhead while levelling uneven shard costs).
	depth := 1
	if g.Users() >= 2 && len(rows) < 2*pool {
		depth = 2
	}
	shardCount := len(rows)
	if depth == 2 {
		shardCount = len(rows) * len(rows)
	}

	shards, _, err := engine.Map(shardCount, func(job int, _ *des.RNG) ([]CanonicalNE, error) {
		// Decode the shard's pinned leading digits (job is the serial
		// walk's leading odometer reading).
		digits := make([]int, depth)
		digits[0] = job
		if depth == 2 {
			digits[0], digits[1] = job/len(rows), job%len(rows)
		}
		reps, err := g.orbitEnumerator(rows).CanonicalShard(digits)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", job, err)
		}
		return reps, nil
	}, engine.Workers(workers))
	if err != nil {
		return nil, err
	}

	var all []CanonicalNE
	for _, shard := range shards {
		all = append(all, shard...)
	}
	return g.orbitEnumerator(rows).Expand(all)
}

// FindParetoImprovementParallel is the orbit-aware FindParetoImprovement
// sharded over the engine's worker pool by pinned leading canonical digits,
// with the same depth rule as EnumerateNEParallel. Every shard returns its
// lexicographically first dominating orbit's witness (or nil); the overall
// result is the witness of the lowest-numbered non-empty shard. Shards
// with lower indices hold lexicographically smaller representatives, so
// that witness is exactly the serial search's — byte-identical at any
// worker count. workers < 1 means runtime.NumCPU().
func FindParetoImprovementParallel(g *Game, a *Alloc, eps float64, maxProfiles int64, workers int) (*Alloc, error) {
	if err := g.CheckAlloc(a); err != nil {
		return nil, err
	}
	rows, err := strategyRows(g)
	if err != nil {
		return nil, err
	}
	if err := checkProfileCap(g.Users(), int64(len(rows)), maxProfiles); err != nil {
		return nil, err
	}
	base := g.Utilities(a)
	pool := workers
	if pool < 1 {
		pool = runtime.NumCPU()
	}
	depth := 1
	if g.Users() >= 2 && len(rows) < 2*pool {
		depth = 2
	}
	shardCount := len(rows)
	if depth == 2 {
		shardCount = len(rows) * len(rows)
	}
	oe := g.orbitEnumerator(rows)
	shards, _, err := engine.Map(shardCount, func(job int, _ *des.RNG) (*Alloc, error) {
		digits := make([]int, depth)
		digits[0] = job
		if depth == 2 {
			digits[0], digits[1] = job/len(rows), job%len(rows)
		}
		w, err := oe.ParetoImprovementShard(digits, base, eps)
		if err != nil {
			return nil, fmt.Errorf("core: pareto shard %d: %w", job, err)
		}
		return w, nil
	}, engine.Workers(workers))
	if err != nil {
		return nil, err
	}
	for _, w := range shards {
		if w != nil {
			return w, nil
		}
	}
	return nil, nil
}

// forEachRest walks the cartesian product of strategy rows for users
// pinned..N-1 on top of a (users 0..pinned-1 already set), calling fn with
// the reused allocation, which fn must treat as read-only. Matches the
// serial ForEachAlloc iteration order for fixed leading digits, including
// its odometer-awareness (see ProductWalk).
func forEachRest(a *Alloc, rows [][]int, pinned int, sizes []int, fn func(*Alloc) bool) error {
	return ProductWalk(a, pinned, sizes, func(_, ri int) []int { return rows[ri] }, "core", fn)
}
