package core

import (
	"strings"
	"testing"
)

// figure1Matrix is the exact strategy matrix of the paper's Figures 1-2:
// |N| = 4 users, k = 4 radios, |C| = 5 channels. Loads: 4, 3, 2, 3, 1.
// Users u2 and u4 deploy fewer than k radios.
func figure1Matrix() [][]int {
	return [][]int{
		{1, 1, 1, 1, 0}, // u1 (k=4)
		{1, 0, 1, 0, 1}, // u2 (k=3)
		{1, 2, 0, 1, 0}, // u3 (k=4, two radios on c2)
		{1, 0, 0, 1, 0}, // u4 (k=2)
	}
}

func mustAlloc(t *testing.T, m [][]int) *Alloc {
	t.Helper()
	a, err := AllocFromMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewAllocZero(t *testing.T) {
	a, err := NewAlloc(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Users() != 3 || a.Channels() != 4 {
		t.Fatalf("dims %dx%d, want 3x4", a.Users(), a.Channels())
	}
	for i := 0; i < 3; i++ {
		for c := 0; c < 4; c++ {
			if a.Radios(i, c) != 0 {
				t.Fatalf("fresh alloc non-zero at (%d,%d)", i, c)
			}
		}
	}
	if a.TotalRadios() != 0 {
		t.Fatalf("TotalRadios = %d, want 0", a.TotalRadios())
	}
}

func TestNewAllocErrors(t *testing.T) {
	if _, err := NewAlloc(0, 1); err == nil {
		t.Error("0 users should error")
	}
	if _, err := NewAlloc(1, 0); err == nil {
		t.Error("0 channels should error")
	}
}

func TestAllocFromMatrixFigure1(t *testing.T) {
	a := mustAlloc(t, figure1Matrix())
	wantLoads := []int{4, 3, 2, 3, 1}
	for c, want := range wantLoads {
		if got := a.Load(c); got != want {
			t.Errorf("load(c%d) = %d, want %d", c+1, got, want)
		}
	}
	// Totals from the paper: ku1=4, ku2=3, ku3=4, ku4=2.
	wantTotals := []int{4, 3, 4, 2}
	for i, want := range wantTotals {
		if got := a.UserTotal(i); got != want {
			t.Errorf("userTotal(u%d) = %d, want %d", i+1, got, want)
		}
	}
	if a.TotalRadios() != 13 {
		t.Errorf("TotalRadios = %d, want 13", a.TotalRadios())
	}
}

func TestAllocFromMatrixErrors(t *testing.T) {
	if _, err := AllocFromMatrix(nil); err == nil {
		t.Error("nil matrix should error")
	}
	if _, err := AllocFromMatrix([][]int{{}}); err == nil {
		t.Error("empty row should error")
	}
	if _, err := AllocFromMatrix([][]int{{1, 0}, {1}}); err == nil {
		t.Error("ragged matrix should error")
	}
	if _, err := AllocFromMatrix([][]int{{-1}}); err == nil {
		t.Error("negative entry should error")
	}
}

func TestSetRowUpdatesLoads(t *testing.T) {
	a := mustAlloc(t, figure1Matrix())
	if err := a.SetRow(2, []int{0, 0, 1, 1, 2}); err != nil {
		t.Fatal(err)
	}
	wantLoads := []int{3, 1, 3, 3, 3}
	for c, want := range wantLoads {
		if got := a.Load(c); got != want {
			t.Errorf("load(c%d) = %d, want %d", c+1, got, want)
		}
	}
}

func TestSetRowErrors(t *testing.T) {
	a := mustAlloc(t, figure1Matrix())
	if err := a.SetRow(-1, []int{0, 0, 0, 0, 0}); err == nil {
		t.Error("negative user should error")
	}
	if err := a.SetRow(9, []int{0, 0, 0, 0, 0}); err == nil {
		t.Error("out-of-range user should error")
	}
	if err := a.SetRow(0, []int{0, 0}); err == nil {
		t.Error("short row should error")
	}
	if err := a.SetRow(0, []int{0, 0, 0, 0, -2}); err == nil {
		t.Error("negative entry should error")
	}
	// A failed SetRow must leave the allocation untouched.
	if a.Load(0) != 4 {
		t.Error("failed SetRow mutated loads")
	}
}

func TestSetRowCopiesInput(t *testing.T) {
	a := mustAlloc(t, figure1Matrix())
	row := []int{1, 0, 0, 0, 0}
	if err := a.SetRow(0, row); err != nil {
		t.Fatal(err)
	}
	row[0] = 99
	if a.Radios(0, 0) != 1 {
		t.Fatal("SetRow aliased caller slice")
	}
}

func TestAddAndMove(t *testing.T) {
	a := mustAlloc(t, figure1Matrix())
	if err := a.Add(3, 4, 1); err != nil {
		t.Fatal(err)
	}
	if a.Radios(3, 4) != 1 || a.Load(4) != 2 {
		t.Fatalf("Add failed: radios=%d load=%d", a.Radios(3, 4), a.Load(4))
	}
	if err := a.Move(3, 4, 2); err != nil {
		t.Fatal(err)
	}
	if a.Radios(3, 4) != 0 || a.Radios(3, 2) != 1 {
		t.Fatal("Move did not relocate the radio")
	}
	if a.Load(4) != 1 || a.Load(2) != 3 {
		t.Fatalf("Move loads wrong: c5=%d c3=%d", a.Load(4), a.Load(2))
	}
}

func TestAddErrors(t *testing.T) {
	a := mustAlloc(t, figure1Matrix())
	if err := a.Add(-1, 0, 1); err == nil {
		t.Error("bad user should error")
	}
	if err := a.Add(0, -1, 1); err == nil {
		t.Error("bad channel should error")
	}
	if err := a.Add(0, 4, -1); err == nil {
		t.Error("going negative should error")
	}
}

func TestMoveErrors(t *testing.T) {
	a := mustAlloc(t, figure1Matrix())
	if err := a.Move(0, 2, 2); err == nil {
		t.Error("self-move should error")
	}
	if err := a.Move(0, 4, 0); err == nil {
		t.Error("moving a radio the user does not have should error")
	}
	// u1 has no radio on c5 (index 4); the failed move must not corrupt state.
	if a.Load(4) != 1 || a.Load(0) != 4 {
		t.Error("failed move corrupted loads")
	}
}

func TestMoveRollbackOnBadTarget(t *testing.T) {
	a := mustAlloc(t, figure1Matrix())
	if err := a.Move(0, 0, 99); err == nil {
		t.Fatal("move to invalid channel should error")
	}
	if a.Radios(0, 0) != 1 || a.Load(0) != 4 {
		t.Fatal("failed move did not roll back the source")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := mustAlloc(t, figure1Matrix())
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone differs from original")
	}
	if err := b.Add(0, 4, 1); err != nil {
		t.Fatal(err)
	}
	if a.Equal(b) {
		t.Fatal("mutating clone affected original comparison")
	}
	if a.Radios(0, 4) != 0 {
		t.Fatal("clone shares storage with original")
	}
}

func TestEqual(t *testing.T) {
	a := mustAlloc(t, figure1Matrix())
	if a.Equal(nil) {
		t.Error("Equal(nil) should be false")
	}
	small, err := NewAlloc(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(small) {
		t.Error("different dims should not be equal")
	}
}

func TestMatrixDeepCopy(t *testing.T) {
	a := mustAlloc(t, figure1Matrix())
	m := a.Matrix()
	m[0][0] = 99
	if a.Radios(0, 0) == 99 {
		t.Fatal("Matrix returned aliased storage")
	}
}

func TestMinMaxLoad(t *testing.T) {
	a := mustAlloc(t, figure1Matrix())
	if load, c := a.MaxLoad(); load != 4 || c != 0 {
		t.Errorf("MaxLoad = (%d, %d), want (4, 0)", load, c)
	}
	if load, c := a.MinLoad(); load != 1 || c != 4 {
		t.Errorf("MinLoad = (%d, %d), want (1, 4)", load, c)
	}
}

func TestChannelSetsFigure1(t *testing.T) {
	// Paper §3: "In Figure 1, Cmax = {c1}, Cmin = {c5} and Crem = {c2, c3, c4}."
	a := mustAlloc(t, figure1Matrix())
	cmax, cmin, crem := a.ChannelSets()
	if len(cmax) != 1 || cmax[0] != 0 {
		t.Errorf("Cmax = %v, want [0]", cmax)
	}
	if len(cmin) != 1 || cmin[0] != 4 {
		t.Errorf("Cmin = %v, want [4]", cmin)
	}
	if len(crem) != 3 || crem[0] != 1 || crem[1] != 2 || crem[2] != 3 {
		t.Errorf("Crem = %v, want [1 2 3]", crem)
	}
}

func TestChannelSetsFlat(t *testing.T) {
	a := mustAlloc(t, [][]int{
		{1, 1, 0},
		{0, 0, 2},
		{1, 1, 0},
	})
	cmax, cmin, crem := a.ChannelSets()
	if len(cmax) != 3 || len(cmin) != 3 {
		t.Errorf("flat allocation: Cmax=%v Cmin=%v, want all channels in both", cmax, cmin)
	}
	if len(crem) != 0 {
		t.Errorf("flat allocation: Crem=%v, want empty", crem)
	}
}

func TestLoadsCopy(t *testing.T) {
	a := mustAlloc(t, figure1Matrix())
	loads := a.Loads()
	loads[0] = 99
	if a.Load(0) == 99 {
		t.Fatal("Loads returned aliased storage")
	}
}

func TestRowCopy(t *testing.T) {
	a := mustAlloc(t, figure1Matrix())
	row := a.Row(0)
	row[0] = 99
	if a.Radios(0, 0) == 99 {
		t.Fatal("Row returned aliased storage")
	}
}

func TestStringRendering(t *testing.T) {
	a := mustAlloc(t, figure1Matrix())
	s := a.String()
	if !strings.Contains(s, "u1") || !strings.Contains(s, "c5") || !strings.Contains(s, "load") {
		t.Fatalf("rendering missing expected labels:\n%s", s)
	}
	lines := strings.Split(s, "\n")
	if len(lines) != 6 { // header + 4 users + load row
		t.Fatalf("rendering has %d lines, want 6:\n%s", len(lines), s)
	}
}
