package core

import "fmt"

// Violation is a concrete witness that an allocation fails one of the
// paper's necessary NE conditions. Users and channels are 0-based indices;
// -1 marks "not applicable".
type Violation struct {
	Rule     string // "lemma1", "lemma2", "lemma3", "lemma4", "prop1", "thm1-cond2", "fact1"
	User     int
	ChannelB int
	ChannelC int
	Detail   string
}

// String renders the violation with 1-based user/channel labels matching the
// paper's figures.
func (v *Violation) String() string {
	if v == nil {
		return "<no violation>"
	}
	s := v.Rule
	if v.User >= 0 {
		s += fmt.Sprintf(" user u%d", v.User+1)
	}
	if v.ChannelB >= 0 {
		s += fmt.Sprintf(" b=c%d", v.ChannelB+1)
	}
	if v.ChannelC >= 0 {
		s += fmt.Sprintf(" c=c%d", v.ChannelC+1)
	}
	if v.Detail != "" {
		s += ": " + v.Detail
	}
	return s
}

// CheckLemma1 tests the paper's Lemma 1: in a NE every user deploys all k
// radios. It returns a witness for the first under-deploying user, or nil.
func CheckLemma1(g *Game, a *Alloc) *Violation {
	for i := 0; i < a.Users(); i++ {
		if total := a.UserTotal(i); total < g.Radios() {
			return &Violation{
				Rule: "lemma1", User: i, ChannelB: -1, ChannelC: -1,
				Detail: fmt.Sprintf("deploys %d of %d radios", total, g.Radios()),
			}
		}
	}
	return nil
}

// CheckLemma2 tests Lemma 2: no NE can contain a user i and channels b, c
// with k_{i,b} > 0, k_{i,c} = 0 and δ_{b,c} = k_b - k_c > 1. Returns a
// witness or nil.
func CheckLemma2(g *Game, a *Alloc) *Violation {
	for i := 0; i < a.Users(); i++ {
		for b := 0; b < a.Channels(); b++ {
			if a.Radios(i, b) == 0 {
				continue
			}
			for c := 0; c < a.Channels(); c++ {
				if a.Radios(i, c) != 0 {
					continue
				}
				if delta := a.Load(b) - a.Load(c); delta > 1 {
					return &Violation{
						Rule: "lemma2", User: i, ChannelB: b, ChannelC: c,
						Detail: fmt.Sprintf("δ=%d > 1 with k_{i,b}=%d, k_{i,c}=0", delta, a.Radios(i, b)),
					}
				}
			}
		}
	}
	return nil
}

// CheckLemma3 tests Lemma 3: no NE can contain a user i and channels b, c
// with k_{i,b} > 1, k_{i,c} = 0 and δ_{b,c} = 1.
func CheckLemma3(g *Game, a *Alloc) *Violation {
	for i := 0; i < a.Users(); i++ {
		for b := 0; b < a.Channels(); b++ {
			if a.Radios(i, b) <= 1 {
				continue
			}
			for c := 0; c < a.Channels(); c++ {
				if a.Radios(i, c) != 0 {
					continue
				}
				if a.Load(b)-a.Load(c) == 1 {
					return &Violation{
						Rule: "lemma3", User: i, ChannelB: b, ChannelC: c,
						Detail: fmt.Sprintf("k_{i,b}=%d > 1, k_{i,c}=0, δ=1", a.Radios(i, b)),
					}
				}
			}
		}
	}
	return nil
}

// CheckLemma4 tests Lemma 4: no NE can contain a user i and channels b, c
// with γ_{i,b,c} = k_{i,b} - k_{i,c} >= 2, k_{i,c} = 0 and δ_{b,c} = 0.
func CheckLemma4(g *Game, a *Alloc) *Violation {
	for i := 0; i < a.Users(); i++ {
		for b := 0; b < a.Channels(); b++ {
			if a.Radios(i, b) < 2 {
				continue
			}
			for c := 0; c < a.Channels(); c++ {
				if a.Radios(i, c) != 0 || b == c {
					continue
				}
				if a.Load(b) == a.Load(c) {
					return &Violation{
						Rule: "lemma4", User: i, ChannelB: b, ChannelC: c,
						Detail: fmt.Sprintf("γ=%d >= 2, k_{i,c}=0, δ=0", a.Radios(i, b)),
					}
				}
			}
		}
	}
	return nil
}

// CheckProposition1 tests Proposition 1: in a NE, δ_{b,c} <= 1 for all
// channel pairs (load balancing).
func CheckProposition1(g *Game, a *Alloc) *Violation {
	maxLoad, b := a.MaxLoad()
	minLoad, c := a.MinLoad()
	if maxLoad-minLoad > 1 {
		return &Violation{
			Rule: "prop1", User: -1, ChannelB: b, ChannelC: c,
			Detail: fmt.Sprintf("loads differ by %d > 1", maxLoad-minLoad),
		}
	}
	return nil
}

// CheckAllLemmas evaluates Lemmas 1-4 and Proposition 1 and returns every
// violation found (one witness per rule). This powers the paper's Figure-1
// walk-through, which points out the specific lemma violations in that
// example allocation.
func CheckAllLemmas(g *Game, a *Alloc) []*Violation {
	var out []*Violation
	for _, check := range []func(*Game, *Alloc) *Violation{
		CheckLemma1, CheckLemma2, CheckLemma3, CheckLemma4, CheckProposition1,
	} {
		if v := check(g, a); v != nil {
			out = append(out, v)
		}
	}
	return out
}

// TheoremNE applies Theorem 1 (plus Fact 1 for the no-conflict regime) to
// decide whether a is a Nash equilibrium, returning a witness when it is
// not.
//
// The theorem assumes a strictly positive rate function on every reachable
// load; under that assumption it is exact for constant R. For strictly
// decreasing R the paper's sufficiency argument only covers C_max -> C_min
// single-radio moves; use IsNashEquilibrium (the best-response oracle) as
// ground truth and this checker as the paper's characterisation. Experiment
// E8 quantifies where the two diverge.
//
// One condition is added beyond the paper's statement: an exception user's
// doubled C_min channel must not admit a profitable spare-radio move at
// constant R (see exceptionSpareMove). Without it the paper's structural
// conditions wrongly accept small-d_min allocations — e.g. a user owning
// both radios of a load-2 minimum channel can always pull one off for
// free. Like the paper's own conditions, the check depends only on the
// load profile, not on the rate function.
func TheoremNE(g *Game, a *Alloc) (bool, *Violation) {
	if err := g.CheckAlloc(a); err != nil {
		return false, &Violation{Rule: "invalid", User: -1, ChannelB: -1, ChannelC: -1, Detail: err.Error()}
	}
	// Lemma 1 is a standing necessary condition in both regimes.
	if v := CheckLemma1(g, a); v != nil {
		return false, v
	}

	if !g.HasConflict() {
		// Fact 1 regime (|N|·k <= |C|): NE iff no channel is shared.
		for c := 0; c < a.Channels(); c++ {
			if a.Load(c) > 1 {
				return false, &Violation{
					Rule: "fact1", User: -1, ChannelB: c, ChannelC: -1,
					Detail: fmt.Sprintf("channel shared by %d radios with spare channels available", a.Load(c)),
				}
			}
		}
		return true, nil
	}

	// Condition 1: loads balanced within one radio.
	if v := CheckProposition1(g, a); v != nil {
		return false, v
	}

	// Condition 2: per-user spread.
	_, cmin, _ := a.ChannelSets()
	maxLoad, _ := a.MaxLoad()
	minLoad, _ := a.MinLoad()
	for i := 0; i < a.Users(); i++ {
		if hasEmptyMinChannel(a, i, cmin) {
			// Regular user: at most one radio anywhere.
			for c := 0; c < a.Channels(); c++ {
				if a.Radios(i, c) > 1 {
					return false, &Violation{
						Rule: "thm1-cond2", User: i, ChannelB: c, ChannelC: -1,
						Detail: fmt.Sprintf("k_{i,c}=%d > 1 while an empty C_min channel exists", a.Radios(i, c)),
					}
				}
			}
			continue
		}
		// Exception user j: no empty C_min channel. At most one radio on any
		// maximum-load channel, and counts on C_min channels within one of
		// each other (γ <= 1).
		for c := 0; c < a.Channels(); c++ {
			if a.Load(c) == maxLoad && maxLoad != minLoad && a.Radios(i, c) > 1 {
				return false, &Violation{
					Rule: "thm1-cond2", User: i, ChannelB: c, ChannelC: -1,
					Detail: fmt.Sprintf("exception user has k_{i,c}=%d > 1 on a C_max channel", a.Radios(i, c)),
				}
			}
		}
		if maxLoad == minLoad {
			// Flat loads: C_max = C_min = C, and covering every channel
			// within the budget k <= |C| forces exactly one radio each.
			for c := 0; c < a.Channels(); c++ {
				if a.Radios(i, c) > 1 {
					return false, &Violation{
						Rule: "thm1-cond2", User: i, ChannelB: c, ChannelC: -1,
						Detail: fmt.Sprintf("k_{i,c}=%d > 1 in a flat allocation", a.Radios(i, c)),
					}
				}
			}
			continue
		}
		for x := 0; x < len(cmin); x++ {
			for y := x + 1; y < len(cmin); y++ {
				d := a.Radios(i, cmin[x]) - a.Radios(i, cmin[y])
				if d < 0 {
					d = -d
				}
				if d > 1 {
					return false, &Violation{
						Rule: "thm1-cond2", User: i, ChannelB: cmin[x], ChannelC: cmin[y],
						Detail: fmt.Sprintf("exception user has γ=%d > 1 between C_min channels", d),
					}
				}
			}
		}
		// The doubled C_min channel must not admit a profitable spare-radio
		// move (evaluated at constant R, the theorem's exactness regime).
		// With small minimum loads the doubled channel is mostly the
		// exception user's own — e.g. at d_min = 2 both radios are his, so
		// pulling one off keeps the channel's full rate and earns elsewhere
		// for free. The structural conditions above miss this; the paper's
		// Figure 4 sits exactly on the boundary (d_min = 4, gain 0).
		if v := exceptionSpareMove(a, i); v != nil {
			return false, v
		}
	}
	return true, nil
}

// exceptionSpareMove checks every single-radio move off an exception
// user's doubled channel under constant R: moving one of own >= 2 radios
// from channel b to channel c changes the user's utility by
//
//	(own-1)/(d_b-1) - own/d_b + (m_c+1)/(d_c+1) - m_c/d_c
//
// (in units of R). A strictly positive change is a deviation, so the
// allocation is not a NE. The test depends only on loads and own radio
// counts, keeping the checker's conditions rate-independent.
func exceptionSpareMove(a *Alloc, i int) *Violation {
	for b := 0; b < a.Channels(); b++ {
		own := a.Radios(i, b)
		if own < 2 {
			continue
		}
		lossB := float64(own-1)/float64(a.Load(b)-1) - float64(own)/float64(a.Load(b))
		for c := 0; c < a.Channels(); c++ {
			if c == b {
				continue
			}
			m, e := a.Radios(i, c), a.Load(c)
			gain := lossB + float64(m+1)/float64(e+1) - float64(m)/float64(e)
			if gain > DefaultEps {
				return &Violation{
					Rule: "thm1-cond2", User: i, ChannelB: b, ChannelC: c,
					Detail: fmt.Sprintf(
						"exception user gains %+.4f·R moving a spare radio c%d -> c%d", gain, b+1, c+1),
				}
			}
		}
	}
	return nil
}

// hasEmptyMinChannel reports whether user i has no radio on at least one
// minimum-load channel (the paper's "∃c ∈ C_min with k_{j,c} = 0").
func hasEmptyMinChannel(a *Alloc, i int, cmin []int) bool {
	for _, c := range cmin {
		if a.Radios(i, c) == 0 {
			return true
		}
	}
	return false
}
