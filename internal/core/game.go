package core

import (
	"fmt"
	"sync"

	"github.com/multiradio/chanalloc/internal/ratefn"
)

// Game fixes the parameters of one channel allocation game: |N| users, |C|
// channels, k radios per user and the common rate function R. Construction
// precomputes a RateView — R(0..|N|·k) plus the best-response share plane —
// so the hot paths (utilities, welfare, potential, the best-response DP)
// read tables instead of calling through the rate interface. The rate
// function must therefore be pure; it is sampled once in NewGame.
type Game struct {
	users    int
	channels int
	radios   int
	rate     ratefn.Func
	view     *RateView

	// All-placed welfare optimum, memoised on first use (see
	// allPlacedOptimum): written once under optOnce, read lock-free after,
	// like the rate view tables.
	optOnce  sync.Once
	optVal   float64
	optLoads []int
}

// NewGame validates and constructs a game. The paper's standing assumption
// k <= |C| is enforced here.
func NewGame(users, channels, radios int, rate ratefn.Func) (*Game, error) {
	switch {
	case users < 1:
		return nil, fmt.Errorf("core: users = %d, want >= 1", users)
	case channels < 1:
		return nil, fmt.Errorf("core: channels = %d, want >= 1", channels)
	case radios < 1:
		return nil, fmt.Errorf("core: radios = %d, want >= 1", radios)
	case radios > channels:
		return nil, fmt.Errorf("core: radios per user (%d) exceeds channels (%d); the paper requires k <= |C|", radios, channels)
	case rate == nil:
		return nil, fmt.Errorf("core: nil rate function")
	}
	return &Game{
		users:    users,
		channels: channels,
		radios:   radios,
		rate:     rate,
		view:     NewRateView(rate, users*radios, radios),
	}, nil
}

// Users returns |N|.
func (g *Game) Users() int { return g.users }

// Channels returns |C|.
func (g *Game) Channels() int { return g.channels }

// Radios returns k, the per-user radio budget.
func (g *Game) Radios() int { return g.radios }

// Rate returns the game's rate function.
func (g *Game) Rate() ratefn.Func { return g.rate }

// View returns the game's precomputed rate view (R table + share plane over
// the bounded load domain). It is read-only and safe to share across
// goroutines.
func (g *Game) View() *RateView { return g.view }

// HasConflict reports whether |N|·k > |C|, the regime of the paper's §3
// analysis (otherwise Fact 1 applies: radios simply spread out).
func (g *Game) HasConflict() bool { return g.users*g.radios > g.channels }

// NewEmptyAlloc returns an all-zero allocation with this game's dimensions.
func (g *Game) NewEmptyAlloc() *Alloc {
	a, err := NewAlloc(g.users, g.channels)
	if err != nil {
		// Game dimensions were validated in NewGame.
		panic("core: invalid game dimensions: " + err.Error())
	}
	return a
}

// CheckAlloc verifies that a is a legal strategy matrix for this game:
// matching dimensions and every user within the k-radio budget.
func (g *Game) CheckAlloc(a *Alloc) error {
	if a == nil {
		return fmt.Errorf("core: nil allocation")
	}
	if a.Users() != g.users || a.Channels() != g.channels {
		return fmt.Errorf("core: allocation is %dx%d, game is %dx%d",
			a.Users(), a.Channels(), g.users, g.channels)
	}
	for i := 0; i < g.users; i++ {
		if total := a.UserTotal(i); total > g.radios {
			return fmt.Errorf("core: user %d deploys %d radios, budget is %d", i, total, g.radios)
		}
	}
	return nil
}

// Utility computes U_i(S) per Eq. 3: Σ_c k_{i,c}/k_c · R(k_c). Rates come
// from the precomputed table (identical values to calling R directly).
func (g *Game) Utility(a *Alloc, i int) float64 {
	return g.view.UtilityOf(a, i)
}

// Utilities computes every user's utility.
func (g *Game) Utilities(a *Alloc) []float64 {
	out := make([]float64, a.Users())
	for i := range out {
		out[i] = g.Utility(a, i)
	}
	return out
}

// UtilitiesInto is Utilities into the workspace's reusable buffer: zero
// steady-state allocations; the returned slice aliases ws and is valid
// until its next Utils use.
func (g *Game) UtilitiesInto(ws *Workspace, a *Alloc) []float64 {
	return g.view.UtilitiesInto(ws, a)
}

// allPlacedOptimum computes the all-placed welfare optimum once per game
// and serves the memo afterwards: PriceOfAnarchy sweeps over many
// allocations of one game pay the O(|C|·T²) DP a single time. The returned
// load slice is the memo itself — internal callers must not mutate it; the
// public OptimalWelfareAllPlaced copies.
func (g *Game) allPlacedOptimum() (float64, []int) {
	g.optOnce.Do(func() {
		val, loads := OptimalLoadWelfareInto(NewWorkspace(), g.view.Frozen(), g.channels, g.users*g.radios)
		g.optVal = val
		g.optLoads = append([]int(nil), loads...)
	})
	return g.optVal, g.optLoads
}

// Welfare computes the total rate achieved by all users,
// Σ_{c : k_c > 0} R(k_c), which equals Σ_i U_i(S).
func (g *Game) Welfare(a *Alloc) float64 {
	var w float64
	for c := 0; c < a.Channels(); c++ {
		if kc := a.Load(c); kc > 0 {
			w += g.view.RateAt(kc)
		}
	}
	return w
}

// Potential evaluates the exact congestion potential
// Φ(S) = Σ_c Σ_{j=1}^{k_c} R(j)/j via the precomputed rate table, in the
// same term order (and hence bit-identical) as dynamics.Potential with the
// game's own rate function.
func (g *Game) Potential(a *Alloc) float64 {
	var phi float64
	for c := 0; c < a.Channels(); c++ {
		for j := 1; j <= a.Load(c); j++ {
			phi += g.view.RateAt(j) / float64(j)
		}
	}
	return phi
}

// BenefitOfMove computes Δ of Eq. 7: the utility change for user i from
// moving one radio from channel b to channel c, holding everyone else fixed.
// It requires k_{i,b} > 0 and b != c.
func (g *Game) BenefitOfMove(a *Alloc, i, b, c int) (float64, error) {
	if b == c {
		return 0, fmt.Errorf("core: benefit of moving %d -> %d: channels must differ", b, c)
	}
	if b < 0 || b >= a.Channels() || c < 0 || c >= a.Channels() {
		return 0, fmt.Errorf("core: channel out of range (b=%d, c=%d, |C|=%d)", b, c, a.Channels())
	}
	if i < 0 || i >= a.Users() {
		return 0, fmt.Errorf("core: user %d out of range [0, %d)", i, a.Users())
	}
	kib := a.Radios(i, b)
	if kib == 0 {
		return 0, fmt.Errorf("core: user %d has no radio on channel %d", i, b)
	}
	kic := a.Radios(i, c)
	kb, kc := a.Load(b), a.Load(c)

	delta := -g.view.ShareAt(kib, kb) - g.view.ShareAt(kic, kc)
	delta += g.view.ShareAt(kib-1, kb-1) + g.view.ShareAt(kic+1, kc+1)
	return delta, nil
}

// share returns own/total · R(total), with the 0/0 convention share(0,0)=0.
func share(own, total int, r ratefn.Func) float64 {
	if own == 0 || total == 0 {
		return 0
	}
	return float64(own) / float64(total) * r.Rate(total)
}
