package core

import (
	"github.com/multiradio/chanalloc/internal/ratefn"
)

// Table-size caps for the precomputed views. A game whose load domain (or
// share plane) exceeds the cap keeps a passthrough view that falls back to
// the rate function's own method — the fast paths stay correct, they just
// lose the table reads. The caps are far above every practical game in the
// experiment suite (256 users × 32 radios needs ~270k share entries).
const (
	maxRateTableLen  = 1 << 21
	maxShareTableLen = 1 << 22
)

// RateView is a read-only precomputed view of a rate function over the
// bounded load domain of one game. The total load on any channel of a legal
// allocation never exceeds the total number of radios, so R(0..maxLoad) and
// the per-channel DP values v(m, x) = x/(m+x) · R(m+x) (own radios x against
// external load m) both live in finite tables computed once at game
// construction. Lookups are plain slice reads with no locking, so one view
// is shared read-only across all engine workers; every tabulated value is
// produced by the same floating-point expression as the on-demand code
// path, keeping results bit-identical whether or not the table is hit.
//
// Rate functions are assumed pure (the ratefn.Func contract): the view
// samples R once and serves the sampled values forever.
type RateView struct {
	rate    ratefn.Func
	maxLoad int // table covers loads 0..maxLoad; -1 when passthrough
	maxOwn  int // share rows cover own radios 0..maxOwn
	maxExt  int // share rows cover external loads 0..maxExt; -1 when absent
	table   []float64
	share   []float64 // row m, entry x: share(x, m+x); stride maxOwn+1
}

// NewRateView precomputes R(0..maxLoad) and the share plane for up to
// maxOwn own radios against external loads 0..maxLoad-maxOwn. Either table
// is skipped (falling back to direct evaluation) when its size would exceed
// the internal caps or when the bounds are non-positive.
func NewRateView(rate ratefn.Func, maxLoad, maxOwn int) *RateView {
	rv := &RateView{rate: rate, maxLoad: -1, maxOwn: maxOwn, maxExt: -1}
	if rate == nil || maxLoad < 0 || maxLoad+1 > maxRateTableLen {
		return rv
	}
	rv.maxLoad = maxLoad
	rv.table = make([]float64, maxLoad+1)
	for l := 0; l <= maxLoad; l++ {
		rv.table[l] = rate.Rate(l)
	}
	if maxOwn < 0 || maxOwn > maxLoad {
		return rv
	}
	maxExt := maxLoad - maxOwn
	stride := maxOwn + 1
	if (maxExt+1)*stride > maxShareTableLen {
		return rv
	}
	rv.maxExt = maxExt
	rv.share = make([]float64, (maxExt+1)*stride)
	for m := 0; m <= maxExt; m++ {
		row := rv.share[m*stride : (m+1)*stride]
		for x := 1; x <= maxOwn; x++ {
			// Same expression as ShareAt's table path: bit-identical to
			// share(x, m+x, rate) because table[m+x] is rate.Rate(m+x).
			row[x] = float64(x) / float64(m+x) * rv.table[m+x]
		}
	}
	return rv
}

// Rate returns the underlying rate function.
func (rv *RateView) Rate() ratefn.Func { return rv.rate }

// frozenFunc adapts a RateView to ratefn.Func for code that consumes a rate
// function (the welfare DP, the potential): table-backed reads, identical
// values to the underlying function.
type frozenFunc struct{ rv *RateView }

func (f frozenFunc) Rate(k int) float64 { return f.rv.RateAt(k) }
func (f frozenFunc) Name() string       { return f.rv.rate.Name() }

// Frozen returns the view as a lock-free ratefn.Func: every Rate call is a
// table read within the view's domain (and a passthrough beyond it).
func (rv *RateView) Frozen() ratefn.Func { return frozenFunc{rv} }

// RateAt returns R(l), reading the precomputed table when l is within the
// view's domain and falling back to the rate function otherwise.
func (rv *RateView) RateAt(l int) float64 {
	if uint(l) < uint(len(rv.table)) {
		return rv.table[l]
	}
	return rv.rate.Rate(l)
}

// ShareAt returns own/total · R(total) with the share(0,·)=share(·,0)=0
// convention, using the rate table when total is within the domain.
func (rv *RateView) ShareAt(own, total int) float64 {
	if own == 0 || total == 0 {
		return 0
	}
	if uint(total) < uint(len(rv.table)) {
		return float64(own) / float64(total) * rv.table[total]
	}
	return share(own, total, rv.rate)
}

// ScreenSingleMoves is the Eq. 7 screen: it looks for a single-radio
// change of user i whose utility delta exceeds eps — either moving one
// radio from an occupied channel (from >= 0) to channel to, or (when the
// user deploys fewer than budget radios) adding an idle spare to channel
// to (from == -1). It is a conservative O(|C|²) reject-only filter for the
// NE oracle: a candidate is re-evaluated with MovedRowValue (and, failing
// that, the full best-response DP) before any verdict changes, so the
// screen's own floating-point grouping cannot flip results.
func (rv *RateView) ScreenSingleMoves(a *Alloc, i, budget int, eps float64) (from, to int, ok bool) {
	C := a.Channels()
	total := 0
	for b := 0; b < C; b++ {
		kib := a.Radios(i, b)
		if kib == 0 {
			continue
		}
		total += kib
		kb := a.Load(b)
		lossB := rv.ShareAt(kib-1, kb-1) - rv.ShareAt(kib, kb)
		for c := 0; c < C; c++ {
			if c == b {
				continue
			}
			kic := a.Radios(i, c)
			kc := a.Load(c)
			if lossB+rv.ShareAt(kic+1, kc+1)-rv.ShareAt(kic, kc) > eps {
				return b, c, true
			}
		}
	}
	if total < budget {
		// Spare-radio screen (Lemma 1 direction): deploying one more radio
		// on channel c changes the user's utility by the Eq. 7 gain term
		// alone. Always profitable under positive rates, so under-deployed
		// profiles exit here instead of reaching the full DP pass.
		for c := 0; c < C; c++ {
			kic := a.Radios(i, c)
			kc := a.Load(c)
			if rv.ShareAt(kic+1, kc+1)-rv.ShareAt(kic, kc) > eps {
				return -1, c, true
			}
		}
	}
	return -1, -1, false
}

// MovedRowValue evaluates user i's row after a single-radio change (from
// -> to; from == -1 adds a spare) in exactly the floating-point fold the
// best-response DP uses: channels accumulate right to left, each step
// computing share + accumulator. Float addition is monotone, so the DP's
// optimum f[0][k] is always >= this value — meaning a row value that beats
// the oracle threshold proves the DP would too, and the screened oracle can
// reject without running the DP while staying bit-identical in verdict.
func (rv *RateView) MovedRowValue(a *Alloc, i, from, to int) float64 {
	var val float64
	for c := a.Channels() - 1; c >= 0; c-- {
		own := a.Radios(i, c)
		total := a.Load(c)
		switch c {
		case from:
			own--
			total--
		case to:
			own++
			total++
		}
		val = rv.ShareAt(own, total) + val
	}
	return val
}

// Workspace holds the reusable scratch of the allocation-free kernels: the
// best-response DP's per-channel value rows v and suffix-value slab f, the
// welfare DP's rate/suffix/load slabs, external-load, strategy-row and
// per-user utility buffers. All slabs are flat single allocations, grown on
// demand and reused across calls, so the *Into / *With entry points run
// with zero steady-state allocations. It also hosts the incremental screen
// cache used by the canonical enumeration walks (see ResetScreenCache).
//
// A Workspace is not safe for concurrent use: hold one per goroutine
// (engine workers, dynamics runs, enumeration shards each own one).
type Workspace struct {
	v     []float64 // C rows of stride capK+1: v[c][x]
	f     []float64 // C+1 rows of stride capK+1: f[c][b]
	ext   []int     // external loads, len capC
	row   []int     // result strategy row, len capC
	marks []bool    // per-user oracle bookkeeping, see userMarks
	utils []float64 // per-user utility buffer, see Utils
	capC  int
	capK  int

	// Welfare DP slabs (OptimalLoadWelfareInto): the precomputed rate row
	// R(0..T), the C rows of suffix values with stride T+1, and the result
	// load vector. Sized independently of the best-response slabs because
	// the welfare domain is totals, not budgets.
	wrate []float64
	wf    []float64
	wload []int

	// Incremental screen cache (ScreenedNEIncremental). A walker that
	// mutates one row at a time calls ScreenStep once per profile, then
	// MarkRowChanged / MarkLoadChanged for every digit and channel the
	// step touched; the oracle then revalidates only the cached per-user
	// screen states those changes could have disturbed.
	scState   []uint8 // per-user state: unknown / clean / confirmed reject
	scFrom    []int   // reject witness: source channel (-1 = spare radio)
	scTo      []int   // reject witness: target channel
	scEpoch   []int64 // walk epoch at which the user's state was computed
	loadEpoch []int64 // walk epoch at which each channel's load last changed
	epoch     int64   // current walk epoch (advanced by ScreenStep)

	// obs accumulates kernel metrics locally (plain increments — the
	// workspace is single-owner); FlushObs folds them into the global
	// counters. poolFresh marks a workspace born inside WorkspacePool.Get
	// so the pool can tell a miss from a recycled hit.
	obs       wsCounts
	poolFresh bool
}

// Incremental screen states.
const (
	screenUnknown uint8 = iota // no reusable verdict; full screen required
	screenClean                // screen found no candidate at epoch scEpoch
	screenReject               // MovedRowValue-confirmed witness (scFrom, scTo)
)

// ResetScreenCache prepares the workspace's incremental screen cache for a
// fresh enumeration walk over users × channels: every per-user state is
// unknown and the epoch counters restart. Must be called before the first
// ScreenedNEIncremental of a walk; states cached by an earlier walk are
// meaningless against a different allocation sequence.
func (ws *Workspace) ResetScreenCache(users, channels int) {
	if cap(ws.scState) < users {
		ws.scState = make([]uint8, users)
		ws.scFrom = make([]int, users)
		ws.scTo = make([]int, users)
		ws.scEpoch = make([]int64, users)
	}
	ws.scState = ws.scState[:users]
	ws.scFrom = ws.scFrom[:users]
	ws.scTo = ws.scTo[:users]
	ws.scEpoch = ws.scEpoch[:users]
	for i := 0; i < users; i++ {
		ws.scState[i] = screenUnknown
		ws.scEpoch[i] = 0
	}
	if cap(ws.loadEpoch) < channels {
		ws.loadEpoch = make([]int64, channels)
	}
	ws.loadEpoch = ws.loadEpoch[:channels]
	for c := range ws.loadEpoch {
		ws.loadEpoch[c] = 0
	}
	ws.epoch = 0
}

// ScreenStep advances the walk epoch. The walker calls it once per profile
// BEFORE applying that profile's row mutations, so the MarkLoadChanged
// stamps land on the new epoch and invalidate states computed earlier.
func (ws *Workspace) ScreenStep() { ws.epoch++ }

// MarkRowChanged discards user u's cached screen state: a changed strategy
// row invalidates every screen quantity of that user.
func (ws *Workspace) MarkRowChanged(u int) { ws.scState[u] = screenUnknown }

// MarkLoadChanged stamps channel c's load as modified at the current
// epoch; cached states that depend on it revalidate before reuse.
func (ws *Workspace) MarkLoadChanged(c int) { ws.loadEpoch[c] = ws.epoch }

// UserMarks returns an n-length, false-initialised per-user scratch slice,
// reused across calls: the screened oracles (core and hetero) mark users
// already cleared by the DP during the screen pass so the prove pass does
// not repeat them.
func (ws *Workspace) UserMarks(n int) []bool {
	if cap(ws.marks) < n {
		ws.marks = make([]bool, n)
	}
	marks := ws.marks[:n]
	for i := range marks {
		marks[i] = false
	}
	return marks
}

// NewWorkspace returns an empty workspace; its buffers are sized on first
// use and grown as needed.
func NewWorkspace() *Workspace { return &Workspace{capC: -1, capK: -1} }

// ensure grows the slabs to cover C channels and budget k.
func (ws *Workspace) ensure(C, k int) {
	if C <= ws.capC && k <= ws.capK {
		return
	}
	if C > ws.capC {
		ws.capC = C
	}
	if k > ws.capK {
		ws.capK = k
	}
	stride := ws.capK + 1
	ws.v = make([]float64, ws.capC*stride)
	ws.f = make([]float64, (ws.capC+1)*stride)
	ws.ext = make([]int, ws.capC)
	ws.row = make([]int, ws.capC)
}

// Utils returns an n-length float64 scratch slice reused across calls: the
// backing store of UtilitiesInto and the orbit Pareto matcher's per-profile
// utility vectors. Contents are unspecified on entry.
func (ws *Workspace) Utils(n int) []float64 {
	if cap(ws.utils) < n {
		ws.utils = make([]float64, n)
	}
	return ws.utils[:n]
}

// ensureWelfare sizes the welfare-DP slabs for C channels placing total
// radios, returning the rate row R(0..total) (uninitialised), the C-row
// suffix slab of stride total+1, and the C-length load buffer.
func (ws *Workspace) ensureWelfare(C, total int) (rates, f []float64, loads []int) {
	if n := total + 1; cap(ws.wrate) < n {
		ws.wrate = make([]float64, n)
	}
	if n := C * (total + 1); cap(ws.wf) < n {
		ws.wf = make([]float64, n)
	}
	if cap(ws.wload) < C {
		ws.wload = make([]int, C)
	}
	return ws.wrate[:total+1], ws.wf[:C*(total+1)], ws.wload[:C]
}

// UtilitiesInto computes every user's utility into the workspace's
// reusable buffer — the allocation-free form of the games' Utilities. The
// returned slice aliases ws and is valid until its next Utils use.
func (rv *RateView) UtilitiesInto(ws *Workspace, a *Alloc) []float64 {
	out := ws.Utils(a.Users())
	for i := range out {
		out[i] = rv.UtilityOf(a, i)
	}
	return out
}

// fillShares populates the workspace's v rows for the given external loads
// and budget k: v[c][x] = share(x, ext[c]+x). Rows inside the view's share
// plane are block-copied; the rest are computed on demand (bit-identical
// either way).
func (rv *RateView) fillShares(ws *Workspace, ext []int, k int) {
	stride := ws.capK + 1
	shareStride := rv.maxOwn + 1
	for c, m := range ext {
		vrow := ws.v[c*stride : c*stride+k+1]
		if rv.share != nil && m <= rv.maxExt && k <= rv.maxOwn {
			copy(vrow, rv.share[m*shareStride:m*shareStride+k+1])
			continue
		}
		vrow[0] = 0
		for x := 1; x <= k; x++ {
			vrow[x] = rv.ShareAt(x, m+x)
		}
	}
}

// fillSharesFunc is fillShares for a bare rate function (no view): the
// generic path behind BestResponseToLoadsInto.
func fillSharesFunc(ws *Workspace, rate ratefn.Func, ext []int, k int) {
	stride := ws.capK + 1
	for c, m := range ext {
		vrow := ws.v[c*stride : c*stride+k+1]
		vrow[0] = 0
		for x := 1; x <= k; x++ {
			vrow[x] = share(x, m+x, rate)
		}
	}
}

// bestResponseDP runs the suffix dynamic program over the filled v rows and
// backtracks one optimal row. The returned slice aliases the workspace and
// is valid until the next call using it.
//
// The forward pass is a pure max-reduction: for each (c, b) it folds
// vrow[x] + next[b-x] over x with no choice bookkeeping inside the O(C·k²)
// hot loop — the accumulator stays in a register and the loop body is two
// contiguous loads, an add and a compare, the shape gc's auto-vectoriser
// and the CPU's out-of-order core both like. The optimal row is recovered
// afterwards by an O(C·k) traceback that rescans each chosen cell for the
// first x attaining its value; all candidates are <= the cell value and the
// old strict-> scan kept the first argmax, so "first x with equality" picks
// the same x and rows are bit-identical to the former choice-slab form.
func bestResponseDP(ws *Workspace, C, k int) ([]int, float64) {
	ws.obs.dpCalls++
	stride := ws.capK + 1
	fC := ws.f[C*stride : C*stride+k+1]
	for b := range fC {
		fC[b] = 0
	}
	for c := C - 1; c >= 0; c-- {
		vrow := ws.v[c*stride : c*stride+k+1]
		next := ws.f[(c+1)*stride:]
		cur := ws.f[c*stride:]
		for b := 0; b <= k; b++ {
			best := vrow[0] + next[b]
			for x := 1; x <= b; x++ {
				if val := vrow[x] + next[b-x]; val > best {
					best = val
				}
			}
			cur[b] = best
		}
	}
	row := ws.row[:C]
	b := k
	for c := 0; c < C; c++ {
		vrow := ws.v[c*stride:]
		next := ws.f[(c+1)*stride:]
		target := ws.f[c*stride+b]
		x := 0
		for ; x < b; x++ {
			if vrow[x]+next[b-x] == target {
				break
			}
		}
		row[c] = x
		b -= x
	}
	return row, ws.f[k]
}

// BestResponseAllocInto computes the best response of user i with budget k
// in allocation a (external loads are a's channel loads minus i's own
// radios). The returned row aliases the workspace.
func (rv *RateView) BestResponseAllocInto(ws *Workspace, a *Alloc, i, k int) ([]int, float64) {
	C := a.Channels()
	ws.ensure(C, k)
	ext := ws.ext[:C]
	for c := 0; c < C; c++ {
		ext[c] = a.Load(c) - a.Radios(i, c)
	}
	rv.fillShares(ws, ext, k)
	return bestResponseDP(ws, C, k)
}

// UtilityOf computes U_i(S) per Eq. 3 with table-backed rates — the one
// implementation behind both the uniform and heterogeneous games' Utility.
func (rv *RateView) UtilityOf(a *Alloc, i int) float64 {
	var u float64
	for c := 0; c < a.Channels(); c++ {
		ki := a.Radios(i, c)
		if ki == 0 {
			continue
		}
		kc := a.Load(c)
		u += float64(ki) / float64(kc) * rv.RateAt(kc)
	}
	return u
}

// deviates reports whether user i with budget k can improve by more than
// eps, via the allocation-free DP.
func (rv *RateView) deviates(ws *Workspace, a *Alloc, i, k int, eps float64) bool {
	current := rv.UtilityOf(a, i)
	_, best := rv.BestResponseAllocInto(ws, a, i, k)
	return best > current+eps
}

// ScreenedNE is the screen-then-prove NE oracle shared by the core and
// hetero games, bit-identical in verdict to the exhaustive per-user DP
// sweep with zero steady-state allocations:
//
//   - screen: each user's Eq. 7 single-radio deltas (ScreenSingleMoves). A
//     flagged candidate is confirmed by MovedRowValue — the DP optimum
//     provably dominates it, so a confirmed reject is exactly the DP's
//     conclusion — with the full DP as fallback; users the fallback clears
//     are marked and skipped by the prove pass.
//   - prove: remaining users pay the full O(|C|·k²) DP each.
//
// User i's budget is budgets[i] when budgets is non-nil, else uniformK.
// The allocation is not validated; callers guarantee it is legal.
func (rv *RateView) ScreenedNE(ws *Workspace, a *Alloc, uniformK int, budgets []int, eps float64) bool {
	users := a.Users()
	cleared := ws.UserMarks(users)
	for i := 0; i < users; i++ {
		k := uniformK
		if budgets != nil {
			k = budgets[i]
		}
		from, to, ok := rv.ScreenSingleMoves(a, i, k, eps)
		if !ok {
			continue
		}
		if rv.MovedRowValue(a, i, from, to) > rv.UtilityOf(a, i)+eps {
			ws.obs.screenRejects++
			return false
		}
		if rv.deviates(ws, a, i, k, eps) {
			return false
		}
		cleared[i] = true
	}
	for i := 0; i < users; i++ {
		if cleared[i] {
			continue
		}
		k := uniformK
		if budgets != nil {
			k = budgets[i]
		}
		if rv.deviates(ws, a, i, k, eps) {
			return false
		}
	}
	ws.obs.screenAccepts++
	return true
}

// rejectWitnessFresh reports whether user i's cached reject witness still
// proves a profitable deviation at the current profile. The witness is the
// comparison MovedRowValue(a, i, from, to) > UtilityOf(a, i) + eps: both
// sides fold only over channels where the (possibly moved) row deploys
// radios — unoccupied channels contribute an exact 0.0 to either sum — so
// the comparison depends solely on user i's row (unchanged, or the state
// would be screenUnknown) and the loads of occupied(i) ∪ {to}. The witness
// is fresh iff none of those loads changed after epoch scEpoch[i].
func (ws *Workspace) rejectWitnessFresh(a *Alloc, i int) bool {
	se := ws.scEpoch[i]
	to := ws.scTo[i]
	for c := 0; c < a.Channels(); c++ {
		if (a.Radios(i, c) > 0 || c == to) && ws.loadEpoch[c] > se {
			return false
		}
	}
	return true
}

// rescreenDirty re-runs the Eq. 7 screen for user i restricted to move
// pairs whose deltas could have changed since the user was last screened
// clean at epoch ws.scEpoch[i]: pairs (b, c) where b or c carries a load
// modified after that epoch. The user's own row is unchanged (a changed
// row resets the state to unknown), so a pair of two unmodified channels
// has a bit-identical delta to the one the clean screen already bounded by
// eps and needs no recheck; the same argument covers spare-radio gains,
// which depend on the target channel's load alone. Candidates may surface
// in a different order than ScreenSingleMoves would visit them, but the
// oracle's verdict never depends on which candidate is confirmed — only
// on whether some confirmed or DP-proven deviation exists.
func (rv *RateView) rescreenDirty(ws *Workspace, a *Alloc, i, budget int, eps float64) (from, to int, ok bool) {
	C := a.Channels()
	se := ws.scEpoch[i]
	total := 0
	for b := 0; b < C; b++ {
		kib := a.Radios(i, b)
		if kib == 0 {
			continue
		}
		total += kib
		bDirty := ws.loadEpoch[b] > se
		kb := a.Load(b)
		lossB := rv.ShareAt(kib-1, kb-1) - rv.ShareAt(kib, kb)
		for c := 0; c < C; c++ {
			if c == b || (!bDirty && ws.loadEpoch[c] <= se) {
				continue
			}
			kic := a.Radios(i, c)
			kc := a.Load(c)
			if lossB+rv.ShareAt(kic+1, kc+1)-rv.ShareAt(kic, kc) > eps {
				return b, c, true
			}
		}
	}
	if total < budget {
		for c := 0; c < C; c++ {
			if ws.loadEpoch[c] <= se {
				continue
			}
			kic := a.Radios(i, c)
			kc := a.Load(c)
			if rv.ShareAt(kic+1, kc+1)-rv.ShareAt(kic, kc) > eps {
				return -1, c, true
			}
		}
	}
	return -1, -1, false
}

// ScreenedNEIncremental is ScreenedNE with a per-user screen cache: when
// the caller walks profiles that differ in few rows (the canonical
// enumeration odometer), users whose relevant channel loads are untouched
// since their last screen reuse that screen's outcome instead of paying
// the full O(|C|²) pair sweep again. Verdicts are bit-identical to
// ScreenedNE — and hence to the exhaustive per-user DP sweep — because
// only screen outcomes are cached (clean states re-check exactly the
// dirtied pairs, reject witnesses revalidate their load dependencies and
// remain MovedRowValue-confirmed), while DP verdicts, whose inputs span
// every channel and are dirtied by every step, are always recomputed.
//
// The caller must drive the cache protocol: ResetScreenCache before the
// walk, then per profile ScreenStep followed by MarkRowChanged /
// MarkLoadChanged for each mutated digit and channel load. With a fresh
// cache every state is unknown and the call degenerates to ScreenedNE.
func (rv *RateView) ScreenedNEIncremental(ws *Workspace, a *Alloc, uniformK int, budgets []int, eps float64) bool {
	users := a.Users()
	// Cheapest rejection first: any user holding a still-fresh reject
	// witness proves the profile is no NE in an O(|C|) epoch scan, before
	// any screen or DP runs. The oracle's verdict is a conjunction over
	// users, so checking them out of order cannot change it.
	for i := 0; i < users; i++ {
		if ws.scState[i] == screenReject && ws.rejectWitnessFresh(a, i) {
			ws.obs.screenCacheHits++
			ws.obs.screenRejects++
			return false
		}
	}
	cleared := ws.UserMarks(users)
	for i := 0; i < users; i++ {
		k := uniformK
		if budgets != nil {
			k = budgets[i]
		}
		var from, to int
		var ok bool
		switch ws.scState[i] {
		case screenReject:
			if ws.rejectWitnessFresh(a, i) {
				ws.obs.screenCacheHits++
				ws.obs.screenRejects++
				return false
			}
			from, to, ok = rv.ScreenSingleMoves(a, i, k, eps)
		case screenClean:
			from, to, ok = rv.rescreenDirty(ws, a, i, k, eps)
		default:
			from, to, ok = rv.ScreenSingleMoves(a, i, k, eps)
		}
		if !ok {
			ws.scState[i] = screenClean
			ws.scEpoch[i] = ws.epoch
			continue
		}
		if rv.MovedRowValue(a, i, from, to) > rv.UtilityOf(a, i)+eps {
			ws.scState[i] = screenReject
			ws.scFrom[i], ws.scTo[i] = from, to
			ws.scEpoch[i] = ws.epoch
			ws.obs.screenRejects++
			return false
		}
		// The DP fallback's verdict depends on every channel load and is
		// dirtied by every odometer step — never cached.
		ws.scState[i] = screenUnknown
		if rv.deviates(ws, a, i, k, eps) {
			return false
		}
		cleared[i] = true
	}
	for i := 0; i < users; i++ {
		if cleared[i] {
			continue
		}
		k := uniformK
		if budgets != nil {
			k = budgets[i]
		}
		if rv.deviates(ws, a, i, k, eps) {
			return false
		}
	}
	ws.obs.screenAccepts++
	return true
}
