package core

import (
	"strings"
	"testing"

	"github.com/multiradio/chanalloc/internal/ratefn"
)

// figure4Matrix is a NE allocation with the dimensions of the paper's
// Figure 4 (|N| = 7, k = 4, |C| = 6) in which user u1 is an "exception
// user" of Theorem 1: it occupies every minimum-load channel, holding two
// radios on c5 and one on c6.
func figure4Matrix() [][]int {
	return [][]int{
		{1, 0, 0, 0, 2, 1}, // u1: exception user (covers all of C_min = {c5, c6})
		{1, 1, 1, 1, 0, 0}, // u2
		{1, 1, 1, 1, 0, 0}, // u3
		{1, 1, 1, 1, 0, 0}, // u4
		{0, 1, 1, 0, 1, 1}, // u5
		{0, 1, 0, 1, 1, 1}, // u6
		{1, 0, 1, 1, 0, 1}, // u7
	}
	// Loads: c1..c4 = 5 (C_max), c5, c6 = 4 (C_min); δ = 1.
}

// figure5Matrix is a NE allocation with the dimensions of the paper's
// Figure 5 (|N| = 4, k = 4, |C| = 6) in which no user needs the exception
// clause: every user has at least one empty minimum-load channel.
func figure5Matrix() [][]int {
	return [][]int{
		{1, 1, 1, 0, 1, 0}, // u1 (misses c6)
		{0, 1, 1, 1, 1, 0}, // u2 (misses c6)
		{1, 0, 1, 1, 0, 1}, // u3 (misses c5)
		{1, 1, 0, 1, 0, 1}, // u4 (misses c5)
	}
	// Loads: c1..c4 = 3 (C_max), c5, c6 = 2 (C_min); δ = 1.
}

func TestPaperWalkthroughFigure1(t *testing.T) {
	// §3 of the paper walks through Figure 1 and names the violations:
	//  - Lemma 1 fails for u2 and u4 (they deploy fewer than k radios),
	//  - Lemma 2 holds e.g. for u1 with b = c4, c = c5,
	//  - Lemma 3 holds for u3 with b = c2, c = c3.
	g, a := figure1Game(t)

	v1 := CheckLemma1(g, a)
	if v1 == nil {
		t.Fatal("Lemma 1 violation not detected")
	}
	if v1.User != 1 { // u2 is the first under-deploying user
		t.Errorf("Lemma 1 witness is u%d, want u2", v1.User+1)
	}

	v2 := CheckLemma2(g, a)
	if v2 == nil {
		t.Fatal("Lemma 2 violation not detected")
	}
	// Any witness must satisfy the lemma's premises.
	if a.Radios(v2.User, v2.ChannelB) == 0 || a.Radios(v2.User, v2.ChannelC) != 0 {
		t.Errorf("Lemma 2 witness %v does not satisfy premises", v2)
	}
	if a.Load(v2.ChannelB)-a.Load(v2.ChannelC) <= 1 {
		t.Errorf("Lemma 2 witness %v has δ <= 1", v2)
	}
	// The paper's named instance (u1, b=c4, c=c5) satisfies the premises too.
	if a.Radios(0, 3) == 0 || a.Radios(0, 4) != 0 || a.Load(3)-a.Load(4) != 2 {
		t.Error("paper's Lemma 2 instance (u1, c4, c5) no longer matches the matrix")
	}

	v3 := CheckLemma3(g, a)
	if v3 == nil {
		t.Fatal("Lemma 3 violation not detected")
	}
	if v3.User != 2 || v3.ChannelB != 1 || v3.ChannelC != 2 {
		t.Errorf("Lemma 3 witness = %v, want u3 with b=c2, c=c3", v3)
	}

	// Figure 1 is not load-balanced: Proposition 1 must flag it too.
	if CheckProposition1(g, a) == nil {
		t.Error("Proposition 1 violation not detected (loads 4..1)")
	}

	// And the aggregate walk-through lists one witness per violated rule.
	all := CheckAllLemmas(g, a)
	rules := make(map[string]bool, len(all))
	for _, v := range all {
		rules[v.Rule] = true
	}
	for _, want := range []string{"lemma1", "lemma2", "lemma3", "prop1"} {
		if !rules[want] {
			t.Errorf("CheckAllLemmas missing %s", want)
		}
	}

	// The theorem checker must reject Figure 1 outright.
	if ok, _ := TheoremNE(g, a); ok {
		t.Error("Figure 1 example misclassified as NE")
	}
}

func TestLemma4Detection(t *testing.T) {
	// Equal loads, one user with two radios on b and none on c.
	g := mustGame(t, 2, 2, 2, ratefn.NewTDMA(1))
	a := mustAlloc(t, [][]int{
		{2, 0},
		{0, 2},
	})
	v := CheckLemma4(g, a)
	if v == nil {
		t.Fatal("Lemma 4 violation not detected")
	}
	if v.User != 0 || v.ChannelB != 0 || v.ChannelC != 1 {
		t.Errorf("witness = %v, want u1 b=c1 c=c2", v)
	}
}

func TestLemma4NoFalsePositive(t *testing.T) {
	g := mustGame(t, 2, 2, 2, ratefn.NewTDMA(1))
	a := mustAlloc(t, [][]int{
		{1, 1},
		{1, 1},
	})
	if v := CheckLemma4(g, a); v != nil {
		t.Fatalf("spurious Lemma 4 violation: %v", v)
	}
}

func TestLemmaViolationsPredictProfitableMoves(t *testing.T) {
	// Every lemma-2/3/4 witness comes with a constructive deviation: moving
	// one radio from b to c must strictly increase utility (this is exactly
	// the content of the lemmas' proofs). Verify Δ > 0 for every witness on
	// a batch of hand-built configurations under constant R.
	g5 := mustGame(t, 4, 5, 4, ratefn.NewTDMA(1))
	g2 := mustGame(t, 2, 2, 2, ratefn.NewTDMA(1))
	cases := []struct {
		name  string
		g     *Game
		m     [][]int
		check func(*Game, *Alloc) *Violation
	}{
		{"lemma2-fig1", g5, figure1Matrix(), CheckLemma2},
		{"lemma3-fig1", g5, figure1Matrix(), CheckLemma3},
		{"lemma4-2x2", g2, [][]int{{2, 0}, {0, 2}}, CheckLemma4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := mustAlloc(t, tc.m)
			v := tc.check(tc.g, a)
			if v == nil {
				t.Fatal("expected a violation")
			}
			delta, err := tc.g.BenefitOfMove(a, v.User, v.ChannelB, v.ChannelC)
			if err != nil {
				t.Fatal(err)
			}
			if delta <= 0 {
				t.Fatalf("witness %v does not yield a profitable move (Δ=%v)", v, delta)
			}
		})
	}
}

func TestViolationString(t *testing.T) {
	var nilV *Violation
	if nilV.String() == "" {
		t.Error("nil violation should render a placeholder")
	}
	v := &Violation{Rule: "lemma2", User: 0, ChannelB: 3, ChannelC: 4, Detail: "δ=2"}
	s := v.String()
	for _, want := range []string{"lemma2", "u1", "c4", "c5", "δ=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("violation string %q missing %q", s, want)
		}
	}
}

func TestTheoremNEFigure4(t *testing.T) {
	// The Figure-4 style allocation (with exception user u1) is a NE under
	// the paper's constant-rate regime, both by Theorem 1 and by the exact
	// best-response oracle.
	g := mustGame(t, 7, 6, 4, ratefn.NewTDMA(1))
	a := mustAlloc(t, figure4Matrix())

	ok, v := TheoremNE(g, a)
	if !ok {
		t.Fatalf("Theorem 1 rejects the Figure 4 NE: %v", v)
	}
	ne, err := g.IsNashEquilibrium(a)
	if err != nil {
		t.Fatal(err)
	}
	if !ne {
		dev, _ := g.FindDeviation(a, DefaultEps)
		t.Fatalf("best-response oracle rejects the Figure 4 NE: %v", dev)
	}
	// Exact rational arithmetic agrees.
	isNE, exact, err := g.IsNashEquilibriumRat(a)
	if err != nil {
		t.Fatal(err)
	}
	if !exact {
		t.Fatal("TDMA rate should support exact arithmetic")
	}
	if !isNE {
		t.Fatal("exact oracle rejects the Figure 4 NE")
	}
}

func TestTheoremNEFigure5(t *testing.T) {
	g := mustGame(t, 4, 6, 4, ratefn.NewTDMA(1))
	a := mustAlloc(t, figure5Matrix())

	ok, v := TheoremNE(g, a)
	if !ok {
		t.Fatalf("Theorem 1 rejects the Figure 5 NE: %v", v)
	}
	ne, err := g.IsNashEquilibrium(a)
	if err != nil {
		t.Fatal(err)
	}
	if !ne {
		dev, _ := g.FindDeviation(a, DefaultEps)
		t.Fatalf("best-response oracle rejects the Figure 5 NE: %v", dev)
	}
}

func TestTheoremNEExceptionUserIdentified(t *testing.T) {
	// In Figure 4, u1 has no empty C_min channel; every other user does or
	// holds at most one radio everywhere.
	a := mustAlloc(t, figure4Matrix())
	_, cmin, _ := a.ChannelSets()
	if len(cmin) != 2 || cmin[0] != 4 || cmin[1] != 5 {
		t.Fatalf("Cmin = %v, want [4 5]", cmin)
	}
	if hasEmptyMinChannel(a, 0, cmin) {
		t.Error("u1 should cover every C_min channel (exception user)")
	}
	if !hasEmptyMinChannel(a, 1, cmin) {
		t.Error("u2 should have an empty C_min channel")
	}
}

func TestTheoremNERejectsProfitableSpareMove(t *testing.T) {
	// Regression for a sufficiency gap in the paper's structural
	// conditions: u4 owns both radios of the load-2 minimum channel c2, so
	// it passes the exception clause (no empty C_min channel, nothing
	// doubled on C_max) — yet moving one radio to c3 keeps c2's full rate
	// and earns 1/4 extra. The checker must agree with the exact oracle.
	g := mustGame(t, 4, 3, 2, ratefn.NewTDMA(1))
	a := mustAlloc(t, [][]int{
		{1, 0, 1},
		{1, 0, 1},
		{1, 0, 1},
		{0, 2, 0},
	})
	ok, v := TheoremNE(g, a)
	if ok {
		t.Fatal("exception user with a profitable spare move accepted as NE")
	}
	if v == nil || v.Rule != "thm1-cond2" {
		t.Fatalf("violation = %v, want thm1-cond2", v)
	}
	ne, err := g.IsNashEquilibrium(a)
	if err != nil {
		t.Fatal(err)
	}
	if ne {
		t.Fatal("oracle disagrees: it should reject this allocation too")
	}

	// d_min = 3 sits just inside the gap as well (u5 doubled on c4, loads
	// 4,4,4,3): 1/2 + 1/5 > 2/3.
	g3 := mustGame(t, 5, 4, 3, ratefn.NewTDMA(1))
	a3 := mustAlloc(t, [][]int{
		{1, 1, 1, 0},
		{1, 1, 1, 0},
		{1, 1, 1, 0},
		{0, 1, 1, 1},
		{1, 0, 0, 2},
	})
	if ok, _ := TheoremNE(g3, a3); ok {
		t.Fatal("d_min=3 spare-move deviation accepted as NE")
	}
	if ne, err := g3.IsNashEquilibrium(a3); err != nil || ne {
		t.Fatalf("oracle should also reject (ne=%v err=%v)", ne, err)
	}
}

func TestTheoremNERejectsConcentratedUser(t *testing.T) {
	// Balanced loads (4,3,3,3,3) but u1 piles three radios on c2 while
	// leaving minimum-load channels untouched: condition 2 must reject it,
	// and the exact oracle agrees under constant R.
	g := mustGame(t, 4, 5, 4, ratefn.NewTDMA(1))
	a := mustAlloc(t, [][]int{
		{0, 3, 1, 0, 0}, // k_{1,c2} = 3 > 1 with empty C_min channels
		{1, 0, 1, 1, 1},
		{1, 0, 1, 1, 1},
		{2, 0, 0, 1, 1},
	})
	ok, v := TheoremNE(g, a)
	if ok {
		t.Fatal("allocation with a triple radio should not be a theorem-NE")
	}
	if v == nil || v.Rule != "thm1-cond2" {
		t.Fatalf("violation = %v, want thm1-cond2", v)
	}
	ne, err := g.IsNashEquilibrium(a)
	if err != nil {
		t.Fatal(err)
	}
	if ne {
		t.Fatal("oracle claims NE for a condition-2 violation under constant R")
	}
}

func TestTheoremNEFact1Regime(t *testing.T) {
	// |N|·k <= |C|: one radio per channel is a NE; sharing is not.
	g := mustGame(t, 2, 6, 2, ratefn.NewTDMA(1))
	spread := mustAlloc(t, [][]int{
		{1, 1, 0, 0, 0, 0},
		{0, 0, 1, 1, 0, 0},
	})
	ok, v := TheoremNE(g, spread)
	if !ok {
		t.Fatalf("spread allocation should be NE in Fact 1 regime: %v", v)
	}
	ne, err := g.IsNashEquilibrium(spread)
	if err != nil {
		t.Fatal(err)
	}
	if !ne {
		t.Fatal("oracle rejects Fact 1 NE")
	}

	shared := mustAlloc(t, [][]int{
		{1, 1, 0, 0, 0, 0},
		{1, 0, 1, 0, 0, 0}, // shares c1 although empty channels exist
	})
	ok, v = TheoremNE(g, shared)
	if ok {
		t.Fatal("shared channel with spare channels should not be NE")
	}
	if v.Rule != "fact1" {
		t.Fatalf("violation rule = %q, want fact1", v.Rule)
	}
	ne, err = g.IsNashEquilibrium(shared)
	if err != nil {
		t.Fatal(err)
	}
	if ne {
		t.Fatal("oracle claims NE for shared channel in Fact 1 regime")
	}
}

func TestTheoremNERequiresFullDeployment(t *testing.T) {
	g := mustGame(t, 2, 3, 2, ratefn.NewTDMA(1))
	a := mustAlloc(t, [][]int{
		{1, 0, 0}, // only one of two radios deployed
		{0, 1, 1},
	})
	ok, v := TheoremNE(g, a)
	if ok {
		t.Fatal("under-deployment should not be NE")
	}
	if v.Rule != "lemma1" {
		t.Fatalf("violation rule = %q, want lemma1", v.Rule)
	}
}

func TestTheoremNEInvalidAlloc(t *testing.T) {
	g := mustGame(t, 2, 3, 2, ratefn.NewTDMA(1))
	wrong, err := NewAlloc(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ok, v := TheoremNE(g, wrong)
	if ok || v == nil || v.Rule != "invalid" {
		t.Fatalf("mismatched alloc should yield invalid verdict, got ok=%v v=%v", ok, v)
	}
}

func TestTheoremNEFlatAllocation(t *testing.T) {
	// Flat loads with all-singles rows: NE. Flat loads with a double: not.
	g := mustGame(t, 3, 3, 2, ratefn.NewTDMA(1))
	flatOK := mustAlloc(t, [][]int{
		{1, 1, 0},
		{0, 1, 1},
		{1, 0, 1},
	})
	if ok, v := TheoremNE(g, flatOK); !ok {
		t.Fatalf("balanced singles should be NE: %v", v)
	}
	flatBad := mustAlloc(t, [][]int{
		{2, 0, 0},
		{0, 2, 0},
		{0, 0, 2},
	})
	if ok, _ := TheoremNE(g, flatBad); ok {
		t.Fatal("flat allocation of doubles should not be NE")
	}
	ne, err := g.IsNashEquilibrium(flatBad)
	if err != nil {
		t.Fatal(err)
	}
	if ne {
		t.Fatal("oracle claims NE for flat doubles")
	}
}
