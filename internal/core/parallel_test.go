package core

import (
	"runtime"
	"testing"

	"github.com/multiradio/chanalloc/internal/ratefn"
)

// TestEnumerateNEParallelMatchesSerial is the sharding contract: identical
// NE list — same equilibria, same order — for every worker count.
func TestEnumerateNEParallelMatchesSerial(t *testing.T) {
	for _, cfg := range []struct{ n, c, k int }{
		{1, 3, 2}, {2, 2, 2}, {2, 3, 2}, {3, 2, 2}, {3, 3, 2},
	} {
		g, err := NewGame(cfg.n, cfg.c, cfg.k, ratefn.NewTDMA(1))
		if err != nil {
			t.Fatal(err)
		}
		serial, err := EnumerateNE(g, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4, runtime.NumCPU()} {
			parallel, err := EnumerateNEParallel(g, 10_000_000, workers)
			if err != nil {
				t.Fatal(err)
			}
			if len(parallel) != len(serial) {
				t.Fatalf("%dx%dx%d workers=%d: %d NE, serial found %d",
					cfg.n, cfg.c, cfg.k, workers, len(parallel), len(serial))
			}
			for i := range serial {
				if !serial[i].Equal(parallel[i]) {
					t.Fatalf("%dx%dx%d workers=%d: NE %d differs from serial",
						cfg.n, cfg.c, cfg.k, workers, i)
				}
			}
		}
	}
}

// TestEnumerateNEParallelHonoursCap keeps the exhaustive-search guard.
func TestEnumerateNEParallelHonoursCap(t *testing.T) {
	g, err := NewGame(4, 4, 3, ratefn.NewTDMA(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EnumerateNEParallel(g, 100, 2); err == nil {
		t.Fatal("profile cap not enforced")
	}
}
