package core

import (
	"runtime"
	"strings"
	"testing"

	"github.com/multiradio/chanalloc/internal/ratefn"
)

// TestEnumerateNEParallelMatchesSerial is the sharding contract: identical
// NE list — same equilibria, same order — for every worker count.
func TestEnumerateNEParallelMatchesSerial(t *testing.T) {
	for _, cfg := range []struct{ n, c, k int }{
		{1, 3, 2}, {2, 2, 2}, {2, 3, 2}, {3, 2, 2}, {3, 3, 2},
	} {
		g, err := NewGame(cfg.n, cfg.c, cfg.k, ratefn.NewTDMA(1))
		if err != nil {
			t.Fatal(err)
		}
		serial, err := EnumerateNE(g, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4, runtime.NumCPU()} {
			parallel, err := EnumerateNEParallel(g, 10_000_000, workers)
			if err != nil {
				t.Fatal(err)
			}
			if len(parallel) != len(serial) {
				t.Fatalf("%dx%dx%d workers=%d: %d NE, serial found %d",
					cfg.n, cfg.c, cfg.k, workers, len(parallel), len(serial))
			}
			for i := range serial {
				if !serial[i].Equal(parallel[i]) {
					t.Fatalf("%dx%dx%d workers=%d: NE %d differs from serial",
						cfg.n, cfg.c, cfg.k, workers, i)
				}
			}
		}
	}
}

// TestEnumerateNEParallelTwoUserSharding pins the few-strategy/many-user
// regime: when len(rows) < 2×workers the enumeration shards on the first
// TWO users' rows, and the output must still be serial-identical — same
// equilibria, same order — for every worker count. A 2-channel 1-radio
// game has only 3 strategy rows per user, so any pool beyond one worker
// takes the pair-sharded path.
func TestEnumerateNEParallelTwoUserSharding(t *testing.T) {
	for _, cfg := range []struct{ n, c, k int }{
		{5, 2, 1}, // 3 rows, 243 profiles: pair-sharded for workers >= 2
		{4, 2, 2}, // 6 rows: pair-sharded for workers >= 4
		{6, 2, 1}, // 3 rows, 729 profiles
	} {
		g, err := NewGame(cfg.n, cfg.c, cfg.k, ratefn.NewTDMA(1))
		if err != nil {
			t.Fatal(err)
		}
		serial, err := EnumerateNE(g, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if len(serial) == 0 {
			t.Fatalf("%dx%dx%d: serial enumeration found no NE", cfg.n, cfg.c, cfg.k)
		}
		// workers spanning both sharding depths, including pools larger
		// than the squared shard count.
		for _, workers := range []int{1, 2, 4, 16, 64} {
			parallel, err := EnumerateNEParallel(g, 10_000_000, workers)
			if err != nil {
				t.Fatal(err)
			}
			if len(parallel) != len(serial) {
				t.Fatalf("%dx%dx%d workers=%d: %d NE, serial found %d",
					cfg.n, cfg.c, cfg.k, workers, len(parallel), len(serial))
			}
			for i := range serial {
				if !serial[i].Equal(parallel[i]) {
					t.Fatalf("%dx%dx%d workers=%d: NE %d differs from serial",
						cfg.n, cfg.c, cfg.k, workers, i)
				}
			}
		}
	}
}

// TestEnumerateNEParallelSingleUser: a 1-user game cannot pair-shard and
// must still enumerate correctly with a large pool.
func TestEnumerateNEParallelSingleUser(t *testing.T) {
	g, err := NewGame(1, 3, 2, ratefn.NewTDMA(1))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := EnumerateNE(g, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := EnumerateNEParallel(g, 10_000_000, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != len(serial) {
		t.Fatalf("%d NE, serial found %d", len(parallel), len(serial))
	}
	for i := range serial {
		if !serial[i].Equal(parallel[i]) {
			t.Fatalf("NE %d differs from serial", i)
		}
	}
}

// TestEnumerateNEParallelHonoursCap keeps the exhaustive-search guard.
func TestEnumerateNEParallelHonoursCap(t *testing.T) {
	g, err := NewGame(4, 4, 3, ratefn.NewTDMA(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EnumerateNEParallel(g, 100, 2); err == nil {
		t.Fatal("profile cap not enforced")
	}
}

// TestForEachRestSurfacesSetRowError pins the error plumbing of the shard
// walker: an invariant-breaking allocation (here, strategy rows whose
// length does not match the game's channel count) must surface as an error
// instead of silently truncating the enumeration.
func TestForEachRestSurfacesSetRowError(t *testing.T) {
	g, err := NewGame(2, 3, 2, ratefn.NewTDMA(1))
	if err != nil {
		t.Fatal(err)
	}
	a := g.NewEmptyAlloc()
	badRows := [][]int{{1, 1}} // two channels where the game has three
	calls := 0
	err = forEachRest(a, badRows, 0, []int{1, 1}, func(*Alloc) bool {
		calls++
		return true
	})
	if err == nil {
		t.Fatal("invariant-breaking SetRow must surface, not truncate the walk")
	}
	if want := "setting row for user 0"; !strings.Contains(err.Error(), want) {
		t.Fatalf("err = %v, want it to contain %q", err, want)
	}
	if calls != 0 {
		t.Fatalf("fn ran %d times on an invalid allocation", calls)
	}
}
