package core

import "github.com/multiradio/chanalloc/internal/obs"

// Kernel metrics. The DP and screen loops run in the tens of nanoseconds,
// far too hot for an atomic per operation shared across engine shards — so
// each Workspace accumulates plain integers (it is single-owner by
// contract) and FlushObs folds them into these process-global counters in
// one atomic add per field. WorkspacePool.Put flushes automatically, which
// covers every pooled hot path (engine shards, enumeration walks, batch
// replicates, live-server events); dynamics sweeps flush explicitly so
// injected workspaces report too. A workspace used directly and never
// flushed simply keeps its counts local — metrics are a side channel, and
// a one-shot call that skips them costs nothing.
var (
	mDPCalls         = obs.NewCounter("kernel_dp_calls_total")
	mScreenAccepts   = obs.NewCounter("kernel_screen_accepts_total")
	mScreenRejects   = obs.NewCounter("kernel_screen_rejects_total")
	mScreenCacheHits = obs.NewCounter("kernel_screen_cache_hits_total")
	mOrbitProfiles   = obs.NewCounter("kernel_orbit_profiles_total")
	mOrbitSkips      = obs.NewCounter("kernel_orbit_skips_total")
	mPoolHits        = obs.NewCounter("workspace_pool_hits_total")
	mPoolMisses      = obs.NewCounter("workspace_pool_misses_total")
)

// wsCounts is the workspace-local accumulator behind the kernel counters.
// Fields mirror the kernel_* metrics one to one.
type wsCounts struct {
	dpCalls         uint64 // best-response DP folds executed
	screenAccepts   uint64 // profiles the screened oracle accepted as NE
	screenRejects   uint64 // profiles rejected by the Eq. 7 screen (no DP)
	screenCacheHits uint64 // rejects served from a fresh cached witness
	orbitProfiles   uint64 // canonical orbit representatives visited
}

// FlushObs folds the workspace's accumulated kernel counts into the
// process-global obs counters and zeroes them. Safe to call at any point
// the workspace is quiescent; flushing twice is harmless (the second
// flush adds zero). Pool Put calls it automatically.
func (ws *Workspace) FlushObs() {
	if ws.obs.dpCalls != 0 {
		mDPCalls.Add(ws.obs.dpCalls)
	}
	if ws.obs.screenAccepts != 0 {
		mScreenAccepts.Add(ws.obs.screenAccepts)
	}
	if ws.obs.screenRejects != 0 {
		mScreenRejects.Add(ws.obs.screenRejects)
	}
	if ws.obs.screenCacheHits != 0 {
		mScreenCacheHits.Add(ws.obs.screenCacheHits)
	}
	if ws.obs.orbitProfiles != 0 {
		mOrbitProfiles.Add(ws.obs.orbitProfiles)
	}
	ws.obs = wsCounts{}
}
