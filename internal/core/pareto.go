package core

import (
	"fmt"
	"sort"
)

// Orbit-aware Pareto search.
//
// Equal-budget users are exchangeable: permuting the strategy rows of a
// class of same-budget users leaves every channel load unchanged and
// permutes the per-user utilities the same way. A member of a canonical
// representative's orbit therefore Pareto-dominates the base allocation
// iff, within each exchangeability class, the representative's utility
// multiset can be matched one-to-one against the class's base utilities
// with nobody hurt (u >= b - eps pairwise, the unreduced scan's exact
// comparison), and some class contributes a strict pair (u > b + eps).
// That turns the per-orbit question — up to N!-many member profiles — into
// one matching test per class on the representative alone.
//
// With both sides sorted ascending, the no-hurt constraint graph is a
// threshold bipartite graph, so Hall's condition collapses to the diagonal:
// a feasible matching exists iff u_t >= b_t - eps for every sorted position
// t. For the strict pair there are exactly two shapes (the exchange
// argument below): either
//
//   - Case A: some diagonal pair is already strict (u_t > b_t + eps) —
//     remove it and the remaining diagonals match the remaining positions;
//   - Case B: no diagonal pair is strict, but positions i < j exist with
//     u_j > b_i + eps and the removal-shifted middle pairs feasible,
//     u_t >= b_{t+1} - eps for every t in [i, j-1]; pairing u_j with b_i
//     and shifting u_i..u_{j-1} one base position up completes the match.
//
// Completeness: suppose some feasible matching holds a strict pair
// (u_p, b_q). If p <= q then u_p > b_q + eps >= b_p + eps (b sorted), so
// Case A fires at p. If p > q, removing the pair leaves two sorted
// (n-1)-multisets whose diagonal is exactly Case B's constraint set for
// (i, j) = (q, p); shrinking j to the smallest j' > i with u_j' > b_i + eps
// only shrinks the constrained middle range, so scanning each i with its
// minimal j (two pointers, prefix counts of violated middle pairs) decides
// the class in O(n) after sorting. Soundness is by construction: the
// matching the witness applies consists solely of pairs the scan verified
// with the unreduced scan's own float comparisons.

// paretoMatcher is the per-search precomputation of the orbit dominance
// test: base utilities grouped by exchangeability class and sorted, plus
// per-representative scratch sized to the largest class. Not safe for
// concurrent use — each search shard builds its own.
type paretoMatcher struct {
	classes [][]int // user indices per class (ascending)
	classOf []int   // user -> class index
	// Per class: members reordered by ascending base utility (ties by user
	// index) and the corresponding sorted utility values.
	orderedUsers [][]int
	sortedBase   [][]float64
	minBase      []float64
	// Per-representative scratch: the class's candidate utilities sorted
	// ascending (ties by user index), which representative user produced
	// each, and prefix counts of violated Case B middle pairs.
	candVal []float64
	candPos []int
	badPref []int
}

// newParetoMatcher precomputes the per-class sorted base utilities.
func newParetoMatcher(classes [][]int, base []float64) *paretoMatcher {
	pm := &paretoMatcher{classes: classes, classOf: make([]int, len(base))}
	maxClass := 0
	for ci, class := range classes {
		for _, u := range class {
			pm.classOf[u] = ci
		}
		if len(class) > maxClass {
			maxClass = len(class)
		}
		ordered := append([]int(nil), class...)
		sort.Slice(ordered, func(x, y int) bool {
			if base[ordered[x]] != base[ordered[y]] {
				return base[ordered[x]] < base[ordered[y]]
			}
			return ordered[x] < ordered[y]
		})
		vals := make([]float64, len(ordered))
		for t, u := range ordered {
			vals[t] = base[u]
		}
		pm.orderedUsers = append(pm.orderedUsers, ordered)
		pm.sortedBase = append(pm.sortedBase, vals)
		pm.minBase = append(pm.minBase, vals[0])
	}
	pm.candVal = make([]float64, maxClass)
	pm.candPos = make([]int, maxClass)
	pm.badPref = make([]int, maxClass)
	return pm
}

// sortClass fills candVal/candPos with class's utilities under the current
// representative, ascending (insertion sort — classes are small — with
// ties kept in ascending user order, so the witness is deterministic).
func (pm *paretoMatcher) sortClass(class []int, utils []float64) {
	cand, pos := pm.candVal[:len(class)], pm.candPos[:len(class)]
	for p, u := range class {
		v := utils[u]
		q := p
		for ; q > 0 && cand[q-1] > v; q-- {
			cand[q], pos[q] = cand[q-1], pos[q-1]
		}
		cand[q], pos[q] = v, u
	}
}

// classMatch decides one class of the orbit dominance test. It returns
// feasible (a no-hurt matching exists) and, when a strict pair can be
// worked in, its sorted positions (i, j): base position i takes candidate
// position j (i == j is Case A's diagonal pair; j == -1 means feasible but
// no strict option in this class).
func (pm *paretoMatcher) classMatch(ci int, class []int, utils []float64, eps float64) (feasible bool, si, sj int) {
	n := len(class)
	pm.sortClass(class, utils)
	cand, baseV := pm.candVal[:n], pm.sortedBase[ci]
	strictT := -1
	for t := 0; t < n; t++ {
		if cand[t] < baseV[t]-eps {
			return false, -1, -1
		}
		if strictT < 0 && cand[t] > baseV[t]+eps {
			strictT = t
		}
	}
	if strictT >= 0 {
		return true, strictT, strictT // Case A
	}
	// Case B. badPref[x] counts middle pairs t < x with
	// cand[t] < baseV[t+1] - eps; a (i, j) candidate needs none in [i, j-1].
	bad := pm.badPref[:n]
	bad[0] = 0
	for t := 0; t+1 < n; t++ {
		v := 0
		if cand[t] < baseV[t+1]-eps {
			v = 1
		}
		bad[t+1] = bad[t] + v
	}
	j := 1
	for i := 0; i < n; i++ {
		if j < i+1 {
			j = i + 1
		}
		for j < n && cand[j] <= baseV[i]+eps {
			j++
		}
		if j == n {
			// baseV only grows with i, so no later i finds a strict j either.
			return true, -1, -1
		}
		if bad[j] == bad[i] {
			return true, i, j
		}
	}
	return true, -1, -1
}

// improve decides whether some member of the representative's orbit
// Pareto-dominates the base profile (utils are the representative's
// per-user utilities) and, if so, materialises that member: within each
// class the representative's rows, sorted by the utility they yield, are
// dealt to the class members sorted by base utility — diagonally, except
// for the one strict class, which applies its Case A/B matching. Returns
// (nil, nil) when the orbit does not dominate.
func (pm *paretoMatcher) improve(rep *Alloc, utils []float64, eps float64) (*Alloc, error) {
	strictClass, strictI, strictJ := -1, 0, 0
	for ci, class := range pm.classes {
		feasible, i, j := pm.classMatch(ci, class, utils, eps)
		if !feasible {
			return nil, nil
		}
		if strictClass < 0 && j >= 0 {
			strictClass, strictI, strictJ = ci, i, j
		}
	}
	if strictClass < 0 {
		return nil, nil
	}
	w, err := NewAlloc(rep.Users(), rep.Channels())
	if err != nil {
		return nil, err
	}
	for ci, class := range pm.classes {
		pm.sortClass(class, utils)
		pos := pm.candPos[:len(class)]
		for p, src := range pos {
			q := p
			if ci == strictClass && strictI != strictJ {
				// Case B shift: candidate j serves base i, candidates
				// i..j-1 each move one base position up.
				switch {
				case p == strictJ:
					q = strictI
				case p >= strictI && p < strictJ:
					q = p + 1
				}
			}
			if err := w.SetRow(pm.orderedUsers[ci][q], rep.Row(src)); err != nil {
				return nil, err
			}
		}
	}
	return w, nil
}

// ParetoImprovement walks the canonical orbit space and returns an
// allocation Pareto-dominating the base utility profile within eps, or nil
// when no profile in the full (unreduced) strategy space dominates. The
// witness comes from the lexicographically first dominating orbit, so the
// result is deterministic.
func (oe *OrbitEnumerator) ParetoImprovement(base []float64, eps float64) (*Alloc, error) {
	return oe.paretoSearch(nil, base, eps)
}

// ParetoImprovementShard is ParetoImprovement restricted to the sub-space
// with the leading odometer digits pinned — the unit of work of the
// parallel search. Non-canonical prefixes denote empty shards and return
// nil immediately, exactly as in CanonicalShard.
func (oe *OrbitEnumerator) ParetoImprovementShard(pinned []int, base []float64, eps float64) (*Alloc, error) {
	return oe.paretoSearch(pinned, base, eps)
}

func (oe *OrbitEnumerator) paretoSearch(pinned []int, base []float64, eps float64) (*Alloc, error) {
	users := len(oe.Budgets)
	if len(base) != users {
		return nil, fmt.Errorf("%s: pareto: %d base utilities for %d users", oe.ErrPrefix, len(base), users)
	}
	pred := orbitPred(oe.Budgets)
	classes := orbitClasses(pred)
	tables := make([][][]int, users)
	sizes := make([]int, users)
	for u := range tables {
		tables[u] = oe.RowsFor(u)
		sizes[u] = len(tables[u])
	}
	a, err := NewAlloc(users, oe.Channels)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", oe.ErrPrefix, err)
	}
	idx := make([]int, users)
	for u, ri := range pinned {
		if ri < 0 || ri >= sizes[u] {
			return nil, fmt.Errorf("%s: pinned digit %d out of range for user %d", oe.ErrPrefix, ri, u)
		}
		if p := pred[u]; p >= 0 && idx[p] > ri {
			return nil, nil // non-canonical prefix: empty shard
		}
		idx[u] = ri
		if err := a.SetRow(u, tables[u][ri]); err != nil {
			return nil, fmt.Errorf("%s: setting pinned row for user %d: %w", oe.ErrPrefix, u, err)
		}
	}
	pm := newParetoMatcher(classes, base)
	ws := Workspaces.Get()
	defer Workspaces.Put(ws)
	view := oe.View
	var witness *Alloc
	var innerErr error
	err = orbitWalk(a, idx, len(pinned), sizes, pred,
		func(u, ri int) []int { return tables[u][ri] },
		oe.ErrPrefix, nil, nil,
		func() bool {
			utils := ws.Utils(users)
			// Reject-first: a utility below the class's smallest base
			// utility (minus eps) hurts whoever receives it under ANY
			// within-class matching, so the orbit cannot dominate — bail
			// before computing the remaining users' utilities.
			for u := 0; u < users; u++ {
				ui := view.UtilityOf(a, u)
				if ui < pm.minBase[pm.classOf[u]]-eps {
					return true
				}
				utils[u] = ui
			}
			w, werr := pm.improve(a, utils, eps)
			if werr != nil {
				innerErr = werr
				return false
			}
			if w == nil {
				return true
			}
			witness = w
			return false
		})
	if err != nil {
		return nil, err
	}
	if innerErr != nil {
		return nil, fmt.Errorf("%s: pareto witness: %w", oe.ErrPrefix, innerErr)
	}
	return witness, nil
}
