package core

import (
	"fmt"
	"math"
	"math/big"

	"github.com/multiradio/chanalloc/internal/ratefn"
)

// DefaultEps is the absolute tolerance used by the floating-point NE oracle
// when comparing a user's utility against its best-response value. Utilities
// are O(R0 · k); 1e-9 is far below any meaningful rate difference yet far
// above accumulated float error for the game sizes this library targets.
const DefaultEps = 1e-9

// Deviation reports a profitable unilateral deviation found by the
// best-response oracle.
type Deviation struct {
	User    int
	Current []int   // the user's current strategy row
	Better  []int   // a strictly better row
	Gain    float64 // utility improvement
}

// String renders the deviation with 1-based user labels.
func (d *Deviation) String() string {
	if d == nil {
		return "<no deviation>"
	}
	return fmt.Sprintf("user u%d can switch %v -> %v for +%.6g", d.User+1, d.Current, d.Better, d.Gain)
}

// BestResponse computes a utility-maximising reallocation of user i's radios
// (up to the budget k), holding all other users fixed. It returns an optimal
// strategy row and its utility.
//
// The optimisation is an exact dynamic program over channels: channels are
// independent once the user's own contribution is fixed, so
// max Σ_c v_c(x_c) subject to Σ_c x_c <= k decomposes channel by channel,
// where v_c(x) = x/(m_c+x) · R(m_c+x) and m_c is the other users' load.
// Idle radios are permitted (x summing below k); with strictly positive
// rates the optimum always uses the full budget (paper Lemma 1), which the
// tests assert.
//
// This is the one-shot convenience form; hot loops should hold a Workspace
// and call BestResponseInto, which allocates nothing in steady state.
func (g *Game) BestResponse(a *Alloc, i int) ([]int, float64, error) {
	if err := g.CheckAlloc(a); err != nil {
		return nil, 0, err
	}
	row, val, err := g.BestResponseInto(NewWorkspace(), a, i)
	if err != nil {
		return nil, 0, err
	}
	return append([]int(nil), row...), val, nil
}

// BestResponseInto is the allocation-free form of BestResponse: the DP runs
// entirely inside ws and the returned row aliases ws (copy it to retain it
// past the next workspace use). The allocation is NOT re-validated — the
// caller (enumeration, dynamics, a checked wrapper) guarantees a matches
// the game's dimensions and budgets.
func (g *Game) BestResponseInto(ws *Workspace, a *Alloc, i int) ([]int, float64, error) {
	if ws == nil {
		return nil, 0, fmt.Errorf("core: nil workspace")
	}
	if i < 0 || i >= g.users {
		return nil, 0, fmt.Errorf("core: user %d out of range [0, %d)", i, g.users)
	}
	row, val := g.view.BestResponseAllocInto(ws, a, i, g.radios)
	return row, val, nil
}

// BestResponseToLoads computes the utility-maximising placement of up to k
// radios against fixed external channel loads ext (the other users' radios).
// This is the DP behind Game.BestResponse, exposed for callers that only
// know aggregate loads — notably the distributed protocol, where a device
// learns per-channel totals from its peers rather than a full matrix.
func BestResponseToLoads(rate ratefn.Func, ext []int, k int) ([]int, float64, error) {
	row, val, err := BestResponseToLoadsInto(NewWorkspace(), rate, ext, k)
	if err != nil {
		return nil, 0, err
	}
	return append([]int(nil), row...), val, nil
}

// BestResponseToLoadsInto is the allocation-free form of
// BestResponseToLoads: the DP runs inside ws and the returned row aliases
// ws. Callers that evaluate many load vectors (simulation loops, the
// distributed protocol, benchmarks) reuse one workspace across calls.
func BestResponseToLoadsInto(ws *Workspace, rate ratefn.Func, ext []int, k int) ([]int, float64, error) {
	if ws == nil {
		return nil, 0, fmt.Errorf("core: nil workspace")
	}
	if rate == nil {
		return nil, 0, fmt.Errorf("core: nil rate function")
	}
	if len(ext) == 0 {
		return nil, 0, fmt.Errorf("core: no channels")
	}
	if k < 0 {
		return nil, 0, fmt.Errorf("core: negative budget %d", k)
	}
	for c, l := range ext {
		if l < 0 {
			return nil, 0, fmt.Errorf("core: negative external load %d on channel %d", l, c)
		}
	}
	C := len(ext)
	ws.ensure(C, k)
	fillSharesFunc(ws, rate, ext, k)
	row, val := bestResponseDP(ws, C, k)
	return row, val, nil
}

// FindDeviation searches all users for a profitable unilateral deviation
// using the exact best-response oracle. It returns nil when a is a (weak)
// Nash equilibrium within tolerance eps (pass DefaultEps unless you have a
// reason not to).
func (g *Game) FindDeviation(a *Alloc, eps float64) (*Deviation, error) {
	if eps < 0 || math.IsNaN(eps) {
		return nil, fmt.Errorf("core: negative tolerance %v", eps)
	}
	if err := g.CheckAlloc(a); err != nil {
		return nil, err
	}
	return g.FindDeviationWith(NewWorkspace(), a, eps)
}

// FindDeviationWith is FindDeviation running in the caller's workspace: it
// sweeps users in index order with the allocation-free DP and returns the
// first profitable deviation (identical to FindDeviation's answer), or nil.
// Zero allocations unless a deviation is found. The allocation is not
// re-validated.
func (g *Game) FindDeviationWith(ws *Workspace, a *Alloc, eps float64) (*Deviation, error) {
	for i := 0; i < g.users; i++ {
		current := g.Utility(a, i)
		row, best, err := g.BestResponseInto(ws, a, i)
		if err != nil {
			return nil, err
		}
		if best > current+eps {
			return &Deviation{
				User:    i,
				Current: a.Row(i),
				Better:  append([]int(nil), row...),
				Gain:    best - current,
			}, nil
		}
	}
	return nil, nil
}

// IsNashEquilibrium reports whether a is a Nash equilibrium of g, decided by
// exhaustive best response with tolerance DefaultEps. This is the library's
// ground-truth oracle; TheoremNE is the paper's closed-form
// characterisation.
func (g *Game) IsNashEquilibrium(a *Alloc) (bool, error) {
	if err := g.CheckAlloc(a); err != nil {
		return false, err
	}
	return g.IsNashEquilibriumWith(NewWorkspace(), a)
}

// IsNashEquilibriumWith decides NE membership in the caller's workspace
// with the screen-then-prove oracle (RateView.ScreenedNE), returning
// exactly the same verdict as IsNashEquilibrium with zero steady-state
// allocations: most non-equilibria exit on O(|C|) table reads with no DP
// at all, and only surviving profiles pay the full per-user DP proof.
//
// The allocation is not re-validated; callers guarantee it is legal.
func (g *Game) IsNashEquilibriumWith(ws *Workspace, a *Alloc) (bool, error) {
	if ws == nil {
		return false, fmt.Errorf("core: nil workspace")
	}
	return g.view.ScreenedNE(ws, a, g.radios, nil, DefaultEps), nil
}

// UtilityRat computes U_i(S) exactly, if the game's rate function supports
// exact rational evaluation. The second return is false otherwise.
func (g *Game) UtilityRat(a *Alloc, i int) (*big.Rat, bool) {
	exact, ok := g.rate.(ratefn.Exact)
	if !ok {
		return nil, false
	}
	u := new(big.Rat)
	for c := 0; c < a.Channels(); c++ {
		ki := a.Radios(i, c)
		if ki == 0 {
			continue
		}
		kc := a.Load(c)
		term := new(big.Rat).Mul(big.NewRat(int64(ki), int64(kc)), exact.RateRat(kc))
		u.Add(u, term)
	}
	return u, true
}

// BestResponseRat is the exact-arithmetic analogue of BestResponse. It
// returns an optimal row and its utility as a big.Rat, or ok=false if the
// rate function does not support exact evaluation.
func (g *Game) BestResponseRat(a *Alloc, i int) (row []int, util *big.Rat, ok bool, err error) {
	exact, isExact := g.rate.(ratefn.Exact)
	if !isExact {
		return nil, nil, false, nil
	}
	if err := g.CheckAlloc(a); err != nil {
		return nil, nil, false, err
	}
	if i < 0 || i >= g.users {
		return nil, nil, false, fmt.Errorf("core: user %d out of range [0, %d)", i, g.users)
	}
	k := g.radios
	C := g.channels

	v := make([][]*big.Rat, C)
	for c := 0; c < C; c++ {
		ext := a.Load(c) - a.Radios(i, c)
		v[c] = make([]*big.Rat, k+1)
		v[c][0] = new(big.Rat)
		for x := 1; x <= k; x++ {
			total := ext + x
			v[c][x] = new(big.Rat).Mul(big.NewRat(int64(x), int64(total)), exact.RateRat(total))
		}
	}

	f := make([][]*big.Rat, C+1)
	choice := make([][]int, C)
	f[C] = make([]*big.Rat, k+1)
	for b := range f[C] {
		f[C][b] = new(big.Rat)
	}
	for c := C - 1; c >= 0; c-- {
		f[c] = make([]*big.Rat, k+1)
		choice[c] = make([]int, k+1)
		for b := 0; b <= k; b++ {
			var best *big.Rat
			bestX := 0
			for x := 0; x <= b; x++ {
				val := new(big.Rat).Add(v[c][x], f[c+1][b-x])
				if best == nil || val.Cmp(best) > 0 {
					best, bestX = val, x
				}
			}
			f[c][b] = best
			choice[c][b] = bestX
		}
	}

	row = make([]int, C)
	b := k
	for c := 0; c < C; c++ {
		row[c] = choice[c][b]
		b -= row[c]
	}
	return row, f[0][k], true, nil
}

// IsNashEquilibriumRat decides NE membership in exact rational arithmetic.
// ok=false means the rate function cannot be evaluated exactly; use the
// floating-point oracle instead.
func (g *Game) IsNashEquilibriumRat(a *Alloc) (isNE, ok bool, err error) {
	for i := 0; i < g.users; i++ {
		current, exact := g.UtilityRat(a, i)
		if !exact {
			return false, false, nil
		}
		_, best, exact, err := g.BestResponseRat(a, i)
		if err != nil {
			return false, false, err
		}
		if !exact {
			return false, false, nil
		}
		if best.Cmp(current) > 0 {
			return false, true, nil
		}
	}
	return true, true, nil
}
