package core

import (
	"math"
	"testing"

	"github.com/multiradio/chanalloc/internal/ratefn"
)

// referenceOptimalLoadWelfare is the pre-slab welfare DP kept verbatim (the
// per-row allocations, negInf tail sentinel and choice matrix of the
// original OptimalLoadWelfare) as the differential baseline for the
// slab-backed rewrite. Requires C >= 1 and total >= 0, which was the old
// code's implicit domain.
func referenceOptimalLoadWelfare(rate ratefn.Func, C, total int) (float64, []int) {
	negInf := math.Inf(-1)
	f := make([][]float64, C+1)
	choice := make([][]int, C)
	for c := range f {
		f[c] = make([]float64, total+1)
	}
	for t := 1; t <= total; t++ {
		f[C][t] = negInf // leftover radios are not allowed
	}
	for c := C - 1; c >= 0; c-- {
		choice[c] = make([]int, total+1)
		for t := 0; t <= total; t++ {
			best, bestL := negInf, 0
			for l := 0; l <= t; l++ {
				tail := f[c+1][t-l]
				if tail == negInf {
					continue
				}
				val := rate.Rate(l) + tail
				if val > best {
					best, bestL = val, l
				}
			}
			f[c][t] = best
			choice[c][t] = bestL
		}
	}
	loads := make([]int, C)
	t := total
	for c := 0; c < C; c++ {
		loads[c] = choice[c][t]
		t -= loads[c]
	}
	return f[0][total], loads
}

// TestWelfareDPMatchesReference pins the slab DP — both the workspace form
// and the one-shot wrapper — against the original implementation, value and
// chosen loads, bit for bit, across every rate family. The workspace is
// deliberately reused across all (C, total) shapes so stale slab contents
// from larger problems cannot leak into smaller ones.
func TestWelfareDPMatchesReference(t *testing.T) {
	ws := NewWorkspace()
	for _, rate := range differentialRates(t) {
		for C := 1; C <= 4; C++ {
			for total := 0; total <= 9; total++ {
				wantVal, wantLoads := referenceOptimalLoadWelfare(rate, C, total)
				gotVal, gotLoads := OptimalLoadWelfareInto(ws, rate, C, total)
				if gotVal != wantVal {
					t.Fatalf("%s C=%d total=%d: slab value %v, reference %v",
						rate.Name(), C, total, gotVal, wantVal)
				}
				if len(gotLoads) != C {
					t.Fatalf("%s C=%d total=%d: %d loads", rate.Name(), C, total, len(gotLoads))
				}
				for c := range wantLoads {
					if gotLoads[c] != wantLoads[c] {
						t.Fatalf("%s C=%d total=%d: slab loads %v, reference %v",
							rate.Name(), C, total, gotLoads, wantLoads)
					}
				}
				oneVal, oneLoads := OptimalLoadWelfare(rate, C, total)
				if oneVal != wantVal {
					t.Fatalf("%s C=%d total=%d: one-shot value %v, reference %v",
						rate.Name(), C, total, oneVal, wantVal)
				}
				for c := range wantLoads {
					if oneLoads[c] != wantLoads[c] {
						t.Fatalf("%s C=%d total=%d: one-shot loads %v, reference %v",
							rate.Name(), C, total, oneLoads, wantLoads)
					}
				}
			}
		}
	}
}

// TestOptimalLoadWelfareDegenerate covers the inputs the pre-slab code
// could not take without indexing a nil row: zero channels, zero totals and
// negative totals must come back as explicit values, never a panic.
func TestOptimalLoadWelfareDegenerate(t *testing.T) {
	rate := ratefn.NewTDMA(2)
	ws := NewWorkspace()

	if val, loads := OptimalLoadWelfareInto(ws, rate, 0, 0); val != 0 || len(loads) != 0 {
		t.Fatalf("C=0 total=0: got (%v, %v), want (0, [])", val, loads)
	}
	if val, loads := OptimalLoadWelfareInto(ws, rate, 0, 3); !math.IsInf(val, -1) || len(loads) != 0 {
		t.Fatalf("C=0 total=3: got (%v, %v), want (-Inf, [])", val, loads)
	}
	if val, loads := OptimalLoadWelfareInto(ws, rate, -1, 0); val != 0 || len(loads) != 0 {
		t.Fatalf("C=-1 total=0: got (%v, %v), want (0, [])", val, loads)
	}
	val, loads := OptimalLoadWelfareInto(ws, rate, 3, 0)
	if val != 0 || len(loads) != 3 {
		t.Fatalf("C=3 total=0: got (%v, %v), want (0, [0 0 0])", val, loads)
	}
	for c, l := range loads {
		if l != 0 {
			t.Fatalf("C=3 total=0: load[%d] = %d, want 0", c, l)
		}
	}
	val, loads = OptimalLoadWelfareInto(ws, rate, 3, -2)
	if !math.IsInf(val, -1) || len(loads) != 3 {
		t.Fatalf("C=3 total=-2: got (%v, %v), want (-Inf, [0 0 0])", val, loads)
	}
	for c, l := range loads {
		if l != 0 {
			t.Fatalf("C=3 total=-2: load[%d] = %d, want 0", c, l)
		}
	}

	// The one-shot wrapper takes the same path.
	if val, loads := OptimalLoadWelfare(rate, 0, 0); val != 0 || loads == nil || len(loads) != 0 {
		t.Fatalf("wrapper C=0 total=0: got (%v, %v), want (0, non-nil [])", val, loads)
	}
	if val, _ := OptimalLoadWelfare(rate, 0, 5); !math.IsInf(val, -1) {
		t.Fatalf("wrapper C=0 total=5: got %v, want -Inf", val)
	}
	if val, loads := OptimalLoadWelfare(rate, 2, -1); !math.IsInf(val, -1) || len(loads) != 2 {
		t.Fatalf("wrapper C=2 total=-1: got (%v, %v), want (-Inf, [0 0])", val, loads)
	}
	// A nil workspace allocates its own.
	if val, _ := OptimalLoadWelfareInto(nil, rate, 2, 3); val != referenceFirst(rate, 2, 3) {
		t.Fatalf("nil workspace gave %v", val)
	}
}

func referenceFirst(rate ratefn.Func, C, total int) float64 {
	v, _ := referenceOptimalLoadWelfare(rate, C, total)
	return v
}

// TestOptimalLoadWelfareIntoAliasing: the returned loads alias the
// workspace, so the next call overwrites them — documented behaviour the
// memo and one-shot wrappers must defend against by copying.
func TestOptimalLoadWelfareIntoAliasing(t *testing.T) {
	rate := ratefn.Harmonic{R0: 2, Alpha: 0.6}
	ws := NewWorkspace()
	_, first := OptimalLoadWelfareInto(ws, rate, 3, 6)
	got := append([]int(nil), first...)
	OptimalLoadWelfareInto(ws, rate, 3, 0)
	if first[0] != 0 && first[0] == got[0] {
		// Loads for total=0 are all zero; if the first result had a nonzero
		// leading load, the buffer must now show the overwrite.
		t.Fatalf("Into result did not alias the workspace: %v still %v", first, got)
	}
	_, fresh := OptimalLoadWelfare(rate, 3, 6)
	for c := range fresh {
		if fresh[c] != got[c] {
			t.Fatalf("one-shot loads %v, want %v", fresh, got)
		}
	}
}
