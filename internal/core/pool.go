package core

import "sync"

// WorkspacePool recycles Workspaces across goroutines. The DP slabs inside
// a Workspace are grown on demand and never shrink, so a recycled workspace
// usually serves its next borrower without touching the allocator — the
// steady state of a pool-backed hot path (engine shards, dynamics batches,
// live-server event handlers) is zero allocations per operation.
//
// Get and Put are safe for concurrent use; the Workspace between them is
// not — each borrower owns it exclusively until Put.
type WorkspacePool struct {
	p sync.Pool
}

// NewWorkspacePool returns an empty pool; workspaces are created on first
// Get and recycled thereafter.
func NewWorkspacePool() *WorkspacePool {
	wp := &WorkspacePool{}
	wp.p.New = func() any {
		ws := NewWorkspace()
		ws.poolFresh = true
		return ws
	}
	return wp
}

// Get borrows a workspace, creating one if the pool is empty. Hits (a
// recycled workspace, the steady state) and misses (a fresh allocation)
// feed the workspace_pool_* counters — the live view of whether a hot
// path is really running allocation-free.
func (wp *WorkspacePool) Get() *Workspace {
	ws := wp.p.Get().(*Workspace)
	if ws.poolFresh {
		ws.poolFresh = false
		mPoolMisses.Inc()
	} else {
		mPoolHits.Inc()
	}
	return ws
}

// Put returns a workspace to the pool. The workspace must not be used after
// Put; nil is ignored. Cached screen state is NOT reset here — every screen
// consumer calls ResetScreenCache before a walk, and the DP slabs carry no
// cross-call semantics. Accumulated kernel counts are flushed to the
// global obs counters on the way in, so pooled hot paths report without
// paying a single atomic inside their loops.
func (wp *WorkspacePool) Put(ws *Workspace) {
	if ws != nil {
		ws.FlushObs()
		wp.p.Put(ws)
	}
}

// Workspaces is the package-level shared pool: callers that would otherwise
// construct a fresh Workspace per batch, shard or event borrow from here so
// slab allocations amortise across the process.
var Workspaces = NewWorkspacePool()
