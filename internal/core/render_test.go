package core

import (
	"strings"
	"testing"
)

func TestOccupancyDiagramFigure1(t *testing.T) {
	a := mustAlloc(t, figure1Matrix())
	out := OccupancyDiagram(a)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// max load 4 -> 4 levels + separator + channel labels.
	if len(lines) != 6 {
		t.Fatalf("diagram has %d lines, want 6:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[len(lines)-1], "c5") {
		t.Fatalf("missing channel labels:\n%s", out)
	}
	// Channel c1 hosts a radio from every user; the bottom level must show u1.
	bottom := lines[3]
	if !strings.Contains(bottom, "u1") {
		t.Fatalf("bottom level missing u1:\n%s", out)
	}
	// c5 is used only by u2: exactly one radio across all levels.
	count := strings.Count(out, "u2")
	if count != 3 { // u2 has 3 radios total (c1, c3, c5)
		t.Fatalf("u2 appears %d times, want 3:\n%s", count, out)
	}
}

func TestOccupancyDiagramStackedUser(t *testing.T) {
	a := mustAlloc(t, [][]int{
		{2, 0},
		{0, 1},
	})
	out := OccupancyDiagram(a)
	if strings.Count(out, "u1") != 2 {
		t.Fatalf("stacked user should appear twice:\n%s", out)
	}
}

func TestOccupancyDiagramEmpty(t *testing.T) {
	a, err := NewAlloc(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := OccupancyDiagram(a)
	if !strings.Contains(out, "empty") {
		t.Fatalf("empty allocation should say so: %q", out)
	}
}
