package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/multiradio/chanalloc/internal/combin"
)

// Symmetry-reduced NE enumeration.
//
// Users with identical radio budgets are exchangeable: swapping the
// strategy rows of two same-budget users permutes per-user utilities the
// same way and leaves every channel load — an integer sum over rows —
// unchanged, so each user's floating-point screen, DP and utility
// computations see bit-identical inputs. The NE verdict is therefore
// constant on each orbit of the "permute rows within budget classes"
// action, and it suffices to test one canonical representative per orbit:
// the profile whose row indices are non-decreasing along each class. For
// an all-equal-budget game with R rows per user this shrinks the walk from
// R^N profiles to C(R+N-1, N) — the N!-ish reduction the paper's
// exchangeability argument promises.

// CanonicalNE is one equilibrium orbit: a canonical representative (row
// indices non-decreasing within each exchangeability class) together with
// the orbit size — the number of distinct strategy profiles obtained by
// permuting rows among exchangeable users, every one of them an NE.
type CanonicalNE struct {
	Alloc *Alloc
	Orbit int64
}

// OrbitEnumerator runs symmetry-reduced NE enumeration for one game. It is
// the engine shared by the uniform and heterogeneous enumerators, exactly
// as ScreenedNE is their shared oracle. Exchangeability classes are the
// groups of equal-budget users; RowsFor must return identical row tables
// for users of equal budget (they have the same strategy space), and the
// returned slices must be stable — the walk diffs old against new rows to
// maintain the incremental screen cache's dirty-channel stamps.
type OrbitEnumerator struct {
	View      *RateView
	Channels  int
	Budgets   []int               // per-user radio budgets (exchangeability key)
	RowsFor   func(u int) [][]int // user u's strategy rows; shared within a class
	Eps       float64
	ErrPrefix string
}

// orbitPred computes within-class predecessor links: pred[u] is the
// largest u' < u with Budgets[u'] == Budgets[u], or -1 when u is the first
// of its class. Exchangeable users need not be contiguous (mixed-budget
// games interleave classes); the canonical constraint idx[u] >= idx[pred[u]]
// chains through these links.
func orbitPred(budgets []int) []int {
	pred := make([]int, len(budgets))
	last := make(map[int]int, 4)
	for u, b := range budgets {
		if p, seen := last[b]; seen {
			pred[u] = p
		} else {
			pred[u] = -1
		}
		last[b] = u
	}
	return pred
}

// orbitClasses groups user indices (ascending) by exchangeability class,
// in order of first appearance.
func orbitClasses(pred []int) [][]int {
	classOf := make([]int, len(pred))
	var classes [][]int
	for u, p := range pred {
		if p < 0 {
			classOf[u] = len(classes)
			classes = append(classes, []int{u})
			continue
		}
		ci := classOf[p]
		classOf[u] = ci
		classes[ci] = append(classes[ci], u)
	}
	return classes
}

// orbitSizeOf returns the number of distinct profiles in the orbit of the
// canonical vector idx: the product over classes of the multinomial of the
// multiplicities of equal indices. Requires idx non-decreasing along each
// class (the walk's invariant); multiplicities are then run lengths.
func orbitSizeOf(idx []int, classes [][]int) (int64, error) {
	size := int64(1)
	var counts []int
	for _, class := range classes {
		counts = counts[:0]
		run := 1
		for j := 1; j < len(class); j++ {
			if idx[class[j]] == idx[class[j-1]] {
				run++
				continue
			}
			counts = append(counts, run)
			run = 1
		}
		counts = append(counts, run)
		m, err := combin.Multinomial(counts)
		if err != nil {
			return 0, fmt.Errorf("core: orbit size: %w", err)
		}
		if size > (1<<62)/m {
			return 0, fmt.Errorf("core: orbit size of %v overflows int64", idx)
		}
		size *= m
	}
	return size, nil
}

// expandOrbitIdx calls emit with every index vector in the orbit of idx:
// all distinct ways of rearranging, within each class, the multiset of
// indices idx assigns to that class. emit receives a reused buffer it must
// copy if retained. idx itself need not be canonical — class values are
// sorted before permuting, so the emitted set is the full orbit either way.
func expandOrbitIdx(idx []int, classes [][]int, emit func([]int)) {
	cur := make([]int, len(idx))
	copy(cur, idx)
	var rec func(ci int)
	rec = func(ci int) {
		if ci == len(classes) {
			emit(cur)
			return
		}
		class := classes[ci]
		vals := make([]int, len(class))
		for j, u := range class {
			vals[j] = idx[u]
		}
		sort.Ints(vals)
		// Distinct values with multiplicities; the classic multiset
		// permutation recursion over them emits each arrangement once.
		distinct := vals[:0:0]
		var counts []int
		for _, v := range vals {
			if n := len(distinct); n > 0 && distinct[n-1] == v {
				counts[n-1]++
				continue
			}
			distinct = append(distinct, v)
			counts = append(counts, 1)
		}
		var place func(pos int)
		place = func(pos int) {
			if pos == len(class) {
				rec(ci + 1)
				return
			}
			for vi, v := range distinct {
				if counts[vi] == 0 {
					continue
				}
				counts[vi]--
				cur[class[pos]] = v
				place(pos + 1)
				counts[vi]++
			}
		}
		place(0)
	}
	rec(0)
}

// orbitWalk enumerates canonical index vectors — idx[u] >= idx[pred[u]]
// for every u — in lexicographic order, keeping the allocation's rows in
// step with the digits. Entries idx[0..offset-1] are pinned by the caller
// (rows already set); the walk covers digits offset..len(idx)-1, starting
// each at its class minimum. step (if non-nil) runs once per profile
// before that profile's row mutations; changed (if non-nil) runs after
// every successful SetRow with the digit's old index (-1 on first
// assignment) — together they drive the incremental screen cache. fn
// decides continuation, reading a and idx as read-only.
func orbitWalk(a *Alloc, idx []int, offset int, sizes, pred []int, rowFor func(u, ri int) []int, errPrefix string, step func(), changed func(u, oldRi, newRi int), fn func() bool) error {
	n := len(idx)
	setRow := func(u, oldRi, newRi int) error {
		if err := a.SetRow(u, rowFor(u, newRi)); err != nil {
			return fmt.Errorf("%s: setting row for user %d: %w", errPrefix, u, err)
		}
		if changed != nil {
			changed(u, oldRi, newRi)
		}
		return nil
	}
	if step != nil {
		step()
	}
	for u := offset; u < n; u++ {
		min := 0
		if p := pred[u]; p >= 0 {
			min = idx[p]
		}
		idx[u] = min
		if err := setRow(u, -1, min); err != nil {
			return err
		}
	}
	for {
		if !fn() {
			return nil
		}
		// Lexicographic successor among canonical vectors: bump the
		// rightmost free digit below its ceiling (idx[u]+1 stays canonical
		// because it only grows above idx[pred[u]]), then reset every later
		// digit to its class minimum — the least canonical completion.
		u := n - 1
		for ; u >= offset; u-- {
			if idx[u] < sizes[u]-1 {
				break
			}
		}
		if u < offset {
			return nil
		}
		if step != nil {
			step()
		}
		old := idx[u]
		idx[u] = old + 1
		if err := setRow(u, old, old+1); err != nil {
			return err
		}
		for w := u + 1; w < n; w++ {
			min := 0
			if p := pred[w]; p >= 0 {
				min = idx[p]
			}
			if idx[w] == min {
				continue
			}
			oldW := idx[w]
			idx[w] = min
			if err := setRow(w, oldW, min); err != nil {
				return err
			}
		}
	}
}

// Canonical walks the full canonical space and returns every equilibrium
// orbit, representatives in lexicographic index order.
func (oe *OrbitEnumerator) Canonical() ([]CanonicalNE, error) {
	return oe.enumerate(nil)
}

// CanonicalShard is Canonical restricted to the sub-space with the leading
// odometer digits pinned to the given row indices — the unit of work of
// the parallel enumerator. A prefix that is not canonical (a pinned digit
// below its class predecessor) denotes an empty shard and returns nil
// immediately, which is how sharding the raw digit grid composes with the
// reduced walk: non-canonical shards vanish instead of re-walking orbits.
func (oe *OrbitEnumerator) CanonicalShard(pinned []int) ([]CanonicalNE, error) {
	return oe.enumerate(pinned)
}

func (oe *OrbitEnumerator) enumerate(pinned []int) ([]CanonicalNE, error) {
	users := len(oe.Budgets)
	pred := orbitPred(oe.Budgets)
	classes := orbitClasses(pred)
	tables := make([][][]int, users)
	sizes := make([]int, users)
	for u := range tables {
		tables[u] = oe.RowsFor(u)
		sizes[u] = len(tables[u])
	}
	a, err := NewAlloc(users, oe.Channels)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", oe.ErrPrefix, err)
	}
	idx := make([]int, users)
	for u, ri := range pinned {
		if ri < 0 || ri >= sizes[u] {
			return nil, fmt.Errorf("%s: pinned digit %d out of range for user %d", oe.ErrPrefix, ri, u)
		}
		if p := pred[u]; p >= 0 && idx[p] > ri {
			// Non-canonical prefix: empty shard. Its whole subgrid is
			// decided by some canonical representative's orbit — exactly
			// the profiles symmetry reduction saves.
			if grid, ok := shardGridSize(sizes, len(pinned)); ok {
				mOrbitSkips.Add(uint64(grid))
			}
			return nil, nil
		}
		idx[u] = ri
		if err := a.SetRow(u, tables[u][ri]); err != nil {
			return nil, fmt.Errorf("%s: setting pinned row for user %d: %w", oe.ErrPrefix, u, err)
		}
	}
	ws := Workspaces.Get()
	defer Workspaces.Put(ws)
	ws.ResetScreenCache(users, oe.Channels)
	var out []CanonicalNE
	var innerErr error
	visited := uint64(0)
	err = orbitWalk(a, idx, len(pinned), sizes, pred,
		func(u, ri int) []int { return tables[u][ri] },
		oe.ErrPrefix,
		ws.ScreenStep,
		func(u, oldRi, newRi int) {
			ws.MarkRowChanged(u)
			newRow := tables[u][newRi]
			if oldRi < 0 {
				for c, v := range newRow {
					if v != 0 {
						ws.MarkLoadChanged(c)
					}
				}
				return
			}
			oldRow := tables[u][oldRi]
			for c, v := range newRow {
				if v != oldRow[c] {
					ws.MarkLoadChanged(c)
				}
			}
		},
		func() bool {
			visited++
			ws.obs.orbitProfiles++
			if oe.View.ScreenedNEIncremental(ws, a, 0, oe.Budgets, oe.Eps) {
				orbit, oerr := orbitSizeOf(idx, classes)
				if oerr != nil {
					innerErr = oerr
					return false
				}
				out = append(out, CanonicalNE{Alloc: a.Clone(), Orbit: orbit})
			}
			return true
		})
	if err != nil {
		return nil, err
	}
	if innerErr != nil {
		return nil, innerErr
	}
	// Profiles this shard covered minus profiles it had to visit is the
	// symmetry saving; shards whose full subgrid overflows int64 (far past
	// any enumerable cap) just skip the metric.
	if grid, ok := shardGridSize(sizes, len(pinned)); ok && uint64(grid) >= visited {
		mOrbitSkips.Add(uint64(grid) - visited)
	}
	return out, nil
}

// shardGridSize is the unreduced profile count of an enumeration shard:
// the product of the unpinned digits' alphabet sizes. ok=false on int64
// overflow.
func shardGridSize(sizes []int, pinned int) (int64, bool) {
	total := int64(1)
	for _, s := range sizes[pinned:] {
		if s == 0 {
			return 0, true
		}
		if total > (1<<62)/int64(s) {
			return 0, false
		}
		total *= int64(s)
	}
	return total, true
}

// CanonicalCount returns the number of canonical profiles the reduced walk
// visits: the product over classes of MultisetCount(rows, class size).
// Compare against the full R^N grid to read off the reduction factor.
func (oe *OrbitEnumerator) CanonicalCount() (int64, error) {
	classes := orbitClasses(orbitPred(oe.Budgets))
	total := int64(1)
	for _, class := range classes {
		n, err := combin.MultisetCount(len(oe.RowsFor(class[0])), len(class))
		if err != nil {
			return 0, fmt.Errorf("%s: canonical count: %w", oe.ErrPrefix, err)
		}
		if total > (1<<62)/n {
			return 0, fmt.Errorf("%s: canonical count overflows int64", oe.ErrPrefix)
		}
		total *= n
	}
	return total, nil
}

// rowKey encodes a strategy row for map lookup during expansion.
func rowKey(row []int) string {
	var b strings.Builder
	for _, v := range row {
		b.WriteString(strconv.Itoa(v))
		b.WriteByte(',')
	}
	return b.String()
}

// Expand reconstructs the unreduced enumeration output from equilibrium
// orbits: every member profile of every orbit, materialised as its own
// allocation, in the exact order the unreduced odometer would have visited
// them. Orbits of distinct canonical vectors interleave in odometer order
// (the orbit of (0,2) contains (2,0), which precedes the orbit-mate (1,1)
// of (1,1)), so the expanded index vectors are sorted globally rather than
// concatenated per orbit. Representatives must be legal allocations over
// the game's strategy rows and pairwise non-equivalent; the enumerators
// guarantee both.
func (oe *OrbitEnumerator) Expand(reps []CanonicalNE) ([]*Alloc, error) {
	if len(reps) == 0 {
		return nil, nil
	}
	users := len(oe.Budgets)
	pred := orbitPred(oe.Budgets)
	classes := orbitClasses(pred)
	tables := make([][][]int, users)
	for u := range tables {
		tables[u] = oe.RowsFor(u)
	}
	// Row -> index lookup, one table per budget class.
	lookup := make(map[int]map[string]int, 4)
	buf := make([]int, oe.Channels)
	var vecs [][]int
	for _, rep := range reps {
		idx := make([]int, users)
		for u := 0; u < users; u++ {
			m := lookup[oe.Budgets[u]]
			if m == nil {
				m = make(map[string]int, len(tables[u]))
				for ri, row := range tables[u] {
					m[rowKey(row)] = ri
				}
				lookup[oe.Budgets[u]] = m
			}
			for c := 0; c < oe.Channels; c++ {
				buf[c] = rep.Alloc.Radios(u, c)
			}
			ri, found := m[rowKey(buf)]
			if !found {
				return nil, fmt.Errorf("%s: expand: user %d's row is not a strategy row of the game", oe.ErrPrefix, u)
			}
			idx[u] = ri
		}
		expandOrbitIdx(idx, classes, func(v []int) {
			vecs = append(vecs, append([]int(nil), v...))
		})
	}
	sort.Slice(vecs, func(i, j int) bool {
		x, y := vecs[i], vecs[j]
		for p := range x {
			if x[p] != y[p] {
				return x[p] < y[p]
			}
		}
		return false
	})
	out := make([]*Alloc, len(vecs))
	for i, v := range vecs {
		a, err := NewAlloc(users, oe.Channels)
		if err != nil {
			return nil, fmt.Errorf("%s: expand: %w", oe.ErrPrefix, err)
		}
		for u, ri := range v {
			if err := a.SetRow(u, tables[u][ri]); err != nil {
				return nil, fmt.Errorf("%s: expand: setting row for user %d: %w", oe.ErrPrefix, u, err)
			}
		}
		out[i] = a
	}
	return out, nil
}

// orbitEnumerator builds the symmetry-reduction engine for a uniform-budget
// game: one exchangeability class holding every user.
func (g *Game) orbitEnumerator(rows [][]int) *OrbitEnumerator {
	budgets := make([]int, g.users)
	for i := range budgets {
		budgets[i] = g.radios
	}
	return &OrbitEnumerator{
		View:      g.view,
		Channels:  g.channels,
		Budgets:   budgets,
		RowsFor:   func(int) [][]int { return rows },
		Eps:       DefaultEps,
		ErrPrefix: "core",
	}
}

// EnumerateNECanonical enumerates Nash equilibria over canonical orbit
// representatives only: one allocation per equilibrium orbit plus the
// orbit size, in lexicographic representative order. For an all-equal-k
// game every within-orbit permutation is checked exactly once instead of
// up to N! times. The profile cap guards the FULL unreduced space, so the
// refusal behaviour is identical to ForEachAlloc/EnumerateNE even though
// the reduced walk visits far fewer profiles.
func EnumerateNECanonical(g *Game, maxProfiles int64) ([]CanonicalNE, error) {
	rows, err := strategyRows(g)
	if err != nil {
		return nil, err
	}
	if err := checkProfileCap(g.Users(), int64(len(rows)), maxProfiles); err != nil {
		return nil, err
	}
	return g.orbitEnumerator(rows).Canonical()
}

// ExpandNEOrbits reconstructs the unreduced EnumerateNE output (every
// orbit member, odometer order) from canonical representatives.
func ExpandNEOrbits(g *Game, reps []CanonicalNE) ([]*Alloc, error) {
	rows, err := strategyRows(g)
	if err != nil {
		return nil, err
	}
	return g.orbitEnumerator(rows).Expand(reps)
}
