package core

import (
	"fmt"

	"github.com/multiradio/chanalloc/internal/des"
)

// TieBreak selects among equally attractive channels in Algorithm 1.
type TieBreak int

// Tie-breaking policies. TieFirst reproduces the deterministic reading of
// the paper's pseudocode; TieRandom models devices picking uniformly among
// least-loaded channels; TieLast is an adversarially different deterministic
// order used in tests to show the NE property is tie-break independent.
const (
	TieFirst TieBreak = iota + 1
	TieRandom
	TieLast
)

// String implements fmt.Stringer.
func (t TieBreak) String() string {
	switch t {
	case TieFirst:
		return "first"
	case TieRandom:
		return "random"
	case TieLast:
		return "last"
	default:
		return fmt.Sprintf("TieBreak(%d)", int(t))
	}
}

// algorithm1Config carries the functional options of Algorithm1.
type algorithm1Config struct {
	tie     TieBreak
	seed    uint64
	order   []int
	literal bool
}

// Algorithm1Option configures Algorithm1.
type Algorithm1Option func(*algorithm1Config)

// WithTieBreak selects the tie-breaking policy (default TieFirst).
func WithTieBreak(t TieBreak) Algorithm1Option {
	return func(c *algorithm1Config) { c.tie = t }
}

// WithSeed fixes the RNG seed used by TieRandom (default 0).
func WithSeed(seed uint64) Algorithm1Option {
	return func(c *algorithm1Config) { c.seed = seed }
}

// WithOrder sets the order in which users allocate (a permutation of
// 0..|N|-1). The paper's algorithm is sequential and centralised; the order
// is part of the coordination. Default is 0, 1, 2, ...
func WithOrder(order []int) Algorithm1Option {
	return func(c *algorithm1Config) { c.order = append([]int(nil), order...) }
}

// WithLiteralRule makes the non-flat branch follow the paper's pseudocode to
// the letter: the radio goes to *any* least-loaded channel, even one the
// user already occupies. Under unlucky tie-breaking this can stack a user's
// radios on one channel and the result is then NOT a Nash equilibrium —
// a disambiguation gap in the paper's Algorithm 1 that experiment E10
// quantifies. The default (corrected) rule prefers least-loaded channels the
// user does not occupy yet, which always lands on a Theorem-1 NE.
func WithLiteralRule() Algorithm1Option {
	return func(c *algorithm1Config) { c.literal = true }
}

// Algorithm1 runs the paper's Algorithm 1: users sequentially place their k
// radios one at a time; each radio goes to a least-loaded channel, except
// that when all loads are equal it goes to a channel the user does not
// occupy yet. The result is always a Pareto-optimal Nash equilibrium
// (Theorems 1 and 2).
func Algorithm1(g *Game, opts ...Algorithm1Option) (*Alloc, error) {
	cfg := algorithm1Config{tie: TieFirst}
	for _, opt := range opts {
		opt(&cfg)
	}
	switch cfg.tie {
	case TieFirst, TieRandom, TieLast:
	default:
		return nil, fmt.Errorf("core: unknown tie break %d", int(cfg.tie))
	}
	order := cfg.order
	if order == nil {
		order = make([]int, g.Users())
		for i := range order {
			order[i] = i
		}
	}
	if err := checkPermutation(order, g.Users()); err != nil {
		return nil, err
	}
	rng := des.NewRNG(cfg.seed)

	a := g.NewEmptyAlloc()
	placer := Placer{Tie: cfg.tie, RNG: rng, Literal: cfg.literal}
	for _, i := range order {
		loads := a.Loads()
		row, err := placer.Place(loads, g.Radios())
		if err != nil {
			return nil, fmt.Errorf("core: algorithm1 user %d: %w", i, err)
		}
		if err := a.SetRow(i, row); err != nil {
			return nil, fmt.Errorf("core: algorithm1 applying row for user %d: %w", i, err)
		}
	}
	return a, nil
}

// Placer implements the per-user inner loop of Algorithm 1: place k radios
// one at a time against a fixed background load vector. It is shared by the
// centralised Algorithm1 and the distributed protocol (package dist), where
// each device runs exactly this routine on the loads it learned from its
// peers.
type Placer struct {
	// Tie selects among equally attractive channels; zero value means
	// TieFirst.
	Tie TieBreak
	// RNG drives TieRandom; may be nil for deterministic policies.
	RNG *des.RNG
	// Literal reproduces the paper-literal candidate rule (see
	// WithLiteralRule).
	Literal bool
}

// Place returns a strategy row placing k radios against the background
// loads: each radio goes to a least-loaded channel (counting radios placed
// so far), preferring channels this row does not use yet unless Literal is
// set. The input slice is not modified.
func (p Placer) Place(loads []int, k int) ([]int, error) {
	if len(loads) == 0 {
		return nil, fmt.Errorf("core: place: no channels")
	}
	if k < 0 || k > len(loads) {
		return nil, fmt.Errorf("core: place: k = %d out of [0, %d]", k, len(loads))
	}
	tie := p.Tie
	if tie == 0 {
		tie = TieFirst
	}
	if tie == TieRandom && p.RNG == nil {
		return nil, fmt.Errorf("core: place: TieRandom requires an RNG")
	}
	work := append([]int(nil), loads...)
	row := make([]int, len(loads))
	candidates := make([]int, 0, len(loads))
	for j := 0; j < k; j++ {
		minLoad := work[0]
		for _, l := range work[1:] {
			if l < minLoad {
				minLoad = l
			}
		}
		candidates = candidates[:0]
		if !p.Literal {
			for c, l := range work {
				if l == minLoad && row[c] == 0 {
					candidates = append(candidates, c)
				}
			}
		}
		if len(candidates) == 0 {
			for c, l := range work {
				if l == minLoad {
					candidates = append(candidates, c)
				}
			}
		}
		var pick int
		switch tie {
		case TieFirst:
			pick = candidates[0]
		case TieLast:
			pick = candidates[len(candidates)-1]
		case TieRandom:
			pick = candidates[p.RNG.Intn(len(candidates))]
		default:
			return nil, fmt.Errorf("core: place: unknown tie break %d", int(tie))
		}
		row[pick]++
		work[pick]++
	}
	return row, nil
}

// checkPermutation verifies order is a permutation of 0..n-1.
func checkPermutation(order []int, n int) error {
	if len(order) != n {
		return fmt.Errorf("core: order has %d entries, want %d", len(order), n)
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || v >= n || seen[v] {
			return fmt.Errorf("core: order %v is not a permutation of 0..%d", order, n-1)
		}
		seen[v] = true
	}
	return nil
}
