package core

import (
	"math"
	"testing"

	"github.com/multiradio/chanalloc/internal/ratefn"
)

func mustGame(t *testing.T, users, channels, radios int, r ratefn.Func) *Game {
	t.Helper()
	g, err := NewGame(users, channels, radios, r)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// figure1Game returns the game of the paper's Figure 1 with unit-rate TDMA.
func figure1Game(t *testing.T) (*Game, *Alloc) {
	t.Helper()
	g := mustGame(t, 4, 5, 4, ratefn.NewTDMA(1))
	return g, mustAlloc(t, figure1Matrix())
}

func TestNewGameValidation(t *testing.T) {
	r := ratefn.NewTDMA(1)
	cases := []struct {
		name                    string
		users, channels, radios int
		rate                    ratefn.Func
	}{
		{"zero-users", 0, 3, 1, r},
		{"zero-channels", 2, 0, 1, r},
		{"zero-radios", 2, 3, 0, r},
		{"radios-exceed-channels", 2, 3, 4, r},
		{"nil-rate", 2, 3, 2, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewGame(tc.users, tc.channels, tc.radios, tc.rate); err == nil {
				t.Fatalf("NewGame(%d,%d,%d) should error", tc.users, tc.channels, tc.radios)
			}
		})
	}
}

func TestGameAccessors(t *testing.T) {
	g := mustGame(t, 4, 5, 3, ratefn.NewTDMA(2))
	if g.Users() != 4 || g.Channels() != 5 || g.Radios() != 3 {
		t.Fatalf("accessors wrong: %d %d %d", g.Users(), g.Channels(), g.Radios())
	}
	if g.Rate() == nil {
		t.Fatal("nil rate accessor")
	}
	if !g.HasConflict() {
		t.Fatal("4*3 > 5 should be a conflict")
	}
	if mustGame(t, 1, 5, 3, ratefn.NewTDMA(1)).HasConflict() {
		t.Fatal("1*3 <= 5 should not be a conflict")
	}
}

func TestCheckAlloc(t *testing.T) {
	g, a := figure1Game(t)
	if err := g.CheckAlloc(a); err != nil {
		t.Fatalf("figure 1 allocation should be legal: %v", err)
	}
	if err := g.CheckAlloc(nil); err == nil {
		t.Error("nil alloc should error")
	}
	small, err := NewAlloc(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckAlloc(small); err == nil {
		t.Error("wrong dims should error")
	}
	over := mustAlloc(t, [][]int{
		{2, 1, 1, 1, 0}, // 5 radios > k=4
		{0, 0, 0, 0, 0},
		{0, 0, 0, 0, 0},
		{0, 0, 0, 0, 0},
	})
	if err := g.CheckAlloc(over); err == nil {
		t.Error("over-budget user should error")
	}
}

func TestUtilityFigure1TDMA(t *testing.T) {
	// With R(k)=1 constant, U_i = Σ_c k_{i,c}/k_c. Loads are (4,3,2,3,1).
	g, a := figure1Game(t)
	want := []float64{
		1.0/4 + 1.0/3 + 1.0/2 + 1.0/3, // u1: c1..c4
		1.0/4 + 1.0/2 + 1.0,           // u2: c1, c3, c5
		1.0/4 + 2.0/3 + 1.0/3,         // u3: c1, c2 (two radios), c4
		1.0/4 + 1.0/3,                 // u4: c1, c4
	}
	for i, w := range want {
		if got := g.Utility(a, i); math.Abs(got-w) > 1e-12 {
			t.Errorf("U(u%d) = %v, want %v", i+1, got, w)
		}
	}
	utils := g.Utilities(a)
	for i := range want {
		if math.Abs(utils[i]-want[i]) > 1e-12 {
			t.Errorf("Utilities[%d] = %v, want %v", i, utils[i], want[i])
		}
	}
}

func TestUtilitySumEqualsWelfare(t *testing.T) {
	// Σ_i U_i = Σ_{c: k_c>0} R(k_c) holds identically (Eq. 3 summed).
	rates := []ratefn.Func{
		ratefn.NewTDMA(3),
		ratefn.Harmonic{R0: 3, Alpha: 0.7},
		ratefn.Geometric{R0: 3, Beta: 0.8},
	}
	g0, a := figure1Game(t)
	for _, r := range rates {
		g := mustGame(t, g0.Users(), g0.Channels(), g0.Radios(), r)
		var sum float64
		for i := 0; i < g.Users(); i++ {
			sum += g.Utility(a, i)
		}
		if w := g.Welfare(a); math.Abs(sum-w) > 1e-9 {
			t.Errorf("%s: ΣU = %v but welfare = %v", r.Name(), sum, w)
		}
	}
}

func TestWelfareCountsOnlyLoadedChannels(t *testing.T) {
	g := mustGame(t, 2, 4, 2, ratefn.NewTDMA(5))
	a := mustAlloc(t, [][]int{
		{1, 1, 0, 0},
		{1, 1, 0, 0},
	})
	if got, want := g.Welfare(a), 10.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("welfare = %v, want %v (two loaded channels)", got, want)
	}
}

func TestBenefitOfMoveMatchesBruteForce(t *testing.T) {
	// Eq. 7 computed incrementally must equal the utility difference
	// obtained by actually performing the move.
	rates := []ratefn.Func{
		ratefn.NewTDMA(1),
		ratefn.Harmonic{R0: 1, Alpha: 1},
		ratefn.Geometric{R0: 2, Beta: 0.5},
	}
	for _, r := range rates {
		g := mustGame(t, 4, 5, 4, r)
		a := mustAlloc(t, figure1Matrix())
		for i := 0; i < a.Users(); i++ {
			for b := 0; b < a.Channels(); b++ {
				if a.Radios(i, b) == 0 {
					continue
				}
				for c := 0; c < a.Channels(); c++ {
					if c == b {
						continue
					}
					delta, err := g.BenefitOfMove(a, i, b, c)
					if err != nil {
						t.Fatalf("%s: BenefitOfMove(u%d, c%d->c%d): %v", r.Name(), i+1, b+1, c+1, err)
					}
					before := g.Utility(a, i)
					moved := a.Clone()
					if err := moved.Move(i, b, c); err != nil {
						t.Fatal(err)
					}
					after := g.Utility(moved, i)
					if math.Abs(delta-(after-before)) > 1e-9 {
						t.Errorf("%s: Eq.7 delta %v != brute force %v (u%d, c%d->c%d)",
							r.Name(), delta, after-before, i+1, b+1, c+1)
					}
				}
			}
		}
	}
}

func TestBenefitOfMoveErrors(t *testing.T) {
	g, a := figure1Game(t)
	if _, err := g.BenefitOfMove(a, 0, 1, 1); err == nil {
		t.Error("same channel should error")
	}
	if _, err := g.BenefitOfMove(a, 0, -1, 1); err == nil {
		t.Error("bad channel should error")
	}
	if _, err := g.BenefitOfMove(a, 0, 1, 9); err == nil {
		t.Error("bad channel should error")
	}
	if _, err := g.BenefitOfMove(a, 9, 0, 1); err == nil {
		t.Error("bad user should error")
	}
	if _, err := g.BenefitOfMove(a, 0, 4, 0); err == nil {
		t.Error("no radio on source channel should error")
	}
}

func TestPaperLemma2MoveIsProfitable(t *testing.T) {
	// Paper §3: "In the example presented in Figure 1, Lemma 2 holds e.g.
	// for user u1 and the channels b = c4 and c = c5" — moving u1's radio
	// from c4 (load 3) to c5 (load 1) must strictly help under constant R.
	g, a := figure1Game(t)
	delta, err := g.BenefitOfMove(a, 0, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if delta <= 0 {
		t.Fatalf("Lemma 2 move should be strictly profitable, got Δ = %v", delta)
	}
}

func TestPaperLemma3MoveIsProfitable(t *testing.T) {
	// Paper §3: Lemma 3 holds for u3 with b = c2, c = c3 in Figure 1.
	g, a := figure1Game(t)
	delta, err := g.BenefitOfMove(a, 2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if delta <= 0 {
		t.Fatalf("Lemma 3 move should be strictly profitable, got Δ = %v", delta)
	}
}

func TestNewEmptyAlloc(t *testing.T) {
	g := mustGame(t, 3, 4, 2, ratefn.NewTDMA(1))
	a := g.NewEmptyAlloc()
	if a.Users() != 3 || a.Channels() != 4 || a.TotalRadios() != 0 {
		t.Fatal("NewEmptyAlloc dimensions wrong")
	}
}
