package core

import (
	"fmt"
	"math"

	"github.com/multiradio/chanalloc/internal/combin"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

// OptimalWelfareAllPlaced computes the maximum achievable total rate
// Σ_{c : l_c > 0} R(l_c) over load vectors that place all |N|·k radios
// (Lemma 1 forces full deployment in equilibrium, so this is the natural
// welfare benchmark for NE comparisons). It returns the optimum and one
// optimising load vector. The DP reads the game's frozen rate view, so the
// O(|C|·T²) inner loop costs table lookups rather than interface calls.
func OptimalWelfareAllPlaced(g *Game) (float64, []int) {
	return OptimalLoadWelfare(g.view.Frozen(), g.Channels(), g.Users()*g.Radios())
}

// OptimalLoadWelfare maximises Σ_{c : l_c > 0} R(l_c) over load vectors on
// C channels placing exactly total radios — the welfare optimum depends on
// the load vector alone, so uniform-budget and heterogeneous games share
// this dynamic program (total = |N|·k and Σ_i k_i respectively). It returns
// the optimum and one optimising load vector.
//
// The optimisation is a dynamic program over channels and remaining radios:
// O(|C| · T²) for T total radios.
func OptimalLoadWelfare(rate ratefn.Func, C, total int) (float64, []int) {
	// f[c][t] = best welfare over channels c..C-1 placing exactly t radios.
	negInf := math.Inf(-1)
	f := make([][]float64, C+1)
	choice := make([][]int, C)
	for c := range f {
		f[c] = make([]float64, total+1)
	}
	for t := 1; t <= total; t++ {
		f[C][t] = negInf // leftover radios are not allowed
	}
	for c := C - 1; c >= 0; c-- {
		choice[c] = make([]int, total+1)
		for t := 0; t <= total; t++ {
			best, bestL := negInf, 0
			for l := 0; l <= t; l++ {
				tail := f[c+1][t-l]
				if tail == negInf {
					continue
				}
				val := rate.Rate(l) + tail
				if val > best {
					best, bestL = val, l
				}
			}
			f[c][t] = best
			choice[c][t] = bestL
		}
	}

	loads := make([]int, C)
	t := total
	for c := 0; c < C; c++ {
		loads[c] = choice[c][t]
		t -= loads[c]
	}
	return f[0][total], loads
}

// OptimalWelfareIdleAllowed computes the maximum total rate when radios may
// be left idle. Because R is non-increasing with R(1) maximal, the optimum
// simply lights up min(|C|, |N|·k) channels with one radio each.
func OptimalWelfareIdleAllowed(g *Game) (float64, []int) {
	lit := g.Channels()
	if t := g.Users() * g.Radios(); t < lit {
		lit = t
	}
	loads := make([]int, g.Channels())
	for c := 0; c < lit; c++ {
		loads[c] = 1
	}
	return float64(lit) * g.Rate().Rate(1), loads
}

// PriceOfAnarchy returns welfare(a) / optimalWelfare for the all-placed
// benchmark. 1 means the allocation is system-optimal. Returns an error if
// the optimum is non-positive (degenerate rate function).
func PriceOfAnarchy(g *Game, a *Alloc) (float64, error) {
	opt, _ := OptimalWelfareAllPlaced(g)
	if opt <= 0 {
		return 0, fmt.Errorf("core: degenerate optimum %v; rate function is zero everywhere", opt)
	}
	return g.Welfare(a) / opt, nil
}

// enumerateRows enumerates every legal strategy row for one user: all
// vectors over |C| channels with total radios between 0 and k. The callback
// receives a reused buffer.
func enumerateRows(g *Game, fn func([]int) bool) error {
	for total := 0; total <= g.Radios(); total++ {
		stop := false
		err := combin.Compositions(total, g.Channels(), func(row []int) bool {
			if !fn(row) {
				stop = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// strategyRows materialises every legal strategy row of one user (all
// radio vectors with total between 0 and k).
func strategyRows(g *Game) ([][]int, error) {
	rows := make([][]int, 0, 64)
	if err := enumerateRows(g, func(row []int) bool {
		rows = append(rows, append([]int(nil), row...))
		return true
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// checkProfileCap verifies perUser^users stays within maxProfiles. The
// guard divides instead of multiplying so the running product can never
// overflow int64: totalProfiles > maxProfiles/perUser (integer division)
// implies totalProfiles·perUser > maxProfiles, and otherwise the product is
// at most maxProfiles. The former `maxProfiles/perUser+1` form admitted a
// boundary multiply that wrapped negative for huge perUser and then passed
// the final comparison.
func checkProfileCap(users int, perUser, maxProfiles int64) error {
	if perUser <= 0 {
		return fmt.Errorf("core: non-positive strategy count %d per user", perUser)
	}
	totalProfiles := int64(1)
	for i := 0; i < users; i++ {
		if totalProfiles > maxProfiles/perUser {
			return fmt.Errorf("core: strategy space too large (> %d profiles)", maxProfiles)
		}
		totalProfiles *= perUser
	}
	if totalProfiles > maxProfiles {
		return fmt.Errorf("core: strategy space has %d profiles, cap is %d", totalProfiles, maxProfiles)
	}
	return nil
}

// ForEachAlloc enumerates every legal strategy matrix of the game (all
// users, all budgets up to k) and calls fn with a reused Alloc that fn must
// treat as read-only. Returning false stops the enumeration. This is
// exponential — it exists for the exhaustive oracles on tiny instances
// (experiment E2) and refuses to run when the strategy space exceeds
// maxProfiles.
//
// The walk is odometer-aware: between consecutive profiles only the user
// rows whose odometer digit changed are re-set (usually just the last
// user), instead of rewriting all |N| rows per profile.
func ForEachAlloc(g *Game, maxProfiles int64, fn func(*Alloc) bool) error {
	rows, err := strategyRows(g)
	if err != nil {
		return err
	}
	if err := checkProfileCap(g.Users(), int64(len(rows)), maxProfiles); err != nil {
		return err
	}

	a := g.NewEmptyAlloc()
	sizes := make([]int, g.Users())
	for i := range sizes {
		sizes[i] = len(rows)
	}
	return ProductWalk(a, 0, sizes, func(_, ri int) []int { return rows[ri] }, "core", fn)
}

// ProductWalk enumerates the cartesian product of per-user strategy
// indices, setting rows of a for users offset..offset+len(sizes)-1 and
// calling fn with the reused allocation, which fn must treat as read-only.
// The walk is odometer-aware: between consecutive profiles only rows whose
// index changed are re-set (usually just the last user's). rowFor maps
// (user, index) to that user's strategy row; errPrefix labels SetRow
// failures — rows are pre-validated by callers, but an invariant-breaking
// allocation must stop the walk loudly rather than truncate it. Shared by
// ForEachAlloc, the parallel shards and the hetero enumerator.
func ProductWalk(a *Alloc, offset int, sizes []int, rowFor func(user, idx int) []int, errPrefix string, fn func(*Alloc) bool) error {
	prev := make([]int, len(sizes))
	for i := range prev {
		prev[i] = -1
	}
	var setErr error
	err := combin.Product(sizes, func(idx []int) bool {
		for u, ri := range idx {
			if ri == prev[u] {
				continue
			}
			if err := a.SetRow(u+offset, rowFor(u+offset, ri)); err != nil {
				setErr = fmt.Errorf("%s: setting row for user %d: %w", errPrefix, u+offset, err)
				return false
			}
			prev[u] = ri
		}
		return fn(a)
	})
	if err != nil {
		return err
	}
	return setErr
}

// EnumerateNE collects every Nash equilibrium of a tiny game by exhaustive
// best-response checking (results and order are identical to walking the
// full profile grid and checking IsNashEquilibrium per profile). Intended
// for cross-validation tests; guarded by maxProfiles like ForEachAlloc.
//
// Internally the search is symmetry-reduced: users of equal budget are
// exchangeable, so only canonical orbit representatives are tested (see
// EnumerateNECanonical) and the full equilibrium set is reconstructed by
// orbit expansion — same allocations, same order, visiting a C(R+N-1, N)
// canonical space instead of the R^N grid.
func EnumerateNE(g *Game, maxProfiles int64) ([]*Alloc, error) {
	reps, err := EnumerateNECanonical(g, maxProfiles)
	if err != nil {
		return nil, err
	}
	return ExpandNEOrbits(g, reps)
}

// FindParetoImprovement exhaustively searches for an allocation that makes
// every user at least as well off as in a and at least one user strictly
// better (within tolerance eps on strict improvement). It returns nil if a
// is Pareto-optimal over the full strategy space. Exponential; guarded by
// maxProfiles.
func FindParetoImprovement(g *Game, a *Alloc, eps float64, maxProfiles int64) (*Alloc, error) {
	if err := g.CheckAlloc(a); err != nil {
		return nil, err
	}
	base := g.Utilities(a)
	var found *Alloc
	err := ForEachAlloc(g, maxProfiles, func(b *Alloc) bool {
		strict := false
		for i := range base {
			u := g.Utility(b, i)
			if u < base[i]-eps {
				return true // someone is hurt; keep searching
			}
			if u > base[i]+eps {
				strict = true
			}
		}
		if strict {
			found = b.Clone()
			return false
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return found, nil
}
