package core

import (
	"fmt"
	"math"

	"github.com/multiradio/chanalloc/internal/combin"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

// OptimalWelfareAllPlaced computes the maximum achievable total rate
// Σ_{c : l_c > 0} R(l_c) over load vectors that place all |N|·k radios
// (Lemma 1 forces full deployment in equilibrium, so this is the natural
// welfare benchmark for NE comparisons). It returns the optimum and one
// optimising load vector (a fresh copy). The DP runs once per game and is
// memoised (see Game.allPlacedOptimum); repeated calls are a memo read.
func OptimalWelfareAllPlaced(g *Game) (float64, []int) {
	opt, loads := g.allPlacedOptimum()
	return opt, append([]int(nil), loads...)
}

// OptimalLoadWelfare maximises Σ_{c : l_c > 0} R(l_c) over load vectors on
// C channels placing exactly total radios — the welfare optimum depends on
// the load vector alone, so uniform-budget and heterogeneous games share
// this dynamic program (total = |N|·k and Σ_i k_i respectively). It returns
// the optimum and one optimising load vector.
//
// One-shot convenience form of OptimalLoadWelfareInto: a fresh workspace
// and copied loads. Hot loops hold a Workspace and call the Into form.
func OptimalLoadWelfare(rate ratefn.Func, C, total int) (float64, []int) {
	val, loads := OptimalLoadWelfareInto(NewWorkspace(), rate, C, total)
	return val, append(make([]int, 0, len(loads)), loads...)
}

// OptimalLoadWelfareInto is the welfare dynamic program in the caller's
// workspace: O(|C| · T²) for T total radios, zero steady-state allocations,
// returned loads aliasing ws (copy to retain past the next welfare call).
//
// The recurrence f[c][t] = max_l R(l) + f[c+1][t-l] runs over flat
// contiguous slabs with the -Inf "leftover radios" sentinel hoisted out
// entirely: the base row C-1 must place everything it is given (only l = t
// leaves no leftovers), so f[C-1][t] = R(t) and every remaining row folds
// purely finite values — the inner loop is a branch-reduced max over two
// contiguous slices, with rates pre-sampled once into a slab. Values and
// argmax loads are bit-identical to the former per-row form: an O(|C|·T)
// traceback rescans each chosen cell for the first l attaining its value,
// which is exactly the argmax the old strict-> scan recorded.
//
// Degenerate domains are decided up front (the old per-row allocation
// could index an empty choice row): zero channels place nothing — welfare
// 0 for total == 0, -Inf (infeasible) otherwise — and a negative total is
// -Inf with an all-zero load vector.
func OptimalLoadWelfareInto(ws *Workspace, rate ratefn.Func, C, total int) (float64, []int) {
	if ws == nil {
		ws = NewWorkspace()
	}
	if C <= 0 {
		if total == 0 {
			return 0, ws.wload[:0]
		}
		return math.Inf(-1), ws.wload[:0]
	}
	if total < 0 {
		_, _, loads := ws.ensureWelfare(C, 0)
		for c := range loads {
			loads[c] = 0
		}
		return math.Inf(-1), loads
	}
	rates, f, loads := ws.ensureWelfare(C, total)
	for l := 0; l <= total; l++ {
		rates[l] = rate.Rate(l)
	}
	stride := total + 1
	copy(f[(C-1)*stride:C*stride], rates)
	for c := C - 2; c >= 0; c-- {
		cur := f[c*stride : c*stride+stride]
		next := f[(c+1)*stride : (c+1)*stride+stride]
		for t := 0; t <= total; t++ {
			best := rates[0] + next[t]
			for l := 1; l <= t; l++ {
				if val := rates[l] + next[t-l]; val > best {
					best = val
				}
			}
			cur[t] = best
		}
	}
	t := total
	for c := 0; c < C-1; c++ {
		next := f[(c+1)*stride:]
		target := f[c*stride+t]
		l := 0
		for ; l < t; l++ {
			if rates[l]+next[t-l] == target {
				break
			}
		}
		loads[c] = l
		t -= l
	}
	loads[C-1] = t
	return f[total], loads
}

// OptimalWelfareIdleAllowed computes the maximum total rate when radios may
// be left idle. Because R is non-increasing with R(1) maximal, the optimum
// simply lights up min(|C|, |N|·k) channels with one radio each.
func OptimalWelfareIdleAllowed(g *Game) (float64, []int) {
	lit := g.Channels()
	if t := g.Users() * g.Radios(); t < lit {
		lit = t
	}
	loads := make([]int, g.Channels())
	for c := 0; c < lit; c++ {
		loads[c] = 1
	}
	return float64(lit) * g.Rate().Rate(1), loads
}

// PriceOfAnarchy returns welfare(a) / optimalWelfare for the all-placed
// benchmark. 1 means the allocation is system-optimal. Returns an error if
// the optimum is non-positive (degenerate rate function). The optimum is
// the game's memo, so per-allocation cost is one O(|C|) welfare fold.
func PriceOfAnarchy(g *Game, a *Alloc) (float64, error) {
	opt, _ := g.allPlacedOptimum()
	if opt <= 0 {
		return 0, fmt.Errorf("core: degenerate optimum %v; rate function is zero everywhere", opt)
	}
	return g.Welfare(a) / opt, nil
}

// enumerateRows enumerates every legal strategy row for one user: all
// vectors over |C| channels with total radios between 0 and k. The callback
// receives a reused buffer.
func enumerateRows(g *Game, fn func([]int) bool) error {
	for total := 0; total <= g.Radios(); total++ {
		stop := false
		err := combin.Compositions(total, g.Channels(), func(row []int) bool {
			if !fn(row) {
				stop = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// strategyRows materialises every legal strategy row of one user (all
// radio vectors with total between 0 and k).
func strategyRows(g *Game) ([][]int, error) {
	rows := make([][]int, 0, 64)
	if err := enumerateRows(g, func(row []int) bool {
		rows = append(rows, append([]int(nil), row...))
		return true
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// checkProfileCap verifies perUser^users stays within maxProfiles. The
// guard divides instead of multiplying so the running product can never
// overflow int64: totalProfiles > maxProfiles/perUser (integer division)
// implies totalProfiles·perUser > maxProfiles, and otherwise the product is
// at most maxProfiles. The former `maxProfiles/perUser+1` form admitted a
// boundary multiply that wrapped negative for huge perUser and then passed
// the final comparison.
func checkProfileCap(users int, perUser, maxProfiles int64) error {
	if perUser <= 0 {
		return fmt.Errorf("core: non-positive strategy count %d per user", perUser)
	}
	totalProfiles := int64(1)
	for i := 0; i < users; i++ {
		if totalProfiles > maxProfiles/perUser {
			return fmt.Errorf("core: strategy space too large (> %d profiles)", maxProfiles)
		}
		totalProfiles *= perUser
	}
	if totalProfiles > maxProfiles {
		return fmt.Errorf("core: strategy space has %d profiles, cap is %d", totalProfiles, maxProfiles)
	}
	return nil
}

// ForEachAlloc enumerates every legal strategy matrix of the game (all
// users, all budgets up to k) and calls fn with a reused Alloc that fn must
// treat as read-only. Returning false stops the enumeration. This is
// exponential — it exists for the exhaustive oracles on tiny instances
// (experiment E2) and refuses to run when the strategy space exceeds
// maxProfiles.
//
// The walk is odometer-aware: between consecutive profiles only the user
// rows whose odometer digit changed are re-set (usually just the last
// user), instead of rewriting all |N| rows per profile.
func ForEachAlloc(g *Game, maxProfiles int64, fn func(*Alloc) bool) error {
	rows, err := strategyRows(g)
	if err != nil {
		return err
	}
	if err := checkProfileCap(g.Users(), int64(len(rows)), maxProfiles); err != nil {
		return err
	}

	a := g.NewEmptyAlloc()
	sizes := make([]int, g.Users())
	for i := range sizes {
		sizes[i] = len(rows)
	}
	return ProductWalk(a, 0, sizes, func(_, ri int) []int { return rows[ri] }, "core", fn)
}

// ProductWalk enumerates the cartesian product of per-user strategy
// indices, setting rows of a for users offset..offset+len(sizes)-1 and
// calling fn with the reused allocation, which fn must treat as read-only.
// The walk is odometer-aware: between consecutive profiles only rows whose
// index changed are re-set (usually just the last user's). rowFor maps
// (user, index) to that user's strategy row; errPrefix labels SetRow
// failures — rows are pre-validated by callers, but an invariant-breaking
// allocation must stop the walk loudly rather than truncate it. Shared by
// ForEachAlloc, the parallel shards and the hetero enumerator.
func ProductWalk(a *Alloc, offset int, sizes []int, rowFor func(user, idx int) []int, errPrefix string, fn func(*Alloc) bool) error {
	prev := make([]int, len(sizes))
	for i := range prev {
		prev[i] = -1
	}
	var setErr error
	err := combin.Product(sizes, func(idx []int) bool {
		for u, ri := range idx {
			if ri == prev[u] {
				continue
			}
			if err := a.SetRow(u+offset, rowFor(u+offset, ri)); err != nil {
				setErr = fmt.Errorf("%s: setting row for user %d: %w", errPrefix, u+offset, err)
				return false
			}
			prev[u] = ri
		}
		return fn(a)
	})
	if err != nil {
		return err
	}
	return setErr
}

// EnumerateNE collects every Nash equilibrium of a tiny game by exhaustive
// best-response checking (results and order are identical to walking the
// full profile grid and checking IsNashEquilibrium per profile). Intended
// for cross-validation tests; guarded by maxProfiles like ForEachAlloc.
//
// Internally the search is symmetry-reduced: users of equal budget are
// exchangeable, so only canonical orbit representatives are tested (see
// EnumerateNECanonical) and the full equilibrium set is reconstructed by
// orbit expansion — same allocations, same order, visiting a C(R+N-1, N)
// canonical space instead of the R^N grid.
func EnumerateNE(g *Game, maxProfiles int64) ([]*Alloc, error) {
	reps, err := EnumerateNECanonical(g, maxProfiles)
	if err != nil {
		return nil, err
	}
	return ExpandNEOrbits(g, reps)
}

// FindParetoImprovement searches for an allocation that makes every user
// at least as well off as in a and at least one user strictly better
// (within tolerance eps on both comparisons, exactly as the unreduced
// scan: hurt iff u < base-eps, strict iff u > base+eps). It returns nil if
// a is Pareto-optimal over the full strategy space. Exponential; guarded
// by maxProfiles against the FULL unreduced profile count, so refusal
// behaviour matches ForEachAlloc.
//
// The search is symmetry-reduced: equal-budget users are exchangeable, so
// only canonical orbit representatives are visited and each whole orbit is
// decided by one per-class utility matching test (see
// OrbitEnumerator.ParetoImprovement). An improvement is found iff the
// unreduced search finds one; the returned witness — the representative
// with its rows permuted along the matching — is always a valid
// improvement, though not necessarily the same orbit member the unreduced
// scan would hit first. FindParetoImprovementUnreduced keeps the direct
// grid walk as the differential baseline.
func FindParetoImprovement(g *Game, a *Alloc, eps float64, maxProfiles int64) (*Alloc, error) {
	if err := g.CheckAlloc(a); err != nil {
		return nil, err
	}
	rows, err := strategyRows(g)
	if err != nil {
		return nil, err
	}
	if err := checkProfileCap(g.Users(), int64(len(rows)), maxProfiles); err != nil {
		return nil, err
	}
	return g.orbitEnumerator(rows).ParetoImprovement(g.Utilities(a), eps)
}

// FindParetoImprovementUnreduced is the direct R^N-grid Pareto search:
// every profile is tested user by user, bailing on the first hurt user.
// Kept as the differential baseline and benchmark denominator for the
// orbit-aware FindParetoImprovement.
func FindParetoImprovementUnreduced(g *Game, a *Alloc, eps float64, maxProfiles int64) (*Alloc, error) {
	if err := g.CheckAlloc(a); err != nil {
		return nil, err
	}
	base := g.Utilities(a)
	var found *Alloc
	err := ForEachAlloc(g, maxProfiles, func(b *Alloc) bool {
		strict := false
		for i := range base {
			u := g.Utility(b, i)
			if u < base[i]-eps {
				return true // someone is hurt; keep searching
			}
			if u > base[i]+eps {
				strict = true
			}
		}
		if strict {
			found = b.Clone()
			return false
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return found, nil
}
