package core

import "testing"

// TestWorkspaceFlushObs pins the batching contract: workspace-local counts
// move to the global counters exactly once (flush zeroes the locals, so a
// double flush — sweep end then pool Put — cannot double-count).
func TestWorkspaceFlushObs(t *testing.T) {
	ws := NewWorkspace()
	ws.obs.dpCalls += 5
	ws.obs.screenAccepts += 3
	ws.obs.screenRejects += 2
	ws.obs.screenCacheHits += 1
	ws.obs.orbitProfiles += 4

	dp := mDPCalls.Value()
	acc := mScreenAccepts.Value()
	rej := mScreenRejects.Value()
	hit := mScreenCacheHits.Value()
	orb := mOrbitProfiles.Value()
	ws.FlushObs()
	// Deltas are >= because parallel tests share the process globals.
	if got := mDPCalls.Value() - dp; got < 5 {
		t.Errorf("dp calls flushed %d, want >= 5", got)
	}
	if got := mScreenAccepts.Value() - acc; got < 3 {
		t.Errorf("screen accepts flushed %d, want >= 3", got)
	}
	if got := mScreenRejects.Value() - rej; got < 2 {
		t.Errorf("screen rejects flushed %d, want >= 2", got)
	}
	if got := mScreenCacheHits.Value() - hit; got < 1 {
		t.Errorf("screen cache hits flushed %d, want >= 1", got)
	}
	if got := mOrbitProfiles.Value() - orb; got < 4 {
		t.Errorf("orbit profiles flushed %d, want >= 4", got)
	}
	if ws.obs != (wsCounts{}) {
		t.Errorf("flush must zero the workspace counts, got %+v", ws.obs)
	}
	dp = mDPCalls.Value()
	ws.FlushObs()
	// A second flush of a zeroed workspace adds nothing of its own; other
	// tests may add concurrently, so only the exact-zero case is checkable
	// when the test runs alone — settle for not panicking and staying zero.
	if ws.obs != (wsCounts{}) {
		t.Errorf("flush of zero counts must stay zero, got %+v", ws.obs)
	}
	_ = dp
}

// TestPoolCountsGets pins that every pool Get lands in exactly one of the
// hit/miss counters, and that Put flushes the workspace's pending counts.
func TestPoolCountsGets(t *testing.T) {
	hits := mPoolHits.Value()
	misses := mPoolMisses.Value()
	const gets = 8
	for i := 0; i < gets; i++ {
		ws := Workspaces.Get()
		Workspaces.Put(ws)
	}
	if got := (mPoolHits.Value() - hits) + (mPoolMisses.Value() - misses); got < gets {
		t.Errorf("hit+miss grew by %d over %d gets, want >= %d", got, gets, gets)
	}

	dp := mDPCalls.Value()
	ws := Workspaces.Get()
	ws.obs.dpCalls += 7
	Workspaces.Put(ws)
	if got := mDPCalls.Value() - dp; got < 7 {
		t.Errorf("Put flushed %d dp calls, want >= 7", got)
	}
}
