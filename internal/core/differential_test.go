package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/multiradio/chanalloc/internal/combin"
	"github.com/multiradio/chanalloc/internal/des"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

// This file pins the workspace/table/screen kernel against reference
// implementations of the pre-refactor serial code paths. The refactor's
// contract is byte-identical results: every tabulated value is produced by
// the same floating-point expression the interface path evaluates, the DP
// visits states in the same order, and the Eq. 7 screen is reject-only with
// DP confirmation — so utilities, best responses, NE verdicts and
// enumeration output (order included) must be exactly equal, not merely
// close.

// referenceBestResponseToLoads is the pre-workspace DP: fresh heap slices
// per call, rate interface calls in the inner loop. Kept verbatim from the
// pre-refactor BestResponseToLoads (minus input validation).
func referenceBestResponseToLoads(rate ratefn.Func, ext []int, k int) ([]int, float64) {
	C := len(ext)
	v := make([][]float64, C)
	for c := 0; c < C; c++ {
		v[c] = make([]float64, k+1)
		for x := 1; x <= k; x++ {
			v[c][x] = share(x, ext[c]+x, rate)
		}
	}
	f := make([][]float64, C+1)
	choice := make([][]int, C)
	for c := range f {
		f[c] = make([]float64, k+1)
	}
	for c := range choice {
		choice[c] = make([]int, k+1)
	}
	for c := C - 1; c >= 0; c-- {
		for b := 0; b <= k; b++ {
			best, bestX := math.Inf(-1), 0
			for x := 0; x <= b; x++ {
				if val := v[c][x] + f[c+1][b-x]; val > best {
					best, bestX = val, x
				}
			}
			f[c][b] = best
			choice[c][b] = bestX
		}
	}
	row := make([]int, C)
	b := k
	for c := 0; c < C; c++ {
		row[c] = choice[c][b]
		b -= row[c]
	}
	return row, f[0][k]
}

// referenceUtility is Eq. 3 through the rate interface (no table).
func referenceUtility(g *Game, a *Alloc, i int) float64 {
	var u float64
	for c := 0; c < a.Channels(); c++ {
		ki := a.Radios(i, c)
		if ki == 0 {
			continue
		}
		kc := a.Load(c)
		u += float64(ki) / float64(kc) * g.Rate().Rate(kc)
	}
	return u
}

// referenceIsNE is the pre-refactor oracle: per-user reference DP against
// reference utility at DefaultEps, no screen.
func referenceIsNE(g *Game, a *Alloc) bool {
	for i := 0; i < g.Users(); i++ {
		ext := make([]int, g.Channels())
		for c := range ext {
			ext[c] = a.Load(c) - a.Radios(i, c)
		}
		_, best := referenceBestResponseToLoads(g.Rate(), ext, g.Radios())
		if best > referenceUtility(g, a, i)+DefaultEps {
			return false
		}
	}
	return true
}

// referenceEnumerateNE is the pre-refactor serial enumeration: full SetRow
// odometer (every user re-set on every profile) plus referenceIsNE.
func referenceEnumerateNE(t *testing.T, g *Game, maxProfiles int64) []*Alloc {
	t.Helper()
	rows, err := strategyRows(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := checkProfileCap(g.Users(), int64(len(rows)), maxProfiles); err != nil {
		t.Fatal(err)
	}
	a := g.NewEmptyAlloc()
	sizes := make([]int, g.Users())
	for i := range sizes {
		sizes[i] = len(rows)
	}
	var out []*Alloc
	err = combin.Product(sizes, func(idx []int) bool {
		for i, ri := range idx {
			if err := a.SetRow(i, rows[ri]); err != nil {
				t.Fatal(err)
			}
		}
		if referenceIsNE(g, a) {
			out = append(out, a.Clone())
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// differentialRates covers every ratefn family, including the Table and
// MonotoneEnvelope forms named by the refactor issue. The envelope wraps a
// non-monotone inner curve so its lazy memoisation actually engages.
func differentialRates(t *testing.T) []ratefn.Func {
	t.Helper()
	table, err := ratefn.NewTable("meas", []float64{5, 5, 3.5, 2.25, 2.25, 1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := ratefn.Freeze(ratefn.Harmonic{R0: 7, Alpha: 0.45}, 24)
	if err != nil {
		t.Fatal(err)
	}
	return []ratefn.Func{
		ratefn.NewTDMA(1),
		ratefn.Harmonic{R0: 2, Alpha: 0.6},
		ratefn.Geometric{R0: 3, Beta: 0.7},
		ratefn.Linear{R0: 2, Slope: 0.4},
		table,
		frozen,
		ratefn.NewMonotoneEnvelope(bumpy{}),
		ratefn.NewMemo(ratefn.Harmonic{R0: 4, Alpha: 0.25}),
	}
}

// bumpy is deterministic but non-monotone, exercising the envelope.
type bumpy struct{}

func (bumpy) Rate(k int) float64 {
	if k <= 0 {
		return 0
	}
	return 3/float64(k) + 0.25*float64(k%3)
}
func (bumpy) Name() string { return "bumpy" }

// TestDifferentialEnumerateNEMatchesReference: the screened workspace
// enumeration must reproduce the pre-refactor serial output exactly —
// same equilibria, same order — across all rate families.
func TestDifferentialEnumerateNEMatchesReference(t *testing.T) {
	rates := differentialRates(t)
	for seed := uint64(0); seed < 24; seed++ {
		rate := rates[int(seed)%len(rates)]
		rng := des.NewRNG(seed)
		users := 1 + rng.Intn(3)
		channels := 1 + rng.Intn(3)
		radios := 1 + rng.Intn(channels)
		g, err := NewGame(users, channels, radios, rate)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceEnumerateNE(t, g, 2_000_000)
		got, err := EnumerateNE(g, 2_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d (%s, %dx%dx%d): %d equilibria, reference found %d",
				seed, rate.Name(), users, channels, radios, len(got), len(want))
		}
		for j := range got {
			if !got[j].Equal(want[j]) {
				t.Fatalf("seed %d (%s): equilibrium %d differs from reference order\ngot:\n%v\nwant:\n%v",
					seed, rate.Name(), j, got[j], want[j])
			}
		}
	}
}

// TestDifferentialOracleAgreesWithExactRat pins the screened float oracle
// against exact rational arithmetic on random allocations for every
// exact-capable family.
func TestDifferentialOracleAgreesWithExactRat(t *testing.T) {
	rates := []ratefn.Func{
		ratefn.NewTDMA(2),
		ratefn.Harmonic{R0: 2, Alpha: 0.5},
		ratefn.Geometric{R0: 1, Beta: 0.5},
		ratefn.Linear{R0: 2, Slope: 0.25},
	}
	f := func(seed uint64) bool {
		rate := rates[int(seed%uint64(len(rates)))]
		g, a, err := randomInstance(seed, rate)
		if err != nil {
			return false
		}
		exact, ok, err := g.IsNashEquilibriumRat(a)
		if err != nil || !ok {
			return false
		}
		ws := NewWorkspace()
		got, err := g.IsNashEquilibriumWith(ws, a)
		if err != nil {
			return false
		}
		if got != exact {
			t.Logf("seed %d (%s): screened oracle %v, exact %v\n%v", seed, rate.Name(), got, exact, a)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialBestResponseMatchesReference: the workspace DP must
// return bit-identical rows and values to the pre-refactor heap DP on
// random instances across families, with the workspace reused between
// calls (stale state must not leak).
func TestDifferentialBestResponseMatchesReference(t *testing.T) {
	rates := differentialRates(t)
	ws := NewWorkspace()
	for seed := uint64(0); seed < 200; seed++ {
		rate := rates[int(seed)%len(rates)]
		g, a, err := randomInstance(seed, rate)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < g.Users(); i++ {
			ext := make([]int, g.Channels())
			for c := range ext {
				ext[c] = a.Load(c) - a.Radios(i, c)
			}
			wantRow, wantVal := referenceBestResponseToLoads(g.Rate(), ext, g.Radios())
			gotRow, gotVal, err := g.BestResponseInto(ws, a, i)
			if err != nil {
				t.Fatal(err)
			}
			if gotVal != wantVal {
				t.Fatalf("seed %d (%s) user %d: DP value %v, reference %v (must be bit-identical)",
					seed, rate.Name(), i, gotVal, wantVal)
			}
			for c := range wantRow {
				if gotRow[c] != wantRow[c] {
					t.Fatalf("seed %d (%s) user %d: row %v, reference %v", seed, rate.Name(), i, gotRow, wantRow)
				}
			}
			if gotU, wantU := g.Utility(a, i), referenceUtility(g, a, i); gotU != wantU {
				t.Fatalf("seed %d (%s) user %d: utility %v, reference %v", seed, rate.Name(), i, gotU, wantU)
			}
		}
	}
}

// TestDifferentialFindDeviationMatchesReference: the workspace sweep must
// report the same first deviating user, row and gain as the pre-refactor
// FindDeviation.
func TestDifferentialFindDeviationMatchesReference(t *testing.T) {
	rates := differentialRates(t)
	ws := NewWorkspace()
	for seed := uint64(0); seed < 150; seed++ {
		rate := rates[int(seed)%len(rates)]
		g, a, err := randomInstance(seed, rate)
		if err != nil {
			t.Fatal(err)
		}
		var want *Deviation
		for i := 0; i < g.Users(); i++ {
			ext := make([]int, g.Channels())
			for c := range ext {
				ext[c] = a.Load(c) - a.Radios(i, c)
			}
			row, best := referenceBestResponseToLoads(g.Rate(), ext, g.Radios())
			if current := referenceUtility(g, a, i); best > current+DefaultEps {
				want = &Deviation{User: i, Better: row, Gain: best - current}
				break
			}
		}
		got, err := g.FindDeviationWith(ws, a, DefaultEps)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case got == nil && want == nil:
		case got == nil || want == nil:
			t.Fatalf("seed %d (%s): deviation %v, reference %v", seed, rate.Name(), got, want)
		default:
			if got.User != want.User || got.Gain != want.Gain {
				t.Fatalf("seed %d (%s): deviation %v, reference %v", seed, rate.Name(), got, want)
			}
			for c := range want.Better {
				if got.Better[c] != want.Better[c] {
					t.Fatalf("seed %d (%s): better row %v, reference %v", seed, rate.Name(), got.Better, want.Better)
				}
			}
		}
	}
}
