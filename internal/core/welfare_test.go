package core

import (
	"math"
	"testing"

	"github.com/multiradio/chanalloc/internal/ratefn"
)

func TestOptimalWelfareAllPlacedConstantRate(t *testing.T) {
	// Constant R: any load vector covering all channels achieves C·R0.
	g := mustGame(t, 4, 5, 4, ratefn.NewTDMA(2))
	opt, loads := OptimalWelfareAllPlaced(g)
	if math.Abs(opt-10) > 1e-12 {
		t.Fatalf("optimum = %v, want 10", opt)
	}
	total := 0
	for _, l := range loads {
		if l < 0 {
			t.Fatalf("negative load in optimiser output: %v", loads)
		}
		total += l
	}
	if total != g.Users()*g.Radios() {
		t.Fatalf("optimiser placed %d radios, want %d", total, g.Users()*g.Radios())
	}
}

func TestOptimalWelfareAllPlacedSharpDecay(t *testing.T) {
	// R(k) = 1/k: welfare of a channel is R(l) = 1/l, so the optimum with
	// forced placement is to dump all extra radios on one channel and keep
	// the rest at load 1. C=2, T=4: loads (1,3) give 1 + 1/3 = 4/3 beating
	// the balanced (2,2) = 1.
	r := ratefn.Harmonic{R0: 1, Alpha: 1}
	g := mustGame(t, 2, 2, 2, r)
	opt, loads := OptimalWelfareAllPlaced(g)
	if math.Abs(opt-4.0/3) > 1e-9 {
		t.Fatalf("optimum = %v, want 4/3 (loads %v)", opt, loads)
	}
	// One channel must carry load 1.
	if loads[0] != 1 && loads[1] != 1 {
		t.Fatalf("expected a singleton channel in %v", loads)
	}
}

func TestOptimalWelfareIdleAllowed(t *testing.T) {
	g := mustGame(t, 2, 5, 2, ratefn.NewTDMA(3))
	opt, loads := OptimalWelfareIdleAllowed(g)
	// min(C=5, T=4) = 4 channels lit at R(1)=3.
	if math.Abs(opt-12) > 1e-12 {
		t.Fatalf("optimum = %v, want 12", opt)
	}
	lit := 0
	for _, l := range loads {
		if l > 1 {
			t.Fatalf("idle-allowed optimum should not stack: %v", loads)
		}
		lit += l
	}
	if lit != 4 {
		t.Fatalf("lit %d channels, want 4", lit)
	}

	// More radios than channels: all channels lit once.
	g2 := mustGame(t, 4, 3, 3, ratefn.NewTDMA(1))
	opt2, _ := OptimalWelfareIdleAllowed(g2)
	if math.Abs(opt2-3) > 1e-12 {
		t.Fatalf("optimum = %v, want 3", opt2)
	}
}

func TestPriceOfAnarchyNE(t *testing.T) {
	// For constant R, every NE is system optimal (Theorem 2 corollary).
	g := mustGame(t, 4, 6, 4, ratefn.NewTDMA(1))
	a := mustAlloc(t, figure5Matrix())
	poa, err := PriceOfAnarchy(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(poa-1) > 1e-12 {
		t.Fatalf("PoA = %v, want 1", poa)
	}
}

func TestPriceOfAnarchyBelowOneForDecay(t *testing.T) {
	// Under sharply decreasing R the balanced NE is *not* welfare-optimal
	// when all radios must be placed (experiment E9's headline).
	r := ratefn.Harmonic{R0: 1, Alpha: 1}
	g := mustGame(t, 2, 2, 2, r)
	ne, err := Algorithm1(g)
	if err != nil {
		t.Fatal(err)
	}
	poa, err := PriceOfAnarchy(g, ne)
	if err != nil {
		t.Fatal(err)
	}
	if poa >= 1-1e-9 {
		t.Fatalf("PoA = %v, want < 1 under sharp decay", poa)
	}
	if poa < 0.5 {
		t.Fatalf("PoA = %v suspiciously low", poa)
	}
}

func TestPriceOfAnarchyDegenerate(t *testing.T) {
	zero, err := ratefn.NewTable("zero", []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	g := mustGame(t, 2, 2, 1, zero)
	a := g.NewEmptyAlloc()
	if _, err := PriceOfAnarchy(g, a); err == nil {
		t.Fatal("zero rate function should make PoA error")
	}
}

func TestForEachAllocCountsProfiles(t *testing.T) {
	// 2 users, 2 channels, k=1: rows per user = compositions of 0 and 1
	// over 2 channels = 1 + 2 = 3; profiles = 9.
	g := mustGame(t, 2, 2, 1, ratefn.NewTDMA(1))
	count := 0
	if err := ForEachAlloc(g, 1000, func(*Alloc) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 9 {
		t.Fatalf("enumerated %d profiles, want 9", count)
	}
}

func TestForEachAllocCap(t *testing.T) {
	g := mustGame(t, 4, 4, 4, ratefn.NewTDMA(1))
	err := ForEachAlloc(g, 10, func(*Alloc) bool { return true })
	if err == nil {
		t.Fatal("profile cap should trigger")
	}
}

func TestForEachAllocEarlyStop(t *testing.T) {
	g := mustGame(t, 2, 2, 1, ratefn.NewTDMA(1))
	count := 0
	if err := ForEachAlloc(g, 1000, func(*Alloc) bool {
		count++
		return count < 4
	}); err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Fatalf("early stop visited %d, want 4", count)
	}
}

func TestEnumerateNESmallGame(t *testing.T) {
	// 2 users, 2 channels, 1 radio each, constant R: NE are exactly the
	// allocations with one radio per channel (two of them) — sharing a
	// channel or idling a radio is never stable.
	g := mustGame(t, 2, 2, 1, ratefn.NewTDMA(1))
	nes, err := EnumerateNE(g, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(nes) != 2 {
		for _, ne := range nes {
			t.Logf("NE:\n%v", ne)
		}
		t.Fatalf("found %d NE, want 2", len(nes))
	}
	for _, ne := range nes {
		if ne.Load(0) != 1 || ne.Load(1) != 1 {
			t.Errorf("NE loads %v, want [1 1]", ne.Loads())
		}
	}
}

func TestEnumerateNEAllSatisfyTheorem(t *testing.T) {
	// Every enumerated NE of a constant-rate game satisfies Theorem 1 and
	// vice versa (spot check beyond the exhaustive equivalence test).
	g := mustGame(t, 3, 3, 2, ratefn.NewTDMA(1))
	nes, err := EnumerateNE(g, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(nes) == 0 {
		t.Fatal("no NE found")
	}
	for _, ne := range nes {
		if ok, v := TheoremNE(g, ne); !ok {
			t.Errorf("enumerated NE fails Theorem 1 (%v):\n%v", v, ne)
		}
	}
}

func TestFindParetoImprovementOnNE(t *testing.T) {
	// Theorem 2: a NE admits no Pareto improvement (constant R).
	g := mustGame(t, 2, 3, 2, ratefn.NewTDMA(1))
	ne, err := Algorithm1(g)
	if err != nil {
		t.Fatal(err)
	}
	improvement, err := FindParetoImprovement(g, ne, 1e-9, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if improvement != nil {
		t.Fatalf("NE should be Pareto-optimal; dominated by\n%v", improvement)
	}
}

func TestFindParetoImprovementOnWastefulAlloc(t *testing.T) {
	// Everyone crowding one channel is Pareto-dominated (constant R).
	g := mustGame(t, 2, 2, 1, ratefn.NewTDMA(1))
	bad := mustAlloc(t, [][]int{
		{1, 0},
		{1, 0},
	})
	improvement, err := FindParetoImprovement(g, bad, 1e-9, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if improvement == nil {
		t.Fatal("crowded allocation should be Pareto-dominated")
	}
	// The improvement must actually dominate.
	for i := 0; i < g.Users(); i++ {
		if g.Utility(improvement, i) < g.Utility(bad, i)-1e-9 {
			t.Fatalf("claimed improvement hurts u%d", i+1)
		}
	}
}

func TestFindParetoImprovementErrors(t *testing.T) {
	g := mustGame(t, 2, 2, 1, ratefn.NewTDMA(1))
	wrong, err := NewAlloc(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FindParetoImprovement(g, wrong, 1e-9, 1000); err == nil {
		t.Fatal("mismatched alloc should error")
	}
}

func TestAllNEOfSmallGamesAreParetoOptimal(t *testing.T) {
	// Theorem 2 verified exhaustively on tiny constant-rate games: every NE
	// is Pareto-optimal over the full strategy space.
	if testing.Short() {
		t.Skip("exhaustive Pareto sweep")
	}
	configs := []struct{ users, channels, radios int }{
		{2, 2, 1},
		{2, 2, 2},
		{2, 3, 2},
		{3, 2, 2},
	}
	for _, cfg := range configs {
		g := mustGame(t, cfg.users, cfg.channels, cfg.radios, ratefn.NewTDMA(1))
		nes, err := EnumerateNE(g, 5_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if len(nes) == 0 {
			t.Fatalf("%dx%dx%d: no NE", cfg.users, cfg.channels, cfg.radios)
		}
		for _, ne := range nes {
			improvement, err := FindParetoImprovement(g, ne, 1e-9, 5_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if improvement != nil {
				t.Errorf("%dx%dx%d: NE\n%v\nis Pareto-dominated by\n%v",
					cfg.users, cfg.channels, cfg.radios, ne, improvement)
			}
		}
	}
}

func TestCheckProfileCapOverflowEdges(t *testing.T) {
	const maxI64 = math.MaxInt64
	cases := []struct {
		name        string
		users       int
		perUser     int64
		maxProfiles int64
		wantErr     bool
	}{
		// The boundary multiply the old `maxProfiles/perUser+1` guard
		// admitted: perUser ~ sqrt(MaxInt64), so perUser² wraps negative and
		// the final comparison wrongly accepted an astronomical space.
		{"sqrt-boundary-wrap", 2, 3037000500, maxI64, true},
		{"huge-per-user", 2, maxI64/2 + 1, maxI64, true},
		{"single-user-at-cap", 1, maxI64, maxI64, false},
		{"pow-just-over", 3, 1 << 21, maxI64, true},
		{"exact-fit", 4, 15, 50625, false},
		{"one-under", 4, 15, 50624, true},
		{"per-user-over-cap", 1, 11, 10, true},
		{"zero-users", 0, 5, 1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkProfileCap(tc.users, tc.perUser, tc.maxProfiles)
			if tc.wantErr && err == nil {
				t.Fatalf("checkProfileCap(%d, %d, %d) accepted, want error",
					tc.users, tc.perUser, tc.maxProfiles)
			}
			if !tc.wantErr && err != nil {
				t.Fatalf("checkProfileCap(%d, %d, %d) = %v, want nil",
					tc.users, tc.perUser, tc.maxProfiles, err)
			}
		})
	}
}
