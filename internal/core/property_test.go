package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/multiradio/chanalloc/internal/des"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

// randomInstance draws a small random game and a random full-deployment
// allocation from a seed.
func randomInstance(seed uint64, rate ratefn.Func) (*Game, *Alloc, error) {
	rng := des.NewRNG(seed)
	users := 1 + rng.Intn(4)
	channels := 1 + rng.Intn(4)
	radios := 1 + rng.Intn(channels)
	g, err := NewGame(users, channels, radios, rate)
	if err != nil {
		return nil, nil, err
	}
	a := g.NewEmptyAlloc()
	for i := 0; i < users; i++ {
		for j := 0; j < radios; j++ {
			if err := a.Add(i, rng.Intn(channels), 1); err != nil {
				return nil, nil, err
			}
		}
	}
	return g, a, nil
}

// TestPropertyTheoremMatchesOracleConstantRate samples random instances and
// random allocations under constant R and cross-checks the Theorem 1
// verdict against the exact rational-arithmetic oracle — the sampled
// companion to the exhaustive E2 sweep.
func TestPropertyTheoremMatchesOracleConstantRate(t *testing.T) {
	f := func(seed uint64) bool {
		g, a, err := randomInstance(seed, ratefn.NewTDMA(1))
		if err != nil {
			return false
		}
		thm, _ := TheoremNE(g, a)
		oracle, ok, err := g.IsNashEquilibriumRat(a)
		if err != nil || !ok {
			return false
		}
		if thm != oracle {
			t.Logf("seed %d: theorem %v oracle %v\n%v", seed, thm, oracle, a)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyWelfareIdentity checks Σ_i U_i == Σ_{loaded c} R(k_c) on
// random allocations across rate families.
func TestPropertyWelfareIdentity(t *testing.T) {
	rates := []ratefn.Func{
		ratefn.NewTDMA(2),
		ratefn.Harmonic{R0: 2, Alpha: 0.7},
		ratefn.Geometric{R0: 2, Beta: 0.6},
		ratefn.Linear{R0: 2, Slope: 0.5},
	}
	f := func(seed uint64) bool {
		rate := rates[int(seed%uint64(len(rates)))]
		g, a, err := randomInstance(seed, rate)
		if err != nil {
			return false
		}
		var sum float64
		for i := 0; i < g.Users(); i++ {
			sum += g.Utility(a, i)
		}
		return math.Abs(sum-g.Welfare(a)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyBestResponseIdempotent: applying a best response and then
// recomputing it must not find further improvement.
func TestPropertyBestResponseIdempotent(t *testing.T) {
	f := func(seed uint64) bool {
		g, a, err := randomInstance(seed, ratefn.Harmonic{R0: 1, Alpha: 0.4})
		if err != nil {
			return false
		}
		i := int(seed) % g.Users()
		if i < 0 {
			i = -i
		}
		row, best, err := g.BestResponse(a, i)
		if err != nil {
			return false
		}
		if err := a.SetRow(i, row); err != nil {
			return false
		}
		_, again, err := g.BestResponse(a, i)
		if err != nil {
			return false
		}
		return again <= best+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyBestResponseBeatsSingleMoves: the DP optimum is at least as
// good as every single-radio move (Eq. 7 deltas are never positive at a
// best response).
func TestPropertyBestResponseBeatsSingleMoves(t *testing.T) {
	f := func(seed uint64) bool {
		g, a, err := randomInstance(seed, ratefn.NewTDMA(1))
		if err != nil {
			return false
		}
		i := int(seed % uint64(g.Users()))
		row, _, err := g.BestResponse(a, i)
		if err != nil {
			return false
		}
		if err := a.SetRow(i, row); err != nil {
			return false
		}
		for b := 0; b < g.Channels(); b++ {
			if a.Radios(i, b) == 0 {
				continue
			}
			for c := 0; c < g.Channels(); c++ {
				if c == b {
					continue
				}
				delta, err := g.BenefitOfMove(a, i, b, c)
				if err != nil {
					return false
				}
				if delta > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAlgorithm1Invariants: full deployment, balance, theorem-NE,
// and welfare optimality (constant R, conflict regime) for random sizes.
func TestPropertyAlgorithm1Invariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := des.NewRNG(seed)
		users := 1 + rng.Intn(8)
		channels := 1 + rng.Intn(8)
		radios := 1 + rng.Intn(channels)
		g, err := NewGame(users, channels, radios, ratefn.NewTDMA(1))
		if err != nil {
			return false
		}
		a, err := Algorithm1(g, WithTieBreak(TieRandom), WithSeed(seed))
		if err != nil {
			return false
		}
		for i := 0; i < users; i++ {
			if a.UserTotal(i) != radios {
				return false
			}
		}
		maxLoad, _ := a.MaxLoad()
		minLoad, _ := a.MinLoad()
		if maxLoad-minLoad > 1 {
			return false
		}
		if ok, _ := TheoremNE(g, a); !ok {
			return false
		}
		if g.HasConflict() {
			opt, _ := OptimalWelfareAllPlaced(g)
			if math.Abs(g.Welfare(a)-opt) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMoveConservation: moving a radio preserves totals and loads.
func TestPropertyMoveConservation(t *testing.T) {
	f := func(seed uint64) bool {
		g, a, err := randomInstance(seed, ratefn.NewTDMA(1))
		if err != nil {
			return false
		}
		rng := des.NewRNG(seed + 1)
		i := rng.Intn(g.Users())
		from := -1
		for c := 0; c < g.Channels(); c++ {
			if a.Radios(i, c) > 0 {
				from = c
				break
			}
		}
		if from < 0 || g.Channels() < 2 {
			return true
		}
		to := (from + 1) % g.Channels()
		before := a.TotalRadios()
		userBefore := a.UserTotal(i)
		if err := a.Move(i, from, to); err != nil {
			return false
		}
		return a.TotalRadios() == before && a.UserTotal(i) == userBefore
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyUtilityRatAgreesWithFloat cross-checks exact and float
// utilities on random allocations for exact-capable rate functions.
func TestPropertyUtilityRatAgreesWithFloat(t *testing.T) {
	rates := []ratefn.Func{
		ratefn.NewTDMA(3),
		ratefn.Harmonic{R0: 3, Alpha: 0.5},
		ratefn.Linear{R0: 3, Slope: 0.75},
	}
	f := func(seed uint64) bool {
		rate := rates[int(seed%uint64(len(rates)))]
		g, a, err := randomInstance(seed, rate)
		if err != nil {
			return false
		}
		for i := 0; i < g.Users(); i++ {
			exact, ok := g.UtilityRat(a, i)
			if !ok {
				return false
			}
			ef, _ := exact.Float64()
			if math.Abs(ef-g.Utility(a, i)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyOccupancyDiagramComplete: the rendering shows every radio
// exactly once.
func TestPropertyOccupancyDiagramComplete(t *testing.T) {
	f := func(seed uint64) bool {
		g, a, err := randomInstance(seed, ratefn.NewTDMA(1))
		if err != nil {
			return false
		}
		out := OccupancyDiagram(a)
		for i := 0; i < g.Users(); i++ {
			want := a.UserTotal(i)
			got := countOccurrences(out, userLabel(i))
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// userLabel renders "u<i+1>" with a trailing space to avoid matching u1 as
// a prefix of u10 (the diagram pads every cell).
func userLabel(i int) string {
	label := "u"
	n := i + 1
	digits := []byte{}
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return label + string(digits) + " "
}

func countOccurrences(s, sub string) int {
	count := 0
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			count++
		}
	}
	return count
}
