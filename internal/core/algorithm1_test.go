package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/multiradio/chanalloc/internal/des"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

func TestAlgorithm1ProducesTheoremNE(t *testing.T) {
	// Theorem claim: Algorithm 1 lands on a Pareto-optimal NE. Check the
	// theorem conditions and the exact oracle across a grid of game sizes
	// and all tie-break policies.
	ties := []TieBreak{TieFirst, TieLast, TieRandom}
	for users := 1; users <= 5; users++ {
		for channels := 1; channels <= 5; channels++ {
			for radios := 1; radios <= channels; radios++ {
				g := mustGame(t, users, channels, radios, ratefn.NewTDMA(1))
				for _, tie := range ties {
					a, err := Algorithm1(g, WithTieBreak(tie), WithSeed(7))
					if err != nil {
						t.Fatalf("%dx%dx%d %v: %v", users, channels, radios, tie, err)
					}
					if ok, v := TheoremNE(g, a); !ok {
						t.Errorf("%dx%dx%d %v: output fails Theorem 1: %v\n%v",
							users, channels, radios, tie, v, a)
					}
					ne, err := g.IsNashEquilibrium(a)
					if err != nil {
						t.Fatal(err)
					}
					if !ne {
						dev, _ := g.FindDeviation(a, DefaultEps)
						t.Errorf("%dx%dx%d %v: output is not NE: %v\n%v",
							users, channels, radios, tie, dev, a)
					}
				}
			}
		}
	}
}

func TestAlgorithm1FullDeploymentAndBalance(t *testing.T) {
	g := mustGame(t, 7, 6, 4, ratefn.NewTDMA(1))
	a, err := Algorithm1(g)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.Users(); i++ {
		if a.UserTotal(i) != g.Radios() {
			t.Errorf("u%d deploys %d radios, want %d", i+1, a.UserTotal(i), g.Radios())
		}
	}
	maxLoad, _ := a.MaxLoad()
	minLoad, _ := a.MinLoad()
	if maxLoad-minLoad > 1 {
		t.Errorf("loads not balanced: max %d, min %d", maxLoad, minLoad)
	}
	// 28 radios over 6 channels: loads must be four 5s and two 4s.
	if maxLoad != 5 || minLoad != 4 {
		t.Errorf("loads = %v, want {5,5,5,5,4,4} in some order", a.Loads())
	}
}

func TestAlgorithm1NeverStacksRadios(t *testing.T) {
	// Run from an empty allocation the algorithm never needs the exception
	// clause: every user ends with at most one radio per channel.
	f := func(seed uint64) bool {
		rng := des.NewRNG(seed)
		users := 1 + rng.Intn(6)
		channels := 1 + rng.Intn(6)
		radios := 1 + rng.Intn(channels)
		g, err := NewGame(users, channels, radios, ratefn.NewTDMA(1))
		if err != nil {
			return false
		}
		a, err := Algorithm1(g, WithTieBreak(TieRandom), WithSeed(seed))
		if err != nil {
			return false
		}
		for i := 0; i < users; i++ {
			for c := 0; c < channels; c++ {
				if a.Radios(i, c) > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithm1NEUnderDecreasingRates(t *testing.T) {
	// The all-singles load-balanced allocations Algorithm 1 produces are NE
	// for any non-increasing rate function, not just constant ones.
	rates := []ratefn.Func{
		ratefn.Harmonic{R0: 1, Alpha: 1},    // sharp decay
		ratefn.Harmonic{R0: 1, Alpha: 0.1},  // mild decay
		ratefn.Geometric{R0: 1, Beta: 0.5},  // exponential decay
		ratefn.Geometric{R0: 1, Beta: 0.95}, // gentle decay
	}
	for _, r := range rates {
		for _, dims := range []struct{ n, c, k int }{{4, 5, 4}, {7, 6, 4}, {3, 3, 2}, {5, 4, 3}} {
			g := mustGame(t, dims.n, dims.c, dims.k, r)
			a, err := Algorithm1(g)
			if err != nil {
				t.Fatal(err)
			}
			ne, err := g.IsNashEquilibrium(a)
			if err != nil {
				t.Fatal(err)
			}
			if !ne {
				dev, _ := g.FindDeviation(a, DefaultEps)
				t.Errorf("%s %dx%dx%d: Algorithm 1 output not NE: %v",
					r.Name(), dims.n, dims.c, dims.k, dev)
			}
		}
	}
}

func TestAlgorithm1OrderIndependenceOfNEProperty(t *testing.T) {
	g := mustGame(t, 4, 5, 3, ratefn.NewTDMA(1))
	orders := [][]int{
		{0, 1, 2, 3},
		{3, 2, 1, 0},
		{2, 0, 3, 1},
	}
	for _, order := range orders {
		a, err := Algorithm1(g, WithOrder(order))
		if err != nil {
			t.Fatal(err)
		}
		if ok, v := TheoremNE(g, a); !ok {
			t.Errorf("order %v: not a theorem NE: %v", order, v)
		}
	}
}

func TestAlgorithm1RandomTieBreakDeterministicPerSeed(t *testing.T) {
	g := mustGame(t, 5, 5, 3, ratefn.NewTDMA(1))
	a1, err := Algorithm1(g, WithTieBreak(TieRandom), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Algorithm1(g, WithTieBreak(TieRandom), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if !a1.Equal(a2) {
		t.Fatal("same seed produced different allocations")
	}
}

func TestAlgorithm1Errors(t *testing.T) {
	g := mustGame(t, 3, 3, 2, ratefn.NewTDMA(1))
	if _, err := Algorithm1(g, WithTieBreak(TieBreak(99))); err == nil {
		t.Error("unknown tie break should error")
	}
	if _, err := Algorithm1(g, WithOrder([]int{0, 1})); err == nil {
		t.Error("short order should error")
	}
	if _, err := Algorithm1(g, WithOrder([]int{0, 1, 1})); err == nil {
		t.Error("duplicate order should error")
	}
	if _, err := Algorithm1(g, WithOrder([]int{0, 1, 9})); err == nil {
		t.Error("out-of-range order should error")
	}
}

func TestAlgorithm1Welfare(t *testing.T) {
	// Under constant R every channel gets occupied (|N|k > |C|), so the NE
	// welfare equals the all-placed optimum: price of anarchy 1 (Theorem 2).
	g := mustGame(t, 7, 6, 4, ratefn.NewTDMA(2))
	a, err := Algorithm1(g)
	if err != nil {
		t.Fatal(err)
	}
	poa, err := PriceOfAnarchy(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(poa-1) > 1e-12 {
		t.Fatalf("price of anarchy = %v, want 1 under constant R", poa)
	}
}

func TestAlgorithm1LiteralRuleCanBreakNE(t *testing.T) {
	// Reproduction finding (experiment E10): the paper's pseudocode places a
	// radio on *any* least-loaded channel. With random tie-breaking this can
	// stack two of a user's radios on one channel, and the result is not a
	// NE. Scan seeds until the literal rule exhibits the failure — it must,
	// for this configuration — and confirm the corrected rule never does.
	g := mustGame(t, 2, 5, 4, ratefn.NewTDMA(1))
	literalFailed := false
	for seed := uint64(0); seed < 64 && !literalFailed; seed++ {
		a, err := Algorithm1(g, WithTieBreak(TieRandom), WithSeed(seed), WithLiteralRule())
		if err != nil {
			t.Fatal(err)
		}
		ne, err := g.IsNashEquilibrium(a)
		if err != nil {
			t.Fatal(err)
		}
		if !ne {
			literalFailed = true
		}

		corrected, err := Algorithm1(g, WithTieBreak(TieRandom), WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		ne, err = g.IsNashEquilibrium(corrected)
		if err != nil {
			t.Fatal(err)
		}
		if !ne {
			dev, _ := g.FindDeviation(corrected, DefaultEps)
			t.Fatalf("corrected rule produced a non-NE at seed %d: %v\n%v", seed, dev, corrected)
		}
	}
	if !literalFailed {
		t.Error("literal rule never failed in 64 seeds; expected at least one non-NE (2x5x4 is a known failing configuration)")
	}
}

func TestTieBreakString(t *testing.T) {
	for _, tb := range []TieBreak{TieFirst, TieRandom, TieLast, TieBreak(42)} {
		if tb.String() == "" {
			t.Errorf("empty string for %d", int(tb))
		}
	}
}
