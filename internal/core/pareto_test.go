package core

import (
	"sync"
	"testing"

	"github.com/multiradio/chanalloc/internal/ratefn"
)

// checkParetoWitness asserts that w is a legal allocation Pareto-dominating
// the base utilities under the unreduced scan's exact comparisons.
func checkParetoWitness(t *testing.T, g *Game, base []float64, w *Alloc, eps float64) {
	t.Helper()
	if err := g.CheckAlloc(w); err != nil {
		t.Fatalf("witness is not a legal allocation: %v", err)
	}
	strict := false
	for i := range base {
		u := g.Utility(w, i)
		if u < base[i]-eps {
			t.Fatalf("witness hurts user %d: %v < %v - %v\n%v", i, u, base[i], eps, w)
		}
		if u > base[i]+eps {
			strict = true
		}
	}
	if !strict {
		t.Fatalf("witness improves nobody strictly\n%v", w)
	}
}

// crossCheckPareto runs the orbit-aware and unreduced searches from every
// profile of g as the base allocation: existence must agree exactly, and
// every returned witness must be a valid improvement.
func crossCheckPareto(t *testing.T, g *Game, eps float64, label string) {
	t.Helper()
	var bases []*Alloc
	if err := ForEachAlloc(g, 5_000_000, func(b *Alloc) bool {
		bases = append(bases, b.Clone())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for _, a := range bases {
		want, err := FindParetoImprovementUnreduced(g, a, eps, 5_000_000)
		if err != nil {
			t.Fatal(err)
		}
		got, err := FindParetoImprovement(g, a, eps, 5_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if (want == nil) != (got == nil) {
			t.Fatalf("%s eps=%v: orbit search found %v, unreduced found %v for base\n%v",
				label, eps, got != nil, want != nil, a)
		}
		if got != nil {
			checkParetoWitness(t, g, g.Utilities(a), got, eps)
		}
	}
}

// TestParetoOrbitAgreesWithUnreducedExhaustive: on every profile of small
// games across every ratefn family (Table and MonotoneEnvelope included),
// the orbit-aware search finds an improvement iff the unreduced search
// does, and its witness is a valid improvement.
func TestParetoOrbitAgreesWithUnreducedExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive Pareto cross-check")
	}
	configs := []struct{ users, channels, radios int }{
		{2, 2, 1},
		{2, 2, 2},
		{2, 3, 2},
		{3, 2, 2},
	}
	for _, rate := range differentialRates(t) {
		for _, cfg := range configs {
			g := mustGame(t, cfg.users, cfg.channels, cfg.radios, rate)
			crossCheckPareto(t, g, DefaultEps, rate.Name())
		}
	}
}

// TestParetoOrbitEpsBoundaries stresses tolerances where utility
// differences sit exactly at base-eps / base+eps: under TDMA(1) utilities
// are small rationals (1, 1/2, 1/3, ...), so eps drawn from the same
// lattice lands comparisons on the boundary, where > and < must agree
// between the orbit matching test and the unreduced scan bit for bit.
func TestParetoOrbitEpsBoundaries(t *testing.T) {
	cases := []struct {
		users, channels, radios int
		eps                     []float64
	}{
		{2, 2, 1, []float64{0, 0.25, 0.5, 1}},
		{3, 3, 1, []float64{0, 1.0 / 6, 1.0 / 3, 0.5}},
	}
	for _, tc := range cases {
		g := mustGame(t, tc.users, tc.channels, tc.radios, ratefn.NewTDMA(1))
		for _, eps := range tc.eps {
			crossCheckPareto(t, g, eps, "tdma-boundary")
		}
	}
}

// TestParetoOrbitHeteroClasses drives the shared matcher through games
// with several exchangeability classes per profile via the hetero-style
// enumerator on a uniform game split by hand: users 0 and 2 share a class
// while user 1 is alone, so the canonical constraint chains through a
// non-contiguous class exactly as mixed-budget games do. (The hetero
// package cross-checks its own real mixed-budget games.)
func TestParetoOrbitHeteroClasses(t *testing.T) {
	g := mustGame(t, 3, 2, 2, ratefn.Harmonic{R0: 2, Alpha: 0.6})
	rows, err := strategyRows(g)
	if err != nil {
		t.Fatal(err)
	}
	// Pretend user 1 has a different class key: same row table, so every
	// profile is still a legal profile of g, but the orbit space now has
	// two classes {0, 2} and {1}.
	oe := &OrbitEnumerator{
		View:      g.View(),
		Budgets:   []int{2, 7, 2},
		Channels:  g.Channels(),
		RowsFor:   func(int) [][]int { return rows },
		Eps:       DefaultEps,
		ErrPrefix: "core-test",
	}
	var bases []*Alloc
	if err := ForEachAlloc(g, 5_000_000, func(b *Alloc) bool {
		bases = append(bases, b.Clone())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for _, a := range bases {
		want, err := FindParetoImprovementUnreduced(g, a, DefaultEps, 5_000_000)
		if err != nil {
			t.Fatal(err)
		}
		got, err := oe.ParetoImprovement(g.Utilities(a), DefaultEps)
		if err != nil {
			t.Fatal(err)
		}
		if (want == nil) != (got == nil) {
			t.Fatalf("split-class orbit search found %v, unreduced found %v for base\n%v",
				got != nil, want != nil, a)
		}
		if got != nil {
			checkParetoWitness(t, g, g.Utilities(a), got, DefaultEps)
		}
	}
}

// TestFindParetoImprovementParallelMatchesSerial: the sharded search must
// return byte-identical results to the serial orbit-aware search at every
// worker count, witness included.
func TestFindParetoImprovementParallelMatchesSerial(t *testing.T) {
	rates := []ratefn.Func{ratefn.NewTDMA(1), ratefn.Harmonic{R0: 2, Alpha: 0.6}}
	for _, rate := range rates {
		g := mustGame(t, 3, 3, 2, rate)
		ne, err := Algorithm1(g)
		if err != nil {
			t.Fatal(err)
		}
		crowded := mustAlloc(t, [][]int{
			{2, 0, 0},
			{2, 0, 0},
			{2, 0, 0},
		})
		bases := []*Alloc{ne, crowded, g.NewEmptyAlloc()}
		for bi, a := range bases {
			serial, err := FindParetoImprovement(g, a, DefaultEps, 5_000_000)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 3, 5} {
				par, err := FindParetoImprovementParallel(g, a, DefaultEps, 5_000_000, workers)
				if err != nil {
					t.Fatal(err)
				}
				if (serial == nil) != (par == nil) {
					t.Fatalf("%s base %d workers %d: serial found %v, parallel found %v",
						rate.Name(), bi, workers, serial != nil, par != nil)
				}
				if serial != nil && !serial.Equal(par) {
					t.Fatalf("%s base %d workers %d: witnesses differ\nserial:\n%v\nparallel:\n%v",
						rate.Name(), bi, workers, serial, par)
				}
			}
		}
	}
}

// TestUtilitiesIntoMatchesUtilities pins the workspace-backed utility
// vector against the allocating form, bit for bit, with the buffer reused
// across instances.
func TestUtilitiesIntoMatchesUtilities(t *testing.T) {
	rates := differentialRates(t)
	ws := NewWorkspace()
	for seed := uint64(0); seed < 60; seed++ {
		rate := rates[int(seed)%len(rates)]
		g, a, err := randomInstance(seed, rate)
		if err != nil {
			t.Fatal(err)
		}
		want := g.Utilities(a)
		got := g.UtilitiesInto(ws, a)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d utilities, want %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d user %d: UtilitiesInto %v, Utilities %v", seed, i, got[i], want[i])
			}
		}
	}
}

// TestOptimalWelfareMemo: the game-level memo must survive mutation of the
// returned loads and serve identical values concurrently.
func TestOptimalWelfareMemo(t *testing.T) {
	g := mustGame(t, 3, 3, 2, ratefn.Harmonic{R0: 1, Alpha: 1})
	opt1, loads1 := OptimalWelfareAllPlaced(g)
	wantVal, wantLoads := OptimalLoadWelfare(g.View().Frozen(), g.Channels(), g.Users()*g.Radios())
	if opt1 != wantVal {
		t.Fatalf("memoised optimum %v, direct DP %v", opt1, wantVal)
	}
	loads1[0] = 99 // returned copy must not corrupt the memo
	opt2, loads2 := OptimalWelfareAllPlaced(g)
	if opt2 != wantVal {
		t.Fatalf("second call optimum %v, want %v", opt2, wantVal)
	}
	for c := range wantLoads {
		if loads2[c] != wantLoads[c] {
			t.Fatalf("memo loads corrupted: %v, want %v", loads2, wantLoads)
		}
	}
	ne, err := Algorithm1(g)
	if err != nil {
		t.Fatal(err)
	}
	first, err := PriceOfAnarchy(g, ne)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([]float64, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			poa, err := PriceOfAnarchy(g, ne)
			if err != nil {
				results[w] = -1
				return
			}
			results[w] = poa
		}(w)
	}
	wg.Wait()
	for w, poa := range results {
		if poa != first {
			t.Fatalf("concurrent PoA %d: %v, want %v", w, poa, first)
		}
	}
}
