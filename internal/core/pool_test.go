package core

import (
	"testing"

	"github.com/multiradio/chanalloc/internal/ratefn"
)

// TestWorkspacePoolSteadyStateAllocs pins the point of the pool: once a
// workspace has served one best-response call, borrowing it again for the
// same game dimensions allocates nothing.
func TestWorkspacePoolSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation defeats sync.Pool caching")
	}
	g, err := NewGame(6, 5, 3, ratefn.NewTDMA(54))
	if err != nil {
		t.Fatal(err)
	}
	a := g.NewEmptyAlloc()
	for i := 0; i < g.Users(); i++ {
		for j := 0; j < g.Radios(); j++ {
			if err := a.Add(i, (i+j)%g.Channels(), 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	pool := NewWorkspacePool()
	// Warm the pool: one workspace, grown to the game's dimensions.
	ws := pool.Get()
	if _, _, err := g.BestResponseInto(ws, a, 0); err != nil {
		t.Fatal(err)
	}
	pool.Put(ws)
	allocs := testing.AllocsPerRun(100, func() {
		ws := pool.Get()
		if _, _, err := g.BestResponseInto(ws, a, 1); err != nil {
			t.Fatal(err)
		}
		pool.Put(ws)
	})
	if allocs != 0 {
		t.Fatalf("pooled best response allocates %v per op, want 0", allocs)
	}
}

func TestWorkspacePoolPutNil(t *testing.T) {
	pool := NewWorkspacePool()
	pool.Put(nil) // must not panic or poison the pool
	if ws := pool.Get(); ws == nil {
		t.Fatal("Get returned nil workspace")
	}
}

func TestAllocAppendRemoveRows(t *testing.T) {
	a, err := NewAlloc(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	mustSet := func(i int, row []int) {
		t.Helper()
		if err := a.SetRow(i, row); err != nil {
			t.Fatal(err)
		}
	}
	mustSet(0, []int{1, 0, 2})
	mustSet(1, []int{0, 1, 1})

	// Append: loads unchanged, new row zero.
	row := a.AppendRow()
	if row != 2 || a.Users() != 3 {
		t.Fatalf("AppendRow gave row %d of %d users, want 2 of 3", row, a.Users())
	}
	if got := a.Loads(); got[0] != 1 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("loads after append = %v, want [1 1 3]", got)
	}
	mustSet(2, []int{2, 0, 0})

	// Swap-remove the FIRST row: last row (u2) moves into slot 0.
	if err := a.RemoveRowSwap(0); err != nil {
		t.Fatal(err)
	}
	if a.Users() != 2 {
		t.Fatalf("users after remove = %d, want 2", a.Users())
	}
	if got := a.Row(0); got[0] != 2 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("row 0 after swap-remove = %v, want old last row [2 0 0]", got)
	}
	if got := a.Loads(); got[0] != 2 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("loads after remove = %v, want [2 1 1]", got)
	}
	if a.TotalRadios() != 4 {
		t.Fatalf("total radios = %d, want 4", a.TotalRadios())
	}

	// Removing the last row in index order needs no swap.
	if err := a.RemoveRowSwap(1); err != nil {
		t.Fatal(err)
	}
	if a.Users() != 1 || a.Load(1) != 0 || a.Load(2) != 0 || a.Load(0) != 2 {
		t.Fatalf("after removing row 1: users=%d loads=%v", a.Users(), a.Loads())
	}

	// Out-of-range errors.
	if err := a.RemoveRowSwap(5); err == nil {
		t.Fatal("RemoveRowSwap(5) succeeded on 1-user alloc")
	}
	if err := a.RemoveRowSwap(-1); err == nil {
		t.Fatal("RemoveRowSwap(-1) succeeded")
	}
}
