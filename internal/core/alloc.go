// Package core implements the multi-radio channel allocation game of
// Félegyházi, Čagalj and Hubaux (ICDCS 2006): strategy matrices, utilities,
// machine-checkable versions of the paper's Lemmas 1-4, Proposition 1 and
// Theorems 1-2, exact best responses, and the paper's Algorithm 1.
//
// Model (paper §2): |N| users each own k <= |C| radios and allocate them
// over |C| orthogonal channels. The total rate R(k_c) available on a channel
// is a non-increasing function of the number of radios k_c using it and is
// shared equally among them, so user i earns
//
//	U_i(S) = Σ_c  k_{i,c} / k_c · R(k_c)        (Eq. 3)
//
// All analysis code works for arbitrary non-increasing R; the paper's
// headline regime (reservation TDMA / optimal CSMA-CA) is the constant R.
package core

import (
	"fmt"
	"strings"
)

// Alloc is a channel allocation: the strategy matrix S whose entry (i, c) is
// the number of radios user i operates on channel c (paper Figure 2). It
// maintains per-channel load sums incrementally.
type Alloc struct {
	users    int
	channels int
	m        [][]int // m[i][c] >= 0
	load     []int   // load[c] = Σ_i m[i][c]
}

// NewAlloc returns an all-zero allocation for the given dimensions.
func NewAlloc(users, channels int) (*Alloc, error) {
	if users < 1 {
		return nil, fmt.Errorf("core: users = %d, want >= 1", users)
	}
	if channels < 1 {
		return nil, fmt.Errorf("core: channels = %d, want >= 1", channels)
	}
	m := make([][]int, users)
	cells := make([]int, users*channels)
	for i := range m {
		m[i], cells = cells[:channels:channels], cells[channels:]
	}
	return &Alloc{
		users:    users,
		channels: channels,
		m:        m,
		load:     make([]int, channels),
	}, nil
}

// AllocFromMatrix builds an allocation from an explicit strategy matrix.
// The matrix is copied; rows must be equal length and entries non-negative.
func AllocFromMatrix(matrix [][]int) (*Alloc, error) {
	if len(matrix) == 0 || len(matrix[0]) == 0 {
		return nil, fmt.Errorf("core: empty strategy matrix")
	}
	a, err := NewAlloc(len(matrix), len(matrix[0]))
	if err != nil {
		return nil, err
	}
	for i, row := range matrix {
		if len(row) != a.channels {
			return nil, fmt.Errorf("core: row %d has %d channels, want %d", i, len(row), a.channels)
		}
		for c, v := range row {
			if v < 0 {
				return nil, fmt.Errorf("core: negative radio count %d at (%d, %d)", v, i, c)
			}
			a.m[i][c] = v
			a.load[c] += v
		}
	}
	return a, nil
}

// Users reports the number of users (rows).
func (a *Alloc) Users() int { return a.users }

// Channels reports the number of channels (columns).
func (a *Alloc) Channels() int { return a.channels }

// Radios returns k_{i,c}, the radios of user i on channel c.
func (a *Alloc) Radios(i, c int) int { return a.m[i][c] }

// Load returns k_c, the total number of radios on channel c.
func (a *Alloc) Load(c int) int { return a.load[c] }

// Loads returns a copy of the per-channel load vector.
func (a *Alloc) Loads() []int { return append([]int(nil), a.load...) }

// UserTotal returns k_i, the total number of radios user i has deployed.
func (a *Alloc) UserTotal(i int) int {
	total := 0
	for _, v := range a.m[i] {
		total += v
	}
	return total
}

// TotalRadios returns Σ_i k_i, the number of deployed radios.
func (a *Alloc) TotalRadios() int {
	total := 0
	for _, l := range a.load {
		total += l
	}
	return total
}

// Row returns a copy of user i's strategy vector.
func (a *Alloc) Row(i int) []int { return append([]int(nil), a.m[i]...) }

// SetRow replaces user i's strategy vector, updating channel loads. The row
// is copied; entries must be non-negative and the length must match.
func (a *Alloc) SetRow(i int, row []int) error {
	if i < 0 || i >= a.users {
		return fmt.Errorf("core: user %d out of range [0, %d)", i, a.users)
	}
	if len(row) != a.channels {
		return fmt.Errorf("core: row has %d channels, want %d", len(row), a.channels)
	}
	for c, v := range row {
		if v < 0 {
			return fmt.Errorf("core: negative radio count %d at channel %d", v, c)
		}
	}
	for c, v := range row {
		a.load[c] += v - a.m[i][c]
		a.m[i][c] = v
	}
	return nil
}

// Add adjusts k_{i,c} by delta (which may be negative), updating the load.
func (a *Alloc) Add(i, c, delta int) error {
	if i < 0 || i >= a.users {
		return fmt.Errorf("core: user %d out of range [0, %d)", i, a.users)
	}
	if c < 0 || c >= a.channels {
		return fmt.Errorf("core: channel %d out of range [0, %d)", c, a.channels)
	}
	if a.m[i][c]+delta < 0 {
		return fmt.Errorf("core: user %d channel %d would go negative (%d%+d)", i, c, a.m[i][c], delta)
	}
	a.m[i][c] += delta
	a.load[c] += delta
	return nil
}

// Move relocates one radio of user i from channel `from` to channel `to`
// (the unilateral deviation analysed throughout the paper's §3).
func (a *Alloc) Move(i, from, to int) error {
	if from == to {
		return fmt.Errorf("core: move from channel %d to itself", from)
	}
	if err := a.Add(i, from, -1); err != nil {
		return fmt.Errorf("core: move: %w", err)
	}
	if err := a.Add(i, to, +1); err != nil {
		// Roll back so the allocation stays consistent.
		_ = a.Add(i, from, +1)
		return fmt.Errorf("core: move: %w", err)
	}
	return nil
}

// AppendRow grows the allocation by one all-zero user row and returns the
// new row's index. Channel loads are unchanged (the new user deploys no
// radios yet). Together with RemoveRowSwap this is the dense-row mutation
// surface of the live-game layer: user churn edits the matrix in place
// instead of rebuilding a fixed-size allocation per event.
func (a *Alloc) AppendRow() int {
	a.m = append(a.m, make([]int, a.channels))
	a.users++
	return a.users - 1
}

// RemoveRowSwap deletes user row i in O(|C|): the row's radios are
// subtracted from the channel loads, the LAST row is moved into slot i, and
// the matrix shrinks by one. The caller owns the id→row indirection and
// must remap the moved user (previous index Users()-1, now at i). Removing
// the last remaining row leaves a zero-user allocation that is only valid
// as a live-game internal state (NewAlloc never constructs one).
func (a *Alloc) RemoveRowSwap(i int) error {
	if i < 0 || i >= a.users {
		return fmt.Errorf("core: user %d out of range [0, %d)", i, a.users)
	}
	for c, v := range a.m[i] {
		a.load[c] -= v
	}
	last := a.users - 1
	a.m[i] = a.m[last]
	a.m[last] = nil
	a.m = a.m[:last]
	a.users = last
	return nil
}

// Clone returns an independent deep copy.
func (a *Alloc) Clone() *Alloc {
	clone, err := NewAlloc(a.users, a.channels)
	if err != nil {
		// Dimensions of an existing Alloc are always valid.
		panic("core: clone of invalid alloc: " + err.Error())
	}
	for i := range a.m {
		copy(clone.m[i], a.m[i])
	}
	copy(clone.load, a.load)
	return clone
}

// Equal reports whether two allocations have identical dimensions and
// matrices.
func (a *Alloc) Equal(b *Alloc) bool {
	if b == nil || a.users != b.users || a.channels != b.channels {
		return false
	}
	for i := range a.m {
		for c := range a.m[i] {
			if a.m[i][c] != b.m[i][c] {
				return false
			}
		}
	}
	return true
}

// Matrix returns a deep copy of the strategy matrix.
func (a *Alloc) Matrix() [][]int {
	out := make([][]int, a.users)
	for i := range out {
		out[i] = append([]int(nil), a.m[i]...)
	}
	return out
}

// MinLoad returns the smallest channel load and the first channel achieving
// it.
func (a *Alloc) MinLoad() (load, channel int) {
	load, channel = a.load[0], 0
	for c := 1; c < a.channels; c++ {
		if a.load[c] < load {
			load, channel = a.load[c], c
		}
	}
	return load, channel
}

// MaxLoad returns the largest channel load and the first channel achieving
// it.
func (a *Alloc) MaxLoad() (load, channel int) {
	load, channel = a.load[0], 0
	for c := 1; c < a.channels; c++ {
		if a.load[c] > load {
			load, channel = a.load[c], c
		}
	}
	return load, channel
}

// ChannelSets partitions the channels into the paper's C_max (maximum load),
// C_min (minimum load) and C_rem (everything between); see §3.
func (a *Alloc) ChannelSets() (cmax, cmin, crem []int) {
	maxLoad, _ := a.MaxLoad()
	minLoad, _ := a.MinLoad()
	for c := 0; c < a.channels; c++ {
		switch {
		case a.load[c] == maxLoad:
			cmax = append(cmax, c)
		case a.load[c] == minLoad:
			cmin = append(cmin, c)
		default:
			crem = append(crem, c)
		}
	}
	if maxLoad == minLoad {
		// Flat allocation: C_max and C_min coincide.
		cmin = append([]int(nil), cmax...)
	}
	return cmax, cmin, crem
}

// String renders the strategy matrix in the style of the paper's Figure 2,
// with a load footer.
func (a *Alloc) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s", "")
	for c := 0; c < a.channels; c++ {
		fmt.Fprintf(&b, " c%-3d", c+1)
	}
	b.WriteByte('\n')
	for i := 0; i < a.users; i++ {
		fmt.Fprintf(&b, "u%-5d", i+1)
		for c := 0; c < a.channels; c++ {
			fmt.Fprintf(&b, " %-4d", a.m[i][c])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%6s", "load")
	for c := 0; c < a.channels; c++ {
		fmt.Fprintf(&b, " %-4d", a.load[c])
	}
	return b.String()
}
