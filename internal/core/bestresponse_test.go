package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/multiradio/chanalloc/internal/combin"
	"github.com/multiradio/chanalloc/internal/des"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

// bruteBestResponse enumerates every legal row for user i and returns the
// best utility. Reference implementation for the DP.
func bruteBestResponse(t *testing.T, g *Game, a *Alloc, i int) float64 {
	t.Helper()
	best := math.Inf(-1)
	work := a.Clone()
	for total := 0; total <= g.Radios(); total++ {
		err := combin.Compositions(total, g.Channels(), func(row []int) bool {
			if err := work.SetRow(i, row); err != nil {
				t.Fatal(err)
			}
			if u := g.Utility(work, i); u > best {
				best = u
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return best
}

func TestBestResponseMatchesBruteForce(t *testing.T) {
	rates := []ratefn.Func{
		ratefn.NewTDMA(1),
		ratefn.Harmonic{R0: 1, Alpha: 1},
		ratefn.Harmonic{R0: 2, Alpha: 0.1},
		ratefn.Geometric{R0: 1, Beta: 0.5},
	}
	g0, a := figure1Game(t)
	for _, r := range rates {
		g := mustGame(t, g0.Users(), g0.Channels(), g0.Radios(), r)
		for i := 0; i < g.Users(); i++ {
			row, got, err := g.BestResponse(a, i)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteBestResponse(t, g, a, i)
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("%s u%d: DP best %v != brute force %v", r.Name(), i+1, got, want)
			}
			// The reported row must achieve the reported value.
			work := a.Clone()
			if err := work.SetRow(i, row); err != nil {
				t.Fatal(err)
			}
			if u := g.Utility(work, i); math.Abs(u-got) > 1e-9 {
				t.Errorf("%s u%d: row %v achieves %v, DP claimed %v", r.Name(), i+1, row, u, got)
			}
		}
	}
}

func TestBestResponseUsesAllRadiosWhenRatePositive(t *testing.T) {
	// Lemma 1: with strictly positive rates the optimum deploys the full
	// budget. Exercise random small instances.
	f := func(seed uint64) bool {
		rng := des.NewRNG(seed)
		users := 1 + rng.Intn(4)
		channels := 1 + rng.Intn(5)
		radios := 1 + rng.Intn(channels)
		g, err := NewGame(users, channels, radios, ratefn.Harmonic{R0: 1, Alpha: 0.3})
		if err != nil {
			return false
		}
		a := g.NewEmptyAlloc()
		for i := 0; i < users; i++ {
			for j := 0; j < radios; j++ {
				if err := a.Add(i, rng.Intn(channels), 1); err != nil {
					return false
				}
			}
		}
		row, _, err := g.BestResponse(a, 0)
		if err != nil {
			return false
		}
		total := 0
		for _, x := range row {
			total += x
		}
		return total == radios
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBestResponseSpreadsUnderConstantRate(t *testing.T) {
	// Facing an empty system, the best response under constant R is one
	// radio per channel (each alone earning R(1)).
	g := mustGame(t, 2, 4, 3, ratefn.NewTDMA(5))
	a := g.NewEmptyAlloc()
	row, util, err := g.BestResponse(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(util-15) > 1e-12 {
		t.Fatalf("best utility = %v, want 15 (three exclusive channels)", util)
	}
	for _, x := range row {
		if x > 1 {
			t.Fatalf("best response %v stacks radios on an empty system", row)
		}
	}
}

func TestBestResponseErrors(t *testing.T) {
	g, a := figure1Game(t)
	if _, _, err := g.BestResponse(a, -1); err == nil {
		t.Error("negative user should error")
	}
	if _, _, err := g.BestResponse(a, 99); err == nil {
		t.Error("out-of-range user should error")
	}
	small, err := NewAlloc(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.BestResponse(small, 0); err == nil {
		t.Error("mismatched alloc should error")
	}
}

func TestFindDeviationOnFigure1(t *testing.T) {
	// Figure 1 is not a NE, so a deviation must exist; applying the
	// deviation must realise the promised gain.
	g, a := figure1Game(t)
	dev, err := g.FindDeviation(a, DefaultEps)
	if err != nil {
		t.Fatal(err)
	}
	if dev == nil {
		t.Fatal("no deviation found on the non-NE Figure 1 example")
	}
	before := g.Utility(a, dev.User)
	work := a.Clone()
	if err := work.SetRow(dev.User, dev.Better); err != nil {
		t.Fatal(err)
	}
	after := g.Utility(work, dev.User)
	if math.Abs((after-before)-dev.Gain) > 1e-9 {
		t.Fatalf("deviation gain %v but realised %v", dev.Gain, after-before)
	}
	if dev.String() == "" {
		t.Error("empty deviation string")
	}
}

func TestFindDeviationTolerance(t *testing.T) {
	g, a := figure1Game(t)
	if _, err := g.FindDeviation(a, -1); err == nil {
		t.Error("negative eps should error")
	}
	// With an absurdly large tolerance everything is an equilibrium.
	dev, err := g.FindDeviation(a, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if dev != nil {
		t.Error("huge tolerance should suppress all deviations")
	}
}

func TestUtilityRat(t *testing.T) {
	g, a := figure1Game(t)
	for i := 0; i < g.Users(); i++ {
		exact, ok := g.UtilityRat(a, i)
		if !ok {
			t.Fatal("TDMA should support exact arithmetic")
		}
		f, _ := exact.Float64()
		if math.Abs(f-g.Utility(a, i)) > 1e-9 {
			t.Errorf("u%d: exact %v vs float %v", i+1, f, g.Utility(a, i))
		}
	}
}

func TestUtilityRatUnsupported(t *testing.T) {
	tbl, err := ratefn.NewTable("t", []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	g := mustGame(t, 2, 2, 1, tbl)
	a := g.NewEmptyAlloc()
	if _, ok := g.UtilityRat(a, 0); ok {
		t.Fatal("table rate should not claim exact support")
	}
	if _, _, ok, _ := g.BestResponseRat(a, 0); ok {
		t.Fatal("table rate should not claim exact best response")
	}
	if _, ok, _ := g.IsNashEquilibriumRat(a); ok {
		t.Fatal("table rate should not claim exact NE decision")
	}
}

func TestBestResponseRatMatchesFloat(t *testing.T) {
	rates := []ratefn.Func{
		ratefn.NewTDMA(1),
		ratefn.Harmonic{R0: 1, Alpha: 0.5},
	}
	g0, a := figure1Game(t)
	for _, r := range rates {
		g := mustGame(t, g0.Users(), g0.Channels(), g0.Radios(), r)
		for i := 0; i < g.Users(); i++ {
			_, floatBest, err := g.BestResponse(a, i)
			if err != nil {
				t.Fatal(err)
			}
			_, ratBest, ok, err := g.BestResponseRat(a, i)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatal("rate should support exact arithmetic")
			}
			f, _ := ratBest.Float64()
			if math.Abs(f-floatBest) > 1e-9 {
				t.Errorf("%s u%d: exact BR %v vs float BR %v", r.Name(), i+1, f, floatBest)
			}
		}
	}
}

func TestBestResponseRatErrors(t *testing.T) {
	g, _ := figure1Game(t)
	small, err := NewAlloc(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := g.BestResponseRat(small, 0); err == nil {
		t.Error("mismatched alloc should error")
	}
	a := g.NewEmptyAlloc()
	if _, _, _, err := g.BestResponseRat(a, -1); err == nil {
		t.Error("bad user should error")
	}
}

func TestExactAndFloatOraclesAgreeOnSmallGames(t *testing.T) {
	// Enumerate every allocation of tiny games and require the float oracle
	// (eps = DefaultEps) and the big.Rat oracle to return identical NE
	// verdicts. This pins down that float tolerance never flips a decision
	// at these scales.
	configs := []struct {
		users, channels, radios int
		rate                    ratefn.Func
	}{
		{2, 2, 2, ratefn.NewTDMA(1)},
		{2, 3, 2, ratefn.NewTDMA(1)},
		{3, 2, 2, ratefn.Harmonic{R0: 1, Alpha: 1}},
		{2, 3, 2, ratefn.Harmonic{R0: 1, Alpha: 0.25}},
	}
	for _, cfg := range configs {
		g := mustGame(t, cfg.users, cfg.channels, cfg.radios, cfg.rate)
		err := ForEachAlloc(g, 1_000_000, func(a *Alloc) bool {
			floatNE, err := g.IsNashEquilibrium(a)
			if err != nil {
				t.Fatal(err)
			}
			ratNE, ok, err := g.IsNashEquilibriumRat(a)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatal("rate should support exact arithmetic")
			}
			if floatNE != ratNE {
				t.Fatalf("%s %dx%dx%d: float oracle %v != exact oracle %v for\n%v",
					cfg.rate.Name(), cfg.users, cfg.channels, cfg.radios, floatNE, ratNE, a)
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestTheorem1EquivalenceConstantRate(t *testing.T) {
	// Experiment E2: under constant R (the paper's headline regime), the
	// Theorem 1 characterisation must coincide with the exact best-response
	// oracle on every allocation of every tiny game.
	if testing.Short() {
		t.Skip("exhaustive equivalence sweep")
	}
	configs := []struct{ users, channels, radios int }{
		{2, 2, 2},
		{2, 3, 2},
		{2, 3, 3},
		{3, 2, 2},
		{3, 3, 2},
		{4, 2, 2},
		{2, 4, 2},
		{1, 3, 2},
		// 4x3x2 hosts the exception-user spare-move gap (a user owning both
		// radios of a load-2 minimum channel); see exceptionSpareMove.
		{4, 3, 2},
		{3, 3, 3},
	}
	for _, cfg := range configs {
		g := mustGame(t, cfg.users, cfg.channels, cfg.radios, ratefn.NewTDMA(1))
		checked, neCount := 0, 0
		err := ForEachAlloc(g, 5_000_000, func(a *Alloc) bool {
			checked++
			thmNE, _ := TheoremNE(g, a)
			oracleNE, ok, err := g.IsNashEquilibriumRat(a)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatal("constant rate must support exact arithmetic")
			}
			if thmNE != oracleNE {
				t.Fatalf("%dx%dx%d: Theorem 1 says %v, oracle says %v for\n%v",
					cfg.users, cfg.channels, cfg.radios, thmNE, oracleNE, a)
			}
			if oracleNE {
				neCount++
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if neCount == 0 {
			t.Errorf("%dx%dx%d: no NE found among %d allocations; game should always have one",
				cfg.users, cfg.channels, cfg.radios, checked)
		}
	}
}
