// Package journal persists cluster-batch progress as an append-only NDJSON
// checkpoint file, so a coordinator killed mid-sweep can restart, skip the
// jobs it already completed, and fan in results byte-identical to an
// uninterrupted run.
//
// Grammar (one JSON object per line):
//
//	line 1   header  {"v":1,"task":"sweep/experiment","params_sha":"…","seed":42,"jobs":12}
//	line 2+  entry   {"job":3,"value":<result JSON>,"sha":"…"}
//	                 {"job":7,"failed":true,"error":"…","sha":"…"}
//
// The header pins the batch's identity — task name, SHA-256 of the params
// blob, root seed, job count — so a journal can never silently resume a
// DIFFERENT batch: any mismatch on resume is a hard error. Entries carry
// the full result bytes (resume must reproduce the fan-in exactly, and
// results are the engine's own compact JSON — re-deriving them is what
// we're trying to avoid) plus a SHA-256 self-check over the payload.
//
// Crash tolerance is asymmetric by design. A torn TAIL — the coordinator
// died mid-write, leaving a final line that is incomplete or fails its
// digest — is expected and silently truncated: that job simply re-runs.
// Corruption anywhere EARLIER (an invalid line with valid lines after it)
// means the file was damaged by something other than our own crash, and
// recovery refuses rather than resume from a lie.
package journal

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// Version is the journal file format version, written in every header.
const Version = 1

// Header identifies the batch a journal belongs to. Two runs resume-match
// exactly when every field agrees.
type Header struct {
	V         int    `json:"v"`
	Task      string `json:"task"`
	ParamsSHA string `json:"params_sha"`
	Seed      uint64 `json:"seed"`
	Jobs      int    `json:"jobs"`
}

// Entry records one completed job: its index, the raw result bytes exactly
// as the worker returned them (or the job's error), and a SHA-256
// self-check over the payload.
type Entry struct {
	Job    int             `json:"job"`
	Value  json.RawMessage `json:"value,omitempty"`
	Failed bool            `json:"failed,omitempty"`
	Error  string          `json:"error,omitempty"`
	SHA    string          `json:"sha"`
}

// ParamsDigest is the canonical hash of a batch's params blob for the
// header's params_sha field.
func ParamsDigest(params []byte) string {
	sum := sha256.Sum256(params)
	return hex.EncodeToString(sum[:])
}

// digest computes an entry's self-check: the hash covers the failure bit so
// a success and a failure can never swap payloads undetected.
func (e *Entry) digest() string {
	h := sha256.New()
	if e.Failed {
		io.WriteString(h, "failed:")
		io.WriteString(h, e.Error)
	} else {
		io.WriteString(h, "value:")
		h.Write(e.Value)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Journal is an open checkpoint file in append mode.
type Journal struct {
	f          *os.File
	w          *bufio.Writer
	fsyncEvery int
	unsynced   int
	writes     int
}

// Create starts a fresh journal at path, truncating anything already there,
// and writes the header. fsyncEvery is the durability cadence: fsync after
// every n appends (n <= 1 means every append — the safe default; larger
// values trade a crash losing up to n-1 checkpoints for fewer disk stalls).
func Create(path string, h Header, fsyncEvery int) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: creating %s: %w", path, err)
	}
	j := newJournal(f, fsyncEvery)
	h.V = Version
	line, err := json.Marshal(h)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: encoding header: %w", err)
	}
	if err := j.writeLine(line); err != nil {
		f.Close()
		return nil, err
	}
	if err := j.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

func newJournal(f *os.File, fsyncEvery int) *Journal {
	if fsyncEvery < 1 {
		fsyncEvery = 1
	}
	return &Journal{f: f, w: bufio.NewWriter(f), fsyncEvery: fsyncEvery}
}

// Append checkpoints one completed job, stamping its digest, and syncs when
// the fsync cadence says so.
func (j *Journal) Append(e Entry) error {
	e.SHA = e.digest()
	line, err := json.Marshal(&e)
	if err != nil {
		return fmt.Errorf("journal: encoding entry for job %d: %w", e.Job, err)
	}
	if err := j.writeLine(line); err != nil {
		return err
	}
	j.writes++
	j.unsynced++
	if j.unsynced >= j.fsyncEvery {
		return j.Sync()
	}
	return nil
}

// Writes reports how many entries this handle has appended (obs feed).
func (j *Journal) Writes() int { return j.writes }

func (j *Journal) writeLine(line []byte) error {
	if _, err := j.w.Write(line); err != nil {
		return fmt.Errorf("journal: write: %w", err)
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("journal: write: %w", err)
	}
	return nil
}

// Sync flushes buffered lines and fsyncs the file.
func (j *Journal) Sync() error {
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("journal: flush: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.unsynced = 0
	return nil
}

// Close syncs and closes the file.
func (j *Journal) Close() error {
	syncErr := j.Sync()
	closeErr := j.f.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// Recover reads a journal back: the header plus every valid entry, in file
// order (duplicates possible only if two coordinators raced one file — the
// caller keeps the first). A torn tail — final line incomplete, invalid
// JSON, or failing its digest — is dropped silently; an invalid line with
// valid lines AFTER it is corruption and a hard error.
func Recover(path string) (Header, []Entry, error) {
	var h Header
	data, err := os.ReadFile(path)
	if err != nil {
		return h, nil, fmt.Errorf("journal: reading %s: %w", path, err)
	}
	lines := bytes.Split(data, []byte("\n"))
	// A well-formed file ends in '\n', so the final split element is empty;
	// anything else is a torn last line (no newline made it to disk).
	torn := false
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	} else {
		torn = true
	}
	if len(lines) == 0 {
		return h, nil, fmt.Errorf("journal: %s is empty", path)
	}
	if err := json.Unmarshal(lines[0], &h); err != nil {
		if len(lines) == 1 && torn {
			return h, nil, fmt.Errorf("journal: %s: header line torn (crash during create?): %w", path, err)
		}
		return h, nil, fmt.Errorf("journal: %s: parsing header: %w", path, err)
	}
	if h.V != Version {
		return h, nil, fmt.Errorf("journal: %s: format v%d, this binary speaks v%d", path, h.V, Version)
	}
	var entries []Entry
	for i, line := range lines[1:] {
		last := i == len(lines)-2
		var e Entry
		bad := ""
		if err := json.Unmarshal(line, &e); err != nil {
			bad = err.Error()
		} else if e.Job < 0 || (h.Jobs > 0 && e.Job >= h.Jobs) {
			bad = fmt.Sprintf("job index %d out of range [0,%d)", e.Job, h.Jobs)
		} else if e.SHA != e.digest() {
			bad = "entry digest mismatch"
		}
		if bad != "" {
			if last {
				// The coordinator died mid-append; the job just re-runs.
				break
			}
			return h, nil, fmt.Errorf("journal: %s: line %d corrupt with valid lines after it (%s) — refusing to resume", path, i+2, bad)
		}
		entries = append(entries, e)
	}
	return h, entries, nil
}

// ErrMismatch tags a resume against a journal whose header does not match
// the batch being run — wrong task, params, seed or job count.
var ErrMismatch = errors.New("journal: batch identity mismatch")

// Resume opens path for a batch described by h. If the file does not exist
// this degenerates to Create (a fresh journal, no recovered entries).
// Otherwise the stored header must match h exactly, the valid prefix is
// recovered (first entry wins per job index), the file is truncated past it
// — discarding any torn tail — and the journal reopens in append mode.
func Resume(path string, h Header, fsyncEvery int) (*Journal, []Entry, error) {
	if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
		j, err := Create(path, h, fsyncEvery)
		return j, nil, err
	}
	stored, entries, err := Recover(path)
	if err != nil {
		return nil, nil, err
	}
	if stored.Task != h.Task || stored.ParamsSHA != h.ParamsSHA || stored.Seed != h.Seed || stored.Jobs != h.Jobs {
		return nil, nil, fmt.Errorf("%w: journal %s holds task=%q params_sha=%s seed=%d jobs=%d, this batch is task=%q params_sha=%s seed=%d jobs=%d",
			ErrMismatch, path, stored.Task, short(stored.ParamsSHA), stored.Seed, stored.Jobs,
			h.Task, short(h.ParamsSHA), h.Seed, h.Jobs)
	}
	// Dedupe keeping the first occurrence, and rewrite the file to exactly
	// the valid recovered prefix: truncation discards the torn tail so the
	// appends that follow start on a clean line boundary.
	seen := make(map[int]bool, len(entries))
	kept := entries[:0]
	for _, e := range entries {
		if seen[e.Job] {
			continue
		}
		seen[e.Job] = true
		kept = append(kept, e)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: reopening %s: %w", path, err)
	}
	j := newJournal(f, fsyncEvery)
	stored.V = Version
	headLine, err := json.Marshal(stored)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: encoding header: %w", err)
	}
	if err := j.writeLine(headLine); err != nil {
		f.Close()
		return nil, nil, err
	}
	for i := range kept {
		line, err := json.Marshal(&kept[i])
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: re-encoding entry for job %d: %w", kept[i].Job, err)
		}
		if err := j.writeLine(line); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if err := j.Sync(); err != nil {
		f.Close()
		return nil, nil, err
	}
	return j, kept, nil
}

// short abbreviates a hex digest for error messages.
func short(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}
