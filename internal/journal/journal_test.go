package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testHeader(jobs int) Header {
	return Header{
		Task:      "test/task",
		ParamsSHA: ParamsDigest([]byte(`{"n":4}`)),
		Seed:      42,
		Jobs:      jobs,
	}
}

func entryFor(job int) Entry {
	return Entry{Job: job, Value: json.RawMessage(fmt.Sprintf(`{"job":%d,"x":%d}`, job, job*job))}
}

// TestRoundTrip writes a journal and recovers it: header and every entry
// must come back exactly, digests intact.
func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.ndjson")
	h := testHeader(8)
	j, err := Create(path, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append(entryFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Append(Entry{Job: 5, Failed: true, Error: "task: boom"}); err != nil {
		t.Fatal(err)
	}
	if got := j.Writes(); got != 6 {
		t.Fatalf("Writes() = %d, want 6", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	stored, entries, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	h.V = Version
	if stored != h {
		t.Fatalf("header round-trip: got %+v, want %+v", stored, h)
	}
	if len(entries) != 6 {
		t.Fatalf("recovered %d entries, want 6", len(entries))
	}
	for i := 0; i < 5; i++ {
		if entries[i].Job != i || string(entries[i].Value) != fmt.Sprintf(`{"job":%d,"x":%d}`, i, i*i) {
			t.Fatalf("entry %d round-trip: %+v", i, entries[i])
		}
	}
	if !entries[5].Failed || entries[5].Error != "task: boom" {
		t.Fatalf("failed entry round-trip: %+v", entries[5])
	}
}

// TestTornTailTruncated chops bytes off the end of a valid journal at every
// possible offset within the last line: recovery must silently drop the torn
// tail and keep every fully-written entry before it.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.ndjson")
	h := testHeader(4)
	j, err := Create(full, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(entryFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d", len(lines))
	}
	prefix := len(data) - len(lines[3]) - 1 // bytes before the last entry's line
	for cut := prefix + 1; cut < len(data); cut++ {
		torn := filepath.Join(dir, fmt.Sprintf("torn-%d.ndjson", cut))
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, entries, err := Recover(torn)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		// Losing only the trailing newline leaves the final entry complete
		// and digest-valid, so it survives; any earlier cut drops it.
		want := 2
		if cut == len(data)-1 {
			want = 3
		}
		if len(entries) != want {
			t.Fatalf("cut at %d: recovered %d entries, want %d", cut, len(entries), want)
		}
	}
}

// TestMidFileCorruptionRefused flips a byte in a NON-final entry: that is not
// our own torn write, and recovery must hard-fail rather than resume.
func TestMidFileCorruptionRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.ndjson")
	j, err := Create(path, testHeader(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(entryFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a digit inside the second entry's value (line 3 of 4).
	idx := strings.Index(string(data), `"x":1}`)
	if idx < 0 {
		t.Fatal("marker not found")
	}
	data[idx+4] = '9'
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Recover(path)
	if err == nil || !strings.Contains(err.Error(), "corrupt with valid lines after it") {
		t.Fatalf("Recover = %v, want mid-file corruption error", err)
	}
	// Resume must refuse the same way.
	if _, _, err := Resume(path, testHeader(4), 1); err == nil {
		t.Fatal("Resume accepted a mid-file-corrupt journal")
	}
}

// TestHeaderMismatch: resuming with any divergent identity field is ErrMismatch.
func TestHeaderMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.ndjson")
	j, err := Create(path, testHeader(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*Header){
		"task":   func(h *Header) { h.Task = "other/task" },
		"params": func(h *Header) { h.ParamsSHA = ParamsDigest([]byte(`{"n":5}`)) },
		"seed":   func(h *Header) { h.Seed = 43 },
		"jobs":   func(h *Header) { h.Jobs = 5 },
	}
	for name, mutate := range mutations {
		h := testHeader(4)
		mutate(&h)
		if _, _, err := Resume(path, h, 1); !errors.Is(err, ErrMismatch) {
			t.Errorf("%s mismatch: Resume = %v, want ErrMismatch", name, err)
		}
	}
	// Identical header resumes fine.
	j2, entries, err := Resume(path, testHeader(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("recovered %d entries from an entry-less journal", len(entries))
	}
	j2.Close()
}

// TestResumeMissingFileCreates: resume against a nonexistent path is a create.
func TestResumeMissingFileCreates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.ndjson")
	j, entries, err := Resume(path, testHeader(2), 1)
	if err != nil {
		t.Fatal(err)
	}
	if entries != nil {
		t.Fatalf("fresh resume recovered entries: %v", entries)
	}
	if err := j.Append(entryFor(0)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, err := Recover(path)
	if err != nil || len(got) != 1 {
		t.Fatalf("Recover after fresh-resume append: %d entries, err=%v", len(got), err)
	}
}

// TestResumeDedupesFirstWins: duplicate job indices (two coordinators racing
// one file) keep the FIRST occurrence, and the rewritten file holds only the
// deduped prefix.
func TestResumeDedupesFirstWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.ndjson")
	j, err := Create(path, testHeader(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	first := Entry{Job: 1, Value: json.RawMessage(`"first"`)}
	second := Entry{Job: 1, Value: json.RawMessage(`"second"`)}
	for _, e := range []Entry{entryFor(0), first, second, entryFor(2)} {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, entries, err := Resume(path, testHeader(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("resumed %d entries, want 3 after dedupe", len(entries))
	}
	if string(entries[1].Value) != `"first"` {
		t.Fatalf("dedupe kept %s, want the first occurrence", entries[1].Value)
	}
	// The rewrite dropped the duplicate from disk too.
	_, again, err := Recover(path)
	if err != nil || len(again) != 3 {
		t.Fatalf("post-rewrite Recover: %d entries, err=%v", len(again), err)
	}
}

// TestResumeTruncatesTornTail: resume against a torn file rewrites it to the
// valid prefix, and subsequent appends land on a clean line boundary.
func TestResumeTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.ndjson")
	j, err := Create(path, testHeader(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := j.Append(entryFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear: half of an in-flight third entry.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"job":2,"val`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, entries, err := Resume(path, testHeader(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("resumed %d entries, want 2", len(entries))
	}
	if err := j2.Append(entryFor(2)); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	_, final, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != 3 {
		t.Fatalf("final journal holds %d entries, want 3", len(final))
	}
}

// TestDigestCoversFailedBit: a failure entry whose bytes are reinterpreted as
// a success (or vice versa) must fail its digest — the "failed:"/"value:"
// domain separation in the hash.
func TestDigestCoversFailedBit(t *testing.T) {
	e := Entry{Job: 0, Failed: true, Error: "x"}
	failedSHA := e.digest()
	e2 := Entry{Job: 0, Value: json.RawMessage(`x`)}
	if failedSHA == e2.digest() {
		t.Fatal("failure and success entries with identical payload bytes share a digest")
	}
}

// TestEntryRangeChecked: a recovered entry whose job index exceeds the
// header's job count is corruption (or a mismatched journal) — last line
// torn-dropped, earlier lines fatal.
func TestEntryRangeChecked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.ndjson")
	j, err := Create(path, testHeader(2), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(entryFor(0)); err != nil {
		t.Fatal(err)
	}
	// Forge an out-of-range but digest-valid entry as the LAST line: dropped.
	oob := Entry{Job: 7, Value: json.RawMessage(`{}`)}
	if err := j.Append(oob); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, entries, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("recovered %d entries, want 1 (out-of-range tail dropped)", len(entries))
	}
	// Same forged entry mid-file: fatal.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	good := entryFor(1)
	good.SHA = good.digest()
	line, _ := json.Marshal(&good)
	f.Write(line)
	f.WriteString("\n")
	f.Close()
	if _, _, err := Recover(path); err == nil {
		t.Fatal("Recover accepted an out-of-range entry with valid lines after it")
	}
}

// TestRandomKillPoints is the resumability property test: write a journal,
// truncate it at a RANDOM byte offset (any crash point past the header),
// resume, finish the remaining jobs, and check the final recovered set is
// complete with every surviving prefix entry byte-identical.
func TestRandomKillPoints(t *testing.T) {
	const jobs = 12
	h := testHeader(jobs)
	// Build the reference journal once.
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.ndjson")
	j, err := Create(ref, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < jobs; i++ {
		if err := j.Append(entryFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	headerEnd := strings.IndexByte(string(data), '\n') + 1

	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		cut := headerEnd + rng.Intn(len(data)-headerEnd) + 1
		if cut > len(data) {
			cut = len(data)
		}
		path := filepath.Join(dir, fmt.Sprintf("kill-%d.ndjson", trial))
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, recovered, err := Resume(path, h, 1)
		if err != nil {
			t.Fatalf("trial %d (cut %d): %v", trial, cut, err)
		}
		done := make(map[int]bool, len(recovered))
		for _, e := range recovered {
			if want := entryFor(e.Job); string(e.Value) != string(want.Value) {
				t.Fatalf("trial %d: recovered job %d value %s diverges", trial, e.Job, e.Value)
			}
			done[e.Job] = true
		}
		for i := 0; i < jobs; i++ {
			if !done[i] {
				if err := j2.Append(entryFor(i)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
		_, final, err := Recover(path)
		if err != nil {
			t.Fatalf("trial %d: final recover: %v", trial, err)
		}
		if len(final) != jobs {
			t.Fatalf("trial %d: final journal has %d entries, want %d", trial, len(final), jobs)
		}
		seen := make(map[int]string, jobs)
		for _, e := range final {
			seen[e.Job] = string(e.Value)
		}
		for i := 0; i < jobs; i++ {
			if seen[i] != string(entryFor(i).Value) {
				t.Fatalf("trial %d: job %d final value %q", trial, i, seen[i])
			}
		}
	}
}

// TestFsyncCadence: with fsyncEvery=4, three appends leave unsynced buffered
// data flushed only at Close; the journal still recovers completely.
func TestFsyncCadence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.ndjson")
	j, err := Create(path, testHeader(8), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := j.Append(entryFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, entries, err := Recover(path)
	if err != nil || len(entries) != 7 {
		t.Fatalf("fsync-cadence recover: %d entries, err=%v", len(entries), err)
	}
}
