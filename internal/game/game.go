// Package game is a small generic toolkit for finite normal-form games:
// exhaustive pure-Nash enumeration, Pareto fronts, social optima and the
// price of anarchy over enumerable strategy spaces.
//
// Its role in this repository is cross-validation: the specialised
// channel-allocation analysis in package core is checked against this
// brute-force machinery on tiny instances (experiment E2), so a bug in one
// implementation cannot silently agree with the same bug in the other.
package game

import (
	"fmt"
	"math"

	"github.com/multiradio/chanalloc/internal/combin"
)

// NormalForm is a finite normal-form game: each player i picks a strategy
// index in [0, NumStrategies(i)), and Payoff maps a full profile to one
// utility per player.
type NormalForm struct {
	numStrategies []int
	payoff        func(profile []int) []float64
}

// New validates and builds a NormalForm game. numStrategies gives each
// player's strategy count; payoff must return one value per player and is
// treated as a pure function.
func New(numStrategies []int, payoff func([]int) []float64) (*NormalForm, error) {
	if len(numStrategies) == 0 {
		return nil, fmt.Errorf("game: no players")
	}
	for i, n := range numStrategies {
		if n < 1 {
			return nil, fmt.Errorf("game: player %d has %d strategies, want >= 1", i, n)
		}
	}
	if payoff == nil {
		return nil, fmt.Errorf("game: nil payoff function")
	}
	return &NormalForm{
		numStrategies: append([]int(nil), numStrategies...),
		payoff:        payoff,
	}, nil
}

// Players returns the number of players.
func (nf *NormalForm) Players() int { return len(nf.numStrategies) }

// NumStrategies returns player i's strategy count.
func (nf *NormalForm) NumStrategies(i int) int { return nf.numStrategies[i] }

// Profiles reports the total number of strategy profiles, or an error if it
// overflows int64.
func (nf *NormalForm) Profiles() (int64, error) {
	total := int64(1)
	for _, n := range nf.numStrategies {
		if total > math.MaxInt64/int64(n) {
			return 0, fmt.Errorf("game: profile count overflows int64")
		}
		total *= int64(n)
	}
	return total, nil
}

// Payoffs evaluates the payoff function at profile, validating the result
// length.
func (nf *NormalForm) Payoffs(profile []int) ([]float64, error) {
	if len(profile) != nf.Players() {
		return nil, fmt.Errorf("game: profile has %d entries, want %d", len(profile), nf.Players())
	}
	for i, s := range profile {
		if s < 0 || s >= nf.numStrategies[i] {
			return nil, fmt.Errorf("game: player %d strategy %d out of range [0, %d)", i, s, nf.numStrategies[i])
		}
	}
	u := nf.payoff(profile)
	if len(u) != nf.Players() {
		return nil, fmt.Errorf("game: payoff returned %d utilities for %d players", len(u), nf.Players())
	}
	// Copy defensively: payoff closures may reuse their result buffer
	// (the ChannelGame adapter does), and callers hold Payoffs results
	// across further payoff evaluations.
	return append([]float64(nil), u...), nil
}

// IsPureNE reports whether profile is a pure-strategy Nash equilibrium
// within tolerance eps: no player can gain more than eps by a unilateral
// switch.
func (nf *NormalForm) IsPureNE(profile []int, eps float64) (bool, error) {
	base, err := nf.Payoffs(profile)
	if err != nil {
		return false, err
	}
	work := append([]int(nil), profile...)
	for i := 0; i < nf.Players(); i++ {
		orig := work[i]
		for s := 0; s < nf.numStrategies[i]; s++ {
			if s == orig {
				continue
			}
			work[i] = s
			u := nf.payoff(work)
			if len(u) != nf.Players() {
				return false, fmt.Errorf("game: payoff returned %d utilities for %d players", len(u), nf.Players())
			}
			if u[i] > base[i]+eps {
				work[i] = orig
				return false, nil
			}
		}
		work[i] = orig
	}
	return true, nil
}

// PureNE enumerates all pure-strategy Nash equilibria. maxProfiles guards
// against accidentally exploding strategy spaces.
func (nf *NormalForm) PureNE(eps float64, maxProfiles int64) ([][]int, error) {
	total, err := nf.Profiles()
	if err != nil {
		return nil, err
	}
	if total > maxProfiles {
		return nil, fmt.Errorf("game: %d profiles exceed cap %d", total, maxProfiles)
	}
	var out [][]int
	var innerErr error
	err = combin.Product(nf.numStrategies, func(profile []int) bool {
		ok, err := nf.IsPureNE(profile, eps)
		if err != nil {
			innerErr = err
			return false
		}
		if ok {
			out = append(out, append([]int(nil), profile...))
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if innerErr != nil {
		return nil, innerErr
	}
	return out, nil
}

// SocialOptimum returns a profile maximising the utilitarian welfare
// Σ_i u_i and its welfare value.
func (nf *NormalForm) SocialOptimum(maxProfiles int64) ([]int, float64, error) {
	total, err := nf.Profiles()
	if err != nil {
		return nil, 0, err
	}
	if total > maxProfiles {
		return nil, 0, fmt.Errorf("game: %d profiles exceed cap %d", total, maxProfiles)
	}
	best := math.Inf(-1)
	var bestProfile []int
	var innerErr error
	err = combin.Product(nf.numStrategies, func(profile []int) bool {
		u := nf.payoff(profile)
		if len(u) != nf.Players() {
			innerErr = fmt.Errorf("game: payoff returned %d utilities for %d players", len(u), nf.Players())
			return false
		}
		w := 0.0
		for _, v := range u {
			w += v
		}
		if w > best {
			best = w
			bestProfile = append(bestProfile[:0], profile...)
		}
		return true
	})
	if err != nil {
		return nil, 0, err
	}
	if innerErr != nil {
		return nil, 0, innerErr
	}
	return bestProfile, best, nil
}

// PriceOfAnarchy returns (worst NE welfare) / (optimal welfare) within the
// capped strategy space. It errors when the game has no pure NE or the
// optimum is non-positive.
func (nf *NormalForm) PriceOfAnarchy(eps float64, maxProfiles int64) (float64, error) {
	nes, err := nf.PureNE(eps, maxProfiles)
	if err != nil {
		return 0, err
	}
	if len(nes) == 0 {
		return 0, fmt.Errorf("game: no pure Nash equilibrium")
	}
	_, opt, err := nf.SocialOptimum(maxProfiles)
	if err != nil {
		return 0, err
	}
	if opt <= 0 {
		return 0, fmt.Errorf("game: non-positive optimal welfare %v", opt)
	}
	worst := math.Inf(1)
	for _, ne := range nes {
		u, err := nf.Payoffs(ne)
		if err != nil {
			return 0, err
		}
		w := 0.0
		for _, v := range u {
			w += v
		}
		if w < worst {
			worst = w
		}
	}
	return worst / opt, nil
}

// ParetoDominates reports whether profile a weakly improves on b for every
// player and strictly for at least one (tolerance eps).
func (nf *NormalForm) ParetoDominates(a, b []int, eps float64) (bool, error) {
	ua, err := nf.Payoffs(a)
	if err != nil {
		return false, err
	}
	ub, err := nf.Payoffs(b)
	if err != nil {
		return false, err
	}
	strict := false
	for i := range ua {
		if ua[i] < ub[i]-eps {
			return false, nil
		}
		if ua[i] > ub[i]+eps {
			strict = true
		}
	}
	return strict, nil
}

// IsParetoOptimal reports whether no profile Pareto-dominates p within the
// capped strategy space.
func (nf *NormalForm) IsParetoOptimal(p []int, eps float64, maxProfiles int64) (bool, error) {
	total, err := nf.Profiles()
	if err != nil {
		return false, err
	}
	if total > maxProfiles {
		return false, fmt.Errorf("game: %d profiles exceed cap %d", total, maxProfiles)
	}
	if _, err := nf.Payoffs(p); err != nil {
		return false, err
	}
	optimal := true
	var innerErr error
	err = combin.Product(nf.numStrategies, func(q []int) bool {
		dom, err := nf.ParetoDominates(q, p, eps)
		if err != nil {
			innerErr = err
			return false
		}
		if dom {
			optimal = false
			return false
		}
		return true
	})
	if err != nil {
		return false, err
	}
	if innerErr != nil {
		return false, innerErr
	}
	return optimal, nil
}
