package game

import (
	"math"
	"testing"

	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

// prisonersDilemma: strategy 0 = cooperate, 1 = defect.
func prisonersDilemma(t *testing.T) *NormalForm {
	t.Helper()
	payoffs := map[[2]int][2]float64{
		{0, 0}: {3, 3},
		{0, 1}: {0, 5},
		{1, 0}: {5, 0},
		{1, 1}: {1, 1},
	}
	nf, err := New([]int{2, 2}, func(p []int) []float64 {
		u := payoffs[[2]int{p[0], p[1]}]
		return []float64{u[0], u[1]}
	})
	if err != nil {
		t.Fatal(err)
	}
	return nf
}

// matchingPennies has no pure NE.
func matchingPennies(t *testing.T) *NormalForm {
	t.Helper()
	nf, err := New([]int{2, 2}, func(p []int) []float64 {
		if p[0] == p[1] {
			return []float64{1, -1}
		}
		return []float64{-1, 1}
	})
	if err != nil {
		t.Fatal(err)
	}
	return nf
}

func TestNewValidation(t *testing.T) {
	pay := func([]int) []float64 { return nil }
	if _, err := New(nil, pay); err == nil {
		t.Error("no players should error")
	}
	if _, err := New([]int{2, 0}, pay); err == nil {
		t.Error("zero strategies should error")
	}
	if _, err := New([]int{2}, nil); err == nil {
		t.Error("nil payoff should error")
	}
}

func TestAccessors(t *testing.T) {
	nf := prisonersDilemma(t)
	if nf.Players() != 2 {
		t.Fatalf("Players = %d, want 2", nf.Players())
	}
	if nf.NumStrategies(0) != 2 || nf.NumStrategies(1) != 2 {
		t.Fatal("strategy counts wrong")
	}
	total, err := nf.Profiles()
	if err != nil || total != 4 {
		t.Fatalf("Profiles = %d, %v; want 4, nil", total, err)
	}
}

func TestPayoffsValidation(t *testing.T) {
	nf := prisonersDilemma(t)
	if _, err := nf.Payoffs([]int{0}); err == nil {
		t.Error("short profile should error")
	}
	if _, err := nf.Payoffs([]int{0, 5}); err == nil {
		t.Error("out-of-range strategy should error")
	}
	u, err := nf.Payoffs([]int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if u[0] != 5 || u[1] != 0 {
		t.Fatalf("payoffs = %v, want [5 0]", u)
	}
}

func TestPrisonersDilemmaNE(t *testing.T) {
	nf := prisonersDilemma(t)
	nes, err := nf.PureNE(1e-9, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(nes) != 1 || nes[0][0] != 1 || nes[0][1] != 1 {
		t.Fatalf("NE = %v, want [[1 1]] (defect, defect)", nes)
	}
	// Defect-defect is famously NOT Pareto-optimal.
	opt, err := nf.IsParetoOptimal([]int{1, 1}, 1e-9, 100)
	if err != nil {
		t.Fatal(err)
	}
	if opt {
		t.Fatal("defect-defect should be Pareto-dominated by cooperate-cooperate")
	}
	// Cooperate-cooperate is Pareto-optimal.
	opt, err = nf.IsParetoOptimal([]int{0, 0}, 1e-9, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !opt {
		t.Fatal("cooperate-cooperate should be Pareto-optimal")
	}
}

func TestMatchingPenniesHasNoPureNE(t *testing.T) {
	nes, err := matchingPennies(t).PureNE(1e-9, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(nes) != 0 {
		t.Fatalf("matching pennies has pure NE %v", nes)
	}
}

func TestSocialOptimum(t *testing.T) {
	nf := prisonersDilemma(t)
	profile, welfare, err := nf.SocialOptimum(100)
	if err != nil {
		t.Fatal(err)
	}
	if welfare != 6 || profile[0] != 0 || profile[1] != 0 {
		t.Fatalf("optimum = %v @ %v, want [0 0] @ 6", profile, welfare)
	}
}

func TestPriceOfAnarchyPD(t *testing.T) {
	poa, err := prisonersDilemma(t).PriceOfAnarchy(1e-9, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(poa-2.0/6.0) > 1e-12 {
		t.Fatalf("PoA = %v, want 1/3", poa)
	}
}

func TestPriceOfAnarchyNoNE(t *testing.T) {
	if _, err := matchingPennies(t).PriceOfAnarchy(1e-9, 100); err == nil {
		t.Fatal("no pure NE should error")
	}
}

func TestProfileCap(t *testing.T) {
	nf := prisonersDilemma(t)
	if _, err := nf.PureNE(1e-9, 3); err == nil {
		t.Error("cap should trigger for PureNE")
	}
	if _, _, err := nf.SocialOptimum(3); err == nil {
		t.Error("cap should trigger for SocialOptimum")
	}
	if _, err := nf.IsParetoOptimal([]int{0, 0}, 1e-9, 3); err == nil {
		t.Error("cap should trigger for IsParetoOptimal")
	}
}

func TestParetoDominates(t *testing.T) {
	nf := prisonersDilemma(t)
	dom, err := nf.ParetoDominates([]int{0, 0}, []int{1, 1}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !dom {
		t.Fatal("CC should dominate DD")
	}
	dom, err = nf.ParetoDominates([]int{1, 0}, []int{0, 1}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if dom {
		t.Fatal("asymmetric profiles should not dominate each other")
	}
	// A profile never dominates itself (no strict improvement).
	dom, err = nf.ParetoDominates([]int{0, 0}, []int{0, 0}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if dom {
		t.Fatal("profile should not dominate itself")
	}
}

func TestChannelGameAdapterAgreesWithCore(t *testing.T) {
	// Cross-validation (experiment E2): generic brute force over the lifted
	// NormalForm finds exactly the same NE set as core's specialised
	// enumeration, for several tiny games and rate shapes.
	configs := []struct {
		users, channels, radios int
		rate                    ratefn.Func
	}{
		{2, 2, 1, ratefn.NewTDMA(1)},
		{2, 2, 2, ratefn.NewTDMA(1)},
		{2, 3, 2, ratefn.NewTDMA(1)},
		{2, 2, 2, ratefn.Harmonic{R0: 1, Alpha: 1}},
		{3, 2, 2, ratefn.Harmonic{R0: 1, Alpha: 0.3}},
	}
	for _, cfg := range configs {
		g, err := core.NewGame(cfg.users, cfg.channels, cfg.radios, cfg.rate)
		if err != nil {
			t.Fatal(err)
		}
		nf, rows, err := ChannelGame(g)
		if err != nil {
			t.Fatal(err)
		}
		genericNE, err := nf.PureNE(core.DefaultEps, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		coreNE, err := core.EnumerateNE(g, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if len(genericNE) != len(coreNE) {
			t.Fatalf("%s %dx%dx%d: generic found %d NE, core found %d",
				cfg.rate.Name(), cfg.users, cfg.channels, cfg.radios, len(genericNE), len(coreNE))
		}
		// Every generic NE, translated to a matrix, must be core-NE.
		for _, profile := range genericNE {
			matrix := make([][]int, len(profile))
			for i, s := range profile {
				matrix[i] = rows[s]
			}
			a, err := core.AllocFromMatrix(matrix)
			if err != nil {
				t.Fatal(err)
			}
			ne, err := g.IsNashEquilibrium(a)
			if err != nil {
				t.Fatal(err)
			}
			if !ne {
				t.Fatalf("%s: generic NE %v rejected by core oracle", cfg.rate.Name(), profile)
			}
		}
	}
}

func TestChannelGameNilGame(t *testing.T) {
	if _, _, err := ChannelGame(nil); err == nil {
		t.Fatal("nil game should error")
	}
}

func TestChannelGamePoAConstantRate(t *testing.T) {
	// Constant rate, conflict regime: every NE occupies all channels, so
	// PoA = 1 (Theorem 2's system-optimality corollary).
	g, err := core.NewGame(2, 2, 2, ratefn.NewTDMA(1))
	if err != nil {
		t.Fatal(err)
	}
	nf, _, err := ChannelGame(g)
	if err != nil {
		t.Fatal(err)
	}
	poa, err := nf.PriceOfAnarchy(core.DefaultEps, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(poa-1) > 1e-9 {
		t.Fatalf("PoA = %v, want 1", poa)
	}
}
