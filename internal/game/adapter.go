package game

import (
	"fmt"

	"github.com/multiradio/chanalloc/internal/combin"
	"github.com/multiradio/chanalloc/internal/core"
)

// ChannelGame lifts a core channel-allocation game into a generic
// NormalForm game whose strategies are all legal rows (every radio vector
// with total between 0 and k). It also returns the strategy table so
// callers can translate strategy indices back into rows.
//
// This adapter exists purely for cross-validation: the generic brute-force
// NE enumeration over this NormalForm must agree with core's specialised
// oracle (experiment E2).
func ChannelGame(g *core.Game) (*NormalForm, [][]int, error) {
	if g == nil {
		return nil, nil, fmt.Errorf("game: nil core game")
	}
	var rows [][]int
	for total := 0; total <= g.Radios(); total++ {
		err := combin.Compositions(total, g.Channels(), func(row []int) bool {
			rows = append(rows, append([]int(nil), row...))
			return true
		})
		if err != nil {
			return nil, nil, fmt.Errorf("game: enumerating rows: %w", err)
		}
	}

	sizes := make([]int, g.Users())
	for i := range sizes {
		sizes[i] = len(rows)
	}
	// The payoff closure reuses one Alloc and one utilities buffer; package
	// game copies payoff results before holding them across evaluations, so
	// buffer reuse is safe for its sequential enumeration.
	work := g.NewEmptyAlloc()
	utilities := make([]float64, g.Users())
	payoff := func(profile []int) []float64 {
		for i, s := range profile {
			if err := work.SetRow(i, rows[s]); err != nil {
				// Rows are pre-validated; reaching here is a bug.
				panic("game: invalid pre-validated row: " + err.Error())
			}
		}
		for i := range utilities {
			utilities[i] = g.Utility(work, i)
		}
		return utilities
	}

	nf, err := New(sizes, payoff)
	if err != nil {
		return nil, nil, err
	}
	return nf, rows, nil
}
