// Package macsim provides slot-level simulators of the two medium-access
// regimes the reproduced paper builds on (§2):
//
//   - reservation-based TDMA, where the channel rate is shared exactly
//     equally and the total rate is independent of the number of radios, and
//   - CSMA/CA with binary exponential backoff (802.11 DCF style), where
//     collisions make the total rate a decreasing function of the number of
//     radios but the long-run per-radio shares remain equal.
//
// The simulators drive package des and are validated against package
// bianchi's analytical model; together they justify the game's fair-share
// utility (paper Eq. 3) and the R(k_c) shapes of Figure 3.
package macsim

import (
	"fmt"

	"github.com/multiradio/chanalloc/internal/bianchi"
	"github.com/multiradio/chanalloc/internal/des"
)

// CSMAResult reports a saturated CSMA/CA simulation of one channel.
type CSMAResult struct {
	Stations   int
	SimTime    float64   // total simulated time, µs
	Throughput float64   // aggregate delivered payload, Mbit/s
	PerStation []float64 // per-station delivered payload, Mbit/s
	Successes  []int64   // per-station successful transmissions
	Collisions int64     // collision events on the channel
	IdleSlots  int64     // idle backoff slots observed
}

// csmaStation is the per-radio DCF state.
type csmaStation struct {
	stage   int
	backoff int
	bits    int64
	wins    int64
}

// csmaChannel simulates n saturated DCF stations sharing one channel.
type csmaChannel struct {
	params   bianchi.Params
	stations []csmaStation
	ts, tc   float64
	elapsed  float64 // accumulated simulated time, µs
	freeze   bool    // real-802.11 freeze semantics (see CSMAOptions)

	collisions int64
	idleSlots  int64

	// txBuf is reused each slot to collect the indices of transmitters.
	txBuf []int
}

// CSMAOptions tunes the slot-level simulator beyond the DCF parameters.
type CSMAOptions struct {
	// Freeze switches backoff accounting to real-802.11 semantics: counters
	// freeze during busy periods and decrement only on idle slots. The
	// default (false) is Bianchi's virtual-slot semantics, which matches
	// the analytic model's Markov chain; the gap between the two is a
	// known model-vs-protocol discrepancy that the macsim tests quantify.
	Freeze bool
}

// SimulateCSMA runs a saturated slot-level DCF simulation of n stations for
// the given number of channel slots (idle or busy periods both count as one
// "cycle"). The RNG seed fixes the run exactly.
func SimulateCSMA(p bianchi.Params, n int, cycles int64, seed uint64) (CSMAResult, error) {
	return SimulateCSMAWith(p, n, cycles, seed, CSMAOptions{})
}

// SimulateCSMAWith is SimulateCSMA with explicit simulator options.
func SimulateCSMAWith(p bianchi.Params, n int, cycles int64, seed uint64, opts CSMAOptions) (CSMAResult, error) {
	if err := p.Validate(); err != nil {
		return CSMAResult{}, err
	}
	if n < 1 {
		return CSMAResult{}, fmt.Errorf("macsim: n = %d, want >= 1", n)
	}
	if cycles < 1 {
		return CSMAResult{}, fmt.Errorf("macsim: cycles = %d, want >= 1", cycles)
	}
	sim := des.New(seed)
	ch := newCSMAChannel(p, n, sim.RNG())
	ch.freeze = opts.Freeze

	var remaining = cycles
	var step func(*des.Simulator)
	step = func(s *des.Simulator) {
		dur := ch.cycle(s.RNG())
		remaining--
		if remaining <= 0 {
			return
		}
		if _, err := s.After(dur, step); err != nil {
			// Durations are non-negative by construction; an error here is
			// a programming bug surfaced loudly in tests via zero results.
			s.Stop()
		}
	}
	if _, err := sim.Schedule(0, step); err != nil {
		return CSMAResult{}, fmt.Errorf("macsim: scheduling first slot: %w", err)
	}
	if err := sim.RunAll(); err != nil {
		return CSMAResult{}, fmt.Errorf("macsim: run: %w", err)
	}

	res := CSMAResult{
		Stations:   n,
		SimTime:    ch.elapsed,
		Collisions: ch.collisions,
		IdleSlots:  ch.idleSlots,
		PerStation: make([]float64, n),
		Successes:  make([]int64, n),
	}
	var total float64
	for i := range ch.stations {
		mbps := float64(ch.stations[i].bits) / ch.elapsed // bits/µs == Mbit/s
		res.PerStation[i] = mbps
		res.Successes[i] = ch.stations[i].wins
		total += mbps
	}
	res.Throughput = total
	return res, nil
}

func newCSMAChannel(p bianchi.Params, n int, rng *des.RNG) *csmaChannel {
	ts, tc := p.FrameTimes()
	ch := &csmaChannel{
		params:   p,
		stations: make([]csmaStation, n),
		ts:       ts,
		tc:       tc,
		txBuf:    make([]int, 0, n),
	}
	for i := range ch.stations {
		ch.stations[i].backoff = rng.Intn(p.CWmin)
	}
	return ch
}

// cycleElapsed charges d µs of simulated time and returns it, so cycle can
// account and return in one expression.
func (c *csmaChannel) cycleElapsed(d float64) float64 {
	c.elapsed += d
	return d
}

// cycle advances the channel by one virtual slot (idle backoff slot,
// successful transmission, or collision) and returns its duration in µs.
//
// Backoff counters follow Bianchi's virtual-slot semantics: every
// non-transmitting station decrements once per cycle whether the cycle was
// idle or busy. This matches the analytic model's Markov chain exactly,
// which is the point — the simulator validates the model. (Real 802.11
// freezes counters during busy periods; that shifts absolute throughput by
// a few percent without changing the shape of R(k).)
func (c *csmaChannel) cycle(rng *des.RNG) float64 {
	c.txBuf = c.txBuf[:0]
	for i := range c.stations {
		if c.stations[i].backoff == 0 {
			c.txBuf = append(c.txBuf, i)
		}
	}
	// Non-transmitters decrement: always under virtual-slot semantics,
	// only on idle cycles under freeze semantics.
	if !c.freeze || len(c.txBuf) == 0 {
		for i := range c.stations {
			if c.stations[i].backoff > 0 {
				c.stations[i].backoff--
			}
		}
	}
	switch len(c.txBuf) {
	case 0:
		c.idleSlots++
		return c.cycleElapsed(c.params.SlotTime)
	case 1:
		// Success.
		i := c.txBuf[0]
		st := &c.stations[i]
		st.bits += int64(c.params.Payload)
		st.wins++
		st.stage = 0
		st.backoff = rng.Intn(c.params.CWmin)
		return c.cycleElapsed(c.ts)
	default:
		// Collision: every transmitter escalates.
		for _, i := range c.txBuf {
			st := &c.stations[i]
			if st.stage < c.params.MaxStage {
				st.stage++
			}
			st.backoff = rng.Intn(c.params.CWmin << st.stage)
		}
		c.collisions++
		return c.cycleElapsed(c.tc)
	}
}
