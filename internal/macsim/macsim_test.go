package macsim

import (
	"math"
	"testing"

	"github.com/multiradio/chanalloc/internal/bianchi"
	"github.com/multiradio/chanalloc/internal/ratefn"
	"github.com/multiradio/chanalloc/internal/stats"
)

const simCycles = 150000

func TestSimulateCSMAMatchesBianchi(t *testing.T) {
	// The slot-level simulator and the analytical model describe the same
	// protocol; their throughputs must agree within a few percent.
	p := bianchi.Default80211b()
	for _, n := range []int{1, 2, 5, 10} {
		res, err := SimulateCSMA(p, n, simCycles, 1234)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		model, err := bianchi.Solve(p, n)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(res.Throughput-model.Throughput) / model.Throughput
		if rel > 0.05 {
			t.Errorf("n=%d: sim %.4f vs model %.4f Mbit/s (%.1f%% off)",
				n, res.Throughput, model.Throughput, rel*100)
		}
	}
}

func TestSimulateCSMAFairShare(t *testing.T) {
	// Paper §2 assumes the channel rate is shared equally among radios.
	// Long-run per-station throughputs must have Jain index ≈ 1.
	p := bianchi.Default80211b()
	for _, n := range []int{2, 4, 8} {
		res, err := SimulateCSMA(p, n, simCycles, 99)
		if err != nil {
			t.Fatal(err)
		}
		jain, err := stats.JainIndex(res.PerStation)
		if err != nil {
			t.Fatal(err)
		}
		if jain < 0.99 {
			t.Errorf("n=%d: Jain index %.4f, want >= 0.99 (shares %v)", n, jain, res.PerStation)
		}
	}
}

func TestSimulateCSMASingleStationNoCollisions(t *testing.T) {
	res, err := SimulateCSMA(bianchi.Default80211b(), 1, 10000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Collisions != 0 {
		t.Fatalf("single station had %d collisions", res.Collisions)
	}
	if res.Throughput <= 0 {
		t.Fatal("single station delivered nothing")
	}
}

func TestSimulateCSMAThroughputDecreases(t *testing.T) {
	p := bianchi.Default80211b()
	r2, err := SimulateCSMA(p, 2, simCycles, 7)
	if err != nil {
		t.Fatal(err)
	}
	r16, err := SimulateCSMA(p, 16, simCycles, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r16.Throughput >= r2.Throughput {
		t.Fatalf("practical CSMA should degrade: n=2 %.4f vs n=16 %.4f",
			r2.Throughput, r16.Throughput)
	}
	if r16.Collisions <= r2.Collisions {
		t.Fatalf("collisions should grow with n: %d vs %d", r2.Collisions, r16.Collisions)
	}
}

func TestSimulateCSMADeterminism(t *testing.T) {
	p := bianchi.Default80211b()
	a, err := SimulateCSMA(p, 4, 20000, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateCSMA(p, 4, 20000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput || a.Collisions != b.Collisions {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c, err := SimulateCSMA(p, 4, 20000, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput == c.Throughput && a.Collisions == c.Collisions && a.IdleSlots == c.IdleSlots {
		t.Fatal("different seeds produced identical runs; RNG not wired through")
	}
}

func TestSimulateCSMAErrors(t *testing.T) {
	p := bianchi.Default80211b()
	if _, err := SimulateCSMA(p, 0, 100, 1); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := SimulateCSMA(p, 1, 0, 1); err == nil {
		t.Error("cycles=0 should error")
	}
	var bad bianchi.Params
	if _, err := SimulateCSMA(bad, 1, 100, 1); err == nil {
		t.Error("invalid params should error")
	}
}

func TestSimulateCSMAAccounting(t *testing.T) {
	res, err := SimulateCSMA(bianchi.Default80211b(), 3, 5000, 21)
	if err != nil {
		t.Fatal(err)
	}
	var wins int64
	for _, w := range res.Successes {
		wins += w
	}
	// successes + collisions + idle slots == total cycles
	if got := wins + res.Collisions + res.IdleSlots; got != 5000 {
		t.Fatalf("cycle accounting: %d wins + %d collisions + %d idle = %d, want 5000",
			wins, res.Collisions, res.IdleSlots, got)
	}
	if res.SimTime <= 0 {
		t.Fatal("non-positive sim time")
	}
}

func TestSimulateCSMAFreezeSemantics(t *testing.T) {
	// Real-802.11 freeze semantics vs Bianchi virtual-slot semantics: both
	// must stay fair, deliver similar throughput (the decoupling gap is a
	// few percent), and differ detectably on the same seed.
	p := bianchi.Default80211b()
	virtual, err := SimulateCSMA(p, 6, simCycles, 7)
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := SimulateCSMAWith(p, 6, simCycles, 7, CSMAOptions{Freeze: true})
	if err != nil {
		t.Fatal(err)
	}
	if frozen.Throughput == virtual.Throughput && frozen.Collisions == virtual.Collisions {
		t.Fatal("freeze option had no effect")
	}
	rel := math.Abs(frozen.Throughput-virtual.Throughput) / virtual.Throughput
	if rel > 0.10 {
		t.Errorf("freeze vs virtual throughput differ %.1f%%, expected < 10%%", rel*100)
	}
	jain, err := stats.JainIndex(frozen.PerStation)
	if err != nil {
		t.Fatal(err)
	}
	if jain < 0.99 {
		t.Errorf("freeze semantics broke fairness: Jain %.4f", jain)
	}
}

func TestSimulateCSMARTSCTS(t *testing.T) {
	// End-to-end: the simulator honours the RTS/CTS frame times, and the
	// high-contention win over basic access shows up in simulation too.
	basic := bianchi.Bianchi1Mbps()
	rts := basic.WithRTSCTS()
	simBasic, err := SimulateCSMA(basic, 24, simCycles, 5)
	if err != nil {
		t.Fatal(err)
	}
	simRTS, err := SimulateCSMA(rts, 24, simCycles, 5)
	if err != nil {
		t.Fatal(err)
	}
	if simRTS.Throughput <= simBasic.Throughput {
		t.Errorf("n=24: RTS/CTS sim (%v) should beat basic sim (%v)",
			simRTS.Throughput, simBasic.Throughput)
	}
	model, err := bianchi.Solve(rts, 24)
	if err != nil {
		t.Fatal(err)
	}
	relErr := math.Abs(simRTS.Throughput-model.Throughput) / model.Throughput
	if relErr > 0.05 {
		t.Errorf("RTS/CTS sim %.4f vs model %.4f (%.1f%% off)",
			simRTS.Throughput, model.Throughput, relErr*100)
	}
}

func TestSimulateTDMAExactShares(t *testing.T) {
	for _, n := range []int{1, 2, 5, 12} {
		cfg := TDMAConfig{Radios: n, SlotTime: 1000, Guard: 0, DataRate: 11, Frames: 10}
		res, err := SimulateTDMA(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// No guard: total throughput equals the channel rate exactly,
		// independent of n (the paper's constant-R TDMA assumption).
		if math.Abs(res.Throughput-11) > 1e-9 {
			t.Errorf("n=%d: throughput %.6f, want 11", n, res.Throughput)
		}
		for r, share := range res.PerRadio {
			want := 11.0 / float64(n)
			if math.Abs(share-want) > 1e-9 {
				t.Errorf("n=%d radio %d: share %.6f, want %.6f", n, r, share, want)
			}
		}
	}
}

func TestSimulateTDMAGuardOverhead(t *testing.T) {
	cfg := TDMAConfig{Radios: 4, SlotTime: 900, Guard: 100, DataRate: 10, Frames: 5}
	res, err := SimulateTDMA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 10.0 * 900 / 1000 // 10% guard overhead
	if math.Abs(res.Throughput-want) > 1e-9 {
		t.Fatalf("throughput %.6f, want %.6f", res.Throughput, want)
	}
}

func TestSimulateTDMAErrors(t *testing.T) {
	bad := []TDMAConfig{
		{Radios: 0, SlotTime: 1, DataRate: 1, Frames: 1},
		{Radios: 1, SlotTime: 0, DataRate: 1, Frames: 1},
		{Radios: 1, SlotTime: 1, Guard: -1, DataRate: 1, Frames: 1},
		{Radios: 1, SlotTime: 1, DataRate: 0, Frames: 1},
		{Radios: 1, SlotTime: 1, DataRate: 1, Frames: 0},
	}
	for i, cfg := range bad {
		if _, err := SimulateTDMA(cfg); err == nil {
			t.Errorf("config %d should error: %+v", i, cfg)
		}
	}
}

func TestEmpiricalCSMARate(t *testing.T) {
	p := bianchi.Default80211b()
	f, err := EmpiricalCSMARate(p, 8, 60000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ratefn.Validate(f, 8); err != nil {
		t.Fatalf("empirical rate violates contract: %v", err)
	}
	// Each point must be near the analytical model. EmpiricalCSMARate
	// applies a running-min envelope, so compare against the enveloped
	// model (raw Bianchi throughput rises slightly from n=1 to n=3 for
	// this PHY).
	modelMin := math.Inf(1)
	for k := 1; k <= 8; k++ {
		model, err := bianchi.Solve(p, k)
		if err != nil {
			t.Fatal(err)
		}
		if model.Throughput < modelMin {
			modelMin = model.Throughput
		}
		rel := math.Abs(f.Rate(k)-modelMin) / modelMin
		if rel > 0.05 {
			t.Errorf("k=%d: empirical %.4f vs enveloped model %.4f (%.1f%% off)",
				k, f.Rate(k), modelMin, rel*100)
		}
	}
}

func TestEmpiricalCSMARateErrors(t *testing.T) {
	p := bianchi.Default80211b()
	if _, err := EmpiricalCSMARate(p, 0, 100, 1); err == nil {
		t.Error("maxK=0 should error")
	}
	var bad bianchi.Params
	if _, err := EmpiricalCSMARate(bad, 2, 100, 1); err == nil {
		t.Error("invalid params should error")
	}
	if _, err := EmpiricalCSMARate(p, 1, 0, 1); err == nil {
		t.Error("cycles=0 should error")
	}
}
