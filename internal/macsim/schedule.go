package macsim

import (
	"fmt"
	"strings"

	"github.com/multiradio/chanalloc/internal/core"
)

// SlotAssignment names the owner of one TDMA slot: user index and which of
// that user's radios on the channel (0-based) transmits.
type SlotAssignment struct {
	User  int
	Radio int
}

// ChannelSchedule is a reservation-TDMA frame for one channel: slot s
// belongs to Slots[s]. A frame has exactly one slot per radio on the
// channel, so every radio gets a 1/k_c share of air time — the mechanism
// behind the paper's equal-share utility (§2: "a reservation-based TDMA
// schedule on a given channel").
type ChannelSchedule struct {
	Channel int
	Slots   []SlotAssignment
}

// BuildSchedules derives one round-robin TDMA frame per channel from an
// allocation. Slot order interleaves users (u1's first radio, u2's first,
// ..., u1's second, ...) so no user waits a long burst.
func BuildSchedules(a *core.Alloc) ([]ChannelSchedule, error) {
	if a == nil {
		return nil, fmt.Errorf("macsim: nil allocation")
	}
	out := make([]ChannelSchedule, a.Channels())
	for c := 0; c < a.Channels(); c++ {
		out[c].Channel = c
		if a.Load(c) == 0 {
			continue
		}
		out[c].Slots = make([]SlotAssignment, 0, a.Load(c))
		// Interleave: round r grants one slot to each user that still has
		// an unscheduled radio on this channel.
		for r := 0; ; r++ {
			granted := false
			for i := 0; i < a.Users(); i++ {
				if a.Radios(i, c) > r {
					out[c].Slots = append(out[c].Slots, SlotAssignment{User: i, Radio: r})
					granted = true
				}
			}
			if !granted {
				break
			}
		}
	}
	return out, nil
}

// Share returns the fraction of the channel's air time the given user
// receives under the schedule.
func (cs ChannelSchedule) Share(user int) float64 {
	if len(cs.Slots) == 0 {
		return 0
	}
	owned := 0
	for _, s := range cs.Slots {
		if s.User == user {
			owned++
		}
	}
	return float64(owned) / float64(len(cs.Slots))
}

// String renders the frame as "c3: u1 u2 u4 u1".
func (cs ChannelSchedule) String() string {
	if len(cs.Slots) == 0 {
		return fmt.Sprintf("c%d: (idle)", cs.Channel+1)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "c%d:", cs.Channel+1)
	for _, s := range cs.Slots {
		fmt.Fprintf(&b, " u%d", s.User+1)
	}
	return b.String()
}

// VerifyFairShare checks that the schedules implement exactly the game's
// equal-share assumption: on every channel, each radio owns exactly one
// slot, so user i's share is k_{i,c}/k_c.
func VerifyFairShare(a *core.Alloc, schedules []ChannelSchedule) error {
	if len(schedules) != a.Channels() {
		return fmt.Errorf("macsim: %d schedules for %d channels", len(schedules), a.Channels())
	}
	for c, cs := range schedules {
		if cs.Channel != c {
			return fmt.Errorf("macsim: schedule %d claims channel %d", c, cs.Channel)
		}
		if len(cs.Slots) != a.Load(c) {
			return fmt.Errorf("macsim: channel %d frame has %d slots for load %d", c, len(cs.Slots), a.Load(c))
		}
		counts := make(map[int]int)
		for _, s := range cs.Slots {
			if s.User < 0 || s.User >= a.Users() {
				return fmt.Errorf("macsim: channel %d slot owned by invalid user %d", c, s.User)
			}
			counts[s.User]++
		}
		for i := 0; i < a.Users(); i++ {
			if counts[i] != a.Radios(i, c) {
				return fmt.Errorf("macsim: channel %d user %d owns %d slots, has %d radios",
					c, i, counts[i], a.Radios(i, c))
			}
		}
	}
	return nil
}
