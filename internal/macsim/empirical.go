package macsim

import (
	"fmt"

	"github.com/multiradio/chanalloc/internal/bianchi"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

// EmpiricalCSMARate measures R(k) for k = 1..maxK by simulation and returns
// it as a table-backed rate function (wrapped in a monotone envelope so the
// game contract holds despite sampling noise). cycles controls simulation
// length per point; 200_000 cycles gives ~1% accuracy against the Bianchi
// model for moderate k.
func EmpiricalCSMARate(p bianchi.Params, maxK int, cycles int64, seed uint64) (ratefn.Func, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if maxK < 1 {
		return nil, fmt.Errorf("macsim: maxK = %d, want >= 1", maxK)
	}
	values := make([]float64, maxK)
	for k := 1; k <= maxK; k++ {
		res, err := SimulateCSMA(p, k, cycles, seed+uint64(k))
		if err != nil {
			return nil, fmt.Errorf("macsim: empirical rate at k=%d: %w", k, err)
		}
		values[k-1] = res.Throughput
	}
	// Enforce the non-increasing contract on the noisy measurements first,
	// then freeze them into a table.
	monotone := make([]float64, maxK)
	minSoFar := values[0]
	for i, v := range values {
		if v < minSoFar {
			minSoFar = v
		}
		monotone[i] = minSoFar
	}
	tbl, err := ratefn.NewTable("csma-empirical", monotone)
	if err != nil {
		return nil, fmt.Errorf("macsim: building empirical table: %w", err)
	}
	return tbl, nil
}
