package macsim

import (
	"math"
	"strings"
	"testing"

	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

func figure1Alloc(t *testing.T) *core.Alloc {
	t.Helper()
	a, err := core.AllocFromMatrix([][]int{
		{1, 1, 1, 1, 0},
		{1, 0, 1, 0, 1},
		{1, 2, 0, 1, 0},
		{1, 0, 0, 1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBuildSchedulesFigure1(t *testing.T) {
	a := figure1Alloc(t)
	schedules, err := BuildSchedules(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFairShare(a, schedules); err != nil {
		t.Fatal(err)
	}
	// Channel c2 (index 1): u1 has one radio, u3 has two -> 3 slots, u3
	// owning two of them.
	c2 := schedules[1]
	if len(c2.Slots) != 3 {
		t.Fatalf("c2 frame has %d slots, want 3", len(c2.Slots))
	}
	if got := c2.Share(2); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("u3 share on c2 = %v, want 2/3", got)
	}
	if got := c2.Share(0); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("u1 share on c2 = %v, want 1/3", got)
	}
	if got := c2.Share(3); got != 0 {
		t.Errorf("u4 share on c2 = %v, want 0", got)
	}
}

func TestBuildSchedulesInterleaves(t *testing.T) {
	// Two radios of one user never occupy adjacent slots while another
	// user still has a pending radio: the frame interleaves rounds.
	a, err := core.AllocFromMatrix([][]int{
		{2, 0},
		{1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	schedules, err := BuildSchedules(a)
	if err != nil {
		t.Fatal(err)
	}
	slots := schedules[0].Slots
	// Round-robin order: u1 radio0, u2 radio0, u1 radio1.
	want := []SlotAssignment{{User: 0, Radio: 0}, {User: 1, Radio: 0}, {User: 0, Radio: 1}}
	if len(slots) != len(want) {
		t.Fatalf("frame %v, want %v", slots, want)
	}
	for i := range want {
		if slots[i] != want[i] {
			t.Fatalf("frame %v, want %v", slots, want)
		}
	}
}

func TestBuildSchedulesIdleChannel(t *testing.T) {
	a, err := core.AllocFromMatrix([][]int{
		{1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	schedules, err := BuildSchedules(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(schedules[1].Slots) != 0 {
		t.Fatal("idle channel should have an empty frame")
	}
	if !strings.Contains(schedules[1].String(), "idle") {
		t.Errorf("idle rendering: %q", schedules[1].String())
	}
	if schedules[0].String() == "" {
		t.Error("empty rendering for active channel")
	}
}

func TestBuildSchedulesNil(t *testing.T) {
	if _, err := BuildSchedules(nil); err == nil {
		t.Fatal("nil allocation should error")
	}
}

func TestSchedulesMatchGameUtilities(t *testing.T) {
	// End-to-end: schedule shares × channel rate must reproduce the game's
	// utility (Eq. 3) exactly for constant R.
	g, err := core.NewGame(4, 5, 4, ratefn.NewTDMA(6))
	if err != nil {
		t.Fatal(err)
	}
	a := figure1Alloc(t)
	schedules, err := BuildSchedules(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.Users(); i++ {
		var fromSchedule float64
		for c := 0; c < a.Channels(); c++ {
			fromSchedule += schedules[c].Share(i) * g.Rate().Rate(a.Load(c))
		}
		if math.Abs(fromSchedule-g.Utility(a, i)) > 1e-9 {
			t.Errorf("u%d: schedule-derived rate %v != utility %v", i+1, fromSchedule, g.Utility(a, i))
		}
	}
}

func TestVerifyFairShareCatchesCorruption(t *testing.T) {
	a := figure1Alloc(t)
	schedules, err := BuildSchedules(a)
	if err != nil {
		t.Fatal(err)
	}
	// Steal a slot from u3 on c2 and give it to u4.
	for s := range schedules[1].Slots {
		if schedules[1].Slots[s].User == 2 {
			schedules[1].Slots[s].User = 3
			break
		}
	}
	if err := VerifyFairShare(a, schedules); err == nil {
		t.Fatal("corrupted schedule should fail verification")
	}
	// Wrong schedule count.
	if err := VerifyFairShare(a, schedules[:2]); err == nil {
		t.Fatal("short schedule list should fail")
	}
}
