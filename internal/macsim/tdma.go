package macsim

import (
	"fmt"

	"github.com/multiradio/chanalloc/internal/des"
)

// TDMAConfig parameterises the reservation-TDMA frame simulator.
type TDMAConfig struct {
	// Radios is the number of radios sharing the channel (slots per frame).
	Radios int
	// SlotTime is the duration of one data slot in µs.
	SlotTime float64
	// Guard is the per-slot guard interval in µs (switching margin); it is
	// pure overhead.
	Guard float64
	// DataRate is the channel bitrate in Mbit/s while a slot is active.
	DataRate float64
	// Frames is how many complete frames to simulate.
	Frames int
}

// Validate checks configuration sanity.
func (c TDMAConfig) Validate() error {
	switch {
	case c.Radios < 1:
		return fmt.Errorf("macsim: tdma radios = %d, want >= 1", c.Radios)
	case c.SlotTime <= 0:
		return fmt.Errorf("macsim: tdma slot time = %v, want > 0", c.SlotTime)
	case c.Guard < 0:
		return fmt.Errorf("macsim: tdma guard = %v, want >= 0", c.Guard)
	case c.DataRate <= 0:
		return fmt.Errorf("macsim: tdma data rate = %v, want > 0", c.DataRate)
	case c.Frames < 1:
		return fmt.Errorf("macsim: tdma frames = %d, want >= 1", c.Frames)
	}
	return nil
}

// TDMAResult reports a reservation-TDMA simulation.
type TDMAResult struct {
	Radios     int
	SimTime    float64   // µs
	Throughput float64   // aggregate goodput, Mbit/s
	PerRadio   []float64 // per-radio goodput, Mbit/s
}

// SimulateTDMA simulates a round-robin reservation TDMA schedule: each frame
// contains exactly one slot per radio, so every radio receives an identical
// share. The total rate is SlotTime/(SlotTime+Guard) · DataRate regardless
// of the number of radios — the paper's "reservation TDMA" line in Figure 3.
func SimulateTDMA(cfg TDMAConfig) (TDMAResult, error) {
	if err := cfg.Validate(); err != nil {
		return TDMAResult{}, err
	}
	sim := des.New(0) // schedule is deterministic; the seed is irrelevant
	bits := make([]float64, cfg.Radios)

	frame := 0
	var startFrame func(*des.Simulator)
	startFrame = func(s *des.Simulator) {
		for r := 0; r < cfg.Radios; r++ {
			r := r
			offset := float64(r) * (cfg.SlotTime + cfg.Guard)
			if _, err := s.After(offset+cfg.SlotTime, func(*des.Simulator) {
				bits[r] += cfg.SlotTime * cfg.DataRate // bits = µs · Mbit/s
			}); err != nil {
				s.Stop()
				return
			}
		}
		frame++
		if frame < cfg.Frames {
			frameDur := float64(cfg.Radios) * (cfg.SlotTime + cfg.Guard)
			if _, err := s.After(frameDur, startFrame); err != nil {
				s.Stop()
			}
		}
	}
	if _, err := sim.Schedule(0, startFrame); err != nil {
		return TDMAResult{}, fmt.Errorf("macsim: scheduling first frame: %w", err)
	}
	if err := sim.RunAll(); err != nil {
		return TDMAResult{}, fmt.Errorf("macsim: tdma run: %w", err)
	}

	simTime := float64(cfg.Frames) * float64(cfg.Radios) * (cfg.SlotTime + cfg.Guard)
	res := TDMAResult{
		Radios:   cfg.Radios,
		SimTime:  simTime,
		PerRadio: make([]float64, cfg.Radios),
	}
	var total float64
	for r := range bits {
		mbps := bits[r] / simTime
		res.PerRadio[r] = mbps
		total += mbps
	}
	res.Throughput = total
	return res, nil
}
