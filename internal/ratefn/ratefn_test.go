package ratefn

import (
	"math"
	"math/big"
	"sync"
	"testing"
	"testing/quick"
)

func TestConstant(t *testing.T) {
	c := NewTDMA(54)
	if got := c.Rate(0); got != 0 {
		t.Errorf("Rate(0) = %v, want 0", got)
	}
	if got := c.Rate(-3); got != 0 {
		t.Errorf("Rate(-3) = %v, want 0", got)
	}
	for k := 1; k <= 100; k *= 10 {
		if got := c.Rate(k); got != 54 {
			t.Errorf("Rate(%d) = %v, want 54", k, got)
		}
	}
	if err := Validate(c, 64); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestConstantExact(t *testing.T) {
	c := NewTDMA(11)
	if got := c.RateRat(0); got.Sign() != 0 {
		t.Errorf("RateRat(0) = %v, want 0", got)
	}
	want := big.NewRat(11, 1)
	if got := c.RateRat(5); got.Cmp(want) != 0 {
		t.Errorf("RateRat(5) = %v, want %v", got, want)
	}
}

func TestHarmonic(t *testing.T) {
	h := Harmonic{R0: 10, Alpha: 1}
	tests := []struct {
		k    int
		want float64
	}{
		{0, 0}, {1, 10}, {2, 5}, {3, 10.0 / 3}, {10, 1},
	}
	for _, tc := range tests {
		if got := h.Rate(tc.k); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Rate(%d) = %v, want %v", tc.k, got, tc.want)
		}
	}
	if err := Validate(h, 64); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestHarmonicZeroAlphaIsConstant(t *testing.T) {
	h := Harmonic{R0: 7, Alpha: 0}
	for k := 1; k < 20; k++ {
		if got := h.Rate(k); got != 7 {
			t.Fatalf("Rate(%d) = %v, want 7", k, got)
		}
	}
}

func TestHarmonicExactMatchesFloat(t *testing.T) {
	h := Harmonic{R0: 10, Alpha: 0.5}
	for k := 0; k <= 12; k++ {
		exact, _ := h.RateRat(k).Float64()
		if math.Abs(exact-h.Rate(k)) > 1e-9 {
			t.Errorf("k=%d: RateRat=%v Rate=%v", k, exact, h.Rate(k))
		}
	}
}

func TestGeometric(t *testing.T) {
	g := Geometric{R0: 8, Beta: 0.5}
	tests := []struct {
		k    int
		want float64
	}{
		{0, 0}, {1, 8}, {2, 4}, {3, 2}, {4, 1},
	}
	for _, tc := range tests {
		if got := g.Rate(tc.k); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Rate(%d) = %v, want %v", tc.k, got, tc.want)
		}
	}
	if err := Validate(g, 64); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestGeometricExactMatchesFloat(t *testing.T) {
	g := Geometric{R0: 8, Beta: 0.25}
	for k := 0; k <= 10; k++ {
		exact, _ := g.RateRat(k).Float64()
		if math.Abs(exact-g.Rate(k)) > 1e-9 {
			t.Errorf("k=%d: RateRat=%v Rate=%v", k, exact, g.Rate(k))
		}
	}
}

func TestLinear(t *testing.T) {
	l := Linear{R0: 10, Slope: 3}
	tests := []struct {
		k    int
		want float64
	}{
		{0, 0}, {1, 10}, {2, 7}, {3, 4}, {4, 1}, {5, 0}, {100, 0},
	}
	for _, tc := range tests {
		if got := l.Rate(tc.k); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Rate(%d) = %v, want %v", tc.k, got, tc.want)
		}
	}
	if err := Validate(l, 64); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestLinearExactMatchesFloat(t *testing.T) {
	l := Linear{R0: 5, Slope: 1.25}
	for k := 0; k <= 10; k++ {
		exact, _ := l.RateRat(k).Float64()
		if math.Abs(exact-l.Rate(k)) > 1e-9 {
			t.Errorf("k=%d: RateRat=%v Rate=%v", k, exact, l.Rate(k))
		}
	}
	// Clamp at zero must hold exactly.
	if l.RateRat(100).Sign() != 0 {
		t.Error("RateRat should clamp at zero")
	}
}

func TestLinearZeroSlopeIsConstant(t *testing.T) {
	l := Linear{R0: 3, Slope: 0}
	for k := 1; k < 20; k++ {
		if l.Rate(k) != 3 {
			t.Fatalf("Rate(%d) = %v, want 3", k, l.Rate(k))
		}
	}
}

func TestValidateRejectsIncreasing(t *testing.T) {
	bad := increasing{}
	if err := Validate(bad, 5); err == nil {
		t.Fatal("Validate should reject an increasing function")
	}
}

type increasing struct{}

func (increasing) Rate(k int) float64 {
	if k <= 0 {
		return 0
	}
	return float64(k)
}
func (increasing) Name() string { return "increasing" }

type nonZeroAtZero struct{}

func (nonZeroAtZero) Rate(k int) float64 { return 1 }
func (nonZeroAtZero) Name() string       { return "nonzero" }

func TestValidateRejectsNonZeroOrigin(t *testing.T) {
	if err := Validate(nonZeroAtZero{}, 5); err == nil {
		t.Fatal("Validate should reject R(0) != 0")
	}
}

func TestValidateArgErrors(t *testing.T) {
	if err := Validate(nil, 5); err == nil {
		t.Error("nil Func should error")
	}
	if err := Validate(NewTDMA(1), 0); err == nil {
		t.Error("maxK < 1 should error")
	}
}

func TestTable(t *testing.T) {
	tbl, err := NewTable("empirical", []float64{10, 9, 9, 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Rate(0); got != 0 {
		t.Errorf("Rate(0) = %v, want 0", got)
	}
	if got := tbl.Rate(2); got != 9 {
		t.Errorf("Rate(2) = %v, want 9", got)
	}
	// Beyond the table: saturated tail.
	if got := tbl.Rate(100); got != 7 {
		t.Errorf("Rate(100) = %v, want 7", got)
	}
	if tbl.Len() != 4 {
		t.Errorf("Len = %d, want 4", tbl.Len())
	}
	if err := Validate(tbl, 10); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestTableCopiesInput(t *testing.T) {
	vals := []float64{5, 4}
	tbl, err := NewTable("t", vals)
	if err != nil {
		t.Fatal(err)
	}
	vals[0] = 100
	if got := tbl.Rate(1); got != 5 {
		t.Fatalf("table aliased caller slice: Rate(1) = %v", got)
	}
}

func TestTableErrors(t *testing.T) {
	if _, err := NewTable("empty", nil); err == nil {
		t.Error("empty table should error")
	}
	if _, err := NewTable("neg", []float64{1, -1}); err == nil {
		t.Error("negative value should error")
	}
	if _, err := NewTable("inc", []float64{1, 2}); err == nil {
		t.Error("increasing table should error")
	}
	if _, err := NewTable("nan", []float64{math.NaN()}); err == nil {
		t.Error("NaN should error")
	}
}

// wiggle is deliberately non-monotone to exercise the envelope. It is
// clamped at zero so the enveloped function satisfies the full contract.
type wiggle struct{}

func (wiggle) Rate(k int) float64 {
	if k <= 0 {
		return 0
	}
	var r float64
	if k%2 == 0 {
		r = 10 - float64(k)
	} else {
		r = 12 - float64(k)
	}
	return math.Max(0, r)
}
func (wiggle) Name() string { return "wiggle" }

func TestMonotoneEnvelope(t *testing.T) {
	env := NewMonotoneEnvelope(wiggle{})
	if err := Validate(env, 9); err != nil {
		t.Fatalf("envelope should be monotone: %v", err)
	}
	// wiggle: R(1)=11, R(2)=8, R(3)=9 -> envelope at 3 must be 8.
	if got := env.Rate(3); got != 8 {
		t.Errorf("Rate(3) = %v, want 8", got)
	}
	// Query out of order; memoisation must backfill correctly.
	// wiggle values: R(1)=11, R(2)=8, R(3)=9, R(4)=6, R(5)=7 -> min = 6.
	env2 := NewMonotoneEnvelope(wiggle{})
	if got := env2.Rate(5); got != 6 {
		t.Errorf("Rate(5) = %v, want 6", got)
	}
}

func TestMonotoneEnvelopeRunningMin(t *testing.T) {
	env := NewMonotoneEnvelope(wiggle{})
	minSoFar := math.Inf(1)
	for k := 1; k <= 12; k++ {
		raw := wiggle{}.Rate(k)
		if raw < minSoFar {
			minSoFar = raw
		}
		if got := env.Rate(k); got != minSoFar {
			t.Fatalf("Rate(%d) = %v, want running min %v", k, got, minSoFar)
		}
	}
}

func TestMonotoneEnvelopeConcurrent(t *testing.T) {
	env := NewMonotoneEnvelope(wiggle{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 1; k <= 50; k++ {
				_ = env.Rate(k)
			}
		}()
	}
	wg.Wait()
	if err := Validate(env, 50); err != nil {
		t.Fatal(err)
	}
}

type countingFunc struct {
	mu    sync.Mutex
	calls int
}

func (c *countingFunc) Rate(k int) float64 {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	if k <= 0 {
		return 0
	}
	return 1
}
func (c *countingFunc) Name() string { return "counting" }

func TestMemoCaches(t *testing.T) {
	inner := &countingFunc{}
	m := NewMemo(inner)
	for i := 0; i < 10; i++ {
		if got := m.Rate(3); got != 1 {
			t.Fatalf("Rate(3) = %v, want 1", got)
		}
	}
	if inner.calls != 1 {
		t.Fatalf("inner called %d times, want 1", inner.calls)
	}
	if got := m.Rate(0); got != 0 {
		t.Fatalf("Rate(0) = %v, want 0", got)
	}
	if inner.calls != 1 {
		t.Fatalf("Rate(0) must not consult inner; calls = %d", inner.calls)
	}
}

func TestMemoConcurrent(t *testing.T) {
	inner := &countingFunc{}
	m := NewMemo(inner)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 1; k <= 20; k++ {
				if got := m.Rate(k); got != 1 {
					t.Errorf("Rate(%d) = %v, want 1", k, got)
				}
			}
		}()
	}
	wg.Wait()
}

func TestNames(t *testing.T) {
	fns := []Func{
		NewTDMA(1),
		Harmonic{R0: 1, Alpha: 1},
		Geometric{R0: 1, Beta: 0.5},
		NewMonotoneEnvelope(NewTDMA(1)),
		NewMemo(NewTDMA(1)),
	}
	for _, f := range fns {
		if f.Name() == "" {
			t.Errorf("%T has empty name", f)
		}
	}
}

func TestHarmonicContractProperty(t *testing.T) {
	f := func(r0, alpha float64) bool {
		r0 = math.Abs(math.Mod(r0, 100))
		alpha = math.Abs(math.Mod(alpha, 10))
		if math.IsNaN(r0) || math.IsNaN(alpha) {
			return true
		}
		return Validate(Harmonic{R0: r0, Alpha: alpha}, 32) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricContractProperty(t *testing.T) {
	f := func(r0, beta float64) bool {
		r0 = math.Abs(math.Mod(r0, 100))
		beta = math.Abs(math.Mod(beta, 1))
		if math.IsNaN(r0) || math.IsNaN(beta) || beta == 0 {
			return true
		}
		return Validate(Geometric{R0: r0, Beta: beta}, 32) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFreezeSnapshot(t *testing.T) {
	inner := &countingFunc{}
	frozen, err := Freeze(inner, 16)
	if err != nil {
		t.Fatal(err)
	}
	sampled := inner.calls
	if sampled != 16 {
		t.Fatalf("Freeze sampled %d values, want 16", sampled)
	}
	for k := 0; k <= 20; k++ {
		want := 0.0
		if k >= 1 {
			want = 1 // saturated tail beyond 16
		}
		if got := frozen.Rate(k); got != want {
			t.Fatalf("frozen Rate(%d) = %v, want %v", k, got, want)
		}
	}
	if inner.calls != sampled {
		t.Fatalf("frozen table consulted inner (%d calls after, %d at freeze)", inner.calls, sampled)
	}
	if frozen.Name() != inner.Name() {
		t.Fatalf("Freeze renamed %q to %q", inner.Name(), frozen.Name())
	}
}

func TestFreezeMatchesInnerExactly(t *testing.T) {
	inner := Harmonic{R0: 3, Alpha: 0.7}
	frozen, err := Freeze(inner, 32)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 32; k++ {
		if got, want := frozen.Rate(k), inner.Rate(k); got != want {
			t.Fatalf("frozen Rate(%d) = %v, inner = %v (must be bit-identical)", k, got, want)
		}
	}
}

func TestFreezeErrors(t *testing.T) {
	if _, err := Freeze(nil, 4); err == nil {
		t.Error("Freeze(nil) should error")
	}
	if _, err := Freeze(NewTDMA(1), 0); err == nil {
		t.Error("Freeze with maxK=0 should error")
	}
	// A non-monotone inner fails the Table contract check.
	if _, err := Freeze(wiggle{}, 8); err == nil {
		t.Error("Freeze of a non-monotone Func should surface the contract violation")
	}
	if _, err := Freeze(NewMonotoneEnvelope(wiggle{}), 8); err != nil {
		t.Errorf("Freeze of the enveloped form should succeed, got %v", err)
	}
}

// BenchmarkRateLookup pits the RWMutex Memo against the lock-free frozen
// Table on the access pattern of the game hot loops (sequential loads),
// serial and under parallel workers — the regime the Memo's read lock
// contends in.
func BenchmarkRateLookup(b *testing.B) {
	inner := Harmonic{R0: 54, Alpha: 0.4}
	const maxK = 64
	memo := NewMemo(inner)
	frozen, err := Freeze(inner, maxK)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		f    Func
	}{
		{"memo", memo},
		{"frozen", frozen},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if bc.f.Rate(1+i%maxK) <= 0 {
					b.Fatal("degenerate rate")
				}
			}
		})
		b.Run(bc.name+"/parallel", func(b *testing.B) {
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				k := 0
				for pb.Next() {
					k++
					if bc.f.Rate(1+k%maxK) <= 0 {
						b.Fatal("degenerate rate")
					}
				}
			})
		})
	}
}
