// Package ratefn defines the channel rate function R(k_c) of the
// multi-radio channel allocation game: the total bitrate available on one
// channel as a function of the number of radio transmitters sharing it.
//
// The paper (§2) requires R to be non-increasing for k >= 1 with R(0) = 0.
// Reservation-based TDMA and CSMA/CA with optimal backoff windows yield a
// constant R; practical CSMA/CA (e.g. 802.11 DCF) yields a decreasing R due
// to collisions (paper Figure 3).
//
// Implementations in this package cover the analytic families used by the
// experiments; package bianchi adapts the 802.11 DCF model to this
// interface.
package ratefn

import (
	"fmt"
	"math"
	"math/big"
	"sync"
)

// Func is a channel rate function R(k): the total available bitrate on a
// channel occupied by k radios, in arbitrary consistent units (the
// experiments use Mbit/s).
//
// Contract: Rate(0) == 0, Rate(k) >= 0, and Rate is non-increasing on k >= 1.
// Validate checks the contract on a prefix of the domain.
type Func interface {
	// Rate returns R(k). k < 0 is treated as 0.
	Rate(k int) float64
	// Name returns a short human-readable identifier used in tables.
	Name() string
}

// Exact is implemented by rate functions that can produce exact rational
// values, enabling the big.Rat game oracle to avoid floating point entirely.
type Exact interface {
	Func
	// RateRat returns R(k) as an exact rational.
	RateRat(k int) *big.Rat
}

// Validate checks the Func contract (R(0)=0, non-negativity, monotone
// non-increase) for k in [0, maxK]. It returns nil if the contract holds.
func Validate(f Func, maxK int) error {
	if f == nil {
		return fmt.Errorf("ratefn: nil Func")
	}
	if maxK < 1 {
		return fmt.Errorf("ratefn: Validate needs maxK >= 1, got %d", maxK)
	}
	if r0 := f.Rate(0); r0 != 0 {
		return fmt.Errorf("ratefn: %s.Rate(0) = %v, want 0", f.Name(), r0)
	}
	prev := math.Inf(1)
	for k := 1; k <= maxK; k++ {
		r := f.Rate(k)
		if r < 0 || math.IsNaN(r) {
			return fmt.Errorf("ratefn: %s.Rate(%d) = %v, want non-negative", f.Name(), k, r)
		}
		if r > prev+1e-12 {
			return fmt.Errorf("ratefn: %s increases from R(%d)=%v to R(%d)=%v",
				f.Name(), k-1, prev, k, r)
		}
		prev = r
	}
	return nil
}

// Constant models reservation-based TDMA (and CSMA/CA with optimal backoff
// windows): the channel sustains rate R0 regardless of how many radios share
// it. This is the regime the paper's headline results assume.
type Constant struct {
	R0 float64
}

var (
	_ Func  = Constant{}
	_ Exact = Constant{}
)

// NewTDMA returns the reservation-TDMA rate function with total channel rate
// r0 (the paper's "reservation TDMA" curve in Figure 3).
func NewTDMA(r0 float64) Constant { return Constant{R0: r0} }

// Rate returns R0 for any k >= 1 and 0 for k <= 0.
func (c Constant) Rate(k int) float64 {
	if k <= 0 {
		return 0
	}
	return c.R0
}

// RateRat returns the exact rational value of Rate(k).
func (c Constant) RateRat(k int) *big.Rat {
	if k <= 0 {
		return new(big.Rat)
	}
	return floatRat(c.R0)
}

// Name implements Func.
func (c Constant) Name() string { return fmt.Sprintf("tdma(%.3g)", c.R0) }

// Harmonic models a sharply degrading channel: R(k) = R0 / (1 + Alpha*(k-1)).
// Alpha = 0 reduces to Constant; larger Alpha degrades faster. Alpha must be
// >= 0 for the monotonicity contract to hold.
type Harmonic struct {
	R0    float64
	Alpha float64
}

var (
	_ Func  = Harmonic{}
	_ Exact = Harmonic{}
)

// Rate implements Func.
func (h Harmonic) Rate(k int) float64 {
	if k <= 0 {
		return 0
	}
	return h.R0 / (1 + h.Alpha*float64(k-1))
}

// RateRat returns the exact rational value of Rate(k).
func (h Harmonic) RateRat(k int) *big.Rat {
	if k <= 0 {
		return new(big.Rat)
	}
	denom := new(big.Rat).Add(
		big.NewRat(1, 1),
		new(big.Rat).Mul(floatRat(h.Alpha), big.NewRat(int64(k-1), 1)),
	)
	return new(big.Rat).Quo(floatRat(h.R0), denom)
}

// Name implements Func.
func (h Harmonic) Name() string { return fmt.Sprintf("harmonic(%.3g,α=%.3g)", h.R0, h.Alpha) }

// Geometric models exponential degradation: R(k) = R0 * Beta^(k-1) with
// 0 < Beta <= 1.
type Geometric struct {
	R0   float64
	Beta float64
}

var (
	_ Func  = Geometric{}
	_ Exact = Geometric{}
)

// Rate implements Func.
func (g Geometric) Rate(k int) float64 {
	if k <= 0 {
		return 0
	}
	return g.R0 * math.Pow(g.Beta, float64(k-1))
}

// RateRat returns the exact rational value of Rate(k).
func (g Geometric) RateRat(k int) *big.Rat {
	if k <= 0 {
		return new(big.Rat)
	}
	beta := floatRat(g.Beta)
	out := floatRat(g.R0)
	for i := 1; i < k; i++ {
		out.Mul(out, beta)
	}
	return out
}

// Name implements Func.
func (g Geometric) Name() string { return fmt.Sprintf("geometric(%.3g,β=%.3g)", g.R0, g.Beta) }

// Linear models additive degradation clamped at zero:
// R(k) = max(0, R0 - Slope·(k-1)). Unlike Harmonic and Geometric it reaches
// exactly zero at finite load, exercising the R = 0 edge cases of the
// welfare optimisers and the best-response oracle.
type Linear struct {
	R0    float64
	Slope float64
}

var (
	_ Func  = Linear{}
	_ Exact = Linear{}
)

// Rate implements Func.
func (l Linear) Rate(k int) float64 {
	if k <= 0 {
		return 0
	}
	r := l.R0 - l.Slope*float64(k-1)
	if r < 0 {
		return 0
	}
	return r
}

// RateRat returns the exact rational value of Rate(k).
func (l Linear) RateRat(k int) *big.Rat {
	if k <= 0 {
		return new(big.Rat)
	}
	r := new(big.Rat).Sub(floatRat(l.R0),
		new(big.Rat).Mul(floatRat(l.Slope), big.NewRat(int64(k-1), 1)))
	if r.Sign() < 0 {
		return new(big.Rat)
	}
	return r
}

// Name implements Func.
func (l Linear) Name() string { return fmt.Sprintf("linear(%.3g,s=%.3g)", l.R0, l.Slope) }

// Table is a rate function backed by explicit samples: Rate(k) = Values[k-1]
// for 1 <= k <= len(Values), and Values[len-1] beyond the table (a saturated
// tail keeps the function defined on all of N). Use NewTable to validate
// monotonicity up front.
type Table struct {
	name   string
	values []float64
}

var _ Func = (*Table)(nil)

// NewTable builds a Table rate function from the given samples, validating
// non-negativity and monotone non-increase. The slice is copied.
func NewTable(name string, values []float64) (*Table, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("ratefn: table %q needs at least one value", name)
	}
	prev := math.Inf(1)
	for i, v := range values {
		if v < 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("ratefn: table %q value %d is %v, want non-negative", name, i, v)
		}
		if v > prev+1e-12 {
			return nil, fmt.Errorf("ratefn: table %q increases at index %d (%v -> %v)", name, i, prev, v)
		}
		prev = v
	}
	return &Table{name: name, values: append([]float64(nil), values...)}, nil
}

// Rate implements Func.
func (t *Table) Rate(k int) float64 {
	if k <= 0 {
		return 0
	}
	if k > len(t.values) {
		return t.values[len(t.values)-1]
	}
	return t.values[k-1]
}

// Name implements Func.
func (t *Table) Name() string { return t.name }

// Len reports the number of explicit samples in the table.
func (t *Table) Len() int { return len(t.values) }

// MonotoneEnvelope wraps an arbitrary rate model with the running minimum
//
//	R'(k) = min_{1 <= j <= k} R(j)
//
// guaranteeing the non-increasing contract even when the inner model is not
// perfectly monotone (e.g. an empirical simulation estimate, or Bianchi's
// throughput which can wiggle at small n). The envelope is computed lazily
// and memoised; it is safe for concurrent use.
type MonotoneEnvelope struct {
	inner Func

	mu   sync.Mutex
	mins []float64 // mins[k-1] = min over 1..k
}

var _ Func = (*MonotoneEnvelope)(nil)

// NewMonotoneEnvelope wraps inner with the running-minimum envelope.
func NewMonotoneEnvelope(inner Func) *MonotoneEnvelope {
	return &MonotoneEnvelope{inner: inner}
}

// Rate implements Func.
func (m *MonotoneEnvelope) Rate(k int) float64 {
	if k <= 0 {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.mins) < k {
		next := m.inner.Rate(len(m.mins) + 1)
		if n := len(m.mins); n > 0 && m.mins[n-1] < next {
			next = m.mins[n-1]
		}
		m.mins = append(m.mins, next)
	}
	return m.mins[k-1]
}

// Name implements Func.
func (m *MonotoneEnvelope) Name() string { return "monotone(" + m.inner.Name() + ")" }

// Freeze samples inner on 1..maxK and returns a Table snapshot: a lock-free
// precomputed alternative to Memo for bounded load domains. Where Memo pays
// an RWMutex acquisition on every call (contended when many engine workers
// share one curve), a frozen Table is a plain slice read, safe for
// concurrent use with no synchronisation at all. Game constructions bound
// the load by the total number of radios, so maxK = Σ_i k_i freezes every
// value a game can ever ask for; beyond maxK the table saturates at its
// last value (the Table tail convention), so choose maxK to cover the
// domain. The snapshot validates the rate-function contract and keeps
// inner's name.
func Freeze(inner Func, maxK int) (*Table, error) {
	if inner == nil {
		return nil, fmt.Errorf("ratefn: Freeze of nil Func")
	}
	if maxK < 1 {
		return nil, fmt.Errorf("ratefn: Freeze needs maxK >= 1, got %d", maxK)
	}
	values := make([]float64, maxK)
	for k := 1; k <= maxK; k++ {
		values[k-1] = inner.Rate(k)
	}
	return NewTable(inner.Name(), values)
}

// Memo caches Rate lookups of an expensive inner function (such as the
// Bianchi fixed point). It is safe for concurrent use.
type Memo struct {
	inner Func

	mu    sync.RWMutex
	cache map[int]float64
}

var _ Func = (*Memo)(nil)

// NewMemo wraps inner with a concurrency-safe cache.
func NewMemo(inner Func) *Memo {
	return &Memo{inner: inner, cache: make(map[int]float64)}
}

// Rate implements Func.
func (m *Memo) Rate(k int) float64 {
	if k <= 0 {
		return 0
	}
	m.mu.RLock()
	v, ok := m.cache[k]
	m.mu.RUnlock()
	if ok {
		return v
	}
	v = m.inner.Rate(k)
	m.mu.Lock()
	m.cache[k] = v
	m.mu.Unlock()
	return v
}

// Name implements Func.
func (m *Memo) Name() string { return m.inner.Name() }

// floatRat converts a float64 to an exact big.Rat. Rate parameters are
// finite by construction; a non-finite value maps to zero.
func floatRat(f float64) *big.Rat {
	r := new(big.Rat)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return r
	}
	return r.SetFloat64(f)
}
