package des

import "math"

// RNG is a SplitMix64 pseudo-random generator. It is tiny, fast, has
// well-understood statistical quality for simulation workloads, and — unlike
// math/rand's global functions — makes seeding explicit so simulation runs
// are reproducible bit-for-bit.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, mirroring
// math/rand's contract — callers control n, so this is a programmer error.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("des: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation would be overkill
	// here; rejection sampling keeps the distribution exactly uniform.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// ExpFloat64 returns an exponentially distributed value with rate 1, via
// inverse-transform sampling (adequate for event inter-arrival times).
func (r *RNG) ExpFloat64() float64 {
	// Avoid log(0) by mapping the (measure-zero) 0 draw to the smallest
	// positive uniform.
	u := r.Float64()
	if u == 0 {
		u = 1.0 / (1 << 53)
	}
	return -math.Log(u)
}
