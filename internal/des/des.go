// Package des is a small deterministic discrete-event simulation engine.
// It drives the MAC-layer simulators (package macsim) that validate the
// fair-share and rate-function assumptions of the channel allocation game.
//
// The engine is single-threaded and deterministic: events at equal
// timestamps fire in scheduling order (FIFO tie-breaking via sequence
// numbers), and all randomness flows from the SplitMix64 generator seeded by
// the caller.
package des

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// ErrStopped is returned by Run variants when the simulation was stopped
// explicitly before reaching its horizon.
var ErrStopped = errors.New("des: simulation stopped")

// Event is a scheduled callback. The callback receives the simulator so it
// can schedule follow-up events.
type Event struct {
	Time float64
	Fn   func(*Simulator)

	seq   uint64
	index int
}

// eventQueue implements heap.Interface ordered by (Time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].Time != q[j].Time {
		return q[i].Time < q[j].Time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Simulator is a discrete-event simulator. Create one with New.
type Simulator struct {
	now     float64
	queue   eventQueue
	seq     uint64
	stopped bool
	rng     *RNG
	events  uint64 // processed events
}

// New creates a simulator whose randomness is seeded with seed.
func New(seed uint64) *Simulator {
	return &Simulator{rng: NewRNG(seed)}
}

// Now returns the current simulation time.
func (s *Simulator) Now() float64 { return s.now }

// RNG returns the simulator's deterministic random source.
func (s *Simulator) RNG() *RNG { return s.rng }

// Processed reports how many events have fired so far.
func (s *Simulator) Processed() uint64 { return s.events }

// Pending reports how many events are scheduled but not yet fired.
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule enqueues fn to run at absolute time t. Scheduling in the past
// (t < Now) is an error; scheduling exactly at Now is allowed and runs after
// currently queued events at the same timestamp.
func (s *Simulator) Schedule(t float64, fn func(*Simulator)) (*Event, error) {
	if fn == nil {
		return nil, errors.New("des: nil event callback")
	}
	if math.IsNaN(t) || t < s.now {
		return nil, fmt.Errorf("des: schedule at %v before now %v", t, s.now)
	}
	ev := &Event{Time: t, Fn: fn, seq: s.seq}
	s.seq++
	heap.Push(&s.queue, ev)
	return ev, nil
}

// After enqueues fn to run delay time units from now.
func (s *Simulator) After(delay float64, fn func(*Simulator)) (*Event, error) {
	if delay < 0 || math.IsNaN(delay) {
		return nil, fmt.Errorf("des: negative delay %v", delay)
	}
	return s.Schedule(s.now+delay, fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op returning false.
func (s *Simulator) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 || ev.index >= len(s.queue) || s.queue[ev.index] != ev {
		return false
	}
	heap.Remove(&s.queue, ev.index)
	return true
}

// Stop halts the run loop after the current event returns.
func (s *Simulator) Stop() { s.stopped = true }

// Run processes events until the queue empties, the horizon is passed, or
// Stop is called. Events with Time > horizon remain queued; the clock is
// left at the later of its current value and horizon. It returns ErrStopped
// if halted by Stop.
func (s *Simulator) Run(horizon float64) error {
	if math.IsNaN(horizon) || horizon < s.now {
		return fmt.Errorf("des: horizon %v before now %v", horizon, s.now)
	}
	s.stopped = false
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.Time > horizon {
			break
		}
		heap.Pop(&s.queue)
		s.now = next.Time
		s.events++
		next.Fn(s)
		if s.stopped {
			return ErrStopped
		}
	}
	if !math.IsInf(horizon, 1) && s.now < horizon {
		s.now = horizon
	}
	return nil
}

// RunAll processes events until the queue drains or Stop is called.
func (s *Simulator) RunAll() error {
	return s.Run(math.Inf(1))
}
