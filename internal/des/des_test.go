package des

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestScheduleAndRunOrder(t *testing.T) {
	s := New(1)
	var order []int
	mustSchedule(t, s, 3, func(*Simulator) { order = append(order, 3) })
	mustSchedule(t, s, 1, func(*Simulator) { order = append(order, 1) })
	mustSchedule(t, s, 2, func(*Simulator) { order = append(order, 2) })
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 3 {
		t.Fatalf("Now = %v, want 3", s.Now())
	}
	if s.Processed() != 3 {
		t.Fatalf("Processed = %d, want 3", s.Processed())
	}
}

func TestFIFOTieBreaking(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		mustSchedule(t, s, 5, func(*Simulator) { order = append(order, i) })
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", order)
		}
	}
}

func TestScheduleDuringEvent(t *testing.T) {
	s := New(1)
	var hits []float64
	mustSchedule(t, s, 1, func(sim *Simulator) {
		hits = append(hits, sim.Now())
		if _, err := sim.After(2, func(sim2 *Simulator) {
			hits = append(hits, sim2.Now())
		}); err != nil {
			t.Errorf("After: %v", err)
		}
	})
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 3 {
		t.Fatalf("hits = %v, want [1 3]", hits)
	}
}

func TestScheduleAtNowRunsAfterQueued(t *testing.T) {
	s := New(1)
	var order []string
	mustSchedule(t, s, 1, func(sim *Simulator) {
		order = append(order, "first")
		if _, err := sim.Schedule(sim.Now(), func(*Simulator) {
			order = append(order, "self")
		}); err != nil {
			t.Errorf("schedule at now: %v", err)
		}
	})
	mustSchedule(t, s, 1, func(*Simulator) { order = append(order, "second") })
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []string{"first", "second", "self"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSchedulePastErrors(t *testing.T) {
	s := New(1)
	mustSchedule(t, s, 5, func(*Simulator) {})
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Schedule(4, func(*Simulator) {}); err == nil {
		t.Fatal("scheduling in the past should error")
	}
	if _, err := s.Schedule(math.NaN(), func(*Simulator) {}); err == nil {
		t.Fatal("NaN time should error")
	}
	if _, err := s.After(-1, func(*Simulator) {}); err == nil {
		t.Fatal("negative delay should error")
	}
	if _, err := s.Schedule(10, nil); err == nil {
		t.Fatal("nil callback should error")
	}
}

func TestHorizonStopsClock(t *testing.T) {
	s := New(1)
	fired := false
	mustSchedule(t, s, 10, func(*Simulator) { fired = true })
	if err := s.Run(5); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("event past horizon fired")
	}
	if s.Now() != 5 {
		t.Fatalf("Now = %v, want horizon 5", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
	// Continuing past the horizon fires the event.
	if err := s.Run(20); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event not fired after extending horizon")
	}
}

func TestRunHorizonBeforeNow(t *testing.T) {
	s := New(1)
	mustSchedule(t, s, 5, func(*Simulator) {})
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(1); err == nil {
		t.Fatal("horizon before now should error")
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 5; i++ {
		mustSchedule(t, s, float64(i), func(sim *Simulator) {
			count++
			if count == 2 {
				sim.Stop()
			}
		})
	}
	err := s.RunAll()
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	// A later Run resumes.
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5 after resume", count)
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	ev := mustSchedule(t, s, 1, func(*Simulator) { fired = true })
	if !s.Cancel(ev) {
		t.Fatal("Cancel returned false for pending event")
	}
	if s.Cancel(ev) {
		t.Fatal("double Cancel should return false")
	}
	if s.Cancel(nil) {
		t.Fatal("Cancel(nil) should return false")
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	s := New(1)
	var fired []int
	var events []*Event
	for i := 0; i < 8; i++ {
		i := i
		events = append(events, mustSchedule(t, s, float64(i), func(*Simulator) {
			fired = append(fired, i)
		}))
	}
	s.Cancel(events[3])
	s.Cancel(events[5])
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 4, 6, 7}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		s := New(42)
		var samples []float64
		var tick func(*Simulator)
		tick = func(sim *Simulator) {
			samples = append(samples, sim.RNG().Float64())
			if len(samples) < 50 {
				if _, err := sim.After(sim.RNG().ExpFloat64(), tick); err != nil {
					t.Fatal(err)
				}
			}
		}
		mustSchedule(t, s, 0, tick)
		if err := s.RunAll(); err != nil {
			t.Fatal(err)
		}
		return samples
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func mustSchedule(t *testing.T, s *Simulator, at float64, fn func(*Simulator)) *Event {
	t.Helper()
	ev, err := s.Schedule(at, fn)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGIntnUniform(t *testing.T) {
	r := NewRNG(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if math.Abs(float64(c-want)) > 0.1*float64(want) {
			t.Errorf("bucket %d count %d deviates more than 10%% from %d", i, c, want)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(11)
	p := r.Perm(20)
	seen := make(map[int]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestRNGPermIsShuffled(t *testing.T) {
	// With 100 elements the probability of the identity permutation is
	// negligible; the test guards Perm actually shuffling.
	r := NewRNG(12)
	p := r.Perm(100)
	identity := true
	for i, v := range p {
		if v != i {
			identity = false
			break
		}
	}
	if identity {
		t.Fatal("Perm returned identity permutation")
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(13)
	const draws = 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / draws
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("Exp mean = %v, want ~1", mean)
	}
}

func TestRNGDeterministicStream(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := NewRNG(seed), NewRNG(seed)
		for i := 0; i < 100; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
