package hetero

import (
	"testing"

	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

// wobble is deterministic but non-monotone, forcing the MonotoneEnvelope
// to actually clamp.
type wobble struct{}

func (wobble) Rate(k int) float64 {
	if k <= 0 {
		return 0
	}
	return 3/float64(k) + 0.25*float64(k%3)
}
func (wobble) Name() string { return "wobble" }

// orbitRates covers every ratefn family, including the Table and
// MonotoneEnvelope forms the symmetry-reduction issue names explicitly.
func orbitRates(t *testing.T) []ratefn.Func {
	t.Helper()
	table, err := ratefn.NewTable("meas", []float64{5, 5, 3.5, 2.25, 2.25, 1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return []ratefn.Func{
		ratefn.NewTDMA(1),
		ratefn.Harmonic{R0: 2, Alpha: 0.6},
		ratefn.Geometric{R0: 3, Beta: 0.7},
		ratefn.Linear{R0: 2, Slope: 0.4},
		table,
		ratefn.NewMonotoneEnvelope(wobble{}),
	}
}

// unreducedEnumerateNE is the pre-reduction enumeration: full odometer over
// every profile, screened oracle per profile.
func unreducedEnumerateNE(t *testing.T, g *Game, maxProfiles int64) []*core.Alloc {
	t.Helper()
	ws := core.NewWorkspace()
	var out []*core.Alloc
	err := ForEachAlloc(g, maxProfiles, func(a *core.Alloc) bool {
		ne, err := g.IsNashEquilibriumWith(ws, a)
		if err != nil {
			t.Fatal(err)
		}
		if ne {
			out = append(out, a.Clone())
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestHeteroCanonicalMatchesUnreduced cross-checks the symmetry-reduced
// mixed-budget enumeration against the full grid for every rate family:
// expanded canonical output equals the unreduced enumeration allocation
// for allocation in order, and orbit sizes sum to the unreduced count.
// Budget vectors exercise contiguous, interleaved and singleton classes.
func TestHeteroCanonicalMatchesUnreduced(t *testing.T) {
	cases := []struct {
		channels int
		budgets  []int
	}{
		{2, []int{1, 1}},
		{3, []int{2, 2, 1}},
		{2, []int{1, 2, 1}}, // exchangeable users 0 and 2 straddle user 1
		{3, []int{1, 2, 3}}, // no two users exchangeable
		{3, []int{2, 1, 2, 1}},
		{2, []int{2, 2, 2, 2}},
	}
	for _, rate := range orbitRates(t) {
		for _, tc := range cases {
			g := mustGame(t, tc.channels, tc.budgets, rate)
			want := unreducedEnumerateNE(t, g, 2_000_000)
			reps, err := EnumerateNECanonical(g, 2_000_000)
			if err != nil {
				t.Fatal(err)
			}
			var orbitSum int64
			for _, rep := range reps {
				orbitSum += rep.Orbit
			}
			if orbitSum != int64(len(want)) {
				t.Fatalf("%s C=%d budgets %v: orbit sizes sum to %d, unreduced enumeration has %d equilibria",
					rate.Name(), tc.channels, tc.budgets, orbitSum, len(want))
			}
			got, err := EnumerateNE(g, 2_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s C=%d budgets %v: %d equilibria, unreduced enumeration found %d",
					rate.Name(), tc.channels, tc.budgets, len(got), len(want))
			}
			for j := range got {
				if !got[j].Equal(want[j]) {
					t.Fatalf("%s C=%d budgets %v: equilibrium %d differs from unreduced order\ngot:\n%v\nwant:\n%v",
						rate.Name(), tc.channels, tc.budgets, j, got[j], want[j])
				}
			}
		}
	}
}
