package hetero

import (
	"fmt"

	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

// UserID is the stable identity of a live-game participant. IDs are
// assigned sequentially from 1 on Join and never reused, so they survive
// the dense-row compaction that departures trigger.
type UserID int64

// Churn summarises the mutations applied to a LiveGame since the last
// TakeChurn: which channels' loads changed, whether any load DECREASED
// (leaves and budget cuts — the case where quiet verdicts of untouched
// users cannot be carried over; see dynamics.Requilibrate), and which users
// had their own strategy row rewritten (joiners seeded greedily, budget
// changes) and therefore must re-run the best-response DP regardless.
type Churn struct {
	// Dirty[c] is true when channel c's load changed.
	Dirty []bool
	// Suspects holds the users whose rows were edited by churn events.
	// Departed users are dropped again — their rows no longer exist.
	Suspects map[UserID]bool
	// Decreased is true when some channel's load went down.
	Decreased bool
	// Events counts the mutations folded into this record.
	Events int
}

// LiveGame is the mutable form of the heterogeneous channel allocation
// game: users join, leave and change radio budgets while the derived state
// — the dense allocation matrix, the precomputed RateView and the welfare
// memo — is kept consistent incrementally instead of being rebuilt per
// event.
//
//   - Stable IDs vs dense rows: every kernel (DP workspaces, orbit walks,
//     the allocation matrix itself) indexes users 0..N-1 densely. A live
//     population is sparse in identity space, so LiveGame owns the
//     id↔row indirection; departures compact rows with a swap-with-last
//     (core.Alloc.RemoveRowSwap) and remap the moved user.
//   - RateView growth: the view's table domain covers total load 0..Σk_i.
//     Joins grow the total, so the view is rebuilt with doubling headroom
//     only when the domain is outgrown; every rebuild samples the same
//     pure rate function, so table values are bit-identical across
//     generations and the domain size never shows in results.
//   - Welfare memo: hetero.Game memoises its all-placed optimum behind a
//     sync.Once. LiveGame snapshots an immutable Game per generation
//     (Frozen), so each mutation implicitly resets the memo — the
//     generation counter bumps, the next Frozen builds a Game with a
//     fresh Once sharing the already-built view.
//
// A LiveGame is not safe for concurrent use; the live server serialises
// events (mutations per event are O(|C|) plus re-equilibration).
type LiveGame struct {
	channels int
	rate     ratefn.Func

	ids     []UserID       // dense row -> stable id
	budgets []int          // dense row -> budget k_i
	rowOf   map[UserID]int // stable id -> dense row
	nextID  UserID

	alloc *core.Alloc // dense allocation; nil while the game is empty

	view     *core.RateView
	viewLoad int // total-load domain the current view covers
	viewOwn  int // per-user budget domain the current view covers

	gen       uint64 // bumped by every mutation
	frozen    *Game  // per-generation immutable snapshot
	frozenGen uint64

	pending Churn
	quiet   bool // allocation known quiet (equilibrated) before pending churn
}

// NewLiveGame returns an empty live game over the given channels and rate
// function. The empty allocation is trivially an equilibrium.
func NewLiveGame(channels int, rate ratefn.Func) (*LiveGame, error) {
	if channels < 1 {
		return nil, fmt.Errorf("hetero: channels = %d, want >= 1", channels)
	}
	if rate == nil {
		return nil, fmt.Errorf("hetero: nil rate function")
	}
	lg := &LiveGame{
		channels: channels,
		rate:     rate,
		rowOf:    make(map[UserID]int),
		viewLoad: -1,
		viewOwn:  -1,
		quiet:    true,
	}
	lg.resetChurn()
	return lg, nil
}

// Users returns the live population size.
func (lg *LiveGame) Users() int { return len(lg.ids) }

// Channels returns |C|.
func (lg *LiveGame) Channels() int { return lg.channels }

// Rate returns the rate function.
func (lg *LiveGame) Rate() ratefn.Func { return lg.rate }

// Generation returns the mutation counter; it changes iff game state did.
func (lg *LiveGame) Generation() uint64 { return lg.gen }

// Alloc returns the LIVE dense allocation (nil while empty). It is the
// state dynamics.Requilibrate evolves in place; other callers must treat
// it as read-only.
func (lg *LiveGame) Alloc() *core.Alloc { return lg.alloc }

// RowOf translates a stable user id to its current dense row.
func (lg *LiveGame) RowOf(id UserID) (int, bool) {
	row, ok := lg.rowOf[id]
	return row, ok
}

// IDAt returns the stable id of dense row i.
func (lg *LiveGame) IDAt(i int) UserID { return lg.ids[i] }

// BudgetOf returns user id's radio budget.
func (lg *LiveGame) BudgetOf(id UserID) (int, bool) {
	row, ok := lg.rowOf[id]
	if !ok {
		return 0, false
	}
	return lg.budgets[row], true
}

// Budgets returns a copy of the dense budget vector.
func (lg *LiveGame) Budgets() []int { return append([]int(nil), lg.budgets...) }

// ensureView grows the rate view when the load or budget domain is
// outgrown. Doubling headroom keeps rebuilds O(log total-churn); shrinking
// never rebuilds (a superset domain reads identical table values).
func (lg *LiveGame) ensureView() {
	total, maxBudget := 0, 0
	for _, k := range lg.budgets {
		total += k
		if k > maxBudget {
			maxBudget = k
		}
	}
	if lg.view != nil && total <= lg.viewLoad && maxBudget <= lg.viewOwn {
		return
	}
	newLoad := lg.viewLoad
	if newLoad < 0 {
		newLoad = 0
	}
	for newLoad < total {
		newLoad = newLoad*2 + 8
	}
	newOwn := maxBudget
	if lg.viewOwn > newOwn {
		newOwn = lg.viewOwn
	}
	if newOwn > newLoad {
		newLoad = newOwn
	}
	lg.view = core.NewRateView(lg.rate, newLoad, newOwn)
	lg.viewLoad, lg.viewOwn = newLoad, newOwn
}

// resetChurn clears the pending churn record.
func (lg *LiveGame) resetChurn() {
	lg.pending = Churn{
		Dirty:    make([]bool, lg.channels),
		Suspects: make(map[UserID]bool),
	}
}

// bump invalidates generation-derived state after a mutation.
func (lg *LiveGame) bump() {
	lg.gen++
	lg.pending.Events++
}

// Join admits a new user with the given radio budget: a fresh stable id, a
// dense row appended to the allocation, and the budget's radios seeded
// greedily on least-loaded channels (the Algorithm 1 placement rule), which
// is both a good warm start and full deployment — the Lemma 1 shape every
// equilibrium needs. The seeded channels are marked dirty and the joiner
// is a re-equilibration suspect.
func (lg *LiveGame) Join(budget int) (UserID, error) {
	if budget < 1 {
		return 0, fmt.Errorf("hetero: join budget %d, want >= 1", budget)
	}
	if budget > lg.channels {
		return 0, fmt.Errorf("hetero: join budget %d exceeds %d channels", budget, lg.channels)
	}
	var row int
	if lg.alloc == nil {
		a, err := core.NewAlloc(1, lg.channels)
		if err != nil {
			return 0, err
		}
		lg.alloc = a
		row = 0
	} else {
		row = lg.alloc.AppendRow()
	}
	lg.nextID++
	id := lg.nextID
	lg.ids = append(lg.ids, id)
	lg.budgets = append(lg.budgets, budget)
	lg.rowOf[id] = row
	lg.ensureView()

	placer := core.Placer{Tie: core.TieFirst}
	seeded, err := placer.Place(lg.alloc.Loads(), budget)
	if err != nil {
		return 0, fmt.Errorf("hetero: seeding joiner %d: %w", id, err)
	}
	if err := lg.alloc.SetRow(row, seeded); err != nil {
		return 0, fmt.Errorf("hetero: seeding joiner %d: %w", id, err)
	}
	for c, v := range seeded {
		if v > 0 {
			lg.pending.Dirty[c] = true
		}
	}
	lg.pending.Suspects[id] = true
	lg.bump()
	return id, nil
}

// Leave removes a user: its radios are freed (the touched channels' loads
// decrease), the last dense row is swapped into the hole and its user
// remapped. Departures set the Decreased churn flag — lowered loads can
// make moves profitable for ANY remaining user, so no quiet verdict
// survives (see dynamics.Requilibrate).
func (lg *LiveGame) Leave(id UserID) error {
	row, ok := lg.rowOf[id]
	if !ok {
		return fmt.Errorf("hetero: leave: unknown user %d", id)
	}
	for c := 0; c < lg.channels; c++ {
		if lg.alloc.Radios(row, c) > 0 {
			lg.pending.Dirty[c] = true
			lg.pending.Decreased = true
		}
	}
	if err := lg.alloc.RemoveRowSwap(row); err != nil {
		return fmt.Errorf("hetero: leave user %d: %w", id, err)
	}
	last := len(lg.ids) - 1
	if row != last {
		moved := lg.ids[last]
		lg.ids[row] = moved
		lg.budgets[row] = lg.budgets[last]
		lg.rowOf[moved] = row
	}
	lg.ids = lg.ids[:last]
	lg.budgets = lg.budgets[:last]
	delete(lg.rowOf, id)
	delete(lg.pending.Suspects, id)
	if last == 0 {
		lg.alloc = nil
	}
	lg.bump()
	return nil
}

// SetBudget changes user id's radio budget in place. Growing deploys the
// extra radios greedily on least-loaded channels (dirty, loads increase);
// shrinking withdraws radios from the user's most-loaded occupied channels
// (dirty, Decreased). Either way the user's row changed, so it is a
// re-equilibration suspect. Setting the current budget is a no-op.
func (lg *LiveGame) SetBudget(id UserID, k int) error {
	row, ok := lg.rowOf[id]
	if !ok {
		return fmt.Errorf("hetero: budget: unknown user %d", id)
	}
	if k < 1 {
		return fmt.Errorf("hetero: budget %d for user %d, want >= 1", k, id)
	}
	if k > lg.channels {
		return fmt.Errorf("hetero: budget %d for user %d exceeds %d channels", k, id, lg.channels)
	}
	old := lg.budgets[row]
	if k == old {
		return nil
	}
	lg.budgets[row] = k
	lg.ensureView()
	a := lg.alloc
	for deployed := a.UserTotal(row); deployed < k; deployed++ {
		// One radio onto the least-loaded channel, preferring channels
		// this user does not occupy yet (the Placer rule), ties lowest
		// index.
		best, bestLoad := -1, 0
		for pass := 0; pass < 2 && best < 0; pass++ {
			for c := 0; c < lg.channels; c++ {
				if pass == 0 && a.Radios(row, c) > 0 {
					continue
				}
				if l := a.Load(c); best < 0 || l < bestLoad {
					best, bestLoad = c, l
				}
			}
		}
		if err := a.Add(row, best, 1); err != nil {
			return fmt.Errorf("hetero: budget grow user %d: %w", id, err)
		}
		lg.pending.Dirty[best] = true
	}
	for deployed := a.UserTotal(row); deployed > k; deployed-- {
		// Withdraw from the user's most-loaded occupied channel (the
		// radio earning the smallest share), ties lowest index.
		worst, worstLoad := -1, -1
		for c := 0; c < lg.channels; c++ {
			if a.Radios(row, c) == 0 {
				continue
			}
			if l := a.Load(c); l > worstLoad {
				worst, worstLoad = c, l
			}
		}
		if err := a.Add(row, worst, -1); err != nil {
			return fmt.Errorf("hetero: budget shrink user %d: %w", id, err)
		}
		lg.pending.Dirty[worst] = true
		lg.pending.Decreased = true
	}
	lg.pending.Suspects[id] = true
	lg.bump()
	return nil
}

// Frozen returns the immutable hetero.Game snapshot of the current
// generation, memoised until the next mutation: the snapshot shares the
// live RateView (superset domains read identical values) but owns a fresh
// welfare memo, so OptimalWelfareAllPlaced / PriceOfAnarchy recompute at
// most once per generation. Returns nil while the game is empty.
func (lg *LiveGame) Frozen() *Game {
	if lg.Users() == 0 {
		return nil
	}
	if lg.frozen != nil && lg.frozenGen == lg.gen {
		return lg.frozen
	}
	lg.frozen = &Game{
		channels: lg.channels,
		budgets:  append([]int(nil), lg.budgets...),
		rate:     lg.rate,
		view:     lg.view,
	}
	lg.frozenGen = lg.gen
	return lg.frozen
}

// TakeChurn hands over the pending churn record and starts a fresh one.
// The dynamics layer calls it at the top of a re-equilibration; the record
// tells it which quiet verdicts survived the mutations.
func (lg *LiveGame) TakeChurn() Churn {
	out := lg.pending
	lg.resetChurn()
	return out
}

// PendingEvents reports how many mutations await re-equilibration.
func (lg *LiveGame) PendingEvents() int { return lg.pending.Events }

// Equilibrated reports whether the allocation was quiet (a verified
// equilibrium at the dynamics tolerance) before the pending churn — the
// warm-start soundness precondition.
func (lg *LiveGame) Equilibrated() bool { return lg.quiet }

// MarkEquilibrated records the outcome of a re-equilibration run; the
// dynamics layer calls it with the run's convergence verdict.
func (lg *LiveGame) MarkEquilibrated(quiet bool) { lg.quiet = quiet }
