// Package hetero extends the channel allocation game to heterogeneous
// radio budgets: user i owns k_i <= |C| radios, with budgets differing
// across users. The reproduced paper assumes a uniform k (its §2 model);
// this package probes how far its results carry beyond that assumption —
// the kind of generalisation the paper's conclusion gestures at.
//
// Empirically (see the package tests and experiment E11):
//
//   - Lemma 1 (full deployment) and Proposition 1 (loads within one radio)
//     remain necessary for Nash equilibria under positive constant rates;
//   - the sequential greedy allocation (Algorithm 1 run with per-user
//     budgets) still lands on an exact Nash equilibrium.
package hetero

import (
	"fmt"
	"sync"

	"github.com/multiradio/chanalloc/internal/combin"
	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/des"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

// Game is a channel allocation game with per-user radio budgets. Like
// core.Game, construction precomputes a core.RateView over the bounded
// load domain (total load <= Σ_i k_i), so utilities, welfare and the
// best-response DP read tables instead of calling through the rate
// interface; the rate function must be pure.
type Game struct {
	channels int
	budgets  []int
	rate     ratefn.Func
	view     *core.RateView

	// All-placed welfare optimum, memoised on first use exactly like
	// core.Game's (written once under optOnce, read lock-free after).
	optOnce  sync.Once
	optVal   float64
	optLoads []int
}

// NewGame validates budgets (1 <= k_i <= channels) and builds a game.
func NewGame(channels int, budgets []int, rate ratefn.Func) (*Game, error) {
	if channels < 1 {
		return nil, fmt.Errorf("hetero: channels = %d, want >= 1", channels)
	}
	if len(budgets) == 0 {
		return nil, fmt.Errorf("hetero: no users")
	}
	for i, k := range budgets {
		if k < 1 {
			return nil, fmt.Errorf("hetero: user %d budget %d, want >= 1", i, k)
		}
		if k > channels {
			return nil, fmt.Errorf("hetero: user %d budget %d exceeds %d channels", i, k, channels)
		}
	}
	if rate == nil {
		return nil, fmt.Errorf("hetero: nil rate function")
	}
	total, maxBudget := 0, 0
	for _, k := range budgets {
		total += k
		if k > maxBudget {
			maxBudget = k
		}
	}
	return &Game{
		channels: channels,
		budgets:  append([]int(nil), budgets...),
		rate:     rate,
		view:     core.NewRateView(rate, total, maxBudget),
	}, nil
}

// Users returns |N|.
func (g *Game) Users() int { return len(g.budgets) }

// Channels returns |C|.
func (g *Game) Channels() int { return g.channels }

// Budget returns k_i.
func (g *Game) Budget(i int) int { return g.budgets[i] }

// Budgets returns a copy of the budget vector.
func (g *Game) Budgets() []int { return append([]int(nil), g.budgets...) }

// Rate returns the rate function.
func (g *Game) Rate() ratefn.Func { return g.rate }

// View returns the game's precomputed rate view (shared read-only).
func (g *Game) View() *core.RateView { return g.view }

// NewEmptyAlloc returns an all-zero allocation with this game's dimensions.
func (g *Game) NewEmptyAlloc() *core.Alloc {
	a, err := core.NewAlloc(g.Users(), g.channels)
	if err != nil {
		panic("hetero: invalid game dimensions: " + err.Error())
	}
	return a
}

// CheckAlloc verifies dimensions and per-user budgets.
func (g *Game) CheckAlloc(a *core.Alloc) error {
	if a == nil {
		return fmt.Errorf("hetero: nil allocation")
	}
	if a.Users() != g.Users() || a.Channels() != g.channels {
		return fmt.Errorf("hetero: allocation is %dx%d, game is %dx%d",
			a.Users(), a.Channels(), g.Users(), g.channels)
	}
	for i := 0; i < g.Users(); i++ {
		if total := a.UserTotal(i); total > g.budgets[i] {
			return fmt.Errorf("hetero: user %d deploys %d radios, budget is %d", i, total, g.budgets[i])
		}
	}
	return nil
}

// Utility computes U_i per the paper's Eq. 3 (table-backed rates).
func (g *Game) Utility(a *core.Alloc, i int) float64 {
	return g.view.UtilityOf(a, i)
}

// Utilities computes every user's utility.
func (g *Game) Utilities(a *core.Alloc) []float64 {
	out := make([]float64, a.Users())
	for i := range out {
		out[i] = g.Utility(a, i)
	}
	return out
}

// UtilitiesInto is Utilities into the workspace's reusable buffer: zero
// steady-state allocations; the returned slice aliases ws.
func (g *Game) UtilitiesInto(ws *core.Workspace, a *core.Alloc) []float64 {
	return g.view.UtilitiesInto(ws, a)
}

// Welfare computes Σ_{c : k_c > 0} R(k_c) = Σ_i U_i.
func (g *Game) Welfare(a *core.Alloc) float64 {
	var w float64
	for c := 0; c < a.Channels(); c++ {
		if kc := a.Load(c); kc > 0 {
			w += g.view.RateAt(kc)
		}
	}
	return w
}

// Potential evaluates the exact congestion potential
// Φ(S) = Σ_c Σ_{j=1}^{k_c} R(j)/j via the precomputed rate table, in the
// same term order (and hence bit-identical) as dynamics.Potential with the
// game's own rate function. The potential argument is budget-free, so the
// uniform game's monotonicity guarantees carry over unchanged.
func (g *Game) Potential(a *core.Alloc) float64 {
	var phi float64
	for c := 0; c < a.Channels(); c++ {
		for j := 1; j <= a.Load(c); j++ {
			phi += g.view.RateAt(j) / float64(j)
		}
	}
	return phi
}

// BestResponse computes user i's optimal reallocation within its budget.
// One-shot form of BestResponseInto.
func (g *Game) BestResponse(a *core.Alloc, i int) ([]int, float64, error) {
	if err := g.CheckAlloc(a); err != nil {
		return nil, 0, err
	}
	row, val, err := g.BestResponseInto(core.NewWorkspace(), a, i)
	if err != nil {
		return nil, 0, err
	}
	return append([]int(nil), row...), val, nil
}

// BestResponseInto is the allocation-free best response: the DP runs in the
// caller's workspace and the returned row aliases it. The allocation is not
// re-validated.
func (g *Game) BestResponseInto(ws *core.Workspace, a *core.Alloc, i int) ([]int, float64, error) {
	if ws == nil {
		return nil, 0, fmt.Errorf("hetero: nil workspace")
	}
	if i < 0 || i >= g.Users() {
		return nil, 0, fmt.Errorf("hetero: user %d out of range [0, %d)", i, g.Users())
	}
	row, val := g.view.BestResponseAllocInto(ws, a, i, g.budgets[i])
	return row, val, nil
}

// FindDeviation returns a profitable unilateral deviation, or nil when a is
// a Nash equilibrium within eps.
func (g *Game) FindDeviation(a *core.Alloc, eps float64) (*core.Deviation, error) {
	if eps < 0 {
		return nil, fmt.Errorf("hetero: negative tolerance %v", eps)
	}
	if err := g.CheckAlloc(a); err != nil {
		return nil, err
	}
	return g.FindDeviationWith(core.NewWorkspace(), a, eps)
}

// FindDeviationWith is FindDeviation in the caller's workspace: zero
// allocations unless a deviation is found; the allocation is not
// re-validated.
func (g *Game) FindDeviationWith(ws *core.Workspace, a *core.Alloc, eps float64) (*core.Deviation, error) {
	for i := 0; i < g.Users(); i++ {
		current := g.Utility(a, i)
		row, best, err := g.BestResponseInto(ws, a, i)
		if err != nil {
			return nil, err
		}
		if best > current+eps {
			return &core.Deviation{
				User:    i,
				Current: a.Row(i),
				Better:  append([]int(nil), row...),
				Gain:    best - current,
			}, nil
		}
	}
	return nil, nil
}

// IsNashEquilibrium decides NE membership with the exact best-response
// oracle at tolerance core.DefaultEps.
func (g *Game) IsNashEquilibrium(a *core.Alloc) (bool, error) {
	if err := g.CheckAlloc(a); err != nil {
		return false, err
	}
	return g.IsNashEquilibriumWith(core.NewWorkspace(), a)
}

// IsNashEquilibriumWith decides NE membership in the caller's workspace
// via the shared screen-then-prove oracle (core.RateView.ScreenedNE) with
// per-user budgets: identical verdict to IsNashEquilibrium, zero
// steady-state allocations. The allocation is not re-validated.
func (g *Game) IsNashEquilibriumWith(ws *core.Workspace, a *core.Alloc) (bool, error) {
	if ws == nil {
		return false, fmt.Errorf("hetero: nil workspace")
	}
	return g.view.ScreenedNE(ws, a, 0, g.budgets, core.DefaultEps), nil
}

// Algorithm1 runs the paper's sequential greedy allocation with per-user
// budgets: users place their radios in index order, each radio on a least
// loaded channel (preferring channels the user does not occupy yet).
func Algorithm1(g *Game, tie core.TieBreak, seed uint64) (*core.Alloc, error) {
	if tie == 0 {
		tie = core.TieFirst
	}
	a := g.NewEmptyAlloc()
	placer := core.Placer{Tie: tie, RNG: des.NewRNG(seed)}
	for i := 0; i < g.Users(); i++ {
		row, err := placer.Place(a.Loads(), g.budgets[i])
		if err != nil {
			return nil, fmt.Errorf("hetero: algorithm1 user %d: %w", i, err)
		}
		if err := a.SetRow(i, row); err != nil {
			return nil, fmt.Errorf("hetero: algorithm1 applying row for user %d: %w", i, err)
		}
	}
	return a, nil
}

// allPlacedOptimum computes the all-placed welfare optimum once per game
// and serves the memo afterwards. The returned slice is the memo itself —
// callers must not mutate it (OptimalWelfareAllPlaced copies).
func (g *Game) allPlacedOptimum() (float64, []int) {
	g.optOnce.Do(func() {
		total := 0
		for _, k := range g.budgets {
			total += k
		}
		val, loads := core.OptimalLoadWelfareInto(core.NewWorkspace(), g.view.Frozen(), g.channels, total)
		g.optVal = val
		g.optLoads = append([]int(nil), loads...)
	})
	return g.optVal, g.optLoads
}

// OptimalWelfareAllPlaced computes the maximum achievable total rate over
// load vectors that place all Σ_i k_i radios — the heterogeneous analogue
// of the uniform-budget all-placed welfare benchmark (full deployment
// remains necessary for NE under positive constant rates, so this is the
// natural denominator for a heterogeneous price of anarchy). It returns the
// optimum and one optimising load vector (a fresh copy); the DP runs once
// per game and is memoised.
func OptimalWelfareAllPlaced(g *Game) (float64, []int) {
	opt, loads := g.allPlacedOptimum()
	return opt, append([]int(nil), loads...)
}

// OptimalWelfareIdleAllowed computes the maximum total rate when radios may
// be left idle: light up min(|C|, Σ_i k_i) channels with one radio each
// (R is non-increasing with R(1) maximal).
func OptimalWelfareIdleAllowed(g *Game) (float64, []int) {
	total := 0
	for _, k := range g.budgets {
		total += k
	}
	lit := g.channels
	if total < lit {
		lit = total
	}
	loads := make([]int, g.channels)
	for c := 0; c < lit; c++ {
		loads[c] = 1
	}
	return float64(lit) * g.rate.Rate(1), loads
}

// PriceOfAnarchy returns Welfare(a) / OptimalWelfareAllPlaced — 1 means the
// allocation is system-optimal among full deployments. Errors on a
// degenerate (non-positive) optimum.
func PriceOfAnarchy(g *Game, a *core.Alloc) (float64, error) {
	opt, _ := g.allPlacedOptimum()
	if opt <= 0 {
		return 0, fmt.Errorf("hetero: degenerate optimum %v; rate function is zero everywhere", opt)
	}
	return g.Welfare(a) / opt, nil
}

// LoadBalanced reports whether max and min channel loads differ by at most
// one (the generalised Proposition 1 property).
func LoadBalanced(a *core.Alloc) bool {
	maxLoad, _ := a.MaxLoad()
	minLoad, _ := a.MinLoad()
	return maxLoad-minLoad <= 1
}

// FullDeployment reports whether every user uses its whole budget (the
// generalised Lemma 1 property).
func (g *Game) FullDeployment(a *core.Alloc) bool {
	for i := 0; i < g.Users(); i++ {
		if a.UserTotal(i) != g.budgets[i] {
			return false
		}
	}
	return true
}

// strategyRowsPerUser materialises every user's legal strategy rows (all
// radio vectors with total between 0 and k_i). Equal-budget users receive
// the SAME table slice, which is the exchangeability contract of the
// symmetry-reduced enumerator and also trims redundant composition walks.
func strategyRowsPerUser(g *Game) ([][][]int, error) {
	byBudget := make(map[int][][]int, 4)
	rowsPerUser := make([][][]int, g.Users())
	for i := 0; i < g.Users(); i++ {
		if rows, ok := byBudget[g.budgets[i]]; ok {
			rowsPerUser[i] = rows
			continue
		}
		var rows [][]int
		for total := 0; total <= g.budgets[i]; total++ {
			err := combin.Compositions(total, g.channels, func(row []int) bool {
				rows = append(rows, append([]int(nil), row...))
				return true
			})
			if err != nil {
				return nil, err
			}
		}
		byBudget[g.budgets[i]] = rows
		rowsPerUser[i] = rows
	}
	return rowsPerUser, nil
}

// checkProfileCap guards the FULL (unreduced) profile count against
// maxProfiles. Divide-based: multiplying first could overflow int64 for
// huge per-user strategy counts (see core.checkProfileCap).
func checkProfileCap(rowsPerUser [][][]int, maxProfiles int64) error {
	totalProfiles := int64(1)
	for _, rows := range rowsPerUser {
		if totalProfiles > maxProfiles/int64(len(rows)) {
			return fmt.Errorf("hetero: strategy space too large (> %d profiles)", maxProfiles)
		}
		totalProfiles *= int64(len(rows))
	}
	if totalProfiles > maxProfiles {
		return fmt.Errorf("hetero: strategy space has %d profiles, cap is %d", totalProfiles, maxProfiles)
	}
	return nil
}

// orbitEnumerator builds the shared symmetry-reduction engine (see
// core.OrbitEnumerator): exchangeability classes are the equal-budget user
// groups, which in a mixed-budget game need not be contiguous.
func (g *Game) orbitEnumerator(rowsPerUser [][][]int) *core.OrbitEnumerator {
	return &core.OrbitEnumerator{
		View:      g.view,
		Channels:  g.channels,
		Budgets:   g.budgets,
		RowsFor:   func(u int) [][]int { return rowsPerUser[u] },
		Eps:       core.DefaultEps,
		ErrPrefix: "hetero",
	}
}

// ForEachAlloc enumerates every legal strategy matrix (budgets respected,
// idle radios allowed), guarded by maxProfiles, calling fn with a reused
// Alloc that fn must treat as read-only. The walk is odometer-aware: only
// rows whose digit changed between consecutive profiles are re-set.
// Exponential: exhaustive oracles on tiny instances only.
func ForEachAlloc(g *Game, maxProfiles int64, fn func(*core.Alloc) bool) error {
	rowsPerUser, err := strategyRowsPerUser(g)
	if err != nil {
		return err
	}
	if err := checkProfileCap(rowsPerUser, maxProfiles); err != nil {
		return err
	}
	sizes := make([]int, g.Users())
	for i, rows := range rowsPerUser {
		sizes[i] = len(rows)
	}
	a := g.NewEmptyAlloc()
	return core.ProductWalk(a, 0, sizes, func(u, ri int) []int { return rowsPerUser[u][ri] }, "hetero", fn)
}

// EnumerateNECanonical enumerates Nash equilibria over canonical orbit
// representatives only: users of equal budget are exchangeable, so one
// representative per orbit (row indices non-decreasing along each budget
// class) is tested and returned with its orbit size. The profile cap
// guards the full unreduced space, keeping refusal behaviour identical to
// ForEachAlloc/EnumerateNE.
func EnumerateNECanonical(g *Game, maxProfiles int64) ([]core.CanonicalNE, error) {
	rowsPerUser, err := strategyRowsPerUser(g)
	if err != nil {
		return nil, err
	}
	if err := checkProfileCap(rowsPerUser, maxProfiles); err != nil {
		return nil, err
	}
	return g.orbitEnumerator(rowsPerUser).Canonical()
}

// ExpandNEOrbits reconstructs the unreduced EnumerateNE output (every
// orbit member, odometer order) from canonical representatives.
func ExpandNEOrbits(g *Game, reps []core.CanonicalNE) ([]*core.Alloc, error) {
	rowsPerUser, err := strategyRowsPerUser(g)
	if err != nil {
		return nil, err
	}
	return g.orbitEnumerator(rowsPerUser).Expand(reps)
}

// EnumerateNE collects every exact Nash equilibrium of a tiny game
// (identical results and order to walking the full grid and checking
// IsNashEquilibrium per profile). Like core.EnumerateNE the search is
// symmetry-reduced over budget classes and the full set reconstructed by
// orbit expansion.
func EnumerateNE(g *Game, maxProfiles int64) ([]*core.Alloc, error) {
	reps, err := EnumerateNECanonical(g, maxProfiles)
	if err != nil {
		return nil, err
	}
	return ExpandNEOrbits(g, reps)
}

// FindParetoImprovement searches for an allocation dominating a (nobody
// hurt beyond eps, somebody strictly better than eps) and returns nil when
// a is Pareto-optimal over the full strategy space. Like the uniform-game
// search it is symmetry-reduced over budget classes: canonical orbit
// representatives are walked and each orbit decided by one per-class
// utility matching test (see core.OrbitEnumerator.ParetoImprovement). The
// profile cap guards the full unreduced space.
func FindParetoImprovement(g *Game, a *core.Alloc, eps float64, maxProfiles int64) (*core.Alloc, error) {
	if err := g.CheckAlloc(a); err != nil {
		return nil, err
	}
	rowsPerUser, err := strategyRowsPerUser(g)
	if err != nil {
		return nil, err
	}
	if err := checkProfileCap(rowsPerUser, maxProfiles); err != nil {
		return nil, err
	}
	return g.orbitEnumerator(rowsPerUser).ParetoImprovement(g.Utilities(a), eps)
}

// FindParetoImprovementUnreduced is the direct grid Pareto search over
// every profile, bailing on the first hurt user — the differential
// baseline for the orbit-aware FindParetoImprovement.
func FindParetoImprovementUnreduced(g *Game, a *core.Alloc, eps float64, maxProfiles int64) (*core.Alloc, error) {
	if err := g.CheckAlloc(a); err != nil {
		return nil, err
	}
	base := g.Utilities(a)
	var found *core.Alloc
	err := ForEachAlloc(g, maxProfiles, func(b *core.Alloc) bool {
		strict := false
		for i := range base {
			u := g.view.UtilityOf(b, i)
			if u < base[i]-eps {
				return true // someone is hurt; keep searching
			}
			if u > base[i]+eps {
				strict = true
			}
		}
		if strict {
			found = b.Clone()
			return false
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return found, nil
}
