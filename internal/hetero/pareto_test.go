package hetero

import (
	"testing"

	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

func paretoRates(t *testing.T) []ratefn.Func {
	t.Helper()
	table, err := ratefn.NewTable("meas", []float64{5, 5, 3.5, 2.25, 2.25, 1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return []ratefn.Func{
		ratefn.NewTDMA(1),
		ratefn.Harmonic{R0: 2, Alpha: 0.6},
		table,
	}
}

// TestHeteroParetoOrbitAgreesWithUnreduced cross-checks the orbit-aware
// Pareto search against the direct grid walk on every profile of small
// mixed-budget games, including a deployment whose exchangeability class is
// non-contiguous (budgets [2 1 2]: users 0 and 2 share a class around
// user 1).
func TestHeteroParetoOrbitAgreesWithUnreduced(t *testing.T) {
	cases := []struct {
		channels int
		budgets  []int
	}{
		{2, []int{1, 2}},
		{2, []int{1, 1, 2}},
		{3, []int{2, 1, 2}},
	}
	for _, rate := range paretoRates(t) {
		for _, tc := range cases {
			g, err := NewGame(tc.channels, tc.budgets, rate)
			if err != nil {
				t.Fatal(err)
			}
			var bases []*core.Alloc
			if err := ForEachAlloc(g, 5_000_000, func(b *core.Alloc) bool {
				bases = append(bases, b.Clone())
				return true
			}); err != nil {
				t.Fatal(err)
			}
			for _, a := range bases {
				want, err := FindParetoImprovementUnreduced(g, a, core.DefaultEps, 5_000_000)
				if err != nil {
					t.Fatal(err)
				}
				got, err := FindParetoImprovement(g, a, core.DefaultEps, 5_000_000)
				if err != nil {
					t.Fatal(err)
				}
				if (want == nil) != (got == nil) {
					t.Fatalf("%s %v/%d: orbit search found %v, unreduced found %v for base\n%v",
						rate.Name(), tc.budgets, tc.channels, got != nil, want != nil, a)
				}
				if got == nil {
					continue
				}
				if err := g.CheckAlloc(got); err != nil {
					t.Fatalf("%s %v/%d: witness is not a legal allocation: %v",
						rate.Name(), tc.budgets, tc.channels, err)
				}
				base := g.Utilities(a)
				strict := false
				for i := range base {
					u := g.Utility(got, i)
					if u < base[i]-core.DefaultEps {
						t.Fatalf("%s %v/%d: witness hurts user %d: %v < %v\n%v",
							rate.Name(), tc.budgets, tc.channels, i, u, base[i], got)
					}
					if u > base[i]+core.DefaultEps {
						strict = true
					}
				}
				if !strict {
					t.Fatalf("%s %v/%d: witness improves nobody strictly\n%v",
						rate.Name(), tc.budgets, tc.channels, got)
				}
			}
		}
	}
}

// TestHeteroWelfareMemo: the heterogeneous game memoises its all-placed
// optimum like the uniform game — the returned loads are copies and the
// price of anarchy is stable under repetition.
func TestHeteroWelfareMemo(t *testing.T) {
	g, err := NewGame(3, []int{2, 1, 2}, ratefn.Harmonic{R0: 1, Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantVal, wantLoads := core.OptimalLoadWelfare(g.View().Frozen(), g.Channels(), 5)
	opt1, loads1 := OptimalWelfareAllPlaced(g)
	if opt1 != wantVal {
		t.Fatalf("memoised optimum %v, direct DP %v", opt1, wantVal)
	}
	loads1[0] = 99
	opt2, loads2 := OptimalWelfareAllPlaced(g)
	if opt2 != wantVal {
		t.Fatalf("second call optimum %v, want %v", opt2, wantVal)
	}
	for c := range wantLoads {
		if loads2[c] != wantLoads[c] {
			t.Fatalf("memo loads corrupted: %v, want %v", loads2, wantLoads)
		}
	}
	ne, err := Algorithm1(g, core.TieFirst, 1)
	if err != nil {
		t.Fatal(err)
	}
	first, err := PriceOfAnarchy(g, ne)
	if err != nil {
		t.Fatal(err)
	}
	again, err := PriceOfAnarchy(g, ne)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatalf("PoA changed between calls: %v then %v", first, again)
	}
}
