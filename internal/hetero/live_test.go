package hetero

import (
	"testing"

	"github.com/multiradio/chanalloc/internal/ratefn"
)

func mustLive(t *testing.T, channels int) *LiveGame {
	t.Helper()
	lg, err := NewLiveGame(channels, ratefn.NewTDMA(54))
	if err != nil {
		t.Fatal(err)
	}
	return lg
}

// checkConsistent audits every invariant the mutations promise to keep:
// id↔row maps inverse, budgets respected and fully deployed, loads equal
// column sums, and the frozen snapshot agreeing with the live state.
func checkConsistent(t *testing.T, lg *LiveGame) {
	t.Helper()
	if len(lg.ids) != lg.Users() || len(lg.budgets) != lg.Users() || len(lg.rowOf) != lg.Users() {
		t.Fatalf("bookkeeping sizes diverge: ids=%d budgets=%d rowOf=%d users=%d",
			len(lg.ids), len(lg.budgets), len(lg.rowOf), lg.Users())
	}
	for row, id := range lg.ids {
		got, ok := lg.RowOf(id)
		if !ok || got != row {
			t.Fatalf("id %d maps to row %d/%v, dense slot says %d", id, got, ok, row)
		}
	}
	a := lg.Alloc()
	if lg.Users() == 0 {
		if a != nil {
			t.Fatal("empty game keeps a non-nil allocation")
		}
		return
	}
	if a.Users() != lg.Users() {
		t.Fatalf("alloc has %d rows, game %d users", a.Users(), lg.Users())
	}
	for i := 0; i < lg.Users(); i++ {
		if a.UserTotal(i) != lg.budgets[i] {
			t.Fatalf("row %d deploys %d radios, budget %d", i, a.UserTotal(i), lg.budgets[i])
		}
	}
	for c := 0; c < lg.Channels(); c++ {
		sum := 0
		for i := 0; i < lg.Users(); i++ {
			sum += a.Radios(i, c)
		}
		if sum != a.Load(c) {
			t.Fatalf("channel %d load %d, column sum %d", c, a.Load(c), sum)
		}
	}
	g := lg.Frozen()
	if g == nil {
		t.Fatal("non-empty game froze to nil")
	}
	if err := g.CheckAlloc(a); err != nil {
		t.Fatalf("frozen game rejects live allocation: %v", err)
	}
}

func TestLiveGameJoinLeaveBudget(t *testing.T) {
	lg := mustLive(t, 4)
	id1, err := lg.Join(2)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := lg.Join(3)
	if err != nil {
		t.Fatal(err)
	}
	id3, err := lg.Join(1)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != 1 || id2 != 2 || id3 != 3 {
		t.Fatalf("ids = %d,%d,%d, want 1,2,3", id1, id2, id3)
	}
	checkConsistent(t, lg)
	if got := lg.Alloc().TotalRadios(); got != 6 {
		t.Fatalf("total radios = %d, want 6", got)
	}

	// Departure compacts with swap-with-last: id3 moves into id1's row.
	if err := lg.Leave(id1); err != nil {
		t.Fatal(err)
	}
	checkConsistent(t, lg)
	if row, ok := lg.RowOf(id3); !ok || row != 0 {
		t.Fatalf("after leave, id3 at row %d/%v, want 0", row, ok)
	}
	if _, ok := lg.RowOf(id1); ok {
		t.Fatal("departed id1 still mapped")
	}
	if err := lg.Leave(id1); err == nil {
		t.Fatal("double leave succeeded")
	}

	// Budget change keeps full deployment at the new budget.
	if err := lg.SetBudget(id2, 1); err != nil {
		t.Fatal(err)
	}
	checkConsistent(t, lg)
	if k, _ := lg.BudgetOf(id2); k != 1 {
		t.Fatalf("budget of id2 = %d, want 1", k)
	}
	if err := lg.SetBudget(id2, 4); err != nil {
		t.Fatal(err)
	}
	checkConsistent(t, lg)
	if got := lg.Alloc().TotalRadios(); got != 5 {
		t.Fatalf("total radios = %d, want 5", got)
	}

	// Validation errors leave state untouched.
	gen := lg.Generation()
	if err := lg.SetBudget(id2, 0); err == nil {
		t.Fatal("budget 0 accepted")
	}
	if err := lg.SetBudget(id2, 5); err == nil {
		t.Fatal("budget above channels accepted")
	}
	if _, err := lg.Join(0); err == nil {
		t.Fatal("join budget 0 accepted")
	}
	if _, err := lg.Join(9); err == nil {
		t.Fatal("join budget above channels accepted")
	}
	if lg.Generation() != gen {
		t.Fatal("failed mutations bumped the generation")
	}
	checkConsistent(t, lg)

	// Drain to empty and come back.
	if err := lg.Leave(id2); err != nil {
		t.Fatal(err)
	}
	if err := lg.Leave(id3); err != nil {
		t.Fatal(err)
	}
	checkConsistent(t, lg)
	if lg.Frozen() != nil {
		t.Fatal("empty game froze to a game")
	}
	if _, err := lg.Join(4); err != nil {
		t.Fatal(err)
	}
	checkConsistent(t, lg)
}

func TestLiveGameChurnRecord(t *testing.T) {
	lg := mustLive(t, 3)
	id1, _ := lg.Join(2) // seeds channels 0,1
	ch := lg.TakeChurn()
	if !ch.Dirty[0] || !ch.Dirty[1] || ch.Dirty[2] {
		t.Fatalf("join dirty = %v, want channels 0,1", ch.Dirty)
	}
	if ch.Decreased {
		t.Fatal("pure join reported a load decrease")
	}
	if !ch.Suspects[id1] || ch.Events != 1 {
		t.Fatalf("join churn = %+v, want suspect id1, 1 event", ch)
	}

	// TakeChurn reset: nothing pending.
	ch = lg.TakeChurn()
	if ch.Events != 0 || ch.Decreased || len(ch.Suspects) != 0 {
		t.Fatalf("churn after take = %+v, want empty", ch)
	}

	id2, _ := lg.Join(1)
	if err := lg.Leave(id2); err != nil {
		t.Fatal(err)
	}
	ch = lg.TakeChurn()
	if !ch.Decreased {
		t.Fatal("leave did not set Decreased")
	}
	if ch.Suspects[id2] {
		t.Fatal("departed user still a suspect")
	}
	if ch.Events != 2 {
		t.Fatalf("events = %d, want 2", ch.Events)
	}

	// Budget shrink decreases loads; growth alone does not.
	if err := lg.SetBudget(id1, 3); err != nil {
		t.Fatal(err)
	}
	ch = lg.TakeChurn()
	if ch.Decreased || !ch.Suspects[id1] {
		t.Fatalf("budget grow churn = %+v", ch)
	}
	if err := lg.SetBudget(id1, 1); err != nil {
		t.Fatal(err)
	}
	ch = lg.TakeChurn()
	if !ch.Decreased || !ch.Suspects[id1] {
		t.Fatalf("budget shrink churn = %+v", ch)
	}
	// No-op budget set: no event, no suspects.
	if err := lg.SetBudget(id1, 1); err != nil {
		t.Fatal(err)
	}
	if lg.PendingEvents() != 0 {
		t.Fatal("no-op budget change recorded an event")
	}
}

// TestLiveGameFrozenMemo pins the generation-counter semantics: one frozen
// snapshot per generation, a fresh welfare memo after every mutation.
func TestLiveGameFrozenMemo(t *testing.T) {
	lg := mustLive(t, 3)
	if _, err := lg.Join(2); err != nil {
		t.Fatal(err)
	}
	g1 := lg.Frozen()
	if g2 := lg.Frozen(); g2 != g1 {
		t.Fatal("same-generation Frozen rebuilt the snapshot")
	}
	opt1, _ := OptimalWelfareAllPlaced(g1)
	if _, err := lg.Join(2); err != nil {
		t.Fatal(err)
	}
	g2 := lg.Frozen()
	if g2 == g1 {
		t.Fatal("mutation did not invalidate the frozen snapshot")
	}
	opt2, _ := OptimalWelfareAllPlaced(g2)
	if opt2 <= opt1 {
		t.Fatalf("all-placed optimum did not grow with the population: %v -> %v", opt1, opt2)
	}

	// The snapshot agrees with a from-scratch game on utilities and the
	// welfare optimum (the view's larger domain must not show).
	ref, err := NewGame(lg.Channels(), lg.Budgets(), lg.Rate())
	if err != nil {
		t.Fatal(err)
	}
	a := lg.Alloc()
	for i := 0; i < lg.Users(); i++ {
		if got, want := g2.Utility(a, i), ref.Utility(a, i); got != want {
			t.Fatalf("user %d utility %v via live view, %v via fresh game", i, got, want)
		}
	}
	refOpt, _ := OptimalWelfareAllPlaced(ref)
	if opt2 != refOpt {
		t.Fatalf("welfare optimum %v via live view, %v via fresh game", opt2, refOpt)
	}
}

// TestLiveGameViewGrowth drives enough joins to force several view
// rebuilds and checks utilities stay identical to a fresh game at each
// population size.
func TestLiveGameViewGrowth(t *testing.T) {
	lg := mustLive(t, 5)
	for n := 0; n < 30; n++ {
		if _, err := lg.Join(1 + n%4); err != nil {
			t.Fatal(err)
		}
		checkConsistent(t, lg)
	}
	ref, err := NewGame(lg.Channels(), lg.Budgets(), lg.Rate())
	if err != nil {
		t.Fatal(err)
	}
	a := lg.Alloc()
	g := lg.Frozen()
	for i := 0; i < lg.Users(); i++ {
		if got, want := g.Utility(a, i), ref.Utility(a, i); got != want {
			t.Fatalf("user %d utility drifted after view growth: %v vs %v", i, got, want)
		}
	}
	if got, want := g.Welfare(a), ref.Welfare(a); got != want {
		t.Fatalf("welfare drifted after view growth: %v vs %v", got, want)
	}
	if got, want := g.Potential(a), ref.Potential(a); got != want {
		t.Fatalf("potential drifted after view growth: %v vs %v", got, want)
	}
}
