package hetero

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/des"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

func mustGame(t *testing.T, channels int, budgets []int, r ratefn.Func) *Game {
	t.Helper()
	g, err := NewGame(channels, budgets, r)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGameValidation(t *testing.T) {
	r := ratefn.NewTDMA(1)
	if _, err := NewGame(0, []int{1}, r); err == nil {
		t.Error("zero channels should error")
	}
	if _, err := NewGame(3, nil, r); err == nil {
		t.Error("no users should error")
	}
	if _, err := NewGame(3, []int{0}, r); err == nil {
		t.Error("zero budget should error")
	}
	if _, err := NewGame(3, []int{4}, r); err == nil {
		t.Error("budget > channels should error")
	}
	if _, err := NewGame(3, []int{2}, nil); err == nil {
		t.Error("nil rate should error")
	}
}

func TestAccessors(t *testing.T) {
	g := mustGame(t, 4, []int{3, 1, 2}, ratefn.NewTDMA(1))
	if g.Users() != 3 || g.Channels() != 4 {
		t.Fatalf("dims %dx%d", g.Users(), g.Channels())
	}
	if g.Budget(0) != 3 || g.Budget(1) != 1 || g.Budget(2) != 2 {
		t.Fatal("budgets wrong")
	}
	budgets := g.Budgets()
	budgets[0] = 99
	if g.Budget(0) == 99 {
		t.Fatal("Budgets returned aliased storage")
	}
}

func TestCheckAllocBudgets(t *testing.T) {
	g := mustGame(t, 3, []int{2, 1}, ratefn.NewTDMA(1))
	ok, err := core.AllocFromMatrix([][]int{
		{1, 1, 0},
		{0, 0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckAlloc(ok); err != nil {
		t.Fatalf("legal alloc rejected: %v", err)
	}
	over, err := core.AllocFromMatrix([][]int{
		{1, 1, 0},
		{1, 0, 1}, // budget 1, deploys 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckAlloc(over); err == nil {
		t.Fatal("over-budget user not rejected")
	}
	if err := g.CheckAlloc(nil); err == nil {
		t.Fatal("nil alloc not rejected")
	}
}

func TestUtilityMatchesUniformCore(t *testing.T) {
	// With equal budgets the hetero game must agree with core exactly.
	budgets := []int{4, 4, 4, 4}
	hg := mustGame(t, 5, budgets, ratefn.NewTDMA(1))
	cg, err := core.NewGame(4, 5, 4, ratefn.NewTDMA(1))
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.AllocFromMatrix([][]int{
		{1, 1, 1, 1, 0},
		{1, 0, 1, 0, 1},
		{1, 2, 0, 1, 0},
		{1, 0, 0, 1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if math.Abs(hg.Utility(a, i)-cg.Utility(a, i)) > 1e-12 {
			t.Errorf("u%d: hetero %v vs core %v", i+1, hg.Utility(a, i), cg.Utility(a, i))
		}
	}
	if math.Abs(hg.Welfare(a)-cg.Welfare(a)) > 1e-12 {
		t.Error("welfare mismatch with core")
	}
}

func TestUtilitySumEqualsWelfare(t *testing.T) {
	g := mustGame(t, 4, []int{3, 1, 2}, ratefn.Harmonic{R0: 2, Alpha: 0.5})
	a, err := Algorithm1(g, core.TieFirst, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := 0; i < g.Users(); i++ {
		sum += g.Utility(a, i)
	}
	if math.Abs(sum-g.Welfare(a)) > 1e-9 {
		t.Fatalf("ΣU = %v, welfare = %v", sum, g.Welfare(a))
	}
}

func TestAlgorithm1HeteroIsNE(t *testing.T) {
	// E11 headline: sequential greedy with heterogeneous budgets still
	// lands on exact Nash equilibria, across rate shapes and random budget
	// mixes.
	rates := []ratefn.Func{
		ratefn.NewTDMA(1),
		ratefn.Harmonic{R0: 1, Alpha: 0.5},
		ratefn.Geometric{R0: 1, Beta: 0.7},
	}
	for _, r := range rates {
		for seed := uint64(0); seed < 20; seed++ {
			rng := des.NewRNG(seed)
			channels := 2 + rng.Intn(5)
			users := 1 + rng.Intn(5)
			budgets := make([]int, users)
			for i := range budgets {
				budgets[i] = 1 + rng.Intn(channels)
			}
			g := mustGame(t, channels, budgets, r)
			a, err := Algorithm1(g, core.TieRandom, seed)
			if err != nil {
				t.Fatal(err)
			}
			if !g.FullDeployment(a) {
				t.Fatalf("%s seed %d: not full deployment", r.Name(), seed)
			}
			ne, err := g.IsNashEquilibrium(a)
			if err != nil {
				t.Fatal(err)
			}
			if !ne {
				dev, _ := g.FindDeviation(a, core.DefaultEps)
				t.Fatalf("%s seed %d budgets %v: not NE: %v\n%v", r.Name(), seed, budgets, dev, a)
			}
		}
	}
}

func TestHeteroNEPropertiesExhaustive(t *testing.T) {
	// Generalised Lemma 1 and Proposition 1: on tiny heterogeneous games
	// with positive constant rate, every exact NE deploys all budgets and
	// keeps channel loads within one.
	configs := []struct {
		channels int
		budgets  []int
	}{
		{2, []int{2, 1}},
		{3, []int{2, 1}},
		{3, []int{3, 1, 1}},
		{2, []int{2, 2, 1}},
	}
	for _, cfg := range configs {
		g := mustGame(t, cfg.channels, cfg.budgets, ratefn.NewTDMA(1))
		nes, err := EnumerateNE(g, 5_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if len(nes) == 0 {
			t.Fatalf("C=%d budgets %v: no NE", cfg.channels, cfg.budgets)
		}
		for _, ne := range nes {
			if !g.FullDeployment(ne) {
				t.Errorf("C=%d budgets %v: NE with idle radios:\n%v", cfg.channels, cfg.budgets, ne)
			}
			if !LoadBalanced(ne) {
				t.Errorf("C=%d budgets %v: unbalanced NE (δ>1):\n%v", cfg.channels, cfg.budgets, ne)
			}
		}
	}
}

func TestBestResponseRespectsBudget(t *testing.T) {
	f := func(seed uint64) bool {
		rng := des.NewRNG(seed)
		channels := 2 + rng.Intn(4)
		budgets := []int{1 + rng.Intn(channels), 1 + rng.Intn(channels)}
		g, err := NewGame(channels, budgets, ratefn.NewTDMA(1))
		if err != nil {
			return false
		}
		a, err := Algorithm1(g, core.TieFirst, 0)
		if err != nil {
			return false
		}
		for i := 0; i < g.Users(); i++ {
			row, _, err := g.BestResponse(a, i)
			if err != nil {
				return false
			}
			total := 0
			for _, x := range row {
				total += x
			}
			if total > g.Budget(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBestResponseErrors(t *testing.T) {
	g := mustGame(t, 3, []int{2, 1}, ratefn.NewTDMA(1))
	a := g.NewEmptyAlloc()
	if _, _, err := g.BestResponse(a, -1); err == nil {
		t.Error("bad user should error")
	}
	if _, _, err := g.BestResponse(a, 5); err == nil {
		t.Error("bad user should error")
	}
	wrong, err := core.NewAlloc(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.BestResponse(wrong, 0); err == nil {
		t.Error("mismatched alloc should error")
	}
	if _, err := g.FindDeviation(a, -1); err == nil {
		t.Error("negative eps should error")
	}
}

func TestForEachAllocCap(t *testing.T) {
	g := mustGame(t, 4, []int{4, 4, 4}, ratefn.NewTDMA(1))
	if err := ForEachAlloc(g, 10, func(*core.Alloc) bool { return true }); err == nil {
		t.Fatal("profile cap should trigger")
	}
}

func TestForEachAllocCount(t *testing.T) {
	// C=2, budgets (1,1): rows per user = 3 (empty, c1, c2) -> 9 profiles.
	g := mustGame(t, 2, []int{1, 1}, ratefn.NewTDMA(1))
	count := 0
	if err := ForEachAlloc(g, 100, func(*core.Alloc) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 9 {
		t.Fatalf("enumerated %d profiles, want 9", count)
	}
}

func TestMixedBudgetsFairness(t *testing.T) {
	// A user with twice the radios should earn roughly twice the rate at a
	// balanced NE under constant R (its radios sit on equally loaded
	// channels).
	g := mustGame(t, 6, []int{4, 2, 4, 2}, ratefn.NewTDMA(1))
	a, err := Algorithm1(g, core.TieFirst, 0)
	if err != nil {
		t.Fatal(err)
	}
	ne, err := g.IsNashEquilibrium(a)
	if err != nil {
		t.Fatal(err)
	}
	if !ne {
		t.Fatal("hetero Algorithm 1 output not NE")
	}
	u := g.Utilities(a)
	ratio := u[0] / u[1]
	if ratio < 1.5 || ratio > 2.5 {
		t.Fatalf("4-radio vs 2-radio utility ratio %v, want ~2", ratio)
	}
}

func TestAlgorithm1HeteroOrderMatters(t *testing.T) {
	// Placing the big-budget user first or last changes the matrix but not
	// the NE property.
	g := mustGame(t, 4, []int{4, 1, 1}, ratefn.NewTDMA(1))
	a, err := Algorithm1(g, core.TieFirst, 0)
	if err != nil {
		t.Fatal(err)
	}
	ne, err := g.IsNashEquilibrium(a)
	if err != nil {
		t.Fatal(err)
	}
	if !ne {
		t.Fatal("not NE with big user first")
	}
	gRev := mustGame(t, 4, []int{1, 1, 4}, ratefn.NewTDMA(1))
	aRev, err := Algorithm1(gRev, core.TieFirst, 0)
	if err != nil {
		t.Fatal(err)
	}
	ne, err = gRev.IsNashEquilibrium(aRev)
	if err != nil {
		t.Fatal(err)
	}
	if !ne {
		t.Fatal("not NE with big user last")
	}
}

func TestOptimalWelfareAllPlaced(t *testing.T) {
	// 4 channels, budgets 2+1+1 = 4 radios, constant R: the optimum spreads
	// one radio per channel, welfare 4·R(1).
	g := mustGame(t, 4, []int{2, 1, 1}, ratefn.NewTDMA(1))
	opt, loads := OptimalWelfareAllPlaced(g)
	if opt != 4 {
		t.Fatalf("optimum %v, want 4", opt)
	}
	placed := 0
	for _, l := range loads {
		placed += l
	}
	if placed != 4 {
		t.Fatalf("optimising loads place %d radios, want 4", placed)
	}
	// More radios than channels under sharp decay: the DP must still place
	// everything and agree with the uniform-budget DP on the same totals.
	h := ratefn.Harmonic{R0: 1, Alpha: 1}
	gh := mustGame(t, 3, []int{3, 2, 1}, h) // 6 radios over 3 channels
	optH, loadsH := OptimalWelfareAllPlaced(gh)
	gu, err := core.NewGame(3, 3, 2, h) // same 6 radios over 3 channels
	if err != nil {
		t.Fatal(err)
	}
	optU, _ := core.OptimalWelfareAllPlaced(gu)
	if optH != optU {
		t.Fatalf("hetero optimum %v disagrees with uniform DP %v on equal totals", optH, optU)
	}
	placed = 0
	for _, l := range loadsH {
		placed += l
	}
	if placed != 6 {
		t.Fatalf("optimising loads place %d radios, want 6", placed)
	}
}

func TestOptimalWelfareIdleAllowed(t *testing.T) {
	// 8 channels, 4 radios: light 4 channels.
	g := mustGame(t, 8, []int{2, 1, 1}, ratefn.NewTDMA(1))
	opt, loads := OptimalWelfareIdleAllowed(g)
	if opt != 4 {
		t.Fatalf("optimum %v, want 4", opt)
	}
	lit := 0
	for _, l := range loads {
		if l == 1 {
			lit++
		} else if l != 0 {
			t.Fatalf("idle-allowed loads must be 0/1, got %v", loads)
		}
	}
	if lit != 4 {
		t.Fatalf("%d channels lit, want 4", lit)
	}
	// 2 channels, 5 radios: every channel lit.
	g2 := mustGame(t, 2, []int{2, 2, 1}, ratefn.NewTDMA(1))
	if opt2, _ := OptimalWelfareIdleAllowed(g2); opt2 != 2 {
		t.Fatalf("optimum %v, want 2", opt2)
	}
}

func TestHeteroPriceOfAnarchy(t *testing.T) {
	// The sequential greedy NE is welfare-optimal under constant R whenever
	// total radios exceed channels (every channel stays lit).
	g := mustGame(t, 4, []int{4, 2, 1}, ratefn.NewTDMA(1))
	a, err := Algorithm1(g, core.TieFirst, 0)
	if err != nil {
		t.Fatal(err)
	}
	poa, err := PriceOfAnarchy(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if poa != 1 {
		t.Fatalf("constant-R PoA %v, want 1", poa)
	}
	// Under decaying R the NE stays within (0, 1] of the optimum.
	gh := mustGame(t, 4, []int{4, 2, 1}, ratefn.Harmonic{R0: 1, Alpha: 0.5})
	ah, err := Algorithm1(gh, core.TieFirst, 0)
	if err != nil {
		t.Fatal(err)
	}
	poaH, err := PriceOfAnarchy(gh, ah)
	if err != nil {
		t.Fatal(err)
	}
	if poaH <= 0 || poaH > 1 {
		t.Fatalf("harmonic PoA %v outside (0, 1]", poaH)
	}
}
