// Package dist implements the distributed channel-allocation protocol the
// paper lists as ongoing work (§3): a coordinator passes a token around the
// devices; the token holder learns the aggregate external load of every
// channel — the information carrier sensing would give it — and answers
// with the strategy row it wants to play. The ring keeps circulating until
// a full round passes with no device changing its row.
//
// Two device policies are provided:
//
//   - GreedyPolicy places its radios once, water-filling the announced
//     loads exactly like one iteration of the paper's Algorithm 1, and
//     keeps the row afterwards. When every device is greedy the protocol
//     reproduces the centralised Algorithm 1 run for run.
//   - BestResponsePolicy replays the exact best-response dynamic program
//     against the announced loads every time it holds the token and moves
//     whenever that strictly improves its utility. The game is a potential
//     game, so the ring converges to a Nash equilibrium.
//
// The wire protocol is newline-delimited JSON over any net.Conn; agents
// and coordinator may live in one process (RunLocal, over net.Pipe) or on
// real sockets (examples/distributed).
package dist

import (
	"fmt"

	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/des"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

// Policy chooses a device's strategy row when it holds the token.
type Policy interface {
	// Propose returns the row the device wants to play given the external
	// channel loads ext (its own radios excluded), its current row and its
	// radio budget. Returning a row equal to current counts as "no move".
	Propose(ext, current []int, radios int) ([]int, error)
}

// GreedyPolicy water-fills the announced loads once — the device-side view
// of Algorithm 1's per-user placement — and then keeps its row forever.
type GreedyPolicy struct {
	// Tie selects among equally loaded channels; the zero value is TieFirst,
	// matching Algorithm1's default.
	Tie core.TieBreak
	// Seed drives TieRandom.
	Seed uint64

	rng *des.RNG
}

// Propose implements Policy.
func (p *GreedyPolicy) Propose(ext, current []int, radios int) ([]int, error) {
	for _, v := range current {
		if v > 0 {
			return current, nil // already placed; Algorithm 1 is one-shot
		}
	}
	if p.rng == nil {
		p.rng = des.NewRNG(p.Seed)
	}
	placer := core.Placer{Tie: p.Tie, RNG: p.rng}
	return placer.Place(ext, radios)
}

// BestResponsePolicy plays an exact best response to the announced loads,
// moving only when the new row beats the current one by more than Eps.
type BestResponsePolicy struct {
	// Rate is the channel rate function the device optimises against.
	Rate ratefn.Func
	// Eps is the minimum strict improvement for a move; zero means
	// core.DefaultEps.
	Eps float64

	// ws is the device's reusable DP scratch, created on first Propose.
	// Policies are per-device state (one goroutine each in the ring), so
	// the workspace is never shared.
	ws *core.Workspace
}

// Propose implements Policy. The DP runs in the policy's own workspace, so
// the steady-state token round (no move) allocates nothing; a move copies
// the proposed row out of the workspace, since the caller may retain it
// past the next Propose.
func (p *BestResponsePolicy) Propose(ext, current []int, radios int) ([]int, error) {
	if p.Rate == nil {
		return nil, fmt.Errorf("dist: BestResponsePolicy needs a rate function")
	}
	eps := p.Eps
	if eps == 0 {
		eps = core.DefaultEps
	}
	if p.ws == nil {
		p.ws = core.NewWorkspace()
	}
	row, best, err := core.BestResponseToLoadsInto(p.ws, p.Rate, ext, radios)
	if err != nil {
		return nil, err
	}
	if best > utilityAgainst(p.Rate, ext, current)+eps {
		return append([]int(nil), row...), nil
	}
	return current, nil
}

// utilityAgainst evaluates a row's utility against fixed external loads:
// Σ_c row[c]/(ext[c]+row[c]) · R(ext[c]+row[c]).
func utilityAgainst(r ratefn.Func, ext, row []int) float64 {
	var u float64
	for c, own := range row {
		if own == 0 {
			continue
		}
		total := ext[c] + own
		u += float64(own) / float64(total) * r.Rate(total)
	}
	return u
}

// UniformPolicies builds one policy per user from a factory.
func UniformPolicies(n int, factory func(user int) Policy) []Policy {
	out := make([]Policy, n)
	for i := range out {
		out[i] = factory(i)
	}
	return out
}
