package dist

import (
	"net"
	"os"
	"reflect"
	"strings"
	"testing"

	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/des"
	"github.com/multiradio/chanalloc/internal/engine"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

// TestMain lets the test binary double as a worker binary for the Process
// backend, mirroring the engine's own conformance suite.
func TestMain(m *testing.M) {
	engine.RunWorkerIfRequested()
	os.Exit(m.Run())
}

// ringGrid is a small (game × policy-mix) grid touching every policy name
// and rate family.
func ringGrid() []RingSpec {
	return []RingSpec{
		{Users: 3, Channels: 3, Radios: 2, Rate: RateSpec{Kind: "tdma", R0: 1},
			Policies: []string{PolicyGreedy}},
		{Users: 3, Channels: 3, Radios: 2, Rate: RateSpec{Kind: "harmonic", R0: 1, Param: 1},
			Policies: []string{PolicyBestResponse}},
		{Users: 4, Channels: 2, Radios: 2, Rate: RateSpec{Kind: "geometric", R0: 1, Param: 0.9},
			Policies: []string{PolicyGreedyRandom}},
		{Users: 3, Channels: 2, Radios: 1, Rate: RateSpec{Kind: "linear", R0: 1, Param: 0.1},
			Policies: []string{PolicyGreedy, PolicyBestResponse, PolicyGreedyRandom}, MaxRounds: 50},
	}
}

// TestRunRingBatchMatchesRunBatch: the serialisable ring task reproduces
// the closure-based RunBatch run for run — matrices, convergence, message
// counts — for the same root seed.
func TestRunRingBatchMatchesRunBatch(t *testing.T) {
	specs := ringGrid()
	fromTask, _, err := RunRingBatch(engine.NewInProcess(), specs, engine.Seed(11), engine.Workers(2))
	if err != nil {
		t.Fatal(err)
	}

	closures := make([]RunSpec, len(specs))
	for i, spec := range specs {
		spec := spec
		rate, err := spec.Rate.Build()
		if err != nil {
			t.Fatal(err)
		}
		g, err := core.NewGame(spec.Users, spec.Channels, spec.Radios, rate)
		if err != nil {
			t.Fatal(err)
		}
		var opts []CoordinatorOption
		if spec.MaxRounds > 0 {
			opts = append(opts, WithMaxRounds(spec.MaxRounds))
		}
		closures[i] = RunSpec{
			Game: g,
			Policies: func(rng *des.RNG) ([]Policy, error) {
				names := spec.Policies
				if len(names) == 1 {
					uniform := make([]string, spec.Users)
					for u := range uniform {
						uniform[u] = names[0]
					}
					names = uniform
				}
				out := make([]Policy, len(names))
				for u, name := range names {
					var err error
					if out[u], err = buildPolicy(name, rate, rng); err != nil {
						return nil, err
					}
				}
				return out, nil
			},
			Opts: opts,
		}
	}
	fromClosures, err := RunBatch(closures, engine.Seed(11), engine.Workers(2))
	if err != nil {
		t.Fatal(err)
	}

	for r := range specs {
		want := fromClosures.Runs[r]
		got := fromTask[r]
		if !reflect.DeepEqual(got.Matrix, want.Alloc.Matrix()) {
			t.Fatalf("run %d: matrix %v, RunBatch produced %v", r, got.Matrix, want.Alloc.Matrix())
		}
		if got.Converged != want.Stats.Converged || got.Rounds != want.Stats.Rounds ||
			got.Moves != want.Stats.Moves || got.Messages != want.Stats.Messages {
			t.Fatalf("run %d: stats %+v, RunBatch produced %+v", r, got, want.Stats)
		}
	}
}

// TestRunRingBatchSocketConformance runs the same grid over the real socket
// worker loop on loopback and requires byte-identical outcomes — the
// cross-machine story of the distributed protocol, in one test.
func TestRunRingBatchSocketConformance(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); engine.Serve(lis) }()
	defer func() { lis.Close(); <-done }()

	specs := ringGrid()
	want, _, err := RunRingBatch(engine.NewInProcess(), specs, engine.Seed(11), engine.Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := RunRingBatch(engine.NewSocket(lis.Addr().String(), lis.Addr().String()),
		specs, engine.Seed(11))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("socket ring batch differs:\n%+v\nvs\n%+v", got, want)
	}
}

// TestRingSpecErrors pins the task's validation paths.
func TestRingSpecErrors(t *testing.T) {
	for _, tc := range []struct {
		desc string
		spec RingSpec
		want string
	}{
		{"unknown rate", RingSpec{Users: 2, Channels: 2, Radios: 1,
			Rate: RateSpec{Kind: "nope", R0: 1}, Policies: []string{PolicyGreedy}}, "unknown rate kind"},
		{"unknown policy", RingSpec{Users: 2, Channels: 2, Radios: 1,
			Rate: RateSpec{R0: 1}, Policies: []string{"nope"}}, "unknown policy"},
		{"policy count mismatch", RingSpec{Users: 3, Channels: 2, Radios: 1,
			Rate: RateSpec{R0: 1}, Policies: []string{PolicyGreedy, PolicyGreedy}}, "policies for"},
		{"bad game", RingSpec{Users: 0, Channels: 2, Radios: 1,
			Rate: RateSpec{R0: 1}, Policies: []string{PolicyGreedy}}, ""},
	} {
		_, err := runRingSpec(tc.spec, des.NewRNG(1))
		if err == nil {
			t.Errorf("%s: want error", tc.desc)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want it to contain %q", tc.desc, err, tc.want)
		}
	}
}

// TestRateSpecBuild pins the rate families the wire format names.
func TestRateSpecBuild(t *testing.T) {
	for _, tc := range []struct {
		spec RateSpec
		want ratefn.Func
	}{
		{RateSpec{Kind: "tdma", R0: 2}, ratefn.NewTDMA(2)},
		{RateSpec{R0: 2}, ratefn.NewTDMA(2)}, // kind defaults to tdma
		{RateSpec{Kind: "harmonic", R0: 1, Param: 0.5}, ratefn.Harmonic{R0: 1, Alpha: 0.5}},
		{RateSpec{Kind: "geometric", R0: 1, Param: 0.9}, ratefn.Geometric{R0: 1, Beta: 0.9}},
		{RateSpec{Kind: "linear", R0: 1, Param: 0.1}, ratefn.Linear{R0: 1, Slope: 0.1}},
	} {
		got, err := tc.spec.Build()
		if err != nil {
			t.Fatalf("%+v: %v", tc.spec, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%+v built %#v, want %#v", tc.spec, got, tc.want)
		}
	}
}
