package dist

import (
	"testing"
	"time"

	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

func testGame(t *testing.T, n, c, k int) *core.Game {
	t.Helper()
	g, err := core.NewGame(n, c, k, ratefn.NewTDMA(1))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestGreedyRingMatchesAlgorithm1 is the protocol's headline property: an
// all-greedy ring reproduces the centralised Algorithm 1 exactly.
func TestGreedyRingMatchesAlgorithm1(t *testing.T) {
	for _, cfg := range []struct{ n, c, k int }{
		{4, 4, 2}, {7, 6, 4}, {12, 8, 5}, {3, 5, 5},
	} {
		g := testGame(t, cfg.n, cfg.c, cfg.k)
		res, err := RunLocal(g, UniformPolicies(g.Users(), func(int) Policy {
			return &GreedyPolicy{}
		}))
		if err != nil {
			t.Fatal(err)
		}
		central, err := core.Algorithm1(g)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Alloc.Equal(central) {
			t.Fatalf("%dx%dx%d: ring\n%v\ncentral\n%v", cfg.n, cfg.c, cfg.k, res.Alloc, central)
		}
		if !res.Stats.Converged || res.Stats.Rounds != 2 {
			t.Fatalf("greedy ring stats: %+v, want convergence in exactly 2 rounds", res.Stats)
		}
	}
}

// TestBestResponseRingConverges checks the best-response ring lands on a
// Nash equilibrium and that every agent sees the same broadcast.
func TestBestResponseRingConverges(t *testing.T) {
	r := ratefn.Harmonic{R0: 1, Alpha: 0.3}
	g, err := core.NewGame(6, 5, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLocal(g, UniformPolicies(g.Users(), func(int) Policy {
		return &BestResponsePolicy{Rate: r}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatalf("ring did not converge: %+v", res.Stats)
	}
	ne, err := g.IsNashEquilibrium(res.Alloc)
	if err != nil {
		t.Fatal(err)
	}
	if !ne {
		t.Fatal("converged ring state is not a NE")
	}
	matrix := res.Alloc.Matrix()
	for i, view := range res.Agents {
		if view.User != i {
			t.Fatalf("agent %d got identity %d", i, view.User)
		}
		if !view.IsNE || !view.Converged {
			t.Fatalf("agent %d view: %+v", i, view)
		}
		for u := range matrix {
			for c := range matrix[u] {
				if view.Matrix[u][c] != matrix[u][c] {
					t.Fatalf("agent %d saw a different matrix", i)
				}
			}
		}
	}
}

// TestMixedPoliciesConverge mixes greedy and best-response devices; the run
// must still go quiet within the round cap.
func TestMixedPoliciesConverge(t *testing.T) {
	r := ratefn.NewTDMA(1)
	g := testGame(t, 6, 5, 3)
	res, err := RunLocal(g, UniformPolicies(g.Users(), func(i int) Policy {
		if i%2 == 0 {
			return &GreedyPolicy{}
		}
		return &BestResponsePolicy{Rate: r}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatalf("mixed ring did not converge: %+v", res.Stats)
	}
}

// TestMessageAccounting pins the frame count: N hellos, 2 frames per token
// pass, N dones and N acks.
func TestMessageAccounting(t *testing.T) {
	g := testGame(t, 3, 3, 2)
	res, err := RunLocal(g, UniformPolicies(g.Users(), func(int) Policy {
		return &GreedyPolicy{}
	}))
	if err != nil {
		t.Fatal(err)
	}
	n := g.Users()
	want := n + 2*n*res.Stats.Rounds + 2*n
	if res.Stats.Messages != want {
		t.Fatalf("messages = %d, want %d", res.Stats.Messages, want)
	}
}

// TestCoordinatorValidation covers constructor and wiring errors.
func TestCoordinatorValidation(t *testing.T) {
	g := testGame(t, 2, 2, 1)
	if _, err := NewCoordinator(nil); err == nil {
		t.Fatal("nil game accepted")
	}
	if _, err := NewCoordinator(g, WithMaxRounds(0)); err == nil {
		t.Fatal("zero round cap accepted")
	}
	if _, err := RunLocal(g, nil); err == nil {
		t.Fatal("policy count mismatch accepted")
	}
	if _, err := RunLocal(g, []Policy{nil, nil}); err == nil {
		t.Fatal("nil policies accepted")
	}
}

// TestRoundCapReported verifies a too-small cap is reported as
// non-convergence rather than an error.
func TestRoundCapReported(t *testing.T) {
	r := ratefn.NewTDMA(1)
	g := testGame(t, 8, 6, 3)
	res, err := RunLocal(g, UniformPolicies(g.Users(), func(int) Policy {
		return &BestResponsePolicy{Rate: r}
	}), WithMaxRounds(1), WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Converged {
		t.Fatal("one round cannot both move and go quiet on this game")
	}
	if res.Stats.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Stats.Rounds)
	}
}
