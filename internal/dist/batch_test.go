package dist

import (
	"fmt"
	"testing"

	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/des"
	"github.com/multiradio/chanalloc/internal/engine"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

// batchSpecs builds a small (game × policy-mix) grid: greedy rings with
// randomised tie-breaks, best-response rings, and mixed rings.
func batchSpecs(t *testing.T) []RunSpec {
	t.Helper()
	r := ratefn.NewTDMA(1)
	var specs []RunSpec
	for _, dims := range []struct{ n, c, k int }{{4, 4, 2}, {5, 4, 3}, {7, 6, 4}} {
		g, err := core.NewGame(dims.n, dims.c, dims.k, r)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs,
			RunSpec{Game: g, Policies: func(rng *des.RNG) ([]Policy, error) {
				return UniformPolicies(g.Users(), func(int) Policy {
					return &GreedyPolicy{Tie: core.TieRandom, Seed: rng.Uint64()}
				}), nil
			}},
			RunSpec{Game: g, Policies: func(rng *des.RNG) ([]Policy, error) {
				return UniformPolicies(g.Users(), func(int) Policy {
					return &BestResponsePolicy{Rate: r}
				}), nil
			}},
			RunSpec{Game: g, Policies: func(rng *des.RNG) ([]Policy, error) {
				return UniformPolicies(g.Users(), func(user int) Policy {
					if user%2 == 0 {
						return &GreedyPolicy{Tie: core.TieRandom, Seed: rng.Uint64()}
					}
					return &BestResponsePolicy{Rate: r}
				}), nil
			}},
		)
	}
	return specs
}

// TestRunBatchReproducesRunLocal is the RunBatch acceptance contract: the
// batch reproduces N independent RunLocal results exactly for the same
// seeds, for any worker count.
func TestRunBatchReproducesRunLocal(t *testing.T) {
	const root = 11
	specs := batchSpecs(t)

	// The serial reference: one RunLocal per spec, policies built from the
	// same per-run stream the engine will hand out.
	want := make([]*LocalResult, len(specs))
	for r, spec := range specs {
		policies, err := spec.Policies(des.NewRNG(engine.JobSeed(root, r)))
		if err != nil {
			t.Fatal(err)
		}
		want[r], err = RunLocal(spec.Game, policies, spec.Opts...)
		if err != nil {
			t.Fatal(err)
		}
	}

	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			got, err := RunBatch(specs, engine.Seed(root), engine.Workers(workers))
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Runs) != len(specs) {
				t.Fatalf("%d runs, want %d", len(got.Runs), len(specs))
			}
			for r, res := range got.Runs {
				if !res.Alloc.Equal(want[r].Alloc) {
					t.Fatalf("run %d allocation differs from RunLocal:\n%v\nvs\n%v",
						r, res.Alloc, want[r].Alloc)
				}
				if res.Stats != want[r].Stats {
					t.Fatalf("run %d stats %+v, want %+v", r, res.Stats, want[r].Stats)
				}
			}
			if got.Converged == 0 || got.Messages == 0 {
				t.Fatalf("aggregates not populated: %+v", got)
			}
		})
	}
}

// TestRunBatchConvergesToNE: every best-response ring in the batch lands on
// a Nash equilibrium (the potential-game convergence argument, batched).
func TestRunBatchConvergesToNE(t *testing.T) {
	specs := batchSpecs(t)
	got, err := RunBatch(specs, engine.Seed(3))
	if err != nil {
		t.Fatal(err)
	}
	if got.Converged != len(specs) {
		t.Fatalf("converged %d/%d", got.Converged, len(specs))
	}
	for r, res := range got.Runs {
		ne, err := specs[r].Game.IsNashEquilibrium(res.Alloc)
		if err != nil {
			t.Fatal(err)
		}
		if !ne {
			t.Fatalf("run %d did not land on a NE:\n%v", r, res.Alloc)
		}
	}
}

// TestRunBatchValidation rejects malformed specs and surfaces run errors.
func TestRunBatchValidation(t *testing.T) {
	g, err := core.NewGame(3, 3, 2, ratefn.NewTDMA(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunBatch([]RunSpec{{Game: nil}}); err == nil {
		t.Fatal("nil game should error")
	}
	if _, err := RunBatch([]RunSpec{{Game: g}}); err == nil {
		t.Fatal("nil policy factory should error")
	}
	if _, err := RunBatch([]RunSpec{{Game: g, Policies: func(*des.RNG) ([]Policy, error) {
		return nil, fmt.Errorf("factory boom")
	}}}); err == nil {
		t.Fatal("factory error should surface")
	}
	// Wrong policy count fails inside RunLocal and must surface with the
	// run index attached.
	_, err = RunBatch([]RunSpec{{Game: g, Policies: func(*des.RNG) ([]Policy, error) {
		return UniformPolicies(1, func(int) Policy { return &GreedyPolicy{} }), nil
	}}})
	if err == nil {
		t.Fatal("policy-count mismatch should error")
	}
	// An empty batch is a valid no-op.
	res, err := RunBatch(nil)
	if err != nil || len(res.Runs) != 0 {
		t.Fatalf("empty batch: %+v, %v", res, err)
	}
}
