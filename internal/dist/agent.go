package dist

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/multiradio/chanalloc/internal/core"
)

// AgentResult is one device's view of the protocol outcome, taken from the
// coordinator's final broadcast.
type AgentResult struct {
	// User is the identity the coordinator assigned in the hello frame.
	User int
	// Matrix is the agreed strategy matrix.
	Matrix [][]int
	// IsNE reports the coordinator's equilibrium verdict.
	IsNE bool
	// Converged reports whether the ring went quiet before the round cap.
	Converged bool
	// Rounds is the number of token rounds the protocol ran.
	Rounds int
}

// RunAgent drives one device end of the protocol over conn until the
// coordinator broadcasts completion. timeout bounds each message exchange
// (<= 0 waits forever).
func RunAgent(conn net.Conn, policy Policy, timeout time.Duration) (AgentResult, error) {
	var res AgentResult
	if policy == nil {
		return res, fmt.Errorf("dist: nil policy")
	}
	p := newPeer(conn, timeout)
	hello, err := p.recv(msgHello)
	if err != nil {
		return res, err
	}
	res.User = hello.User
	for {
		if p.timeout > 0 {
			if err := p.conn.SetReadDeadline(time.Now().Add(p.timeout)); err != nil {
				return res, fmt.Errorf("dist: setting read deadline: %w", err)
			}
		}
		var m message
		if err := p.dec.Decode(&m); err != nil {
			return res, fmt.Errorf("dist: awaiting token: %w", err)
		}
		switch m.Type {
		case msgToken:
			row, err := policy.Propose(m.Loads, m.Row, hello.Radios)
			if err != nil {
				return res, fmt.Errorf("dist: policy for user %d: %w", hello.User, err)
			}
			if err := p.send(&message{Type: msgRow, Row: row}); err != nil {
				return res, err
			}
		case msgDone:
			res.Matrix = m.Matrix
			res.IsNE = m.NE
			res.Converged = m.Converged
			res.Rounds = m.Rounds
			if err := p.send(&message{Type: msgAck}); err != nil {
				return res, err
			}
			return res, nil
		default:
			return res, fmt.Errorf("dist: unexpected frame %q", m.Type)
		}
	}
}

// LocalResult bundles the coordinator and agent views of an in-process run.
type LocalResult struct {
	// Alloc is the agreed allocation.
	Alloc *core.Alloc
	// Stats is the coordinator's protocol summary.
	Stats Stats
	// Agents holds each device's view, indexed by user.
	Agents []AgentResult
}

// RunLocal wires one agent per user to a coordinator over in-process pipes
// and runs the protocol to completion.
func RunLocal(g *core.Game, policies []Policy, opts ...CoordinatorOption) (*LocalResult, error) {
	if g == nil {
		return nil, fmt.Errorf("dist: nil game")
	}
	if len(policies) != g.Users() {
		return nil, fmt.Errorf("dist: %d policies for %d users", len(policies), g.Users())
	}
	co, err := NewCoordinator(g, opts...)
	if err != nil {
		return nil, err
	}

	conns := make([]net.Conn, g.Users())
	agents := make([]AgentResult, g.Users())
	agentErrs := make([]error, g.Users())
	var wg sync.WaitGroup
	for i := range policies {
		server, client := net.Pipe()
		conns[i] = server
		wg.Add(1)
		go func(i int, conn net.Conn, policy Policy) {
			defer wg.Done()
			defer conn.Close()
			agents[i], agentErrs[i] = RunAgent(conn, policy, co.timeout)
		}(i, client, policies[i])
	}
	a, stats, runErr := co.Run(conns)
	for _, conn := range conns {
		conn.Close() // unblocks agents if the coordinator bailed early
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	for i, err := range agentErrs {
		if err != nil {
			return nil, fmt.Errorf("dist: agent %d: %w", i, err)
		}
	}
	return &LocalResult{Alloc: a, Stats: stats, Agents: agents}, nil
}
