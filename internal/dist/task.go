package dist

import (
	"encoding/json"
	"fmt"

	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/des"
	"github.com/multiradio/chanalloc/internal/engine"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

// RingTask is the registered engine task that runs one serialisable
// token-ring specification per job. Registering the ring as a named task is
// what lets protocol grids cross process — and, with the Socket backend,
// machine — boundaries: RunBatch's closures cannot be shipped to a remote
// worker, a RingSpec can.
const RingTask = "dist/ring"

// RateSpec is a serialisable channel rate function. Kind selects the family
// ("tdma", "harmonic", "geometric", "linear"); R0 is the single-user rate
// and Param the family's shape parameter (harmonic α, geometric β, linear
// slope; ignored by tdma).
type RateSpec struct {
	Kind  string  `json:"kind"`
	R0    float64 `json:"r0"`
	Param float64 `json:"param,omitempty"`
}

// Build materialises the rate function.
func (r RateSpec) Build() (ratefn.Func, error) {
	switch r.Kind {
	case "", "tdma":
		return ratefn.NewTDMA(r.R0), nil
	case "harmonic":
		return ratefn.Harmonic{R0: r.R0, Alpha: r.Param}, nil
	case "geometric":
		return ratefn.Geometric{R0: r.R0, Beta: r.Param}, nil
	case "linear":
		return ratefn.Linear{R0: r.R0, Slope: r.Param}, nil
	default:
		return nil, fmt.Errorf("dist: unknown rate kind %q (want tdma, harmonic, geometric or linear)", r.Kind)
	}
}

// Policy names accepted by RingSpec.
const (
	// PolicyGreedy water-fills once with deterministic first-channel
	// tie-breaks (the paper-literal Algorithm 1 reading).
	PolicyGreedy = "greedy"
	// PolicyGreedyRandom water-fills once with random tie-breaks seeded
	// from the run's private PRNG stream.
	PolicyGreedyRandom = "greedy-random"
	// PolicyBestResponse replays the exact best-response program on every
	// token visit.
	PolicyBestResponse = "bestresponse"
)

// RingSpec is one token-ring run, expressed entirely in serialisable terms
// so it can cross the Backend wire protocol: game dimensions, a rate
// family, per-user policy names and a round cap. Randomised policies draw
// their seeds from the run's private engine stream, so a grid of RingSpecs
// produces identical results on every backend and for any peer count.
type RingSpec struct {
	Users    int      `json:"users"`
	Channels int      `json:"channels"`
	Radios   int      `json:"radios"`
	Rate     RateSpec `json:"rate"`
	// Policies names each user's device policy. A single entry applies to
	// every user; otherwise one entry per user.
	Policies []string `json:"policies"`
	// MaxRounds caps token-ring sweeps (0 means the coordinator default).
	MaxRounds int `json:"max_rounds,omitempty"`
}

// RingResult is the serialisable outcome of one ring run.
type RingResult struct {
	// Matrix is the agreed strategy matrix.
	Matrix [][]int `json:"matrix"`
	// NE reports the coordinator's equilibrium verdict.
	NE bool `json:"ne"`
	// Converged reports whether the ring went quiet before the round cap.
	Converged bool `json:"converged"`
	// Rounds, Moves and Messages mirror Stats.
	Rounds   int `json:"rounds"`
	Moves    int `json:"moves"`
	Messages int `json:"messages"`
}

// ringParams is the batch-wide parameter blob of RingTask.
type ringParams struct {
	Specs []RingSpec `json:"specs"`
}

// buildPolicy materialises one named policy. rng is the run's private
// stream; every random draw must come from it.
func buildPolicy(name string, rate ratefn.Func, rng *des.RNG) (Policy, error) {
	switch name {
	case PolicyGreedy:
		return &GreedyPolicy{Tie: core.TieFirst}, nil
	case PolicyGreedyRandom:
		return &GreedyPolicy{Tie: core.TieRandom, Seed: rng.Uint64()}, nil
	case PolicyBestResponse:
		return &BestResponsePolicy{Rate: rate}, nil
	default:
		return nil, fmt.Errorf("dist: unknown policy %q (want %s, %s or %s)",
			name, PolicyGreedy, PolicyGreedyRandom, PolicyBestResponse)
	}
}

// runRingSpec executes one spec with randomness drawn from rng.
func runRingSpec(spec RingSpec, rng *des.RNG) (RingResult, error) {
	var res RingResult
	rate, err := spec.Rate.Build()
	if err != nil {
		return res, err
	}
	g, err := core.NewGame(spec.Users, spec.Channels, spec.Radios, rate)
	if err != nil {
		return res, err
	}
	names := spec.Policies
	if len(names) == 1 {
		uniform := make([]string, spec.Users)
		for i := range uniform {
			uniform[i] = names[0]
		}
		names = uniform
	}
	if len(names) != spec.Users {
		return res, fmt.Errorf("dist: %d policies for %d users", len(names), spec.Users)
	}
	policies := make([]Policy, len(names))
	for i, name := range names {
		if policies[i], err = buildPolicy(name, rate, rng); err != nil {
			return res, err
		}
	}
	var opts []CoordinatorOption
	if spec.MaxRounds > 0 {
		opts = append(opts, WithMaxRounds(spec.MaxRounds))
	}
	local, err := RunLocal(g, policies, opts...)
	if err != nil {
		return res, err
	}
	return RingResult{
		Matrix: local.Alloc.Matrix(),
		// The coordinator's own verdict, as broadcast to every agent.
		NE:        len(local.Agents) > 0 && local.Agents[0].IsNE,
		Converged: local.Stats.Converged,
		Rounds:    local.Stats.Rounds,
		Moves:     local.Stats.Moves,
		Messages:  local.Stats.Messages,
	}, nil
}

func init() {
	engine.MustRegisterTask(RingTask, func(params json.RawMessage, job int, rng *des.RNG) (any, error) {
		var p ringParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("decoding ring params: %w", err)
		}
		if job < 0 || job >= len(p.Specs) {
			return nil, fmt.Errorf("job %d outside %d ring specs", job, len(p.Specs))
		}
		return runRingSpec(p.Specs[job], rng)
	})
}

// RunRingBatch fans a grid of serialisable ring specs over any engine
// backend — the in-process pool, worker subprocesses, or socket peers on
// other machines. Run r executes specs[r] with policies seeded from the
// stream engine.JobSeed(root, r), so the batch is byte-identical on every
// backend; it reproduces RunBatch over equivalent closure specs run for
// run.
func RunRingBatch(b engine.Backend, specs []RingSpec, opts ...engine.Option) ([]RingResult, engine.Stats, error) {
	return engine.RunTask[RingResult](b, RingTask, ringParams{Specs: specs}, len(specs), opts...)
}
