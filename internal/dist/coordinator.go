package dist

import (
	"fmt"
	"net"
	"time"

	"github.com/multiradio/chanalloc/internal/core"
)

// Stats summarises a protocol run.
type Stats struct {
	// Converged is true when a full token round passed with no device
	// changing its row (rather than the round cap striking).
	Converged bool
	// Rounds counts executed token rounds, including the final quiet one.
	Rounds int
	// Moves counts accepted row changes across the run.
	Moves int
	// Messages counts protocol frames in both directions.
	Messages int
}

// Coordinator sequences the distributed token ring for one game.
type Coordinator struct {
	g         *core.Game
	maxRounds int
	timeout   time.Duration
}

// CoordinatorOption configures a Coordinator.
type CoordinatorOption func(*Coordinator)

// WithMaxRounds caps token-ring sweeps (default 100).
func WithMaxRounds(n int) CoordinatorOption {
	return func(c *Coordinator) { c.maxRounds = n }
}

// WithTimeout bounds each protocol message wait (default 10s; <= 0 waits
// forever).
func WithTimeout(d time.Duration) CoordinatorOption {
	return func(c *Coordinator) { c.timeout = d }
}

// NewCoordinator builds a protocol coordinator for g.
func NewCoordinator(g *core.Game, opts ...CoordinatorOption) (*Coordinator, error) {
	if g == nil {
		return nil, fmt.Errorf("dist: nil game")
	}
	co := &Coordinator{g: g, maxRounds: 100, timeout: 10 * time.Second}
	for _, opt := range opts {
		opt(co)
	}
	if co.maxRounds < 1 {
		return nil, fmt.Errorf("dist: maxRounds = %d, want >= 1", co.maxRounds)
	}
	return co, nil
}

// Run drives the protocol over one connection per user (conns[i] talks to
// user i's agent) and returns the agreed allocation.
func (co *Coordinator) Run(conns []net.Conn) (*core.Alloc, Stats, error) {
	var stats Stats
	if len(conns) != co.g.Users() {
		return nil, stats, fmt.Errorf("dist: %d connections for %d users", len(conns), co.g.Users())
	}
	peers := make([]*peer, len(conns))
	for i, conn := range conns {
		if conn == nil {
			return nil, stats, fmt.Errorf("dist: nil connection for user %d", i)
		}
		peers[i] = newPeer(conn, co.timeout)
	}
	for i, p := range peers {
		err := p.send(&message{
			Type:     msgHello,
			User:     i,
			Channels: co.g.Channels(),
			Radios:   co.g.Radios(),
		})
		if err != nil {
			return nil, stats, err
		}
		stats.Messages++
	}

	a := co.g.NewEmptyAlloc()
	for round := 0; round < co.maxRounds; round++ {
		changed := false
		for i, p := range peers {
			current := a.Row(i)
			ext := a.Loads()
			for c, own := range current {
				ext[c] -= own
			}
			if err := p.send(&message{Type: msgToken, Loads: ext, Row: current}); err != nil {
				return nil, stats, err
			}
			stats.Messages++
			reply, err := p.recv(msgRow)
			if err != nil {
				return nil, stats, err
			}
			stats.Messages++
			if err := co.checkRow(reply.Row); err != nil {
				return nil, stats, fmt.Errorf("dist: user %d: %w", i, err)
			}
			if !equalRows(reply.Row, current) {
				if err := a.SetRow(i, reply.Row); err != nil {
					return nil, stats, fmt.Errorf("dist: applying row for user %d: %w", i, err)
				}
				stats.Moves++
				changed = true
			}
		}
		stats.Rounds++
		if !changed {
			stats.Converged = true
			break
		}
	}

	ne, err := co.g.IsNashEquilibrium(a)
	if err != nil {
		return nil, stats, err
	}
	done := &message{
		Type:      msgDone,
		Matrix:    a.Matrix(),
		NE:        ne,
		Converged: stats.Converged,
		Rounds:    stats.Rounds,
		Moves:     stats.Moves,
	}
	for _, p := range peers {
		if err := p.send(done); err != nil {
			return nil, stats, err
		}
		stats.Messages++
	}
	for i, p := range peers {
		if _, err := p.recv(msgAck); err != nil {
			return nil, stats, fmt.Errorf("dist: user %d: %w", i, err)
		}
		stats.Messages++
	}
	return a, stats, nil
}

// checkRow validates a device's proposal against the game's dimensions and
// radio budget.
func (co *Coordinator) checkRow(row []int) error {
	if len(row) != co.g.Channels() {
		return fmt.Errorf("row has %d channels, want %d", len(row), co.g.Channels())
	}
	total := 0
	for c, v := range row {
		if v < 0 {
			return fmt.Errorf("negative radio count %d on channel %d", v, c)
		}
		total += v
	}
	if total > co.g.Radios() {
		return fmt.Errorf("row places %d radios, budget is %d", total, co.g.Radios())
	}
	return nil
}

func equalRows(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
