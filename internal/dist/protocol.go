package dist

import (
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// Message kinds of the wire protocol. Every frame is one JSON object on one
// line; unknown fields are ignored so the protocol can grow.
const (
	msgHello = "hello" // coordinator -> agent: game parameters + identity
	msgToken = "token" // coordinator -> agent: external loads + current row
	msgRow   = "row"   // agent -> coordinator: the row the device plays
	msgDone  = "done"  // coordinator -> agent: final matrix + verdicts
	msgAck   = "ack"   // agent -> coordinator: final acknowledgement
)

// message is the single frame type of the protocol; fields are populated
// according to Type.
//
// User deliberately has no omitempty: user 0 is a legitimate identity, and
// eliding it would make "hello for user 0" indistinguishable from a hello
// missing the field on the wire — the same bug class as the engine
// protocol's job seed. The frame bytes are pinned in protocol tests.
type message struct {
	Type string `json:"type"`
	// hello
	User     int `json:"user"`
	Channels int `json:"channels,omitempty"`
	Radios   int `json:"radios,omitempty"`
	// token
	Loads []int `json:"loads,omitempty"`
	// token (current) and row (proposal)
	Row []int `json:"row,omitempty"`
	// done
	Matrix    [][]int `json:"matrix,omitempty"`
	NE        bool    `json:"ne,omitempty"`
	Converged bool    `json:"converged,omitempty"`
	Rounds    int     `json:"rounds,omitempty"`
	Moves     int     `json:"moves,omitempty"`
}

// peer wraps one conn with JSON framing and a per-message deadline.
type peer struct {
	conn    net.Conn
	enc     *json.Encoder
	dec     *json.Decoder
	timeout time.Duration
}

func newPeer(conn net.Conn, timeout time.Duration) *peer {
	return &peer{
		conn:    conn,
		enc:     json.NewEncoder(conn),
		dec:     json.NewDecoder(conn),
		timeout: timeout,
	}
}

func (p *peer) send(m *message) error {
	if p.timeout > 0 {
		if err := p.conn.SetWriteDeadline(time.Now().Add(p.timeout)); err != nil {
			return fmt.Errorf("dist: setting write deadline: %w", err)
		}
	}
	if err := p.enc.Encode(m); err != nil {
		return fmt.Errorf("dist: sending %s: %w", m.Type, err)
	}
	return nil
}

func (p *peer) recv(wantType string) (*message, error) {
	if p.timeout > 0 {
		if err := p.conn.SetReadDeadline(time.Now().Add(p.timeout)); err != nil {
			return nil, fmt.Errorf("dist: setting read deadline: %w", err)
		}
	}
	var m message
	if err := p.dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("dist: awaiting %s: %w", wantType, err)
	}
	if m.Type != wantType {
		return nil, fmt.Errorf("dist: got %q, want %q", m.Type, wantType)
	}
	return &m, nil
}
