package dist

import (
	"encoding/json"
	"testing"
)

// TestMessageFrameBytes pins the exact bytes of the protocol's frames —
// the compatibility contract between coordinator and agents that may be
// built from different revisions. In particular the hello for user 0 must
// carry "user":0 explicitly: user 0 is a legitimate identity, and eliding
// it (the old omitempty) made "hello for user 0" indistinguishable from a
// hello missing the field.
func TestMessageFrameBytes(t *testing.T) {
	for _, tc := range []struct {
		desc string
		msg  message
		want string
	}{
		{
			"hello for user 0",
			message{Type: msgHello, User: 0, Channels: 3, Radios: 2},
			`{"type":"hello","user":0,"channels":3,"radios":2}`,
		},
		{
			"hello for user 2",
			message{Type: msgHello, User: 2, Channels: 3, Radios: 2},
			`{"type":"hello","user":2,"channels":3,"radios":2}`,
		},
		{
			"token frame",
			message{Type: msgToken, Loads: []int{1, 0, 2}, Row: []int{0, 0, 1}},
			`{"type":"token","user":0,"loads":[1,0,2],"row":[0,0,1]}`,
		},
		{
			"row proposal",
			message{Type: msgRow, Row: []int{1, 1, 0}},
			`{"type":"row","user":0,"row":[1,1,0]}`,
		},
		{
			"ack",
			message{Type: msgAck},
			`{"type":"ack","user":0}`,
		},
	} {
		got, err := json.Marshal(&tc.msg)
		if err != nil {
			t.Fatalf("%s: %v", tc.desc, err)
		}
		if string(got) != tc.want {
			t.Errorf("%s:\n got %s\nwant %s", tc.desc, got, tc.want)
		}
	}
}
