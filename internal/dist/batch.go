package dist

import (
	"fmt"

	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/des"
	"github.com/multiradio/chanalloc/internal/engine"
)

// RunSpec describes one token-ring run of a batch: a game, a policy
// factory, and per-run coordinator options. Policies are built fresh per
// run (they are stateful — GreedyPolicy carries its placement RNG), seeded
// from the run's private engine stream so a batch is reproducible for any
// worker count.
type RunSpec struct {
	// Game is the allocation game the ring negotiates.
	Game *core.Game
	// Policies builds the device policies for this run. rng is the run's
	// private PRNG stream (seeded by engine.JobSeed(root, run)); factories
	// that randomise tie-breaks must draw their seeds from it and nothing
	// else.
	Policies func(rng *des.RNG) ([]Policy, error)
	// Opts configure the run's coordinator (round cap, timeout).
	Opts []CoordinatorOption
}

// BatchResult aggregates an engine-batched set of protocol runs.
type BatchResult struct {
	// Runs holds the per-run results, in spec order.
	Runs []*LocalResult
	// Converged counts runs whose ring went quiet before the round cap.
	Converged int
	// Messages totals protocol frames across all runs.
	Messages int
	// Engine reports how the batch executed (workers, timings).
	Engine engine.Stats
}

// RunBatch fans many token-ring runs — typically a (game × policy-mix)
// grid — over the engine's worker pool. Run r executes RunLocal on
// specs[r] with policies built from the stream engine.JobSeed(root, r), so
// the batch reproduces r independent RunLocal calls exactly, run for run,
// regardless of the worker count. This is experiment E7 at scale: where
// RunLocal negotiates one game at a time, RunBatch pushes a whole policy-mix
// study through the protocol in one engine pass.
func RunBatch(specs []RunSpec, opts ...engine.Option) (*BatchResult, error) {
	for i, spec := range specs {
		if spec.Game == nil {
			return nil, fmt.Errorf("dist: batch run %d has no game", i)
		}
		if spec.Policies == nil {
			return nil, fmt.Errorf("dist: batch run %d has no policy factory", i)
		}
	}
	runs, stats, err := engine.Map(len(specs), func(r int, rng *des.RNG) (*LocalResult, error) {
		spec := specs[r]
		policies, err := spec.Policies(rng)
		if err != nil {
			return nil, fmt.Errorf("building policies for run %d: %w", r, err)
		}
		res, err := RunLocal(spec.Game, policies, spec.Opts...)
		if err != nil {
			return nil, fmt.Errorf("run %d: %w", r, err)
		}
		return res, nil
	}, opts...)
	if err != nil {
		return nil, err
	}
	out := &BatchResult{Runs: runs, Engine: stats}
	for _, res := range runs {
		if res.Stats.Converged {
			out.Converged++
		}
		out.Messages += res.Stats.Messages
	}
	return out, nil
}
