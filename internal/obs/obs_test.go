package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.NewGauge("test_depth")
	g.Set(3)
	g.Add(2)
	g.Dec()
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	// Idempotent re-registration returns the same instance.
	if r.NewCounter("test_ops_total") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("test_metric")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.NewGauge("test_metric")
}

func TestInvalidNamePanics(t *testing.T) {
	for _, name := range []string{"", "9starts_with_digit", "has-dash", "Upper", "sp ace"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", name)
				}
			}()
			NewRegistry().NewCounter(name)
		}()
	}
}

// TestConcurrentIncrements hammers one counter, gauge and histogram from
// many goroutines — the -race proof that the hot-path write operations
// are safe without locks, and that no increment is lost.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_conc_total")
	g := r.NewGauge("test_conc_gauge")
	h := r.NewHistogram("test_conc_hist", []int64{10, 100})
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i % 200))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Errorf("gauge = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestSnapshotStableOrder registers metrics in scrambled order and checks
// snapshots come back name-sorted — the diffability contract.
func TestSnapshotStableOrder(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta_total", "alpha_total", "mid_gauge", "beta_hist"} {
		switch {
		case strings.HasSuffix(name, "_gauge"):
			r.NewGauge(name)
		case strings.HasSuffix(name, "_hist"):
			r.NewHistogram(name, SmallCountBuckets)
		default:
			r.NewCounter(name)
		}
	}
	var names []string
	for _, s := range r.Snapshot() {
		names = append(names, s.Name)
	}
	want := []string{"alpha_total", "beta_hist", "mid_gauge", "zeta_total"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("snapshot order = %v, want %v", names, want)
	}
	// Two consecutive snapshots of an untouched registry are identical.
	if !reflect.DeepEqual(r.Snapshot(), r.Snapshot()) {
		t.Fatal("consecutive snapshots differ")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_lat", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 99, 1000, 5000} {
		h.Observe(v)
	}
	var s Sample
	for _, cand := range r.Snapshot() {
		if cand.Name == "test_lat" {
			s = cand
		}
	}
	wantCum := []uint64{2, 4, 5, 6} // <=10: {5,10}; <=100: +{11,99}; <=1000: +{1000}; +Inf: +{5000}
	if len(s.Buckets) != len(wantCum) {
		t.Fatalf("bucket count = %d, want %d", len(s.Buckets), len(wantCum))
	}
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d cumulative = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if s.Buckets[len(s.Buckets)-1].Le != BucketInf {
		t.Error("last bucket is not +Inf")
	}
	if s.Count != 6 || s.Sum != 5+10+11+99+1000+5000 {
		t.Errorf("count/sum = %d/%d, want 6/%d", s.Count, s.Sum, 5+10+11+99+1000+5000)
	}
}

func TestFlat(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("test_a_total").Add(7)
	r.NewGauge("test_b").Set(-2)
	h := r.NewHistogram("test_c", nil)
	h.Observe(40)
	h.Observe(2)
	got := Flat(r.Snapshot())
	want := map[string]int64{"test_a_total": 7, "test_b": -2, "test_c_count": 2, "test_c_sum": 42}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Flat = %v, want %v", got, want)
	}
}

func TestTraceRing(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 6; i++ {
		tr.Emit("k", "n", int64(i), 0, 0)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(i + 2); ev.A != want || ev.Seq != uint64(want) {
			t.Errorf("event %d: A=%d seq=%d, want %d (oldest-first after wrap)", i, ev.A, ev.Seq, want)
		}
	}
	if tr.Len() != 4 {
		t.Errorf("Len = %d, want 4", tr.Len())
	}
}

func TestTraceNDJSON(t *testing.T) {
	tr := NewTrace(8)
	tr.Emit("dispatch", "peer1", 3, 0, 0)
	tr.Emit("requeue", "peer1", 2, 0, 0)
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var kinds []string
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line not JSON: %v", err)
		}
		kinds = append(kinds, ev.Kind)
	}
	if !reflect.DeepEqual(kinds, []string{"dispatch", "requeue"}) {
		t.Fatalf("kinds = %v", kinds)
	}
}

// TestHTTPExposition scrapes every endpoint of the mux over loopback.
func TestHTTPExposition(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("test_scrape_total").Add(3)
	r.NewHistogram("test_scrape_lat", []int64{100}).Observe(42)
	tr := NewTrace(8)
	tr.Emit("churn", "join", 1, 2, 0)
	srv := httptest.NewServer(NewMux(r, tr))
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	prom := get("/metrics")
	for _, want := range []string{
		"# TYPE test_scrape_total counter",
		"test_scrape_total 3",
		"# TYPE test_scrape_lat histogram",
		`test_scrape_lat_bucket{le="100"} 1`,
		`test_scrape_lat_bucket{le="+Inf"} 1`,
		"test_scrape_lat_sum 42",
		"test_scrape_lat_count 1",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, prom)
		}
	}

	var samples []Sample
	if err := json.Unmarshal([]byte(get("/metrics.json")), &samples); err != nil {
		t.Fatalf("/metrics.json not a sample list: %v", err)
	}
	if len(samples) != 2 {
		t.Errorf("/metrics.json has %d samples, want 2", len(samples))
	}

	if trace := get("/trace"); !strings.Contains(trace, `"kind":"churn"`) {
		t.Errorf("/trace missing churn event: %s", trace)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Error("/debug/pprof/ index looks wrong")
	}
}

// TestListenAndServe exercises the daemon-facing entry point end to end.
func TestListenAndServe(t *testing.T) {
	srv, err := ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

// BenchmarkCounterAdd pins the counter hot path: one atomic add, zero
// allocations (the committed BenchmarkObsOverhead in the facade's bench
// suite tracks this next to the kernel benchmarks it guards).
func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().NewCounter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
