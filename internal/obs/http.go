package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
)

// WritePrometheus renders samples in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single series,
// histograms as cumulative _bucket series plus _sum and _count.
func WritePrometheus(w io.Writer, samples []Sample) error {
	for _, s := range samples {
		switch s.Kind {
		case KindHistogram:
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", s.Name); err != nil {
				return err
			}
			for _, b := range s.Buckets {
				le := "+Inf"
				if b.Le != BucketInf {
					le = fmt.Sprintf("%d", b.Le)
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", s.Name, le, b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", s.Name, s.Sum, s.Name, s.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", s.Name, s.Kind, s.Name, s.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// NewMux wires the exposition endpoints for one registry and trace ring:
//
//	/metrics            Prometheus text format
//	/metrics.json       expvar-style JSON (the Snapshot, verbatim)
//	/trace              the trace ring as NDJSON, oldest first
//	/debug/pprof/...    net/http/pprof profiles (heap, CPU, goroutine...)
//
// Nil registry or trace default to the process-global Default instances.
func NewMux(r *Registry, t *Trace) *http.ServeMux {
	if r == nil {
		r = Default
	}
	if t == nil {
		t = DefaultTrace
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r.Snapshot())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
		_ = t.WriteNDJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a started metrics endpoint: the bound address (useful with
// ":0") and a Close that tears the listener down.
type Server struct {
	Addr net.Addr
	srv  *http.Server
}

// Close shuts the endpoint down immediately.
func (s *Server) Close() error { return s.srv.Close() }

// ListenAndServe binds addr and serves the Default registry, trace ring
// and pprof on it in a background goroutine. This is the implementation
// of every daemon's -metrics flag: call it when the flag is non-empty,
// defer Close, and the process is scrapeable for its whole lifetime.
// Serving errors after a successful bind are dropped — an observability
// endpoint must never take the daemon down with it.
func ListenAndServe(addr string) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewMux(nil, nil)}
	go func() { _ = srv.Serve(lis) }()
	return &Server{Addr: lis.Addr(), srv: srv}, nil
}
