package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one structured trace entry. Kind names the event family
// (dispatch, requeue, evict, churn, requilibrate, ...); Note carries the
// human-facing detail (a peer address, a churn op); A, B and C are generic
// numeric slots whose meaning per kind is documented in EXPERIMENTS.md's
// trace grammar. TNS is the wall clock in Unix nanoseconds — a side
// channel like every obs value, never part of pinned output.
type Event struct {
	Seq  uint64 `json:"seq"`
	TNS  int64  `json:"t_ns"`
	Kind string `json:"kind"`
	Note string `json:"note,omitempty"`
	A    int64  `json:"a"`
	B    int64  `json:"b"`
	C    int64  `json:"c"`
}

// Trace is a bounded ring buffer of Events: Emit overwrites the oldest
// entry once the ring is full, so a long-running daemon keeps the most
// recent window without growing. Emit takes a mutex — it belongs on
// event-scale paths (a dispatch, a churn event), not inside DP loops.
type Trace struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever emitted; buf index is next % len(buf)
}

// DefaultTraceCap sizes DefaultTrace: enough for several full churn
// benchmarks or cluster batches without ever exceeding ~1 MB.
const DefaultTraceCap = 4096

// NewTrace returns a ring holding the most recent capacity events;
// capacity < 1 is clamped to 1.
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{buf: make([]Event, capacity)}
}

// DefaultTrace is the process-global ring the daemons expose at /trace.
var DefaultTrace = NewTrace(DefaultTraceCap)

// Emit appends one event to the ring, stamping sequence and wall clock.
func (t *Trace) Emit(kind, note string, a, b, c int64) {
	now := time.Now().UnixNano()
	t.mu.Lock()
	t.buf[t.next%uint64(len(t.buf))] = Event{
		Seq: t.next, TNS: now, Kind: kind, Note: note, A: a, B: b, C: c,
	}
	t.next++
	t.mu.Unlock()
}

// Emit appends to the DefaultTrace.
func Emit(kind, note string, a, b, c int64) { DefaultTrace.Emit(kind, note, a, b, c) }

// Events returns the retained events in sequence order (oldest first).
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.buf))
	if t.next < n {
		return append([]Event(nil), t.buf[:t.next]...)
	}
	out := make([]Event, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, t.buf[(t.next+i)%n])
	}
	return out
}

// Len reports how many events the ring currently retains.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next < uint64(len(t.buf)) {
		return int(t.next)
	}
	return len(t.buf)
}

// WriteNDJSON dumps the retained events, one JSON object per line, oldest
// first — the same framing every other stream in this repository uses.
func (t *Trace) WriteNDJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range t.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}
