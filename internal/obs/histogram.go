package obs

import "sync/atomic"

// Histogram is a fixed-bucket histogram over int64 observations (latency
// in nanoseconds, sizes in bytes, round counts). Buckets are cumulative at
// snapshot time but stored per-bucket, so Observe is one bounds scan plus
// three atomic adds — no locks, no allocations, safe from any number of
// goroutines. Bounds are fixed at registration: a histogram's shape, like
// a metric's name, is a stable contract for whatever scrapes it.
type Histogram struct {
	bounds []int64 // strictly increasing upper bounds; implicit +Inf after
	counts []atomic.Uint64
	sum    atomic.Int64
	n      atomic.Uint64
}

// newHistogram builds a histogram over the given upper bounds. Bounds must
// be strictly increasing; a final +Inf bucket is always appended. Nil or
// empty bounds mean a single +Inf bucket (count/sum only).
func newHistogram(bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	h := &Histogram{bounds: append([]int64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the running sum of observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// snapshot renders the cumulative bucket view (Prometheus semantics: each
// bucket counts observations <= its bound, the last is +Inf).
func (h *Histogram) snapshot() (count uint64, sum int64, buckets []Bucket) {
	buckets = make([]Bucket, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := BucketInf
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		buckets[i] = Bucket{Le: le, Count: cum}
	}
	return h.n.Load(), h.sum.Load(), buckets
}

// LatencyBucketsNS is the default bound set for nanosecond latency
// histograms: decades from 1µs to 10s. Dispatch round-trips sit around
// 10µs–1ms, live-event service around 10µs–10ms; decades keep the scan
// short (8 compares) while still separating "fast path" from "something
// is wrong".
var LatencyBucketsNS = []int64{
	1_000, 10_000, 100_000, // 1µs, 10µs, 100µs
	1_000_000, 10_000_000, 100_000_000, // 1ms, 10ms, 100ms
	1_000_000_000, 10_000_000_000, // 1s, 10s
}

// SmallCountBuckets suits small integer distributions such as convergence
// rounds or window depths, resolving 0..64 in powers of two.
var SmallCountBuckets = []int64{0, 1, 2, 4, 8, 16, 32, 64}
