// Package obs is the process-global observability spine: an
// allocation-free metrics registry (atomic counters, gauges and
// fixed-bucket histograms registered by name), a bounded ring-buffer trace
// of structured events, and HTTP exposition (expvar-style JSON, Prometheus
// text, pprof) behind the daemons' -metrics flag.
//
// Metrics are a SIDE CHANNEL only. Nothing in this package may feed back
// into pinned output — golden transcripts, CSVs and frame bytes are
// byte-identical with or without instrumentation, because instrumented
// code only ever *writes* counters; no decision reads one. The registry
// deliberately has no unregister or reset: a metric name is a stable
// contract for scrapers, and Snapshot is stable-ordered so two snapshots
// diff line by line.
//
// Hot-path discipline: Counter.Add and Gauge.Add are a single atomic
// add — zero allocations, safe under -race from any number of goroutines.
// Paths hotter than an atomic per operation (the kernel's DP and screen
// loops run in the tens of nanoseconds) accumulate plain integers in their
// per-goroutine Workspace and flush in bulk when the workspace returns to
// its pool; see core.Workspace.FlushObs.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is usable
// but unregistered; NewCounter returns a registered one.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down (queue depths, connection
// counts, window occupancy).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc moves the gauge up by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec moves the gauge down by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Kind discriminates Snapshot samples.
type Kind string

// Metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Bucket is one histogram bucket in a Snapshot: the cumulative count of
// observations <= Le. The last bucket's Le is BucketInf (+Inf).
type Bucket struct {
	Le    int64  `json:"le"`
	Count uint64 `json:"count"`
}

// BucketInf is the Le of the catch-all bucket.
const BucketInf = int64(^uint64(0) >> 1) // math.MaxInt64 without the import

// Sample is one metric's state in a Snapshot. Value carries the counter
// count or gauge level; histograms report Count/Sum/Buckets instead.
type Sample struct {
	Name    string   `json:"name"`
	Kind    Kind     `json:"kind"`
	Value   int64    `json:"value"`
	Count   uint64   `json:"count,omitempty"`
	Sum     int64    `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Registry holds named metrics. Registration is idempotent: asking for a
// name that exists returns the existing metric, so package-level vars in
// independent packages can share a catalogue. Asking for an existing name
// with a different kind panics — that is a programming error worth dying
// loudly for, not a runtime condition.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]any // *Counter | *Gauge | *Histogram
	names   []string       // sorted; rebuilt on registration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]any{}}
}

// Default is the process-global registry every daemon exposes.
var Default = NewRegistry()

// register installs make()'s metric under name unless one exists; the
// existing metric must have the wanted dynamic type.
func register[T any](r *Registry, name string, make func() T) T {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q (want [a-z0-9_:]+, starting with a letter)", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		t, ok := m.(T)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q re-registered as %T, was %T", name, *new(T), m))
		}
		return t
	}
	m := make()
	r.metrics[name] = m
	r.names = append(r.names, name)
	sort.Strings(r.names)
	return m
}

// validName accepts prometheus-safe names: a letter followed by letters,
// digits, underscores or colons.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, ch := range name {
		switch {
		case ch >= 'a' && ch <= 'z':
		case ch == '_' || ch == ':':
		case ch >= '0' && ch <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// NewCounter returns the registry's counter with this name, registering it
// on first use.
func (r *Registry) NewCounter(name string) *Counter {
	return register(r, name, func() *Counter { return &Counter{} })
}

// NewGauge returns the registry's gauge with this name, registering it on
// first use.
func (r *Registry) NewGauge(name string) *Gauge {
	return register(r, name, func() *Gauge { return &Gauge{} })
}

// NewHistogram returns the registry's histogram with this name,
// registering it with the given bucket upper bounds on first use (see
// NewHistogramBuckets for the bound rules). Re-registration ignores the
// bounds and returns the existing histogram.
func (r *Registry) NewHistogram(name string, bounds []int64) *Histogram {
	return register(r, name, func() *Histogram { return newHistogram(bounds) })
}

// NewCounter registers on the Default registry.
func NewCounter(name string) *Counter { return Default.NewCounter(name) }

// NewGauge registers on the Default registry.
func NewGauge(name string) *Gauge { return Default.NewGauge(name) }

// NewHistogram registers on the Default registry.
func NewHistogram(name string, bounds []int64) *Histogram {
	return Default.NewHistogram(name, bounds)
}

// Snapshot captures every registered metric, sorted by name — a stable,
// diffable order regardless of registration order. Counters and gauges are
// read with single atomic loads; histogram buckets are read bucket by
// bucket without locking writers, so a snapshot taken mid-storm is a
// near-consistent view — fine for monitoring, and pinned by no test.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	metrics := make([]any, len(names))
	for i, n := range names {
		metrics[i] = r.metrics[n]
	}
	r.mu.Unlock()

	out := make([]Sample, 0, len(names))
	for i, name := range names {
		switch m := metrics[i].(type) {
		case *Counter:
			out = append(out, Sample{Name: name, Kind: KindCounter, Value: int64(m.Value())})
		case *Gauge:
			out = append(out, Sample{Name: name, Kind: KindGauge, Value: m.Value()})
		case *Histogram:
			s := Sample{Name: name, Kind: KindHistogram}
			s.Count, s.Sum, s.Buckets = m.snapshot()
			s.Value = int64(s.Count)
			out = append(out, s)
		}
	}
	return out
}

// Snapshot captures the Default registry.
func Snapshot() []Sample { return Default.Snapshot() }

// Flat renders a snapshot as name -> value pairs: counters and gauges map
// to their value, histograms to <name>_count and <name>_sum. JSON-encoding
// the map yields keys in sorted order (encoding/json sorts string keys),
// so the flat form is as diffable as the snapshot — this is the shape the
// allocd stats frame embeds.
func Flat(samples []Sample) map[string]int64 {
	out := make(map[string]int64, len(samples))
	for _, s := range samples {
		switch s.Kind {
		case KindHistogram:
			out[s.Name+"_count"] = int64(s.Count)
			out[s.Name+"_sum"] = s.Sum
		default:
			out[s.Name] = s.Value
		}
	}
	return out
}
