package combin

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestCompositionsSmall(t *testing.T) {
	var got [][]int
	err := Compositions(2, 2, func(v []int) bool {
		got = append(got, append([]int(nil), v...))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 2}, {1, 1}, {2, 0}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Compositions(2,2) = %v, want %v", got, want)
	}
}

func TestCompositionsZeroTotal(t *testing.T) {
	var got [][]int
	if err := Compositions(0, 3, func(v []int) bool {
		got = append(got, append([]int(nil), v...))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 0, 0}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Compositions(0,3) = %v, want %v", got, want)
	}
}

func TestCompositionsCountMatchesFormula(t *testing.T) {
	for total := 0; total <= 6; total++ {
		for parts := 1; parts <= 5; parts++ {
			count := 0
			if err := Compositions(total, parts, func(v []int) bool {
				sum := 0
				for _, x := range v {
					if x < 0 {
						t.Fatalf("negative entry in %v", v)
					}
					sum += x
				}
				if sum != total {
					t.Fatalf("composition %v sums to %d, want %d", v, sum, total)
				}
				count++
				return true
			}); err != nil {
				t.Fatal(err)
			}
			want, err := CountCompositions(total, parts)
			if err != nil {
				t.Fatal(err)
			}
			if int64(count) != want {
				t.Errorf("Compositions(%d,%d) yielded %d, formula says %d", total, parts, count, want)
			}
		}
	}
}

func TestCompositionsEarlyStop(t *testing.T) {
	count := 0
	if err := Compositions(5, 3, func(v []int) bool {
		count++
		return count < 4
	}); err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Fatalf("early stop visited %d, want 4", count)
	}
}

func TestCompositionsErrors(t *testing.T) {
	if err := Compositions(-1, 2, func([]int) bool { return true }); err == nil {
		t.Error("negative total should error")
	}
	if err := Compositions(1, 0, func([]int) bool { return true }); err == nil {
		t.Error("zero parts should error")
	}
}

func TestBoundedCompositions(t *testing.T) {
	var got [][]int
	if err := BoundedCompositions(3, 3, 2, func(v []int) bool {
		got = append(got, append([]int(nil), v...))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	// All vectors of length 3, entries <= 2, summing to 3.
	want := [][]int{
		{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 1, 1}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BoundedCompositions(3,3,2) = %v, want %v", got, want)
	}
}

func TestBoundedCompositionsInfeasible(t *testing.T) {
	called := false
	if err := BoundedCompositions(10, 2, 3, func(v []int) bool {
		called = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("infeasible bound should yield nothing")
	}
}

func TestBoundedCompositionsMatchesFiltered(t *testing.T) {
	for total := 0; total <= 5; total++ {
		for parts := 1; parts <= 4; parts++ {
			for bound := 0; bound <= 4; bound++ {
				var bounded [][]int
				if err := BoundedCompositions(total, parts, bound, func(v []int) bool {
					bounded = append(bounded, append([]int(nil), v...))
					return true
				}); err != nil {
					t.Fatal(err)
				}
				var filtered [][]int
				if err := Compositions(total, parts, func(v []int) bool {
					for _, x := range v {
						if x > bound {
							return true
						}
					}
					filtered = append(filtered, append([]int(nil), v...))
					return true
				}); err != nil {
					t.Fatal(err)
				}
				if len(bounded) == 0 && len(filtered) == 0 {
					continue
				}
				if !reflect.DeepEqual(bounded, filtered) {
					t.Fatalf("total=%d parts=%d bound=%d: bounded %v != filtered %v",
						total, parts, bound, bounded, filtered)
				}
			}
		}
	}
}

func TestBoundedCompositionsErrors(t *testing.T) {
	fn := func([]int) bool { return true }
	if err := BoundedCompositions(-1, 1, 1, fn); err == nil {
		t.Error("negative total should error")
	}
	if err := BoundedCompositions(1, 0, 1, fn); err == nil {
		t.Error("zero parts should error")
	}
	if err := BoundedCompositions(1, 1, -1, fn); err == nil {
		t.Error("negative bound should error")
	}
}

func TestBinomial(t *testing.T) {
	tests := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120}, {52, 5, 2598960},
	}
	for _, tc := range tests {
		got, err := Binomial(tc.n, tc.k)
		if err != nil {
			t.Fatalf("Binomial(%d,%d): %v", tc.n, tc.k, err)
		}
		if got != tc.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", tc.n, tc.k, got, tc.want)
		}
	}
}

func TestBinomialSymmetry(t *testing.T) {
	f := func(n, k uint8) bool {
		nn := int(n % 40)
		kk := int(k) % (nn + 1)
		a, errA := Binomial(nn, kk)
		b, errB := Binomial(nn, nn-kk)
		return errA == nil && errB == nil && a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialPascal(t *testing.T) {
	for n := 1; n <= 30; n++ {
		for k := 1; k < n; k++ {
			c, _ := Binomial(n, k)
			a, _ := Binomial(n-1, k-1)
			b, _ := Binomial(n-1, k)
			if c != a+b {
				t.Fatalf("Pascal identity fails at C(%d,%d): %d != %d + %d", n, k, c, a, b)
			}
		}
	}
}

func TestBinomialErrors(t *testing.T) {
	if _, err := Binomial(-1, 0); err == nil {
		t.Error("negative n should error")
	}
	if _, err := Binomial(3, 5); err == nil {
		t.Error("k > n should error")
	}
	if _, err := Binomial(3, -1); err == nil {
		t.Error("negative k should error")
	}
	if _, err := Binomial(200, 100); err == nil {
		t.Error("huge binomial should overflow")
	}
}

func TestProduct(t *testing.T) {
	var got [][]int
	if err := Product([]int{2, 3}, func(v []int) bool {
		got = append(got, append([]int(nil), v...))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Product = %v, want %v", got, want)
	}
}

func TestProductEmptyDims(t *testing.T) {
	count := 0
	if err := Product(nil, func(v []int) bool {
		if len(v) != 0 {
			t.Fatalf("expected empty vector, got %v", v)
		}
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("empty product should yield exactly one vector, got %d", count)
	}
}

func TestProductEarlyStop(t *testing.T) {
	count := 0
	if err := Product([]int{10, 10}, func(v []int) bool {
		count++
		return count < 7
	}); err != nil {
		t.Fatal(err)
	}
	if count != 7 {
		t.Fatalf("early stop visited %d, want 7", count)
	}
}

func TestProductErrors(t *testing.T) {
	if err := Product([]int{2, 0}, func([]int) bool { return true }); err == nil {
		t.Error("zero-size dimension should error")
	}
}

func TestCollectCompositions(t *testing.T) {
	got, err := CollectCompositions(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("CollectCompositions(2,3) has %d entries, want 6", len(got))
	}
	// Returned slices must be independent allocations.
	got[0][0] = 99
	if got[1][0] == 99 {
		t.Fatal("collected compositions share a buffer")
	}
}

func TestCollectCompositionsError(t *testing.T) {
	if _, err := CollectCompositions(-1, 1); err == nil {
		t.Fatal("invalid args should error")
	}
}
