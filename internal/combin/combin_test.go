package combin

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestCompositionsSmall(t *testing.T) {
	var got [][]int
	err := Compositions(2, 2, func(v []int) bool {
		got = append(got, append([]int(nil), v...))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 2}, {1, 1}, {2, 0}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Compositions(2,2) = %v, want %v", got, want)
	}
}

func TestCompositionsZeroTotal(t *testing.T) {
	var got [][]int
	if err := Compositions(0, 3, func(v []int) bool {
		got = append(got, append([]int(nil), v...))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 0, 0}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Compositions(0,3) = %v, want %v", got, want)
	}
}

func TestCompositionsCountMatchesFormula(t *testing.T) {
	for total := 0; total <= 6; total++ {
		for parts := 1; parts <= 5; parts++ {
			count := 0
			if err := Compositions(total, parts, func(v []int) bool {
				sum := 0
				for _, x := range v {
					if x < 0 {
						t.Fatalf("negative entry in %v", v)
					}
					sum += x
				}
				if sum != total {
					t.Fatalf("composition %v sums to %d, want %d", v, sum, total)
				}
				count++
				return true
			}); err != nil {
				t.Fatal(err)
			}
			want, err := CountCompositions(total, parts)
			if err != nil {
				t.Fatal(err)
			}
			if int64(count) != want {
				t.Errorf("Compositions(%d,%d) yielded %d, formula says %d", total, parts, count, want)
			}
		}
	}
}

func TestCompositionsEarlyStop(t *testing.T) {
	count := 0
	if err := Compositions(5, 3, func(v []int) bool {
		count++
		return count < 4
	}); err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Fatalf("early stop visited %d, want 4", count)
	}
}

func TestCompositionsErrors(t *testing.T) {
	if err := Compositions(-1, 2, func([]int) bool { return true }); err == nil {
		t.Error("negative total should error")
	}
	if err := Compositions(1, 0, func([]int) bool { return true }); err == nil {
		t.Error("zero parts should error")
	}
}

func TestBoundedCompositions(t *testing.T) {
	var got [][]int
	if err := BoundedCompositions(3, 3, 2, func(v []int) bool {
		got = append(got, append([]int(nil), v...))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	// All vectors of length 3, entries <= 2, summing to 3.
	want := [][]int{
		{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 1, 1}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BoundedCompositions(3,3,2) = %v, want %v", got, want)
	}
}

func TestBoundedCompositionsInfeasible(t *testing.T) {
	called := false
	if err := BoundedCompositions(10, 2, 3, func(v []int) bool {
		called = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("infeasible bound should yield nothing")
	}
}

func TestBoundedCompositionsMatchesFiltered(t *testing.T) {
	for total := 0; total <= 5; total++ {
		for parts := 1; parts <= 4; parts++ {
			for bound := 0; bound <= 4; bound++ {
				var bounded [][]int
				if err := BoundedCompositions(total, parts, bound, func(v []int) bool {
					bounded = append(bounded, append([]int(nil), v...))
					return true
				}); err != nil {
					t.Fatal(err)
				}
				var filtered [][]int
				if err := Compositions(total, parts, func(v []int) bool {
					for _, x := range v {
						if x > bound {
							return true
						}
					}
					filtered = append(filtered, append([]int(nil), v...))
					return true
				}); err != nil {
					t.Fatal(err)
				}
				if len(bounded) == 0 && len(filtered) == 0 {
					continue
				}
				if !reflect.DeepEqual(bounded, filtered) {
					t.Fatalf("total=%d parts=%d bound=%d: bounded %v != filtered %v",
						total, parts, bound, bounded, filtered)
				}
			}
		}
	}
}

func TestBoundedCompositionsErrors(t *testing.T) {
	fn := func([]int) bool { return true }
	if err := BoundedCompositions(-1, 1, 1, fn); err == nil {
		t.Error("negative total should error")
	}
	if err := BoundedCompositions(1, 0, 1, fn); err == nil {
		t.Error("zero parts should error")
	}
	if err := BoundedCompositions(1, 1, -1, fn); err == nil {
		t.Error("negative bound should error")
	}
}

func TestBinomial(t *testing.T) {
	tests := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120}, {52, 5, 2598960},
	}
	for _, tc := range tests {
		got, err := Binomial(tc.n, tc.k)
		if err != nil {
			t.Fatalf("Binomial(%d,%d): %v", tc.n, tc.k, err)
		}
		if got != tc.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", tc.n, tc.k, got, tc.want)
		}
	}
}

func TestBinomialSymmetry(t *testing.T) {
	f := func(n, k uint8) bool {
		nn := int(n % 40)
		kk := int(k) % (nn + 1)
		a, errA := Binomial(nn, kk)
		b, errB := Binomial(nn, nn-kk)
		return errA == nil && errB == nil && a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialPascal(t *testing.T) {
	for n := 1; n <= 30; n++ {
		for k := 1; k < n; k++ {
			c, _ := Binomial(n, k)
			a, _ := Binomial(n-1, k-1)
			b, _ := Binomial(n-1, k)
			if c != a+b {
				t.Fatalf("Pascal identity fails at C(%d,%d): %d != %d + %d", n, k, c, a, b)
			}
		}
	}
}

func TestBinomialErrors(t *testing.T) {
	if _, err := Binomial(-1, 0); err == nil {
		t.Error("negative n should error")
	}
	if _, err := Binomial(3, 5); err == nil {
		t.Error("k > n should error")
	}
	if _, err := Binomial(3, -1); err == nil {
		t.Error("negative k should error")
	}
	if _, err := Binomial(200, 100); err == nil {
		t.Error("huge binomial should overflow")
	}
}

func TestProduct(t *testing.T) {
	var got [][]int
	if err := Product([]int{2, 3}, func(v []int) bool {
		got = append(got, append([]int(nil), v...))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Product = %v, want %v", got, want)
	}
}

func TestProductEmptyDims(t *testing.T) {
	count := 0
	if err := Product(nil, func(v []int) bool {
		if len(v) != 0 {
			t.Fatalf("expected empty vector, got %v", v)
		}
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("empty product should yield exactly one vector, got %d", count)
	}
}

func TestProductEarlyStop(t *testing.T) {
	count := 0
	if err := Product([]int{10, 10}, func(v []int) bool {
		count++
		return count < 7
	}); err != nil {
		t.Fatal(err)
	}
	if count != 7 {
		t.Fatalf("early stop visited %d, want 7", count)
	}
}

func TestProductErrors(t *testing.T) {
	if err := Product([]int{2, 0}, func([]int) bool { return true }); err == nil {
		t.Error("zero-size dimension should error")
	}
}

func TestCollectCompositions(t *testing.T) {
	got, err := CollectCompositions(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("CollectCompositions(2,3) has %d entries, want 6", len(got))
	}
	// Returned slices must be independent allocations.
	got[0][0] = 99
	if got[1][0] == 99 {
		t.Fatal("collected compositions share a buffer")
	}
}

func TestCollectCompositionsError(t *testing.T) {
	if _, err := CollectCompositions(-1, 1); err == nil {
		t.Fatal("invalid args should error")
	}
}

func TestMultinomial(t *testing.T) {
	cases := []struct {
		counts []int
		want   int64
	}{
		{nil, 1},
		{[]int{0}, 1},
		{[]int{5}, 1},
		{[]int{1, 1}, 2},
		{[]int{2, 1}, 3},
		{[]int{1, 1, 1, 1}, 24},    // 4 distinct rows: full 4! orbit
		{[]int{2, 2}, 6},           // 4!/(2!·2!)
		{[]int{3, 1}, 4},           // 4!/3!
		{[]int{4}, 1},              // all four users on the same row
		{[]int{2, 3, 1}, 60},       // 6!/(2!·3!·1!)
		{[]int{0, 2, 0, 1}, 3},     // zero multiplicities are inert
		{[]int{10, 10, 10}, 5550996791340}, // 30!/(10!)^3
	}
	for _, tc := range cases {
		got, err := Multinomial(tc.counts)
		if err != nil {
			t.Fatalf("Multinomial(%v): %v", tc.counts, err)
		}
		if got != tc.want {
			t.Fatalf("Multinomial(%v) = %d, want %d", tc.counts, got, tc.want)
		}
	}
}

func TestMultinomialRejectsNegative(t *testing.T) {
	if _, err := Multinomial([]int{2, -1}); err == nil {
		t.Fatal("negative multiplicity should error")
	}
}

// TestMultinomialOverflowBoundary pins the int64 boundary behaviour: the
// largest balanced two-part multinomials that fit must succeed exactly,
// and the first that does not must error rather than wrap negative (the
// guard divides before multiplying, the checkProfileCap bug shape).
func TestMultinomialOverflowBoundary(t *testing.T) {
	// C(64,32) ≈ 1.8e18 fits under the 2^62 guard; C(66,33) ≈ 7.2e18 does
	// not. Find the largest n that succeeds and check failure past it.
	lastOK := -1
	for n := 1; n <= 40; n++ {
		v, err := Multinomial([]int{n, n})
		if err != nil {
			break
		}
		if v <= 0 {
			t.Fatalf("Multinomial(%d,%d) = %d wrapped non-positive instead of erroring", n, n, v)
		}
		lastOK = n
	}
	if lastOK < 30 || lastOK > 35 {
		t.Fatalf("largest fitting C(2n,n) at n = %d, want the int64 boundary near 31-33", lastOK)
	}
	if _, err := Multinomial([]int{lastOK + 1, lastOK + 1}); err == nil {
		t.Fatalf("Multinomial(%d,%d) beyond the boundary should error", lastOK+1, lastOK+1)
	}
	// A huge total must error on the prefix-sum guard, not wrap.
	if _, err := Multinomial([]int{1 << 62, 1 << 62}); err == nil {
		t.Fatal("prefix-sum overflow should error")
	}
	// Many unit multiplicities: 21! > 2^62 must error, 20! must not.
	fits := make([]int, 20)
	for i := range fits {
		fits[i] = 1
	}
	if v, err := Multinomial(fits); err != nil || v != 2432902008176640000 {
		t.Fatalf("20! = %d, %v; want 2432902008176640000", v, err)
	}
	if _, err := Multinomial(append(fits, 1)); err == nil {
		t.Fatal("21! overflows int64 and should error")
	}
}

func TestMultisetCount(t *testing.T) {
	cases := []struct {
		options, size int
		want          int64
	}{
		{1, 0, 1},
		{1, 5, 1},
		{3, 2, 6},
		{15, 4, 3060}, // the 4x4x2 benchmark game's canonical profile count
	}
	for _, tc := range cases {
		got, err := MultisetCount(tc.options, tc.size)
		if err != nil {
			t.Fatalf("MultisetCount(%d, %d): %v", tc.options, tc.size, err)
		}
		if got != tc.want {
			t.Fatalf("MultisetCount(%d, %d) = %d, want %d", tc.options, tc.size, got, tc.want)
		}
	}
	if _, err := MultisetCount(0, 3); err == nil {
		t.Fatal("zero options should error")
	}
	if _, err := MultisetCount(3, -1); err == nil {
		t.Fatal("negative size should error")
	}
	if _, err := MultisetCount(1 << 40, 1<<40); err == nil {
		t.Fatal("overflowing multiset count should error")
	}
}
