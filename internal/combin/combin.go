// Package combin provides the combinatorial enumeration primitives used by
// the exhaustive game-theory oracles: integer compositions (strategy spaces
// of a multi-radio user), bounded compositions, and cartesian products over
// per-player strategy sets.
//
// All iterators are allocation-conscious: they reuse an internal buffer and
// hand the caller a view that must be copied if retained, mirroring the
// contract of bufio.Scanner.Bytes.
package combin

import "fmt"

// Compositions enumerates all length-parts vectors of non-negative integers
// summing to exactly total. It calls fn with a reused buffer for each
// composition; fn must copy the slice if it retains it. Enumeration stops
// early if fn returns false.
//
// The number of compositions is C(total+parts-1, parts-1).
func Compositions(total, parts int, fn func([]int) bool) error {
	if total < 0 {
		return fmt.Errorf("combin: negative total %d", total)
	}
	if parts <= 0 {
		return fmt.Errorf("combin: non-positive parts %d", parts)
	}
	buf := make([]int, parts)
	var rec func(idx, remaining int) bool
	rec = func(idx, remaining int) bool {
		if idx == parts-1 {
			buf[idx] = remaining
			return fn(buf)
		}
		for v := 0; v <= remaining; v++ {
			buf[idx] = v
			if !rec(idx+1, remaining-v) {
				return false
			}
		}
		return true
	}
	rec(0, total)
	return nil
}

// BoundedCompositions enumerates all length-parts vectors of non-negative
// integers summing to total with every entry at most bound. fn receives a
// reused buffer; returning false stops enumeration early.
func BoundedCompositions(total, parts, bound int, fn func([]int) bool) error {
	if total < 0 {
		return fmt.Errorf("combin: negative total %d", total)
	}
	if parts <= 0 {
		return fmt.Errorf("combin: non-positive parts %d", parts)
	}
	if bound < 0 {
		return fmt.Errorf("combin: negative bound %d", bound)
	}
	if total > parts*bound {
		return nil // no valid compositions; not an error
	}
	buf := make([]int, parts)
	var rec func(idx, remaining int) bool
	rec = func(idx, remaining int) bool {
		if idx == parts-1 {
			if remaining > bound {
				return true
			}
			buf[idx] = remaining
			return fn(buf)
		}
		maxV := remaining
		if maxV > bound {
			maxV = bound
		}
		// Prune: the remaining slots must be able to absorb what is left.
		for v := 0; v <= maxV; v++ {
			if remaining-v > (parts-idx-1)*bound {
				continue
			}
			buf[idx] = v
			if !rec(idx+1, remaining-v) {
				return false
			}
		}
		return true
	}
	rec(0, total)
	return nil
}

// CountCompositions returns C(total+parts-1, parts-1), the number of
// compositions of total into parts non-negative integers. It returns an
// error on overflow of int64 arithmetic or invalid arguments.
func CountCompositions(total, parts int) (int64, error) {
	if total < 0 || parts <= 0 {
		return 0, fmt.Errorf("combin: invalid compositions(%d, %d)", total, parts)
	}
	return Binomial(total+parts-1, parts-1)
}

// Binomial returns C(n, k) using 64-bit integer arithmetic, erroring on
// overflow rather than wrapping.
func Binomial(n, k int) (int64, error) {
	if n < 0 || k < 0 || k > n {
		return 0, fmt.Errorf("combin: invalid binomial(%d, %d)", n, k)
	}
	if k > n-k {
		k = n - k
	}
	result := int64(1)
	for i := 1; i <= k; i++ {
		num := int64(n - k + i)
		// result * num must not overflow.
		if result > (1<<62)/num {
			return 0, fmt.Errorf("combin: binomial(%d, %d) overflows int64", n, k)
		}
		result = result * num / int64(i)
	}
	return result, nil
}

// Multinomial returns n! / (counts[0]! · counts[1]! · ...) where n is the
// sum of the counts — the number of distinct arrangements of a multiset
// with the given multiplicities, i.e. the orbit size of a sorted strategy
// tuple under permutations of exchangeable users. It is evaluated as a
// product of binomials, Π_j C(s_j, counts[j]) with s_j the prefix sums, so
// every intermediate value is an exact count; the running product is
// guarded by division before each multiply (multiplying first could wrap
// negative near the int64 boundary and slip past a post-hoc comparison —
// the same bug shape checkProfileCap fixed) and errors on overflow rather
// than wrapping.
func Multinomial(counts []int) (int64, error) {
	prefix := 0
	result := int64(1)
	for i, c := range counts {
		if c < 0 {
			return 0, fmt.Errorf("combin: negative multiplicity %d at %d", c, i)
		}
		if c > (1<<62)-prefix {
			return 0, fmt.Errorf("combin: multinomial total overflows int64")
		}
		prefix += c
		b, err := Binomial(prefix, c)
		if err != nil {
			return 0, fmt.Errorf("combin: multinomial: %w", err)
		}
		if b != 0 && result > (1<<62)/b {
			return 0, fmt.Errorf("combin: multinomial(%v) overflows int64", counts)
		}
		result *= b
	}
	return result, nil
}

// MultisetCount returns the number of multisets of size size drawn from
// options distinct elements, C(options+size-1, size) — the number of
// canonical (sorted) strategy tuples for a class of size exchangeable
// users with options strategy rows each. Errors on overflow or invalid
// arguments.
func MultisetCount(options, size int) (int64, error) {
	if options <= 0 || size < 0 {
		return 0, fmt.Errorf("combin: invalid multiset count(%d, %d)", options, size)
	}
	return Binomial(options+size-1, size)
}

// Product enumerates the cartesian product of index spaces with the given
// sizes: every vector v with 0 <= v[i] < sizes[i]. fn receives a reused
// buffer; returning false stops enumeration early. An empty sizes slice
// yields a single empty vector.
func Product(sizes []int, fn func([]int) bool) error {
	for i, s := range sizes {
		if s <= 0 {
			return fmt.Errorf("combin: product dimension %d has non-positive size %d", i, s)
		}
	}
	buf := make([]int, len(sizes))
	for {
		if !fn(buf) {
			return nil
		}
		// Odometer increment.
		i := len(sizes) - 1
		for ; i >= 0; i-- {
			buf[i]++
			if buf[i] < sizes[i] {
				break
			}
			buf[i] = 0
		}
		if i < 0 {
			return nil
		}
	}
}

// CollectCompositions materialises Compositions(total, parts) as a slice of
// freshly allocated vectors. Intended for small strategy spaces in tests and
// exhaustive oracles; use Compositions directly when streaming suffices.
func CollectCompositions(total, parts int) ([][]int, error) {
	n, err := CountCompositions(total, parts)
	if err != nil {
		return nil, err
	}
	out := make([][]int, 0, n)
	err = Compositions(total, parts, func(v []int) bool {
		out = append(out, append([]int(nil), v...))
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
