package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestLineChartBasic(t *testing.T) {
	s := []Series{
		{Name: "tdma", X: []float64{1, 2, 3, 4}, Y: []float64{5, 5, 5, 5}},
		{Name: "csma", X: []float64{1, 2, 3, 4}, Y: []float64{5, 4.5, 4, 3.5}},
	}
	out, err := LineChart("R(k) by MAC", s, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"R(k) by MAC", "tdma", "csma", "*", "o", "+---"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + x labels + 2 legend lines
	if len(lines) != 1+10+1+1+2 {
		t.Fatalf("chart has %d lines:\n%s", len(lines), out)
	}
}

func TestLineChartSinglePointDomain(t *testing.T) {
	s := []Series{{Name: "p", X: []float64{2}, Y: []float64{3}}}
	if _, err := LineChart("", s, 20, 5); err != nil {
		t.Fatalf("degenerate domain should render: %v", err)
	}
}

func TestLineChartErrors(t *testing.T) {
	ok := []Series{{Name: "a", X: []float64{1}, Y: []float64{1}}}
	if _, err := LineChart("t", ok, 5, 5); err == nil {
		t.Error("tiny width should error")
	}
	if _, err := LineChart("t", nil, 40, 10); err == nil {
		t.Error("no series should error")
	}
	bad := []Series{{Name: "a", X: []float64{1, 2}, Y: []float64{1}}}
	if _, err := LineChart("t", bad, 40, 10); err == nil {
		t.Error("ragged series should error")
	}
	nan := []Series{{Name: "a", X: []float64{math.NaN()}, Y: []float64{1}}}
	if _, err := LineChart("t", nan, 40, 10); err == nil {
		t.Error("NaN should error")
	}
	many := make([]Series, 9)
	for i := range many {
		many[i] = Series{Name: "s", X: []float64{1}, Y: []float64{1}}
	}
	if _, err := LineChart("t", many, 40, 10); err == nil {
		t.Error("too many series should error")
	}
	empty := []Series{{Name: "a"}}
	if _, err := LineChart("t", empty, 40, 10); err == nil {
		t.Error("empty series should error")
	}
}

func TestBarChart(t *testing.T) {
	out, err := BarChart("loads", []string{"c1", "c2", "c3"}, []float64{4, 2, 0}, 20)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("bar chart has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 20)) {
		t.Errorf("max bar not full width:\n%s", out)
	}
	if strings.Contains(lines[3], "#") {
		t.Errorf("zero bar should be empty:\n%s", out)
	}
}

func TestBarChartAllZero(t *testing.T) {
	out, err := BarChart("", []string{"a"}, []float64{0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "#") {
		t.Fatal("all-zero chart should have no bars")
	}
}

func TestBarChartErrors(t *testing.T) {
	if _, err := BarChart("t", []string{"a"}, []float64{1, 2}, 20); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := BarChart("t", nil, nil, 20); err == nil {
		t.Error("no bars should error")
	}
	if _, err := BarChart("t", []string{"a"}, []float64{1}, 2); err == nil {
		t.Error("tiny width should error")
	}
	if _, err := BarChart("t", []string{"a"}, []float64{-1}, 20); err == nil {
		t.Error("negative value should error")
	}
}

func TestTable(t *testing.T) {
	out, err := Table([]string{"n", "rate"}, [][]string{
		{"1", "5.00"},
		{"10", "4.75"},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "--") {
		t.Errorf("missing separator:\n%s", out)
	}
	// All rows align to the same width.
	if len(lines[0]) != len(lines[2]) {
		t.Errorf("misaligned table:\n%s", out)
	}
}

func TestTableErrors(t *testing.T) {
	if _, err := Table(nil, nil); err == nil {
		t.Error("no headers should error")
	}
	if _, err := Table([]string{"a"}, [][]string{{"1", "2"}}); err == nil {
		t.Error("ragged row should error")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []string{"x", "y"}, [][]string{{"1", "2"}, {"3", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,2\n3,4\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}

func TestWriteCSVErrors(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b, nil, nil); err == nil {
		t.Error("no headers should error")
	}
	if err := WriteCSV(&b, []string{"a"}, [][]string{{"1", "2"}}); err == nil {
		t.Error("ragged row should error")
	}
}

func TestSeriesCSV(t *testing.T) {
	var b strings.Builder
	err := SeriesCSV(&b, []Series{
		{Name: "a", X: []float64{1, 2}, Y: []float64{3, 4}},
		{Name: "b", X: []float64{1}, Y: []float64{9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "series,x,y\na,1,3\na,2,4\nb,1,9\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}

func TestSeriesCSVErrors(t *testing.T) {
	var b strings.Builder
	if err := SeriesCSV(&b, nil); err == nil {
		t.Error("no series should error")
	}
	if err := SeriesCSV(&b, []Series{{Name: "a", X: []float64{1}}}); err == nil {
		t.Error("ragged series should error")
	}
}
