// Package textplot renders the repository's figures as ASCII charts and CSV
// series. Go has no standard plotting ecosystem, so every experiment emits
// a human-readable chart for the terminal plus a machine-readable CSV for
// external tooling.
package textplot

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Series is one named line on a chart. X and Y must have equal lengths.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// markers are assigned to series in order.
const markers = "*o+x#@%&"

// LineChart renders one or more series on a width×height ASCII grid with
// axis labels and a legend.
func LineChart(title string, series []Series, width, height int) (string, error) {
	if width < 16 || height < 4 {
		return "", fmt.Errorf("textplot: chart %dx%d too small (min 16x4)", width, height)
	}
	if len(series) == 0 {
		return "", fmt.Errorf("textplot: no series")
	}
	if len(series) > len(markers) {
		return "", fmt.Errorf("textplot: %d series exceed %d markers", len(series), len(markers))
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("textplot: series %q has %d x but %d y values", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) || math.IsInf(s.X[i], 0) || math.IsInf(s.Y[i], 0) {
				return "", fmt.Errorf("textplot: series %q has non-finite point at %d", s.Name, i)
			}
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
			points++
		}
	}
	if points == 0 {
		return "", fmt.Errorf("textplot: all series empty")
	}
	if minX == maxX {
		minX, maxX = minX-1, maxX+1
	}
	if minY == maxY {
		minY, maxY = minY-1, maxY+1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := markers[si]
		for i := range s.X {
			col := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			row := int(math.Round((s.Y[i] - minY) / (maxY - minY) * float64(height-1)))
			grid[height-1-row][col] = mark
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	yLo, yHi := formatTick(minY), formatTick(maxY)
	labelWidth := len(yLo)
	if len(yHi) > labelWidth {
		labelWidth = len(yHi)
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", labelWidth)
		switch r {
		case 0:
			label = pad(yHi, labelWidth)
		case height - 1:
			label = pad(yLo, labelWidth)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", labelWidth), strings.Repeat("-", width))
	xLo, xHi := formatTick(minX), formatTick(maxX)
	gap := width - len(xLo) - len(xHi)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", labelWidth), xLo, strings.Repeat(" ", gap), xHi)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si], s.Name)
	}
	return b.String(), nil
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return strings.Repeat(" ", width-len(s)) + s
}

func formatTick(v float64) string {
	return strconv.FormatFloat(v, 'g', 4, 64)
}

// BarChart renders labelled horizontal bars scaled to the maximum value.
func BarChart(title string, labels []string, values []float64, width int) (string, error) {
	if len(labels) != len(values) {
		return "", fmt.Errorf("textplot: %d labels for %d values", len(labels), len(values))
	}
	if len(labels) == 0 {
		return "", fmt.Errorf("textplot: no bars")
	}
	if width < 8 {
		return "", fmt.Errorf("textplot: bar width %d too small", width)
	}
	maxV := math.Inf(-1)
	for _, v := range values {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return "", fmt.Errorf("textplot: bar value %v must be finite and non-negative", v)
		}
		maxV = math.Max(maxV, v)
	}
	labelWidth := 0
	for _, l := range labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, v := range values {
		bar := 0
		if maxV > 0 {
			bar = int(math.Round(v / maxV * float64(width)))
		}
		fmt.Fprintf(&b, "%-*s | %s %.4g\n", labelWidth, labels[i], strings.Repeat("#", bar), v)
	}
	return b.String(), nil
}

// Table renders an aligned text table.
func Table(headers []string, rows [][]string) (string, error) {
	if len(headers) == 0 {
		return "", fmt.Errorf("textplot: no headers")
	}
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		if len(row) != len(headers) {
			return "", fmt.Errorf("textplot: row has %d cells, want %d", len(row), len(headers))
		}
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String(), nil
}

// WriteCSV emits headers and rows as CSV.
func WriteCSV(w io.Writer, headers []string, rows [][]string) error {
	if len(headers) == 0 {
		return fmt.Errorf("textplot: no headers")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(headers); err != nil {
		return fmt.Errorf("textplot: writing CSV header: %w", err)
	}
	for i, row := range rows {
		if len(row) != len(headers) {
			return fmt.Errorf("textplot: CSV row %d has %d cells, want %d", i, len(row), len(headers))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("textplot: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("textplot: flushing CSV: %w", err)
	}
	return nil
}

// SeriesCSV renders one or more series as long-format CSV rows
// (series,x,y), convenient for external plotting tools.
func SeriesCSV(w io.Writer, series []Series) error {
	if len(series) == 0 {
		return fmt.Errorf("textplot: no series")
	}
	rows := make([][]string, 0, 64)
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("textplot: series %q has %d x but %d y values", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			rows = append(rows, []string{
				s.Name,
				strconv.FormatFloat(s.X[i], 'g', -1, 64),
				strconv.FormatFloat(s.Y[i], 'g', -1, 64),
			})
		}
	}
	return WriteCSV(w, []string{"series", "x", "y"}, rows)
}
