package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.Variance() != 0 || r.StdDev() != 0 || r.StdErr() != 0 {
		t.Fatalf("zero-value Running should report zeros, got %+v", r.Summary())
	}
}

func TestRunningSingle(t *testing.T) {
	var r Running
	r.Add(42)
	if r.N() != 1 {
		t.Fatalf("N = %d, want 1", r.N())
	}
	if r.Mean() != 42 {
		t.Fatalf("Mean = %v, want 42", r.Mean())
	}
	if r.Variance() != 0 {
		t.Fatalf("Variance of single sample = %v, want 0", r.Variance())
	}
	if r.Min() != 42 || r.Max() != 42 {
		t.Fatalf("Min/Max = %v/%v, want 42/42", r.Min(), r.Max())
	}
}

func TestRunningKnownValues(t *testing.T) {
	var r Running
	r.AddAll(2, 4, 4, 4, 5, 5, 7, 9)
	if got, want := r.Mean(), 5.0; !almostEqual(got, want, 1e-12) {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	// Population variance is 4; sample variance is 4*8/7.
	if got, want := r.Variance(), 32.0/7.0; !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", r.Min(), r.Max())
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	f := func(xs []float64) bool {
		cleaned := make([]float64, 0, len(xs))
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				continue
			}
			cleaned = append(cleaned, x)
		}
		if len(cleaned) < 2 {
			return true
		}
		var r Running
		r.AddAll(cleaned...)
		mean, err := Mean(cleaned)
		if err != nil {
			return false
		}
		v, err := Variance(cleaned)
		if err != nil {
			return false
		}
		scale := math.Max(1, math.Abs(mean))
		return almostEqual(r.Mean(), mean, 1e-6*scale) && almostEqual(r.Variance(), v, 1e-4*math.Max(1, v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanErrors(t *testing.T) {
	if _, err := Mean(nil); err == nil {
		t.Fatal("Mean(nil) should error")
	}
	if _, err := Variance([]float64{1}); err == nil {
		t.Fatal("Variance of one sample should error")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, tc := range tests {
		got, err := Quantile(xs, tc.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", tc.q, err)
		}
		if !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Quantile mutated input: %v", xs)
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty input should error")
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Error("q < 0 should error")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Error("q > 1 should error")
	}
	if _, err := Quantile([]float64{1}, math.NaN()); err == nil {
		t.Error("NaN q should error")
	}
}

func TestMedianSingleton(t *testing.T) {
	got, err := Median([]float64{7})
	if err != nil || got != 7 {
		t.Fatalf("Median([7]) = %v, %v; want 7, nil", got, err)
	}
}

func TestJainIndex(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"equal", []float64{5, 5, 5, 5}, 1},
		{"single-winner", []float64{0, 0, 0, 8}, 0.25},
		{"two-of-four", []float64{4, 4, 0, 0}, 0.5},
		{"all-zero", []float64{0, 0}, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := JainIndex(tc.xs)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got, tc.want, 1e-12) {
				t.Fatalf("JainIndex(%v) = %v, want %v", tc.xs, got, tc.want)
			}
		})
	}
}

func TestJainIndexRange(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Clamp magnitude so Σx² cannot overflow to +Inf.
			xs = append(xs, math.Abs(math.Mod(x, 1e6)))
		}
		if len(xs) == 0 {
			return true
		}
		j, err := JainIndex(xs)
		if err != nil {
			return false
		}
		n := float64(len(xs))
		return j >= 1/n-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJainIndexRejectsNegative(t *testing.T) {
	if _, err := JainIndex([]float64{1, -1}); err == nil {
		t.Fatal("negative value should error")
	}
}

func TestNormalQuantile(t *testing.T) {
	tests := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.975, 1.959964},
		{0.995, 2.575829},
		{0.025, -1.959964},
		{0.84134474, 1.0},
	}
	for _, tc := range tests {
		got := normalQuantile(tc.p)
		if !almostEqual(got, tc.want, 1e-4) {
			t.Errorf("normalQuantile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestConfidenceInterval(t *testing.T) {
	xs := []float64{10, 12, 9, 11, 10, 8, 12, 10}
	iv, err := ConfidenceInterval(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo >= iv.Mean || iv.Hi <= iv.Mean {
		t.Fatalf("interval %v does not bracket mean", iv)
	}
	if !almostEqual(iv.Mean-iv.Lo, iv.Hi-iv.Mean, 1e-12) {
		t.Fatalf("interval %v not symmetric", iv)
	}
	wide, err := ConfidenceInterval(xs, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Hi-wide.Lo <= iv.Hi-iv.Lo {
		t.Fatalf("99%% interval should be wider than 95%%: %v vs %v", wide, iv)
	}
}

func TestConfidenceIntervalErrors(t *testing.T) {
	if _, err := ConfidenceInterval(nil, 0.95); err == nil {
		t.Error("empty data should error")
	}
	if _, err := ConfidenceInterval([]float64{1}, 0); err == nil {
		t.Error("level 0 should error")
	}
	if _, err := ConfidenceInterval([]float64{1}, 1); err == nil {
		t.Error("level 1 should error")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 {
		t.Errorf("Under = %d, want 1", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("Over = %d, want 2", h.Over)
	}
	wantCounts := []int{2, 1, 1, 0, 1}
	for i, want := range wantCounts {
		if h.Counts[i] != want {
			t.Errorf("Counts[%d] = %d, want %d", i, h.Counts[i], want)
		}
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
	if got := h.BinCenter(0); !almostEqual(got, 1, 1e-12) {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
}

func TestHistogramEdgeRounding(t *testing.T) {
	h, err := NewHistogram(0, 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 0.3 - epsilon values must land in the last bin, not panic.
	h.Add(math.Nextafter(0.3, 0))
	if h.Counts[2] != 1 {
		t.Fatalf("edge value landed in %v", h.Counts)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("0 bins should error")
	}
	if _, err := NewHistogram(1, 1, 3); err == nil {
		t.Error("empty range should error")
	}
	if _, err := NewHistogram(2, 1, 3); err == nil {
		t.Error("inverted range should error")
	}
}

func TestSummaryString(t *testing.T) {
	var r Running
	r.AddAll(1, 2, 3)
	s := r.Summary().String()
	if s == "" {
		t.Fatal("empty summary string")
	}
}

func TestIntervalString(t *testing.T) {
	iv := Interval{Mean: 1, Lo: 0.5, Hi: 1.5, Level: 0.95}
	if iv.String() == "" {
		t.Fatal("empty interval string")
	}
}
