// Package stats provides the descriptive statistics used by the experiment
// harnesses: streaming moments, quantiles, confidence intervals, fairness
// indices and fixed-width histograms.
//
// The package is intentionally small and dependency-free; it exists so that
// benchmark and simulation code never hand-rolls numerically fragile
// accumulators.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoData is returned by summaries that need at least one observation.
var ErrNoData = errors.New("stats: no data")

// Running accumulates streaming mean and variance using Welford's algorithm.
// The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// AddAll records every observation in xs.
func (r *Running) AddAll(xs ...float64) {
	for _, x := range xs {
		r.Add(x)
	}
}

// N reports the number of observations recorded so far.
func (r *Running) N() int { return r.n }

// Mean reports the running mean. It is 0 for an empty accumulator.
func (r *Running) Mean() float64 { return r.mean }

// Min reports the smallest observation, or 0 when empty.
func (r *Running) Min() float64 { return r.min }

// Max reports the largest observation, or 0 when empty.
func (r *Running) Max() float64 { return r.max }

// Variance reports the unbiased sample variance (n-1 denominator).
// It is 0 when fewer than two observations were recorded.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev reports the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// StdErr reports the standard error of the mean.
func (r *Running) StdErr() float64 {
	if r.n == 0 {
		return 0
	}
	return r.StdDev() / math.Sqrt(float64(r.n))
}

// Summary is a point-in-time snapshot of a Running accumulator.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summary snapshots the accumulator.
func (r *Running) Summary() Summary {
	return Summary{N: r.n, Mean: r.mean, StdDev: r.StdDev(), Min: r.min, Max: r.max}
}

// String renders the summary as "mean ± sd [min, max] (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.6g ± %.3g [%.6g, %.6g] (n=%d)", s.Mean, s.StdDev, s.Min, s.Max, s.N)
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Variance returns the unbiased sample variance of xs.
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: variance needs >= 2 samples, got %d: %w", len(xs), ErrNoData)
	}
	var r Running
	r.AddAll(xs...)
	return r.Variance(), nil
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the numpy/R default).
// xs is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// JainIndex computes Jain's fairness index
//
//	J = (Σx)² / (n · Σx²)
//
// over the non-negative allocations xs. J is 1 for perfectly equal shares and
// 1/n when a single element receives everything.
func JainIndex(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	var sum, sumSq float64
	for _, x := range xs {
		if x < 0 || math.IsNaN(x) {
			return 0, fmt.Errorf("stats: Jain index requires non-negative values, got %v", x)
		}
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		// All-zero allocation: treat as perfectly fair by convention.
		return 1, nil
	}
	n := float64(len(xs))
	return sum * sum / (n * sumSq), nil
}

// normalQuantile returns the standard normal quantile for the given upper
// confidence level using the Acklam rational approximation (|error| < 1.2e-9
// over the open interval).
func normalQuantile(p float64) float64 {
	// Coefficients for the Acklam inverse-normal approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > 1-pLow:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// Interval is a symmetric confidence interval around a mean.
type Interval struct {
	Mean  float64
	Lo    float64
	Hi    float64
	Level float64
}

// String renders the interval as "mean [lo, hi] @ level".
func (iv Interval) String() string {
	return fmt.Sprintf("%.6g [%.6g, %.6g] @%.0f%%", iv.Mean, iv.Lo, iv.Hi, iv.Level*100)
}

// ConfidenceInterval returns a normal-approximation confidence interval for
// the mean of xs at the given level (e.g. 0.95).
func ConfidenceInterval(xs []float64, level float64) (Interval, error) {
	if len(xs) == 0 {
		return Interval{}, ErrNoData
	}
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("stats: confidence level %v out of (0,1)", level)
	}
	var r Running
	r.AddAll(xs...)
	z := normalQuantile(1 - (1-level)/2)
	half := z * r.StdErr()
	return Interval{Mean: r.Mean(), Lo: r.Mean() - half, Hi: r.Mean() + half, Level: level}, nil
}

// Histogram is a fixed-width histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi   float64
	Counts   []int
	Under    int // observations below Lo
	Over     int // observations at or above Hi
	binWidth float64
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs >= 1 bin, got %d", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram bounds [%v, %v) are empty", lo, hi)
	}
	return &Histogram{
		Lo:       lo,
		Hi:       hi,
		Counts:   make([]int, bins),
		binWidth: (hi - lo) / float64(bins),
	}, nil
}

// Add records an observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		idx := int((x - h.Lo) / h.binWidth)
		if idx >= len(h.Counts) { // guard against float rounding at the edge
			idx = len(h.Counts) - 1
		}
		h.Counts[idx]++
	}
}

// Total reports the number of observations recorded, including out-of-range.
func (h *Histogram) Total() int {
	total := h.Under + h.Over
	for _, c := range h.Counts {
		total += c
	}
	return total
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.binWidth
}
