package dynamics

import "github.com/multiradio/chanalloc/internal/obs"

// Dynamics metrics: one atomic add per completed run (sweeps themselves
// count in the workspace via the kernel counters). Warm-start skips are
// the number Requilibrate exists to maximise — dp-calls saved per event —
// so they get their own counter next to the totals.
var (
	mRuns          = obs.NewCounter("dynamics_runs_total")
	mRounds        = obs.NewCounter("dynamics_rounds_total")
	mMoves         = obs.NewCounter("dynamics_moves_total")
	mRequilibrates = obs.NewCounter("dynamics_requilibrates_total")
	mWarmSkips     = obs.NewCounter("dynamics_warm_skips_total")
)
