package dynamics

import (
	"runtime"
	"testing"

	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

func batchGame(t *testing.T) *core.Game {
	t.Helper()
	g, err := core.NewGame(8, 6, 3, ratefn.NewTDMA(1))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestRunBatchDeterministicAcrossWorkers: per-replicate seeds come from the
// root seed and replicate index only, so the batch must not change with the
// pool size.
func TestRunBatchDeterministicAcrossWorkers(t *testing.T) {
	g := batchGame(t)
	for _, proc := range []Process{BestResponseProcess, RadioGreedyProcess, SimultaneousProcess} {
		spec := BatchSpec{Process: proc, Inertia: 0.5, Replicates: 16, Seed: 11, Workers: 1}
		base, err := RunBatch(g, spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{4, runtime.NumCPU()} {
			spec.Workers = workers
			got, err := RunBatch(g, spec)
			if err != nil {
				t.Fatal(err)
			}
			if got.Converged != base.Converged ||
				got.MeanRounds != base.MeanRounds || got.MeanMoves != base.MeanMoves {
				t.Fatalf("%s workers=%d: aggregate drifted", proc, workers)
			}
			for r := range base.Runs {
				if !base.Runs[r].Final.Equal(got.Runs[r].Final) {
					t.Fatalf("%s workers=%d: replicate %d final state differs", proc, workers, r)
				}
			}
		}
	}
}

// TestRunBatchConvergesToNE: every converged best-response replicate ends
// at a Nash equilibrium.
func TestRunBatchConvergesToNE(t *testing.T) {
	g := batchGame(t)
	res, err := RunBatch(g, BatchSpec{Process: BestResponseProcess, Replicates: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged != 10 {
		t.Fatalf("converged %d/10", res.Converged)
	}
	for r, run := range res.Runs {
		ne, err := g.IsNashEquilibrium(run.Final)
		if err != nil {
			t.Fatal(err)
		}
		if !ne {
			t.Fatalf("replicate %d did not end at a NE", r)
		}
	}
	if res.MeanRounds <= 0 || len(res.Engine.JobTimes) != 10 {
		t.Fatalf("aggregates missing: %+v", res)
	}
}

// TestRunBatchValidation covers spec errors.
func TestRunBatchValidation(t *testing.T) {
	g := batchGame(t)
	if _, err := RunBatch(nil, BatchSpec{Process: BestResponseProcess, Replicates: 1}); err == nil {
		t.Fatal("nil game accepted")
	}
	if _, err := RunBatch(g, BatchSpec{Process: BestResponseProcess}); err == nil {
		t.Fatal("zero replicates accepted")
	}
	if _, err := RunBatch(g, BatchSpec{Replicates: 1}); err == nil {
		t.Fatal("missing process accepted")
	}
	if _, err := RunBatch(g, BatchSpec{Process: SimultaneousProcess, Inertia: 2, Replicates: 1}); err == nil {
		t.Fatal("inertia outside [0,1] accepted")
	}
}
