package dynamics

import (
	"testing"

	"github.com/multiradio/chanalloc/internal/des"
	"github.com/multiradio/chanalloc/internal/hetero"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

// applyRandomChurn applies one seeded random mutation to lg and reports a
// short label for failure messages. Budgets stay within [1, channels].
func applyRandomChurn(t *testing.T, lg *hetero.LiveGame, rng *des.RNG) string {
	t.Helper()
	users := lg.Users()
	switch {
	case users == 0 || rng.Float64() < 0.4:
		k := 1 + rng.Intn(lg.Channels())
		if _, err := lg.Join(k); err != nil {
			t.Fatalf("join(%d): %v", k, err)
		}
		return "join"
	case rng.Float64() < 0.5:
		id := lg.IDAt(rng.Intn(users))
		if err := lg.Leave(id); err != nil {
			t.Fatalf("leave(%d): %v", id, err)
		}
		return "leave"
	default:
		id := lg.IDAt(rng.Intn(users))
		k := 1 + rng.Intn(lg.Channels())
		if err := lg.SetBudget(id, k); err != nil {
			t.Fatalf("budget(%d, %d): %v", id, k, err)
		}
		return "budget"
	}
}

// TestRequilibrateDifferentialPin is the acceptance gate for the warm
// start: over a seeded churn trace, after EVERY event the re-equilibrated
// allocation is a Nash equilibrium per the exact oracle, the run verdict
// and terminal allocation are bit-identical to cold-start dynamics from
// the same post-churn state, and the warm run issues no more DP calls —
// strictly fewer summed over the trace.
func TestRequilibrateDifferentialPin(t *testing.T) {
	for _, tc := range []struct {
		name     string
		channels int
		seed     uint64
		events   int
	}{
		{"3ch", 3, 0x5eed_0001, 60},
		{"4ch", 4, 0x5eed_0002, 60},
		{"6ch", 6, 0x5eed_0003, 40},
	} {
		t.Run(tc.name, func(t *testing.T) {
			lg, err := hetero.NewLiveGame(tc.channels, ratefn.NewTDMA(54))
			if err != nil {
				t.Fatal(err)
			}
			rng := des.NewRNG(tc.seed)
			warmDP, coldDP := 0, 0
			for ev := 0; ev < tc.events; ev++ {
				kind := applyRandomChurn(t, lg, rng)
				if lg.Users() == 0 {
					if res, err := Requilibrate(lg); err != nil || !res.Converged {
						t.Fatalf("event %d (%s): empty requilibrate = %+v, %v", ev, kind, res, err)
					}
					continue
				}

				// Cold baseline from the identical post-churn state.
				g := lg.Frozen()
				start := lg.Alloc().Clone()

				res, err := Requilibrate(lg)
				if err != nil {
					t.Fatalf("event %d (%s): requilibrate: %v", ev, kind, err)
				}
				if !res.Converged {
					t.Fatalf("event %d (%s): did not converge in %d rounds", ev, kind, res.Rounds)
				}
				ne, err := g.IsNashEquilibrium(lg.Alloc())
				if err != nil {
					t.Fatalf("event %d (%s): oracle: %v", ev, kind, err)
				}
				if !ne {
					t.Fatalf("event %d (%s): terminal allocation is not an exact NE", ev, kind)
				}

				cold, err := RunBestResponseHetero(g, start)
				if err != nil {
					t.Fatalf("event %d (%s): cold baseline: %v", ev, kind, err)
				}
				if cold.Converged != res.Converged || cold.Rounds != res.Rounds || cold.Moves != res.Moves {
					t.Fatalf("event %d (%s): warm (rounds=%d moves=%d conv=%v) != cold (rounds=%d moves=%d conv=%v)",
						ev, kind, res.Rounds, res.Moves, res.Converged, cold.Rounds, cold.Moves, cold.Converged)
				}
				if !cold.Final.Equal(lg.Alloc()) {
					t.Fatalf("event %d (%s): warm and cold terminal allocations differ", ev, kind)
				}
				if res.DPCalls > cold.DPCalls {
					t.Fatalf("event %d (%s): warm start used MORE DP calls (%d) than cold (%d)",
						ev, kind, res.DPCalls, cold.DPCalls)
				}
				warmDP += res.DPCalls
				coldDP += cold.DPCalls
			}
			if warmDP >= coldDP {
				t.Fatalf("warm start saved nothing over the trace: warm=%d cold=%d DP calls", warmDP, coldDP)
			}
			t.Logf("trace DP calls: warm=%d cold=%d (saved %.1f%%)",
				warmDP, coldDP, 100*float64(coldDP-warmDP)/float64(coldDP))
		})
	}
}

// TestRequilibrateEmptyAndErrors covers the trivial and failure paths.
func TestRequilibrateEmptyAndErrors(t *testing.T) {
	if _, err := Requilibrate(nil); err == nil {
		t.Fatal("nil live game accepted")
	}
	lg, err := hetero.NewLiveGame(3, ratefn.NewTDMA(54))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Requilibrate(lg)
	if err != nil || !res.Converged {
		t.Fatalf("empty requilibrate = %+v, %v", res, err)
	}
	if _, err := Requilibrate(lg, WithEps(-1)); err == nil {
		t.Fatal("negative eps accepted")
	}
}

// TestRequilibrateWarmSkipsSomething pins that join-only churn on an
// equilibrated game actually carries verdicts over (WarmSkipped > 0), and
// that a load-decreasing event voids them all.
func TestRequilibrateWarmSkipsSomething(t *testing.T) {
	lg, err := hetero.NewLiveGame(6, ratefn.NewTDMA(54))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := lg.Join(1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Requilibrate(lg); err != nil {
		t.Fatal(err)
	}
	// A single-radio joiner on an equilibrated 5-user game: users off the
	// seeded channel keep their verdicts.
	id, err := lg.Join(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Requilibrate(lg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmSkipped == 0 {
		t.Fatal("join-only churn carried no quiet verdicts over")
	}
	if res.Events != 1 {
		t.Fatalf("events = %d, want 1", res.Events)
	}

	// A departure decreases loads: every verdict is void.
	if err := lg.Leave(id); err != nil {
		t.Fatal(err)
	}
	res, err = Requilibrate(lg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmSkipped != 0 {
		t.Fatalf("load-decreasing churn carried %d verdicts over, want 0", res.WarmSkipped)
	}
}
