package dynamics

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

func mustGame(t *testing.T, users, channels, radios int, r ratefn.Func) *core.Game {
	t.Helper()
	g, err := core.NewGame(users, channels, radios, r)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBestResponseConvergesToNE(t *testing.T) {
	rates := []ratefn.Func{
		ratefn.NewTDMA(1),
		ratefn.Harmonic{R0: 1, Alpha: 0.5},
		ratefn.Geometric{R0: 1, Beta: 0.8},
	}
	for _, r := range rates {
		for seed := uint64(0); seed < 5; seed++ {
			g := mustGame(t, 5, 4, 3, r)
			start := RandomAlloc(g, seed)
			res, err := RunBestResponse(g, start)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("%s seed %d: did not converge in %d rounds", r.Name(), seed, res.Rounds)
			}
			ne, err := g.IsNashEquilibrium(res.Final)
			if err != nil {
				t.Fatal(err)
			}
			if !ne {
				t.Fatalf("%s seed %d: converged state is not NE:\n%v", r.Name(), seed, res.Final)
			}
		}
	}
}

func TestBestResponseDoesNotMutateStart(t *testing.T) {
	g := mustGame(t, 3, 3, 2, ratefn.NewTDMA(1))
	start := RandomAlloc(g, 1)
	snapshot := start.Clone()
	if _, err := RunBestResponse(g, start); err != nil {
		t.Fatal(err)
	}
	if !start.Equal(snapshot) {
		t.Fatal("RunBestResponse mutated the caller's allocation")
	}
}

func TestBestResponseFromNEIsQuiet(t *testing.T) {
	g := mustGame(t, 4, 5, 3, ratefn.NewTDMA(1))
	ne, err := core.Algorithm1(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBestResponse(g, ne)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Moves != 0 || res.Rounds != 1 {
		t.Fatalf("starting at NE should converge immediately: %+v", res)
	}
	if !res.Final.Equal(ne) {
		t.Fatal("quiet run changed the allocation")
	}
}

func TestRadioGreedyConvergesAndPotentialIncreases(t *testing.T) {
	rates := []ratefn.Func{
		ratefn.NewTDMA(1),
		ratefn.Harmonic{R0: 1, Alpha: 1},
	}
	for _, r := range rates {
		for seed := uint64(0); seed < 5; seed++ {
			g := mustGame(t, 6, 5, 4, r)
			start := RandomAlloc(g, seed)
			res, err := RunRadioGreedy(g, start)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("%s seed %d: radio-greedy did not converge", r.Name(), seed)
			}
			for i := 1; i < len(res.PotentialTrace); i++ {
				if res.PotentialTrace[i] < res.PotentialTrace[i-1]-1e-9 {
					t.Fatalf("%s seed %d: potential decreased at round %d: %v",
						r.Name(), seed, i, res.PotentialTrace)
				}
			}
		}
	}
}

func TestRadioGreedyTerminalHasNoSingleMoves(t *testing.T) {
	g := mustGame(t, 5, 4, 3, ratefn.NewTDMA(1))
	res, err := RunRadioGreedy(g, RandomAlloc(g, 3))
	if err != nil {
		t.Fatal(err)
	}
	a := res.Final
	for i := 0; i < g.Users(); i++ {
		for from := 0; from < g.Channels(); from++ {
			if a.Radios(i, from) == 0 {
				continue
			}
			for to := 0; to < g.Channels(); to++ {
				if to == from {
					continue
				}
				delta, err := g.BenefitOfMove(a, i, from, to)
				if err != nil {
					t.Fatal(err)
				}
				if delta > core.DefaultEps {
					t.Fatalf("terminal state admits single-radio improvement u%d c%d->c%d (+%v)",
						i+1, from+1, to+1, delta)
				}
			}
		}
	}
}

func TestRadioGreedyTerminalIsLoadBalancedUnderConstantR(t *testing.T) {
	// Single-radio stability implies δ <= 1 under constant R (Lemma 2's
	// contrapositive applies to any radio on an overloaded channel).
	for seed := uint64(0); seed < 10; seed++ {
		g := mustGame(t, 7, 6, 4, ratefn.NewTDMA(1))
		res, err := RunRadioGreedy(g, RandomAlloc(g, seed))
		if err != nil {
			t.Fatal(err)
		}
		maxLoad, _ := res.Final.MaxLoad()
		minLoad, _ := res.Final.MinLoad()
		if maxLoad-minLoad > 1 {
			t.Fatalf("seed %d: terminal loads unbalanced: %v", seed, res.Final.Loads())
		}
	}
}

func TestSchedulesBothConverge(t *testing.T) {
	for _, sched := range []Schedule{RoundRobin, RandomOrder} {
		g := mustGame(t, 5, 5, 3, ratefn.NewTDMA(1))
		res, err := RunBestResponse(g, RandomAlloc(g, 9), WithSchedule(sched), WithSeed(4))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("%v: did not converge", sched)
		}
	}
}

func TestMaxRoundsCapsRun(t *testing.T) {
	g := mustGame(t, 6, 5, 4, ratefn.NewTDMA(1))
	res, err := RunBestResponse(g, RandomAlloc(g, 2), WithMaxRounds(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
	// One round from a random start of this size is typically not quiet;
	// either way the result must be reported consistently.
	if res.Converged && res.Moves != 0 {
		t.Fatal("converged run must end with a quiet round")
	}
}

func TestOptionValidation(t *testing.T) {
	g := mustGame(t, 2, 2, 1, ratefn.NewTDMA(1))
	start := RandomAlloc(g, 0)
	if _, err := RunBestResponse(g, start, WithSchedule(Schedule(9))); err == nil {
		t.Error("bad schedule should error")
	}
	if _, err := RunBestResponse(g, start, WithMaxRounds(0)); err == nil {
		t.Error("zero rounds should error")
	}
	if _, err := RunBestResponse(g, start, WithEps(-1)); err == nil {
		t.Error("negative eps should error")
	}
	if _, err := RunRadioGreedy(g, start, WithMaxRounds(0)); err == nil {
		t.Error("zero rounds should error for radio greedy")
	}
	wrong, err := core.NewAlloc(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunBestResponse(g, wrong); err == nil {
		t.Error("mismatched alloc should error")
	}
	if _, err := RunRadioGreedy(g, wrong); err == nil {
		t.Error("mismatched alloc should error for radio greedy")
	}
}

func TestPotentialMatchesSingleRadioMoveForSingletonOwner(t *testing.T) {
	// For a user owning exactly one radio on the source channel and none on
	// the target, ΔU from a single-radio move equals ΔΦ — the
	// potential-game property.
	g := mustGame(t, 3, 3, 2, ratefn.Harmonic{R0: 1, Alpha: 0.4})
	a, err := core.AllocFromMatrix([][]int{
		{1, 1, 0},
		{1, 0, 1},
		{0, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for from := 0; from < 3; from++ {
			if a.Radios(i, from) != 1 {
				continue
			}
			for to := 0; to < 3; to++ {
				if to == from || a.Radios(i, to) != 0 {
					continue
				}
				deltaU, err := g.BenefitOfMove(a, i, from, to)
				if err != nil {
					t.Fatal(err)
				}
				moved := a.Clone()
				if err := moved.Move(i, from, to); err != nil {
					t.Fatal(err)
				}
				deltaPhi := Potential(g.Rate(), moved) - Potential(g.Rate(), a)
				if math.Abs(deltaU-deltaPhi) > 1e-9 {
					t.Fatalf("u%d c%d->c%d: ΔU=%v ΔΦ=%v", i+1, from+1, to+1, deltaU, deltaPhi)
				}
			}
		}
	}
}

func TestPotentialTraceLength(t *testing.T) {
	g := mustGame(t, 4, 4, 2, ratefn.NewTDMA(1))
	res, err := RunBestResponse(g, RandomAlloc(g, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PotentialTrace) != res.Rounds+1 {
		t.Fatalf("trace has %d entries for %d rounds", len(res.PotentialTrace), res.Rounds)
	}
}

func TestRandomAllocProperties(t *testing.T) {
	f := func(seed uint64) bool {
		g := mustGame(t, 4, 5, 3, ratefn.NewTDMA(1))
		a := RandomAlloc(g, seed)
		if a.TotalRadios() != 12 {
			return false
		}
		for i := 0; i < 4; i++ {
			if a.UserTotal(i) != 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomAllocDeterministicPerSeed(t *testing.T) {
	g := mustGame(t, 3, 4, 2, ratefn.NewTDMA(1))
	if !RandomAlloc(g, 7).Equal(RandomAlloc(g, 7)) {
		t.Fatal("same seed should reproduce the allocation")
	}
}

func TestScheduleString(t *testing.T) {
	for _, s := range []Schedule{RoundRobin, RandomOrder, Schedule(99)} {
		if s.String() == "" {
			t.Errorf("empty string for %d", int(s))
		}
	}
}

func TestBestResponseReachesTheoremNEOnConstantRate(t *testing.T) {
	// End-to-end: decentralised play lands on exactly the allocations
	// Theorem 1 characterises.
	for seed := uint64(0); seed < 8; seed++ {
		g := mustGame(t, 6, 5, 3, ratefn.NewTDMA(1))
		res, err := RunBestResponse(g, RandomAlloc(g, seed), WithSchedule(RandomOrder), WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("seed %d: not converged", seed)
		}
		if ok, v := core.TheoremNE(g, res.Final); !ok {
			t.Fatalf("seed %d: converged allocation fails Theorem 1: %v\n%v", seed, v, res.Final)
		}
	}
}
