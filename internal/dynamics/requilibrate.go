package dynamics

import (
	"fmt"

	"github.com/multiradio/chanalloc/internal/hetero"
	"github.com/multiradio/chanalloc/internal/obs"
)

// ReqResult reports a warm-started re-equilibration.
type ReqResult struct {
	Result
	// WarmSkipped counts users whose pre-churn quiet verdict was carried
	// over — their first best-response DP was skipped outright.
	WarmSkipped int
	// Events is the number of churn events folded into this run.
	Events int
}

// Requilibrate restores a live game to a Nash equilibrium after churn,
// warm-starting best-response dynamics from the previous equilibrium
// instead of replaying convergence from scratch. The live allocation is
// evolved IN PLACE; on a converged run it is an exact equilibrium of the
// current population (every user's DP found no improving deviation).
//
// The warm start carries pre-churn quiet verdicts forward where they are
// provably still valid. The utility of one radio among x own radios on a
// channel with external load m is v(m, x) = x/(m+x)·R(m+x), non-increasing
// in m for non-increasing R — so a user's best-response value is
// non-increasing in the loads it faces. If every churn event only ADDED
// load (joins, budget growth), then a user that (a) was quiet before the
// churn, (b) had its own row untouched, and (c) occupies no channel whose
// load changed, sees its current utility unchanged and its best
// alternative weakly worse: it is still quiet. Any load decrease (a leave
// or a budget cut) voids all verdicts — freed capacity can tempt anyone —
// and the run falls back to a full sweep from the warm allocation.
//
// Because carried verdicts only skip DPs for provable non-movers, the move
// sequence, rounds and terminal allocation are bit-identical to a cold
// RunBestResponseHetero from the same start; only Result.DPCalls shrinks.
func Requilibrate(lg *hetero.LiveGame, opts ...Option) (ReqResult, error) {
	if lg == nil {
		return ReqResult{}, fmt.Errorf("dynamics: nil live game")
	}
	cfg, err := buildConfig(opts)
	if err != nil {
		return ReqResult{}, err
	}
	wasQuiet := lg.Equilibrated()
	churn := lg.TakeChurn()
	if lg.Users() == 0 {
		// The empty allocation is trivially an equilibrium.
		lg.MarkEquilibrated(true)
		return ReqResult{
			Result: Result{Converged: true, PotentialTrace: []float64{0}},
			Events: churn.Events,
		}, nil
	}
	g := lg.Frozen()
	a := lg.Alloc()
	if err := g.CheckAlloc(a); err != nil {
		return ReqResult{}, fmt.Errorf("dynamics: live allocation invalid: %w", err)
	}

	var preQuiet []bool
	skipped := 0
	if wasQuiet && !churn.Decreased {
		preQuiet = make([]bool, lg.Users())
		for i := range preQuiet {
			if churn.Suspects[lg.IDAt(i)] {
				continue
			}
			onDirty := false
			for c := 0; c < lg.Channels(); c++ {
				if churn.Dirty[c] && a.Radios(i, c) > 0 {
					onDirty = true
					break
				}
			}
			if !onDirty {
				preQuiet[i] = true
				skipped++
			}
		}
	}

	res, err := bestResponseSweep(g, a, cfg, preQuiet)
	if err != nil {
		return ReqResult{}, err
	}
	lg.MarkEquilibrated(res.Converged)
	mRequilibrates.Inc()
	mWarmSkips.Add(uint64(skipped))
	obs.Emit("requilibrate", "", int64(res.Rounds), int64(res.Moves), int64(skipped))
	return ReqResult{Result: res, WarmSkipped: skipped, Events: churn.Events}, nil
}
