// Package dynamics implements decentralised convergence processes for the
// channel allocation game: users (or individual radios) repeatedly improve
// their own allocation until no one can.
//
// The paper proves what the stable points look like (Theorem 1) and gives a
// centralised algorithm to land on one; this package studies how selfish
// play *reaches* equilibria — the paper's "ongoing work" on distributed
// implementations (§3, §4). Two processes are provided:
//
//   - best-response dynamics: in each step one user replaces its whole
//     strategy row with an exact best response (package core's DP);
//   - radio-greedy dynamics: in each step one radio moves to the channel
//     that maximises its own rate. Single-radio moves strictly increase the
//     exact potential Φ(S) = Σ_c Σ_{j=1}^{k_c} R(j)/j, so this process can
//     never cycle.
package dynamics

import (
	"fmt"
	"math"

	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/des"
	"github.com/multiradio/chanalloc/internal/hetero"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

// Schedule determines the order in which users act each round.
type Schedule int

// Schedules. RoundRobin sweeps users 0..N-1 every round; RandomOrder
// shuffles the sweep each round.
const (
	RoundRobin Schedule = iota + 1
	RandomOrder
)

// String implements fmt.Stringer.
func (s Schedule) String() string {
	switch s {
	case RoundRobin:
		return "round-robin"
	case RandomOrder:
		return "random-order"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// Result reports one dynamics run.
type Result struct {
	// Converged is true when a full round passed with no improving move.
	Converged bool
	// Rounds is the number of full sweeps executed (including the final
	// quiet one).
	Rounds int
	// Moves counts strategy changes across the run.
	Moves int
	// DPCalls counts best-response DP invocations across the run (the
	// dominant cost of a best-response sweep; radio-greedy runs report 0).
	// Warm-started re-equilibration exists to shrink this number — see
	// Requilibrate.
	DPCalls int
	// Final is the terminal allocation (aliases the evolved copy, not the
	// caller's input).
	Final *core.Alloc
	// PotentialTrace records Φ after every round, starting with the initial
	// value (so len == Rounds+1).
	PotentialTrace []float64
}

// Game is the interface the sweeps drive: utilities, the workspace-backed
// best-response DP and the congestion potential. Both *core.Game (uniform
// budgets) and *hetero.Game (per-user budgets, and through it the live
// game's frozen snapshots) satisfy it, so every runner works on either.
type Game interface {
	Users() int
	Channels() int
	Utility(a *core.Alloc, i int) float64
	BestResponseInto(ws *core.Workspace, a *core.Alloc, i int) ([]int, float64, error)
	Potential(a *core.Alloc) float64
}

// Options configures a dynamics run.
type config struct {
	schedule  Schedule
	maxRounds int
	eps       float64
	seed      uint64
	ws        *core.Workspace
}

// workspace returns the injected workspace or a fresh one. Runs allocate
// nothing beyond the trace when the caller injects (batch replicates and
// the live server share pooled workspaces this way).
func (c *config) workspace() *core.Workspace {
	if c.ws != nil {
		return c.ws
	}
	return core.NewWorkspace()
}

// Option configures RunBestResponse and RunRadioGreedy.
type Option func(*config)

// WithSchedule selects the sweep order (default RoundRobin).
func WithSchedule(s Schedule) Option {
	return func(c *config) { c.schedule = s }
}

// WithMaxRounds caps the number of sweeps (default 1000).
func WithMaxRounds(n int) Option {
	return func(c *config) { c.maxRounds = n }
}

// WithEps sets the minimum strict improvement for a move (default
// core.DefaultEps). Larger values model switching costs.
func WithEps(eps float64) Option {
	return func(c *config) { c.eps = eps }
}

// WithSeed fixes the RNG seed for RandomOrder (default 0).
func WithSeed(seed uint64) Option {
	return func(c *config) { c.seed = seed }
}

// WithWorkspace injects the DP workspace the run should use instead of
// allocating its own — batch replicates, engine shards and the live
// server's event handlers share one (or borrow from core.Workspaces) so
// steady-state runs allocate nothing. The workspace must not be used
// concurrently; results are identical with or without injection.
func WithWorkspace(ws *core.Workspace) Option {
	return func(c *config) { c.ws = ws }
}

func buildConfig(opts []Option) (config, error) {
	cfg := config{schedule: RoundRobin, maxRounds: 1000, eps: core.DefaultEps}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.schedule != RoundRobin && cfg.schedule != RandomOrder {
		return cfg, fmt.Errorf("dynamics: unknown schedule %d", int(cfg.schedule))
	}
	if cfg.maxRounds < 1 {
		return cfg, fmt.Errorf("dynamics: maxRounds = %d, want >= 1", cfg.maxRounds)
	}
	if cfg.eps < 0 || math.IsNaN(cfg.eps) {
		return cfg, fmt.Errorf("dynamics: negative eps %v", cfg.eps)
	}
	return cfg, nil
}

// Potential evaluates the exact potential Φ(S) = Σ_c Σ_{j=1}^{k_c} R(j)/j.
// For a single-radio move by a user with exactly one radio on the source
// channel and none on the target, the change in the mover's utility equals
// the change in Φ (Rosenthal's congestion-game potential specialised to
// this game). Radio-greedy dynamics therefore cannot cycle through such
// states; the dynamics tests verify Φ is monotone along every run.
func Potential(r ratefn.Func, a *core.Alloc) float64 {
	var phi float64
	for c := 0; c < a.Channels(); c++ {
		for j := 1; j <= a.Load(c); j++ {
			phi += r.Rate(j) / float64(j)
		}
	}
	return phi
}

// RunBestResponse runs user-level best-response dynamics from the given
// starting allocation. The start is cloned; the caller's allocation is not
// modified. Convergence (a full quiet round) yields a Nash equilibrium by
// construction.
func RunBestResponse(g *core.Game, start *core.Alloc, opts ...Option) (Result, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return Result{}, err
	}
	if err := g.CheckAlloc(start); err != nil {
		return Result{}, err
	}
	return bestResponseSweep(g, start.Clone(), cfg, nil)
}

// RunBestResponseHetero is RunBestResponse over a heterogeneous-budget
// game: the identical sweep, workspace reuse and quiet caching, with each
// user's DP bounded by its own budget. It is also the cold-start baseline
// the warm-started Requilibrate is differentially pinned against.
func RunBestResponseHetero(g *hetero.Game, start *core.Alloc, opts ...Option) (Result, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return Result{}, err
	}
	if err := g.CheckAlloc(start); err != nil {
		return Result{}, err
	}
	return bestResponseSweep(g, start.Clone(), cfg, nil)
}

// bestResponseSweep is the shared best-response loop behind
// RunBestResponse, RunBestResponseHetero and Requilibrate. It evolves a IN
// PLACE (callers clone when the input must survive) and returns it as
// Result.Final.
//
// preQuiet warm-starts the quiet cache: preQuiet[i] true asserts user i
// provably has no improving deviation at the INITIAL allocation (move
// count 0), so its DP is skipped until somebody moves. Requilibrate derives
// this set from churn dirt plus the load-monotonicity argument; nil means
// no prior knowledge (every user is swept). Because a pre-quiet user is by
// assertion a non-mover, the move sequence, trace and terminal allocation
// are bit-identical to the preQuiet == nil run — only DPCalls differs.
func bestResponseSweep(g Game, a *core.Alloc, cfg config, preQuiet []bool) (Result, error) {
	rng := des.NewRNG(cfg.seed)
	// One workspace per run (injected or fresh): the whole convergence
	// process is allocation-free apart from the trace. g.Potential reads
	// the per-game rate table and is bit-identical to Potential(g.Rate(), a).
	ws := cfg.workspace()
	res := Result{Final: a, PotentialTrace: []float64{g.Potential(a)}}

	order := make([]int, g.Users())
	for i := range order {
		order[i] = i
	}
	// Cached quiet verdicts: quietAt[i] is the move count at which user i
	// was last verified to have no improving deviation, -1 if never. When
	// nobody has moved since (res.Moves unchanged), the allocation is
	// bit-identical to the one that verdict was computed on, so the DP is
	// skipped — same moves, trace and convergence round, at the cost of an
	// integer compare. The final quiet sweep in particular re-runs the DP
	// only for users checked before the last accepted move. A mover is
	// never marked quiet: its post-move utility comes from a different
	// float grouping than the DP fold, so the verdict must be recomputed.
	quietAt := make([]int, g.Users())
	for i := range quietAt {
		quietAt[i] = -1
		if preQuiet != nil && preQuiet[i] {
			quietAt[i] = 0
		}
	}
	for round := 0; round < cfg.maxRounds; round++ {
		if cfg.schedule == RandomOrder {
			order = rng.Perm(g.Users())
		}
		improved := false
		for _, i := range order {
			if quietAt[i] == res.Moves {
				continue
			}
			current := g.Utility(a, i)
			row, best, err := g.BestResponseInto(ws, a, i)
			if err != nil {
				return Result{}, fmt.Errorf("dynamics: best response for user %d: %w", i, err)
			}
			res.DPCalls++
			if best > current+cfg.eps {
				if err := a.SetRow(i, row); err != nil {
					return Result{}, fmt.Errorf("dynamics: applying row for user %d: %w", i, err)
				}
				res.Moves++
				improved = true
				continue
			}
			quietAt[i] = res.Moves
		}
		res.Rounds++
		res.PotentialTrace = append(res.PotentialTrace, g.Potential(a))
		if !improved {
			res.Converged = true
			break
		}
	}
	// Metrics are a side channel: three atomic adds per run, plus a flush
	// of the workspace-local kernel counts so injected (non-pooled)
	// workspaces report too. Flushing zeroes the counts, so the pool's own
	// flush on Put stays a no-op.
	mRuns.Inc()
	mRounds.Add(uint64(res.Rounds))
	mMoves.Add(uint64(res.Moves))
	ws.FlushObs()
	return res, nil
}

// RunRadioGreedy runs radio-level greedy dynamics: each user in turn
// considers every one of its radios and moves it to the channel maximising
// that radio's rate share, if the user's utility strictly improves by more
// than eps. Every accepted move strictly increases the potential Φ, so the
// process always terminates at a state where no single-radio move helps.
func RunRadioGreedy(g *core.Game, start *core.Alloc, opts ...Option) (Result, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return Result{}, err
	}
	if err := g.CheckAlloc(start); err != nil {
		return Result{}, err
	}
	a := start.Clone()
	rng := des.NewRNG(cfg.seed)
	res := Result{Final: a, PotentialTrace: []float64{g.Potential(a)}}

	order := make([]int, g.Users())
	for i := range order {
		order[i] = i
	}
	for round := 0; round < cfg.maxRounds; round++ {
		if cfg.schedule == RandomOrder {
			order = rng.Perm(g.Users())
		}
		improved := false
		for _, i := range order {
			for from := 0; from < g.Channels(); from++ {
				if a.Radios(i, from) == 0 {
					continue
				}
				bestTo, bestDelta := -1, cfg.eps
				for to := 0; to < g.Channels(); to++ {
					if to == from {
						continue
					}
					delta, err := g.BenefitOfMove(a, i, from, to)
					if err != nil {
						return Result{}, fmt.Errorf("dynamics: benefit of move: %w", err)
					}
					if delta > bestDelta {
						bestTo, bestDelta = to, delta
					}
				}
				if bestTo >= 0 {
					if err := a.Move(i, from, bestTo); err != nil {
						return Result{}, fmt.Errorf("dynamics: move: %w", err)
					}
					res.Moves++
					improved = true
				}
			}
		}
		res.Rounds++
		res.PotentialTrace = append(res.PotentialTrace, g.Potential(a))
		if !improved {
			res.Converged = true
			break
		}
	}
	return res, nil
}

// RandomAlloc builds a full-deployment allocation with each radio on an
// independently uniform channel — the canonical "cold start" for dynamics
// experiments.
func RandomAlloc(g *core.Game, seed uint64) *core.Alloc {
	rng := des.NewRNG(seed)
	a := g.NewEmptyAlloc()
	for i := 0; i < g.Users(); i++ {
		for j := 0; j < g.Radios(); j++ {
			// Adding one radio to a valid allocation cannot fail.
			if err := a.Add(i, rng.Intn(g.Channels()), 1); err != nil {
				panic("dynamics: random placement failed: " + err.Error())
			}
		}
	}
	return a
}
