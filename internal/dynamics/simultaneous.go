package dynamics

import (
	"fmt"

	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/des"
)

// RunSimultaneous runs simultaneous best-response dynamics with inertia:
// every round, all users compute a best response against the *current*
// state at once, and each user that found a strict improvement switches
// with probability inertia (0 < inertia <= 1).
//
// With inertia = 1 (everyone always switches) the process famously
// oscillates: all users chase the same under-loaded channels and overshoot,
// a miscoordination the paper's sequential Algorithm 1 avoids by
// construction. With inertia < 1 the symmetry breaks randomly and the
// process converges almost surely. The dynamics tests and experiment E6
// quantify both regimes.
func RunSimultaneous(g *core.Game, start *core.Alloc, inertia float64, opts ...Option) (Result, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return Result{}, err
	}
	if inertia <= 0 || inertia > 1 {
		return Result{}, fmt.Errorf("dynamics: inertia %v out of (0, 1]", inertia)
	}
	if err := g.CheckAlloc(start); err != nil {
		return Result{}, err
	}
	a := start.Clone()
	rng := des.NewRNG(cfg.seed)
	res := Result{Final: a, PotentialTrace: []float64{g.Potential(a)}}

	ws := cfg.workspace()
	rows := make([][]int, g.Users())
	for round := 0; round < cfg.maxRounds; round++ {
		// Phase 1: everyone plans against the same snapshot.
		anyImprovement := false
		for i := 0; i < g.Users(); i++ {
			rows[i] = nil
			current := g.Utility(a, i)
			row, best, err := g.BestResponseInto(ws, a, i)
			if err != nil {
				return Result{}, fmt.Errorf("dynamics: best response for user %d: %w", i, err)
			}
			if best > current+cfg.eps {
				anyImprovement = true
				if inertia == 1 || rng.Float64() < inertia {
					// The DP row aliases the workspace; copy before the next
					// user's plan overwrites it.
					rows[i] = append([]int(nil), row...)
				}
			}
		}
		// Phase 2: switches apply together.
		for i, row := range rows {
			if row == nil {
				continue
			}
			if err := a.SetRow(i, row); err != nil {
				return Result{}, fmt.Errorf("dynamics: applying row for user %d: %w", i, err)
			}
			res.Moves++
		}
		res.Rounds++
		res.PotentialTrace = append(res.PotentialTrace, g.Potential(a))
		if !anyImprovement {
			res.Converged = true
			break
		}
	}
	return res, nil
}
