package dynamics

import (
	"fmt"

	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/des"
	"github.com/multiradio/chanalloc/internal/engine"
)

// Process selects the convergence process a batch replicates.
type Process int

// Batchable processes.
const (
	BestResponseProcess Process = iota + 1
	RadioGreedyProcess
	SimultaneousProcess
)

// String implements fmt.Stringer.
func (p Process) String() string {
	switch p {
	case BestResponseProcess:
		return "best-response"
	case RadioGreedyProcess:
		return "radio-greedy"
	case SimultaneousProcess:
		return "simultaneous"
	default:
		return fmt.Sprintf("Process(%d)", int(p))
	}
}

// BatchSpec describes a batch of dynamics replicates: one process, one
// game, Replicates independent runs from seeded random starts, fanned out
// over the engine's worker pool.
type BatchSpec struct {
	// Process picks the dynamics runner.
	Process Process
	// Inertia is the move probability for SimultaneousProcess (ignored by
	// the sequential processes).
	Inertia float64
	// Replicates is the number of independent runs.
	Replicates int
	// Seed is the root seed; replicate r draws its start allocation and
	// schedule stream from engine.JobSeed(Seed, r), so batch results do not
	// depend on the worker count.
	Seed uint64
	// Workers sizes the pool; < 1 means runtime.NumCPU().
	Workers int
	// Opts apply to every run (schedule, eps, round cap) — except WithSeed,
	// which the batch overrides per replicate.
	Opts []Option
}

// BatchResult aggregates a batch of dynamics runs.
type BatchResult struct {
	// Runs holds the per-replicate results, in replicate order.
	Runs []Result
	// Converged counts replicates that went quiet before the round cap.
	Converged int
	// MeanRounds and MeanMoves average over all replicates.
	MeanRounds float64
	MeanMoves  float64
	// Engine reports how the batch was executed (workers, timings).
	Engine engine.Stats
}

// RunBatch runs Replicates independent dynamics runs of one process on g
// and aggregates them. Replicate r starts from RandomAlloc with a seed
// drawn from its private stream, so the batch is reproducible and
// worker-count independent.
func RunBatch(g *core.Game, spec BatchSpec) (*BatchResult, error) {
	if g == nil {
		return nil, fmt.Errorf("dynamics: nil game")
	}
	if spec.Replicates < 1 {
		return nil, fmt.Errorf("dynamics: %d replicates, want >= 1", spec.Replicates)
	}
	switch spec.Process {
	case BestResponseProcess, RadioGreedyProcess:
	case SimultaneousProcess:
		if spec.Inertia < 0 || spec.Inertia > 1 {
			return nil, fmt.Errorf("dynamics: inertia %v outside [0, 1]", spec.Inertia)
		}
	default:
		return nil, fmt.Errorf("dynamics: unknown process %d", int(spec.Process))
	}

	runs, stats, err := engine.Map(spec.Replicates, func(r int, rng *des.RNG) (Result, error) {
		start := RandomAlloc(g, rng.Uint64())
		// Borrow a pooled workspace per replicate: steady-state batches
		// recycle one workspace per worker instead of allocating fresh DP
		// slabs for every run.
		ws := core.Workspaces.Get()
		defer core.Workspaces.Put(ws)
		opts := append(append([]Option(nil), spec.Opts...),
			WithSeed(rng.Uint64()), WithWorkspace(ws))
		switch spec.Process {
		case BestResponseProcess:
			return RunBestResponse(g, start, opts...)
		case RadioGreedyProcess:
			return RunRadioGreedy(g, start, opts...)
		default:
			return RunSimultaneous(g, start, spec.Inertia, opts...)
		}
	}, engine.Workers(spec.Workers), engine.Seed(spec.Seed))
	if err != nil {
		return nil, err
	}

	out := &BatchResult{Runs: runs, Engine: stats}
	for _, res := range runs {
		if res.Converged {
			out.Converged++
		}
		out.MeanRounds += float64(res.Rounds)
		out.MeanMoves += float64(res.Moves)
	}
	out.MeanRounds /= float64(spec.Replicates)
	out.MeanMoves /= float64(spec.Replicates)
	return out, nil
}
