package dynamics

import (
	"testing"

	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

func TestSimultaneousWithInertiaConverges(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		g := mustGame(t, 6, 5, 3, ratefn.NewTDMA(1))
		res, err := RunSimultaneous(g, RandomAlloc(g, seed), 0.5, WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("seed %d: inertia 0.5 did not converge in %d rounds", seed, res.Rounds)
		}
		ne, err := g.IsNashEquilibrium(res.Final)
		if err != nil {
			t.Fatal(err)
		}
		if !ne {
			t.Fatalf("seed %d: converged state is not NE", seed)
		}
	}
}

func TestSimultaneousFullInertiaCanOscillate(t *testing.T) {
	// The miscoordination pathology: two identical users on two channels
	// chasing each other forever. With inertia = 1 and a symmetric start
	// the process must NOT converge (both users jump together each round).
	g := mustGame(t, 2, 2, 1, ratefn.NewTDMA(1))
	start, err := core.AllocFromMatrix([][]int{
		{1, 0},
		{1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSimultaneous(g, start, 1, WithMaxRounds(50))
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatalf("symmetric full-inertia run should oscillate, converged in %d rounds:\n%v",
			res.Rounds, res.Final)
	}
	if res.Rounds != 50 {
		t.Fatalf("expected to exhaust 50 rounds, ran %d", res.Rounds)
	}
	// The same start with inertia breaks symmetry and settles.
	res2, err := RunSimultaneous(g, start, 0.5, WithSeed(3), WithMaxRounds(200))
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Converged {
		t.Fatal("inertia 0.5 should converge from the symmetric start")
	}
}

func TestSimultaneousFromNEIsQuiet(t *testing.T) {
	g := mustGame(t, 4, 4, 2, ratefn.NewTDMA(1))
	ne, err := core.Algorithm1(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSimultaneous(g, ne, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Moves != 0 || res.Rounds != 1 {
		t.Fatalf("NE start should be immediately quiet: %+v", res)
	}
}

func TestSimultaneousValidation(t *testing.T) {
	g := mustGame(t, 2, 2, 1, ratefn.NewTDMA(1))
	start := RandomAlloc(g, 0)
	if _, err := RunSimultaneous(g, start, 0); err == nil {
		t.Error("inertia 0 should error")
	}
	if _, err := RunSimultaneous(g, start, 1.5); err == nil {
		t.Error("inertia > 1 should error")
	}
	if _, err := RunSimultaneous(g, start, 0.5, WithMaxRounds(0)); err == nil {
		t.Error("zero rounds should error")
	}
	wrong, err := core.NewAlloc(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSimultaneous(g, wrong, 0.5); err == nil {
		t.Error("mismatched alloc should error")
	}
}

func TestSimultaneousDoesNotMutateStart(t *testing.T) {
	g := mustGame(t, 3, 3, 2, ratefn.NewTDMA(1))
	start := RandomAlloc(g, 4)
	snapshot := start.Clone()
	if _, err := RunSimultaneous(g, start, 0.6, WithSeed(1)); err != nil {
		t.Fatal(err)
	}
	if !start.Equal(snapshot) {
		t.Fatal("RunSimultaneous mutated the caller's allocation")
	}
}

func TestSimultaneousDecreasingRate(t *testing.T) {
	g := mustGame(t, 5, 4, 3, ratefn.Harmonic{R0: 1, Alpha: 0.5})
	res, err := RunSimultaneous(g, RandomAlloc(g, 11), 0.5, WithSeed(2), WithMaxRounds(500))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge under decreasing rate")
	}
	ne, err := g.IsNashEquilibrium(res.Final)
	if err != nil {
		t.Fatal(err)
	}
	if !ne {
		t.Fatal("terminal state not NE")
	}
}
