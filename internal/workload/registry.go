package workload

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/dynamics"
	"github.com/multiradio/chanalloc/internal/hetero"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

// Generator builds a scenario instance. params is the text after the first
// ':' of the requested name ("" for plain names); r is the rate function the
// caller wants the game built on.
type Generator func(params string, r ratefn.Func) (*Scenario, error)

// Family describes one registered scenario family for usage listings.
type Family struct {
	// Name is the base name ("fig4") or family prefix ("random").
	Name string
	// Usage shows the full grammar, e.g. "random:N,C,k[,seed]".
	Usage string
	// Description says what the scenario models.
	Description string
}

var (
	regMu    sync.RWMutex
	registry = map[string]Family{}
	regGen   = map[string]Generator{}
)

// Register adds a scenario family to the registry. The name must not
// contain ':' (it is the prefix before any parameters) and must be new.
// The registry is open: callers outside this package can plug in their own
// workloads and resolve them through ByName.
func Register(f Family, gen Generator) error {
	if f.Name == "" || strings.Contains(f.Name, ":") {
		return fmt.Errorf("workload: invalid scenario name %q", f.Name)
	}
	if gen == nil {
		return fmt.Errorf("workload: scenario %q has no generator", f.Name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := regGen[f.Name]; dup {
		return fmt.Errorf("workload: scenario %q already registered", f.Name)
	}
	registry[f.Name] = f
	regGen[f.Name] = gen
	return nil
}

// mustRegister is Register for the built-in families, where a failure is a
// programming error.
func mustRegister(f Family, gen Generator) {
	if err := Register(f, gen); err != nil {
		panic(err)
	}
}

// ByName resolves a scenario: the text before the first ':' selects the
// family, the rest is passed to its generator ("fig4", "random:8,6,3",
// "hetero:6,4,4,2,1").
func ByName(name string, r ratefn.Func) (*Scenario, error) {
	base, params := name, ""
	if i := strings.IndexByte(name, ':'); i >= 0 {
		base, params = name[:i], name[i+1:]
	}
	regMu.RLock()
	gen, ok := regGen[base]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("workload: unknown scenario %q (known: %s)",
			name, strings.Join(Names(), ", "))
	}
	s, err := gen(params, r)
	if err != nil {
		return nil, fmt.Errorf("workload: scenario %q: %w", name, err)
	}
	return s, nil
}

// Names lists the registered scenario families in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(regGen))
	for name := range regGen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Families lists the registered families with usage and description, sorted
// by name — the source of CLI usage text.
func Families() []Family {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Family, 0, len(registry))
	for _, f := range registry {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// fixed wraps a parameterless scenario constructor as a Generator.
func fixed(build func(r ratefn.Func) (*Scenario, error)) Generator {
	return func(params string, r ratefn.Func) (*Scenario, error) {
		if params != "" {
			return nil, fmt.Errorf("takes no parameters, got %q", params)
		}
		return build(r)
	}
}

func init() {
	mustRegister(Family{
		Name:        "fig1",
		Usage:       "fig1",
		Description: "Paper Figures 1-2: worked non-NE example, |N|=4, k=4, |C|=5",
	}, fixed(Figure1))
	mustRegister(Family{
		Name:        "fig4",
		Usage:       "fig4",
		Description: "Paper Figure 4: NE with exception user u1, |N|=7, k=4, |C|=6",
	}, fixed(Figure4))
	mustRegister(Family{
		Name:        "fig5",
		Usage:       "fig5",
		Description: "Paper Figure 5: NE with no exception user, |N|=4, k=4, |C|=6",
	}, fixed(Figure5))
	mustRegister(Family{
		Name:        "random",
		Usage:       "random:N,C,k[,seed]",
		Description: "N users with k radios over C channels, random full-deployment start",
	}, generateRandom)
	mustRegister(Family{
		Name:        "hetero",
		Usage:       "hetero:C,k1,k2,...",
		Description: "heterogeneous radio budgets k_i over C channels (beyond the paper's uniform k)",
	}, generateHetero)
	mustRegister(Family{
		Name:        "bistritz",
		Usage:       "bistritz:N,C[,seed]",
		Description: "N single-radio users over C >= N channels, random start; interference-free target regime (arXiv:1603.03956)",
	}, generateBistritz)
	mustRegister(Family{
		Name:        "cogmoo",
		Usage:       "cogmoo:N,C[,seed]",
		Description: "multi-objective cognitive band: per-user primary interference + fairness objectives (arXiv:2004.05767)",
	}, generateCogMOO)
	mustRegister(Family{
		Name:        "mesh",
		Usage:       "mesh[:routers,channels,radios]",
		Description: "mesh-backhaul routers in one collision domain, naive static start pinned",
	}, generateMesh)
	mustRegister(Family{
		Name:        "cognitive",
		Usage:       "cognitive[:users,channels,radios]",
		Description: "secondary users entering a band and re-allocating selfishly",
	}, generateCognitive)
}

// parseInts parses a comma-separated list of integers.
func parseInts(params string) ([]int, error) {
	if params == "" {
		return nil, nil
	}
	parts := strings.Split(params, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out[i] = v
	}
	return out, nil
}

// generateRandom builds the random:N,C,k[,seed] family: a fixed-dimension
// game with a pinned uniformly random full-deployment allocation.
func generateRandom(params string, r ratefn.Func) (*Scenario, error) {
	vals, err := parseInts(params)
	if err != nil {
		return nil, err
	}
	if len(vals) != 3 && len(vals) != 4 {
		return nil, fmt.Errorf("want random:N,C,k[,seed], got %d parameters", len(vals))
	}
	seed := uint64(1)
	if len(vals) == 4 {
		if vals[3] < 0 {
			return nil, fmt.Errorf("negative seed %d", vals[3])
		}
		seed = uint64(vals[3])
	}
	g, err := core.NewGame(vals[0], vals[1], vals[2], r)
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Name: fmt.Sprintf("random:%d,%d,%d,%d", vals[0], vals[1], vals[2], seed),
		Description: fmt.Sprintf(
			"random start: |N|=%d, |C|=%d, k=%d, seed %d", vals[0], vals[1], vals[2], seed),
		Game:  g,
		Alloc: dynamics.RandomAlloc(g, seed),
	}, nil
}

// generateBistritz builds the bistritz:N,C[,seed] family after Bistritz &
// Leshem's large-scale distributed allocation setting (arXiv:1603.03956):
// N users with a single radio each over C >= N channels, so an
// interference-free allocation — every user alone on its own channel — is
// feasible and is exactly the Nash-equilibrium target the game's dynamics
// should reach. The pinned start is a seeded uniformly random placement,
// collisions included.
func generateBistritz(params string, r ratefn.Func) (*Scenario, error) {
	vals, err := parseInts(params)
	if err != nil {
		return nil, err
	}
	if len(vals) != 2 && len(vals) != 3 {
		return nil, fmt.Errorf("want bistritz:N,C[,seed], got %d parameters", len(vals))
	}
	users, channels := vals[0], vals[1]
	if users < 1 {
		return nil, fmt.Errorf("want >= 1 users, got %d", users)
	}
	if channels < users {
		return nil, fmt.Errorf(
			"interference-free target regime needs C >= N channels, got N=%d C=%d", users, channels)
	}
	seed := uint64(1)
	if len(vals) == 3 {
		if vals[2] < 0 {
			return nil, fmt.Errorf("negative seed %d", vals[2])
		}
		seed = uint64(vals[2])
	}
	g, err := core.NewGame(users, channels, 1, r)
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Name: fmt.Sprintf("bistritz:%d,%d,%d", users, channels, seed),
		Description: fmt.Sprintf(
			"Bistritz-Leshem regime: %d single-radio users, %d channels, random start, seed %d",
			users, channels, seed),
		Game:  g,
		Alloc: dynamics.RandomAlloc(g, seed),
	}, nil
}

// generateHetero builds the hetero:C,k1,k2,... family; the scenario carries
// a heterogeneous-budget game instead of a uniform one.
func generateHetero(params string, r ratefn.Func) (*Scenario, error) {
	vals, err := parseInts(params)
	if err != nil {
		return nil, err
	}
	if len(vals) < 2 {
		return nil, fmt.Errorf("want hetero:C,k1,k2,...")
	}
	g, err := hetero.NewGame(vals[0], vals[1:], r)
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Name:        "hetero:" + params,
		Description: fmt.Sprintf("heterogeneous budgets %v over %d channels", vals[1:], vals[0]),
		Hetero:      g,
	}, nil
}

// generateMesh promotes the examples/mesh workload: multi-radio backhaul
// routers in one collision domain, with the naive static assignment (every
// router on the first k channels) pinned as the instructive start state.
func generateMesh(params string, r ratefn.Func) (*Scenario, error) {
	dims := []int{9, 6, 3}
	if params != "" {
		vals, err := parseInts(params)
		if err != nil {
			return nil, err
		}
		if len(vals) != 3 {
			return nil, fmt.Errorf("want mesh:routers,channels,radios")
		}
		dims = vals
	}
	g, err := core.NewGame(dims[0], dims[1], dims[2], r)
	if err != nil {
		return nil, err
	}
	naive := g.NewEmptyAlloc()
	for i := 0; i < g.Users(); i++ {
		for c := 0; c < g.Radios(); c++ {
			if err := naive.Add(i, c, 1); err != nil {
				return nil, err
			}
		}
	}
	name := "mesh"
	if params != "" {
		name = fmt.Sprintf("mesh:%d,%d,%d", dims[0], dims[1], dims[2])
	}
	return &Scenario{
		Name: name,
		Description: fmt.Sprintf(
			"mesh backhaul: %d routers, %d radios each, %d channels; naive static start",
			dims[0], dims[2], dims[1]),
		Game:  g,
		Alloc: naive,
	}, nil
}

// generateCognitive promotes the examples/cognitive workload: the
// fully-populated secondary-user band (allocations are generated, not
// pinned — run Algorithm 1 or dynamics on the game).
func generateCognitive(params string, r ratefn.Func) (*Scenario, error) {
	dims := []int{10, 8, 3}
	if params != "" {
		vals, err := parseInts(params)
		if err != nil {
			return nil, err
		}
		if len(vals) != 3 {
			return nil, fmt.Errorf("want cognitive:users,channels,radios")
		}
		dims = vals
	}
	g, err := core.NewGame(dims[0], dims[1], dims[2], r)
	if err != nil {
		return nil, err
	}
	name := "cognitive"
	if params != "" {
		name = fmt.Sprintf("cognitive:%d,%d,%d", dims[0], dims[1], dims[2])
	}
	return &Scenario{
		Name: name,
		Description: fmt.Sprintf(
			"cognitive band: %d secondary users, %d radios each, %d channels",
			dims[0], dims[2], dims[1]),
		Game: g,
	}, nil
}
