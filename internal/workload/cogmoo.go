package workload

import (
	"fmt"
	"math"

	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/des"
	"github.com/multiradio/chanalloc/internal/dynamics"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

// CogMOO is the multi-objective bundle of the cogmoo scenario family,
// after Ghasemi & Ghasemi's multi-objective channel allocation in
// cognitive radio networks (arXiv:2004.05767): secondary users picking
// licensed channels trade THROUGHPUT against the INTERFERENCE their
// transmissions inflict on primary users, with FAIRNESS across secondary
// users as the third axis. The game's utilities carry the throughput
// objective; this bundle carries the other two and a weighted-sum
// scalarisation, all derived deterministically from the family's seed so a
// scenario name pins the whole problem instance.
type CogMOO struct {
	// Interference[i][c] is the cost user i inflicts when transmitting on
	// channel c — the primary-user activity on c weighted by user i's
	// proximity to that primary, drawn in [0, 1).
	Interference [][]float64
}

// cogmooSeedScramble decorrelates the objective-weight stream from the
// start-allocation stream, which is drawn from the same scenario seed.
const cogmooSeedScramble = 0x243f6a8885a308d3

// NewCogMOOObjectives derives the interference matrix of a cogmoo instance
// from its dimensions and seed alone, so callers can recreate the bundle
// for any scenario name without re-resolving the scenario.
func NewCogMOOObjectives(users, channels int, seed uint64) (*CogMOO, error) {
	if users < 1 {
		return nil, fmt.Errorf("want >= 1 users, got %d", users)
	}
	if channels < 1 {
		return nil, fmt.Errorf("want >= 1 channels, got %d", channels)
	}
	rng := des.NewRNG(seed*0x9e3779b97f4a7c15 + cogmooSeedScramble)
	// Primary-user activity is per channel; each secondary user sees it
	// through its own proximity factor, so interference is genuinely
	// per-user per-channel as in the reference model.
	activity := make([]float64, channels)
	for c := range activity {
		activity[c] = rng.Float64()
	}
	m := &CogMOO{Interference: make([][]float64, users)}
	for i := range m.Interference {
		proximity := rng.Float64()
		row := make([]float64, channels)
		for c := range row {
			row[c] = activity[c] * proximity
		}
		m.Interference[i] = row
	}
	return m, nil
}

// InterferenceCost sums the per-user interference objective over an
// allocation: every radio a user keeps on a channel pays that user's
// interference weight there. Lower is better.
func (m *CogMOO) InterferenceCost(a *core.Alloc) float64 {
	total := 0.0
	for i, row := range m.Interference {
		for c, w := range row {
			total += float64(a.Radios(i, c)) * w
		}
	}
	return total
}

// Fairness is Jain's index over the users' utilities:
// (Σu)² / (N·Σu²), 1 when perfectly equal, 1/N when one user takes all.
// An all-zero utility vector reports 1 (nobody is treated unequally).
func (m *CogMOO) Fairness(utils []float64) float64 {
	if len(utils) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, u := range utils {
		sum += u
		sumSq += u * u
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(utils)) * sumSq)
}

// Score is the weighted-sum scalarisation of the three objectives on an
// allocation of game g: wRate rewards per-user throughput (welfare / N),
// wFair rewards Jain fairness of the utilities, wInterf penalises the
// per-user interference cost. The weights are the caller's policy; the
// reference model explores the Pareto front by sweeping them.
func (m *CogMOO) Score(g *core.Game, a *core.Alloc, wRate, wFair, wInterf float64) float64 {
	n := float64(g.Users())
	if n == 0 || math.IsNaN(wRate+wFair+wInterf) {
		return 0
	}
	return wRate*g.Welfare(a)/n +
		wFair*m.Fairness(g.Utilities(a)) -
		wInterf*m.InterferenceCost(a)/n
}

// generateCogMOO builds the cogmoo:N,C[,seed] family: N single-radio
// secondary users over C licensed channels with a pinned seeded random
// start, plus the seed-derived multi-objective bundle (recreate it with
// NewCogMOOObjectives). Unlike the bistritz regime, C < N is allowed —
// crowded cognitive bands force channel sharing, which is exactly where
// the fairness and interference objectives start disagreeing with raw
// throughput.
func generateCogMOO(params string, r ratefn.Func) (*Scenario, error) {
	vals, err := parseInts(params)
	if err != nil {
		return nil, err
	}
	if len(vals) != 2 && len(vals) != 3 {
		return nil, fmt.Errorf("want cogmoo:N,C[,seed], got %d parameters", len(vals))
	}
	users, channels := vals[0], vals[1]
	seed := uint64(1)
	if len(vals) == 3 {
		if vals[2] < 0 {
			return nil, fmt.Errorf("negative seed %d", vals[2])
		}
		seed = uint64(vals[2])
	}
	if _, err := NewCogMOOObjectives(users, channels, seed); err != nil {
		return nil, err
	}
	g, err := core.NewGame(users, channels, 1, r)
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Name: fmt.Sprintf("cogmoo:%d,%d,%d", users, channels, seed),
		Description: fmt.Sprintf(
			"multi-objective cognitive band (arXiv:2004.05767): %d secondary users, %d channels, "+
				"per-user interference + fairness objectives, seed %d",
			users, channels, seed),
		Game:  g,
		Alloc: dynamics.RandomAlloc(g, seed),
	}, nil
}
