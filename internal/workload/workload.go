// Package workload provides the scenario registry of the repository: the
// named worked examples of the reproduced paper (the games and strategy
// matrices behind Figures 1, 2, 4 and 5), generator-backed parametric
// families (random instances, heterogeneous budgets, mesh and cognitive
// deployments), random instance generators and parameter sweeps for the
// experiment harnesses. The registry is open — see Register — and every
// scenario resolves through ByName.
package workload

import (
	"fmt"

	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/des"
	"github.com/multiradio/chanalloc/internal/hetero"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

// Scenario is a named game instance, optionally with a fixed allocation
// (the paper's worked examples pin both).
type Scenario struct {
	// Name identifies the scenario ("fig1", "random:8,6,3", ...).
	Name string
	// Description says what the scenario models.
	Description string
	// Game is the uniform-budget instance; nil for heterogeneous scenarios.
	// The paper's figures all use constant R, but callers may rebuild the
	// game with another rate function via Rebuild.
	Game *core.Game
	// Hetero is the heterogeneous-budget instance for the hetero family;
	// nil otherwise. Exactly one of Game and Hetero is set.
	Hetero *hetero.Game
	// Alloc is the pinned strategy matrix, or nil for generated scenarios.
	Alloc *core.Alloc
}

// Rebuild returns the same scenario with a different rate function (the
// matrices are rate-independent; utilities are not).
func (s *Scenario) Rebuild(r ratefn.Func) (*Scenario, error) {
	out := *s
	switch {
	case s.Game != nil:
		g, err := core.NewGame(s.Game.Users(), s.Game.Channels(), s.Game.Radios(), r)
		if err != nil {
			return nil, fmt.Errorf("workload: rebuilding %s: %w", s.Name, err)
		}
		out.Game = g
	case s.Hetero != nil:
		g, err := hetero.NewGame(s.Hetero.Channels(), s.Hetero.Budgets(), r)
		if err != nil {
			return nil, fmt.Errorf("workload: rebuilding %s: %w", s.Name, err)
		}
		out.Hetero = g
	default:
		return nil, fmt.Errorf("workload: scenario %s has no game", s.Name)
	}
	if s.Alloc != nil {
		out.Alloc = s.Alloc.Clone()
	}
	return &out, nil
}

// Figure1 returns the paper's Figure 1/2 example: |N| = 4, k = 4, |C| = 5,
// a deliberately non-equilibrium allocation used to illustrate Lemmas 1-3.
func Figure1(r ratefn.Func) (*Scenario, error) {
	g, err := core.NewGame(4, 5, 4, r)
	if err != nil {
		return nil, fmt.Errorf("workload: figure 1 game: %w", err)
	}
	a, err := core.AllocFromMatrix([][]int{
		{1, 1, 1, 1, 0}, // u1, k_{u1} = 4
		{1, 0, 1, 0, 1}, // u2, k_{u2} = 3 (violates Lemma 1)
		{1, 2, 0, 1, 0}, // u3, two radios on c2 (Lemma 3 with b=c2, c=c3)
		{1, 0, 0, 1, 0}, // u4, k_{u4} = 2 (violates Lemma 1)
	})
	if err != nil {
		return nil, fmt.Errorf("workload: figure 1 matrix: %w", err)
	}
	return &Scenario{
		Name:        "fig1",
		Description: "Paper Figures 1-2: example (non-NE) allocation, |N|=4, k=4, |C|=5",
		Game:        g,
		Alloc:       a,
	}, nil
}

// Figure4 returns a Nash equilibrium with the dimensions and structure of
// the paper's Figure 4: |N| = 7, k = 4, |C| = 6, with u1 an "exception
// user" of Theorem 1 (two radios on a minimum-load channel).
func Figure4(r ratefn.Func) (*Scenario, error) {
	g, err := core.NewGame(7, 6, 4, r)
	if err != nil {
		return nil, fmt.Errorf("workload: figure 4 game: %w", err)
	}
	a, err := core.AllocFromMatrix([][]int{
		{1, 0, 0, 0, 2, 1}, // u1: exception user
		{1, 1, 1, 1, 0, 0},
		{1, 1, 1, 1, 0, 0},
		{1, 1, 1, 1, 0, 0},
		{0, 1, 1, 0, 1, 1},
		{0, 1, 0, 1, 1, 1},
		{1, 0, 1, 1, 0, 1},
	})
	if err != nil {
		return nil, fmt.Errorf("workload: figure 4 matrix: %w", err)
	}
	return &Scenario{
		Name:        "fig4",
		Description: "Paper Figure 4: NE with exception user u1, |N|=7, k=4, |C|=6",
		Game:        g,
		Alloc:       a,
	}, nil
}

// Figure5 returns a Nash equilibrium with the dimensions of the paper's
// Figure 5: |N| = 4, k = 4, |C| = 6, where no user needs Theorem 1's
// exception clause.
func Figure5(r ratefn.Func) (*Scenario, error) {
	g, err := core.NewGame(4, 6, 4, r)
	if err != nil {
		return nil, fmt.Errorf("workload: figure 5 game: %w", err)
	}
	a, err := core.AllocFromMatrix([][]int{
		{1, 1, 1, 0, 1, 0},
		{0, 1, 1, 1, 1, 0},
		{1, 0, 1, 1, 0, 1},
		{1, 1, 0, 1, 0, 1},
	})
	if err != nil {
		return nil, fmt.Errorf("workload: figure 5 matrix: %w", err)
	}
	return &Scenario{
		Name:        "fig5",
		Description: "Paper Figure 5: NE with no exception user, |N|=4, k=4, |C|=6",
		Game:        g,
		Alloc:       a,
	}, nil
}

// RandomGame draws a uniformly random game with 1 <= |N| <= maxUsers,
// 1 <= |C| <= maxChannels and 1 <= k <= min(maxRadios, |C|).
func RandomGame(seed uint64, maxUsers, maxChannels, maxRadios int, r ratefn.Func) (*core.Game, error) {
	if maxUsers < 1 || maxChannels < 1 || maxRadios < 1 {
		return nil, fmt.Errorf("workload: non-positive bounds (%d, %d, %d)", maxUsers, maxChannels, maxRadios)
	}
	rng := des.NewRNG(seed)
	users := 1 + rng.Intn(maxUsers)
	channels := 1 + rng.Intn(maxChannels)
	radios := 1 + rng.Intn(min(maxRadios, channels))
	return core.NewGame(users, channels, radios, r)
}

// Sweep enumerates (users, channels, radios) triples with channels in
// [minC, maxC], users in [minN, maxN], and radios in [1, min(maxK, C)],
// calling fn for each. fn returning an error aborts the sweep.
func Sweep(minN, maxN, minC, maxC, maxK int, fn func(users, channels, radios int) error) error {
	if minN < 1 || minC < 1 || maxK < 1 || maxN < minN || maxC < minC {
		return fmt.Errorf("workload: invalid sweep bounds N=[%d,%d] C=[%d,%d] K<=%d", minN, maxN, minC, maxC, maxK)
	}
	for n := minN; n <= maxN; n++ {
		for c := minC; c <= maxC; c++ {
			kCap := min(maxK, c)
			for k := 1; k <= kCap; k++ {
				if err := fn(n, c, k); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
