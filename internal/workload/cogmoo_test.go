package workload

import (
	"math"
	"strings"
	"testing"

	"github.com/multiradio/chanalloc/internal/ratefn"
)

func TestCogMOOScenario(t *testing.T) {
	r := ratefn.NewTDMA(1)
	s, err := ByName("cogmoo:5,4,2", r)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "cogmoo:5,4,2" {
		t.Fatalf("name %q, want the canonical cogmoo:5,4,2", s.Name)
	}
	if s.Game == nil || s.Alloc == nil {
		t.Fatal("cogmoo must pin both the game and the start allocation")
	}
	if s.Game.Users() != 5 || s.Game.Channels() != 4 || s.Game.Radios() != 1 {
		t.Fatalf("game is %dx%d with k=%d, want 5 single-radio users over 4 channels",
			s.Game.Users(), s.Game.Channels(), s.Game.Radios())
	}
	// Crowded bands are legal: more users than channels forces sharing.
	if _, err := ByName("cogmoo:6,3,1", r); err != nil {
		t.Fatalf("N > C must be allowed in a cognitive band: %v", err)
	}
	// Default seed is 1, spelled out in the canonical name.
	s3, err := ByName("cogmoo:5,4", r)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Name != "cogmoo:5,4,1" {
		t.Fatalf("default-seed name %q, want cogmoo:5,4,1", s3.Name)
	}
}

func TestCogMOOReproducible(t *testing.T) {
	r := ratefn.NewTDMA(1)
	s1, err := ByName("cogmoo:5,4,2", r)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ByName("cogmoo:5,4,2", r)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Alloc.String() != s2.Alloc.String() {
		t.Fatal("cogmoo start allocation is not reproducible")
	}
	m1, err := NewCogMOOObjectives(5, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewCogMOOObjectives(5, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.Interference {
		for c := range m1.Interference[i] {
			if m1.Interference[i][c] != m2.Interference[i][c] {
				t.Fatalf("interference weights differ at (%d,%d)", i, c)
			}
			if w := m1.Interference[i][c]; w < 0 || w >= 1 {
				t.Fatalf("weight (%d,%d)=%v outside [0,1)", i, c, w)
			}
		}
	}
	// A different seed draws a different objective landscape.
	m3, err := NewCogMOOObjectives(5, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range m1.Interference {
		for c := range m1.Interference[i] {
			if m1.Interference[i][c] != m3.Interference[i][c] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("seed change did not move the interference weights")
	}
}

func TestCogMOOObjectives(t *testing.T) {
	r := ratefn.NewTDMA(1)
	s, err := ByName("cogmoo:5,4,2", r)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewCogMOOObjectives(5, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Interference cost: non-negative, and equal to the hand-computed sum.
	cost := m.InterferenceCost(s.Alloc)
	if cost < 0 {
		t.Fatalf("interference cost %v < 0", cost)
	}
	manual := 0.0
	for i := 0; i < s.Game.Users(); i++ {
		for c := 0; c < s.Game.Channels(); c++ {
			manual += float64(s.Alloc.Radios(i, c)) * m.Interference[i][c]
		}
	}
	if math.Abs(cost-manual) > 1e-12 {
		t.Fatalf("InterferenceCost %v, manual sum %v", cost, manual)
	}
	// Jain's index: 1 for equal shares, 1/N for a monopoly, within (0,1].
	if f := m.Fairness([]float64{2, 2, 2, 2}); math.Abs(f-1) > 1e-12 {
		t.Fatalf("equal shares give Jain %v, want 1", f)
	}
	if f := m.Fairness([]float64{5, 0, 0, 0, 0}); math.Abs(f-0.2) > 1e-12 {
		t.Fatalf("monopoly gives Jain %v, want 1/N = 0.2", f)
	}
	if f := m.Fairness(nil); f != 1 {
		t.Fatalf("empty utilities give Jain %v, want the neutral 1", f)
	}
	if f := m.Fairness(s.Game.Utilities(s.Alloc)); f <= 0 || f > 1+1e-12 {
		t.Fatalf("Jain %v outside (0,1]", f)
	}
	// The scalarisation responds to its weights in the documented
	// directions: throughput and fairness reward, interference penalises.
	base := m.Score(s.Game, s.Alloc, 1, 1, 1)
	if math.IsNaN(base) || math.IsInf(base, 0) {
		t.Fatalf("score %v not finite", base)
	}
	if cost > 0 {
		heavier := m.Score(s.Game, s.Alloc, 1, 1, 2)
		if heavier >= base {
			t.Fatalf("raising the interference weight did not lower the score (%v -> %v)", base, heavier)
		}
	}
	if s.Game.Welfare(s.Alloc) > 0 {
		richer := m.Score(s.Game, s.Alloc, 2, 1, 1)
		if richer <= base {
			t.Fatalf("raising the throughput weight did not raise the score (%v -> %v)", base, richer)
		}
	}
}

func TestCogMOOParseErrors(t *testing.T) {
	r := ratefn.NewTDMA(1)
	for _, name := range []string{
		"cogmoo",         // no parameters
		"cogmoo:5",       // missing channels
		"cogmoo:5,4,1,9", // too many parameters
		"cogmoo:x,4",     // malformed integer
		"cogmoo:0,4",     // no users
		"cogmoo:5,0",     // no channels
		"cogmoo:5,4,-2",  // negative seed
	} {
		if _, err := ByName(name, r); err == nil {
			t.Errorf("%s: want a parse error", name)
		} else if !strings.Contains(err.Error(), name) {
			t.Errorf("%s: error %v does not name the scenario", name, err)
		}
	}
}
