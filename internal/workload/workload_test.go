package workload

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/dynamics"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

func TestFigure1Scenario(t *testing.T) {
	s, err := Figure1(ratefn.NewTDMA(1))
	if err != nil {
		t.Fatal(err)
	}
	if s.Game.Users() != 4 || s.Game.Channels() != 5 || s.Game.Radios() != 4 {
		t.Fatalf("dims %dx%dx%d, want 4x5x4", s.Game.Users(), s.Game.Channels(), s.Game.Radios())
	}
	// The paper's own reading of Figure 1: loads 4,3,2,3,1 and it is NOT a NE.
	wantLoads := []int{4, 3, 2, 3, 1}
	for c, want := range wantLoads {
		if got := s.Alloc.Load(c); got != want {
			t.Errorf("load(c%d) = %d, want %d", c+1, got, want)
		}
	}
	ne, err := s.Game.IsNashEquilibrium(s.Alloc)
	if err != nil {
		t.Fatal(err)
	}
	if ne {
		t.Fatal("Figure 1 must not be a NE")
	}
	if len(core.CheckAllLemmas(s.Game, s.Alloc)) == 0 {
		t.Fatal("Figure 1 must violate lemmas")
	}
}

func TestFigure4Scenario(t *testing.T) {
	s, err := Figure4(ratefn.NewTDMA(1))
	if err != nil {
		t.Fatal(err)
	}
	if ok, v := core.TheoremNE(s.Game, s.Alloc); !ok {
		t.Fatalf("Figure 4 should satisfy Theorem 1: %v", v)
	}
	ne, err := s.Game.IsNashEquilibrium(s.Alloc)
	if err != nil {
		t.Fatal(err)
	}
	if !ne {
		t.Fatal("Figure 4 should be a NE")
	}
	// u1 is the exception user: two radios on c5.
	if s.Alloc.Radios(0, 4) != 2 {
		t.Fatalf("u1 has %d radios on c5, want 2", s.Alloc.Radios(0, 4))
	}
}

func TestFigure5Scenario(t *testing.T) {
	s, err := Figure5(ratefn.NewTDMA(1))
	if err != nil {
		t.Fatal(err)
	}
	if ok, v := core.TheoremNE(s.Game, s.Alloc); !ok {
		t.Fatalf("Figure 5 should satisfy Theorem 1: %v", v)
	}
	// No user holds more than one radio on any channel.
	for i := 0; i < s.Game.Users(); i++ {
		for c := 0; c < s.Game.Channels(); c++ {
			if s.Alloc.Radios(i, c) > 1 {
				t.Fatalf("u%d stacks radios on c%d", i+1, c+1)
			}
		}
	}
}

// exampleName returns a resolvable instance of a family for smoke tests:
// parametric families need parameters, plain names resolve as-is.
func exampleName(family string) string {
	switch family {
	case "random":
		return "random:5,4,2,9"
	case "hetero":
		return "hetero:5,3,2,2,1"
	case "bistritz":
		return "bistritz:4,6,3"
	case "cogmoo":
		return "cogmoo:5,4,2"
	default:
		return family
	}
}

func TestByName(t *testing.T) {
	r := ratefn.NewTDMA(1)
	for _, family := range Names() {
		name := exampleName(family)
		s, err := ByName(name, r)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Description == "" {
			t.Errorf("%s has no description", name)
		}
		if (s.Game == nil) == (s.Hetero == nil) {
			t.Errorf("%s: want exactly one of Game and Hetero", name)
		}
	}
	if _, err := ByName("nope", r); err == nil {
		t.Fatal("unknown scenario should error")
	}
	// Paper figures keep their historical names.
	for _, name := range []string{"fig1", "fig4", "fig5"} {
		s, err := ByName(name, r)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name != name || s.Alloc == nil {
			t.Fatalf("%s: name %q, pinned %v", name, s.Name, s.Alloc != nil)
		}
	}
}

func TestRegistryIsOpen(t *testing.T) {
	// The registry is process-global, so use a unique name per run to stay
	// idempotent under -count=N.
	name := fmt.Sprintf("custom-test-%d", testRegistrations.Add(1))
	called := false
	err := Register(Family{Name: name, Usage: name, Description: "test-only"},
		func(params string, r ratefn.Func) (*Scenario, error) {
			called = true
			return Figure5(r)
		})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ByName(name, ratefn.NewTDMA(1)); err != nil || !called {
		t.Fatalf("custom scenario did not resolve: %v", err)
	}
	if err := Register(Family{Name: name}, nil); err == nil {
		t.Fatal("duplicate / nil-generator registration should error")
	}
	if err := Register(Family{Name: "bad:name"},
		func(string, ratefn.Func) (*Scenario, error) { return nil, nil }); err == nil {
		t.Fatal("name with ':' should be rejected")
	}
}

// testRegistrations makes registry-mutating tests idempotent across
// repeated runs in one process.
var testRegistrations atomic.Int64

// okGen is a trivially valid generator for registration-error tests.
func okGen(string, ratefn.Func) (*Scenario, error) { return Figure5(ratefn.NewTDMA(1)) }

// TestRegisterErrorPaths pins each registration failure mode separately:
// duplicate names, names containing ':', empty names and nil generators
// must all be rejected without corrupting the registry.
func TestRegisterErrorPaths(t *testing.T) {
	name := fmt.Sprintf("errpath-test-%d", testRegistrations.Add(1))
	if err := Register(Family{Name: name, Usage: name, Description: "x"}, okGen); err != nil {
		t.Fatal(err)
	}
	before := len(Names())

	// Duplicate registration (with a perfectly valid generator).
	if err := Register(Family{Name: name, Usage: name, Description: "dup"}, okGen); err == nil {
		t.Error("duplicate registration should error")
	}
	// Name containing ':' collides with the parameter grammar.
	if err := Register(Family{Name: "bad:" + name}, okGen); err == nil {
		t.Error("name with ':' should be rejected")
	}
	// Empty name.
	if err := Register(Family{Name: ""}, okGen); err == nil {
		t.Error("empty name should be rejected")
	}
	// Nil generator under a fresh name.
	fresh := fmt.Sprintf("errpath-test-%d", testRegistrations.Add(1))
	if err := Register(Family{Name: fresh, Usage: fresh, Description: "x"}, nil); err == nil {
		t.Error("nil generator should be rejected")
	}

	// None of the failed registrations may have landed.
	if got := len(Names()); got != before {
		t.Fatalf("registry grew from %d to %d families on failed registrations", before, got)
	}
	// Unknown-family resolution names the known families.
	_, err := ByName("definitely-not-registered:1,2", ratefn.NewTDMA(1))
	if err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("unknown family error: %v", err)
	}
	// Malformed parameters surface the family's grammar error, prefixed
	// with the requested name.
	_, err = ByName("random:not,numbers,here", ratefn.NewTDMA(1))
	if err == nil || !strings.Contains(err.Error(), "random:not,numbers,here") {
		t.Fatalf("malformed-params error should cite the request: %v", err)
	}
}

func TestParametricFamilies(t *testing.T) {
	r := ratefn.NewTDMA(1)
	s, err := ByName("random:6,5,3,7", r)
	if err != nil {
		t.Fatal(err)
	}
	if s.Game.Users() != 6 || s.Game.Channels() != 5 || s.Game.Radios() != 3 {
		t.Fatalf("random dims wrong: %dx%dx%d", s.Game.Users(), s.Game.Channels(), s.Game.Radios())
	}
	if s.Alloc == nil || s.Alloc.TotalRadios() != 18 {
		t.Fatal("random scenario must pin a full-deployment start")
	}
	// Same name, same bytes: the pinned start is seed-deterministic.
	s2, err := ByName("random:6,5,3,7", r)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Alloc.Equal(s2.Alloc) {
		t.Fatal("random scenario is not reproducible")
	}

	h, err := ByName("hetero:6,4,4,2,2,1", r)
	if err != nil {
		t.Fatal(err)
	}
	if h.Hetero == nil || h.Hetero.Channels() != 6 || h.Hetero.Users() != 5 {
		t.Fatalf("hetero scenario wrong: %+v", h)
	}

	m, err := ByName("mesh", r)
	if err != nil {
		t.Fatal(err)
	}
	// The naive static start concentrates every router on the first k
	// channels — the instructive non-equilibrium the example audits.
	if m.Alloc.Load(0) != m.Game.Users() {
		t.Fatalf("mesh naive start load(c1) = %d, want %d", m.Alloc.Load(0), m.Game.Users())
	}
	if ne, err := m.Game.IsNashEquilibrium(m.Alloc); err != nil || ne {
		t.Fatalf("mesh naive start should not be a NE (ne=%v err=%v)", ne, err)
	}

	for _, bad := range []string{
		"random:1,2", "random:x,2,1", "random", "hetero:5", "hetero",
		"mesh:1,2", "cognitive:9", "fig1:3",
	} {
		if _, err := ByName(bad, r); err == nil {
			t.Errorf("%q should not resolve", bad)
		}
	}
}

func TestBistritzFamily(t *testing.T) {
	r := ratefn.NewTDMA(1)
	s, err := ByName("bistritz:5,8,3", r)
	if err != nil {
		t.Fatal(err)
	}
	if s.Game.Users() != 5 || s.Game.Channels() != 8 || s.Game.Radios() != 1 {
		t.Fatalf("dims %dx%dx%d, want 5x8x1",
			s.Game.Users(), s.Game.Channels(), s.Game.Radios())
	}
	if s.Name != "bistritz:5,8,3" {
		t.Fatalf("name %q not normalised", s.Name)
	}
	// The pinned start places every user's single radio.
	if s.Alloc == nil || s.Alloc.TotalRadios() != 5 {
		t.Fatalf("start must place all 5 radios: %v", s.Alloc)
	}
	// Same name, same bytes: the start is seed-deterministic.
	s2, err := ByName("bistritz:5,8,3", r)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Alloc.Equal(s2.Alloc) {
		t.Fatal("bistritz scenario is not reproducible")
	}
	// Seed defaults to 1 when omitted.
	s3, err := ByName("bistritz:5,8", r)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Name != "bistritz:5,8,1" {
		t.Fatalf("default-seed name %q, want bistritz:5,8,1", s3.Name)
	}
	// The target regime is reachable: best-response dynamics from the
	// random start must land on an interference-free allocation (every
	// lit channel holds exactly one radio — C >= N makes that the NE).
	res, err := dynamics.RunBestResponse(s.Game, s.Alloc.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("dynamics did not converge in the Bistritz regime")
	}
	for c := 0; c < s.Game.Channels(); c++ {
		if load := res.Final.Load(c); load > 1 {
			t.Fatalf("channel %d carries %d radios; the C >= N equilibrium is interference-free", c, load)
		}
	}
}

func TestBistritzParseErrors(t *testing.T) {
	r := ratefn.NewTDMA(1)
	for _, bad := range []string{
		"bistritz",         // no parameters
		"bistritz:4",       // missing channels
		"bistritz:4,6,1,9", // too many parameters
		"bistritz:x,6",     // malformed integer
		"bistritz:0,4",     // no users
		"bistritz:5,3",     // C < N breaks the interference-free regime
		"bistritz:4,6,-2",  // negative seed
	} {
		if _, err := ByName(bad, r); err == nil {
			t.Errorf("%q should not resolve", bad)
		}
	}
}

func TestFamiliesListing(t *testing.T) {
	fams := Families()
	if len(fams) != len(Names()) {
		t.Fatalf("%d families, %d names", len(fams), len(Names()))
	}
	for _, f := range fams {
		if f.Usage == "" || f.Description == "" {
			t.Errorf("family %q missing usage or description", f.Name)
		}
	}
}

func TestRebuild(t *testing.T) {
	s, err := Figure4(ratefn.NewTDMA(1))
	if err != nil {
		t.Fatal(err)
	}
	h := ratefn.Harmonic{R0: 1, Alpha: 1}
	s2, err := s.Rebuild(h)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Game.Rate().Name() != h.Name() {
		t.Fatalf("rebuilt rate = %s, want %s", s2.Game.Rate().Name(), h.Name())
	}
	// Allocation is cloned, not shared.
	if err := s2.Alloc.Add(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if s.Alloc.Radios(0, 0) == s2.Alloc.Radios(0, 0) {
		t.Fatal("rebuild shares allocation storage")
	}
}

func TestRebuildExceptionNEBreaksUnderSharpDecay(t *testing.T) {
	// Experiment E8's core observation: the Figure-4 exception NE survives
	// constant R but admits a deviation under R(k) = 1/k (u1 moving a c5
	// radio to c6 gains). Theorem 1's sufficiency needs mild decay.
	s, err := Figure4(ratefn.Harmonic{R0: 1, Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := core.TheoremNE(s.Game, s.Alloc); !ok {
		t.Fatal("theorem conditions are rate-independent and should still hold")
	}
	ne, err := s.Game.IsNashEquilibrium(s.Alloc)
	if err != nil {
		t.Fatal(err)
	}
	if ne {
		t.Fatal("Figure 4 should admit a deviation under R(k)=1/k")
	}
}

func TestRandomGame(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		g, err := RandomGame(seed, 6, 8, 5, ratefn.NewTDMA(1))
		if err != nil {
			t.Fatal(err)
		}
		if g.Users() < 1 || g.Users() > 6 {
			t.Fatalf("users %d out of range", g.Users())
		}
		if g.Channels() < 1 || g.Channels() > 8 {
			t.Fatalf("channels %d out of range", g.Channels())
		}
		if g.Radios() < 1 || g.Radios() > g.Channels() || g.Radios() > 5 {
			t.Fatalf("radios %d invalid for %d channels", g.Radios(), g.Channels())
		}
	}
	if _, err := RandomGame(1, 0, 2, 2, ratefn.NewTDMA(1)); err == nil {
		t.Fatal("invalid bounds should error")
	}
}

func TestSweep(t *testing.T) {
	var seen int
	err := Sweep(1, 2, 1, 3, 2, func(n, c, k int) error {
		if k > c || k > 2 {
			t.Fatalf("invalid triple (%d,%d,%d)", n, c, k)
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// N in {1,2}; C=1: k=1; C=2: k in {1,2}; C=3: k in {1,2} -> 5 per N.
	if seen != 10 {
		t.Fatalf("sweep visited %d triples, want 10", seen)
	}
}

func TestSweepErrors(t *testing.T) {
	if err := Sweep(0, 1, 1, 1, 1, func(int, int, int) error { return nil }); err == nil {
		t.Error("invalid bounds should error")
	}
	if err := Sweep(2, 1, 1, 1, 1, func(int, int, int) error { return nil }); err == nil {
		t.Error("inverted bounds should error")
	}
}

func TestSweepPropagatesCallbackError(t *testing.T) {
	sentinel := false
	err := Sweep(1, 3, 1, 3, 3, func(n, c, k int) error {
		if n == 2 {
			sentinel = true
			return errStop
		}
		return nil
	})
	if err != errStop || !sentinel {
		t.Fatalf("callback error not propagated: %v", err)
	}
}

var errStop = &stopError{}

type stopError struct{}

func (*stopError) Error() string { return "stop" }
