package workload

import (
	"testing"

	"github.com/multiradio/chanalloc/internal/core"
	"github.com/multiradio/chanalloc/internal/ratefn"
)

func TestFigure1Scenario(t *testing.T) {
	s, err := Figure1(ratefn.NewTDMA(1))
	if err != nil {
		t.Fatal(err)
	}
	if s.Game.Users() != 4 || s.Game.Channels() != 5 || s.Game.Radios() != 4 {
		t.Fatalf("dims %dx%dx%d, want 4x5x4", s.Game.Users(), s.Game.Channels(), s.Game.Radios())
	}
	// The paper's own reading of Figure 1: loads 4,3,2,3,1 and it is NOT a NE.
	wantLoads := []int{4, 3, 2, 3, 1}
	for c, want := range wantLoads {
		if got := s.Alloc.Load(c); got != want {
			t.Errorf("load(c%d) = %d, want %d", c+1, got, want)
		}
	}
	ne, err := s.Game.IsNashEquilibrium(s.Alloc)
	if err != nil {
		t.Fatal(err)
	}
	if ne {
		t.Fatal("Figure 1 must not be a NE")
	}
	if len(core.CheckAllLemmas(s.Game, s.Alloc)) == 0 {
		t.Fatal("Figure 1 must violate lemmas")
	}
}

func TestFigure4Scenario(t *testing.T) {
	s, err := Figure4(ratefn.NewTDMA(1))
	if err != nil {
		t.Fatal(err)
	}
	if ok, v := core.TheoremNE(s.Game, s.Alloc); !ok {
		t.Fatalf("Figure 4 should satisfy Theorem 1: %v", v)
	}
	ne, err := s.Game.IsNashEquilibrium(s.Alloc)
	if err != nil {
		t.Fatal(err)
	}
	if !ne {
		t.Fatal("Figure 4 should be a NE")
	}
	// u1 is the exception user: two radios on c5.
	if s.Alloc.Radios(0, 4) != 2 {
		t.Fatalf("u1 has %d radios on c5, want 2", s.Alloc.Radios(0, 4))
	}
}

func TestFigure5Scenario(t *testing.T) {
	s, err := Figure5(ratefn.NewTDMA(1))
	if err != nil {
		t.Fatal(err)
	}
	if ok, v := core.TheoremNE(s.Game, s.Alloc); !ok {
		t.Fatalf("Figure 5 should satisfy Theorem 1: %v", v)
	}
	// No user holds more than one radio on any channel.
	for i := 0; i < s.Game.Users(); i++ {
		for c := 0; c < s.Game.Channels(); c++ {
			if s.Alloc.Radios(i, c) > 1 {
				t.Fatalf("u%d stacks radios on c%d", i+1, c+1)
			}
		}
	}
}

func TestByName(t *testing.T) {
	r := ratefn.NewTDMA(1)
	for _, name := range Names() {
		s, err := ByName(name, r)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name != name {
			t.Errorf("scenario name %q, want %q", s.Name, name)
		}
		if s.Description == "" {
			t.Errorf("%s has no description", name)
		}
	}
	if _, err := ByName("nope", r); err == nil {
		t.Fatal("unknown scenario should error")
	}
}

func TestRebuild(t *testing.T) {
	s, err := Figure4(ratefn.NewTDMA(1))
	if err != nil {
		t.Fatal(err)
	}
	h := ratefn.Harmonic{R0: 1, Alpha: 1}
	s2, err := s.Rebuild(h)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Game.Rate().Name() != h.Name() {
		t.Fatalf("rebuilt rate = %s, want %s", s2.Game.Rate().Name(), h.Name())
	}
	// Allocation is cloned, not shared.
	if err := s2.Alloc.Add(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if s.Alloc.Radios(0, 0) == s2.Alloc.Radios(0, 0) {
		t.Fatal("rebuild shares allocation storage")
	}
}

func TestRebuildExceptionNEBreaksUnderSharpDecay(t *testing.T) {
	// Experiment E8's core observation: the Figure-4 exception NE survives
	// constant R but admits a deviation under R(k) = 1/k (u1 moving a c5
	// radio to c6 gains). Theorem 1's sufficiency needs mild decay.
	s, err := Figure4(ratefn.Harmonic{R0: 1, Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := core.TheoremNE(s.Game, s.Alloc); !ok {
		t.Fatal("theorem conditions are rate-independent and should still hold")
	}
	ne, err := s.Game.IsNashEquilibrium(s.Alloc)
	if err != nil {
		t.Fatal(err)
	}
	if ne {
		t.Fatal("Figure 4 should admit a deviation under R(k)=1/k")
	}
}

func TestRandomGame(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		g, err := RandomGame(seed, 6, 8, 5, ratefn.NewTDMA(1))
		if err != nil {
			t.Fatal(err)
		}
		if g.Users() < 1 || g.Users() > 6 {
			t.Fatalf("users %d out of range", g.Users())
		}
		if g.Channels() < 1 || g.Channels() > 8 {
			t.Fatalf("channels %d out of range", g.Channels())
		}
		if g.Radios() < 1 || g.Radios() > g.Channels() || g.Radios() > 5 {
			t.Fatalf("radios %d invalid for %d channels", g.Radios(), g.Channels())
		}
	}
	if _, err := RandomGame(1, 0, 2, 2, ratefn.NewTDMA(1)); err == nil {
		t.Fatal("invalid bounds should error")
	}
}

func TestSweep(t *testing.T) {
	var seen int
	err := Sweep(1, 2, 1, 3, 2, func(n, c, k int) error {
		if k > c || k > 2 {
			t.Fatalf("invalid triple (%d,%d,%d)", n, c, k)
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// N in {1,2}; C=1: k=1; C=2: k in {1,2}; C=3: k in {1,2} -> 5 per N.
	if seen != 10 {
		t.Fatalf("sweep visited %d triples, want 10", seen)
	}
}

func TestSweepErrors(t *testing.T) {
	if err := Sweep(0, 1, 1, 1, 1, func(int, int, int) error { return nil }); err == nil {
		t.Error("invalid bounds should error")
	}
	if err := Sweep(2, 1, 1, 1, 1, func(int, int, int) error { return nil }); err == nil {
		t.Error("inverted bounds should error")
	}
}

func TestSweepPropagatesCallbackError(t *testing.T) {
	sentinel := false
	err := Sweep(1, 3, 1, 3, 3, func(n, c, k int) error {
		if n == 2 {
			sentinel = true
			return errStop
		}
		return nil
	})
	if err != errStop || !sentinel {
		t.Fatalf("callback error not propagated: %v", err)
	}
}

var errStop = &stopError{}

type stopError struct{}

func (*stopError) Error() string { return "stop" }
