package bianchi

import (
	"math"
	"testing"

	"github.com/multiradio/chanalloc/internal/ratefn"
)

func TestParamsValidate(t *testing.T) {
	if err := Default80211b().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.CWmin = 0 },
		func(p *Params) { p.MaxStage = -1 },
		func(p *Params) { p.SlotTime = 0 },
		func(p *Params) { p.SIFS = -1 },
		func(p *Params) { p.DIFS = -1 },
		func(p *Params) { p.PHYHeader = -1 },
		func(p *Params) { p.MACHeader = -1 },
		func(p *Params) { p.ACKBits = -1 },
		func(p *Params) { p.Payload = 0 },
		func(p *Params) { p.DataRate = 0 },
		func(p *Params) { p.BasicRate = 0 },
	}
	for i, mutate := range bad {
		p := Default80211b()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate params", i)
		}
	}
}

func TestSolveSingleStation(t *testing.T) {
	r, err := Solve(Default80211b(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.P != 0 {
		t.Errorf("collision probability with one station = %v, want 0", r.P)
	}
	wantTau := 2.0 / 33.0
	if math.Abs(r.Tau-wantTau) > 1e-12 {
		t.Errorf("tau = %v, want %v", r.Tau, wantTau)
	}
	if r.Throughput <= 0 || r.Throughput >= 11 {
		t.Errorf("throughput = %v, want in (0, 11)", r.Throughput)
	}
}

func TestSolveFixedPointConsistency(t *testing.T) {
	p := Default80211b()
	for _, n := range []int{2, 3, 5, 10, 20, 50} {
		r, err := Solve(p, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Verify both fixed-point equations hold at the solution.
		wantP := 1 - math.Pow(1-r.Tau, float64(n-1))
		if math.Abs(r.P-wantP) > 1e-9 {
			t.Errorf("n=%d: p = %v, fixed point wants %v", n, r.P, wantP)
		}
		wantTau := tauOfP(r.P, p.CWmin, p.MaxStage)
		if math.Abs(r.Tau-wantTau) > 1e-9 {
			t.Errorf("n=%d: tau = %v, fixed point wants %v", n, r.Tau, wantTau)
		}
	}
}

func TestSolveThroughputDecreasesForLargeN(t *testing.T) {
	// Raw Bianchi throughput may wiggle upward between n=2 and n=3 for some
	// parameter sets (this is why PracticalRate applies a monotone
	// envelope); from n=3 on it must decrease.
	p := Default80211b()
	prev := math.Inf(1)
	for n := 3; n <= 60; n++ {
		r, err := Solve(p, n)
		if err != nil {
			t.Fatal(err)
		}
		if r.Throughput > prev+1e-9 {
			t.Errorf("throughput increased from n=%d to n=%d: %v -> %v", n-1, n, prev, r.Throughput)
		}
		prev = r.Throughput
	}
}

func TestSolveCollisionProbabilityIncreases(t *testing.T) {
	p := Default80211b()
	prev := -1.0
	for n := 1; n <= 40; n++ {
		r, err := Solve(p, n)
		if err != nil {
			t.Fatal(err)
		}
		if r.P < prev-1e-9 {
			t.Errorf("collision probability decreased at n=%d: %v -> %v", n, prev, r.P)
		}
		if r.P < 0 || r.P > 1 {
			t.Errorf("collision probability out of range at n=%d: %v", n, r.P)
		}
		prev = r.P
	}
}

func TestSolveKnownBallpark(t *testing.T) {
	// Bianchi's published basic-access results for his 1 Mbit/s parameter
	// set (JSAC 2000, Fig. 6) sit in the 0.65-0.87 efficiency band for
	// moderate n. Check we are in that regime, i.e. the model is wired
	// correctly (not off by a header or a rate).
	p := Bianchi1Mbps()
	r, err := Solve(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Efficiency < 0.65 || r.Efficiency > 0.87 {
		t.Errorf("efficiency at n=10 = %v, want within [0.65, 0.87]", r.Efficiency)
	}
	// The 802.11b 11 Mbit/s PHY pays its long preamble at 1 Mbit/s, so
	// efficiency is much lower but still positive.
	r11, err := Solve(Default80211b(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if r11.Efficiency < 0.3 || r11.Efficiency > 0.7 {
		t.Errorf("802.11b efficiency at n=10 = %v, want within [0.3, 0.7]", r11.Efficiency)
	}
}

func TestSolveErrors(t *testing.T) {
	if _, err := Solve(Default80211b(), 0); err == nil {
		t.Error("n=0 should error")
	}
	var bad Params
	if _, err := Solve(bad, 2); err == nil {
		t.Error("invalid params should error")
	}
}

func TestTauOfPSingularity(t *testing.T) {
	// tauOfP must be continuous at p = 1/2 (removable singularity).
	w, m := 32, 5
	at := tauOfP(0.5, w, m)
	near := tauOfP(0.5+1e-9, w, m)
	if math.Abs(at-near) > 1e-6 {
		t.Errorf("tauOfP discontinuous at 0.5: %v vs %v", at, near)
	}
	near = tauOfP(0.5-1e-9, w, m)
	if math.Abs(at-near) > 1e-6 {
		t.Errorf("tauOfP discontinuous at 0.5 (below): %v vs %v", at, near)
	}
}

func TestSolveOptimalNearConstant(t *testing.T) {
	p := Default80211b()
	r1, err := SolveOptimal(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SolveOptimal(p, 40)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Throughput <= 0 || r2.Throughput <= 0 {
		t.Fatalf("non-positive optimal throughput: %v, %v", r1.Throughput, r2.Throughput)
	}
	rel := math.Abs(r1.Throughput-r2.Throughput) / r1.Throughput
	if rel > 0.05 {
		t.Errorf("optimal throughput varies %.1f%% between n=2 and n=40; want < 5%%", rel*100)
	}
}

func TestOptimalBeatsPracticalAtHighN(t *testing.T) {
	p := Default80211b()
	prac, err := Solve(p, 30)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := SolveOptimal(p, 30)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Throughput <= prac.Throughput {
		t.Errorf("optimal backoff (%v) should beat practical (%v) at n=30",
			opt.Throughput, prac.Throughput)
	}
}

func TestSolveOptimalErrors(t *testing.T) {
	if _, err := SolveOptimal(Default80211b(), 0); err == nil {
		t.Error("n=0 should error")
	}
	var bad Params
	if _, err := SolveOptimal(bad, 2); err == nil {
		t.Error("invalid params should error")
	}
}

func TestCurves(t *testing.T) {
	p := Default80211b()
	curve, err := Curve(p, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 12 {
		t.Fatalf("curve length %d, want 12", len(curve))
	}
	opt, err := OptimalCurve(p, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt) != 12 {
		t.Fatalf("optimal curve length %d, want 12", len(opt))
	}
	for i := range curve {
		if curve[i] <= 0 || opt[i] <= 0 {
			t.Errorf("non-positive throughput at n=%d", i+1)
		}
	}
}

func TestCurveErrors(t *testing.T) {
	if _, err := Curve(Default80211b(), 0); err == nil {
		t.Error("maxN=0 should error")
	}
	if _, err := OptimalCurve(Default80211b(), 0); err == nil {
		t.Error("maxN=0 should error")
	}
}

func TestPracticalRateContract(t *testing.T) {
	f, err := PracticalRate(Default80211b())
	if err != nil {
		t.Fatal(err)
	}
	if err := ratefn.Validate(f, 40); err != nil {
		t.Fatalf("practical rate violates contract: %v", err)
	}
	if f.Rate(1) <= f.Rate(40) {
		t.Errorf("practical rate should decrease: R(1)=%v R(40)=%v", f.Rate(1), f.Rate(40))
	}
}

func TestOptimalRateContract(t *testing.T) {
	f, err := OptimalRate(Default80211b())
	if err != nil {
		t.Fatal(err)
	}
	if err := ratefn.Validate(f, 40); err != nil {
		t.Fatalf("optimal rate violates contract: %v", err)
	}
	// Near-constant: less than 10% total sag across the envelope.
	if f.Rate(40) < 0.9*f.Rate(2) {
		t.Errorf("optimal rate sags too much: R(2)=%v R(40)=%v", f.Rate(2), f.Rate(40))
	}
}

func TestRateAdaptersReject(t *testing.T) {
	var bad Params
	if _, err := PracticalRate(bad); err == nil {
		t.Error("PracticalRate should reject invalid params")
	}
	if _, err := OptimalRate(bad); err == nil {
		t.Error("OptimalRate should reject invalid params")
	}
}

func TestFigure3Shape(t *testing.T) {
	// The three curves of the paper's Figure 3, evaluated at k=1..20:
	// TDMA constant, optimal CSMA/CA near-constant below TDMA, practical
	// CSMA/CA decreasing below optimal for large k.
	p := Default80211b()
	tdma := ratefn.NewTDMA(p.DataRate)
	opt, err := OptimalRate(p)
	if err != nil {
		t.Fatal(err)
	}
	prac, err := PracticalRate(p)
	if err != nil {
		t.Fatal(err)
	}
	for k := 2; k <= 20; k++ {
		if opt.Rate(k) > tdma.Rate(k) {
			t.Errorf("k=%d: optimal CSMA (%v) above TDMA (%v)", k, opt.Rate(k), tdma.Rate(k))
		}
	}
	for k := 10; k <= 20; k++ {
		if prac.Rate(k) > opt.Rate(k) {
			t.Errorf("k=%d: practical CSMA (%v) above optimal (%v)", k, prac.Rate(k), opt.Rate(k))
		}
	}
	if prac.Rate(20) >= prac.Rate(1) {
		t.Errorf("practical CSMA should strictly decrease: R(1)=%v R(20)=%v",
			prac.Rate(1), prac.Rate(20))
	}
}
