package bianchi

import (
	"math"
	"testing"
)

func TestAccessModeString(t *testing.T) {
	for _, m := range []AccessMode{Basic, RTSCTS, AccessMode(9)} {
		if m.String() == "" {
			t.Errorf("empty string for mode %d", int(m))
		}
	}
}

func TestWithRTSCTS(t *testing.T) {
	p := Bianchi1Mbps().WithRTSCTS()
	if p.Mode != RTSCTS || p.RTSBits != 160 || p.CTSBits != 112 {
		t.Fatalf("WithRTSCTS = %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRTSCTSValidation(t *testing.T) {
	p := Bianchi1Mbps()
	p.Mode = RTSCTS // no control frame sizes
	if err := p.Validate(); err == nil {
		t.Error("RTS/CTS without frame sizes should error")
	}
	p = Bianchi1Mbps()
	p.Mode = AccessMode(7)
	if err := p.Validate(); err == nil {
		t.Error("unknown mode should error")
	}
	p = Bianchi1Mbps()
	p.RTSBits = -1
	if err := p.Validate(); err == nil {
		t.Error("negative RTS bits should error")
	}
}

func TestRTSCTSFrameTimes(t *testing.T) {
	basic := Bianchi1Mbps()
	rts := basic.WithRTSCTS()
	tsB, tcB := basic.FrameTimes()
	tsR, tcR := rts.FrameTimes()
	// RTS/CTS successful exchanges are longer (extra handshake)...
	if tsR <= tsB {
		t.Errorf("Ts rts=%v should exceed basic=%v", tsR, tsB)
	}
	// ...but collisions are far cheaper (only the RTS is lost).
	if tcR >= tcB/10 {
		t.Errorf("Tc rts=%v should be far below basic=%v", tcR, tcB)
	}
}

func TestRTSCTSBeatsBasicAtHighN(t *testing.T) {
	// The classic Bianchi result: RTS/CTS wins under heavy contention
	// because collisions cost only an RTS frame.
	basic := Bianchi1Mbps()
	rts := basic.WithRTSCTS()
	rBasic, err := Solve(basic, 50)
	if err != nil {
		t.Fatal(err)
	}
	rRTS, err := Solve(rts, 50)
	if err != nil {
		t.Fatal(err)
	}
	if rRTS.Throughput <= rBasic.Throughput {
		t.Errorf("at n=50 RTS/CTS (%v) should beat basic (%v)",
			rRTS.Throughput, rBasic.Throughput)
	}
}

func TestRTSCTSLessSensitiveToN(t *testing.T) {
	rts := Bianchi1Mbps().WithRTSCTS()
	basic := Bianchi1Mbps()
	sag := func(p Params) float64 {
		t2, err2 := Solve(p, 2)
		t50, err50 := Solve(p, 50)
		if err2 != nil || err50 != nil {
			t.Fatalf("solve: %v %v", err2, err50)
		}
		return (t2.Throughput - t50.Throughput) / t2.Throughput
	}
	if sag(rts) >= sag(basic) {
		t.Errorf("RTS/CTS sag %v should be below basic sag %v", sag(rts), sag(basic))
	}
}

func TestRTSCTSRateAdapterContract(t *testing.T) {
	f, err := PracticalRate(Bianchi1Mbps().WithRTSCTS())
	if err != nil {
		t.Fatal(err)
	}
	// Monotone contract holds and rates stay positive and sane.
	prev := math.Inf(1)
	for k := 1; k <= 30; k++ {
		r := f.Rate(k)
		if r <= 0 || r > 1 {
			t.Fatalf("Rate(%d) = %v out of (0, 1]", k, r)
		}
		if r > prev+1e-12 {
			t.Fatalf("rate increased at k=%d", k)
		}
		prev = r
	}
}
