package bianchi

import (
	"github.com/multiradio/chanalloc/internal/ratefn"
)

// PracticalRate adapts the practical-DCF saturation throughput S(k) to the
// game's rate-function interface (the "practical CSMA/CA" curve of the
// paper's Figure 3). The result is wrapped in a monotone envelope — Bianchi
// throughput can rise marginally between n=1 and n=2 for some parameter sets
// — and memoised, because each evaluation solves a fixed point.
//
// Rate(k) is the aggregate MAC throughput in Mbit/s when k saturated radios
// share the channel.
func PracticalRate(p Params) (ratefn.Func, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	inner := &solverFunc{params: p, name: "csma-practical", solve: Solve}
	return ratefn.NewMemo(ratefn.NewMonotoneEnvelope(inner)), nil
}

// OptimalRate adapts the optimal-backoff throughput to the rate-function
// interface (the "optimal CSMA/CA" curve of Figure 3). Near-constant in k.
func OptimalRate(p Params) (ratefn.Func, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	inner := &solverFunc{params: p, name: "csma-optimal", solve: SolveOptimal}
	return ratefn.NewMemo(ratefn.NewMonotoneEnvelope(inner)), nil
}

// solverFunc is the raw (pre-envelope) adapter.
type solverFunc struct {
	params Params
	name   string
	solve  func(Params, int) (Result, error)
}

var _ ratefn.Func = (*solverFunc)(nil)

func (s *solverFunc) Rate(k int) float64 {
	if k <= 0 {
		return 0
	}
	r, err := s.solve(s.params, k)
	if err != nil {
		// Parameters were validated at construction; a solver failure here
		// means the fixed point was not bracketed, which cannot happen for
		// valid parameters. Treat defensively as zero rate.
		return 0
	}
	return r.Throughput
}

func (s *solverFunc) Name() string { return s.name }
