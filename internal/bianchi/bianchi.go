// Package bianchi implements Bianchi's analytical model of the IEEE 802.11
// distributed coordination function (DCF) under saturation
// (G. Bianchi, "Performance Analysis of the IEEE 802.11 Distributed
// Coordination Function", IEEE JSAC 18(3), 2000).
//
// The paper reproduced by this repository (Félegyházi et al., ICDCS 2006)
// cites Bianchi's result to justify the shape of the channel rate function
// R(k_c) in its Figure 3:
//
//   - reservation TDMA            -> constant R(k_c)
//   - CSMA/CA, optimal backoff    -> (near-)constant R(k_c)
//   - CSMA/CA, practical backoff  -> decreasing R(k_c) due to collisions
//
// This package computes the saturation throughput S(n) for n contending
// stations by solving the standard two-equation fixed point
//
//	tau = 2(1-2p) / ((1-2p)(W+1) + p*W*(1-(2p)^m))
//	p   = 1 - (1-tau)^(n-1)
//
// and feeding it into Bianchi's normalised-throughput expression. The
// "optimal backoff" variant replaces the binary exponential backoff with the
// approximately optimal transmission probability tau*(n) that maximises
// throughput, which makes S(n) essentially independent of n.
package bianchi

import (
	"errors"
	"fmt"
	"math"
)

// AccessMode selects the DCF access mechanism.
type AccessMode int

// Access mechanisms. Basic is the two-way DATA/ACK handshake; RTSCTS
// reserves the channel with a short RTS/CTS exchange first, which shrinks
// the collision cost to the RTS duration and makes throughput far less
// sensitive to the number of stations (Bianchi §III-B).
const (
	Basic AccessMode = iota
	RTSCTS
)

// String implements fmt.Stringer.
func (m AccessMode) String() string {
	switch m {
	case Basic:
		return "basic"
	case RTSCTS:
		return "rts/cts"
	default:
		return fmt.Sprintf("AccessMode(%d)", int(m))
	}
}

// Params collects the DCF and PHY parameters of the model. All durations are
// in microseconds, sizes in bits, and rates in Mbit/s.
type Params struct {
	// CWmin is the minimum contention window W (number of slots); 802.11b
	// DSSS uses 32.
	CWmin int
	// MaxStage is the maximum backoff stage m, so CWmax = CWmin * 2^m;
	// 802.11b DSSS uses 5.
	MaxStage int
	// SlotTime is the backoff slot duration sigma, in µs.
	SlotTime float64
	// SIFS and DIFS are the interframe spaces in µs.
	SIFS float64
	DIFS float64
	// PropDelay is the propagation delay in µs.
	PropDelay float64
	// PHYHeader and MACHeader are header transmission times in µs and bits
	// respectively: the PHY header is sent at the basic rate (time given
	// directly), the MAC header and payload at DataRate.
	PHYHeader float64 // µs
	MACHeader int     // bits
	ACKBits   int     // bits (ACK frame body, sent at BasicRate)
	// Payload is the MAC payload size in bits.
	Payload int
	// DataRate and BasicRate are channel bitrates in Mbit/s.
	DataRate  float64
	BasicRate float64
	// Mode selects basic access (zero value) or RTS/CTS.
	Mode AccessMode
	// RTSBits and CTSBits are the control frame sizes, sent at BasicRate;
	// required (> 0) when Mode is RTSCTS, ignored otherwise.
	RTSBits int
	CTSBits int
}

// WithRTSCTS returns a copy of p using the RTS/CTS mechanism with the
// standard 802.11 control frame sizes (RTS 160 bits, CTS 112 bits).
func (p Params) WithRTSCTS() Params {
	p.Mode = RTSCTS
	p.RTSBits = 160
	p.CTSBits = 112
	return p
}

// Default80211b returns the classic 802.11b DSSS parameter set used in
// Bianchi's paper-style evaluations, with an 8184-bit payload.
func Default80211b() Params {
	return Params{
		CWmin:     32,
		MaxStage:  5,
		SlotTime:  20,
		SIFS:      10,
		DIFS:      50,
		PropDelay: 1,
		PHYHeader: 192, // long PLCP preamble+header at 1 Mbit/s
		MACHeader: 272,
		ACKBits:   112,
		Payload:   8184,
		DataRate:  11,
		BasicRate: 1,
	}
}

// Bianchi1Mbps returns the parameter set of Bianchi's original JSAC paper
// (Table II): a 1 Mbit/s channel where headers and payload share one rate.
// Useful for validating the model against the published ~0.8 efficiency
// numbers.
func Bianchi1Mbps() Params {
	return Params{
		CWmin:     32,
		MaxStage:  5,
		SlotTime:  50,
		SIFS:      28,
		DIFS:      128,
		PropDelay: 1,
		PHYHeader: 128, // 128 bits at 1 Mbit/s
		MACHeader: 272,
		ACKBits:   112,
		Payload:   8184,
		DataRate:  1,
		BasicRate: 1,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.CWmin < 1:
		return fmt.Errorf("bianchi: CWmin = %d, want >= 1", p.CWmin)
	case p.MaxStage < 0:
		return fmt.Errorf("bianchi: MaxStage = %d, want >= 0", p.MaxStage)
	case p.SlotTime <= 0:
		return fmt.Errorf("bianchi: SlotTime = %v, want > 0", p.SlotTime)
	case p.SIFS < 0 || p.DIFS < 0 || p.PropDelay < 0 || p.PHYHeader < 0:
		return errors.New("bianchi: negative interframe timing")
	case p.MACHeader < 0 || p.ACKBits < 0:
		return errors.New("bianchi: negative header size")
	case p.Payload <= 0:
		return fmt.Errorf("bianchi: Payload = %d, want > 0", p.Payload)
	case p.DataRate <= 0 || p.BasicRate <= 0:
		return errors.New("bianchi: non-positive bitrate")
	case p.Mode != Basic && p.Mode != RTSCTS:
		return fmt.Errorf("bianchi: unknown access mode %d", int(p.Mode))
	case p.Mode == RTSCTS && (p.RTSBits <= 0 || p.CTSBits <= 0):
		return fmt.Errorf("bianchi: RTS/CTS mode requires positive RTSBits/CTSBits, got %d/%d", p.RTSBits, p.CTSBits)
	case p.RTSBits < 0 || p.CTSBits < 0:
		return errors.New("bianchi: negative control frame size")
	}
	return nil
}

// FrameTimes returns (Ts, Tc): the mean durations in µs of a successful
// transmission and of a collision for the configured access mechanism.
func (p Params) FrameTimes() (ts, tc float64) {
	header := p.PHYHeader + float64(p.MACHeader)/p.DataRate
	payload := float64(p.Payload) / p.DataRate
	ack := p.PHYHeader + float64(p.ACKBits)/p.BasicRate
	if p.Mode == RTSCTS {
		rts := p.PHYHeader + float64(p.RTSBits)/p.BasicRate
		cts := p.PHYHeader + float64(p.CTSBits)/p.BasicRate
		ts = rts + p.SIFS + p.PropDelay + cts + p.SIFS + p.PropDelay +
			header + payload + p.SIFS + p.PropDelay + ack + p.DIFS + p.PropDelay
		// Colliding RTS frames hold the channel only for the RTS itself.
		tc = rts + p.DIFS + p.PropDelay
		return ts, tc
	}
	ts = header + payload + p.SIFS + p.PropDelay + ack + p.DIFS + p.PropDelay
	// In a collision the channel is held for the longest colliding frame;
	// with equal frame sizes that is header+payload, then DIFS.
	tc = header + payload + p.DIFS + p.PropDelay
	return ts, tc
}

// Result reports the solved operating point for n stations.
type Result struct {
	N          int     // number of contending stations
	Tau        float64 // per-slot transmission probability
	P          float64 // conditional collision probability
	Throughput float64 // aggregate MAC throughput in Mbit/s
	Efficiency float64 // Throughput / DataRate
}

// tauOfP is the backoff-chain equation: the stationary transmission
// probability given conditional collision probability p.
func tauOfP(p float64, w, m int) float64 {
	wf := float64(w)
	if p == 0.5 {
		// The closed form has a removable singularity at p = 1/2:
		// tau = 2 / (W + 1 + W*m/2) after taking the limit.
		return 2 / (wf + 1 + wf*float64(m)/2)
	}
	num := 2 * (1 - 2*p)
	den := (1-2*p)*(wf+1) + p*wf*(1-math.Pow(2*p, float64(m)))
	return num / den
}

// Solve computes the DCF operating point for n saturated stations using
// bisection on tau. It returns an error for invalid parameters or n < 1.
func Solve(p Params, n int) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if n < 1 {
		return Result{}, fmt.Errorf("bianchi: n = %d, want >= 1", n)
	}
	if n == 1 {
		// No collisions: p = 0, tau = 2/(W+1).
		tau := tauOfP(0, p.CWmin, p.MaxStage)
		r := p.throughputAt(1, tau, 0)
		return r, nil
	}
	// g(tau) = tauOfP(collision(tau)) - tau is strictly decreasing in tau:
	// bisection over (0, 1).
	collision := func(tau float64) float64 {
		return 1 - math.Pow(1-tau, float64(n-1))
	}
	g := func(tau float64) float64 {
		return tauOfP(collision(tau), p.CWmin, p.MaxStage) - tau
	}
	lo, hi := 1e-12, 1-1e-12
	gLo, gHi := g(lo), g(hi)
	if gLo < 0 || gHi > 0 {
		return Result{}, fmt.Errorf("bianchi: fixed point not bracketed for n=%d (g(lo)=%v g(hi)=%v)", n, gLo, gHi)
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if g(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	tau := (lo + hi) / 2
	return p.throughputAt(n, tau, collision(tau)), nil
}

// throughputAt evaluates Bianchi's throughput expression at the operating
// point (tau, p) for n stations.
func (p Params) throughputAt(n int, tau, pColl float64) Result {
	ts, tc := p.FrameTimes()
	pTr := 1 - math.Pow(1-tau, float64(n))
	var pS float64
	if pTr > 0 {
		pS = float64(n) * tau * math.Pow(1-tau, float64(n-1)) / pTr
	}
	// Expected slot duration (µs).
	slot := (1-pTr)*p.SlotTime + pTr*pS*ts + pTr*(1-pS)*tc
	var s float64
	if slot > 0 {
		// Payload bits delivered per µs = Mbit/s.
		s = pS * pTr * float64(p.Payload) / slot
	}
	return Result{
		N:          n,
		Tau:        tau,
		P:          pColl,
		Throughput: s,
		Efficiency: s / p.DataRate,
	}
}

// SolveOptimal computes the operating point when every station uses the
// (approximately) throughput-optimal transmission probability
//
//	tau*(n) ≈ 1 / (n * sqrt(Tc' / 2))
//
// where Tc' = Tc/sigma is the collision duration in slot units (Bianchi
// §IV). With this backoff policy the saturation throughput is essentially
// independent of n, which is the "CSMA/CA optimal backoff" curve of the
// reproduced paper's Figure 3.
func SolveOptimal(p Params, n int) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if n < 1 {
		return Result{}, fmt.Errorf("bianchi: n = %d, want >= 1", n)
	}
	_, tc := p.FrameTimes()
	tcSlots := tc / p.SlotTime
	tau := 1 / (float64(n) * math.Sqrt(tcSlots/2))
	if tau > 1 {
		tau = 1
	}
	pColl := 1 - math.Pow(1-tau, float64(n-1))
	return p.throughputAt(n, tau, pColl), nil
}

// Curve evaluates Solve for n = 1..maxN and returns the throughputs in
// Mbit/s, index i holding n = i+1.
func Curve(p Params, maxN int) ([]float64, error) {
	if maxN < 1 {
		return nil, fmt.Errorf("bianchi: maxN = %d, want >= 1", maxN)
	}
	out := make([]float64, maxN)
	for n := 1; n <= maxN; n++ {
		r, err := Solve(p, n)
		if err != nil {
			return nil, fmt.Errorf("bianchi: curve at n=%d: %w", n, err)
		}
		out[n-1] = r.Throughput
	}
	return out, nil
}

// OptimalCurve evaluates SolveOptimal for n = 1..maxN.
func OptimalCurve(p Params, maxN int) ([]float64, error) {
	if maxN < 1 {
		return nil, fmt.Errorf("bianchi: maxN = %d, want >= 1", maxN)
	}
	out := make([]float64, maxN)
	for n := 1; n <= maxN; n++ {
		r, err := SolveOptimal(p, n)
		if err != nil {
			return nil, fmt.Errorf("bianchi: optimal curve at n=%d: %w", n, err)
		}
		out[n-1] = r.Throughput
	}
	return out, nil
}
