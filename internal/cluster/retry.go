package cluster

import (
	"errors"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"github.com/multiradio/chanalloc/internal/obs"
)

// permanentError marks a join failure that retrying cannot fix — an auth
// rejection, a protocol-version mismatch, a malformed address. Retry stops
// on these immediately instead of hammering a coordinator that will never
// accept.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Retry treats it as non-retryable.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// RetryConfig shapes a Retry loop.
type RetryConfig struct {
	// Attempts bounds CONSECUTIVE failed attempts before giving up;
	// 0 means unlimited. A successful session (attempt returning nil)
	// resets the counter — a long-lived worker that served for an hour and
	// lost its coordinator starts its redial budget fresh.
	Attempts int
	// Wait is the pause after the first failure; it doubles per consecutive
	// failure up to MaxWait. Wait <= 0 retries immediately.
	Wait time.Duration
	// MaxWait caps the backoff; <= 0 means 10×Wait (or no cap if Wait is 0).
	MaxWait time.Duration
	// Seed drives the backoff jitter: each pause is drawn uniformly from
	// [wait/2, wait] of the doubling schedule, so a fleet of workers cut off
	// by the same coordinator restart spreads its redials instead of
	// thundering back in lock-step. Seed == 0 (the default) derives a
	// process-unique seed; tests pin an explicit seed for a reproducible
	// wait sequence.
	Seed uint64
}

// retrySeq distinguishes the derived seeds of a process's Retry loops, so
// two workers embedded in one test binary still jitter differently.
var retrySeq atomic.Uint64

// mRetryAttempts counts failed attempts across every Retry loop in the
// process — the observable trace of backoff pressure (scrape it next to
// engine_requeues_total to see a flapping coordinator from the worker side).
var mRetryAttempts = obs.NewCounter("cluster_retry_attempts_total")

// jitterRNG is a tiny SplitMix64: enough statistical spread for backoff
// jitter with no dependency on the simulation RNG package (which depends on
// nothing, and should stay that way round both directions).
type jitterRNG struct{ state uint64 }

func (r *jitterRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// jitter draws a pause uniformly from [wait/2, wait].
func (r *jitterRNG) jitter(wait time.Duration) time.Duration {
	if wait <= 1 {
		return wait
	}
	half := wait / 2
	return half + time.Duration(r.next()%uint64(wait-half+1))
}

// Retry runs attempt in a loop: each call is one full session (dial,
// register, serve until the transport ends). A nil return means the session
// ended cleanly (coordinator went away) — the loop redials, because workers
// outlive coordinators. A failed attempt backs off exponentially with
// seeded jitter (each pause uniform in [wait/2, wait] of the doubling
// schedule — see RetryConfig.Seed). The loop ends when stop closes (returns
// nil), when attempt returns a Permanent error (returned unwrapped of the
// marker), or when Attempts consecutive failures exhaust the budget
// (returns the last error). Failed attempts are counted in
// cluster_retry_attempts_total.
func Retry(stop <-chan struct{}, cfg RetryConfig, attempt func() error) error {
	maxWait := cfg.MaxWait
	if maxWait <= 0 {
		maxWait = 10 * cfg.Wait
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano()) ^ (retrySeq.Add(1) << 32) ^ uint64(os.Getpid())
	}
	rng := &jitterRNG{state: seed}
	failures := 0
	wait := cfg.Wait
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		err := attempt()
		if err == nil {
			failures = 0
			wait = cfg.Wait
			continue
		}
		var p *permanentError
		if errors.As(err, &p) {
			return p.err
		}
		failures++
		mRetryAttempts.Inc()
		if cfg.Attempts > 0 && failures >= cfg.Attempts {
			return fmt.Errorf("giving up after %d attempts: %w", failures, err)
		}
		if wait > 0 {
			select {
			case <-stop:
				return nil
			case <-retrySleep(rng.jitter(wait)):
			}
			if wait *= 2; wait > maxWait && maxWait > 0 {
				wait = maxWait
			}
		}
	}
}

// retrySleep is time.After behind a test seam: the jitter tests swap it to
// record the drawn waits without actually sleeping.
var retrySleep = func(d time.Duration) <-chan time.Time { return time.After(d) }
