package cluster

import (
	"errors"
	"fmt"
	"time"
)

// permanentError marks a join failure that retrying cannot fix — an auth
// rejection, a protocol-version mismatch, a malformed address. Retry stops
// on these immediately instead of hammering a coordinator that will never
// accept.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Retry treats it as non-retryable.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// RetryConfig shapes a Retry loop.
type RetryConfig struct {
	// Attempts bounds CONSECUTIVE failed attempts before giving up;
	// 0 means unlimited. A successful session (attempt returning nil)
	// resets the counter — a long-lived worker that served for an hour and
	// lost its coordinator starts its redial budget fresh.
	Attempts int
	// Wait is the pause after the first failure; it doubles per consecutive
	// failure up to MaxWait. Wait <= 0 retries immediately.
	Wait time.Duration
	// MaxWait caps the backoff; <= 0 means 10×Wait (or no cap if Wait is 0).
	MaxWait time.Duration
}

// Retry runs attempt in a loop: each call is one full session (dial,
// register, serve until the transport ends). A nil return means the session
// ended cleanly (coordinator went away) — the loop redials, because workers
// outlive coordinators. A failed attempt backs off exponentially. The loop
// ends when stop closes (returns nil), when attempt returns a Permanent
// error (returned unwrapped of the marker), or when Attempts consecutive
// failures exhaust the budget (returns the last error).
func Retry(stop <-chan struct{}, cfg RetryConfig, attempt func() error) error {
	maxWait := cfg.MaxWait
	if maxWait <= 0 {
		maxWait = 10 * cfg.Wait
	}
	failures := 0
	wait := cfg.Wait
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		err := attempt()
		if err == nil {
			failures = 0
			wait = cfg.Wait
			continue
		}
		var p *permanentError
		if errors.As(err, &p) {
			return p.err
		}
		failures++
		if cfg.Attempts > 0 && failures >= cfg.Attempts {
			return fmt.Errorf("giving up after %d attempts: %w", failures, err)
		}
		if wait > 0 {
			select {
			case <-stop:
				return nil
			case <-time.After(wait):
			}
			if wait *= 2; wait > maxWait && maxWait > 0 {
				wait = maxWait
			}
		}
	}
}
