package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRegistryAddRemoveTouch(t *testing.T) {
	r := NewRegistry()
	if r.Len() != 0 {
		t.Fatalf("fresh registry has %d members", r.Len())
	}
	a := r.Add("peer-a", []string{"t1", "t2"}, nil)
	b := r.Add("peer-b", []string{"t1"}, nil)
	if a == b {
		t.Fatal("member IDs must be unique")
	}
	members := r.Members()
	if len(members) != 2 || members[0].ID != a || members[1].ID != b {
		t.Fatalf("members %+v, want [a=%d b=%d] in join order", members, a, b)
	}
	if !members[0].Has("t2") || members[0].Has("t3") {
		t.Fatalf("task membership wrong: %+v", members[0])
	}
	if !r.Touch(a) {
		t.Fatal("touching a live member should succeed")
	}
	if !r.Remove(a) {
		t.Fatal("removing a live member should succeed")
	}
	if r.Remove(a) {
		t.Fatal("double remove must report absence")
	}
	if r.Touch(a) {
		t.Fatal("touching a removed member must fail")
	}
	if r.Len() != 1 {
		t.Fatalf("len %d after removal, want 1", r.Len())
	}
}

// TestRegistryIDsNeverReused: a member that leaves and rejoins is a new
// identity — in-flight bookkeeping keyed by ID can never confuse the two.
func TestRegistryIDsNeverReused(t *testing.T) {
	r := NewRegistry()
	seen := map[int64]bool{}
	for i := 0; i < 10; i++ {
		id := r.Add(fmt.Sprintf("peer-%d", i), nil, nil)
		if seen[id] {
			t.Fatalf("ID %d reused", id)
		}
		seen[id] = true
		r.Remove(id)
	}
}

// TestRegistryChangedWakesWaiters pins the lost-wakeup guarantee: a channel
// fetched before a change is closed by that change.
func TestRegistryChangedWakesWaiters(t *testing.T) {
	r := NewRegistry()
	ch := r.Changed()
	id := r.Add("peer", nil, nil)
	select {
	case <-ch:
	default:
		t.Fatal("Add must close the change channel fetched before it")
	}
	ch = r.Changed()
	r.Remove(id)
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("Remove must close the change channel")
	}
	// Touch is not a membership change.
	id = r.Add("peer2", nil, nil)
	ch = r.Changed()
	r.Touch(id)
	select {
	case <-ch:
		t.Fatal("Touch must not signal a membership change")
	default:
	}
}

// TestRegistryConcurrent exercises the table under contention (run with
// -race).
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := r.Add(fmt.Sprintf("w%d-%d", w, i), []string{"t"}, nil)
				r.Touch(id)
				r.Members()
				<-time.After(0)
				r.Remove(id)
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 0 {
		t.Fatalf("members leaked: %d", r.Len())
	}
}

// TestMonitorEvictsSilentMembers: members past the silence deadline are
// removed, their close hook pulled, and OnEvict observes them; fresh
// members survive the sweep.
func TestMonitorEvictsSilentMembers(t *testing.T) {
	r := NewRegistry()
	clock := time.Now()
	r.now = func() time.Time { return clock }

	var closedA atomic.Int64
	a := r.Add("stale", []string{"t"}, func() error { closedA.Add(1); return nil })
	clock = clock.Add(time.Minute) // a is now a minute silent
	b := r.Add("fresh", []string{"t"}, func() error { t.Error("fresh member closed"); return nil })

	var evicted []Member
	m := &Monitor{
		Registry:   r,
		EvictAfter: 30 * time.Second,
		OnEvict:    func(mem Member) { evicted = append(evicted, mem) },
		now:        func() time.Time { return clock },
	}
	if n := m.Sweep(); n != 1 {
		t.Fatalf("sweep evicted %d members, want 1", n)
	}
	if closedA.Load() != 1 {
		t.Fatalf("stale member's close hook ran %d times, want 1", closedA.Load())
	}
	if len(evicted) != 1 || evicted[0].ID != a {
		t.Fatalf("OnEvict saw %+v, want member %d", evicted, a)
	}
	if r.Len() != 1 || r.Members()[0].ID != b {
		t.Fatalf("registry after sweep: %+v, want only member %d", r.Members(), b)
	}
	// A touch resets the clock: the survivor stays silent-free forever.
	clock = clock.Add(25 * time.Second)
	r.Touch(b)
	clock = clock.Add(25 * time.Second)
	if n := m.Sweep(); n != 0 {
		t.Fatalf("sweep evicted %d members after a touch, want 0", n)
	}
}

// TestMonitorRunStops: Run returns when stop closes.
func TestMonitorRunStops(t *testing.T) {
	m := &Monitor{Registry: NewRegistry(), EvictAfter: time.Hour, Tick: time.Millisecond}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); m.Run(stop) }()
	close(stop)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Run did not stop")
	}
}

func TestRetryStopsOnPermanent(t *testing.T) {
	calls := 0
	base := errors.New("auth rejected")
	err := Retry(nil, RetryConfig{}, func() error {
		calls++
		return Permanent(base)
	})
	if !errors.Is(err, base) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want the permanent cause after one attempt", err, calls)
	}
	if IsPermanent(err) {
		t.Fatal("Retry must unwrap the permanent marker")
	}
	if !IsPermanent(Permanent(base)) || IsPermanent(base) || Permanent(nil) != nil {
		t.Fatal("Permanent/IsPermanent contract broken")
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	err := Retry(nil, RetryConfig{Attempts: 3}, func() error {
		calls++
		return errors.New("transient")
	})
	if err == nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want failure after exactly 3 attempts", err, calls)
	}
}

// TestRetrySuccessResetsBudget: a clean session (nil return) resets the
// consecutive-failure counter, so a long-lived worker redials fresh.
func TestRetrySuccessResetsBudget(t *testing.T) {
	calls := 0
	err := Retry(nil, RetryConfig{Attempts: 2}, func() error {
		calls++
		switch calls {
		case 1:
			return errors.New("transient")
		case 2:
			return nil // a full served session
		case 3:
			return errors.New("transient")
		default:
			return Permanent(errors.New("done"))
		}
	})
	if err == nil || err.Error() != "done" || calls != 4 {
		t.Fatalf("err=%v calls=%d: the clean session did not reset the budget", err, calls)
	}
}

func TestRetryStopEndsLoop(t *testing.T) {
	stop := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	done := make(chan error, 1)
	go func() {
		done <- Retry(stop, RetryConfig{Wait: time.Hour}, func() error {
			once.Do(func() { close(started) })
			return errors.New("transient")
		})
	}()
	<-started
	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("stopped retry returned %v, want nil", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Retry did not observe stop during backoff")
	}
}
