package cluster

import "time"

// Monitor is the liveness half of the membership subsystem: it periodically
// sweeps the registry and evicts members that have been silent — no
// heartbeat, no result — for longer than EvictAfter. Eviction removes the
// member from the registry, pulls its close hook to sever the transport,
// and reports it through OnEvict; the connection's reader then observes the
// severed transport and runs the same leave path an ordinary failure would,
// requeueing any in-flight work.
type Monitor struct {
	// Registry is the membership table to sweep.
	Registry *Registry
	// EvictAfter is how long a member may stay silent before eviction.
	EvictAfter time.Duration
	// Tick is the sweep cadence; <= 0 defaults to EvictAfter / 4.
	Tick time.Duration
	// OnEvict, when set, observes each eviction (logging, stats).
	OnEvict func(Member)
	// now is test-overridable.
	now func() time.Time
}

// Run sweeps until stop is closed. It is the caller's goroutine: a
// coordinator starts one monitor per registry and closes stop at teardown.
func (m *Monitor) Run(stop <-chan struct{}) {
	tick := m.Tick
	if tick <= 0 {
		tick = m.EvictAfter / 4
	}
	if tick <= 0 {
		tick = time.Second
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			m.Sweep()
		}
	}
}

// Sweep evicts every currently-silent member once and returns how many it
// evicted. Exposed separately from Run so tests (and callers with their own
// schedulers) can drive the liveness policy deterministically.
func (m *Monitor) Sweep() int {
	now := time.Now
	if m.now != nil {
		now = m.now
	}
	deadline := now().Add(-m.EvictAfter)
	evicted := 0
	for _, silent := range m.Registry.SilentSince(deadline) {
		info, closeHook, ok := m.Registry.evict(silent.ID)
		if !ok {
			continue // left on its own between the snapshot and now
		}
		if closeHook != nil {
			closeHook() //nolint:errcheck — the transport may already be down
		}
		if m.OnEvict != nil {
			m.OnEvict(info)
		}
		evicted++
	}
	return evicted
}
