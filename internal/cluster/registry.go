// Package cluster is the membership subsystem of the distributed engine:
// a registry of workers that dialed in and registered with a coordinator,
// liveness tracking driven by heartbeats (silent members are evicted so
// their in-flight work can be requeued), and the retry loop a worker uses
// to join — and rejoin — a coordinator that may not be up yet.
//
// The package is transport-agnostic on purpose: it tracks who is a member,
// when each member was last heard from, and when to give up on one. The
// wire protocol those members speak (the engine's NDJSON frames, see
// internal/engine) stays with the code that owns the connections; this
// package only holds the close hook it must pull when a member goes silent.
package cluster

import (
	"sort"
	"sync"
	"time"
)

// Member is a snapshot of one registered worker.
type Member struct {
	// ID is the registry-assigned member identity, unique for the lifetime
	// of the registry (never reused, so a member that drops and rejoins is
	// distinguishable from one that never left).
	ID int64
	// Remote labels the member's origin for logs ("10.0.0.7:52114").
	Remote string
	// Tasks lists the engine tasks the member announced at registration.
	Tasks []string
	// Joined is when the member registered.
	Joined time.Time
	// LastSeen is when the member last produced any frame (heartbeat or
	// result) — the liveness clock the Monitor evicts on.
	LastSeen time.Time
}

// Has reports whether the member announced the named task.
func (m Member) Has(task string) bool {
	for _, t := range m.Tasks {
		if t == task {
			return true
		}
	}
	return false
}

// member is the registry's mutable record behind a Member snapshot.
type member struct {
	info  Member
	close func() error
}

// Registry is a thread-safe membership table with change notification.
// Adding, removing and touching members is cheap; Members returns
// snapshots, never live records, so callers can read them without racing
// the registry's own bookkeeping.
type Registry struct {
	mu      sync.Mutex
	nextID  int64
	members map[int64]*member
	// changed is closed and replaced on every membership change; Changed
	// hands the current channel to waiters, turning the registry into a
	// level-triggered wakeup source (a waiter that fetched the channel
	// before the change still wakes, because that very channel was closed).
	changed chan struct{}
	now     func() time.Time
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		members: map[int64]*member{},
		changed: make(chan struct{}),
		now:     time.Now,
	}
}

// bump wakes every waiter on the current change channel. Callers hold mu.
func (r *Registry) bump() {
	close(r.changed)
	r.changed = make(chan struct{})
}

// Changed returns a channel that is closed at the next membership change
// (join, leave, eviction). Fetch it before snapshotting Members: a change
// that lands between the two closes the channel you already hold, so the
// wakeup cannot be lost.
func (r *Registry) Changed() <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.changed
}

// Add registers a member and returns its ID. close is the hook Monitor
// eviction pulls to sever the member's transport; it must be safe to call
// more than once.
func (r *Registry) Add(remote string, tasks []string, close func() error) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	now := r.now()
	r.members[r.nextID] = &member{
		info: Member{
			ID:       r.nextID,
			Remote:   remote,
			Tasks:    append([]string(nil), tasks...),
			Joined:   now,
			LastSeen: now,
		},
		close: close,
	}
	r.bump()
	return r.nextID
}

// Remove drops a member; it reports whether the member was present (false
// means someone else — the eviction monitor, a failing reader — already
// removed it, so cleanup paths can race benignly).
func (r *Registry) Remove(id int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[id]; !ok {
		return false
	}
	delete(r.members, id)
	r.bump()
	return true
}

// Touch refreshes a member's liveness clock; it reports whether the member
// is still registered.
func (r *Registry) Touch(id int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.members[id]
	if !ok {
		return false
	}
	m.info.LastSeen = r.now()
	return true
}

// Len reports the current member count.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.members)
}

// Members returns a snapshot of the current membership, ordered by ID
// (join order).
func (r *Registry) Members() []Member {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Member, 0, len(r.members))
	for _, m := range r.members {
		out = append(out, m.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// evict removes the member and returns its snapshot and close hook; used by
// the Monitor so that removal and transport teardown happen against the
// same record even if the member re-registers under a new ID meanwhile.
func (r *Registry) evict(id int64) (Member, func() error, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.members[id]
	if !ok {
		return Member{}, nil, false
	}
	delete(r.members, id)
	r.bump()
	return m.info, m.close, true
}

// SilentSince returns the members whose LastSeen is before the deadline —
// the Monitor's eviction candidates.
func (r *Registry) SilentSince(deadline time.Time) []Member {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Member
	for _, m := range r.members {
		if m.info.LastSeen.Before(deadline) {
			out = append(out, m.info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
