package cluster

import (
	"errors"
	"testing"
	"time"

	"github.com/multiradio/chanalloc/internal/obs"
)

// captureSleeps swaps the retrySleep seam for a recorder that never actually
// sleeps, restoring it at cleanup.
func captureSleeps(t *testing.T) *[]time.Duration {
	t.Helper()
	var waits []time.Duration
	orig := retrySleep
	retrySleep = func(d time.Duration) <-chan time.Time {
		waits = append(waits, d)
		ch := make(chan time.Time, 1)
		ch <- time.Time{}
		return ch
	}
	t.Cleanup(func() { retrySleep = orig })
	return &waits
}

// TestRetryJitterWithinDoublingEnvelope: every drawn pause lands in
// [wait/2, wait] of the doubling schedule, capped at MaxWait.
func TestRetryJitterWithinDoublingEnvelope(t *testing.T) {
	waits := captureSleeps(t)
	boom := errors.New("boom")
	err := Retry(nil, RetryConfig{
		Attempts: 8,
		Wait:     100 * time.Millisecond,
		MaxWait:  400 * time.Millisecond,
		Seed:     1,
	}, func() error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(*waits) != 7 { // attempts-1 pauses; the final failure returns
		t.Fatalf("recorded %d pauses, want 7", len(*waits))
	}
	// The deterministic doubling envelope: 100, 200, 400, 400, ...
	envelope := []time.Duration{100, 200, 400, 400, 400, 400, 400}
	for i, w := range *waits {
		top := envelope[i] * time.Millisecond
		if w < top/2 || w > top {
			t.Fatalf("pause %d = %v outside [%v, %v]", i, w, top/2, top)
		}
	}
}

// TestRetryJitterSeedDeterminism: one seed, one wait sequence; different
// seeds, different sequences.
func TestRetryJitterSeedDeterminism(t *testing.T) {
	run := func(seed uint64) []time.Duration {
		waits := captureSleeps(t)
		Retry(nil, RetryConfig{Attempts: 6, Wait: 50 * time.Millisecond, Seed: seed},
			func() error { return errors.New("x") })
		return *waits
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("lengths diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pause %d diverges for one seed: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 drew identical jitter sequences (suspicious)")
	}
}

// TestRetryZeroSeedStillJitters: the derived process-unique seed path also
// produces in-envelope pauses (two loops need not match each other).
func TestRetryZeroSeedStillJitters(t *testing.T) {
	waits := captureSleeps(t)
	Retry(nil, RetryConfig{Attempts: 4, Wait: 80 * time.Millisecond},
		func() error { return errors.New("x") })
	if len(*waits) != 3 {
		t.Fatalf("recorded %d pauses, want 3", len(*waits))
	}
	envelope := []time.Duration{80, 160, 320}
	for i, w := range *waits {
		top := envelope[i] * time.Millisecond
		if w < top/2 || w > top {
			t.Fatalf("pause %d = %v outside [%v, %v]", i, w, top/2, top)
		}
	}
}

// TestRetryCountsAttemptsInObs: every failed attempt lands in
// cluster_retry_attempts_total.
func TestRetryCountsAttemptsInObs(t *testing.T) {
	captureSleeps(t)
	read := func() int64 {
		for _, s := range obs.Snapshot() {
			if s.Name == "cluster_retry_attempts_total" {
				return s.Value
			}
		}
		return 0
	}
	before := read()
	Retry(nil, RetryConfig{Attempts: 5, Wait: time.Millisecond, Seed: 3},
		func() error { return errors.New("x") })
	if d := read() - before; d != 5 {
		t.Fatalf("cluster_retry_attempts_total moved by %d, want 5", d)
	}
}
