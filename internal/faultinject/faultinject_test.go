package faultinject

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"github.com/multiradio/chanalloc/internal/obs"
)

// pipePair returns the two ends of an in-memory connection.
func pipePair() (net.Conn, net.Conn) {
	return net.Pipe()
}

// TestBudgetCapsEvents: with an all-faults config and a budget of k, exactly
// k events fire and the injector then becomes a transparent wrapper.
func TestBudgetCapsEvents(t *testing.T) {
	in := New(Config{Seed: 1, Sever: 1.0, Budget: 3})
	for i := 0; i < 10; i++ {
		a, b := pipePair()
		go io.Copy(io.Discard, b)
		wrapped := in.Conn(a)
		wrapped.Write([]byte("x"))
		a.Close()
		b.Close()
	}
	if got := in.Spent(); got != 3 {
		t.Fatalf("Spent() = %d, want 3 (the budget)", got)
	}
	// Past the budget, writes pass through untouched.
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	go func() {
		buf := make([]byte, 1)
		b.Read(buf)
	}()
	if _, err := in.Conn(a).Write([]byte("y")); err != nil {
		t.Fatalf("post-budget write failed: %v", err)
	}
}

// TestSeverIsSticky: once severed, every subsequent op fails with the
// non-temporary net.Error and the underlying conn is closed.
func TestSeverIsSticky(t *testing.T) {
	in := New(Config{Seed: 7, Sever: 1.0, Budget: 1})
	a, b := pipePair()
	defer b.Close()
	wrapped := in.Conn(a)
	_, err := wrapped.Write([]byte("x"))
	if err == nil {
		t.Fatal("sever did not fire at p=1")
	}
	var ne net.Error
	if !errors.As(err, &ne) || ne.Timeout() {
		t.Fatalf("sever error %v is not a non-timeout net.Error", err)
	}
	// Sticky: fails again even though the budget is exhausted.
	if _, err := wrapped.Read(make([]byte, 1)); err == nil {
		t.Fatal("read on a severed conn succeeded")
	}
	// The underlying conn really closed.
	if _, err := a.Write([]byte("y")); err == nil {
		t.Fatal("underlying conn still open after sever")
	}
}

// TestDropAccept: at p=1 with budget n, the first n accepted connections are
// closed at birth and the accept loop keeps going; connection n+1 survives.
func TestDropAccept(t *testing.T) {
	in := New(Config{Seed: 3, DropAccept: 1.0, Budget: 2})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	wrapped := in.Listener(lis)

	accepted := make(chan net.Conn, 1)
	acceptErr := make(chan error, 1)
	go func() {
		c, err := wrapped.Accept()
		if err != nil {
			acceptErr <- err
			return
		}
		accepted <- c
	}()
	// Dial three times: the first two are dropped (Accept never returns
	// them), the third survives.
	for i := 0; i < 3; i++ {
		c, err := net.Dial("tcp", lis.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
	}
	select {
	case c := <-accepted:
		c.Close()
	case err := <-acceptErr:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("accept never surfaced the surviving connection")
	}
	if got := in.Spent(); got != 2 {
		t.Fatalf("Spent() = %d, want 2 drops", got)
	}
}

// TestDelayBounded: injected delays land in (0, MaxDelay] and the operation
// still succeeds.
func TestDelayBounded(t *testing.T) {
	const maxDelay = 5 * time.Millisecond
	in := New(Config{Seed: 9, Delay: 1.0, MaxDelay: maxDelay, Budget: 4})
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	go io.Copy(io.Discard, b)
	wrapped := in.Conn(a)
	for i := 0; i < 4; i++ {
		start := time.Now()
		if _, err := wrapped.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
		if elapsed := time.Since(start); elapsed > maxDelay+100*time.Millisecond {
			t.Fatalf("write %d stalled %v, max injected delay is %v", i, elapsed, maxDelay)
		}
	}
	if in.Spent() != 4 {
		t.Fatalf("Spent() = %d, want 4 delays", in.Spent())
	}
}

// TestSeededDeterminism: two injectors with one seed make identical
// decisions over an identical opportunity sequence.
func TestSeededDeterminism(t *testing.T) {
	decide := func(seed uint64) []bool {
		in := New(Config{Seed: seed, Sever: 0.5})
		out := make([]bool, 64)
		for i := range out {
			fire, _ := in.roll(faultSever, in.cfg.Sever)
			out[i] = fire
		}
		return out
	}
	a, b := decide(11), decide(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverges for one seed", i)
		}
	}
	c := decide(12)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 11 and 12 produced identical schedules (suspicious)")
	}
}

// TestKillSchedule: seeded, length-n, within [min, max], and deterministic.
func TestKillSchedule(t *testing.T) {
	const n = 32
	min, max := 5*time.Millisecond, 50*time.Millisecond
	s1 := KillSchedule(77, n, min, max)
	s2 := KillSchedule(77, n, min, max)
	if len(s1) != n {
		t.Fatalf("len = %d, want %d", len(s1), n)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("delay %d diverges for one seed", i)
		}
		if s1[i] < min || s1[i] > max {
			t.Fatalf("delay %d = %v outside [%v, %v]", i, s1[i], min, max)
		}
	}
	// Reversed bounds are swapped, not an error; n<=0 is empty.
	if s := KillSchedule(1, 4, max, min); len(s) != 4 {
		t.Fatalf("reversed bounds: %v", s)
	}
	if s := KillSchedule(1, 0, min, max); s != nil {
		t.Fatalf("n=0 schedule: %v", s)
	}
}

// TestObsCounters: injected events land in faultinject_events_total and the
// per-kind counters, and CountKill reconciles external kills.
func TestObsCounters(t *testing.T) {
	before := obs.Snapshot()
	in := New(Config{Seed: 5, Sever: 1.0, Budget: 2})
	for i := 0; i < 2; i++ {
		a, b := pipePair()
		in.Conn(a).Write([]byte("x"))
		a.Close()
		b.Close()
	}
	CountKill()
	after := obs.Snapshot()
	get := func(s []obs.Sample, name string) int64 {
		for _, m := range s {
			if m.Name == name {
				return m.Value
			}
		}
		return 0
	}
	if d := get(after, "faultinject_events_total") - get(before, "faultinject_events_total"); d != 3 {
		t.Fatalf("events_total moved by %d, want 3 (2 severs + 1 kill)", d)
	}
	if d := get(after, "faultinject_severs_total") - get(before, "faultinject_severs_total"); d != 2 {
		t.Fatalf("severs_total moved by %d, want 2", d)
	}
	if d := get(after, "faultinject_kills_total") - get(before, "faultinject_kills_total"); d != 1 {
		t.Fatalf("kills_total moved by %d, want 1", d)
	}
}
