// Package faultinject is a seeded adversary for the engine's socket
// transports: an Injector wraps net.Listener / net.Conn and, on a schedule
// drawn from its own PRNG, drops fresh connections at accept, delays
// individual reads and writes, or severs live connections mid-frame. The
// discipline mirrors the adversarial-channel literature the repository
// reproduces (a budgeted adversary jamming a game): the adversary's power
// is bounded by an explicit event Budget, its choices are a pure function
// of the seed and the observed operation sequence, and the system under
// test must converge to byte-identical results anyway — the chaos
// conformance suite's whole assertion.
//
// Determinism caveat, stated honestly: which operation a fault lands on
// depends on goroutine interleaving, so two runs with one seed may injure
// different victims. What IS pinned is the fault mix and the budget — and
// the engine's contract makes the assertion schedule-independent: results
// must be byte-identical to the fault-free run for ANY in-budget schedule.
//
// Every injected event is counted in obs (faultinject_events_total and a
// per-kind breakdown), so a chaos run can assert that faults actually
// fired and reconcile them against Stats.Requeues and eviction counters.
package faultinject

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/multiradio/chanalloc/internal/des"
	"github.com/multiradio/chanalloc/internal/obs"
)

var (
	mEvents = obs.NewCounter("faultinject_events_total")
	mDrops  = obs.NewCounter("faultinject_drops_total")
	mDelays = obs.NewCounter("faultinject_delays_total")
	mSevers = obs.NewCounter("faultinject_severs_total")
	mKills  = obs.NewCounter("faultinject_kills_total")
)

// Config shapes an Injector's fault mix. All probabilities are per
// opportunity: DropAccept per accepted connection, Delay and Sever per
// individual Read/Write call. Zero values inject nothing of that kind.
type Config struct {
	// Seed drives every roll the injector makes.
	Seed uint64
	// DropAccept is the probability an accepted connection is closed
	// immediately, before the peer's first frame — a SYN that went nowhere.
	DropAccept float64
	// Delay is the probability a Read/Write stalls for a seeded duration
	// in (0, MaxDelay] before proceeding.
	Delay float64
	// MaxDelay bounds injected stalls (default 10ms when Delay > 0).
	MaxDelay time.Duration
	// Sever is the probability a Read/Write kills the whole connection
	// instead: the underlying transport is closed and the call fails.
	Sever float64
	// Budget caps TOTAL injected events (drops + delays + severs) across
	// the injector's lifetime; 0 means unlimited. A budgeted adversary is
	// what the chaos suite reasons about: past the budget the injector is
	// a transparent wrapper.
	Budget int
}

// Injector injects the configured fault mix into wrapped listeners and
// connections. Safe for concurrent use; one injector's budget is shared by
// everything it wraps.
type Injector struct {
	cfg Config

	mu    sync.Mutex
	rng   *des.RNG
	spent int
}

// New builds an Injector over the config's seed.
func New(cfg Config) *Injector {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 10 * time.Millisecond
	}
	return &Injector{cfg: cfg, rng: des.NewRNG(cfg.Seed)}
}

// Spent reports how many faults the injector has injected so far.
func (in *Injector) Spent() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.spent
}

// fault kind tags for the roll helper.
type faultKind int

const (
	faultDrop faultKind = iota
	faultDelay
	faultSever
)

// roll decides one opportunity: whether a fault of the given kind fires
// (consuming budget) and, for delays, how long. All randomness is drawn
// under the lock so the sequence is a function of the seed and the order
// opportunities arrive.
func (in *Injector) roll(kind faultKind, p float64) (fire bool, delay time.Duration) {
	if p <= 0 {
		return false, 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.Budget > 0 && in.spent >= in.cfg.Budget {
		return false, 0
	}
	if in.rng.Float64() >= p {
		return false, 0
	}
	in.spent++
	mEvents.Inc()
	switch kind {
	case faultDrop:
		mDrops.Inc()
	case faultDelay:
		mDelays.Inc()
		// Uniform in (0, MaxDelay]: never zero, so a "delay" is always
		// observable in principle.
		delay = time.Duration(in.rng.Uint64()%uint64(in.cfg.MaxDelay)) + 1
	case faultSever:
		mSevers.Inc()
	}
	return true, delay
}

// Listener wraps l: accepted connections are dropped at birth with
// probability DropAccept (closed immediately, the accept loop never sees
// them), and survivors are wrapped with Conn.
func (in *Injector) Listener(l net.Listener) net.Listener {
	return &faultListener{Listener: l, in: in}
}

type faultListener struct {
	net.Listener
	in *Injector
}

func (l *faultListener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if fire, _ := l.in.roll(faultDrop, l.in.cfg.DropAccept); fire {
			obs.Emit("faultinject", "drop-accept", 0, 0, 0)
			conn.Close()
			continue
		}
		return l.in.Conn(conn), nil
	}
}

// Conn wraps c with the injector's per-operation fault mix: each Read and
// Write may stall for a seeded delay or sever the connection outright.
func (in *Injector) Conn(c net.Conn) net.Conn {
	return &faultConn{Conn: c, in: in}
}

type faultConn struct {
	net.Conn
	in *Injector

	mu      sync.Mutex
	severed bool
}

// errSevered is returned from operations on a connection the injector
// killed; it satisfies net.Error as non-temporary so transports treat it
// exactly like a peer reset.
type errSevered struct{ op string }

func (e *errSevered) Error() string   { return fmt.Sprintf("faultinject: connection severed during %s", e.op) }
func (e *errSevered) Timeout() bool   { return false }
func (e *errSevered) Temporary() bool { return false }

// op runs the shared fault schedule around one Read/Write.
func (c *faultConn) op(name string) error {
	c.mu.Lock()
	severed := c.severed
	c.mu.Unlock()
	if severed {
		return &errSevered{op: name}
	}
	if fire, _ := c.in.roll(faultSever, c.in.cfg.Sever); fire {
		obs.Emit("faultinject", "sever", 0, 0, 0)
		c.mu.Lock()
		c.severed = true
		c.mu.Unlock()
		c.Conn.Close()
		return &errSevered{op: name}
	}
	if fire, d := c.in.roll(faultDelay, c.in.cfg.Delay); fire {
		obs.Emit("faultinject", "delay", int64(d), 0, 0)
		time.Sleep(d)
	}
	return nil
}

func (c *faultConn) Read(b []byte) (int, error) {
	if err := c.op("read"); err != nil {
		return 0, err
	}
	return c.Conn.Read(b)
}

func (c *faultConn) Write(b []byte) (int, error) {
	if err := c.op("write"); err != nil {
		return 0, err
	}
	return c.Conn.Write(b)
}

// KillSchedule derives n seeded delays in [min, max] — the chaos harness's
// schedule for killing workers (or the coordinator): sleep delays[i], kill
// victim i, restart, repeat. Kills executed off this schedule should be
// recorded with CountKill so faultinject_kills_total reconciles.
func KillSchedule(seed uint64, n int, min, max time.Duration) []time.Duration {
	if n <= 0 {
		return nil
	}
	if max < min {
		min, max = max, min
	}
	rng := des.NewRNG(seed ^ 0xdead10cc)
	out := make([]time.Duration, n)
	span := uint64(max - min + 1)
	for i := range out {
		out[i] = min + time.Duration(rng.Uint64()%span)
	}
	return out
}

// CountKill records one externally-executed kill (a worker stop, a
// coordinator shutdown) in the obs counters.
func CountKill() {
	mKills.Inc()
	mEvents.Inc()
	obs.Emit("faultinject", "kill", 0, 0, 0)
}
