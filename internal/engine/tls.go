package engine

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"fmt"
	"math/big"
	"net"
	"os"
	"time"
)

// TLS on the engine's socket paths. The protocol is transport-agnostic
// newline-delimited JSON; TLS slots in UNDER the framing, so every frame
// byte — hello, register, job, result, heartbeat — is identical on plain
// TCP, unix sockets and TLS connections (the conformance suite runs each
// backend both ways to pin it). Coordinator and worker roles map onto TLS
// roles by who LISTENS, not by who coordinates: a socket worker listens
// (serves the cert) and the coordinator dials (verifies it); a cluster
// coordinator listens and the joining workers dial.
//
// Configuration mirrors the flag surface of the binaries:
//
//	listeners  -tls-cert/-tls-key  →  ServerTLSConfig
//	dialers    -tls-ca             →  ClientTLSConfig (custom roots)
//	           -tls-skip-verify    →  ClientTLSConfig (tests; still encrypts)
//
// A plain dialer hitting a TLS listener (or the reverse) fails the very
// first exchange — the hello/register reply never parses — so skew is loud
// at connect time, like protocol-version skew.

// ServerTLSConfig loads a listener's certificate/key pair. Both paths must
// be set together: a cert without a key (or the reverse) is a configuration
// error worth dying loudly for, not a silent fall-back to plaintext.
func ServerTLSConfig(certFile, keyFile string) (*tls.Config, error) {
	if certFile == "" || keyFile == "" {
		return nil, fmt.Errorf("engine: -tls-cert and -tls-key must be set together (got cert %q, key %q)", certFile, keyFile)
	}
	cert, err := tls.LoadX509KeyPair(certFile, keyFile)
	if err != nil {
		return nil, fmt.Errorf("engine: loading TLS key pair: %w", err)
	}
	return &tls.Config{
		Certificates: []tls.Certificate{cert},
		MinVersion:   tls.VersionTLS12,
	}, nil
}

// ClientTLSConfig builds a dialer's TLS configuration. caFile, when
// non-empty, replaces the system roots with the given PEM bundle — the
// normal shape for a cluster running its own CA or self-signed certs.
// skipVerify disables certificate verification entirely (the connection is
// still encrypted); it exists for tests and should never cross a real
// network.
func ClientTLSConfig(caFile string, skipVerify bool) (*tls.Config, error) {
	cfg := &tls.Config{MinVersion: tls.VersionTLS12}
	if skipVerify {
		cfg.InsecureSkipVerify = true
		return cfg, nil
	}
	if caFile != "" {
		pemBytes, err := os.ReadFile(caFile)
		if err != nil {
			return nil, fmt.Errorf("engine: reading TLS CA bundle: %w", err)
		}
		pool := x509.NewCertPool()
		if !pool.AppendCertsFromPEM(pemBytes) {
			return nil, fmt.Errorf("engine: no certificates found in CA bundle %s", caFile)
		}
		cfg.RootCAs = pool
	}
	return cfg, nil
}

// tlsClientConn wraps an established connection in a TLS client session and
// runs the handshake eagerly (bounded by timeout) so certificate problems —
// unknown authority, expired cert, a plain listener answering with
// non-TLS bytes — surface as dial-time errors with the address attached,
// not as mysterious decode failures mid-protocol. The config is cloned per
// connection so a shared config can serve many addresses: ServerName
// defaults to the dialed host when the caller left it (and verification)
// unset; unix-socket dials have no host, so certificates for them must
// carry a name the caller pins via cfg.ServerName, or use skip-verify.
func tlsClientConn(conn net.Conn, cfg *tls.Config, address string, timeout time.Duration) (net.Conn, error) {
	c := cfg.Clone()
	if c.ServerName == "" && !c.InsecureSkipVerify {
		if host, _, err := net.SplitHostPort(address); err == nil {
			c.ServerName = host
		}
	}
	tc := tls.Client(conn, c)
	if timeout > 0 {
		tc.SetDeadline(time.Now().Add(timeout))
	}
	if err := tc.Handshake(); err != nil {
		tc.Close()
		return nil, fmt.Errorf("TLS handshake with %s: %w (is the listener serving TLS with a certificate this dialer trusts?)", address, err)
	}
	tc.SetDeadline(time.Time{})
	return tc, nil
}

// dialWorkerConn dials a (network, address) pair and, when tlsCfg is
// non-nil, layers the TLS client session on top. Shared by the Socket
// backend's peer dial and the cluster worker's join dial.
func dialWorkerConn(network, address string, timeout time.Duration, tlsCfg *tls.Config) (net.Conn, error) {
	conn, err := net.DialTimeout(network, address, timeout)
	if err != nil {
		return nil, fmt.Errorf("dialing: %w", err)
	}
	if tlsCfg == nil {
		return conn, nil
	}
	tc, err := tlsClientConn(conn, tlsCfg, address, timeout)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return tc, nil
}

// GenerateSelfSignedCert mints a fresh ECDSA P-256 self-signed certificate
// for the given hosts (DNS names or IP literals) valid over [notBefore,
// notAfter], returned as PEM cert and key blocks. It backs cmd/gencert and
// the TLS test/CI smoke paths; production clusters should bring real
// certificates instead.
func GenerateSelfSignedCert(hosts []string, notBefore, notAfter time.Time) (certPEM, keyPEM []byte, err error) {
	if len(hosts) == 0 {
		return nil, nil, fmt.Errorf("engine: self-signed cert needs at least one host")
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("engine: generating key: %w", err)
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return nil, nil, fmt.Errorf("engine: generating serial: %w", err)
	}
	tmpl := x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{Organization: []string{"chanalloc dev"}, CommonName: hosts[0]},
		NotBefore:             notBefore,
		NotAfter:              notAfter,
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
		BasicConstraintsValid: true,
		IsCA:                  true, // lets the cert double as its own -tls-ca root
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
		} else {
			tmpl.DNSNames = append(tmpl.DNSNames, h)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, nil, fmt.Errorf("engine: creating certificate: %w", err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		return nil, nil, fmt.Errorf("engine: marshalling key: %w", err)
	}
	certPEM = pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
	keyPEM = pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER})
	return certPEM, keyPEM, nil
}
