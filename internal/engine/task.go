package engine

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/multiradio/chanalloc/internal/des"
)

// TaskFunc runs one job of a named task. params is the batch-wide parameter
// blob (the same bytes for every job), job is the index within the batch and
// rng is the job's private PRNG stream seeded by JobSeed(root, job). The
// returned value must be JSON-serialisable: it crosses process boundaries
// under the multi-process backend.
//
// A TaskFunc must derive all of its randomness from rng and all of its
// inputs from (params, job) — that, and nothing else, is what makes a task
// batch produce byte-identical results on every backend.
type TaskFunc func(params json.RawMessage, job int, rng *des.RNG) (any, error)

var (
	taskMu sync.RWMutex
	tasks  = map[string]TaskFunc{}
)

// RegisterTask adds a named task to the process-global task registry. Tasks
// are how work crosses the Backend interface: closures cannot be shipped to
// a worker subprocess, so a batch names a registered task and sends its
// parameters as JSON. The same task must be registered in the coordinator
// and in the worker binary (with re-exec'd workers they are the same
// program, so one registration site covers both). Names must be non-empty
// and unique; a '/'-separated prefix ("sweep/experiment") is conventional.
func RegisterTask(name string, fn TaskFunc) error {
	if strings.TrimSpace(name) == "" {
		return fmt.Errorf("engine: empty task name")
	}
	if fn == nil {
		return fmt.Errorf("engine: task %q has no function", name)
	}
	taskMu.Lock()
	defer taskMu.Unlock()
	if _, dup := tasks[name]; dup {
		return fmt.Errorf("engine: task %q already registered", name)
	}
	tasks[name] = fn
	return nil
}

// MustRegisterTask is RegisterTask for program-init registrations, where a
// failure is a programming error.
func MustRegisterTask(name string, fn TaskFunc) {
	if err := RegisterTask(name, fn); err != nil {
		panic(err)
	}
}

// TaskNames lists the registered tasks in sorted order (diagnostics and
// worker handshake checks).
func TaskNames() []string {
	taskMu.RLock()
	defer taskMu.RUnlock()
	out := make([]string, 0, len(tasks))
	for name := range tasks {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// taskByName resolves a registered task.
func taskByName(name string) (TaskFunc, bool) {
	taskMu.RLock()
	defer taskMu.RUnlock()
	fn, ok := tasks[name]
	return fn, ok
}
