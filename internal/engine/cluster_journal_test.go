package engine

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/multiradio/chanalloc/internal/des"
	"github.com/multiradio/chanalloc/internal/journal"
	"github.com/multiradio/chanalloc/internal/obs"
)

// journalExecs counts actual task executions — the proof that resumed jobs
// are filled from the journal, never re-run.
var journalExecs atomic.Int64

// stuckHold, while true, makes chaos/stuck jobs block (bounded) — the
// crash-loop join-wait test's way of keeping jobs unfinishable.
var stuckHold atomic.Bool

func init() {
	MustRegisterTask("journal/count", func(params json.RawMessage, job int, rng *des.RNG) (any, error) {
		journalExecs.Add(1)
		return confResult{Job: job, Acc: rng.Uint64()}, nil
	})
	// chaos/slow stretches batches so kills land mid-flight; the sleep never
	// shows in the result.
	MustRegisterTask("chaos/slow", func(params json.RawMessage, job int, rng *des.RNG) (any, error) {
		time.Sleep(2 * time.Millisecond)
		return confResult{Job: job, Acc: rng.Uint64()*31 + uint64(job)}, nil
	})
	MustRegisterTask("chaos/stuck", func(params json.RawMessage, job int, rng *des.RNG) (any, error) {
		for i := 0; i < 6000 && stuckHold.Load(); i++ {
			time.Sleep(5 * time.Millisecond)
		}
		return confResult{Job: job}, nil
	})
}

// runWorkers starts n in-process JoinAndServe workers against addr and
// returns an idempotent stop function (also registered as cleanup).
func runWorkers(t *testing.T, addr string, n int, opts ...JoinOption) func() {
	t.Helper()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			JoinAndServe(addr, append([]JoinOption{
				WithJoinStop(stop), WithJoinRetryWait(5 * time.Millisecond),
			}, opts...)...)
		}()
	}
	var once sync.Once
	f := func() { once.Do(func() { close(stop); wg.Wait() }) }
	t.Cleanup(f)
	return f
}

// obsValue reads one counter from a snapshot (0 when absent).
func obsValue(s []obs.Sample, name string) int64 {
	for _, m := range s {
		if m.Name == name {
			return m.Value
		}
	}
	return 0
}

// TestClusterJournalFullResume: a journaled batch, then the same batch
// resumed against the finished journal with ZERO workers — every job fills
// from the checkpoint, byte-identical, without dispatching anything.
func TestClusterJournalFullResume(t *testing.T) {
	const n = 15
	params := []byte(`{"mul":31,"label":"jnl"}`)
	path := filepath.Join(t.TempDir(), "sweep.journal")

	before := obs.Snapshot()
	c1, err := NewCluster("127.0.0.1:0",
		WithClusterJournal(path), WithJoinWait(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	stop1 := runWorkers(t, c1.Addr(), 2)
	want, stats1, err := c1.RunTask("conformance/draw", params, n, Seed(5))
	if err != nil {
		t.Fatal(err)
	}
	if stats1.Resumed != 0 {
		t.Fatalf("fresh journal run resumed %d jobs", stats1.Resumed)
	}
	stop1()
	c1.Close()
	mid := obs.Snapshot()
	if d := obsValue(mid, "engine_journal_writes_total") - obsValue(before, "engine_journal_writes_total"); d != n {
		t.Fatalf("journal_writes_total moved by %d, want %d", d, n)
	}

	// Resume with NO workers: the journal alone must satisfy the batch.
	c2, err := NewCluster("127.0.0.1:0",
		WithClusterJournal(path), WithClusterResume(true), WithJoinWait(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, stats2, err := c2.RunTask("conformance/draw", params, n, Seed(5))
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Resumed != n || stats2.Workers != 0 {
		t.Fatalf("full resume: stats %+v, want Resumed=%d Workers=0", stats2, n)
	}
	for job := range want {
		if !bytes.Equal(want[job], got[job]) {
			t.Fatalf("job %d: %s (live) vs %s (resumed)", job, want[job], got[job])
		}
	}
	after := obs.Snapshot()
	if d := obsValue(after, "engine_resumed_jobs_total") - obsValue(mid, "engine_resumed_jobs_total"); d != n {
		t.Fatalf("resumed_jobs_total moved by %d, want %d", d, n)
	}
	if d := obsValue(after, "engine_journal_writes_total") - obsValue(mid, "engine_journal_writes_total"); d != 0 {
		t.Fatalf("full resume wrote %d journal entries, want 0", d)
	}
}

// TestClusterJournalResumeSkipsExecution: with a handcrafted journal holding
// half the batch, resume executes ONLY the other half — proven by a task
// execution counter — and fans in byte-identical to the in-process backend.
func TestClusterJournalResumeSkipsExecution(t *testing.T) {
	const n, root = 12, 9
	params := []byte(`{}`)
	want, _, err := NewInProcess().RunTask("journal/count", params, n, Seed(root))
	if err != nil {
		t.Fatal(err)
	}

	// Checkpoint the even jobs, exactly as a dead coordinator would have.
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := journal.Create(path, journal.Header{
		Task:      "journal/count",
		ParamsSHA: journal.ParamsDigest(params),
		Seed:      root,
		Jobs:      n,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	recovered := 0
	for job := 0; job < n; job += 2 {
		if err := j.Append(journal.Entry{Job: job, Value: want[job]}); err != nil {
			t.Fatal(err)
		}
		recovered++
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	c, err := NewCluster("127.0.0.1:0",
		WithClusterJournal(path), WithClusterResume(true), WithJoinWait(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	runWorkers(t, c.Addr(), 1)
	execsBefore := journalExecs.Load()
	got, stats, err := c.RunTask("journal/count", params, n, Seed(root))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed != recovered {
		t.Fatalf("Resumed = %d, want %d", stats.Resumed, recovered)
	}
	if execs := journalExecs.Load() - execsBefore; execs != int64(n-recovered) {
		t.Fatalf("resume executed %d jobs, want %d (recovered jobs must not re-run)", execs, n-recovered)
	}
	for job := range want {
		if !bytes.Equal(want[job], got[job]) {
			t.Fatalf("job %d: %s (inprocess) vs %s (resumed cluster)", job, want[job], got[job])
		}
	}
}

// TestClusterJournalMismatchFails: resuming a journal written for a
// different seed is refused loudly, before any dispatch.
func TestClusterJournalMismatchFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	params := []byte(`{"mul":3}`)
	c1, err := NewCluster("127.0.0.1:0", WithClusterJournal(path), WithJoinWait(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	runWorkers(t, c1.Addr(), 1)
	if _, _, err := c1.RunTask("conformance/draw", params, 4, Seed(1)); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	c2, err := NewCluster("127.0.0.1:0",
		WithClusterJournal(path), WithClusterResume(true), WithJoinWait(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	_, _, err = c2.RunTask("conformance/draw", params, 4, Seed(2))
	if err == nil || !strings.Contains(err.Error(), "identity mismatch") {
		t.Fatalf("seed-mismatched resume: %v, want identity mismatch", err)
	}
}

// TestClusterJournaledFailuresResume: failed jobs checkpoint too, and a full
// resume surfaces the identical lowest-index error without re-running.
func TestClusterJournaledFailuresResume(t *testing.T) {
	const want = "engine: job 3: job 3 boom"
	path := filepath.Join(t.TempDir(), "sweep.journal")
	c1, err := NewCluster("127.0.0.1:0", WithClusterJournal(path), WithJoinWait(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	runWorkers(t, c1.Addr(), 1)
	_, _, err = c1.RunTask("conformance/fail", []byte("{}"), 17, Seed(42))
	if err == nil || err.Error() != want {
		t.Fatalf("live run error %v, want %q", err, want)
	}
	c1.Close()

	c2, err := NewCluster("127.0.0.1:0",
		WithClusterJournal(path), WithClusterResume(true), WithJoinWait(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	_, stats, err := c2.RunTask("conformance/fail", []byte("{}"), 17, Seed(42))
	if err == nil || err.Error() != want {
		t.Fatalf("resumed error %v, want %q", err, want)
	}
	if stats.Resumed != 17 {
		t.Fatalf("Resumed = %d, want 17", stats.Resumed)
	}
}

// journalLines counts checkpoint entries currently on disk (header excluded).
func journalLines(t *testing.T, path string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0
		}
		t.Fatal(err)
	}
	return bytes.Count(data, []byte("\n")) - 1
}

// killResumeRoundTrip is the shared harness for the acceptance criterion: a
// journaled cluster batch killed mid-flight, then resumed by a fresh
// coordinator, fans in byte-identical to the uninterrupted baseline — under
// plain TCP and TLS alike.
func killResumeRoundTrip(t *testing.T, clusterOpts []ClusterOption, joinOpts []JoinOption) {
	const n, root = 40, 11
	params := []byte(`{"mul":7,"label":"kill"}`)
	want, _, err := NewInProcess().RunTask("chaos/slow", params, n, Seed(root))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sweep.journal")

	c1, err := NewCluster("127.0.0.1:0", append([]ClusterOption{
		WithClusterJournal(path), WithJoinWait(10 * time.Second),
	}, clusterOpts...)...)
	if err != nil {
		t.Fatal(err)
	}
	stop1 := runWorkers(t, c1.Addr(), 2, joinOpts...)
	// Kill the coordinator once a handful of jobs are checkpointed.
	go func() {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if data, err := os.ReadFile(path); err == nil &&
				bytes.Count(data, []byte("\n")) >= 6 {
				break
			}
			time.Sleep(time.Millisecond)
		}
		c1.Close()
	}()
	_, _, err = c1.RunTask("chaos/slow", params, n, Seed(root))
	if err == nil {
		t.Fatal("killed coordinator still completed the batch (kill landed too late)")
	}
	stop1()
	c1.Close()
	done := journalLines(t, path)
	if done < 1 || done >= n {
		t.Fatalf("journal holds %d entries after the kill, want mid-batch", done)
	}

	before := obs.Snapshot()
	c2, err := NewCluster("127.0.0.1:0", append([]ClusterOption{
		WithClusterJournal(path), WithClusterResume(true), WithJoinWait(10 * time.Second),
	}, clusterOpts...)...)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	runWorkers(t, c2.Addr(), 2, joinOpts...)
	got, stats, err := c2.RunTask("chaos/slow", params, n, Seed(root))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed < 1 || stats.Resumed >= n {
		t.Fatalf("Resumed = %d, want a mid-batch count", stats.Resumed)
	}
	for job := range want {
		if !bytes.Equal(want[job], got[job]) {
			t.Fatalf("job %d: %s (baseline) vs %s (kill+resume)", job, want[job], got[job])
		}
	}
	// Reconciliation: what resumed plus what the second run wrote is the batch.
	after := obs.Snapshot()
	resumed := obsValue(after, "engine_resumed_jobs_total") - obsValue(before, "engine_resumed_jobs_total")
	writes := obsValue(after, "engine_journal_writes_total") - obsValue(before, "engine_journal_writes_total")
	if resumed != int64(stats.Resumed) || resumed+writes != n {
		t.Fatalf("obs reconciliation: resumed=%d writes=%d, want resumed=%d and sum=%d",
			resumed, writes, stats.Resumed, n)
	}
}

// TestClusterKillResumeByteIdentical: the plain-TCP acceptance criterion.
func TestClusterKillResumeByteIdentical(t *testing.T) {
	killResumeRoundTrip(t, nil, nil)
}

// TestClusterKillResumeByteIdenticalTLS: the same criterion with TLS on the
// coordinator listener and every worker dial.
func TestClusterKillResumeByteIdenticalTLS(t *testing.T) {
	srvCfg, cliCfg := testTLSPair(t)
	killResumeRoundTrip(t,
		[]ClusterOption{WithClusterTLS(srvCfg)},
		[]JoinOption{WithJoinTLS(cliCfg)})
}

// TestClusterJoinWaitBoundedUnderFlap: a worker stuck in a join/crash loop
// (registers, holds a job, dies before finishing anything) must NOT renew
// the join-wait forever — the batch fails once the accumulated workerless
// time burns the budget.
func TestClusterJoinWaitBoundedUnderFlap(t *testing.T) {
	stuckHold.Store(true)
	defer stuckHold.Store(false)
	c, err := NewCluster("127.0.0.1:0",
		WithJoinWait(200*time.Millisecond), WithClusterHeartbeat(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The flapper: join, live 20ms without completing anything, die, rejoin.
	quit := make(chan struct{})
	flapDone := make(chan struct{})
	go func() {
		defer close(flapDone)
		for {
			select {
			case <-quit:
				return
			default:
			}
			stopW := make(chan struct{})
			sessionDone := make(chan struct{})
			go func() {
				defer close(sessionDone)
				JoinAndServe(c.Addr(), WithJoinStop(stopW), WithJoinRetryWait(5*time.Millisecond))
			}()
			time.Sleep(20 * time.Millisecond)
			close(stopW)
			<-sessionDone
		}
	}()
	// Release stuck jobs BEFORE waiting the flapper out, or its last session
	// sits in a 30s task execution the closed conn cannot interrupt.
	defer func() { stuckHold.Store(false); close(quit); <-flapDone }()

	start := time.Now()
	errCh := make(chan error, 1)
	go func() {
		_, _, err := c.RunTask("chaos/stuck", []byte("{}"), 4, Seed(1))
		errCh <- err
	}()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("flapping worker somehow completed stuck jobs")
		}
		if !strings.Contains(err.Error(), "cluster backend") {
			t.Fatalf("unexpected failure: %v", err)
		}
		t.Logf("bounded failure after %v: %v", time.Since(start), err)
	case <-time.After(30 * time.Second):
		t.Fatal("join-wait never expired under a crash-looping worker — the flap is renewing the clock")
	}
}
