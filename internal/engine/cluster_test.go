package engine

import (
	"bytes"
	"encoding/json"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/multiradio/chanalloc/internal/des"
)

func init() {
	// A deliberately slow task so mid-batch membership changes land while
	// jobs are still streaming (init keeps registration -count-idempotent).
	MustRegisterTask("conformance/slow20ms", func(params json.RawMessage, job int, rng *des.RNG) (any, error) {
		time.Sleep(20 * time.Millisecond)
		return confResult{Job: job, Acc: rng.Uint64()}, nil
	})
}

// joinWorker runs one JoinAndServe worker against the coordinator for the
// duration of the test.
func joinWorker(t *testing.T, addr string, opts ...JoinOption) {
	t.Helper()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := JoinAndServe(addr, append([]JoinOption{
			WithJoinStop(stop), WithJoinRetryWait(10 * time.Millisecond),
		}, opts...)...); err != nil {
			t.Errorf("worker join: %v", err)
		}
	}()
	t.Cleanup(func() { close(stop); <-done })
}

// inprocessWant runs the reference batch on the in-process pool.
func inprocessWant(t *testing.T, n int, seed uint64) ([]json.RawMessage, []byte) {
	t.Helper()
	params, err := json.Marshal(confParams{Mul: 31, Label: "conf"})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := NewInProcess().RunTask("conformance/draw", params, n, Seed(seed), Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	return want, params
}

// TestClusterWorkerJoinsAfterDispatchStarts is the membership headline: a
// batch dispatched with ZERO workers waits, a worker that joins after
// dispatch starts receives the jobs, and the results are byte-identical to
// the in-process pool.
func TestClusterWorkerJoinsAfterDispatchStarts(t *testing.T) {
	const n = 23
	want, params := inprocessWant(t, n, 42)
	c, err := NewCluster("127.0.0.1:0", WithJoinWait(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	type outcome struct {
		got   []json.RawMessage
		stats Stats
		err   error
	}
	res := make(chan outcome, 1)
	go func() {
		got, stats, err := c.RunTask("conformance/draw", params, n, Seed(42))
		res <- outcome{got, stats, err}
	}()
	// Let dispatch start against an empty membership, then join.
	time.Sleep(100 * time.Millisecond)
	select {
	case out := <-res:
		t.Fatalf("batch finished with no workers: %+v", out)
	default:
	}
	joinWorker(t, c.Addr())

	out := <-res
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.stats.Workers != 1 {
		t.Fatalf("stats %+v: the late joiner should be the batch's one worker", out.stats)
	}
	for job := range want {
		if !bytes.Equal(want[job], out.got[job]) {
			t.Fatalf("job %d differs:\n%s\nvs\n%s", job, want[job], out.got[job])
		}
	}
}

// TestClusterSecondWorkerJoinsMidBatch: a worker joining while a batch is
// already streaming gets a share of the remaining jobs.
func TestClusterSecondWorkerJoinsMidBatch(t *testing.T) {
	const n = 60
	want, _, err := NewInProcess().RunTask("conformance/slow20ms", []byte(`{}`), n, Seed(3), Workers(4))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster("127.0.0.1:0", WithClusterWindow(2), WithJoinWait(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	joinWorker(t, c.Addr())

	type outcome struct {
		got   []json.RawMessage
		stats Stats
		err   error
	}
	res := make(chan outcome, 1)
	go func() {
		got, stats, err := c.RunTask("conformance/slow20ms", []byte(`{}`), n, Seed(3))
		res <- outcome{got, stats, err}
	}()
	// ~60 jobs × 20ms on one worker ≈ 1.2s; joining at 150ms leaves the
	// second worker plenty to serve.
	time.Sleep(150 * time.Millisecond)
	joinWorker(t, c.Addr())

	out := <-res
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.stats.Workers != 2 {
		t.Fatalf("stats %+v: the mid-batch joiner should have served", out.stats)
	}
	for job := range want {
		if !bytes.Equal(want[job], out.got[job]) {
			t.Fatalf("job %d differs after mid-batch join", job)
		}
	}
}

// startSilentClusterWorker registers a worker that accepts jobs but never
// replies and never heartbeats — the shape of a wedged or partitioned host.
// It returns a counter of the job frames it swallowed.
func startSilentClusterWorker(t *testing.T, addr string) *atomic.Int64 {
	t.Helper()
	var swallowed atomic.Int64
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	enc, dec := json.NewEncoder(conn), json.NewDecoder(conn)
	if _, err := registerHandshake(enc, dec, ""); err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			var m wireMsg
			if err := dec.Decode(&m); err != nil {
				return
			}
			if m.Type == wireJob {
				swallowed.Add(1)
			}
		}
	}()
	return &swallowed
}

// TestClusterHeartbeatEvictionRequeues is the liveness contract: a worker
// that goes silent mid-window is evicted after the heartbeat deadline, its
// in-flight jobs are requeued to the survivor, and the batch's results are
// byte-identical to the in-process pool.
func TestClusterHeartbeatEvictionRequeues(t *testing.T) {
	const n = 23
	want, params := inprocessWant(t, n, 42)
	c, err := NewCluster("127.0.0.1:0",
		WithClusterWindow(4),
		WithClusterHeartbeat(25*time.Millisecond),
		WithClusterEvictAfter(100*time.Millisecond),
		WithJoinWait(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	swallowed := startSilentClusterWorker(t, c.Addr())
	// Let the silent worker register first so it is guaranteed a window of
	// jobs before the healthy worker drains the queue.
	deadline := time.Now().Add(5 * time.Second)
	for c.reg.Len() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	joinWorker(t, c.Addr())

	got, stats, err := c.RunTask("conformance/draw", params, n, Seed(42))
	if err != nil {
		t.Fatal(err)
	}
	if swallowed.Load() < 1 {
		t.Fatal("the silent worker never received a job; the test exercised nothing")
	}
	if stats.Requeues < 1 {
		t.Fatalf("stats %+v: eviction should have requeued the silent worker's window", stats)
	}
	for job := range want {
		if !bytes.Equal(want[job], got[job]) {
			t.Fatalf("job %d differs after eviction requeue:\n%s\nvs\n%s", job, want[job], got[job])
		}
	}
	// The silent worker must be out of the membership.
	deadline = time.Now().Add(5 * time.Second)
	for c.reg.Len() > 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := c.reg.Len(); got != 1 {
		t.Fatalf("membership still has %d entries, want the survivor only", got)
	}
}

// startDyingClusterWorker registers a worker that serves `serve` jobs
// correctly, then drops the connection with the rest of its window in
// flight — the killed-mid-window shape.
func startDyingClusterWorker(t *testing.T, addr string, serve int) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	enc, dec := json.NewEncoder(conn), json.NewDecoder(conn)
	if _, err := registerHandshake(enc, dec, ""); err != nil {
		t.Fatal(err)
	}
	go func() {
		defer conn.Close()
		served := 0
		for {
			var m wireMsg
			if err := dec.Decode(&m); err != nil {
				return
			}
			if m.Type != wireJob {
				continue
			}
			if served >= serve {
				return // die with the rest of the window in flight
			}
			served++
			if err := enc.Encode(executeJob(&m)); err != nil {
				return
			}
		}
	}()
}

// TestClusterKilledPeerMidWindowRequeues pins the streaming-dispatch
// fault-tolerance contract: a peer killed with a full window of jobs in
// flight has every one of them requeued, and the surviving peer completes
// the batch byte-identically.
func TestClusterKilledPeerMidWindowRequeues(t *testing.T) {
	const n = 23
	want, params := inprocessWant(t, n, 42)
	c, err := NewCluster("127.0.0.1:0",
		WithClusterWindow(8), WithJoinWait(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	startDyingClusterWorker(t, c.Addr(), 1) // serve one job, die mid-window
	deadline := time.Now().Add(5 * time.Second)
	for c.reg.Len() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	joinWorker(t, c.Addr())

	got, stats, err := c.RunTask("conformance/draw", params, n, Seed(42))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requeues < 1 {
		t.Fatalf("stats %+v: the killed peer's in-flight window should have been requeued", stats)
	}
	for job := range want {
		if !bytes.Equal(want[job], got[job]) {
			t.Fatalf("job %d differs after mid-window kill:\n%s\nvs\n%s", job, want[job], got[job])
		}
	}
}

// TestClusterJoinWaitTimesOut: a batch with no capable worker for the whole
// join-wait fails with a distinct cluster transport error, not a hang.
func TestClusterJoinWaitTimesOut(t *testing.T) {
	c, err := NewCluster("127.0.0.1:0", WithJoinWait(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	_, _, err = c.RunTask("conformance/draw", []byte(`{"mul":3}`), 5, Seed(1))
	if err == nil || !strings.Contains(err.Error(), "cluster backend") ||
		!strings.Contains(err.Error(), "unfinished") {
		t.Fatalf("err = %v, want the cluster transport error", err)
	}
}

// TestClusterAuthToken: matching tokens join and serve; a mismatch is a
// loud permanent rejection that does not retry.
func TestClusterAuthToken(t *testing.T) {
	const n = 9
	want, params := inprocessWant(t, n, 7)
	c, err := NewCluster("127.0.0.1:0",
		WithClusterAuthToken("s3cret"), WithJoinWait(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	// Wrong token: JoinAndServe must return the rejection immediately even
	// with an unlimited retry budget — the error is permanent.
	errCh := make(chan error, 1)
	go func() { errCh <- JoinAndServe(c.Addr(), WithJoinAuthToken("wrong")) }()
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "auth token mismatch") {
			t.Fatalf("err = %v, want the auth rejection", err)
		}
		if strings.Contains(err.Error(), "s3cret") {
			t.Fatalf("rejection leaks the token: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("a rejected worker must not keep retrying")
	}
	// Token-less worker against an authenticated coordinator: same verdict.
	go func() { errCh <- JoinAndServe(c.Addr()) }()
	if err := <-errCh; err == nil || !strings.Contains(err.Error(), "auth token mismatch") {
		t.Fatalf("err = %v, want the auth rejection for a token-less worker", err)
	}

	joinWorker(t, c.Addr(), WithJoinAuthToken("s3cret"))
	got, _, err := c.RunTask("conformance/draw", params, n, Seed(7))
	if err != nil {
		t.Fatal(err)
	}
	for job := range want {
		if !bytes.Equal(want[job], got[job]) {
			t.Fatalf("job %d differs under auth", job)
		}
	}
}

// TestJoinTruncatedReplyIsTransient: a coordinator dying mid-register-reply
// is transport trouble, not a verdict — the join loop must keep retrying
// (and so exhaust a bounded attempt budget) instead of giving up forever.
func TestJoinTruncatedReplyIsTransient(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				var m wireMsg
				if err := json.NewDecoder(conn).Decode(&m); err != nil {
					return
				}
				conn.Write([]byte(`{"type":"hel`)) // die mid-reply
			}(conn)
		}
	}()
	err = JoinAndServe(lis.Addr().String(),
		WithJoinAttempts(2), WithJoinRetryWait(time.Millisecond))
	if err == nil || !strings.Contains(err.Error(), "giving up after 2 attempts") {
		t.Fatalf("err = %v, want retry exhaustion — a truncated reply must not be permanent", err)
	}
}

// TestJoinStopInterruptsMutePeer: WithJoinStop must end the worker even
// while it is parked awaiting a register reply that never comes (something
// accepted the connection but speaks nothing).
func TestJoinStopInterruptsMutePeer(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			_ = conn // accept and stay mute; leak until the test ends
		}
	}()
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- JoinAndServe(lis.Addr().String(), WithJoinStop(stop)) }()
	time.Sleep(100 * time.Millisecond)
	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("stopped worker returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("JoinAndServe ignored stop while awaiting the register reply")
	}
}

// TestClusterWorkerRejoinsAfterCoordinatorRestart: the join loop outlives
// coordinators — a worker keeps serving after its coordinator is torn down
// and a new one binds the same address.
func TestClusterWorkerRejoinsAfterCoordinatorRestart(t *testing.T) {
	const n = 9
	want, params := inprocessWant(t, n, 11)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	c1 := NewClusterOn(lis, WithJoinWait(10*time.Second))
	joinWorker(t, addr)

	got, _, err := c1.RunTask("conformance/draw", params, n, Seed(11))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[0], want[0]) {
		t.Fatal("first coordinator's batch differs")
	}
	c1.Close()

	// Rebind the same address: the worker's retry loop finds the new
	// coordinator and registers again.
	lis2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewClusterOn(lis2, WithJoinWait(10*time.Second))
	t.Cleanup(func() { c2.Close() })
	got, _, err = c2.RunTask("conformance/draw", params, n, Seed(11))
	if err != nil {
		t.Fatal(err)
	}
	for job := range want {
		if !bytes.Equal(want[job], got[job]) {
			t.Fatalf("job %d differs after coordinator restart", job)
		}
	}
}

// TestClusterJobErrorsAreNotTransportErrors: a task that fails on some
// jobs surfaces Map's error contract through the cluster backend while the
// worker stays registered.
func TestClusterJobErrors(t *testing.T) {
	c, err := NewCluster("127.0.0.1:0", WithJoinWait(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	joinWorker(t, c.Addr())
	_, _, err = c.RunTask("conformance/fail", []byte(`{}`), 17, Seed(42))
	if err == nil || err.Error() != "engine: job 3: job 3 boom" {
		t.Fatalf("err = %v, want the pinned job-3 error", err)
	}
	if c.reg.Len() != 1 {
		t.Fatalf("membership %d after job errors, want the worker still registered", c.reg.Len())
	}
}

// TestClusterUnknownTask fails before any dispatch, like every backend.
func TestClusterUnknownTask(t *testing.T) {
	c, err := NewCluster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if _, _, err := c.RunTask("conformance/nope", nil, 3); err == nil ||
		!strings.Contains(err.Error(), "unknown task") {
		t.Fatalf("err = %v, want unknown-task", err)
	}
}

// TestClusterCloseWithSilentProbe pins the teardown guarantee against
// connections that never register: a port-scan-shaped client that dials
// and sends nothing must not pin Close — the coordinator tracks every live
// connection, registered or not, and severs them all.
func TestClusterCloseWithSilentProbe(t *testing.T) {
	c, err := NewCluster("127.0.0.1:0", WithClusterTeardown(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	probe, err := net.Dial("tcp", c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	// Give the accept loop time to hand the probe to an admit goroutine,
	// which then parks awaiting a register frame that never comes.
	time.Sleep(50 * time.Millisecond)
	done := make(chan error, 1)
	go func() { done <- c.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on the never-registering connection")
	}
}

// TestClusterUnixSocket: the whole join/register/dispatch path works over a
// unix socket address.
func TestClusterUnixSocket(t *testing.T) {
	const n = 9
	want, params := inprocessWant(t, n, 5)
	c, err := NewCluster("unix:"+t.TempDir()+"/coord.sock", WithJoinWait(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if !strings.HasPrefix(c.Addr(), "unix:") {
		t.Fatalf("Addr() = %q, want a unix: join address", c.Addr())
	}
	joinWorker(t, c.Addr())
	got, _, err := c.RunTask("conformance/draw", params, n, Seed(5))
	if err != nil {
		t.Fatal(err)
	}
	for job := range want {
		if !bytes.Equal(want[job], got[job]) {
			t.Fatalf("job %d differs over unix socket", job)
		}
	}
}

// TestSocketBackendAuthToken covers the dial-out direction of the auth
// satellite: Serve with a token accepts only matching coordinators.
func TestSocketBackendAuthToken(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); Serve(lis, WithServeAuthToken("s3cret")) }()
	t.Cleanup(func() { lis.Close(); <-done })

	params := []byte(`{"mul":3,"label":"auth"}`)
	want, _, err := NewInProcess().RunTask("conformance/draw", params, 3, Seed(2), Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	good := NewSocketWith([]string{lis.Addr().String()}, WithAuthToken("s3cret"), WithRedialWait(0))
	got, _, err := good.RunTask("conformance/draw", params, 3, Seed(2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[0], want[0]) {
		t.Fatal("authenticated socket batch differs")
	}
	bad := NewSocketWith([]string{lis.Addr().String()}, WithAuthToken("wrong"),
		WithRedialWait(0), WithRedials(0))
	if _, _, err := bad.RunTask("conformance/draw", params, 3, Seed(2)); err == nil ||
		!strings.Contains(err.Error(), "auth token mismatch") {
		t.Fatalf("err = %v, want the auth rejection", err)
	}
	tokenless := NewSocketWith([]string{lis.Addr().String()}, WithRedialWait(0), WithRedials(0))
	if _, _, err := tokenless.RunTask("conformance/draw", params, 3, Seed(2)); err == nil ||
		!strings.Contains(err.Error(), "auth token mismatch") {
		t.Fatalf("err = %v, want the auth rejection for a token-less coordinator", err)
	}
}
