package engine

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os/exec"
	"strings"
	"testing"
	"time"

	"github.com/multiradio/chanalloc/internal/des"
)

// framed is one end of an in-memory protocol connection.
type framed struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

// newTestPipes returns the client and server ends of a synchronous
// in-memory connection with JSON framing.
func newTestPipes(t *testing.T) (client, server *framed) {
	t.Helper()
	c, s := net.Pipe()
	t.Cleanup(func() { c.Close(); s.Close() })
	return &framed{c, json.NewEncoder(c), json.NewDecoder(c)},
		&framed{s, json.NewEncoder(s), json.NewDecoder(s)}
}

// startServe runs the real worker loop (Serve) on a loopback listener and
// returns the address a Socket backend dials.
func startServe(t *testing.T, network, address string) string {
	t.Helper()
	lis, err := net.Listen(network, address)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); Serve(lis) }()
	t.Cleanup(func() { lis.Close(); <-done })
	if network == "unix" {
		return "unix:" + lis.Addr().String()
	}
	return lis.Addr().String()
}

// startFlakyWorker simulates a worker that is killed mid-batch: it accepts
// one connection, completes the handshake, serves serveJobs jobs correctly,
// then drops the connection on the next job frame and stops listening — so
// a re-dial fails like a dead host's would.
func startFlakyWorker(t *testing.T, serveJobs int) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		defer lis.Close()
		enc, dec := json.NewEncoder(conn), json.NewDecoder(conn)
		if err := serverHandshake(enc, dec, ""); err != nil {
			return
		}
		for served := 0; ; served++ {
			var m wireMsg
			if err := dec.Decode(&m); err != nil {
				return
			}
			if served >= serveJobs {
				return // die with the job in flight
			}
			fn, ok := taskByName(m.Task)
			if !ok {
				return
			}
			out, err := fn(m.Params, m.Job, des.NewRNG(m.Seed))
			reply := wireMsg{Type: wireResult, Job: m.Job}
			if err != nil {
				reply.Error = err.Error()
			} else if value, merr := json.Marshal(out); merr != nil {
				reply.Error = merr.Error()
			} else {
				reply.Value = value
			}
			if err := enc.Encode(&reply); err != nil {
				return
			}
		}
	}()
	return lis.Addr().String()
}

// TestSocketKilledPeerRequeues is the fault-tolerance contract: a peer dying
// mid-job requeues the in-flight job, the surviving peer completes the
// batch, and the results are byte-identical to the in-process pool's.
func TestSocketKilledPeerRequeues(t *testing.T) {
	const n = 23
	params, err := json.Marshal(confParams{Mul: 31, Label: "conf"})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := NewInProcess().RunTask("conformance/draw", params, n, Seed(42), Workers(2))
	if err != nil {
		t.Fatal(err)
	}

	healthy := startServe(t, "tcp", "127.0.0.1:0")
	flaky := startFlakyWorker(t, 1) // serve one job, die holding the second
	backend := NewSocketWith([]string{healthy, flaky}, WithRedialWait(0))
	got, stats, err := backend.RunTask("conformance/draw", params, n, Seed(42))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requeues < 1 {
		t.Fatalf("stats %+v: the killed peer's in-flight job should have been requeued", stats)
	}
	for job := range want {
		if !bytes.Equal(want[job], got[job]) {
			t.Fatalf("job %d differs after requeue:\n%s\nvs\n%s", job, want[job], got[job])
		}
	}
}

// TestSocketSurplusPeerRescuesSmallBatch: with more peers than jobs, every
// configured peer stays available — if an unreachable address claims the
// only job, a surplus healthy peer picks up the requeue and the batch
// still completes (peers are dialed lazily, so the surplus costs nothing).
func TestSocketSurplusPeerRescuesSmallBatch(t *testing.T) {
	params := []byte(`{"mul":3,"label":"rescue"}`)
	want, _, err := NewInProcess().RunTask("conformance/draw", params, 1, Seed(9), Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	healthy := startServe(t, "tcp", "127.0.0.1:0")
	dead := "127.0.0.1:1" // nothing listens here
	backend := NewSocketWith([]string{dead, healthy}, WithRedialWait(0))
	got, _, err := backend.RunTask("conformance/draw", params, 1, Seed(9))
	if err != nil {
		t.Fatalf("the healthy surplus peer should rescue the batch: %v", err)
	}
	if !bytes.Equal(got[0], want[0]) {
		t.Fatalf("job 0 differs:\n%s\nvs\n%s", got[0], want[0])
	}
}

// TestSocketAllPeersDead: when every peer fails with jobs undispatched, a
// distinct transport error surfaces instead of partial results.
func TestSocketAllPeersDead(t *testing.T) {
	flaky := startFlakyWorker(t, 0)
	backend := NewSocketWith([]string{flaky}, WithRedialWait(0))
	_, _, err := backend.RunTask("conformance/draw", []byte(`{"mul":3}`), 5, Seed(1))
	if err == nil || !strings.Contains(err.Error(), "socket backend") ||
		!strings.Contains(err.Error(), "undispatched") {
		t.Fatalf("err = %v, want a socket-backend transport error", err)
	}
}

// TestSocketRejectsLegacyWorker: a worker running the pre-versioning loop
// (ServeWorker straight off the connection, no handshake) must fail the
// batch loudly at connect time.
func TestSocketRejectsLegacyWorker(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				ServeWorker(conn, conn) // legacy: no handshake
			}(conn)
		}
	}()
	backend := NewSocketWith([]string{lis.Addr().String()}, WithRedialWait(0))
	_, _, err = backend.RunTask("conformance/draw", []byte(`{"mul":3}`), 3, Seed(1))
	if err == nil || !strings.Contains(err.Error(), "handshake") {
		t.Fatalf("err = %v, want a loud handshake failure", err)
	}
}

// TestSocketNoAddresses: constructing a batch with no peers is a
// configuration error, caught before any work is attempted.
func TestSocketNoAddresses(t *testing.T) {
	if _, _, err := NewSocket().RunTask("conformance/draw", nil, 3); err == nil ||
		!strings.Contains(err.Error(), "no worker addresses") {
		t.Fatalf("err = %v, want a no-addresses error", err)
	}
}

// TestSocketUnknownTaskRemote: the coordinator knows the task but the
// remote registry does not — version/build skew that must fail loudly. The
// remote is faked by a handshake server whose reply rejects the task.
func TestSocketUnknownTaskRemote(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		enc, dec := json.NewEncoder(conn), json.NewDecoder(conn)
		var m wireMsg
		if err := dec.Decode(&m); err != nil {
			return
		}
		enc.Encode(&wireMsg{Type: wireHello, Version: ProtocolVersion,
			Error: fmt.Sprintf("unknown task %q (registered: [])", m.Task)})
	}()
	backend := NewSocketWith([]string{lis.Addr().String()}, WithRedialWait(0), WithRedials(0))
	_, _, err = backend.RunTask("conformance/draw", []byte(`{"mul":3}`), 2, Seed(1))
	if err == nil || !strings.Contains(err.Error(), "unknown task") {
		t.Fatalf("err = %v, want the remote unknown-task rejection", err)
	}
}

// TestShardShutdownKillsHungWorker pins the kill-after-timeout escalation:
// a worker that ignores the job stream's EOF is killed once the teardown
// grace expires instead of blocking the coordinator on cmd.Wait forever.
func TestShardShutdownKillsHungWorker(t *testing.T) {
	p := NewProcess(1,
		WithWorkerCommand(func() *exec.Cmd { return exec.Command("sleep", "60") }),
		WithTeardownTimeout(200*time.Millisecond))
	sh, err := p.start()
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = sh.shutdown()
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("shutdown took %v, the grace escalation did not fire", elapsed)
	}
	if err == nil || !strings.Contains(err.Error(), "killed") {
		t.Fatalf("err = %v, want a killed-after-grace report", err)
	}
}

// TestReapEscalation pins the shared teardown helper directly.
func TestReapEscalation(t *testing.T) {
	t.Run("prompt wait skips kill", func(t *testing.T) {
		killed := false
		err := reap(time.Second,
			func() error { return nil },
			func() error { killed = true; return nil })
		if err != nil || killed {
			t.Fatalf("err=%v killed=%v, want clean prompt teardown", err, killed)
		}
	})
	t.Run("hung wait is killed", func(t *testing.T) {
		unblock := make(chan struct{})
		err := reap(20*time.Millisecond,
			func() error { <-unblock; return errors.New("interrupted") },
			func() error { close(unblock); return nil })
		if err == nil || !strings.Contains(err.Error(), "killed") {
			t.Fatalf("err = %v, want killed-after-grace", err)
		}
	})
}
