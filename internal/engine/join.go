package engine

import (
	"crypto/tls"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"github.com/multiradio/chanalloc/internal/cluster"
)

// joinConfig carries the options of JoinAndServe.
type joinConfig struct {
	token       string
	attempts    int
	retryWait   time.Duration
	backoffSeed uint64
	dialTimeout time.Duration
	heartbeat   time.Duration
	stop        <-chan struct{}
	tlsCfg      *tls.Config
	logf        func(format string, args ...any)
}

// JoinOption configures JoinAndServe.
type JoinOption func(*joinConfig)

// WithJoinAuthToken sets the shared secret presented at registration; it
// must match the coordinator's WithClusterAuthToken / -auth-token or the
// join is rejected loudly.
func WithJoinAuthToken(token string) JoinOption {
	return func(c *joinConfig) { c.token = token }
}

// WithJoinAttempts bounds CONSECUTIVE failed join attempts before
// JoinAndServe gives up (default 0: retry forever — a worker outlives the
// coordinators it serves). A completed session resets the budget.
func WithJoinAttempts(n int) JoinOption {
	return func(c *joinConfig) { c.attempts = n }
}

// WithJoinRetryWait sets the backoff after the first failed attempt; it
// doubles per consecutive failure up to 10× (default 200ms).
func WithJoinRetryWait(d time.Duration) JoinOption {
	return func(c *joinConfig) { c.retryWait = d }
}

// WithJoinStop makes JoinAndServe return (nil) when the channel closes —
// the test-and-embedder hook for shutting a worker down.
func WithJoinStop(stop <-chan struct{}) JoinOption {
	return func(c *joinConfig) { c.stop = stop }
}

// WithJoinTLS layers a TLS client session under the register/job protocol:
// the join dial handshakes with the given config (see ClientTLSConfig)
// before the register frame is sent. The coordinator must be listening with
// the matching WithClusterTLS / -tls-cert (default: plain connections).
func WithJoinTLS(cfg *tls.Config) JoinOption {
	return func(c *joinConfig) { c.tlsCfg = cfg }
}

// WithJoinBackoffSeed seeds the retry loop's backoff jitter so tests can
// pin the exact wait sequence (default 0: a process-unique seed, so a fleet
// of workers restarted together spreads its redials instead of thundering
// back in lock-step).
func WithJoinBackoffSeed(seed uint64) JoinOption {
	return func(c *joinConfig) { c.backoffSeed = seed }
}

// WithJoinDialTimeout bounds each connection attempt (default 10s).
func WithJoinDialTimeout(d time.Duration) JoinOption {
	return func(c *joinConfig) {
		if d > 0 {
			c.dialTimeout = d
		}
	}
}

// joinLogf is the default transient-failure logger (stderr, the listen.go
// idiom); tests silence it through the config.
func joinLogf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// JoinAndServe turns the process into a cluster worker: dial the
// coordinator at addr ("host:port", "unix:/path" or a bare socket path),
// register — protocol version, this process's task registry, auth token —
// and serve jobs until the coordinator goes away, then redial and rejoin.
// This reverses the Socket backend's connection direction: the worker dials
// in, so it can live behind NAT, start before the coordinator exists, or
// join a sweep that is already mid-batch.
//
// Serving is pipelined: the coordinator keeps a window of jobs in flight,
// the worker executes them in arrival order while heartbeating at the
// cadence the coordinator advertised, so a long-running job never reads as
// silence. Permanent rejections (auth token, protocol version) return
// immediately; transient failures (no coordinator yet, connection lost)
// retry with exponential backoff, bounded by WithJoinAttempts if set.
func JoinAndServe(addr string, opts ...JoinOption) error {
	cfg := joinConfig{
		retryWait:   200 * time.Millisecond,
		dialTimeout: 10 * time.Second,
		heartbeat:   2 * time.Second,
		logf:        joinLogf,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	network, address, err := splitWorkerAddr(addr)
	if err != nil {
		return err
	}
	return cluster.Retry(cfg.stop, cluster.RetryConfig{
		Attempts: cfg.attempts,
		Wait:     cfg.retryWait,
		Seed:     cfg.backoffSeed,
	}, func() error {
		err := joinOnce(network, address, &cfg)
		if err != nil && !cluster.IsPermanent(err) {
			cfg.logf("engine worker: joining %s: %v (will retry)", addr, err)
		}
		return err
	})
}

// joinOnce runs one full worker session: dial, register, serve until the
// transport ends. A nil return is a session that ended with the
// coordinator closing the connection (teardown or restart) — the caller
// redials. Registration VERDICTS (auth, version, protocol rejections —
// errRegisterRejected) are Permanent: retrying cannot fix them. Everything
// else — a reply cut short by a dying coordinator, a handshake deadline, a
// reset — is transport trouble and transient.
func joinOnce(network, address string, cfg *joinConfig) error {
	conn, err := dialWorkerConn(network, address, cfg.dialTimeout, cfg.tlsCfg)
	if err != nil {
		return err
	}
	defer conn.Close()
	// The stop hook covers the WHOLE session, registration included: a
	// worker pointed at something that accepts but never replies must
	// still be shutdownable.
	if cfg.stop != nil {
		stopDone := make(chan struct{})
		defer close(stopDone)
		go func() {
			select {
			case <-cfg.stop:
				conn.Close()
			case <-stopDone:
			}
		}()
	}
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(conn)
	// Bound the handshake like the coordinator bounds its registerGrace: a
	// peer that accepts and goes mute must not pin the join loop. The
	// deadline error is a net.Error — transient, so the loop retries.
	conn.SetDeadline(time.Now().Add(cfg.dialTimeout))
	heartbeat, err := registerHandshake(enc, dec, cfg.token)
	if err != nil {
		if errors.Is(err, errRegisterRejected) {
			return cluster.Permanent(err)
		}
		return err
	}
	conn.SetDeadline(time.Time{})
	if heartbeat <= 0 {
		heartbeat = cfg.heartbeat
	}
	return serveJoined(conn, dec, heartbeat)
}

// serveJoined is the worker's serving loop after a successful
// registration: a reader buffers incoming job frames (the coordinator
// pipelines up to its window), the main loop executes them in arrival
// order, and a ticker heartbeats on the shared encoder so the coordinator
// never mistakes a long job for silence. The session ends when the
// transport does — including joinOnce's stop hook closing the connection.
func serveJoined(conn net.Conn, dec *json.Decoder, heartbeat time.Duration) error {
	var sendMu sync.Mutex
	enc := json.NewEncoder(conn)
	send := func(m *wireMsg) error {
		sendMu.Lock()
		defer sendMu.Unlock()
		return enc.Encode(m)
	}

	// The job buffer absorbs the coordinator's pipeline window; beyond it,
	// TCP backpressure takes over. readErr carries the reader's verdict:
	// nil for a clean close (coordinator teardown), an error otherwise.
	jobs := make(chan wireMsg, 64)
	readErr := make(chan error, 1)
	go func() {
		defer close(jobs)
		for {
			var m wireMsg
			if err := dec.Decode(&m); err != nil {
				if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
					readErr <- nil
				} else {
					readErr <- fmt.Errorf("decoding job frame: %w", err)
				}
				return
			}
			if m.Type != wireJob {
				readErr <- fmt.Errorf("unexpected frame %q, want %q", m.Type, wireJob)
				return
			}
			jobs <- m
		}
	}()

	hbDone := make(chan struct{})
	defer close(hbDone)
	go func() {
		ticker := time.NewTicker(heartbeat)
		defer ticker.Stop()
		for {
			select {
			case <-hbDone:
				return
			case <-ticker.C:
				// A failed heartbeat means the transport is going; the
				// reader will notice and end the session.
				if err := send(&wireMsg{Type: wireHeartbeat}); err != nil {
					return
				}
			}
		}
	}()

	for m := range jobs {
		if err := send(executeJob(&m)); err != nil {
			conn.Close()
			// The reader may be parked on a full jobs buffer rather than in
			// Decode (a coordinator window deeper than the buffer), where
			// the conn close cannot reach it — drain until it exits, or
			// the <-readErr below would deadlock the whole join loop.
			go func() {
				for range jobs {
				}
			}()
			<-readErr
			return fmt.Errorf("sending result for job %d: %w", m.Job, err)
		}
	}
	return <-readErr
}
