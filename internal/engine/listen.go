package engine

import (
	"crypto/tls"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"
)

// serveConfig carries the options of Serve / ListenAndServe.
type serveConfig struct {
	token  string
	tlsCfg *tls.Config
	stop   <-chan struct{}
	drain  time.Duration
}

// ServeOption configures the listening worker loop.
type ServeOption func(*serveConfig)

// WithServeAuthToken sets the worker's shared secret: every hello handshake
// must announce the same token or the connection is rejected loudly, like
// version skew (default: no token, matching token-less coordinators only).
func WithServeAuthToken(token string) ServeOption {
	return func(c *serveConfig) { c.token = token }
}

// WithServeTLS makes the worker answer every accepted connection with a TLS
// server handshake (see ServerTLSConfig) before the hello exchange, so only
// coordinators dialing with the matching WithSocketTLS / -tls-ca get as far
// as the protocol (default: plain connections).
func WithServeTLS(cfg *tls.Config) ServeOption {
	return func(c *serveConfig) { c.tlsCfg = cfg }
}

// WithServeStop makes Serve shut down gracefully when the channel closes:
// stop accepting, let in-flight connections drain (each ends when its
// coordinator half-closes), then return nil. Pair with
// WithServeDrainTimeout to bound the drain.
func WithServeStop(stop <-chan struct{}) ServeOption {
	return func(c *serveConfig) { c.stop = stop }
}

// WithServeDrainTimeout bounds the graceful drain after WithServeStop
// fires: connections still serving past the deadline are force-closed, the
// reap idiom (default 0: wait for every connection however long it takes).
func WithServeDrainTimeout(d time.Duration) ServeOption {
	return func(c *serveConfig) { c.drain = d }
}

// Serve runs the listening end of the socket worker loop: accept
// connections, answer the hello handshake (rejecting version, task or
// auth-token skew loudly, see ProtocolVersion), then serve jobs with
// ServeWorker — the very loop the Process backend drives over stdio — until
// the coordinator half-closes the connection. Connections are served
// concurrently; Serve returns nil when lis is closed (or the WithServeStop
// channel fires and the in-flight connections drain).
func Serve(lis net.Listener, opts ...ServeOption) error {
	cfg := serveConfig{}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.tlsCfg != nil {
		lis = tls.NewListener(lis, cfg.tlsCfg)
	}

	// Track live connections so a bounded drain can escalate to closing
	// them; the map doubles as the "what is still in flight" set.
	var connMu sync.Mutex
	conns := map[net.Conn]struct{}{}
	closeConns := func() {
		connMu.Lock()
		open := make([]net.Conn, 0, len(conns))
		for c := range conns {
			open = append(open, c)
		}
		connMu.Unlock()
		for _, c := range open {
			c.Close()
		}
	}

	if cfg.stop != nil {
		stopDone := make(chan struct{})
		defer close(stopDone)
		go func() {
			select {
			case <-cfg.stop:
				lis.Close() // acceptConns sees net.ErrClosed and returns nil
			case <-stopDone:
			}
		}()
	}

	var wg sync.WaitGroup
	err := acceptConns(lis, "engine worker", func(conn net.Conn) {
		connMu.Lock()
		conns[conn] = struct{}{}
		connMu.Unlock()
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer func() {
				conn.Close()
				connMu.Lock()
				delete(conns, conn)
				connMu.Unlock()
			}()
			enc := json.NewEncoder(conn)
			dec := json.NewDecoder(conn)
			if err := serverHandshake(enc, dec, cfg.token); err != nil {
				fmt.Fprintf(os.Stderr, "engine worker: %s: %v\n", remoteName(conn), err)
				return
			}
			if err := serveConn(conn, dec); err != nil {
				fmt.Fprintf(os.Stderr, "engine worker: %s: %v\n", remoteName(conn), err)
			}
		}(conn)
	})
	// Drain in-flight connections — bounded by the drain timeout when one is
	// configured, escalating to force-closing the stragglers.
	if cfg.drain > 0 {
		reap(cfg.drain, func() error { wg.Wait(); return nil },
			func() error { closeConns(); return nil })
	}
	wg.Wait()
	return err
}

// acceptConns accepts connections until lis closes (returning nil), handing
// each to handle. A long-lived worker or coordinator must ride out
// transient accept failures (aborted connections, descriptor-pressure
// bursts) rather than die and strand every future batch — the net/http
// idiom, with exponential backoff logged under the given label. Shared by
// the socket worker loop (Serve) and the cluster coordinator.
func acceptConns(lis net.Listener, label string, handle func(net.Conn)) error {
	var backoff time.Duration
	for {
		conn, err := lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Temporary() {
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				fmt.Fprintf(os.Stderr, "%s: accept: %v; retrying in %v\n", label, err, backoff)
				time.Sleep(backoff)
				continue
			}
			return fmt.Errorf("engine: accepting worker connection: %w", err)
		}
		backoff = 0
		handle(conn)
	}
}

// serveConn is ServeWorker over an established connection, reusing the
// handshake's decoder so no buffered bytes are lost.
func serveConn(conn net.Conn, dec *json.Decoder) error {
	return serveWorker(dec, json.NewEncoder(conn))
}

// ListenAndServe announces on addr — "host:port" or ":port" (TCP),
// "unix:/path" or a bare filesystem path (unix socket) — and serves worker
// connections until the process dies. Unix socket files are removed first
// so a restarted worker can rebind.
func ListenAndServe(addr string, opts ...ServeOption) error {
	lis, err := listenWorkerAddr(addr)
	if err != nil {
		return err
	}
	defer lis.Close()
	return Serve(lis, opts...)
}

// listenWorkerAddr announces on a worker-address string ("host:port",
// ":port", "unix:/path" or a bare socket path), removing a stale unix
// socket file first so a restarted process can rebind. Shared by the
// socket worker loop (ListenAndServe) and the cluster coordinator
// (NewCluster).
func listenWorkerAddr(addr string) (net.Listener, error) {
	network, address, err := splitWorkerAddr(addr)
	if err != nil {
		return nil, err
	}
	if network == "unix" {
		if err := os.Remove(address); err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("engine: removing stale socket %s: %w", address, err)
		}
	}
	lis, err := net.Listen(network, address)
	if err != nil {
		return nil, fmt.Errorf("engine: listening on %s: %w", addr, err)
	}
	return lis, nil
}

// remoteName labels a connection for worker-side logs.
func remoteName(conn net.Conn) string {
	if ra := conn.RemoteAddr(); ra != nil && strings.TrimSpace(ra.String()) != "" {
		return ra.String()
	}
	return "peer"
}
