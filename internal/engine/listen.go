package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"
)

// Serve runs the listening end of the socket worker loop: accept
// connections, answer the hello handshake (rejecting version or task skew
// loudly, see ProtocolVersion), then serve jobs with ServeWorker — the very
// loop the Process backend drives over stdio — until the coordinator
// half-closes the connection. Connections are served concurrently; Serve
// returns nil when lis is closed.
func Serve(lis net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	var backoff time.Duration
	for {
		conn, err := lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			// A long-lived worker must ride out transient accept failures
			// (aborted connections, descriptor-pressure bursts) rather than
			// die and strand every future batch — the net/http idiom.
			var ne net.Error
			if errors.As(err, &ne) && ne.Temporary() {
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				fmt.Fprintf(os.Stderr, "engine worker: accept: %v; retrying in %v\n", err, backoff)
				time.Sleep(backoff)
				continue
			}
			return fmt.Errorf("engine: accepting worker connection: %w", err)
		}
		backoff = 0
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			enc := json.NewEncoder(conn)
			dec := json.NewDecoder(conn)
			if err := serverHandshake(enc, dec); err != nil {
				fmt.Fprintf(os.Stderr, "engine worker: %s: %v\n", remoteName(conn), err)
				return
			}
			if err := serveConn(conn, dec); err != nil {
				fmt.Fprintf(os.Stderr, "engine worker: %s: %v\n", remoteName(conn), err)
			}
		}(conn)
	}
}

// serveConn is ServeWorker over an established connection, reusing the
// handshake's decoder so no buffered bytes are lost.
func serveConn(conn net.Conn, dec *json.Decoder) error {
	return serveWorker(dec, json.NewEncoder(conn))
}

// ListenAndServe announces on addr — "host:port" or ":port" (TCP),
// "unix:/path" or a bare filesystem path (unix socket) — and serves worker
// connections until the process dies. Unix socket files are removed first
// so a restarted worker can rebind.
func ListenAndServe(addr string) error {
	network, address, err := splitWorkerAddr(addr)
	if err != nil {
		return err
	}
	if network == "unix" {
		if err := os.Remove(address); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("engine: removing stale socket %s: %w", address, err)
		}
	}
	lis, err := net.Listen(network, address)
	if err != nil {
		return fmt.Errorf("engine: listening on %s: %w", addr, err)
	}
	defer lis.Close()
	return Serve(lis)
}

// remoteName labels a connection for worker-side logs.
func remoteName(conn net.Conn) string {
	if ra := conn.RemoteAddr(); ra != nil && strings.TrimSpace(ra.String()) != "" {
		return ra.String()
	}
	return "peer"
}
