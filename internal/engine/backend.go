package engine

import (
	"encoding/json"
	"fmt"

	"github.com/multiradio/chanalloc/internal/des"
)

// Backend executes task batches. The contract every backend must honour is
// the engine's determinism guarantee, restated at the batch boundary:
//
//   - jobs 0..n-1 of a batch each run the named registered task with the
//     batch's parameter blob and a private PRNG stream seeded by
//     JobSeed(root, job) — never by worker identity or scheduling;
//   - results fan in as JSON, ordered by job index;
//   - if any job fails, every job still runs, and the error of the
//     lowest-indexed failing job surfaces as "engine: job %d: <cause>"
//     with nil results.
//
// Under that contract a batch produces byte-identical results — including
// which error surfaces on failure — whether it runs on the in-process pool,
// sharded over worker subprocesses, or (in a future backend) across hosts.
// Only Stats, which report timings and pool shape, may differ. The
// conformance suite in backend_conformance_test.go pins this for every
// backend in the repository.
type Backend interface {
	// Name identifies the backend ("inprocess", "process") for logs, flags
	// and error messages.
	Name() string
	// RunTask executes jobs 0..n-1 of the named task and returns their
	// JSON-encoded results in job order. Option semantics: Seed sets the
	// root seed; Workers sizes the in-process pool (process-sharded
	// backends take their shard count at construction instead and ignore
	// Workers).
	RunTask(task string, params json.RawMessage, n int, opts ...Option) ([]json.RawMessage, Stats, error)
}

// InProcess is the default Backend: the worker-pool of Map running in the
// coordinating process itself.
type InProcess struct{}

// NewInProcess returns the in-process backend.
func NewInProcess() *InProcess { return &InProcess{} }

// Name implements Backend.
func (*InProcess) Name() string { return "inprocess" }

// RunTask implements Backend over Map: the task runs as ordinary pool jobs,
// each result marshalled to JSON at the job boundary so the encoded bytes
// are what every other backend must reproduce.
func (*InProcess) RunTask(task string, params json.RawMessage, n int, opts ...Option) ([]json.RawMessage, Stats, error) {
	fn, ok := taskByName(task)
	if !ok {
		return nil, Stats{}, fmt.Errorf("engine: unknown task %q (registered: %v)", task, TaskNames())
	}
	return Map(n, func(job int, rng *des.RNG) (json.RawMessage, error) {
		out, err := fn(params, job, rng)
		if err != nil {
			return nil, err
		}
		enc, err := json.Marshal(out)
		if err != nil {
			return nil, fmt.Errorf("encoding result: %w", err)
		}
		return enc, nil
	}, opts...)
}

// surfaceJobErrors applies the tail of the Backend error contract to a
// collected batch: the lowest-indexed failing job's error surfaces first
// (worded identically on every backend — the conformance suite pins the
// bytes), then any job that silently ended up with neither a result nor a
// recorded error is reported against the named backend. Shared by every
// remote backend's fan-in.
func surfaceJobErrors(backend string, results []json.RawMessage, errs []string, failed []bool) error {
	for job, msg := range errs {
		if failed[job] {
			return fmt.Errorf("engine: job %d: %s", job, msg)
		}
	}
	for job, res := range results {
		if res == nil && !failed[job] {
			return fmt.Errorf("engine: %s backend lost job %d", backend, job)
		}
	}
	return nil
}

// RunTask runs a registered task over any backend with typed parameters and
// results: params is marshalled once for the whole batch, and each job's
// JSON result is unmarshalled into T.
func RunTask[T any](b Backend, task string, params any, n int, opts ...Option) ([]T, Stats, error) {
	if b == nil {
		return nil, Stats{}, fmt.Errorf("engine: nil backend")
	}
	raw, err := json.Marshal(params)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("engine: encoding params for task %q: %w", task, err)
	}
	encs, stats, err := b.RunTask(task, raw, n, opts...)
	if err != nil {
		return nil, stats, err
	}
	out := make([]T, len(encs))
	for i, enc := range encs {
		if err := json.Unmarshal(enc, &out[i]); err != nil {
			return nil, stats, fmt.Errorf("engine: decoding job %d result of task %q: %w", i, task, err)
		}
	}
	return out, stats, nil
}
